#include "obs/timeline.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <map>
#include <set>
#include <sstream>
#include <tuple>
#include <unordered_map>

namespace fastreg::obs {

// ------------------------------------------------------------- dump parse --

namespace {

bool parse_u64(const std::string& v, std::uint64_t* out) {
  if (v.empty()) return false;
  std::uint64_t n = 0;
  for (const char c : v) {
    if (c < '0' || c > '9') return false;
    n = n * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = n;
  return true;
}

bool parse_i64(const std::string& v, std::int64_t* out) {
  std::string body = v;
  bool neg = false;
  if (!body.empty() && body[0] == '-') {
    neg = true;
    body.erase(0, 1);
  }
  std::uint64_t n = 0;
  if (!parse_u64(body, &n)) return false;
  *out = neg ? -static_cast<std::int64_t>(n) : static_cast<std::int64_t>(n);
  return true;
}

bool parse_hex(const std::string& v, std::uint64_t* out) {
  if (v.size() < 3 || v[0] != '0' || v[1] != 'x') return false;
  std::uint64_t n = 0;
  for (std::size_t i = 2; i < v.size(); ++i) {
    const char c = v[i];
    int d;
    if (c >= '0' && c <= '9') {
      d = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      d = 10 + (c - 'a');
    } else {
      return false;
    }
    n = (n << 4) | static_cast<std::uint64_t>(d);
  }
  *out = n;
  return true;
}

bool parse_quoted(const std::string& v, std::string* out) {
  if (v.size() < 3 || v.front() != '"' || v.back() != '"') return false;
  *out = v.substr(1, v.size() - 2);
  return true;
}

bool valid_ev(const std::string& e) {
  return e == "send" || e == "recv" || e == "serve" || e == "nack" ||
         e == "park" || e == "resume" || e == "fence";
}

bool valid_type(const std::string& t) {
  if (t == "-") return true;
  if (t.empty()) return false;
  for (const char c : t) {
    if (c < 'A' || c > 'Z') return false;
  }
  return true;
}

/// One `rec ...` line into an event. The grammar is positional: the
/// eleven key=value fields appear in the fixed order the recorder
/// renders them, which keeps both sides trivial and drift detectable.
bool parse_rec_line(const std::string& line, timeline_event* out,
                    std::string* err) {
  std::vector<std::string> tok;
  std::istringstream is(line);
  std::string t;
  while (is >> t) tok.push_back(t);
  static const char* const keys[] = {"node", "dom",  "t",    "trace",
                                     "span", "ev",   "type", "peer",
                                     "obj",  "epoch", "ts"};
  constexpr std::size_t k_fields = sizeof(keys) / sizeof(keys[0]);
  if (tok.size() != k_fields + 1 || tok[0] != "rec") {
    *err = "expected `rec` and 11 key=value fields";
    return false;
  }
  std::string vals[k_fields];
  for (std::size_t i = 0; i < k_fields; ++i) {
    const std::string& kv = tok[i + 1];
    const std::string prefix = std::string(keys[i]) + "=";
    if (kv.rfind(prefix, 0) != 0) {
      *err = "expected field `" + std::string(keys[i]) + "=`";
      return false;
    }
    vals[i] = kv.substr(prefix.size());
  }
  timeline_event e;
  std::uint64_t span = 0;
  if (!parse_quoted(vals[0], &e.node) || e.node.empty()) {
    *err = "bad node";
    return false;
  }
  if (vals[1] == "sim") {
    e.sim_domain = true;
  } else if (vals[1] == "ns") {
    e.sim_domain = false;
  } else {
    *err = "dom must be sim or ns";
    return false;
  }
  if (!parse_u64(vals[2], &e.t)) {
    *err = "bad t";
    return false;
  }
  if (!parse_hex(vals[3], &e.trace)) {
    *err = "trace must be 0x hex";
    return false;
  }
  if (!parse_u64(vals[4], &span) || span > 0xffff) {
    *err = "bad span";
    return false;
  }
  e.span = static_cast<std::uint32_t>(span);
  e.ev = vals[5];
  if (!valid_ev(e.ev)) {
    *err = "unknown ev `" + e.ev + "`";
    return false;
  }
  e.type = vals[6];
  if (!valid_type(e.type)) {
    *err = "bad type `" + e.type + "`";
    return false;
  }
  if (!parse_quoted(vals[7], &e.peer) || e.peer.empty()) {
    *err = "bad peer";
    return false;
  }
  if (!parse_u64(vals[8], &e.obj)) {
    *err = "bad obj";
    return false;
  }
  if (!parse_u64(vals[9], &e.epoch)) {
    *err = "bad epoch";
    return false;
  }
  if (!parse_i64(vals[10], &e.ts)) {
    *err = "bad ts";
    return false;
  }
  *out = e;
  return true;
}

bool skippable_line(const std::string& line) {
  for (const char c : line) {
    if (c == '#') return true;
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;  // blank
}

}  // namespace

std::string validate_recorder_dump(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  std::size_t lineno = 0;
  std::size_t events = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (skippable_line(line)) continue;
    timeline_event e;
    std::string err;
    if (!parse_rec_line(line, &e, &err)) {
      return "line " + std::to_string(lineno) + ": " + err;
    }
    ++events;
  }
  if (events == 0) return "no recorder events";
  return "";
}

std::vector<timeline_event> parse_recorder_dump(const std::string& text) {
  std::vector<timeline_event> out;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (skippable_line(line)) continue;
    timeline_event e;
    std::string err;
    if (!parse_rec_line(line, &e, &err)) continue;
    e.seq = out.size();
    out.push_back(std::move(e));
  }
  return out;
}

// ------------------------------------------------------------------ merge --

std::vector<timeline_event> merge_events(
    std::vector<std::vector<timeline_event>> per_node) {
  std::vector<timeline_event> all;
  for (auto& v : per_node) {
    for (auto& e : v) all.push_back(std::move(e));
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const timeline_event& a, const timeline_event& b) {
                     // sim ticks first, then ns; within a domain by
                     // time, then node and capture order for stability.
                     return std::tie(b.sim_domain, a.t, a.node, a.seq) <
                            std::tie(a.sim_domain, b.t, b.node, b.seq);
                   });
  return all;
}

// ----------------------------------------------------------- causal check --

std::string validate_timeline(const std::vector<timeline_event>& merged) {
  // Earliest send per (domain, trace, span, type, sender, receiver, obj).
  std::unordered_map<std::string, std::uint64_t> first_send;
  const auto key = [](const timeline_event& e, const std::string& sender,
                      const std::string& receiver) {
    char buf[96];
    std::snprintf(buf, sizeof buf, "|%d|%llx|%u|%llu|", e.sim_domain ? 1 : 0,
                  static_cast<unsigned long long>(e.trace), e.span,
                  static_cast<unsigned long long>(e.obj));
    return sender + buf + e.type + "|" + receiver;
  };
  for (const auto& e : merged) {
    if (e.ev != "send" || e.type == "-") continue;
    const auto k = key(e, e.node, e.peer);
    const auto it = first_send.find(k);
    if (it == first_send.end() || e.t < it->second) first_send[k] = e.t;
  }
  for (const auto& e : merged) {
    if (e.ev != "recv" || e.type == "-") continue;
    const auto it = first_send.find(key(e, e.peer, e.node));
    // No matching send: its slot may have been overwritten in the ring.
    if (it == first_send.end()) continue;
    if (e.t < it->second) {
      char buf[160];
      std::snprintf(buf, sizeof buf,
                    "recv before send: trace=0x%llx span=%u type=%s %s->%s "
                    "recv t=%llu < send t=%llu",
                    static_cast<unsigned long long>(e.trace), e.span,
                    e.type.c_str(), e.peer.c_str(), e.node.c_str(),
                    static_cast<unsigned long long>(e.t),
                    static_cast<unsigned long long>(it->second));
      return buf;
    }
  }
  return "";
}

// -------------------------------------------------------------- narrative --

std::string render_narrative(const std::vector<timeline_event>& merged) {
  // Traces in order of first appearance.
  std::vector<std::uint64_t> order;
  std::unordered_map<std::uint64_t, std::vector<const timeline_event*>> by;
  for (const auto& e : merged) {
    if (e.trace == 0) continue;
    auto& v = by[e.trace];
    if (v.empty()) order.push_back(e.trace);
    v.push_back(&e);
  }
  std::string out;
  char buf[192];
  for (const auto tr : order) {
    const auto& evs = by[tr];
    std::uint64_t obj = 0;
    for (const auto* e : evs) {
      if (e->obj != 0) {
        obj = e->obj;
        break;
      }
    }
    std::snprintf(buf, sizeof buf, "trace 0x%llx obj=%llu (%zu events)\n",
                  static_cast<unsigned long long>(tr),
                  static_cast<unsigned long long>(obj), evs.size());
    out += buf;
    // Coalesce runs with the same (span, node, ev, type) into one line
    // carrying the peer set: "issued READ to {s0..s4}" reads as one step.
    std::size_t i = 0;
    while (i < evs.size()) {
      std::size_t j = i;
      std::set<std::string> peers;
      while (j < evs.size() && evs[j]->span == evs[i]->span &&
             evs[j]->node == evs[i]->node && evs[j]->ev == evs[i]->ev &&
             evs[j]->type == evs[i]->type) {
        peers.insert(evs[j]->peer);
        ++j;
      }
      const auto& e = *evs[i];
      std::string peerset;
      for (const auto& p : peers) {
        peerset += (peerset.empty() ? "" : ",") + p;
      }
      const char* arrow = e.ev == "send"   ? "->"
                          : e.ev == "recv" ? "<-"
                                           : "@";
      std::snprintf(buf, sizeof buf,
                    "  span %u t=%llu..%llu %s %s %s %s {%s} epoch=%llu\n",
                    e.span, static_cast<unsigned long long>(e.t),
                    static_cast<unsigned long long>(evs[j - 1]->t),
                    e.node.c_str(), e.ev.c_str(), e.type.c_str(), arrow,
                    peerset.c_str(),
                    static_cast<unsigned long long>(e.epoch));
      out += buf;
      i = j;
    }
  }
  return out;
}

// --------------------------------------------------------------- catapult --

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

double catapult_ts(const timeline_event& e) {
  // Microseconds: sim ticks map 1:1 (they are already "logical µs");
  // the shared steady clock divides down from ns.
  return e.sim_domain ? static_cast<double>(e.t)
                      : static_cast<double>(e.t) / 1000.0;
}

}  // namespace

std::string render_catapult(const std::vector<timeline_event>& merged) {
  // pid per node (sorted, 1-based); tid per trace lane in first-seen
  // order (0 = untraced events).
  std::map<std::string, int> pid;
  for (const auto& e : merged) pid.emplace(e.node, 0);
  int next_pid = 1;
  for (auto& [node, p] : pid) p = next_pid++;
  std::unordered_map<std::uint64_t, int> tid;
  int next_tid = 1;
  for (const auto& e : merged) {
    if (e.trace != 0 && tid.emplace(e.trace, next_tid).second) ++next_tid;
  }
  std::string out = "[";
  char buf[256];
  bool first = true;
  const auto emit = [&](const std::string& obj) {
    out += first ? "\n" : ",\n";
    out += obj;
    first = false;
  };
  for (const auto& [node, p] : pid) {
    std::snprintf(buf, sizeof buf,
                  "{\"ph\":\"M\",\"pid\":%d,\"tid\":0,"
                  "\"name\":\"process_name\",\"args\":{\"name\":\"%s\"}}",
                  p, json_escape(node).c_str());
    emit(buf);
  }
  // Thread-lane names: one per (node, trace) pair that has events.
  std::set<std::pair<int, int>> named;
  for (const auto& e : merged) {
    if (e.trace == 0) continue;
    const auto lane = std::make_pair(pid[e.node], tid[e.trace]);
    if (!named.insert(lane).second) continue;
    std::snprintf(buf, sizeof buf,
                  "{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,"
                  "\"name\":\"thread_name\","
                  "\"args\":{\"name\":\"trace 0x%llx\"}}",
                  lane.first, lane.second,
                  static_cast<unsigned long long>(e.trace));
    emit(buf);
  }
  // One instant event per entry.
  for (const auto& e : merged) {
    std::snprintf(buf, sizeof buf,
                  "{\"ph\":\"i\",\"ts\":%.3f,\"pid\":%d,\"tid\":%d,"
                  "\"name\":\"%s %s\",\"s\":\"t\",\"args\":{\"peer\":\"%s\","
                  "\"span\":%u,\"obj\":\"%llu\",\"epoch\":%llu,"
                  "\"vts\":%lld}}",
                  catapult_ts(e), pid[e.node],
                  e.trace != 0 ? tid[e.trace] : 0,
                  json_escape(e.ev + " " + e.type).c_str(),
                  json_escape(e.node).c_str(), json_escape(e.peer).c_str(),
                  e.span, static_cast<unsigned long long>(e.obj),
                  static_cast<unsigned long long>(e.epoch),
                  static_cast<long long>(e.ts));
    emit(buf);
  }
  // A complete ("X") span per (node, trace): first..last event time.
  struct range {
    double lo{0}, hi{0};
    bool set{false};
  };
  std::map<std::pair<int, int>, std::pair<range, std::uint64_t>> spans;
  for (const auto& e : merged) {
    if (e.trace == 0) continue;
    auto& [r, tr] = spans[{pid[e.node], tid[e.trace]}];
    const double ts = catapult_ts(e);
    if (!r.set) {
      r = {ts, ts, true};
      tr = e.trace;
    } else {
      r.lo = std::min(r.lo, ts);
      r.hi = std::max(r.hi, ts);
    }
  }
  for (const auto& [lane, rt] : spans) {
    const double dur = std::max(1.0, rt.first.hi - rt.first.lo);
    std::snprintf(buf, sizeof buf,
                  "{\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,"
                  "\"tid\":%d,\"name\":\"trace 0x%llx\"}",
                  rt.first.lo, dur, lane.first, lane.second,
                  static_cast<unsigned long long>(rt.second));
    emit(buf);
  }
  out += "\n]\n";
  return out;
}

// ------------------------------------------------------ catapult validate --

namespace {

/// Minimal JSON walker for the structural check: full syntax validation
/// of the subset the renderer emits (and anything reasonable a hand
/// edit produces), plus per-event key/kind capture at nesting depth 1.
struct jwalk {
  const std::string& s;
  std::size_t i{0};
  std::string err;

  bool fail(const std::string& e) {
    if (err.empty()) err = e + " at offset " + std::to_string(i);
    return false;
  }
  void ws() {
    while (i < s.size() &&
           std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
  }
  bool expect(char c) {
    ws();
    if (i >= s.size() || s[i] != c) {
      return fail(std::string("expected '") + c + "'");
    }
    ++i;
    return true;
  }
  bool string(std::string* out) {
    ws();
    if (i >= s.size() || s[i] != '"') return fail("expected string");
    ++i;
    std::string v;
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\') {
        ++i;
        if (i >= s.size()) return fail("bad escape");
        const char c = s[i];
        if (c == 'u') {
          for (int k = 0; k < 4; ++k) {
            ++i;
            if (i >= s.size() ||
                !std::isxdigit(static_cast<unsigned char>(s[i]))) {
              return fail("bad \\u escape");
            }
          }
        } else if (c != '"' && c != '\\' && c != '/' && c != 'b' &&
                   c != 'f' && c != 'n' && c != 'r' && c != 't') {
          return fail("bad escape");
        }
        v += c;
      } else {
        v += s[i];
      }
      ++i;
    }
    if (i >= s.size()) return fail("unterminated string");
    ++i;
    if (out) *out = std::move(v);
    return true;
  }
  bool number() {
    ws();
    const std::size_t start = i;
    if (i < s.size() && s[i] == '-') ++i;
    std::size_t digits = 0;
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) {
      ++i;
      ++digits;
    }
    if (digits == 0) return fail("expected number");
    if (i < s.size() && s[i] == '.') {
      ++i;
      while (i < s.size() &&
             std::isdigit(static_cast<unsigned char>(s[i]))) {
        ++i;
      }
    }
    if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
      ++i;
      if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
      while (i < s.size() &&
             std::isdigit(static_cast<unsigned char>(s[i]))) {
        ++i;
      }
    }
    return i > start;
  }
  bool literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (s.compare(i, n, lit) != 0) return fail("bad literal");
    i += n;
    return true;
  }
  // kinds: 's' string, 'n' number, 'o' object, 'a' array, 'l' literal.
  bool value(char* kind) {
    ws();
    if (i >= s.size()) return fail("unexpected end");
    const char c = s[i];
    if (c == '"') {
      if (kind) *kind = 's';
      return string(nullptr);
    }
    if (c == '{') {
      if (kind) *kind = 'o';
      return object(nullptr, nullptr);
    }
    if (c == '[') {
      if (kind) *kind = 'a';
      return array();
    }
    if (c == 't') {
      if (kind) *kind = 'l';
      return literal("true");
    }
    if (c == 'f') {
      if (kind) *kind = 'l';
      return literal("false");
    }
    if (c == 'n') {
      if (kind) *kind = 'l';
      return literal("null");
    }
    if (kind) *kind = 'n';
    return number();
  }
  bool array() {
    if (!expect('[')) return false;
    ws();
    if (i < s.size() && s[i] == ']') {
      ++i;
      return true;
    }
    while (true) {
      if (!value(nullptr)) return false;
      ws();
      if (i < s.size() && s[i] == ',') {
        ++i;
        continue;
      }
      return expect(']');
    }
  }
  bool object(std::map<std::string, char>* kinds,
              std::map<std::string, std::string>* strs) {
    if (!expect('{')) return false;
    ws();
    if (i < s.size() && s[i] == '}') {
      ++i;
      return true;
    }
    while (true) {
      std::string key;
      if (!string(&key)) return false;
      if (!expect(':')) return false;
      ws();
      char kind = 0;
      if (kinds && i < s.size() && s[i] == '"') {
        std::string sval;
        if (!string(&sval)) return false;
        kind = 's';
        if (strs) (*strs)[key] = std::move(sval);
      } else {
        if (!value(&kind)) return false;
      }
      if (kinds) (*kinds)[key] = kind;
      ws();
      if (i < s.size() && s[i] == ',') {
        ++i;
        continue;
      }
      return expect('}');
    }
  }
};

}  // namespace

std::string validate_catapult(const std::string& text) {
  jwalk w{text, 0, {}};
  if (!w.expect('[')) return w.err;
  w.ws();
  if (w.i < text.size() && text[w.i] == ']') {
    return "empty trace array";
  }
  std::size_t events = 0;
  while (true) {
    std::map<std::string, char> kinds;
    std::map<std::string, std::string> strs;
    if (!w.object(&kinds, &strs)) return w.err;
    ++events;
    const auto ph = kinds.find("ph");
    if (ph == kinds.end() || ph->second != 's') {
      return "event " + std::to_string(events) + ": missing string \"ph\"";
    }
    if (strs["ph"] != "M") {
      for (const char* req : {"ts", "pid", "tid"}) {
        const auto it = kinds.find(req);
        if (it == kinds.end() || it->second != 'n') {
          return "event " + std::to_string(events) + ": missing numeric \"" +
                 req + "\"";
        }
      }
      const auto name = kinds.find("name");
      if (name == kinds.end() || name->second != 's') {
        return "event " + std::to_string(events) +
               ": missing string \"name\"";
      }
    }
    w.ws();
    if (w.i < text.size() && text[w.i] == ',') {
      ++w.i;
      continue;
    }
    break;
  }
  if (!w.expect(']')) return w.err;
  w.ws();
  if (w.i != text.size()) return "trailing content after array";
  return "";
}

}  // namespace fastreg::obs
