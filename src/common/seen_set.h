// The `seen` set of Figure 2 / Figure 5: the set of clients (writer +
// readers) to which a server has replied since last adopting its current
// timestamp. Represented as a bitmask over client slots (writer = bit 0,
// reader r_i = bit i+1), which bounds R at 62 readers -- far above any
// feasible fast configuration we exercise and cheap to ship on the wire.
#pragma once

#include <bit>
#include <cstdint>
#include <string>

#include "common/types.h"

namespace fastreg {

class seen_set {
 public:
  constexpr seen_set() = default;
  constexpr explicit seen_set(std::uint64_t bits) : bits_(bits) {}

  static constexpr std::uint32_t max_clients = 64;

  void insert(const process_id& p) { bits_ |= bit(p); }
  void clear() { bits_ = 0; }

  [[nodiscard]] bool contains(const process_id& p) const {
    return (bits_ & bit(p)) != 0;
  }
  [[nodiscard]] std::size_t size() const {
    return static_cast<std::size_t>(std::popcount(bits_));
  }
  [[nodiscard]] bool empty() const { return bits_ == 0; }
  [[nodiscard]] std::uint64_t bits() const { return bits_; }

  /// Set intersection: used by the fast-read predicate, which needs
  /// |intersection of m.seen over m in MS| >= a.
  [[nodiscard]] seen_set intersect(const seen_set& o) const {
    return seen_set{bits_ & o.bits_};
  }
  [[nodiscard]] seen_set unite(const seen_set& o) const {
    return seen_set{bits_ | o.bits_};
  }

  friend bool operator==(const seen_set&, const seen_set&) = default;

  [[nodiscard]] std::string to_string() const;

 private:
  static std::uint64_t bit(const process_id& p) {
    const std::uint32_t slot = client_slot(p);
    return slot < max_clients ? (std::uint64_t{1} << slot) : 0;
  }

  std::uint64_t bits_{0};
};

/// A seen_set containing every possible client: useful as the identity
/// element when folding intersections.
[[nodiscard]] constexpr seen_set seen_universe() {
  return seen_set{~std::uint64_t{0}};
}

}  // namespace fastreg
