// Verifiers for the correctness conditions of Section 3.
//
//  * check_swmr_atomicity -- the four conditions of Section 3.1, verbatim:
//      (1) every read returns some written value (bottom counts as val_0);
//      (2) a read that succeeds write_k returns val_l with l >= k;
//      (3) a read returning val_k (k >= 1) is preceded by or concurrent
//          with write_k;
//      (4) if rd2 succeeds rd1 then rd2 returns a value at least as new.
//    O(n log n); exact for single-writer histories with unique values.
//
//  * check_swmr_regular -- conditions (1)-(3) only: a regular register
//    admits new/old inversions between reads (Section 8), so condition (4)
//    is dropped.
//
//  * check_linearizable -- general MWMR atomicity via a Wing&Gong-style
//    exhaustive search with memoization. Exponential worst case; intended
//    for the small adversarial histories of Section 7 (<= 64 ops).
//
//  * check_fastness -- every completed operation used at most the stated
//    number of round-trips (Section 3.2's fast-implementation property,
//    measured rather than assumed).
#pragma once

#include <string>

#include "checker/history.h"

namespace fastreg::checker {

struct check_result {
  bool ok{true};
  std::string error{};

  explicit operator bool() const { return ok; }
};

[[nodiscard]] check_result check_swmr_atomicity(const history& h);
[[nodiscard]] check_result check_swmr_regular(const history& h);
[[nodiscard]] check_result check_linearizable(const history& h);
[[nodiscard]] check_result check_fastness(const history& h,
                                          int max_read_rounds,
                                          int max_write_rounds);

}  // namespace fastreg::checker
