// Executable version of Section 7 (Proposition 11): no fast MWMR atomic
// register exists, even with W = R = 2 and a single crash-faulty server.
//
// The construction runs two concurrent writes -- write(2) by w2 and
// write(1) by w1 -- against a candidate fast implementation, in a series
// of S+1 runs run^1..run^{S+1} that differ only in the per-server order in
// which the two write messages arrive. run^1 is the sequential order
// "w2 then w1 everywhere" (reader must return 1 by property P1);
// run^{S+1} is "w1 then w2 everywhere" (reader must return 2). Somewhere
// in between the reader's answer flips: runs run^{i1} and run^{i1+1}
// differ only at server s_{i1}. Extending both with a read by r2 that
// *skips* s_{i1} makes r2 return the same value in both runs, so in one of
// them the two readers disagree after all writes completed -- violating
// property P2.
//
// The module reports which property breaks first for the candidate
// protocol (strawmen often already fail P1 in run^1).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "registers/automaton.h"

namespace fastreg::adversary {

struct mwmr_report {
  /// r1's return value in run^i, for i = 1..S+1.
  std::vector<value_t> series{};
  /// Values written by w1 and w2 ("1" and "2").
  value_t w1_value{};
  value_t w2_value{};

  /// P1 check on the endpoints: run^1 must return w1's value (it is the
  /// last write); run^{S+1} must return w2's value.
  bool p1_ok_run1{false};
  bool p1_ok_runlast{false};

  /// First i with series[i-1] == w1_value and series[i] == w2_value.
  std::optional<std::uint32_t> flip_index{};
  /// r2's values in run' (extends run^{i1}) and run'' (extends run^{i1+1}).
  std::optional<value_t> r2_run_prime{};
  std::optional<value_t> r2_run_doubleprime{};
  /// P2: in run'' r1 returned w2's value; if r2 (skipping s_{i1}) returns
  /// w1's value there, the two complete reads disagree after all writes.
  bool p2_violation{false};

  /// Some property failed somewhere: the protocol is not atomic.
  bool violation{false};
  std::vector<std::string> trace{};

  [[nodiscard]] std::string summary() const;
};

/// Runs the construction with W = R = 2, t = 1 and `S` servers against a
/// candidate protocol with one-round reads and writes (asserted).
[[nodiscard]] mwmr_report run_mwmr_lower_bound(const protocol& proto,
                                               std::uint32_t S);

}  // namespace fastreg::adversary
