// The decentralized "max-min" read optimization sketched in Section 1:
//
//   The reader sends READ to all servers. Every server, on receiving it,
//   broadcasts its timestamp to all servers. On receiving timestamps from
//   a majority, a server adopts the maximum and sends it to the reader.
//   The reader returns the MINIMUM timestamp among S - t replies.
//
// The read takes 3 one-way message delays (reader->servers, servers->
// servers, servers->reader) instead of ABD's 4 (two full round-trips), at
// the cost of S^2 gossip messages per read. It is NOT fast in the paper's
// sense: servers wait for other servers' messages before replying, which
// the fast-implementation definition (Section 3.2) forbids -- that is
// exactly why the paper's Figure 2 algorithm is interesting.
//
// Writes are plain one-round ABD writes. Requires t < S/2.
#pragma once

#include <map>
#include <optional>
#include <tuple>
#include <unordered_set>

#include "registers/abd.h"
#include "registers/automaton.h"

namespace fastreg {

class maxmin_server final : public automaton, public seedable {
 public:
  maxmin_server(system_config cfg, std::uint32_t index);

  void on_message(netout& net, const process_id& from,
                  const message& m) override;
  [[nodiscard]] std::unique_ptr<automaton> clone() const override;
  [[nodiscard]] process_id self() const override {
    return server_id(index_);
  }

  [[nodiscard]] register_snapshot peek_state() const override {
    return {ts_.num, ts_.wid, val_, val_, {}};
  }
  void seed_state(const register_snapshot& s) override {
    ts_ = {s.ts, s.wid};
    val_ = s.val;
  }

  [[nodiscard]] wts_t stored_ts() const { return ts_; }

 private:
  struct gather {
    std::unordered_set<std::uint32_t> senders{};
    wts_t max_ts{};
    value_t max_val{};
    bool got_read_req{false};
    bool replied{false};
  };

  void maybe_reply(netout& net, const process_id& reader, std::uint64_t rc,
                   gather& g);
  /// Majority threshold for the server-to-server gather.
  [[nodiscard]] std::uint32_t gossip_quorum() const {
    return cfg_.S() / 2 + 1;
  }

  system_config cfg_;
  std::uint32_t index_;
  wts_t ts_{};
  value_t val_{};
  // Keyed by (reader index, rcounter, attempt): one gather per read
  // instance. The attempt (0 outside the store) separates a re-issued
  // read from a superseded attempt whose straggling request or gossip
  // carries the same rcounter -- the reply a gather produces is tagged
  // with its attempt, and a reply tagged with a stale attempt would be
  // dropped by the store client, starving the live read of this server's
  // answer (maybe_reply answers each gather exactly once).
  std::map<std::tuple<std::uint32_t, std::uint64_t, std::uint32_t>, gather>
      gathers_{};
};

class maxmin_reader final : public automaton, public reader_iface {
 public:
  maxmin_reader(system_config cfg, std::uint32_t index);

  void on_message(netout& net, const process_id& from,
                  const message& m) override;
  [[nodiscard]] std::unique_ptr<automaton> clone() const override;
  [[nodiscard]] process_id self() const override {
    return reader_id(index_);
  }

  void invoke_read(netout& net) override;
  [[nodiscard]] bool read_in_progress() const override { return pending_; }
  [[nodiscard]] const std::optional<read_result>& last_read() const override {
    return last_result_;
  }
  [[nodiscard]] std::uint64_t reads_completed() const override {
    return completed_;
  }

 private:
  system_config cfg_;
  std::uint32_t index_;
  bool pending_{false};
  std::uint64_t rcounter_{0};
  bool have_min_{false};
  wts_t min_ts_{};
  value_t min_val_{};
  std::unordered_set<std::uint32_t> acks_{};
  std::optional<read_result> last_result_{};
  std::uint64_t completed_{0};
};

class maxmin_protocol final : public protocol {
 public:
  [[nodiscard]] std::string name() const override { return "maxmin"; }
  [[nodiscard]] bool feasible(const system_config& cfg) const override {
    return majority_feasible(cfg.S(), cfg.t());
  }
  /// Client-visible round-trips: the reader sends once and waits. The
  /// hidden server-to-server round makes the true cost 3 one-way delays;
  /// benches report delays separately.
  [[nodiscard]] int read_rounds() const override { return 1; }
  [[nodiscard]] int write_rounds() const override { return 1; }
  [[nodiscard]] std::unique_ptr<automaton> make_writer(
      const system_config& cfg, std::uint32_t index,
      object_id obj = k_default_object) const override;
  [[nodiscard]] std::unique_ptr<automaton> make_reader(
      const system_config& cfg, std::uint32_t index,
      object_id obj = k_default_object) const override;
  [[nodiscard]] std::unique_ptr<automaton> make_server(
      const system_config& cfg, std::uint32_t index,
      object_id obj = k_default_object) const override;
};

}  // namespace fastreg
