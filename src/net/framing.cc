#include "net/framing.h"

#include <cstring>

#include "obs/metrics.h"

namespace fastreg::net {
namespace {

// Process-global: a frame_buffer has no node identity, so malformed-frame
// and corrupt-stream events aggregate across every connection in the
// process. Registry handles are stable, so caching them in a static is
// safe for the life of the process.
obs::counter& malformed_frames_counter() {
  static obs::counter& c = obs::registry::instance().get_counter(
      "fastreg_net_malformed_frames_total");
  return c;
}

obs::counter& corrupt_streams_counter() {
  static obs::counter& c = obs::registry::instance().get_counter(
      "fastreg_net_corrupt_streams_total");
  return c;
}

/// Payload size (everything after the u32 length prefix, kind byte
/// included) of each frame flavor.
std::size_t hello_payload_size() { return 1 + process_id_wire_size(); }
std::size_t msg_payload_size(const message& m) {
  return 1 + process_id_wire_size() + message_wire_size(m);
}
std::size_t batch_payload_size(std::span<const message> msgs) {
  std::size_t n = 1 + process_id_wire_size() + wire_size_u32();
  for (const auto& m : msgs) n += message_wire_size(m);
  return n;
}

}  // namespace

void preheat_framing_metrics() {
  (void)malformed_frames_counter();
  (void)corrupt_streams_counter();
}

std::size_t msg_frame_wire_size(const message& m) {
  return 4 + msg_payload_size(m);
}

std::size_t batch_frame_wire_size(std::span<const message> msgs) {
  return 4 + batch_payload_size(msgs);
}

std::size_t append_hello_frame(std::vector<std::uint8_t>& out,
                               const process_id& from) {
  const std::size_t payload = hello_payload_size();
  out.reserve(out.size() + 4 + payload);
  byte_writer w(out);
  w.put_u32(static_cast<std::uint32_t>(payload));
  w.put_u8(static_cast<std::uint8_t>(frame_kind::hello));
  encode_process_id(w, from);
  return w.written();
}

std::size_t append_msg_frame(std::vector<std::uint8_t>& out,
                             const process_id& from, const message& m) {
  const std::size_t payload = msg_payload_size(m);
  out.reserve(out.size() + 4 + payload);
  byte_writer w(out);
  w.put_u32(static_cast<std::uint32_t>(payload));
  w.put_u8(static_cast<std::uint8_t>(frame_kind::msg));
  encode_process_id(w, from);
  encode_message(w, m);
  return w.written();
}

std::size_t append_batch_frame(std::vector<std::uint8_t>& out,
                               const process_id& from,
                               std::span<const message> msgs) {
  const std::size_t payload = batch_payload_size(msgs);
  out.reserve(out.size() + 4 + payload);
  byte_writer w(out);
  w.put_u32(static_cast<std::uint32_t>(payload));
  w.put_u8(static_cast<std::uint8_t>(frame_kind::batch));
  encode_process_id(w, from);
  w.put_u32(static_cast<std::uint32_t>(msgs.size()));
  for (const auto& m : msgs) encode_message(w, m);
  return w.written();
}

std::vector<std::uint8_t> encode_hello(const process_id& from) {
  std::vector<std::uint8_t> out;
  append_hello_frame(out, from);
  return out;
}

std::vector<std::uint8_t> encode_msg_frame(const process_id& from,
                                           const message& m) {
  std::vector<std::uint8_t> out;
  append_msg_frame(out, from, m);
  return out;
}

std::vector<std::uint8_t> encode_batch_frame(const process_id& from,
                                             std::span<const message> msgs) {
  std::vector<std::uint8_t> out;
  append_batch_frame(out, from, msgs);
  return out;
}

void frame_buffer::feed(const std::uint8_t* data, std::size_t n) {
  if (corrupt_) return;  // connection is due for a reset; drop the bytes
  // Compact occasionally so the buffer does not grow without bound.
  if (consumed_ > 0 && consumed_ == buf_.size()) {
    buf_.clear();
    consumed_ = 0;
  } else if (consumed_ > 64 * 1024) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
}

frame_buffer::parse_result frame_buffer::parse_one(const std::uint8_t* data,
                                                   std::size_t avail,
                                                   std::size_t& used,
                                                   frame& out) {
  used = 0;
  if (avail < 4) return parse_result::need_more;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(data[i]) << (8 * i);
  }
  if (len == 0 || len > max_frame_bytes) {
    // Hopeless: with the length prefix untrustworthy there is no reliable
    // frame boundary left on this stream. Latch corrupt(); the owner
    // resets the connection (see the class comment).
    ++malformed_;
    malformed_frames_counter().inc();
    corrupt_ = true;
    corrupt_streams_counter().inc();
    buf_.clear();
    consumed_ = 0;
    return parse_result::corrupt;
  }
  if (avail < 4 + static_cast<std::size_t>(len)) return parse_result::need_more;
  const std::uint8_t* body = data + 4;
  used = 4 + len;

  const std::uint8_t kind = body[0];
  byte_reader r(std::span<const std::uint8_t>(body + 1, len - 1));
  const auto from = decode_process_id(r);
  if (!from) {
    ++malformed_;
    malformed_frames_counter().inc();
    return parse_result::skip;
  }
  out.from = *from;
  if (kind == static_cast<std::uint8_t>(frame_kind::hello)) {
    out.kind = frame_kind::hello;
    return parse_result::ok;
  }
  if (kind == static_cast<std::uint8_t>(frame_kind::msg)) {
    out.kind = frame_kind::msg;
    auto m = decode_message(r);
    if (!m) {
      ++malformed_;
      malformed_frames_counter().inc();
      return parse_result::skip;
    }
    out.msg = std::move(*m);
    return parse_result::ok;
  }
  if (kind == static_cast<std::uint8_t>(frame_kind::batch)) {
    out.kind = frame_kind::batch;
    const auto count = r.get_u32();
    // An encoded message is over 40 bytes; a count the remaining payload
    // cannot possibly hold is a malformed (or hostile) frame. The bound
    // must hold BEFORE any allocation sized by count, or a crafted count
    // forces a multi-GB reserve and bad_alloc kills the process.
    if (!count || *count == 0 || *count > r.remaining() / 40) {
      ++malformed_;
      malformed_frames_counter().inc();
      return parse_result::skip;
    }
    out.batch.reserve(*count);
    for (std::uint32_t i = 0; i < *count; ++i) {
      auto m = decode_message(r);
      if (!m) {
        ++malformed_;
        malformed_frames_counter().inc();
        out.batch.clear();
        return parse_result::skip;
      }
      out.batch.push_back(std::move(*m));
    }
    return parse_result::ok;
  }
  ++malformed_;
  malformed_frames_counter().inc();
  return parse_result::skip;
}

std::optional<frame> frame_buffer::next() {
  for (;;) {
    if (corrupt_) return std::nullopt;
    frame f;
    std::size_t used = 0;
    const auto r =
        parse_one(buf_.data() + consumed_, buf_.size() - consumed_, used, f);
    if (r == parse_result::need_more || r == parse_result::corrupt) {
      return std::nullopt;
    }
    consumed_ += used;
    if (r == parse_result::ok) return f;
    // skip: keep scanning from the next frame boundary.
  }
}

}  // namespace fastreg::net
