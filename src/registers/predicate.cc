#include "registers/predicate.h"

#include <algorithm>
#include <bit>

namespace fastreg {
namespace {

/// Dynamic bitset over message indices (S can exceed 64 in sweeps).
class bitvec {
 public:
  bitvec(std::size_t n, bool ones) : n_(n), words_((n + 63) / 64, 0) {
    if (ones) {
      for (auto& w : words_) w = ~std::uint64_t{0};
      trim();
    }
  }

  void set(std::size_t i) { words_[i / 64] |= std::uint64_t{1} << (i % 64); }

  [[nodiscard]] bitvec and_with(const bitvec& o) const {
    bitvec out(n_, false);
    for (std::size_t i = 0; i < words_.size(); ++i) {
      out.words_[i] = words_[i] & o.words_[i];
    }
    return out;
  }

  [[nodiscard]] std::size_t count() const {
    std::size_t c = 0;
    for (std::uint64_t w : words_) c += static_cast<std::size_t>(std::popcount(w));
    return c;
  }

 private:
  void trim() {
    const std::size_t extra = words_.size() * 64 - n_;
    if (extra != 0 && !words_.empty()) {
      words_.back() &= ~std::uint64_t{0} >> extra;
    }
  }

  std::size_t n_;
  std::vector<std::uint64_t> words_;
};

/// Depth-first search over a-element client subsets, intersecting message
/// membership masks and pruning when the count drops below `need`.
bool dfs_subsets(const std::vector<bitvec>& member_masks, std::size_t start,
                 std::uint32_t remaining, const bitvec& current,
                 std::size_t need) {
  if (remaining == 0) return current.count() >= need;
  // Not enough candidates left to reach the required subset size.
  if (member_masks.size() - start < remaining) return false;
  for (std::size_t i = start; i < member_masks.size(); ++i) {
    const bitvec next = current.and_with(member_masks[i]);
    if (next.count() < need) continue;
    if (dfs_subsets(member_masks, i + 1, remaining - 1, next, need)) {
      return true;
    }
  }
  return false;
}

/// Does the predicate hold for this specific value of a?
bool exists_for_a(std::span<const seen_set> maxts_seen, std::uint32_t S,
                  std::uint32_t t, std::uint32_t b, std::uint32_t a) {
  const std::int64_t need_signed = static_cast<std::int64_t>(S) -
                                   static_cast<std::int64_t>(a) * t -
                                   (static_cast<std::int64_t>(a) - 1) * b;
  // Degenerate: an empty MS trivially satisfies |MS| >= need, and the
  // intersection over the empty family is the universe of clients, whose
  // size (R+1 >= a by the caller's range) meets the bound. Matches the
  // pseudocode read literally; reachable only outside the feasible region.
  if (need_signed <= 0) return true;
  const std::size_t need = static_cast<std::size_t>(need_signed);
  if (need > maxts_seen.size()) return false;

  // Union of all seen sets = candidate clients for the intersection.
  seen_set universe;
  for (const auto& s : maxts_seen) universe = universe.unite(s);
  if (universe.size() < a) return false;

  // For each candidate client, the set of messages whose seen contains it.
  std::vector<bitvec> member_masks;
  for (std::uint32_t slot = 0; slot < seen_set::max_clients; ++slot) {
    const std::uint64_t bit = std::uint64_t{1} << slot;
    if ((universe.bits() & bit) == 0) continue;
    bitvec mask(maxts_seen.size(), false);
    std::size_t members = 0;
    for (std::size_t i = 0; i < maxts_seen.size(); ++i) {
      if ((maxts_seen[i].bits() & bit) != 0) {
        mask.set(i);
        ++members;
      }
    }
    // A client appearing in fewer than `need` messages can never be part
    // of a qualifying intersection.
    if (members >= need) member_masks.push_back(std::move(mask));
  }
  if (member_masks.size() < a) return false;

  const bitvec all(maxts_seen.size(), true);
  return dfs_subsets(member_masks, 0, a, all, need);
}

}  // namespace

bool fast_read_predicate(std::span<const seen_set> maxts_seen,
                         std::uint32_t S, std::uint32_t t, std::uint32_t b,
                         std::uint32_t R) {
  for (std::uint32_t a = 1; a <= R + 1; ++a) {
    if (exists_for_a(maxts_seen, S, t, b, a)) return true;
  }
  return false;
}

bool fast_read_predicate(std::span<const message> maxts_msgs, std::uint32_t S,
                         std::uint32_t t, std::uint32_t b, std::uint32_t R) {
  std::vector<seen_set> seen;
  seen.reserve(maxts_msgs.size());
  for (const auto& m : maxts_msgs) seen.push_back(m.seen);
  return fast_read_predicate(std::span<const seen_set>(seen), S, t, b, R);
}

std::uint32_t fast_read_predicate_witness(std::span<const seen_set> maxts_seen,
                                          std::uint32_t S, std::uint32_t t,
                                          std::uint32_t b, std::uint32_t R) {
  std::uint32_t best = 0;
  for (std::uint32_t a = 1; a <= R + 1; ++a) {
    if (exists_for_a(maxts_seen, S, t, b, a)) best = a;
  }
  return best;
}

}  // namespace fastreg
