#include "registers/fast_swmr.h"

#include "common/check.h"
#include "obs/trace.h"

namespace fastreg {

// ---------------------------------------------------------------- writer --

fast_swmr_writer::fast_swmr_writer(system_config cfg) : cfg_(std::move(cfg)) {}

void fast_swmr_writer::invoke_write(netout& net, value_t v) {
  FASTREG_EXPECTS(!pending_);
  pending_ = true;
  obs::op_begin(self(), /*is_write=*/true);
  obs::round_issue(self(), 1);
  cur_val_ = std::move(v);
  acks_.clear();
  message m;
  m.type = msg_type::write_req;
  m.ts = ts_;
  m.val = cur_val_;
  m.prev = last_val_;
  m.rcounter = 0;  // the writer's rCounter is always 0 (Section 4)
  for (std::uint32_t i = 0; i < cfg_.S(); ++i) {
    net.send(server_id(i), m);
  }
}

void fast_swmr_writer::on_message(netout&, const process_id& from,
                                  const message& m) {
  if (!pending_ || m.type != msg_type::write_ack || !from.is_server()) return;
  if (m.ts != ts_ || m.rcounter != 0) return;
  acks_.insert(from.index);
  if (acks_.size() >= cfg_.quorum()) {
    pending_ = false;
    last_val_ = cur_val_;
    ts_ += 1;  // line 7
    completed_ += 1;
    obs::round_ack(self(), 1);
    obs::op_end(self(), 1);
  }
}

std::unique_ptr<automaton> fast_swmr_writer::clone() const {
  return std::make_unique<fast_swmr_writer>(*this);
}

void fast_swmr_writer::seed_writer(const register_snapshot& migrated) {
  FASTREG_EXPECTS(!pending_);
  if (migrated.ts + 1 > ts_) {
    // ts_ is the NEXT write's timestamp; the migrated value plays the role
    // of the immediately preceding write (the `prev` tag of Section 4).
    ts_ = migrated.ts + 1;
    last_val_ = migrated.val;
  }
}

// ---------------------------------------------------------------- reader --

fast_swmr_reader::fast_swmr_reader(system_config cfg, std::uint32_t index)
    : cfg_(std::move(cfg)), index_(index) {}

void fast_swmr_reader::invoke_read(netout& net) {
  FASTREG_EXPECTS(!pending_);
  pending_ = true;
  obs::op_begin(self(), /*is_write=*/false);
  obs::round_issue(self(), 1);
  rcounter_ += 1;  // line 13
  acks_.clear();
  ack_from_.clear();
  message m;
  m.type = msg_type::read_req;
  // Line 13-14: the read message carries the reader's previous maximum
  // (with its value tags), which servers treat exactly like a write-back.
  m.ts = maxts_.ts;
  m.val = maxts_.val;
  m.prev = maxts_.prev;
  m.rcounter = rcounter_;
  for (std::uint32_t i = 0; i < cfg_.S(); ++i) {
    net.send(server_id(i), m);
  }
}

void fast_swmr_reader::on_message(netout&, const process_id& from,
                                  const message& m) {
  if (!pending_ || m.type != msg_type::read_ack || !from.is_server()) return;
  if (m.rcounter != rcounter_) return;          // stale ack from an old read
  if (ack_from_.contains(from.index)) return;   // one ack per server
  ack_from_.insert(from.index);
  acks_.push_back(m);
  if (acks_.size() >= cfg_.quorum()) decide();
}

void fast_swmr_reader::decide() {
  // Line 17: maxTS over received READACKs.
  ts_t max_ts = k_initial_ts;
  for (const auto& a : acks_) max_ts = std::max(max_ts, a.ts);

  // Line 18: the messages carrying maxTS, plus the value tags they carry.
  std::vector<seen_set> max_seen;
  tagged_value max_val;
  max_val.ts = max_ts;
  for (const auto& a : acks_) {
    if (a.ts != max_ts) continue;
    max_seen.push_back(a.seen);
    max_val.val = a.val;
    max_val.prev = a.prev;
  }

  maxts_ = max_val;  // written back by the next read (line 13)

  // Lines 19-22: return maxTS's value iff the predicate holds, otherwise
  // the previous write's value.
  last_witness_ = fast_read_predicate_witness(
      std::span<const seen_set>(max_seen), cfg_.S(), cfg_.t(), 0, cfg_.R());
  read_result res;
  res.rounds = 1;
  if (last_witness_ > 0 || max_ts == k_initial_ts) {
    res.ts = max_ts;
    res.val = max_val.val;
  } else {
    res.ts = max_ts - 1;
    res.val = max_val.prev;
  }
  pending_ = false;
  completed_ += 1;
  last_result_ = std::move(res);
  obs::round_ack(self(), 1);
  obs::op_end(self(), 1);
}

std::unique_ptr<automaton> fast_swmr_reader::clone() const {
  return std::make_unique<fast_swmr_reader>(*this);
}

// ---------------------------------------------------------------- server --

fast_swmr_server::fast_swmr_server(system_config cfg, std::uint32_t index)
    : cfg_(std::move(cfg)),
      index_(index),
      counters_(cfg_.R() + 1, 0) {}  // slot 0 = writer, slots 1..R = readers

void fast_swmr_server::on_message(netout& net, const process_id& from,
                                  const message& m) {
  if (m.type != msg_type::write_req && m.type != msg_type::read_req) return;
  if (from.is_server()) return;  // clients only
  const std::uint32_t slot = client_slot(from);
  if (slot >= counters_.size()) return;
  // Line 26: process only if rCounter' >= counter[pid(q)].
  if (m.rcounter < counters_[slot]) return;

  // Lines 27-30.
  if (m.ts > cur_.ts) {
    cur_ = tagged_value{m.ts, m.val, m.prev};
    seen_.clear();
    seen_.insert(from);
  } else {
    seen_.insert(from);
  }
  counters_[slot] = m.rcounter;  // line 31

  // Lines 32-35: reply with the stored timestamp, tags and seen set.
  message reply;
  reply.type = m.type == msg_type::read_req ? msg_type::read_ack
                                            : msg_type::write_ack;
  reply.ts = cur_.ts;
  reply.val = cur_.val;
  reply.prev = cur_.prev;
  reply.seen = seen_;
  reply.rcounter = m.rcounter;
  net.send(from, reply);
}

std::unique_ptr<automaton> fast_swmr_server::clone() const {
  return std::make_unique<fast_swmr_server>(*this);
}

register_snapshot fast_swmr_server::peek_state() const {
  return {cur_.ts, 0, cur_.val, cur_.prev, {}};
}

void fast_swmr_server::seed_state(const register_snapshot& s) {
  cur_ = tagged_value{s.ts, s.val, s.prev};
  // The migrated value was read from a quorum of the old generation, so
  // every client is entitled to see it: a full seen set makes the fast
  // read predicate hold until the writer's next (real) write replaces it.
  seen_ = seen_universe();
}

// -------------------------------------------------------------- protocol --

std::unique_ptr<automaton> fast_swmr_protocol::make_writer(
    const system_config& cfg, std::uint32_t index, object_id) const {
  FASTREG_EXPECTS(index == 0);  // single writer
  return std::make_unique<fast_swmr_writer>(cfg);
}

std::unique_ptr<automaton> fast_swmr_protocol::make_reader(
    const system_config& cfg, std::uint32_t index, object_id) const {
  return std::make_unique<fast_swmr_reader>(cfg, index);
}

std::unique_ptr<automaton> fast_swmr_protocol::make_server(
    const system_config& cfg, std::uint32_t index, object_id) const {
  return std::make_unique<fast_swmr_server>(cfg, index);
}

}  // namespace fastreg
