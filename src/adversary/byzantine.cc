#include "adversary/byzantine.h"

#include <utility>
#include <vector>

namespace fastreg::adversary {
namespace {

/// Captures an inner automaton's sends so a wrapper can filter them.
class capture_net final : public netout {
 public:
  void send(const process_id& to, message m) override {
    out.emplace_back(to, std::move(m));
  }
  std::vector<std::pair<process_id, message>> out;
};

}  // namespace

// ------------------------------------------------------------ stale_server --

void stale_server::on_message(netout& net, const process_id& from,
                              const message& m) {
  if (m.type != msg_type::read_req && m.type != msg_type::write_req &&
      m.type != msg_type::wb_req && m.type != msg_type::query_req) {
    return;
  }
  message reply;
  switch (m.type) {
    case msg_type::read_req:
      reply.type = msg_type::read_ack;
      break;
    case msg_type::write_req:
      reply.type = msg_type::write_ack;
      break;
    case msg_type::wb_req:
      reply.type = msg_type::wb_ack;
      break;
    default:
      reply.type = msg_type::query_ack;
      break;
  }
  reply.ts = k_initial_ts;  // pretend nothing was ever written
  reply.rcounter = m.rcounter;
  reply.seen.insert(from);
  net.send(from, reply);
}

// ---------------------------------------------------------- forging_server --

void forging_server::on_message(netout& net, const process_id& from,
                                const message& m) {
  if (m.type != msg_type::read_req && m.type != msg_type::write_req) return;
  message reply;
  reply.type = m.type == msg_type::read_req ? msg_type::read_ack
                                            : msg_type::write_ack;
  reply.ts = m.ts + 1'000'000;  // a timestamp the writer never produced
  reply.val = "forged";
  reply.prev = "forged_prev";
  reply.sig = {0xde, 0xad, 0xbe, 0xef};  // cannot forge a real signature
  reply.rcounter = m.rcounter;
  reply.seen.insert(from);
  net.send(from, reply);
}

// -------------------------------------------------------- seen_liar_server --

seen_liar_server::seen_liar_server(std::unique_ptr<automaton> inner,
                                   std::uint32_t clients)
    : inner_(std::move(inner)), clients_(clients) {}

seen_liar_server::seen_liar_server(const seen_liar_server& o)
    : inner_(o.inner_->clone()), clients_(o.clients_) {}

void seen_liar_server::on_message(netout& net, const process_id& from,
                                  const message& m) {
  capture_net cap;
  inner_->on_message(cap, from, m);
  for (auto& [to, reply] : cap.out) {
    // Claim every client has already seen our timestamp.
    seen_set lie;
    lie.insert(writer_id(0));
    for (std::uint32_t i = 0; i < clients_; ++i) lie.insert(reader_id(i));
    reply.seen = lie;
    net.send(to, std::move(reply));
  }
}

// -------------------------------------------------------- two_faced_server --

two_faced_server::two_faced_server(std::unique_ptr<automaton> inner,
                                   std::unordered_set<process_id> targets)
    : real_(std::move(inner)),
      shadow_(real_->clone()),
      shadow_targets_(std::move(targets)) {}

two_faced_server::two_faced_server(const two_faced_server& o)
    : real_(o.real_->clone()),
      shadow_(o.shadow_->clone()),
      shadow_targets_(o.shadow_targets_) {}

void two_faced_server::on_message(netout& net, const process_id& from,
                                  const message& m) {
  // The shadow pretends the write never happened: it sees every message
  // except writes. Both copies otherwise process everything, so their
  // seen/counter bookkeeping stays plausible to their respective audiences.
  capture_net real_out;
  real_->on_message(real_out, from, m);
  capture_net shadow_out;
  if (m.type != msg_type::write_req && m.type != msg_type::wb_req) {
    shadow_->on_message(shadow_out, from, m);
  }
  for (auto& [to, reply] : real_out.out) {
    if (!shadow_targets_.contains(to)) net.send(to, std::move(reply));
  }
  for (auto& [to, reply] : shadow_out.out) {
    if (shadow_targets_.contains(to)) net.send(to, std::move(reply));
  }
}

// ----------------------------------------------------- equivocating_server --

equivocating_server::equivocating_server(std::unique_ptr<automaton> inner,
                                         std::uint32_t index)
    : inner_(std::move(inner)), index_(index) {}

equivocating_server::equivocating_server(const equivocating_server& o)
    : inner_(o.inner_->clone()), index_(o.index_) {}

void equivocating_server::on_message(netout& net, const process_id& from,
                                     const message& m) {
  if (from.is_reader() && from.index % 2 == 0 &&
      m.type == msg_type::read_req) {
    // Stale lie to even readers.
    message reply;
    reply.type = msg_type::read_ack;
    reply.ts = k_initial_ts;
    reply.rcounter = m.rcounter;
    reply.seen.insert(from);
    net.send(from, reply);
    return;
  }
  inner_->on_message(net, from, m);
}

}  // namespace fastreg::adversary
