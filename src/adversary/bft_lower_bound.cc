#include "adversary/bft_lower_bound.h"

#include "adversary/blocks.h"
#include "adversary/byzantine.h"
#include "checker/atomicity.h"
#include "common/check.h"
#include "sim/world.h"

namespace fastreg::adversary {
namespace {

using sim::envelope;
using sim::world;

void deliver_requests(world& w, const process_id& client,
                      const std::vector<bool>& allowed) {
  w.deliver_matching([&](const envelope& e) {
    return e.from == client && e.to.is_server() && allowed[e.to.index] &&
           (e.msg.type == msg_type::read_req ||
            e.msg.type == msg_type::write_req);
  });
}

void deliver_acks(world& w, const process_id& client,
                  const std::vector<bool>& allowed) {
  w.deliver_matching([&](const envelope& e) {
    return e.to == client && e.from.is_server() && allowed[e.from.index];
  });
}

struct schedule_outcome {
  std::optional<value_t> last_chain_read;
  std::optional<value_t> read_pr_a;
  std::optional<value_t> read_pr_c;
  checker::check_result check{};
};

/// Block-index helpers over the bft_partition layout.
struct layout {
  const bft_partition& bp;
  // T_j (1-based) -> partition block index.
  [[nodiscard]] std::size_t T(std::size_t j) const { return j - 1; }
  // B_j (1-based) -> partition block index.
  [[nodiscard]] std::size_t B(std::size_t j) const {
    return bp.readers_used + 2 + (j - 1);
  }
};

/// pr^C schedule (pr^D when with_write = false; then B_{R+1} stays honest).
schedule_outcome run_schedule(const protocol& proto, const system_config& cfg,
                              const bft_partition& bp, bool with_write,
                              const value_t& v1) {
  const std::uint32_t S = cfg.S();
  const std::uint32_t rp = bp.readers_used;
  const auto& part = bp.part;
  const layout L{bp};

  world w(cfg);
  w.install(proto);
  schedule_outcome out;

  if (with_write) {
    // B_{R'+1} turns two-faced toward r1 at the moment the write arrives:
    // wrap each of its servers (shadow = clone of the pre-write state).
    for (const std::uint32_t s : part.block(L.B(rp + 1))) {
      auto* cur = w.get(server_id(s));
      w.replace_automaton(
          server_id(s),
          std::make_unique<two_faced_server>(
              cur->clone(), std::unordered_set<process_id>{reader_id(0)}));
    }
    // wr_{R'+1}: the write reaches T_{R'+1} and B_{R'+1} only.
    w.invoke_write(v1);
    deliver_requests(w, writer_id(0),
                     part.membership({L.T(rp + 1), L.B(rp + 1)}, S));
  }

  // Delta-pr_{R'} reads:
  //   r_h (h < R') skips {T_j : h<=j<=R'} and {B_j : h+1<=j<=R'};
  //   r_{R'} skips T_{R'} only.
  for (std::uint32_t h = 1; h <= rp; ++h) {
    std::vector<std::size_t> allowed_blocks;
    if (h < rp) {
      for (std::size_t j = 1; j < h; ++j) allowed_blocks.push_back(L.T(j));
      allowed_blocks.push_back(L.T(rp + 1));
      allowed_blocks.push_back(L.T(rp + 2));
      for (std::size_t j = 1; j <= h; ++j) allowed_blocks.push_back(L.B(j));
      allowed_blocks.push_back(L.B(rp + 1));
    } else {
      for (std::size_t j = 1; j <= rp + 2; ++j) {
        if (j != rp) allowed_blocks.push_back(L.T(j));
      }
      for (std::size_t j = 1; j <= rp + 1; ++j) {
        allowed_blocks.push_back(L.B(j));
      }
    }
    w.invoke_read(h - 1);
    deliver_requests(w, reader_id(h - 1), part.membership(allowed_blocks, S));
    if (h == rp) {
      // Written blocks' acks first: the adversary's scheduling choice that
      // guarantees the reader's quorum contains evidence of the write.
      deliver_acks(w, reader_id(h - 1),
                   part.membership({L.T(rp + 1), L.B(rp + 1)}, S));
      deliver_acks(w, reader_id(h - 1), std::vector<bool>(S, true));
      const auto res = w.last_read(h - 1);
      FASTREG_CHECK(res.has_value());
      out.last_chain_read = res->val;
    }
  }

  // pr^A: r1 completes, never hearing from T_{R'+1}; from B_{R'+1} it gets
  // the shadow (write-less) answers.
  deliver_acks(w, reader_id(0),
               part.membership({L.T(rp + 2), L.B(1), L.B(rp + 1)}, S));
  std::vector<std::size_t> step2_blocks;
  for (std::size_t j = 1; j <= rp; ++j) step2_blocks.push_back(L.T(j));
  for (std::size_t j = 2; j <= rp; ++j) step2_blocks.push_back(L.B(j));
  deliver_requests(w, reader_id(0), part.membership(step2_blocks, S));
  deliver_acks(w, reader_id(0), part.membership(step2_blocks, S));
  {
    const auto res = w.last_read(0);
    FASTREG_CHECK(res.has_value());
    out.read_pr_a = res->val;
  }

  // pr^C: r1 reads again, skipping T_{R'+1}.
  w.invoke_read(0);
  std::vector<std::size_t> all_but_t_rp1;
  for (std::size_t j = 0; j < part.block_count(); ++j) {
    if (j != L.T(rp + 1)) all_but_t_rp1.push_back(j);
  }
  deliver_requests(w, reader_id(0), part.membership(all_but_t_rp1, S));
  deliver_acks(w, reader_id(0), part.membership(all_but_t_rp1, S));
  {
    const auto res = w.last_read(0);
    FASTREG_CHECK(res.has_value());
    out.read_pr_c = res->val;
  }

  out.check = checker::check_swmr_atomicity(w.hist());
  return out;
}

/// Delta-pr_i standalone: write reaches T_{i+1}..T_{R'+1}, B_{i+1}..B_{R'+1};
/// reads r_1..r_i with the Section 6.2 skip sets; returns r_i's value.
value_t run_chain_step(const protocol& proto, const system_config& cfg,
                       const bft_partition& bp, std::uint32_t i,
                       const value_t& v1) {
  const std::uint32_t S = cfg.S();
  const std::uint32_t rp = bp.readers_used;
  const auto& part = bp.part;
  const layout L{bp};

  world w(cfg);
  w.install(proto);

  w.invoke_write(v1);
  std::vector<std::size_t> write_blocks;
  for (std::size_t j = i + 1; j <= rp + 1; ++j) {
    write_blocks.push_back(L.T(j));
    write_blocks.push_back(L.B(j));
  }
  deliver_requests(w, writer_id(0), part.membership(write_blocks, S));

  for (std::uint32_t h = 1; h <= i; ++h) {
    std::vector<std::size_t> allowed_blocks;
    if (h < i) {
      // skips {T_j : h<=j<=i} and {B_j : h+1<=j<=i}
      for (std::size_t j = 1; j < h; ++j) allowed_blocks.push_back(L.T(j));
      for (std::size_t j = i + 1; j <= rp + 2; ++j) {
        allowed_blocks.push_back(L.T(j));
      }
      for (std::size_t j = 1; j <= h; ++j) allowed_blocks.push_back(L.B(j));
      for (std::size_t j = i + 1; j <= rp + 1; ++j) {
        allowed_blocks.push_back(L.B(j));
      }
    } else {
      // r_i skips T_i only.
      for (std::size_t j = 1; j <= rp + 2; ++j) {
        if (j != i) allowed_blocks.push_back(L.T(j));
      }
      for (std::size_t j = 1; j <= rp + 1; ++j) {
        allowed_blocks.push_back(L.B(j));
      }
    }
    w.invoke_read(h - 1);
    deliver_requests(w, reader_id(h - 1), part.membership(allowed_blocks, S));
    if (h == i) {
      deliver_acks(w, reader_id(h - 1), part.membership(write_blocks, S));
      deliver_acks(w, reader_id(h - 1), std::vector<bool>(S, true));
    }
  }
  const auto res = w.last_read(i - 1);
  FASTREG_CHECK(res.has_value());
  return res->val;
}

}  // namespace

construction_report run_bft_lower_bound(const protocol& proto,
                                        const system_config& cfg) {
  construction_report rep;
  rep.written_value = "v1";
  FASTREG_EXPECTS(proto.read_rounds() == 1 && proto.write_rounds() == 1);

  const auto bp = make_bft_partition(cfg.S(), cfg.t(), cfg.b(), cfg.R());
  if (!bp) {
    rep.applicable = false;
    rep.reason = "no block partition exists: S > (R+2)t + (R+1)b for all "
                 "R' <= R (feasible region, " +
                 cfg.describe() + ")";
    return rep;
  }
  rep.applicable = true;
  rep.readers_used = bp->readers_used;
  {
    std::vector<std::string> names;
    for (std::uint32_t j = 1; j <= bp->readers_used + 2; ++j) {
      names.push_back("T" + std::to_string(j));
    }
    for (std::uint32_t j = 1; j <= bp->readers_used + 1; ++j) {
      names.push_back("B" + std::to_string(j));
    }
    rep.partition = bp->part.describe(names);
  }
  rep.trace.push_back("partition: " + rep.partition);

  for (std::uint32_t i = 1; i <= bp->readers_used; ++i) {
    rep.chain.push_back(run_chain_step(proto, cfg, *bp, i, rep.written_value));
    rep.trace.push_back("Delta-pr_" + std::to_string(i) + ": r" +
                        std::to_string(i) + " read \"" + rep.chain.back() +
                        "\"");
  }

  const auto pr_c =
      run_schedule(proto, cfg, *bp, /*with_write=*/true, rep.written_value);
  const auto pr_d =
      run_schedule(proto, cfg, *bp, /*with_write=*/false, rep.written_value);

  rep.read_pr_a = pr_c.read_pr_a;
  rep.read_pr_c = pr_c.read_pr_c;
  rep.indistinguishability_ok = pr_c.read_pr_a == pr_d.read_pr_a &&
                                pr_c.read_pr_c == pr_d.read_pr_c;
  rep.trace.push_back("pr^A: r1 read \"" + *pr_c.read_pr_a +
                      "\" (pr^B sibling: \"" + *pr_d.read_pr_a + "\")");
  rep.trace.push_back("pr^C: r1 read \"" + *pr_c.read_pr_c +
                      "\" (pr^D sibling: \"" + *pr_d.read_pr_c + "\")");

  rep.violation = !pr_c.check.ok;
  rep.checker_error = pr_c.check.error;
  rep.trace.push_back(rep.violation ? "checker: VIOLATION: " + pr_c.check.error
                                    : "checker: history is atomic");
  return rep;
}

}  // namespace fastreg::adversary
