#include "registers/regular.h"

#include "common/check.h"
#include "obs/trace.h"

namespace fastreg {

// -------------------------------------------------------- regular_reader --

regular_reader::regular_reader(system_config cfg, std::uint32_t index)
    : cfg_(std::move(cfg)), index_(index) {}

void regular_reader::invoke_read(netout& net) {
  FASTREG_EXPECTS(!pending_);
  pending_ = true;
  obs::op_begin(self(), /*is_write=*/false);
  obs::round_issue(self(), 1);
  rcounter_ += 1;
  best_ts_ = {};
  best_val_.clear();
  acks_.clear();
  message m;
  m.type = msg_type::read_req;
  m.rcounter = rcounter_;
  for (std::uint32_t i = 0; i < cfg_.S(); ++i) {
    net.send(server_id(i), m);
  }
}

void regular_reader::on_message(netout&, const process_id& from,
                                const message& m) {
  if (!pending_ || m.type != msg_type::read_ack || !from.is_server()) return;
  if (m.rcounter != rcounter_ || acks_.contains(from.index)) return;
  acks_.insert(from.index);
  if (m.wts() > best_ts_) {
    best_ts_ = m.wts();
    best_val_ = m.val;
  }
  if (acks_.size() >= cfg_.quorum()) {
    pending_ = false;
    completed_ += 1;
    last_result_ = read_result{best_ts_.num, best_ts_.wid, best_val_, 1};
    obs::round_ack(self(), 1);
    obs::op_end(self(), 1);
  }
}

std::unique_ptr<automaton> regular_reader::clone() const {
  return std::make_unique<regular_reader>(*this);
}

// --------------------------------------------- single_reader_fast_reader --

single_reader_fast_reader::single_reader_fast_reader(system_config cfg,
                                                     std::uint32_t index)
    : cfg_(std::move(cfg)), index_(index) {}

void single_reader_fast_reader::invoke_read(netout& net) {
  FASTREG_EXPECTS(!pending_);
  pending_ = true;
  obs::op_begin(self(), /*is_write=*/false);
  obs::round_issue(self(), 1);
  rcounter_ += 1;
  best_ts_ = {};
  best_val_.clear();
  acks_.clear();
  message m;
  m.type = msg_type::read_req;
  m.rcounter = rcounter_;
  for (std::uint32_t i = 0; i < cfg_.S(); ++i) {
    net.send(server_id(i), m);
  }
}

void single_reader_fast_reader::on_message(netout&, const process_id& from,
                                           const message& m) {
  if (!pending_ || m.type != msg_type::read_ack || !from.is_server()) return;
  if (m.rcounter != rcounter_ || acks_.contains(from.index)) return;
  acks_.insert(from.index);
  if (m.wts() > best_ts_) {
    best_ts_ = m.wts();
    best_val_ = m.val;
  }
  if (acks_.size() >= cfg_.quorum()) {
    // Section 1: return the quorum maximum unless it is older than the
    // previously returned value; then return the previous value again.
    // With a single reader this totally orders reads and is atomic.
    if (best_ts_ > last_ts_) {
      last_ts_ = best_ts_;
      last_val_ = best_val_;
    }
    pending_ = false;
    completed_ += 1;
    last_result_ = read_result{last_ts_.num, last_ts_.wid, last_val_, 1};
    obs::round_ack(self(), 1);
    obs::op_end(self(), 1);
  }
}

std::unique_ptr<automaton> single_reader_fast_reader::clone() const {
  return std::make_unique<single_reader_fast_reader>(*this);
}

// ------------------------------------------------------------- protocols --

std::unique_ptr<automaton> regular_protocol::make_writer(
    const system_config& cfg, std::uint32_t index, object_id) const {
  FASTREG_EXPECTS(index == 0);
  return std::make_unique<abd_writer>(cfg);
}

std::unique_ptr<automaton> regular_protocol::make_reader(
    const system_config& cfg, std::uint32_t index, object_id) const {
  return std::make_unique<regular_reader>(cfg, index);
}

std::unique_ptr<automaton> regular_protocol::make_server(
    const system_config& cfg, std::uint32_t index, object_id) const {
  return std::make_unique<quorum_server>(cfg, index);
}

std::unique_ptr<automaton> single_reader_protocol::make_writer(
    const system_config& cfg, std::uint32_t index, object_id) const {
  FASTREG_EXPECTS(index == 0);
  return std::make_unique<abd_writer>(cfg);
}

std::unique_ptr<automaton> single_reader_protocol::make_reader(
    const system_config& cfg, std::uint32_t index, object_id) const {
  return std::make_unique<single_reader_fast_reader>(cfg, index);
}

std::unique_ptr<automaton> single_reader_protocol::make_server(
    const system_config& cfg, std::uint32_t index, object_id) const {
  return std::make_unique<quorum_server>(cfg, index);
}

}  // namespace fastreg
