// Real-socket deployment of the store: a net::cluster hosting store
// client/server automata, with blocking get/put/multi_get front-ends and
// per-key history gathering.
//
// Threading contract: at most one blocking operation at a time per client
// index (same rule as node::blocking_read); different client indices may
// be driven from different threads concurrently. multi_get pipelines all
// its keys in one reactor step, so requests and replies travel as batch
// frames.
//
// Timeouts: a timed-out op may still be in flight; until it completes,
// further ops on the same (client, key) fail fast (nullopt/false) rather
// than abort, and a late completion closes the abandoned op's history
// record instead of leaking into a later call's results.
#pragma once

#include <chrono>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "net/cluster.h"
#include "store/histories.h"
#include "store/store.h"

namespace fastreg::store {

class tcp_store {
 public:
  explicit tcp_store(store_config cfg);

  void start() { cluster_.start(); }
  void stop() { cluster_.stop(); }

  [[nodiscard]] const store_config& config() const {
    return proto_.config();
  }
  [[nodiscard]] net::cluster& cluster() { return cluster_; }
  [[nodiscard]] store_protocol& proto() { return proto_; }

  /// Blocking single-key ops. nullopt / false on timeout.
  [[nodiscard]] std::optional<store_result> get(
      std::uint32_t reader_index, const std::string& key,
      std::chrono::milliseconds timeout = std::chrono::seconds(10));
  [[nodiscard]] bool put(
      std::uint32_t writer_index, const std::string& key, value_t v,
      std::chrono::milliseconds timeout = std::chrono::seconds(10));

  /// Pipelined read of several distinct keys issued in ONE step (batched
  /// on the wire). Returns completion-ordered results, or nullopt if any
  /// key timed out (partial completions are still recorded in histories).
  [[nodiscard]] std::optional<std::vector<store_result>> multi_get(
      std::uint32_t reader_index, const std::vector<std::string>& keys,
      std::chrono::milliseconds timeout = std::chrono::seconds(10));

  /// Pipelined write of several distinct keys issued in ONE step.
  [[nodiscard]] bool multi_put(
      std::uint32_t writer_index,
      const std::vector<std::pair<std::string, value_t>>& kvs,
      std::chrono::milliseconds timeout = std::chrono::seconds(10));

  /// Per-key histories of everything invoked so far, rebuilt in
  /// invocation-time order (steady-clock nanoseconds, one machine, so
  /// cross-node ordering is meaningful). Thread-safe.
  [[nodiscard]] store_histories gather() const;

 private:
  struct raw_op {
    std::string key{};
    process_id client{};
    bool is_put{false};
    std::uint64_t t0{0};
    std::optional<std::uint64_t> t1{};
    ts_t ts{k_initial_ts};
    std::int32_t wid{0};
    value_t val{};
    int rounds{0};
  };

  std::optional<std::vector<store_result>> run_ops(
      net::node& n, const process_id& client,
      const std::vector<std::pair<std::string, value_t>>& kvs, bool is_put,
      std::chrono::milliseconds timeout);

  store_protocol proto_;
  net::cluster cluster_;
  mutable std::mutex mu_;
  std::vector<raw_op> log_;
  /// Indices of incomplete log_ entries per (client, key), oldest first,
  /// so completions match their op in O(log n) instead of rescanning the
  /// whole append-only log.
  std::map<std::pair<process_id, std::string>, std::deque<std::size_t>>
      open_;
};

}  // namespace fastreg::store
