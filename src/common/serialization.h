// Minimal, dependency-free binary codec used for wire messages (net
// transport) and for signature payloads (crypto). Fixed little-endian
// integer encodings; length-prefixed strings and byte blobs.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/check.h"

namespace fastreg {

/// Appends encoded fields to a byte buffer -- either one it owns (default
/// constructor) or one the CALLER owns (external-buffer constructor).
///
/// The external mode is the zero-copy wire path: the transport precomputes
/// the exact encoded size (message_wire_size and friends), reserves once
/// into a long-lived buffer it reuses across messages, and encodes
/// directly into it. In steady state (capacity warmed) no put_* call
/// allocates, so encoding a message costs only the byte stores -- no
/// intermediate std::vector per message.
class byte_writer {
 public:
  byte_writer() : buf_(&owned_) {}
  /// Appends to `external` (which must outlive the writer). take() is
  /// invalid in this mode; written() reports bytes appended by this
  /// writer.
  explicit byte_writer(std::vector<std::uint8_t>& external)
      : buf_(&external), base_(external.size()) {}

  void put_u8(std::uint8_t v) { buf_->push_back(v); }

  void put_u32(std::uint32_t v) { put_fixed(v); }
  void put_u64(std::uint64_t v) { put_fixed(v); }
  void put_i64(std::int64_t v) { put_fixed(static_cast<std::uint64_t>(v)); }
  void put_i32(std::int32_t v) { put_fixed(static_cast<std::uint32_t>(v)); }

  void put_bytes(std::span<const std::uint8_t> b) {
    put_u32(static_cast<std::uint32_t>(b.size()));
    buf_->insert(buf_->end(), b.begin(), b.end());
  }
  void put_string(const std::string& s) {
    put_u32(static_cast<std::uint32_t>(s.size()));
    buf_->insert(buf_->end(), s.begin(), s.end());
  }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return *buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() {
    FASTREG_EXPECTS(buf_ == &owned_);
    return std::move(owned_);
  }
  /// Bytes this writer appended (external mode: past the construction-time
  /// end of the buffer).
  [[nodiscard]] std::size_t written() const { return buf_->size() - base_; }

 private:
  template <typename T>
  void put_fixed(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<std::uint8_t> owned_;
  std::vector<std::uint8_t>* buf_;
  std::size_t base_{0};
};

/// Exact encoded sizes of byte_writer's field encodings, for callers that
/// reserve buffer space before encoding (the zero-copy wire path).
[[nodiscard]] constexpr std::size_t wire_size_u8() { return 1; }
[[nodiscard]] constexpr std::size_t wire_size_u32() { return 4; }
[[nodiscard]] constexpr std::size_t wire_size_u64() { return 8; }
[[nodiscard]] inline std::size_t wire_size_string(const std::string& s) {
  return 4 + s.size();
}
[[nodiscard]] inline std::size_t wire_size_bytes(
    std::span<const std::uint8_t> b) {
  return 4 + b.size();
}

/// Reads encoded fields from a borrowed byte span. All getters return
/// nullopt on truncation instead of throwing, so malformed network input
/// (including bytes crafted by Byzantine peers) is rejected gracefully.
class byte_reader {
 public:
  explicit byte_reader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::optional<std::uint8_t> get_u8() {
    if (pos_ + 1 > data_.size()) return std::nullopt;
    return data_[pos_++];
  }
  [[nodiscard]] std::optional<std::uint32_t> get_u32() {
    return get_fixed<std::uint32_t>();
  }
  [[nodiscard]] std::optional<std::uint64_t> get_u64() {
    return get_fixed<std::uint64_t>();
  }
  [[nodiscard]] std::optional<std::int64_t> get_i64() {
    auto v = get_fixed<std::uint64_t>();
    if (!v) return std::nullopt;
    return static_cast<std::int64_t>(*v);
  }
  [[nodiscard]] std::optional<std::int32_t> get_i32() {
    auto v = get_fixed<std::uint32_t>();
    if (!v) return std::nullopt;
    return static_cast<std::int32_t>(*v);
  }
  [[nodiscard]] std::optional<std::string> get_string() {
    auto n = get_u32();
    if (!n || pos_ + *n > data_.size()) return std::nullopt;
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), *n);
    pos_ += *n;
    return s;
  }
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> get_bytes() {
    auto n = get_u32();
    if (!n || pos_ + *n > data_.size()) return std::nullopt;
    std::vector<std::uint8_t> b(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                data_.begin() + static_cast<std::ptrdiff_t>(pos_ + *n));
    pos_ += *n;
    return b;
  }

  [[nodiscard]] bool exhausted() const { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

 private:
  template <typename T>
  [[nodiscard]] std::optional<T> get_fixed() {
    if (pos_ + sizeof(T) > data_.size()) return std::nullopt;
    T v{0};
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_{0};
};

}  // namespace fastreg
