#include "benchutil/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "common/check.h"

namespace fastreg::benchutil {

void stats::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double stats::mean() const {
  if (samples_.empty()) return 0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double stats::min() const {
  ensure_sorted();
  return samples_.empty() ? 0 : samples_.front();
}

double stats::max() const {
  ensure_sorted();
  return samples_.empty() ? 0 : samples_.back();
}

double stats::percentile(double p) const {
  // Out-of-domain p (including NaN) would index outside the sample array.
  FASTREG_EXPECTS(p >= 0 && p <= 100);
  if (samples_.empty()) return 0;
  ensure_sorted();
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - std::floor(rank);
  return samples_[lo] * (1 - frac) + samples_[hi] * frac;
}

void stream_hist::add(double sample) {
  FASTREG_EXPECTS(sample >= 0 && std::isfinite(sample));
  if (hist_.count() == 0) {
    min_ = max_ = sample;
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
  sum_ += sample;
  hist_.observe(static_cast<std::uint64_t>(std::llround(sample * k_scale)));
}

double stream_hist::mean() const {
  const auto n = hist_.count();
  return n == 0 ? 0 : sum_ / static_cast<double>(n);
}

double stream_hist::percentile(double p) const {
  FASTREG_EXPECTS(p >= 0 && p <= 100);
  if (hist_.count() == 0) return 0;
  const double est =
      static_cast<double>(hist_.percentile(p)) / k_scale;
  // The histogram clamps to ITS fixed-point min/max; re-clamp to the
  // exact doubles so min()/percentile(0) agree to the last bit.
  return std::clamp(est, min_, max_);
}

void stream_hist::reset() {
  hist_.reset();
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

}  // namespace fastreg::benchutil
