// Thin RAII wrappers over POSIX TCP sockets (localhost deployments).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace fastreg::net {

/// Owns a file descriptor; closes on destruction. Move-only.
class unique_fd {
 public:
  unique_fd() = default;
  explicit unique_fd(int fd) : fd_(fd) {}
  ~unique_fd();
  unique_fd(const unique_fd&) = delete;
  unique_fd& operator=(const unique_fd&) = delete;
  unique_fd(unique_fd&& o) noexcept : fd_(o.release()) {}
  unique_fd& operator=(unique_fd&& o) noexcept;

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset(int fd = -1);

 private:
  int fd_{-1};
};

/// Binds and listens on 127.0.0.1:port (port 0 = ephemeral). Non-blocking.
[[nodiscard]] unique_fd listen_on(std::uint16_t port);

/// The port a bound socket actually listens on.
[[nodiscard]] std::uint16_t local_port(int fd);

/// Starts a non-blocking connect to 127.0.0.1:port; completion is signaled
/// by epoll writability.
[[nodiscard]] unique_fd connect_to(std::uint16_t port);

/// Accepts one pending connection (non-blocking); nullopt when none.
[[nodiscard]] std::optional<unique_fd> accept_one(int listen_fd);

void set_nonblocking(int fd);
void set_nodelay(int fd);

}  // namespace fastreg::net
