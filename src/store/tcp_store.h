// Real-socket deployment of the store: a net::cluster hosting store
// client/server automata, with blocking get/put/multi_get front-ends and
// per-key history gathering.
//
// Client topology follows the cluster's (net::cluster_options): per-node
// (one node and reactor thread per client, the default) or hub (every
// client an actor on one node whose reactor pool carries all their
// connections). All the entry points below address clients through
// cluster::client_node/client_actor, so they work unchanged under both.
//
// Threading contract: at most one blocking operation at a time per client
// index (same rule as node::blocking_read); different client indices may
// be driven from different threads concurrently. multi_get pipelines all
// its keys in one reactor step, so requests and replies travel as batch
// frames.
//
// For sustained throughput, open_session() (the unified async front-end
// of store/async_client.h) replaces the one-blocking-op-at-a-time loop
// with a sliding window of up to `depth` ops in flight per client.
// Combined with the per-connection batch window (net::node_options) this
// keeps the wire busy across round trips instead of idling between them.
//
// Timeouts: a timed-out op may still be in flight; until it completes,
// further ops on the same (client, key) fail fast (nullopt/false) rather
// than abort, and a late completion closes the abandoned op's history
// record instead of leaking into a later call's results.
#pragma once

#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "net/cluster.h"
#include "store/async_client.h"
#include "store/histories.h"
#include "store/store.h"

namespace fastreg::store {

class tcp_store {
 public:
  explicit tcp_store(store_config cfg,
                     net::node_options nopt = net::node_options::from_env(),
                     net::cluster_options copt = {});

  void start() { cluster_.start(); }
  void stop() { cluster_.stop(); }

  /// Restarts server i's node on its original port with a freshly built
  /// store server automaton -- replaying its op log + snapshot when
  /// config().persist is enabled (the rejoin-with-state path), empty
  /// otherwise. Use after cluster().server(i).stop() killed it mid-run.
  void restart_server(std::uint32_t i) { cluster_.restart_server(i); }

  [[nodiscard]] const store_config& config() const {
    return proto_.config();
  }
  [[nodiscard]] net::cluster& cluster() { return cluster_; }
  [[nodiscard]] store_protocol& proto() { return proto_; }

  /// Blocking single-key ops. nullopt / false on timeout.
  [[nodiscard]] std::optional<store_result> get(
      std::uint32_t reader_index, const std::string& key,
      std::chrono::milliseconds timeout = std::chrono::seconds(10));
  [[nodiscard]] bool put(
      std::uint32_t writer_index, const std::string& key, value_t v,
      std::chrono::milliseconds timeout = std::chrono::seconds(10));

  /// Pipelined read of several distinct keys issued in ONE step (batched
  /// on the wire). Returns completion-ordered results, or nullopt if any
  /// key timed out (partial completions are still recorded in histories).
  [[nodiscard]] std::optional<std::vector<store_result>> multi_get(
      std::uint32_t reader_index, const std::vector<std::string>& keys,
      std::chrono::milliseconds timeout = std::chrono::seconds(10));

  /// Pipelined write of several distinct keys issued in ONE step.
  [[nodiscard]] bool multi_put(
      std::uint32_t writer_index,
      const std::vector<std::pair<std::string, value_t>>& kvs,
      std::chrono::milliseconds timeout = std::chrono::seconds(10));

  /// The unified pipelined front-end over this deployment. Sessions from
  /// it share the deployment's op log with the blocking calls above, so
  /// gather() sees everything either path did.
  [[nodiscard]] tcp_frontend& frontend() { return fe_; }
  /// Convenience for frontend().open_session: the pipelined session for
  /// one client (one live session per client index; do not mix with
  /// blocking calls on the same index).
  [[nodiscard]] std::unique_ptr<async_session> open_session(
      const process_id& client, std::uint32_t depth) {
    return fe_.open_session(client, depth);
  }

  /// Per-key histories of everything invoked so far, rebuilt in
  /// invocation-time order (steady-clock nanoseconds, one machine, so
  /// cross-node ordering is meaningful). Thread-safe.
  [[nodiscard]] store_histories gather() const { return log_.gather(); }

  /// Scrapes server `server_index`'s metrics over a dedicated raw socket
  /// (hello + stats_req, framed exactly like any client): the admin path
  /// an external collector would use. Safe alongside live traffic -- the
  /// scraper introduces itself under a process id no real client holds,
  /// so no reply route is hijacked. Returns the `name{labels} value`
  /// text dump; empty on timeout or connection failure.
  [[nodiscard]] std::string scrape(
      std::uint32_t server_index,
      std::chrono::milliseconds timeout = std::chrono::seconds(10));

 private:
  std::optional<std::vector<store_result>> run_ops(
      const process_id& client,
      const std::vector<std::pair<std::string, value_t>>& kvs, bool is_put,
      std::chrono::milliseconds timeout);

  store_protocol proto_;
  net::cluster cluster_;
  op_log log_;
  tcp_frontend fe_{cluster_, log_};
};

}  // namespace fastreg::store
