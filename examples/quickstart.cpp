// Quickstart: a five-minute tour of fastreg's public API.
//
//  1. Pick a configuration (S servers, t crash-tolerance, R readers) and
//     check the paper's feasibility bound.
//  2. Install the fast SWMR register (Figure 2 of the paper) on the
//     deterministic simulator.
//  3. Write and read; observe one round-trip per operation.
//  4. Verify the recorded history against the atomicity checker.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "checker/atomicity.h"
#include "registers/registry.h"
#include "sim/world.h"

using namespace fastreg;

int main() {
  // --- 1. Configuration. The paper: fast atomic SWMR iff R < S/t - 2.
  system_config cfg;
  cfg.servers = 8;     // S
  cfg.t_failures = 1;  // t: up to 1 server may crash
  cfg.readers = 2;     // R: 2 < 8/1 - 2 = 6  -> fast register exists
  std::printf("config: %s\n", cfg.describe().c_str());
  std::printf("fast SWMR feasible (R < S/t - 2)? %s\n\n",
              fast_swmr_feasible(cfg.S(), cfg.t(), cfg.R()) ? "yes" : "no");

  // --- 2. Install the protocol on the simulator.
  auto proto = make_protocol("fast_swmr");
  sim::world w(cfg);
  w.install(*proto);
  rng schedule(/*seed=*/2024);

  // --- 3. Operate. Every op is one round-trip: the writer/readers send
  // once and wait for S - t = 7 replies.
  w.invoke_write("hello, registers");
  w.run_random(schedule);  // deliver messages until quiescent
  std::printf("write(\"hello, registers\") complete (1 round-trip)\n");

  for (std::uint32_t r = 0; r < cfg.R(); ++r) {
    w.invoke_read(r);
    w.run_random(schedule);
    const auto res = w.last_read(r);
    std::printf("reader r%u read -> \"%s\" (ts=%lld, rounds=%d)\n", r + 1,
                res->val.c_str(), static_cast<long long>(res->ts),
                res->rounds);
  }

  // A torn write: the writer crashes after reaching only 3 of 8 servers.
  w.crash_after_sends(writer_id(0), 3);
  w.invoke_write("torn");
  w.run_random(schedule);
  w.invoke_read(0);
  w.run_random(schedule);
  std::printf("after a torn write, r1 read -> \"%s\"\n",
              w.last_read(0)->val.c_str());

  // --- 4. Check the whole history against Section 3.1's atomicity.
  const auto verdict = checker::check_swmr_atomicity(w.hist());
  const auto fast = checker::check_fastness(w.hist(), 1, 1);
  std::printf("\nhistory atomic?  %s\n", verdict.ok ? "yes" : "NO");
  std::printf("all ops 1 RTT?   %s\n", fast.ok ? "yes" : "NO");
  std::printf("\nfull history:\n%s", w.hist().dump().c_str());
  return verdict.ok && fast.ok ? 0 : 1;
}
