// Per-key operation histories: the store's drivers record every get/put
// into the history of the key it touched, so checker::atomicity verifies
// each object independently (atomicity is closed under composition for
// independent registers, so per-object checks imply store-wide
// correctness).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "checker/atomicity.h"
#include "checker/history.h"

namespace fastreg::store {

/// Which per-object checker store_histories::verify runs.
enum class verify_mode {
  /// Exact four-condition SWMR atomicity check (single-writer stores).
  swmr_atomic,
  /// Conditions (1)-(3) only: regular semantics admit new/old inversions.
  swmr_regular,
  /// Polynomial MWMR linearizability (the default for W > 1): scales to
  /// millions of ops per key.
  mwmr,
  /// Exponential Wing&Gong search, <= 63 ops per key. Differential
  /// oracle only; never the default.
  mwmr_oracle,
};

class store_histories {
 public:
  /// History for `key`, created empty on first touch.
  [[nodiscard]] checker::history& for_key(const std::string& key) {
    return by_key_[key];
  }

  /// Ordered by key, so iteration (and failure reports) are deterministic.
  [[nodiscard]] const std::map<std::string, checker::history>& all() const {
    return by_key_;
  }

  [[nodiscard]] std::size_t key_count() const { return by_key_.size(); }
  [[nodiscard]] std::size_t total_ops() const;
  /// Largest single-key history (the number that decides which MWMR
  /// checker is feasible).
  [[nodiscard]] std::size_t max_key_ops() const;
  [[nodiscard]] bool all_complete() const;

  /// Runs the per-object checker of `mode` on every key's history and
  /// returns the first failure annotated with its key. `failing_key`
  /// (optional) receives that key -- harnesses use it to fetch and dump
  /// the offending history.
  [[nodiscard]] checker::check_result verify(
      verify_mode mode, std::string* failing_key = nullptr) const;
  /// Convenience: the exact single-writer check, or (multi_writer) the
  /// polynomial MWMR linearizability check.
  [[nodiscard]] checker::check_result verify(bool multi_writer = false) const {
    return verify(multi_writer ? verify_mode::mwmr
                               : verify_mode::swmr_atomic);
  }

 private:
  std::map<std::string, checker::history> by_key_;
};

}  // namespace fastreg::store
