// A network node: one protocol automaton hosted on its own epoll reactor
// thread, speaking the framed TCP protocol of framing.h.
//
// Topology (matching the paper's client/server system):
//  * server nodes listen on a TCP port; clients connect to every server
//    lazily and keep the connection open; servers answer over the same
//    connection.
//  * server nodes also open outbound connections to other servers when the
//    protocol requires it (the max-min variant's gossip round).
//
// Threading: the automaton runs exclusively on the reactor thread.
// Invocations from client code are posted through an eventfd queue;
// blocking_read / blocking_write wait on a condition variable until the
// automaton reports completion. Operation histories are recorded with
// steady-clock nanosecond timestamps so cross-node histories are
// comparable (same clock domain on one machine).
//
// Outbound path (zero-copy): frames encode straight into the destination
// connection's buffer_chain (exact-size reservation, no intermediate byte
// vector), and a flush hands the whole chain to one writev. node_options
// adds an optional Nagle-style batch window: queued frames wait up to
// batch_window_us on a timerfd so one writev coalesces frames across
// automaton steps. Coalescing is strictly at the BYTE level -- each
// send/send_batch still forms its own frame, so the receiving automaton
// observes exactly the same step structure (one on_batch per send_batch)
// as the simulator's envelope model, whatever the window is.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "checker/history.h"
#include "net/buffer_chain.h"
#include "net/framing.h"
#include "net/socket.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "registers/automaton.h"

namespace fastreg::net {

/// Where to find each server. Clients and servers share one address book.
struct address_book {
  std::vector<std::uint16_t> server_ports;
};

/// Outbound flush policy of a node's reactor (the time-window batching
/// knob). Frames always encode straight into the destination connection's
/// buffer chain; the policy decides when the chain is handed to writev.
struct node_options {
  /// Flush window in microseconds. 0 = flush within the reactor step that
  /// queued the bytes (lowest latency; the pre-window behavior). > 0 =
  /// queued frames wait up to this long on a timerfd, so one writev
  /// coalesces frames across automaton steps (Nagle-style: higher
  /// throughput for bounded added latency).
  std::uint32_t batch_window_us{0};
  /// Adaptive mode: the effective window starts at 0 and widens -- up to
  /// batch_window_us (or adaptive_cap_us when batch_window_us is 0) --
  /// while flushes keep observing multi-frame backlog; it collapses back
  /// toward 0 when traffic goes idle, so a lone request is not taxed the
  /// full window.
  bool adaptive{false};
  std::uint32_t adaptive_cap_us{500};

  [[nodiscard]] std::uint32_t window_cap_us() const {
    return batch_window_us != 0 ? batch_window_us : adaptive_cap_us;
  }

  /// Reads FASTREG_BATCH_WINDOW_US: an integer window in microseconds
  /// ("0"/unset = immediate flush), or "adaptive" / "adaptive:<cap_us>".
  [[nodiscard]] static node_options from_env();
};

class node final : public netout {
 public:
  node(system_config cfg, std::unique_ptr<automaton> a,
       std::shared_ptr<const address_book> book, node_options opt = {});
  ~node() override;

  node(const node&) = delete;
  node& operator=(const node&) = delete;

  /// Servers: bind the listener (port 0 = ephemeral) before start().
  void bind_listener(std::uint16_t port = 0);
  [[nodiscard]] std::uint16_t listen_port() const;

  void start();
  void stop();

  /// Blocking client operations (call from any non-reactor thread).
  /// Returns nullopt / false on timeout.
  [[nodiscard]] std::optional<read_result> blocking_read(
      std::chrono::milliseconds timeout = std::chrono::seconds(10));
  [[nodiscard]] bool blocking_write(
      value_t v,
      std::chrono::milliseconds timeout = std::chrono::seconds(10));

  /// Generic blocking invocation for automata that expose
  /// async_client_iface (the store front-end): `start` runs on the reactor
  /// thread (it may begin several pipelined ops); returns once every op it
  /// began completed, or false on timeout. Histories are the caller's job.
  [[nodiscard]] bool blocking_op(
      const std::function<void(automaton&, netout&)>& start,
      std::chrono::milliseconds timeout = std::chrono::seconds(10));

  // Pipelined async client support (async_client_iface automata). The
  // reactor mirrors the iface's in-flight and completed counters under
  // mu_ so callers can wait without racing automaton internals.

  /// Waits until fewer than `limit` ops are in flight (a pipeline slot is
  /// free). False on timeout.
  [[nodiscard]] bool wait_ops_in_flight_below(
      std::size_t limit,
      std::chrono::milliseconds timeout = std::chrono::seconds(10));
  /// Waits until the automaton has completed at least `target` ops since
  /// construction. False on timeout.
  [[nodiscard]] bool wait_ops_completed(
      std::uint64_t target,
      std::chrono::milliseconds timeout = std::chrono::seconds(10));
  /// Reactor-mirrored ops_completed() (safe from any thread).
  [[nodiscard]] std::uint64_t async_completed() const;

  /// Runs `fn` on the reactor thread and waits for it to finish. The only
  /// safe way for non-reactor code to inspect automaton state that late
  /// messages may still mutate (e.g. draining store completions).
  void run_on_reactor(const std::function<void(automaton&)>& fn);

  /// Like run_on_reactor, but NEVER runs `fn` inline when the reactor is
  /// not running: returns false instead (also when the reactor exits
  /// before draining the task). For callers that treat a stopped node as
  /// crashed (the reconfiguration control plane) -- the inline fallback
  /// would mutate a "crashed" automaton behind the deployment's back and
  /// is racy against a concurrent stop().
  [[nodiscard]] bool try_run_on_reactor(
      const std::function<void(automaton&)>& fn);

  /// Like run_on_reactor, but hands `fn` this node's netout so it can
  /// start or re-issue protocol traffic (the reconfiguration control
  /// plane: migration handoff ops, resuming parked ops). Does NOT wait
  /// for any started op to complete -- pair with a completion poll.
  void run_on_reactor_net(const std::function<void(automaton&, netout&)>& fn);

  /// Operation history recorded by this node (clients only). Safe to call
  /// after stop(), or concurrently (copies under lock).
  [[nodiscard]] checker::history hist() const;

  [[nodiscard]] const process_id& self() const { return self_; }

  // netout: called by the automaton on the reactor thread.
  void send(const process_id& to, message m) override;
  void send_batch(const process_id& to, std::vector<message> msgs) override;

 private:
  struct connection {
    unique_fd fd;
    frame_buffer in;
    /// Outbound frames, encoded in place; flushed with one writev.
    buffer_chain out;
    std::optional<process_id> peer;
    bool connecting{false};
    /// Queued bytes awaiting a deferred (windowed) flush.
    bool dirty{false};
  };

  void reactor_main();
  void post(std::function<void()> fn);
  void handle_readable(int fd);
  void handle_writable(int fd);
  void flush(int fd, connection& c);
  void close_conn(int fd);
  /// Post-encode hook: immediate-mode flush, or dirty-marking + timer
  /// arming under a batch window.
  void after_queue(int fd, connection& c);
  /// Flushes every dirty connection (window expiry / end of step).
  void flush_dirty();
  void arm_window(std::uint32_t us);
  [[nodiscard]] connection* conn_for(const process_id& to);
  int outbound_to_server(std::uint32_t index);
  void poll_client_completion();
  void update_epoll(int fd, connection& c);

  system_config cfg_;
  std::unique_ptr<automaton> automaton_;
  std::shared_ptr<const address_book> book_;
  process_id self_;
  node_options opt_;
  /// Cached cross-cast; non-null when the automaton is a store front-end.
  async_client_iface* async_iface_{nullptr};

  unique_fd listen_fd_;
  unique_fd epoll_fd_;
  unique_fd event_fd_;
  unique_fd timer_fd_;
  std::thread thread_;

  std::unordered_map<int, connection> conns_;
  std::unordered_map<std::uint32_t, int> out_to_server_;
  std::unordered_map<process_id, int> inbound_by_peer_;
  std::vector<int> dirty_fds_;
  bool window_armed_{false};
  /// Connection currently being drained by handle_readable; close_conn on
  /// it is deferred until the drain returns (see close_conn).
  int drain_guard_fd_{-1};
  bool drain_close_pending_{false};
  /// Adaptive mode state: current effective window and the number of
  /// frames queued since the last deferred flush (the backlog signal).
  std::uint32_t cur_window_us_{0};
  std::uint64_t frames_since_flush_{0};
  /// trace_now() when the current batch window opened (first frame queued
  /// since the last deferred flush); 0 = no window open.
  std::uint64_t window_open_ns_{0};

  /// Registry handles, resolved once in the constructor with this node's
  /// label; the reactor hot path only touches these cached pointers.
  struct wire_metrics {
    obs::counter* frames_out{nullptr};
    obs::counter* bytes_out{nullptr};
    obs::counter* frames_in{nullptr};
    obs::counter* bytes_in{nullptr};
    obs::counter* writev_calls{nullptr};
    obs::counter* short_writes{nullptr};
    obs::counter* flushes_immediate{nullptr};
    obs::counter* flushes_window{nullptr};
    obs::counter* flushes_step{nullptr};
    obs::counter* window_widen{nullptr};
    obs::counter* conn_resets{nullptr};
    obs::gauge* connections{nullptr};
    obs::gauge* backlog_bytes{nullptr};
    obs::histogram* flush_ns{nullptr};
    obs::histogram* window_wait_ns{nullptr};
  };
  wire_metrics wm_;
  /// Flight recorder for this node (stable global, cached like wm_; all
  /// hooks run on the reactor thread but the ring is safe to dump from
  /// any thread).
  obs::recorder* rec_{nullptr};

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  bool started_{false};
  bool stop_requested_{false};
  bool reactor_exited_{false};
  checker::history hist_;
  std::uint64_t reads_done_{0};
  std::uint64_t writes_done_{0};
  std::size_t open_op_index_{0};
  bool op_open_{false};
  // Reactor-maintained mirror of async_iface_ state, so blocking_op and
  // the pipelined waiters can wait under mu_ without racing on automaton
  // internals.
  bool async_busy_{false};
  std::uint64_t async_done_{0};
  std::size_t async_in_flight_{0};

  static std::uint64_t now_ns();
};

}  // namespace fastreg::net
