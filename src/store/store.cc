#include "store/store.h"

#include <algorithm>

#include "common/check.h"

namespace fastreg::store {

bool store_protocol::feasible(const system_config& cfg) const {
  for (std::uint32_t s = 0; s < shards_->num_shards(); ++s) {
    if (!shards_->protocol_for_shard(s).feasible(cfg)) return false;
  }
  return true;
}

int store_protocol::read_rounds() const {
  int rounds = 1;
  for (std::uint32_t s = 0; s < shards_->num_shards(); ++s) {
    rounds = std::max(rounds, shards_->protocol_for_shard(s).read_rounds());
  }
  return rounds;
}

int store_protocol::write_rounds() const {
  int rounds = 1;
  for (std::uint32_t s = 0; s < shards_->num_shards(); ++s) {
    rounds = std::max(rounds, shards_->protocol_for_shard(s).write_rounds());
  }
  return rounds;
}

std::unique_ptr<automaton> store_protocol::make_writer(
    const system_config& cfg, std::uint32_t index) const {
  FASTREG_EXPECTS(cfg.W() == shards_->config().base.W());
  return std::make_unique<client>(shards_, writer_id(index));
}

std::unique_ptr<automaton> store_protocol::make_reader(
    const system_config& cfg, std::uint32_t index) const {
  FASTREG_EXPECTS(cfg.R() == shards_->config().base.R());
  return std::make_unique<client>(shards_, reader_id(index));
}

std::unique_ptr<automaton> store_protocol::make_server(
    const system_config& cfg, std::uint32_t index) const {
  FASTREG_EXPECTS(cfg.S() == shards_->config().base.S());
  return std::make_unique<server>(shards_, index);
}

}  // namespace fastreg::store
