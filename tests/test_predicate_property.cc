// Property test: the optimized predicate evaluator (membership-mask DFS
// with pruning) must agree with a brute-force reference that enumerates
// every client subset, across thousands of random instances.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "common/seen_set.h"
#include "registers/predicate.h"

namespace fastreg {
namespace {

/// Reference implementation: enumerate all subsets P of clients with
/// |P| = a and count messages whose seen contains P. Exponential; only
/// for small instances.
bool brute_force(const std::vector<seen_set>& seen, std::uint32_t S,
                 std::uint32_t t, std::uint32_t b, std::uint32_t R) {
  const std::uint32_t clients = R + 1;  // writer + readers
  for (std::uint32_t a = 1; a <= R + 1; ++a) {
    const std::int64_t need = static_cast<std::int64_t>(S) -
                              static_cast<std::int64_t>(a) * t -
                              (static_cast<std::int64_t>(a) - 1) * b;
    if (need <= 0) return true;
    for (std::uint64_t mask = 1; mask < (std::uint64_t{1} << clients);
         ++mask) {
      if (static_cast<std::uint32_t>(__builtin_popcountll(mask)) != a) {
        continue;
      }
      std::int64_t count = 0;
      for (const auto& s : seen) {
        if ((s.bits() & mask) == mask) ++count;
      }
      if (count >= need) return true;
    }
  }
  return false;
}

class PredicateProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PredicateProperty, MatchesBruteForceOnRandomInstances) {
  rng r(GetParam());
  for (int iter = 0; iter < 400; ++iter) {
    const std::uint32_t S = 3 + static_cast<std::uint32_t>(r.below(10));
    const std::uint32_t t = 1 + static_cast<std::uint32_t>(r.below(3));
    const std::uint32_t b = static_cast<std::uint32_t>(r.below(t + 1));
    const std::uint32_t R = 1 + static_cast<std::uint32_t>(r.below(5));
    const std::uint32_t n_msgs =
        static_cast<std::uint32_t>(r.below(S + 1));
    std::vector<seen_set> seen;
    for (std::uint32_t m = 0; m < n_msgs; ++m) {
      seen_set s;
      if (r.chance(1, 2)) s.insert(writer_id(0));
      for (std::uint32_t j = 0; j < R; ++j) {
        if (r.chance(1, 2)) s.insert(reader_id(j));
      }
      seen.push_back(s);
    }
    const bool fast = fast_read_predicate(
        std::span<const seen_set>(seen), S, t, b, R);
    const bool ref = brute_force(seen, S, t, b, R);
    ASSERT_EQ(fast, ref) << "seed=" << GetParam() << " iter=" << iter
                         << " S=" << S << " t=" << t << " b=" << b
                         << " R=" << R << " msgs=" << n_msgs;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PredicateProperty,
                         ::testing::Range<std::uint64_t>(1, 11));

/// The witness must itself satisfy the predicate at exactly that `a`:
/// cross-check the reported witness against the reference per-a check.
TEST(PredicateWitness, WitnessIsSoundOnRandomInstances) {
  rng r(99);
  for (int iter = 0; iter < 300; ++iter) {
    const std::uint32_t S = 4 + static_cast<std::uint32_t>(r.below(8));
    const std::uint32_t t = 1;
    const std::uint32_t R = 1 + static_cast<std::uint32_t>(r.below(4));
    std::vector<seen_set> seen;
    for (std::uint32_t m = 0; m + t < S; ++m) {
      seen_set s;
      if (r.chance(2, 3)) s.insert(writer_id(0));
      for (std::uint32_t j = 0; j < R; ++j) {
        if (r.chance(1, 2)) s.insert(reader_id(j));
      }
      seen.push_back(s);
    }
    const std::uint32_t witness = fast_read_predicate_witness(
        std::span<const seen_set>(seen), S, t, 0, R);
    const bool holds =
        fast_read_predicate(std::span<const seen_set>(seen), S, t, 0, R);
    EXPECT_EQ(witness > 0, holds);
    EXPECT_LE(witness, R + 1);
  }
}

}  // namespace
}  // namespace fastreg
