#include "benchutil/stress.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <optional>
#include <random>
#include <thread>

#include "common/check.h"
#include "common/rng.h"
#include "crypto/sig.h"
#include "obs/recorder.h"
#include "persist/options.h"
#include "reconfig/control.h"
#include "reconfig/coordinator.h"
#include "reconfig/plan.h"
#include "store/sim_store.h"
#include "store/tcp_store.h"

namespace fastreg::benchutil {
namespace {

store::store_config make_store_cfg(const stress_options& opt) {
  store::store_config cfg;
  cfg.base.servers = opt.S;
  cfg.base.t_failures = opt.t;
  cfg.base.b_malicious = opt.b;
  cfg.base.readers = opt.R;
  cfg.base.writers = opt.W;
  if (!opt.sig_scheme.empty()) {
    cfg.base.sigs =
        crypto::make_signature_scheme(opt.sig_scheme, /*seed=*/opt.seed);
  }
  cfg.num_shards = opt.num_shards;
  cfg.shard_protocols = {opt.protocol};
  if (!opt.persist_dir.empty()) {
    cfg.persist = persist::options::from_env(opt.persist_dir);
  }
  return cfg;
}

std::vector<std::string> make_keys(std::uint32_t n) {
  std::vector<std::string> keys;
  keys.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    keys.push_back("k" + std::to_string(i));
  }
  return keys;
}

reconfig::reconfig_plan make_reshard_plan(const stress_options& opt) {
  reconfig::reconfig_plan plan;
  plan.num_shards = opt.reshard_num_shards != 0 ? opt.reshard_num_shards
                                                : opt.num_shards + 1;
  plan.shard_protocols = opt.reshard_protocols.empty()
                             ? std::vector<std::string>{opt.protocol}
                             : opt.reshard_protocols;
  return plan;
}

/// Dumps the failing key's full history next to the test (the ctest
/// working directory) and returns the path for the failure message.
std::string write_failure_dump(const stress_options& opt,
                               std::uint64_t seed,
                               const checker::history& h,
                               const std::string& failing_key,
                               const std::string& error) {
  const std::string path =
      opt.label + "_seed_" + std::to_string(seed) + ".history";
  std::ofstream out(path);
  out << "# fastreg stress failure\n"
      << "# label: " << opt.label << "  protocol: " << opt.protocol << "\n"
      << "# replay: FASTREG_STRESS_SEED=" << seed << "\n"
      << "# failing key: " << failing_key << "\n"
      << "# error: " << error << "\n\n"
      << h.dump();
  return path;
}

/// Forensics: on a checker failure with the flight recorder on, dump
/// every node's ring next to the history dump, pre-filtered to the
/// violating key's object, and return the paths.
std::vector<std::string> write_recorder_dumps(const stress_options& opt,
                                              std::uint64_t seed,
                                              const std::string& failing_key) {
  std::vector<std::string> paths;
  if (!obs::recording_active()) return paths;
  const object_id obj = store::key_object_id(failing_key);
  for (const auto& [node, dump] : obs::recorder_dump_all(obj)) {
    std::string path = opt.label + "_seed_" + std::to_string(seed) + "." +
                       node + ".recorder";
    std::ofstream out(path);
    out << dump;
    paths.push_back(std::move(path));
  }
  return paths;
}

/// Per-key verification; on a violation, records the error and dumps
/// the offending history (plus recorder forensics when recording).
void verify_into(stress_report& rep, const stress_options& opt,
                 const store::store_histories& hist) {
  std::string failing_key;
  rep.check = hist.verify(stress_verify_mode(opt), &failing_key);
  if (rep.check.ok) return;
  const auto it = hist.all().find(failing_key);
  if (it != hist.all().end()) {
    rep.dump_path = write_failure_dump(opt, rep.seed, it->second,
                                       failing_key, rep.check.error);
  }
  rep.recorder_paths = write_recorder_dumps(opt, rep.seed, failing_key);
}

void fill_counts(stress_report& rep, const store::store_histories& hist) {
  rep.total_ops = hist.total_ops();
  rep.max_key_ops = hist.max_key_ops();
  rep.all_complete = hist.all_complete();
}

}  // namespace

std::string stress_report::describe() const {
  std::string s = "seed=" + std::to_string(seed) +
                  " (replay with FASTREG_STRESS_SEED=" +
                  std::to_string(seed) + ")";
  if (!check.ok) s += "; " + check.error;
  if (!dump_path.empty()) s += "; failing history dumped to " + dump_path;
  if (!recorder_paths.empty()) {
    s += "; flight-recorder dumps (" +
         std::to_string(recorder_paths.size()) + " nodes, merge with "
         "tools/trace_merge): " +
         recorder_paths.front() + " ...";
  }
  if (!all_complete) s += "; some operations never completed";
  if (op_failures > 0) {
    s += "; " + std::to_string(op_failures) + " client ops failed";
  }
  return s;
}

store::verify_mode stress_verify_mode(const stress_options& opt) {
  if (opt.W > 1) return store::verify_mode::mwmr;
  if (opt.protocol == "regular") return store::verify_mode::swmr_regular;
  return store::verify_mode::swmr_atomic;
}

std::uint64_t stress_seed_from_env() {
  if (const char* env = std::getenv("FASTREG_STRESS_SEED")) {
    return std::strtoull(env, nullptr, 0);
  }
  std::random_device rd;
  std::uint64_t seed = (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
  seed ^= static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  return seed;
}

std::uint32_t stress_iters(std::uint32_t base) {
  std::uint64_t mult = 1;
  if (const char* env = std::getenv("FASTREG_STRESS_ITERS")) {
    mult = std::strtoull(env, nullptr, 0);
    if (mult == 0) mult = 1;
  }
  const std::uint64_t scaled = static_cast<std::uint64_t>(base) * mult;
  return static_cast<std::uint32_t>(
      std::min<std::uint64_t>(scaled, 0xffffffffull));
}

// ------------------------------------------------------------- simulator --

stress_report run_sim_stress(const stress_options& opt) {
  FASTREG_EXPECTS(opt.crash_servers <= opt.t);
  // Crashed and partitioned servers are BOTH unreachable until the heal,
  // so they share one t budget: a combined count above t would stall
  // every quorum, freeze the invocation counter below the heal trigger,
  // and spin into the step-guard abort instead of failing here.
  FASTREG_EXPECTS(opt.crash_servers + opt.partition_servers <= opt.t);
  stress_report rep;
  rep.seed = opt.seed;
  // Recorders are process-global; start each run from an empty ring so a
  // failure's forensics dump holds only this run's events.
  if (obs::recording_active()) obs::recorder_reset_all();

  store::sim_store s(make_store_cfg(opt));
  rng r(opt.seed);
  sim::uniform_delay delays(opt.delay_lo, opt.delay_hi);
  const auto keys = make_keys(opt.num_keys);

  std::vector<std::uint32_t> puts_left(opt.W, opt.puts_per_writer);
  std::vector<std::uint32_t> gets_left(opt.R, opt.gets_per_reader);
  std::vector<std::uint64_t> put_seq(opt.W, 0);
  const std::uint64_t total =
      static_cast<std::uint64_t>(opt.W) * opt.puts_per_writer +
      static_cast<std::uint64_t>(opt.R) * opt.gets_per_reader;
  const std::uint64_t trigger = total / 3;

  std::uint64_t invoked = 0, guard = 0;
  bool crashed = false, restarted = false;
  bool partitioned = false, healed = false;
  std::optional<reconfig::sim_control> ctl;
  std::optional<reconfig::coordinator> coord;

  // Every process a partitioned server would talk to: clients and the
  // rest of the fleet (servers gossip in the maxmin family).
  const auto isolate = [&](const process_id& srv, bool block) {
    const auto flip = [&](const process_id& peer) {
      if (peer == srv) return;
      if (block) {
        s.world().partition(srv, peer);
      } else {
        s.world().heal(srv, peer);
      }
    };
    for (std::uint32_t j = 0; j < opt.W; ++j) flip(writer_id(j));
    for (std::uint32_t i = 0; i < opt.R; ++i) flip(reader_id(i));
    for (std::uint32_t k = 0; k < opt.S; ++k) flip(server_id(k));
  };

  for (;;) {
    FASTREG_CHECK(++guard < 200'000'000);
    if (!crashed && opt.crash_servers > 0 && invoked >= trigger) {
      crashed = true;
      for (std::uint32_t i = 0; i < opt.crash_servers; ++i) {
        s.world().crash(server_id(opt.S - 1 - i));
      }
    }
    if (!partitioned && opt.partition_servers > 0 && invoked >= trigger) {
      partitioned = true;
      for (std::uint32_t i = 0; i < opt.partition_servers; ++i) {
        isolate(server_id(i), /*block=*/true);
      }
    }
    if (crashed && opt.restart_crashed && !restarted &&
        invoked >= 2 * trigger) {
      restarted = true;
      for (std::uint32_t i = 0; i < opt.crash_servers; ++i) {
        // Replays snapshot + op log when persist_dir is set; the last
        // third of the workload then runs against the full fleet, so a
        // recovery that resurrected stale state shows up in the checker.
        s.restart_server(opt.S - 1 - i);
      }
    }
    if (partitioned && !healed && invoked >= 2 * trigger) {
      healed = true;
      for (std::uint32_t i = 0; i < opt.partition_servers; ++i) {
        isolate(server_id(i), /*block=*/false);
      }
    }
    if (opt.reshard && !coord && invoked >= trigger) {
      ctl.emplace(s);
      coord.emplace(*ctl);
      if (!coord->start(s.shards(), make_reshard_plan(opt))) {
        rep.check = {false, "reshard failed to start: " + coord->error()};
        fill_counts(rep, s.histories());
        return rep;
      }
    }
    const bool coord_active = coord.has_value() && !coord->done();
    if (coord_active) coord->step();

    bool invoked_now = false;
    for (std::uint32_t j = 0; j < opt.W; ++j) {
      if (puts_left[j] == 0 || s.writer_client(j).op_in_progress()) continue;
      --puts_left[j];
      ++invoked;
      invoked_now = true;
      s.invoke_put(j, keys[r.below(keys.size())],
                   "w" + std::to_string(j) + ":" +
                       std::to_string(++put_seq[j]));
    }
    for (std::uint32_t i = 0; i < opt.R; ++i) {
      if (gets_left[i] == 0 || s.reader_client(i).op_in_progress()) continue;
      --gets_left[i];
      ++invoked;
      invoked_now = true;
      s.invoke_get(i, keys[r.below(keys.size())]);
    }

    if (s.world().in_transit().empty()) {
      if (invoked_now || coord_active) continue;
      break;  // drained: quotas spent (or nothing can ever move again)
    }
    if (opt.timed) {
      s.run_timed(r, delays, /*max_steps=*/1);
    } else {
      s.run_random(r, /*max_steps=*/1);
    }
  }

  rep.final_epoch = s.proto().maps()->epoch();
  fill_counts(rep, s.histories());
  verify_into(rep, opt, s.histories());
  return rep;
}

// ------------------------------------------------------------------- TCP --

stress_report run_tcp_stress(const stress_options& opt) {
  FASTREG_EXPECTS(opt.crash_servers <= opt.t);
  // Paused and crashed servers are both unreachable until the heal; a
  // combined count above t would stall every quorum (same budget rule as
  // the simulator schedule).
  FASTREG_EXPECTS(opt.crash_servers + opt.partition_servers <= opt.t);
  FASTREG_EXPECTS(opt.pipeline_depth >= 1);
  stress_report rep;
  rep.seed = opt.seed;
  if (obs::recording_active()) obs::recorder_reset_all();

  // Hub topology: every client is an actor on one node, so all the
  // pipelined sessions below share a small reactor pool instead of one
  // OS thread per client.
  net::cluster_options copt;
  copt.client_hub = true;
  copt.hub_reactors = 2;
  store::tcp_store ts(make_store_cfg(opt), net::node_options::from_env(),
                      copt);
  ts.start();
  const auto keys = make_keys(opt.num_keys);

  // Pre-generate every client's op sequence from the SAME per-role rng
  // streams the thread-per-client harness used, so a seed replays the
  // identical key/value sequences whatever the driver-thread count is.
  struct script {
    std::unique_ptr<store::async_session> ses;
    std::vector<store::store_op> ops;
    std::size_t next{0};
  };
  std::vector<script> scripts;
  scripts.reserve(opt.W + opt.R);
  for (std::uint32_t j = 0; j < opt.W; ++j) {
    rng tr(opt.seed ^ (0x9e3779b97f4a7c15ull * (j + 1)));
    script sc;
    sc.ses = ts.open_session(writer_id(j), opt.pipeline_depth);
    sc.ops.reserve(opt.puts_per_writer);
    for (std::uint32_t n = 1; n <= opt.puts_per_writer; ++n) {
      sc.ops.push_back(store::store_op{
          keys[tr.below(keys.size())], /*is_put=*/true,
          "w" + std::to_string(j) + ":" + std::to_string(n)});
    }
    scripts.push_back(std::move(sc));
  }
  for (std::uint32_t i = 0; i < opt.R; ++i) {
    rng tr(opt.seed ^ (0xbf58476d1ce4e5b9ull * (i + 1)));
    script sc;
    sc.ses = ts.open_session(reader_id(i), opt.pipeline_depth);
    sc.ops.reserve(opt.gets_per_reader);
    for (std::uint32_t n = 0; n < opt.gets_per_reader; ++n) {
      sc.ops.push_back(store::store_op{keys[tr.below(keys.size())],
                                       /*is_put=*/false, {}});
    }
    scripts.push_back(std::move(sc));
  }

  std::atomic<std::uint64_t> attempts{0};
  std::atomic<std::uint64_t> failures{0};
  const std::uint64_t total =
      static_cast<std::uint64_t>(opt.W) * opt.puts_per_writer +
      static_cast<std::uint64_t>(opt.R) * opt.gets_per_reader;
  const bool midway_actions = opt.crash_servers > 0 ||
                              opt.partition_servers > 0 || opt.reshard;
  const std::uint64_t trigger = total / 3;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);

  // Driver pool: each thread owns a disjoint slice of the sessions and
  // event-loops them -- admit ops while the window accepts, pump
  // completions, drain at the end. Each session stays single-threaded
  // (the front-end's contract); only the slicing is parallel.
  const std::uint32_t drivers = std::max<std::uint32_t>(
      1, std::min<std::uint32_t>(opt.driver_threads,
                                 static_cast<std::uint32_t>(scripts.size())));
  std::vector<std::thread> threads;
  threads.reserve(drivers);
  for (std::uint32_t d = 0; d < drivers; ++d) {
    threads.emplace_back([&, d] {
      for (;;) {
        bool all_done = true;
        bool progress = false;
        for (std::size_t s = d; s < scripts.size(); s += drivers) {
          auto& sc = scripts[s];
          sc.ses->pump();
          (void)sc.ses->take_results();
          while (sc.next < sc.ops.size()) {
            const auto& op = sc.ops[sc.next];
            const auto st = op.is_put ? sc.ses->try_put(op.key, op.val)
                                      : sc.ses->try_get(op.key);
            if (st != store::submit_status::submitted) break;
            ++sc.next;
            attempts.fetch_add(1, std::memory_order_relaxed);
            progress = true;
          }
          if (sc.next < sc.ops.size() || sc.ses->in_flight() > 0) {
            all_done = false;
          }
        }
        if (all_done) break;
        if (std::chrono::steady_clock::now() > deadline) {
          // Abandon what never got submitted; drain below settles the
          // rest and counts what never completed.
          for (std::size_t s = d; s < scripts.size(); s += drivers) {
            auto& sc = scripts[s];
            failures.fetch_add(sc.ops.size() - sc.next,
                               std::memory_order_relaxed);
            sc.next = sc.ops.size();
          }
          break;
        }
        if (!progress) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
      }
      for (std::size_t s = d; s < scripts.size(); s += drivers) {
        auto& sc = scripts[s];
        if (!sc.ses->drain(std::chrono::seconds(10))) {
          failures.fetch_add(sc.ses->in_flight(),
                             std::memory_order_relaxed);
        }
        (void)sc.ses->take_results();
      }
    });
  }

  if (midway_actions) {
    while (attempts.load(std::memory_order_relaxed) < trigger &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    // Partition first (it takes the LOW end of the index range; crashes
    // take the high end, so combined runs exercise disjoint sets).
    for (std::uint32_t i = 0; i < opt.partition_servers; ++i) {
      ts.cluster().server(i).set_fault_all(net::conn_fault::pause);
    }
    for (std::uint32_t i = 0; i < opt.crash_servers; ++i) {
      ts.cluster().server(opt.S - 1 - i).stop();
    }
    if (opt.reshard) {
      reconfig::tcp_control ctl(ts);
      reconfig::coordinator coord(ctl);
      if (!coord.start(ts.proto().shards(), make_reshard_plan(opt))) {
        rep.check = {false, "reshard failed to start: " + coord.error()};
      } else {
        while (!coord.done() &&
               std::chrono::steady_clock::now() < deadline) {
          coord.step();
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        if (!coord.done()) {
          rep.check = {false, "reshard did not complete within deadline"};
        }
      }
    }
    if (opt.partition_servers > 0) {
      // Heal two thirds of the way in: queued bytes flush on both sides
      // and the stalled ops complete against the full quorum again.
      while (attempts.load(std::memory_order_relaxed) < 2 * trigger &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      for (std::uint32_t i = 0; i < opt.partition_servers; ++i) {
        ts.cluster().server(i).set_fault_all(net::conn_fault::none);
      }
    }
    if (opt.crash_servers > 0 && opt.restart_crashed) {
      // Restart two thirds of the way in, on the original ports, with
      // snapshot + op-log replay when persist_dir is set; clients
      // reconnect lazily and the final third of the workload verifies
      // the rejoined servers' state through the checker.
      while (attempts.load(std::memory_order_relaxed) < 2 * trigger &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      for (std::uint32_t i = 0; i < opt.crash_servers; ++i) {
        ts.restart_server(opt.S - 1 - i);
      }
    }
  }

  for (auto& th : threads) th.join();
  rep.op_failures = failures.load();
  rep.final_epoch = ts.proto().maps()->epoch();
  const auto hist = ts.gather();
  fill_counts(rep, hist);
  if (rep.check.ok) verify_into(rep, opt, hist);
  ts.stop();
  return rep;
}

}  // namespace fastreg::benchutil
