// store_protocol: presents the whole multi-object store as one `protocol`
// so the existing deployment machinery -- sim::world::install and
// net::cluster -- hosts it unchanged. make_writer/make_reader yield store
// client front-ends, make_server yields the multiplexing store server;
// all share one resolved shard_map.
#pragma once

#include <memory>

#include "store/client.h"
#include "store/server.h"
#include "store/shard_map.h"

namespace fastreg::store {

class store_protocol final : public protocol {
 public:
  explicit store_protocol(store_config cfg)
      : shards_(std::make_shared<shard_map>(std::move(cfg))) {}

  [[nodiscard]] std::string name() const override { return "store"; }

  /// The store is usable iff every shard protocol is.
  [[nodiscard]] bool feasible(const system_config& cfg) const override;

  /// Worst case across shards: a mix of fast and two-round shards is a
  /// two-round store as far as upper bounds go.
  [[nodiscard]] int read_rounds() const override;
  [[nodiscard]] int write_rounds() const override;

  [[nodiscard]] std::unique_ptr<automaton> make_writer(
      const system_config& cfg, std::uint32_t index) const override;
  [[nodiscard]] std::unique_ptr<automaton> make_reader(
      const system_config& cfg, std::uint32_t index) const override;
  [[nodiscard]] std::unique_ptr<automaton> make_server(
      const system_config& cfg, std::uint32_t index) const override;

  [[nodiscard]] const std::shared_ptr<const shard_map>& shards() const {
    return shards_;
  }
  [[nodiscard]] const store_config& config() const {
    return shards_->config();
  }

 private:
  std::shared_ptr<const shard_map> shards_;
};

}  // namespace fastreg::store
