#include "net/cluster.h"

#include <algorithm>

#include "common/check.h"

namespace fastreg::net {

cluster::cluster(system_config cfg, const protocol& proto, node_options nopt,
                 cluster_options copt)
    : cfg_(std::move(cfg)),
      copt_(copt),
      proto_(&proto),
      nopt_(nopt),
      book_(std::make_shared<address_book>()) {
  // Servers first: bind ephemeral listeners so the address book is
  // complete before any client node exists.
  node_options sopt = nopt;
  sopt.reactors = std::max<std::uint32_t>(1, copt_.server_reactors);
  for (std::uint32_t i = 0; i < cfg_.S(); ++i) {
    auto n = std::make_unique<node>(cfg_, proto.make_server(cfg_, i), book_,
                                    sopt);
    n->bind_listener(0);
    book_->server_ports.push_back(n->listen_port());
    servers_.push_back(std::move(n));
  }
  if (copt_.client_hub) {
    // One hub node hosts every client automaton: writer j is actor j,
    // reader i is actor W+i (client_actor encodes the same mapping).
    node_options hopt = nopt;
    hopt.reactors = std::max<std::uint32_t>(1, copt_.hub_reactors);
    hub_ = std::make_unique<node>(cfg_, book_, hopt);
    for (std::uint32_t j = 0; j < cfg_.W(); ++j) {
      hub_->add_actor(proto.make_writer(cfg_, j));
    }
    for (std::uint32_t i = 0; i < cfg_.R(); ++i) {
      hub_->add_actor(proto.make_reader(cfg_, i));
    }
    return;
  }
  for (std::uint32_t i = 0; i < cfg_.R(); ++i) {
    readers_.push_back(std::make_unique<node>(
        cfg_, proto.make_reader(cfg_, i), book_, nopt));
  }
  for (std::uint32_t i = 0; i < cfg_.W(); ++i) {
    writers_.push_back(std::make_unique<node>(
        cfg_, proto.make_writer(cfg_, i), book_, nopt));
  }
}

cluster::~cluster() { stop(); }

void cluster::start() {
  FASTREG_EXPECTS(!started_);
  started_ = true;
  for (auto& n : servers_) n->start();
  if (hub_) {
    hub_->start();
    return;
  }
  for (auto& n : readers_) n->start();
  for (auto& n : writers_) n->start();
}

void cluster::stop() {
  if (!started_) return;
  started_ = false;
  // Clients first so no new requests hit stopping servers.
  if (hub_) {
    hub_->stop();
  } else {
    for (auto& n : writers_) n->stop();
    for (auto& n : readers_) n->stop();
  }
  for (auto& n : servers_) n->stop();
}

void cluster::restart_server(std::uint32_t i) {
  FASTREG_EXPECTS(i < servers_.size());
  const std::uint16_t port = book_->server_ports[i];
  // Destroying the node closes its listener and every connection; a
  // client whose socket HUPs lazily reconnects at the next send, and the
  // address book still routes it to the same port. A listening socket
  // never enters TIME_WAIT (and listen_on sets SO_REUSEADDR), so the
  // rebind below cannot race the old socket's teardown.
  servers_[i]->stop();
  servers_[i].reset();
  node_options sopt = nopt_;
  sopt.reactors = std::max<std::uint32_t>(1, copt_.server_reactors);
  auto n = std::make_unique<node>(cfg_, proto_->make_server(cfg_, i), book_,
                                  sopt);
  n->bind_listener(port);
  servers_[i] = std::move(n);
  if (started_) servers_[i]->start();
}

node& cluster::client_node(const process_id& pid) {
  if (copt_.client_hub) return *hub_;
  if (pid.is_writer()) return *writers_[pid.index];
  FASTREG_EXPECTS(pid.is_reader());
  return *readers_[pid.index];
}

std::size_t cluster::client_actor(const process_id& pid) const {
  if (!copt_.client_hub) return 0;
  if (pid.is_writer()) return pid.index;
  FASTREG_EXPECTS(pid.is_reader());
  return cfg_.W() + pid.index;
}

checker::history cluster::gather_history() const {
  if (hub_) return hub_->hist();  // already merged across its actors
  // Merge per-node histories by invocation time.
  std::vector<checker::op_record> all;
  // Note: hist() returns by value; keep the copy alive while iterating
  // (binding the range-for directly to hist().ops() would dangle in C++20).
  for (const auto& n : writers_) {
    const checker::history h = n->hist();
    for (const auto& op : h.ops()) all.push_back(op);
  }
  for (const auto& n : readers_) {
    const checker::history h = n->hist();
    for (const auto& op : h.ops()) all.push_back(op);
  }
  std::sort(all.begin(), all.end(),
            [](const checker::op_record& a, const checker::op_record& b) {
              return a.invoke_time < b.invoke_time;
            });
  checker::history merged;
  for (const auto& op : all) {
    const auto idx =
        merged.begin_op(op.client, op.is_write, op.invoke_time, op.val);
    if (op.response_time) {
      if (op.is_write) {
        merged.complete_write(idx, *op.response_time, op.rounds);
      } else {
        merged.complete_read(idx, *op.response_time, op.ts, op.wid, op.val,
                             op.rounds);
      }
    }
  }
  return merged;
}

}  // namespace fastreg::net
