// lower_bound_tour: a guided walk through the Section 5 impossibility
// proof, executed live against the Figure 2 protocol and rendered as the
// paper's Figure 3/4-style block diagrams.
//
// Build & run:  ./build/examples/lower_bound_tour [S] [t] [R]
#include <cstdio>
#include <cstdlib>

#include "adversary/blocks.h"
#include "adversary/swmr_lower_bound.h"
#include "registers/registry.h"

using namespace fastreg;
using namespace fastreg::adversary;

namespace {

/// Renders a Figure 3-style diagram: one column per invocation, one row
/// per block; '#' = the block received & answered the invocation's
/// message, '.' = skipped.
void diagram(const swmr_partition& sp,
             const std::vector<std::pair<std::string, std::vector<bool>>>&
                 columns) {
  std::printf("        ");
  for (const auto& [name, _] : columns) std::printf("%-6s", name.c_str());
  std::printf("\n");
  for (std::size_t b = 0; b < sp.part.block_count(); ++b) {
    std::printf("  B%-3zu  ", b + 1);
    for (const auto& [_, hits] : columns) {
      std::printf("%-6s", hits[b] ? "#" : ".");
    }
    std::printf("  (%zu servers)\n", sp.part.block(b).size());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::uint32_t S = argc > 1 ? std::atoi(argv[1]) : 8;
  std::uint32_t t = argc > 2 ? std::atoi(argv[2]) : 2;
  std::uint32_t R = argc > 3 ? std::atoi(argv[3]) : 2;

  std::printf("lower_bound_tour: S=%u t=%u R=%u\n", S, t, R);
  std::printf("fast atomic SWMR needs R < S/t - 2 = %.1f; here R = %u -> "
              "%s\n\n",
              static_cast<double>(S) / t - 2, R,
              fast_swmr_feasible(S, t, R) ? "FEASIBLE (pick an infeasible "
                                            "config to see the violation)"
                                          : "INFEASIBLE: the construction "
                                            "below breaks any fast "
                                            "implementation");

  const auto sp = make_swmr_partition(S, t, R);
  if (!sp) {
    std::printf("no block partition exists -- the configuration is in the "
                "feasible region, where Figure 2's protocol is proven "
                "correct. Try: lower_bound_tour 8 2 2\n");
    return 0;
  }
  const std::uint32_t rp = sp->readers_used;
  std::printf("step 0: partition the %u servers into %u blocks of <= t:\n",
              S, rp + 2);
  {
    std::vector<std::string> names;
    for (std::uint32_t j = 1; j <= rp + 2; ++j) {
      names.push_back("B" + std::to_string(j));
    }
    std::printf("  %s\n\n", sp->part.describe(names).c_str());
  }

  std::printf("step 1: the final partial run Delta-pr_%u "
              "(paper Fig. 3), as a block diagram:\n",
              rp);
  {
    std::vector<std::pair<std::string, std::vector<bool>>> cols;
    // write column: reaches only B_{R'+1}.
    std::vector<bool> wr_col(rp + 2, false);
    wr_col[rp] = true;
    cols.emplace_back("w", wr_col);
    for (std::uint32_t h = 1; h <= rp; ++h) {
      std::vector<bool> col(rp + 2, false);
      for (std::size_t j = 0; j + 1 < h; ++j) col[j] = true;
      col[rp] = true;
      col[rp + 1] = true;
      cols.emplace_back("r" + std::to_string(h), col);
    }
    diagram(*sp, cols);
  }
  std::printf("  each r_h misses blocks B_h..B_%u; indistinguishability "
              "from runs where the write completed forces every read to "
              "return the written value.\n\n",
              rp);

  std::printf("step 2: execute the construction against fast_swmr:\n\n");
  system_config cfg;
  cfg.servers = S;
  cfg.t_failures = t;
  cfg.readers = R;
  const auto rep = run_swmr_lower_bound(*make_protocol("fast_swmr"), cfg);
  for (const auto& line : rep.trace) std::printf("  %s\n", line.c_str());

  std::printf("\nsummary: %s\n", rep.summary().c_str());
  std::printf("\nthe punchline (paper Fig. 4): r1's two reads miss "
              "B_%u -- the only block that saw the write -- so r1 returns "
              "the initial value AFTER r%u returned the written value. "
              "Condition 4 of atomicity cannot survive this, no matter "
              "what a one-round protocol does.\n",
              rp + 1, rp);
  return 0;
}
