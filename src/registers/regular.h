// Fast one-round readers with weaker or narrower guarantees (Sections 1, 8):
//
//  * regular_reader -- returns the maximum (ts, val) of S - t READACKs with
//    no write-back and no predicate. One round. This implements a *regular*
//    register (Section 8): a read concurrent with a write may return either
//    the old or the new value, and two concurrent reads may see them in
//    either order (new/old inversion), which atomicity forbids.
//    Feasible for t < S/2 and ANY number of readers -- the contrast the
//    paper draws with atomic registers.
//
//  * single_reader_fast_reader -- the Section 1 modification of ABD for
//    R = 1: the reader returns the maximum of the quorum answers unless it
//    is older than the previously returned value, in which case it returns
//    the previous value again. Atomic for a single reader with t < S/2;
//    shows the R >= 2 hypothesis of the lower bound is necessary.
//
// Both reuse abd_writer (one-round writes) and quorum_server.
#pragma once

#include <optional>
#include <unordered_set>

#include "registers/abd.h"
#include "registers/automaton.h"

namespace fastreg {

class regular_reader final : public automaton, public reader_iface {
 public:
  regular_reader(system_config cfg, std::uint32_t index);

  void on_message(netout& net, const process_id& from,
                  const message& m) override;
  [[nodiscard]] std::unique_ptr<automaton> clone() const override;
  [[nodiscard]] process_id self() const override {
    return reader_id(index_);
  }

  void invoke_read(netout& net) override;
  [[nodiscard]] bool read_in_progress() const override { return pending_; }
  [[nodiscard]] const std::optional<read_result>& last_read() const override {
    return last_result_;
  }
  [[nodiscard]] std::uint64_t reads_completed() const override {
    return completed_;
  }

 private:
  system_config cfg_;
  std::uint32_t index_;
  bool pending_{false};
  std::uint64_t rcounter_{0};
  wts_t best_ts_{};
  value_t best_val_{};
  std::unordered_set<std::uint32_t> acks_{};
  std::optional<read_result> last_result_{};
  std::uint64_t completed_{0};
};

class single_reader_fast_reader final : public automaton, public reader_iface {
 public:
  single_reader_fast_reader(system_config cfg, std::uint32_t index);

  void on_message(netout& net, const process_id& from,
                  const message& m) override;
  [[nodiscard]] std::unique_ptr<automaton> clone() const override;
  [[nodiscard]] process_id self() const override {
    return reader_id(index_);
  }

  void invoke_read(netout& net) override;
  [[nodiscard]] bool read_in_progress() const override { return pending_; }
  [[nodiscard]] const std::optional<read_result>& last_read() const override {
    return last_result_;
  }
  [[nodiscard]] std::uint64_t reads_completed() const override {
    return completed_;
  }

 private:
  system_config cfg_;
  std::uint32_t index_;
  bool pending_{false};
  std::uint64_t rcounter_{0};
  wts_t last_ts_{};   // timestamp of the previously returned value
  value_t last_val_{};
  wts_t best_ts_{};
  value_t best_val_{};
  std::unordered_set<std::uint32_t> acks_{};
  std::optional<read_result> last_result_{};
  std::uint64_t completed_{0};
};

class regular_protocol final : public protocol {
 public:
  [[nodiscard]] std::string name() const override { return "regular"; }
  [[nodiscard]] bool feasible(const system_config& cfg) const override {
    return fast_regular_feasible(cfg.S(), cfg.t());
  }
  [[nodiscard]] int read_rounds() const override { return 1; }
  [[nodiscard]] int write_rounds() const override { return 1; }
  [[nodiscard]] std::unique_ptr<automaton> make_writer(
      const system_config& cfg, std::uint32_t index,
      object_id obj = k_default_object) const override;
  [[nodiscard]] std::unique_ptr<automaton> make_reader(
      const system_config& cfg, std::uint32_t index,
      object_id obj = k_default_object) const override;
  [[nodiscard]] std::unique_ptr<automaton> make_server(
      const system_config& cfg, std::uint32_t index,
      object_id obj = k_default_object) const override;
};

class single_reader_protocol final : public protocol {
 public:
  [[nodiscard]] std::string name() const override { return "single_reader"; }
  [[nodiscard]] bool feasible(const system_config& cfg) const override {
    return cfg.R() == 1 && fast_single_reader_feasible(cfg.S(), cfg.t());
  }
  [[nodiscard]] int read_rounds() const override { return 1; }
  [[nodiscard]] int write_rounds() const override { return 1; }
  [[nodiscard]] std::unique_ptr<automaton> make_writer(
      const system_config& cfg, std::uint32_t index,
      object_id obj = k_default_object) const override;
  [[nodiscard]] std::unique_ptr<automaton> make_reader(
      const system_config& cfg, std::uint32_t index,
      object_id obj = k_default_object) const override;
  [[nodiscard]] std::unique_ptr<automaton> make_server(
      const system_config& cfg, std::uint32_t index,
      object_id obj = k_default_object) const override;
};

}  // namespace fastreg
