#include "store/histories.h"

namespace fastreg::store {

std::size_t store_histories::total_ops() const {
  std::size_t n = 0;
  for (const auto& [key, h] : by_key_) n += h.size();
  return n;
}

bool store_histories::all_complete() const {
  for (const auto& [key, h] : by_key_) {
    for (const auto& op : h.ops()) {
      if (!op.response_time.has_value()) return false;
    }
  }
  return true;
}

checker::check_result store_histories::verify(bool multi_writer) const {
  for (const auto& [key, h] : by_key_) {
    const auto res = multi_writer ? checker::check_linearizable(h)
                                  : checker::check_swmr_atomicity(h);
    if (!res.ok) {
      return {false, "key \"" + key + "\": " + res.error};
    }
  }
  return {};
}

}  // namespace fastreg::store
