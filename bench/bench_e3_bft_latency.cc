// E3 -- Figure 5: the arbitrary-failure fast register keeps 1-round reads
// and writes when S > (R+2)t + (R+1)b. Measures:
//   (a) simulated latency of fast_bft vs fast_swmr vs abd as b grows
//       (more servers needed, same round count);
//   (b) the real cost of the signature substrate (oracle vs RSA-512),
//       measured in wall-clock microseconds per signed write / verified
//       read payload.
#include <chrono>
#include <cstdio>

#include "benchutil/table.h"
#include "benchutil/workload.h"
#include "checker/atomicity.h"
#include "crypto/sig.h"
#include "registers/message.h"
#include "registers/registry.h"

using namespace fastreg;
using namespace fastreg::benchutil;

namespace {

void simulated_latency() {
  std::printf("== E3.a: simulated latency as the malicious budget grows ==\n");
  table t({"proto", "S", "t", "b", "R", "feasible", "read_p50", "rd_rounds",
           "msgs/op", "atomic"});
  struct c4 {
    std::uint32_t S, t, b, R;
  };
  for (const auto c : {c4{10, 2, 0, 2}, c4{13, 2, 1, 2}, c4{16, 2, 2, 2},
                       c4{22, 3, 3, 2}, c4{19, 3, 2, 2}}) {
    system_config cfg;
    cfg.servers = c.S;
    cfg.t_failures = c.t;
    cfg.b_malicious = c.b;
    cfg.readers = c.R;
    cfg.sigs = crypto::make_signature_scheme("oracle");
    auto proto = make_protocol("fast_bft");
    if (!proto->feasible(cfg)) {
      t.add_row({"fast_bft", std::to_string(c.S), std::to_string(c.t),
                 std::to_string(c.b), std::to_string(c.R), "no", "-", "-",
                 "-", "-"});
      continue;
    }
    workload_options opt;
    opt.num_writes = 20;
    opt.reads_per_reader = 20;
    const auto rep = run_measured(*proto, cfg, opt);
    t.add_row({"fast_bft", std::to_string(c.S), std::to_string(c.t),
               std::to_string(c.b), std::to_string(c.R), "yes",
               fmt(rep.read_latency.p50()), fmt(rep.read_rounds.mean()),
               fmt(rep.msgs_per_op),
               checker::check_swmr_atomicity(rep.hist).ok ? "yes" : "NO"});
  }
  t.print();
  std::printf("expected shape: read latency stays ~1 RTT regardless of b; "
              "b only inflates the required S.\n\n");
}

void signature_cost() {
  std::printf("== E3.b: signature substrate cost (wall clock) ==\n");
  table t({"scheme", "sign_us", "verify_us", "sig_bytes"});
  message m;
  m.ts = 7;
  m.val = std::string(64, 'x');
  m.prev = std::string(64, 'y');
  const auto payload = signed_payload(m);
  const std::span<const std::uint8_t> pspan(payload.data(), payload.size());
  for (const char* name : {"oracle", "rsa"}) {
    auto scheme = crypto::make_signature_scheme(name);
    // Warm up key material.
    auto sig = scheme->sign(writer_id(0), pspan);
    const int iters = std::string(name) == "rsa" ? 20 : 2000;
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
      sig = scheme->sign(writer_id(0), pspan);
    }
    auto t1 = std::chrono::steady_clock::now();
    bool ok = true;
    for (int i = 0; i < iters; ++i) {
      ok &= scheme->verify(writer_id(0), pspan,
                           std::span<const std::uint8_t>(sig.data(),
                                                         sig.size()));
    }
    auto t2 = std::chrono::steady_clock::now();
    if (!ok) std::printf("verify failed for %s!\n", name);
    const double sign_us =
        std::chrono::duration<double, std::micro>(t1 - t0).count() / iters;
    const double verify_us =
        std::chrono::duration<double, std::micro>(t2 - t1).count() / iters;
    t.add_row({name, fmt(sign_us, 2), fmt(verify_us, 2),
               std::to_string(sig.size())});
  }
  t.print();
  std::printf("the paper assumes signatures [Rivest et al. 1978]; the "
              "oracle scheme gives the same two properties at hash cost "
              "for simulation-scale runs.\n");
}

}  // namespace

int main() {
  std::printf("E3: fast BFT atomic register (Figure 5)\n\n");
  simulated_latency();
  signature_cost();
  return 0;
}
