// The zero-copy wire pipeline, layer by layer:
//  * the size-precomputing encoder performs NO per-message heap
//    allocation in steady state (counted by overriding global operator
//    new -- the strongest form of the "counting buffer" instrumentation);
//  * buffer_chain resumes correctly after writev short writes, including
//    ones that end mid-block;
//  * frame_buffer::drain parses in place, reassembles frames straddling
//    receive-buffer boundaries, and still latches corrupt();
//  * a TCP cluster stays correct under fixed and adaptive batch windows;
//  * the pipelined store client keeps N ops in flight and the resulting
//    histories verify.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <numeric>
#include <string>
#include <vector>

#include "checker/atomicity.h"
#include "net/buffer_chain.h"
#include "net/cluster.h"
#include "net/framing.h"
#include "registers/registry.h"
#include "store/tcp_store.h"

// ------------------------------------------------- allocation counting --
// Global operator new override: every heap allocation in the process is
// counted. Tests snapshot the counter around the code under test; the
// window contains only straight-line encoder calls, so a nonzero delta
// is an allocation on the encode path.

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace fastreg::net {
namespace {

message make_msg(std::size_t val_len = 24) {
  message m;
  m.type = msg_type::write_req;
  m.obj = 0x1234abcd;
  m.epoch = 3;
  m.attempt = 7;
  m.ts = 41;
  m.wid = 2;
  m.val = std::string(val_len, 'v');
  m.prev = "prev-value";
  m.rcounter = 9;
  m.sig = {1, 2, 3, 4};
  m.origin = reader_id(1);
  return m;
}

// ------------------------------------------------------- exact sizing --

TEST(WireEncoder, PrecomputedSizesAreExact) {
  const auto m = make_msg();
  std::vector<std::uint8_t> out;
  EXPECT_EQ(append_msg_frame(out, server_id(0), m),
            msg_frame_wire_size(m));
  EXPECT_EQ(out.size(), msg_frame_wire_size(m));

  const std::vector<message> batch = {make_msg(4), make_msg(100)};
  std::vector<std::uint8_t> bout;
  EXPECT_EQ(append_batch_frame(bout, server_id(0), batch),
            batch_frame_wire_size(batch));
  EXPECT_EQ(bout.size(), batch_frame_wire_size(batch));

  // The append encoders emit byte-identical frames to the owned-buffer
  // conveniences (same codec, same framing).
  EXPECT_EQ(out, encode_msg_frame(server_id(0), m));
  EXPECT_EQ(bout, encode_batch_frame(server_id(0), batch));
}

TEST(WireEncoder, SteadyStateEncodePerformsNoHeapAllocation) {
  const auto m = make_msg();
  const std::vector<message> batch = {make_msg(8), make_msg(64),
                                      make_msg(200)};
  std::vector<std::uint8_t> out;
  // Warmup: the first round grows the buffer to its steady-state
  // capacity (this one MAY allocate).
  append_hello_frame(out, reader_id(0));
  append_msg_frame(out, server_id(3), m);
  append_batch_frame(out, server_id(3), batch);
  const std::size_t warmed_capacity = out.capacity();

  const std::uint64_t before =
      g_alloc_count.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    out.clear();  // keeps capacity
    append_hello_frame(out, reader_id(0));
    append_msg_frame(out, server_id(3), m);
    append_batch_frame(out, server_id(3), batch);
  }
  const std::uint64_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "encode path allocated on a warmed buffer";
  EXPECT_EQ(out.capacity(), warmed_capacity);
}

// -------------------------------------------------------- buffer_chain --

TEST(BufferChain, EmptyChainFillsNoIovecs) {
  buffer_chain chain;
  struct iovec iov[4];
  EXPECT_TRUE(chain.empty());
  EXPECT_EQ(chain.bytes(), 0u);
  EXPECT_EQ(chain.fill_iovec(iov, 4), 0u);
  // A tail block opened but never written into still flushes as zero
  // iovecs (the "zero-length batch flush" case: the window timer fires
  // with nothing queued).
  (void)chain.tail_for(128);
  EXPECT_EQ(chain.bytes(), 0u);
  EXPECT_EQ(chain.fill_iovec(iov, 4), 0u);
}

TEST(BufferChain, ShortWriteResumptionAcrossBlocks) {
  // Frames large enough that a handful spans several blocks; drain the
  // chain in adversarial chunk sizes (1 byte, odd primes, mid-block and
  // cross-block cuts) and require the exact original byte stream.
  buffer_chain chain;
  std::vector<std::uint8_t> expect;
  for (int i = 0; i < 9; ++i) {
    const auto m = make_msg(20'000 + static_cast<std::size_t>(i));
    append_msg_frame(chain.tail_for(msg_frame_wire_size(m)), server_id(0),
                     m);
    append_msg_frame(expect, server_id(0), m);
  }
  EXPECT_EQ(chain.bytes(), expect.size());

  struct iovec iov[16];
  bool saw_multi_iovec = false;
  std::vector<std::uint8_t> got;
  const std::size_t cuts[] = {1, 7, 97, 4093, 65536, 100'003};
  std::size_t cut = 0;
  while (!chain.empty()) {
    const std::size_t n = chain.fill_iovec(iov, 16);
    ASSERT_GT(n, 0u);
    if (n > 1) saw_multi_iovec = true;
    const std::size_t avail = std::accumulate(
        iov, iov + n, std::size_t{0},
        [](std::size_t a, const struct iovec& v) { return a + v.iov_len; });
    // A short "write": take fewer bytes than offered.
    const std::size_t take = std::min(avail, cuts[cut++ % 6]);
    std::size_t left = take;
    for (std::size_t k = 0; k < n && left > 0; ++k) {
      const std::size_t from_this = std::min(left, iov[k].iov_len);
      const auto* p = static_cast<const std::uint8_t*>(iov[k].iov_base);
      got.insert(got.end(), p, p + from_this);
      left -= from_this;
    }
    chain.consume(take);
  }
  EXPECT_TRUE(saw_multi_iovec) << "frames never spanned blocks";
  EXPECT_EQ(got, expect);
}

TEST(BufferChain, RecyclesBlocksAcrossFlushCycles) {
  buffer_chain chain;
  const auto m = make_msg(1000);
  for (int cycle = 0; cycle < 50; ++cycle) {
    for (int i = 0; i < 80; ++i) {  // ~80 KB: spans at least two blocks
      append_msg_frame(chain.tail_for(msg_frame_wire_size(m)),
                       server_id(0), m);
    }
    chain.consume(chain.bytes());
    EXPECT_TRUE(chain.empty());
  }
}

// ------------------------------------------------- in-place drain parse --

std::vector<frame> drain_in_chunks(const std::vector<std::uint8_t>& stream,
                                   std::size_t chunk, frame_buffer& fb) {
  std::vector<frame> got;
  for (std::size_t pos = 0; pos < stream.size(); pos += chunk) {
    const std::size_t n = std::min(chunk, stream.size() - pos);
    fb.drain(stream.data() + pos, n,
             [&](frame&& f) { got.push_back(std::move(f)); });
  }
  return got;
}

TEST(DrainParser, FramesStraddlingReceiveBufferBoundaries) {
  std::vector<std::uint8_t> stream;
  std::vector<message> sent;
  for (int i = 0; i < 7; ++i) {
    auto m = make_msg(static_cast<std::size_t>(10 + 40 * i));
    m.rcounter = static_cast<std::uint64_t>(i);
    append_msg_frame(stream, server_id(2), m);
    sent.push_back(std::move(m));
  }
  // Every chunking -- byte-at-a-time up through one-read-per-stream --
  // must reassemble the same frame sequence.
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{3},
                                  std::size_t{64}, stream.size()}) {
    frame_buffer fb;
    const auto got = drain_in_chunks(stream, chunk, fb);
    ASSERT_EQ(got.size(), sent.size()) << "chunk=" << chunk;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].kind, frame_kind::msg);
      EXPECT_EQ(got[i].from, server_id(2));
      ASSERT_TRUE(got[i].msg.has_value());
      EXPECT_EQ(*got[i].msg, sent[i]) << "chunk=" << chunk;
    }
    EXPECT_FALSE(fb.corrupt());
    EXPECT_EQ(fb.malformed_count(), 0u);
  }
}

TEST(DrainParser, BatchFramesSurviveStraddling) {
  const std::vector<message> batch = {make_msg(5), make_msg(500),
                                      make_msg(50)};
  std::vector<std::uint8_t> stream;
  append_batch_frame(stream, reader_id(0), batch);
  append_batch_frame(stream, reader_id(0), batch);
  frame_buffer fb;
  const auto got = drain_in_chunks(stream, 11, fb);
  ASSERT_EQ(got.size(), 2u);
  for (const auto& f : got) {
    EXPECT_EQ(f.kind, frame_kind::batch);
    EXPECT_EQ(f.batch, batch);
  }
}

TEST(DrainParser, CorruptLengthPrefixLatchesAndKeepsEarlierFrames) {
  const auto m = make_msg();
  std::vector<std::uint8_t> stream;
  append_msg_frame(stream, server_id(1), m);
  const std::size_t first_frame_end = stream.size();
  // A zero length prefix: framing is unrecoverable from here.
  stream.insert(stream.end(), {0, 0, 0, 0});
  append_msg_frame(stream, server_id(1), m);  // unreachable garbage

  for (const std::size_t chunk :
       {std::size_t{1}, first_frame_end, stream.size()}) {
    frame_buffer fb;
    const auto got = drain_in_chunks(stream, chunk, fb);
    ASSERT_EQ(got.size(), 1u) << "chunk=" << chunk;
    EXPECT_TRUE(got[0].msg.has_value());
    EXPECT_TRUE(fb.corrupt());
    EXPECT_GE(fb.malformed_count(), 1u);
    // Latched: further bytes are discarded, no frames ever emerge.
    std::vector<std::uint8_t> more;
    append_msg_frame(more, server_id(1), m);
    std::size_t extra = 0;
    fb.drain(more.data(), more.size(), [&](frame&&) { ++extra; });
    EXPECT_EQ(extra, 0u);
  }
}

TEST(DrainParser, OversizedLengthPrefixLatchesViaDrain) {
  std::vector<std::uint8_t> bogus = {0xff, 0xff, 0xff, 0xff, 0x00};
  frame_buffer fb;
  std::size_t emitted = 0;
  fb.drain(bogus.data(), bogus.size(), [&](frame&&) { ++emitted; });
  EXPECT_EQ(emitted, 0u);
  EXPECT_TRUE(fb.corrupt());
}

// --------------------------------------- batch windows on a real cluster --

void run_cluster_ops(node_options nopt) {
  system_config cfg;
  cfg.servers = 5;
  cfg.t_failures = 1;
  cfg.readers = 1;
  cluster c(cfg, *make_protocol("abd"), nopt);
  c.start();
  for (int k = 0; k < 20; ++k) {
    ASSERT_TRUE(c.writer().blocking_write("v" + std::to_string(k + 1)));
    const auto rd = c.reader(0).blocking_read();
    ASSERT_TRUE(rd.has_value());
    EXPECT_EQ(rd->val, "v" + std::to_string(k + 1));
  }
  EXPECT_TRUE(checker::check_swmr_atomicity(c.gather_history()).ok);
  c.stop();
}

TEST(BatchWindow, FixedWindowClusterStaysCorrect) {
  node_options nopt;
  nopt.batch_window_us = 300;
  run_cluster_ops(nopt);
}

TEST(BatchWindow, AdaptiveWindowClusterStaysCorrect) {
  node_options nopt;
  nopt.adaptive = true;
  run_cluster_ops(nopt);
}

TEST(BatchWindow, EnvParsing) {
  EXPECT_EQ(node_options{}.batch_window_us, 0u);
  setenv("FASTREG_BATCH_WINDOW_US", "250", 1);
  EXPECT_EQ(node_options::from_env().batch_window_us, 250u);
  EXPECT_FALSE(node_options::from_env().adaptive);
  setenv("FASTREG_BATCH_WINDOW_US", "adaptive", 1);
  EXPECT_TRUE(node_options::from_env().adaptive);
  EXPECT_EQ(node_options::from_env().adaptive_cap_us, 500u);
  setenv("FASTREG_BATCH_WINDOW_US", "adaptive:900", 1);
  EXPECT_EQ(node_options::from_env().adaptive_cap_us, 900u);
  // Malformed values must fall back to the default, not half-apply.
  for (const char* bad : {"adaptive900", "adaptive:9oo", "200us", "x"}) {
    setenv("FASTREG_BATCH_WINDOW_US", bad, 1);
    const auto opt = node_options::from_env();
    EXPECT_FALSE(opt.adaptive) << bad;
    EXPECT_EQ(opt.batch_window_us, 0u) << bad;
  }
  unsetenv("FASTREG_BATCH_WINDOW_US");
  EXPECT_EQ(node_options::from_env().batch_window_us, 0u);
}

}  // namespace
}  // namespace fastreg::net

// ----------------------------------------------- pipelined store client --

namespace fastreg::store {
namespace {

store_config pipeline_cfg() {
  store_config cfg;
  cfg.base.servers = 5;
  cfg.base.t_failures = 1;
  cfg.base.readers = 1;
  cfg.base.writers = 1;
  cfg.num_shards = 2;
  cfg.shard_protocols = {"abd"};
  return cfg;
}

TEST(Pipeline, KeepsNOpsInFlightAndHistoriesVerify) {
  net::node_options nopt;
  nopt.batch_window_us = 200;  // the throughput pairing: window + depth
  tcp_store ts(pipeline_cfg(), nopt);
  ts.start();

  const int keys = 16;
  {
    auto w = ts.open_session(writer_id(0), /*depth=*/4);
    for (int round = 0; round < 4; ++round) {
      for (int k = 0; k < keys; ++k) {
        ASSERT_TRUE(w->put("key" + std::to_string(k),
                           "v" + std::to_string(round) + "_" +
                               std::to_string(k)));
      }
    }
    ASSERT_TRUE(w->drain());
    EXPECT_EQ(w->submitted(), 4u * keys);
    EXPECT_EQ(w->take_results().size(), 4u * keys);
  }
  {
    auto r = ts.open_session(reader_id(0), /*depth=*/8);
    for (int round = 0; round < 4; ++round) {
      for (int k = 0; k < keys; ++k) {
        ASSERT_TRUE(r->get("key" + std::to_string(k)));
      }
    }
    ASSERT_TRUE(r->drain());
    const auto results = r->take_results();
    EXPECT_EQ(results.size(), 4u * keys);
    for (const auto& res : results) {
      EXPECT_FALSE(res.is_put);
      EXPECT_FALSE(res.val.empty()) << res.key;
    }
  }
  const auto hist = ts.gather();
  EXPECT_TRUE(hist.all_complete());
  const auto res = hist.verify();
  EXPECT_TRUE(res.ok) << res.error;
  ts.stop();
}

TEST(Pipeline, SameKeyBackToBackSerializesInsteadOfAborting) {
  tcp_store ts(pipeline_cfg());
  ts.start();
  auto w = ts.open_session(writer_id(0), /*depth=*/4);
  // Well-formedness is per key; the session must wait for the previous
  // op on the key rather than violate the precondition (or abort).
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(w->put("samekey", "v" + std::to_string(i + 1)));
  }
  ASSERT_TRUE(w->drain());
  const auto res = ts.gather().verify();
  EXPECT_TRUE(res.ok) << res.error;
  ts.stop();
}

}  // namespace
}  // namespace fastreg::store
