// The protocol automaton model, mirroring the paper's Section 2.2.
//
// A distributed algorithm is a collection of automata, one per process.
// Computation proceeds in steps <p, M>: process p atomically consumes a set
// of messages M, updates its state, and emits a set of messages. fastreg
// automata receive one message per on_message call (a step <p, {m}> -- the
// general <p, M> form is a sequence of such calls from the driver's point
// of view, which is equivalent for our protocols since none of them react
// to message *sets* atomically).
//
// Automata are transport-agnostic: the same objects run on the in-memory
// simulator (src/sim) and on TCP (src/net). They are also deep-clonable so
// the adversary harness can fork a partial run into the indistinguishable
// sibling runs that the lower-bound proofs compare.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "registers/config.h"
#include "registers/message.h"

namespace fastreg {

/// What an automaton is allowed to do during a step: send messages.
/// The transport behind it decides when (and whether) they are delivered.
class netout {
 public:
  virtual ~netout() = default;
  virtual void send(const process_id& to, message m) = 0;

  /// Sends several messages to one destination as a single transport unit
  /// (one envelope on the simulator, one frame on TCP). The default keeps
  /// transports that do not batch correct: it degrades to per-message
  /// sends. Only the store's multiplexing automata call this.
  virtual void send_batch(const process_id& to, std::vector<message> msgs) {
    for (auto& m : msgs) send(to, std::move(m));
  }
};

/// Base automaton: a deterministic state machine driven by messages.
class automaton {
 public:
  virtual ~automaton() = default;

  /// Deliver one message (a step <p, {m}>).
  virtual void on_message(netout& net, const process_id& from,
                          const message& m) = 0;

  /// Deliver a batched envelope as ONE step <p, M>. The default unrolls to
  /// per-message steps, which is equivalent for the register protocols
  /// (none react to message *sets* atomically). The store's automata
  /// override it to coalesce the replies the batch triggers.
  virtual void on_batch(netout& net, const process_id& from,
                        std::span<const message> msgs) {
    for (const auto& m : msgs) on_message(net, from, m);
  }

  /// Deep copy, including all protocol state. Clones share the (immutable
  /// or internally synchronized) signature scheme.
  [[nodiscard]] virtual std::unique_ptr<automaton> clone() const = 0;

  [[nodiscard]] virtual process_id self() const = 0;
};

/// A protocol-agnostic snapshot of one register replica's durable state:
/// the largest adopted (ts, wid) with its value tags and (Byzantine model)
/// the writer's signature over them. The store's live-reconfiguration
/// handoff reads this out of a superseded server instance (peek) and
/// installs it into the replacement instance (seed); see src/reconfig.
struct register_snapshot {
  ts_t ts{k_initial_ts};
  std::int32_t wid{0};
  value_t val{};
  value_t prev{};
  std::vector<std::uint8_t> sig{};

  [[nodiscard]] wts_t wts() const { return wts_t{ts, wid}; }

  friend bool operator==(const register_snapshot&,
                         const register_snapshot&) = default;
};

/// Server automata that can export and import their register state for
/// online key migration. Seeding marks the state as established at every
/// client (full seen set where applicable): the migration coordinator only
/// seeds values it has read from a quorum of the old generation, so
/// serving them on the fast path is safe.
class seedable {
 public:
  virtual ~seedable() = default;
  [[nodiscard]] virtual register_snapshot peek_state() const = 0;
  virtual void seed_state(const register_snapshot& s) = 0;
};

[[nodiscard]] inline seedable* as_seedable(automaton* a) {
  return dynamic_cast<seedable*>(a);
}

/// Result of a completed read, as observed by the invoking client.
struct read_result {
  ts_t ts{k_initial_ts};
  std::int32_t wid{0};
  value_t val{};
  /// Communication round-trips this operation used (1 == fast).
  int rounds{0};
};

/// Client-side interface of a reader automaton. Invocations follow the
/// paper's well-formedness rule: at most one outstanding op per client.
class reader_iface {
 public:
  virtual ~reader_iface() = default;

  /// Begin a read. Precondition: !read_in_progress().
  virtual void invoke_read(netout& net) = 0;

  [[nodiscard]] virtual bool read_in_progress() const = 0;

  /// Result of the most recently completed read, if any read completed.
  [[nodiscard]] virtual const std::optional<read_result>& last_read()
      const = 0;

  [[nodiscard]] virtual std::uint64_t reads_completed() const = 0;
};

/// Transport-facing interface of client automata whose invocation surface
/// is richer than reader_iface/writer_iface (the store front-end's
/// get(key)/put(key, v), possibly several ops pipelined on distinct
/// objects). Transports use it to detect quiescence and completions
/// generically; the role-specific entry points stay on the concrete type.
class async_client_iface {
 public:
  virtual ~async_client_iface() = default;

  /// True while at least one invoked operation has not completed.
  [[nodiscard]] virtual bool op_in_progress() const = 0;

  /// Total operations completed since construction (monotone).
  [[nodiscard]] virtual std::uint64_t ops_completed() const = 0;

  /// Operations invoked but not yet completed. Pipelined transports use
  /// it as the sliding-window occupancy; the default suits clients that
  /// hold at most one op.
  [[nodiscard]] virtual std::size_t ops_in_flight() const {
    return op_in_progress() ? 1 : 0;
  }
};

/// Client-side interface of a writer automaton.
class writer_iface {
 public:
  virtual ~writer_iface() = default;

  /// Begin a write. Precondition: !write_in_progress().
  virtual void invoke_write(netout& net, value_t v) = 0;

  [[nodiscard]] virtual bool write_in_progress() const = 0;

  [[nodiscard]] virtual std::uint64_t writes_completed() const = 0;

  /// Rounds used by the most recently completed write (1 == fast).
  [[nodiscard]] virtual int last_write_rounds() const = 0;

  /// Prepares a freshly constructed writer to take over a register whose
  /// replicas already store `migrated` (installed by a migration handoff):
  /// the next write must carry a timestamp above migrated.ts, and fast
  /// protocols must advertise migrated.val as the preceding write's value.
  /// No-op for writers that discover the current timestamp by querying
  /// (the MWMR family). Must not be called while a write is in progress.
  virtual void seed_writer(const register_snapshot& migrated) {
    (void)migrated;
  }
};

/// A full protocol instantiation: factory for the three automaton roles.
/// Implementations are registered in registers/registry.h by name.
class protocol {
 public:
  virtual ~protocol() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Does theory predict fast ops for this protocol under `cfg`?
  [[nodiscard]] virtual bool feasible(const system_config& cfg) const = 0;

  /// True when distinct writer automata may safely coexist (the MWMR
  /// family). Single-writer protocols hardwire writer 0; deployments
  /// (e.g. the store) use this to reject W > 1 for them.
  [[nodiscard]] virtual bool multi_writer() const { return false; }

  /// Rounds per op when the protocol is used within its feasible region.
  [[nodiscard]] virtual int read_rounds() const = 0;
  [[nodiscard]] virtual int write_rounds() const = 0;

  /// `obj` is the register object the automaton will serve. Only protocols
  /// whose wire payloads are bound to the object (fast_bft signs it) read
  /// it; single-register deployments pass k_default_object.
  [[nodiscard]] virtual std::unique_ptr<automaton> make_writer(
      const system_config& cfg, std::uint32_t index,
      object_id obj = k_default_object) const = 0;
  [[nodiscard]] virtual std::unique_ptr<automaton> make_reader(
      const system_config& cfg, std::uint32_t index,
      object_id obj = k_default_object) const = 0;
  [[nodiscard]] virtual std::unique_ptr<automaton> make_server(
      const system_config& cfg, std::uint32_t index,
      object_id obj = k_default_object) const = 0;
};

/// Cross-casts an automaton to its client interface; nullptr when the
/// automaton is not of that role.
[[nodiscard]] inline reader_iface* as_reader(automaton* a) {
  return dynamic_cast<reader_iface*>(a);
}
[[nodiscard]] inline writer_iface* as_writer(automaton* a) {
  return dynamic_cast<writer_iface*>(a);
}

}  // namespace fastreg
