// Core identifier and value types shared by every fastreg module.
//
// The paper's system (Dutta, Guerraoui, Levy, Vukolic, PODC 2004) has three
// disjoint process sets: servers {s1..sS}, a single writer {w} (generalized
// to {w1..wW} for the MWMR discussion of Section 7), and readers {r1..rR}.
// We mirror that structure with a (role, index) pair.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace fastreg {

/// Which of the paper's three process sets a process belongs to.
enum class role : std::uint8_t {
  writer = 0,
  reader = 1,
  server = 2,
};

/// Identifies one process: a (role, index) pair. Indices are 0-based within
/// a role (the paper's r1 is `reader 0`, s1 is `server 0`, w is `writer 0`).
struct process_id {
  role r{role::server};
  std::uint32_t index{0};

  friend bool operator==(const process_id&, const process_id&) = default;
  friend auto operator<=>(const process_id&, const process_id&) = default;

  [[nodiscard]] bool is_writer() const { return r == role::writer; }
  [[nodiscard]] bool is_reader() const { return r == role::reader; }
  [[nodiscard]] bool is_server() const { return r == role::server; }
};

[[nodiscard]] inline process_id writer_id(std::uint32_t i = 0) {
  return {role::writer, i};
}
[[nodiscard]] inline process_id reader_id(std::uint32_t i) {
  return {role::reader, i};
}
[[nodiscard]] inline process_id server_id(std::uint32_t i) {
  return {role::server, i};
}

/// The paper's pid() function (Figure 2): maps the writer to 0 and reader
/// r_i to i. Used to index the per-client `counter[]` array on servers and
/// as the bit position in `seen_set`. Multi-writer runs map writer w_j to
/// slot j as well (the MWMR baseline does not use seen sets, so overlap with
/// readers is harmless there; the fast protocols are single-writer).
[[nodiscard]] inline std::uint32_t client_slot(const process_id& p) {
  switch (p.r) {
    case role::writer:
      return 0;
    case role::reader:
      return p.index + 1;
    case role::server:
      break;
  }
  return ~0u;  // servers are not clients
}

[[nodiscard]] std::string to_string(const process_id& p);

/// Timestamps. The writer's first write carries ts = 1; ts = 0 denotes the
/// initial state whose value is bottom (the paper's special value, written
/// as \bot). MWMR timestamps carry a writer id for lexicographic tiebreak.
using ts_t = std::int64_t;
inline constexpr ts_t k_initial_ts = 0;

/// Lexicographic (number, writer) timestamp used by the MWMR baseline.
struct wts_t {
  ts_t num{0};
  std::int32_t wid{0};

  friend bool operator==(const wts_t&, const wts_t&) = default;
  friend auto operator<=>(const wts_t&, const wts_t&) = default;
};

/// Register values are opaque byte strings; the empty optional-style bottom
/// is represented by ts = 0 at the protocol layer, so plain std::string
/// suffices as the value payload type.
using value_t = std::string;

/// Identifies one register object when many are multiplexed over a shared
/// server fleet (src/store). Object 0 is the implicit single register of
/// the plain per-protocol deployments; the store derives ids from key
/// strings (see store/shard_map.h).
using object_id = std::uint64_t;
inline constexpr object_id k_default_object = 0;

/// Configuration epoch of the store's shard map (src/reconfig). Epoch 0 is
/// the map resolved at deployment time; each live reconfiguration installs
/// epoch+1. Messages carry the sender's epoch so servers can fence requests
/// routed under a superseded map.
using epoch_t = std::uint64_t;
inline constexpr epoch_t k_initial_epoch = 0;

/// Stable 64-bit key hash (FNV-1a) used to derive object ids.
[[nodiscard]] constexpr object_id fnv1a64(std::string_view s) {
  object_id h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Sentinel rendering of the initial value bottom.
inline const value_t k_bottom_value{};

/// A (timestamp, value, previous-value) triple: what the fast protocols
/// attach to every write (Section 4: "the writer attaches two tags with the
/// timestamp, containing the current value to be written and the value of
/// the immediately preceding write").
struct tagged_value {
  ts_t ts{k_initial_ts};
  value_t val{};
  value_t prev{};

  friend bool operator==(const tagged_value&, const tagged_value&) = default;
};

}  // namespace fastreg

template <>
struct std::hash<fastreg::process_id> {
  std::size_t operator()(const fastreg::process_id& p) const noexcept {
    return (static_cast<std::size_t>(p.r) << 32) ^ p.index;
  }
};
