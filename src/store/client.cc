#include "store/client.h"

#include "common/check.h"

namespace fastreg::store {

client::client(std::shared_ptr<const shard_map> shards, process_id self)
    : shards_(std::move(shards)), self_(self) {
  FASTREG_EXPECTS(self_.is_reader() || self_.is_writer());
}

client::client(const client& o)
    : shards_(o.shards_),
      self_(o.self_),
      pending_(o.pending_),
      completions_(o.completions_),
      completed_(o.completed_) {
  // outbox_ is intentionally not copied: it is empty between steps, and
  // clone() (world::fork) only runs between steps.
  FASTREG_EXPECTS(o.outbox_.empty());
  for (const auto& [obj, a] : o.objects_) {
    objects_.emplace(obj, a->clone());
  }
}

automaton& client::inner_for(object_id obj) {
  auto it = objects_.find(obj);
  if (it == objects_.end()) {
    const auto& proto = shards_->protocol_for_object(obj);
    const auto& base = shards_->config().base;
    auto a = self_.is_reader() ? proto.make_reader(base, self_.index)
                               : proto.make_writer(base, self_.index);
    it = objects_.emplace(obj, std::move(a)).first;
  }
  return *it->second;
}

void client::begin_get(const std::string& key) {
  FASTREG_EXPECTS(self_.is_reader());
  const object_id obj = key_object_id(key);
  FASTREG_EXPECTS(!pending_.contains(obj));
  auto& inner = inner_for(obj);
  auto* r = as_reader(&inner);
  FASTREG_ENSURES(r != nullptr);
  pending_.emplace(obj, pending_op{key, false, r->reads_completed()});
  tagging_netout tagged(outbox_, obj);
  r->invoke_read(tagged);
}

void client::begin_put(const std::string& key, value_t v) {
  FASTREG_EXPECTS(self_.is_writer());
  const object_id obj = key_object_id(key);
  FASTREG_EXPECTS(!pending_.contains(obj));
  auto& inner = inner_for(obj);
  auto* w = as_writer(&inner);
  FASTREG_ENSURES(w != nullptr);
  pending_.emplace(obj, pending_op{key, true, w->writes_completed()});
  tagging_netout tagged(outbox_, obj);
  w->invoke_write(tagged, std::move(v));
}

void client::flush(netout& net) { outbox_.flush(net); }

std::vector<store_result> client::take_completions() {
  return std::exchange(completions_, {});
}

void client::poll_object(object_id obj) {
  const auto it = pending_.find(obj);
  if (it == pending_.end()) return;
  const auto& op = it->second;
  auto& inner = inner_for(obj);
  store_result res;
  res.key = op.key;
  res.is_put = op.is_put;
  if (op.is_put) {
    auto* w = as_writer(&inner);
    if (w->writes_completed() <= op.before) return;
    res.rounds = w->last_write_rounds();
  } else {
    auto* r = as_reader(&inner);
    if (r->reads_completed() <= op.before) return;
    const auto& rr = r->last_read();
    FASTREG_CHECK(rr.has_value());
    res.ts = rr->ts;
    res.wid = rr->wid;
    res.val = rr->val;
    res.rounds = rr->rounds;
  }
  completions_.push_back(std::move(res));
  ++completed_;
  pending_.erase(it);
}

void client::on_message(netout& net, const process_id& from,
                        const message& m) {
  tagging_netout tagged(outbox_, m.obj);
  inner_for(m.obj).on_message(tagged, from, m);
  flush(net);
  poll_object(m.obj);
}

void client::on_batch(netout& net, const process_id& from,
                      std::span<const message> msgs) {
  std::vector<object_id> touched;
  touched.reserve(msgs.size());
  for (const auto& m : msgs) {
    tagging_netout tagged(outbox_, m.obj);
    inner_for(m.obj).on_message(tagged, from, m);
    touched.push_back(m.obj);
  }
  // One flush for the whole batch: replies the k messages triggered
  // coalesce into (at most) one envelope per destination.
  flush(net);
  for (std::size_t i = 0; i < touched.size(); ++i) {
    // Poll each object once even if the batch carried several messages
    // for it.
    bool seen = false;
    for (std::size_t j = 0; j < i; ++j) seen = seen || touched[j] == touched[i];
    if (!seen) poll_object(touched[i]);
  }
}

std::unique_ptr<automaton> client::clone() const {
  return std::unique_ptr<automaton>(new client(*this));
}

}  // namespace fastreg::store
