#include "net/cluster.h"

#include <algorithm>

#include "common/check.h"

namespace fastreg::net {

cluster::cluster(system_config cfg, const protocol& proto, node_options nopt)
    : cfg_(std::move(cfg)), book_(std::make_shared<address_book>()) {
  // Servers first: bind ephemeral listeners so the address book is
  // complete before any client node exists.
  for (std::uint32_t i = 0; i < cfg_.S(); ++i) {
    auto n = std::make_unique<node>(cfg_, proto.make_server(cfg_, i), book_,
                                    nopt);
    n->bind_listener(0);
    book_->server_ports.push_back(n->listen_port());
    servers_.push_back(std::move(n));
  }
  for (std::uint32_t i = 0; i < cfg_.R(); ++i) {
    readers_.push_back(std::make_unique<node>(
        cfg_, proto.make_reader(cfg_, i), book_, nopt));
  }
  for (std::uint32_t i = 0; i < cfg_.W(); ++i) {
    writers_.push_back(std::make_unique<node>(
        cfg_, proto.make_writer(cfg_, i), book_, nopt));
  }
}

cluster::~cluster() { stop(); }

void cluster::start() {
  FASTREG_EXPECTS(!started_);
  started_ = true;
  for (auto& n : servers_) n->start();
  for (auto& n : readers_) n->start();
  for (auto& n : writers_) n->start();
}

void cluster::stop() {
  if (!started_) return;
  started_ = false;
  // Clients first so no new requests hit stopping servers.
  for (auto& n : writers_) n->stop();
  for (auto& n : readers_) n->stop();
  for (auto& n : servers_) n->stop();
}

checker::history cluster::gather_history() const {
  // Merge per-node histories by invocation time.
  struct tagged {
    checker::op_record op;
  };
  std::vector<checker::op_record> all;
  // Note: hist() returns by value; keep the copy alive while iterating
  // (binding the range-for directly to hist().ops() would dangle in C++20).
  for (const auto& n : writers_) {
    const checker::history h = n->hist();
    for (const auto& op : h.ops()) all.push_back(op);
  }
  for (const auto& n : readers_) {
    const checker::history h = n->hist();
    for (const auto& op : h.ops()) all.push_back(op);
  }
  std::sort(all.begin(), all.end(),
            [](const checker::op_record& a, const checker::op_record& b) {
              return a.invoke_time < b.invoke_time;
            });
  checker::history merged;
  for (const auto& op : all) {
    const auto idx =
        merged.begin_op(op.client, op.is_write, op.invoke_time, op.val);
    if (op.response_time) {
      if (op.is_write) {
        merged.complete_write(idx, *op.response_time, op.rounds);
      } else {
        merged.complete_read(idx, *op.response_time, op.ts, op.wid, op.val,
                             op.rounds);
      }
    }
  }
  return merged;
}

}  // namespace fastreg::net
