#include "reconfig/coordinator.h"

#include <algorithm>

#include "common/check.h"
#include "obs/trace.h"

namespace fastreg::reconfig {

coordinator::coordinator(control_plane& ctl, std::vector<std::string> keys)
    : ctl_(ctl), keys_(std::move(keys)) {
  auto& reg = obs::registry::instance();
  epoch_gauge_ = &reg.get_gauge("fastreg_reconfig_epoch");
  read_phase_ns_ =
      &reg.get_histogram("fastreg_reconfig_phase_ns", "phase=\"state_read\"");
  seed_phase_ns_ =
      &reg.get_histogram("fastreg_reconfig_phase_ns", "phase=\"seed\"");
}

bool coordinator::start(std::shared_ptr<const store::shard_map> cur,
                        const reconfig_plan& plan) {
  FASTREG_EXPECTS(phase_ == phase::idle);
  FASTREG_EXPECTS(cur != nullptr);
  error_ = validate_plan(*cur, plan);
  if (!error_.empty()) return false;
  old_map_ = std::move(cur);
  new_map_ = build_next_map(*old_map_, plan);
  stats_.new_epoch = new_map_->epoch();
  const auto& base = old_map_->config().base;

  // Pre-flight: the handoff's quorum waits stall forever if more than t
  // servers are unreachable, so refuse to fence anything in that state.
  // The same pass collects state each server fenced last generation but
  // never received the seed for; those objects are handed off again (and
  // fenced again) even if their protocol does not change, so a seed-
  // missing replica cannot serve silently regressed state.
  force_moved_.clear();
  std::uint32_t reachable = 0;
  for (std::uint32_t i = 0; i < base.S(); ++i) {
    ctl_.with_server(i, [&](store::server& s) {
      ++reachable;
      for (const auto obj : s.unseeded_moved_objects()) {
        force_moved_.insert(obj);
      }
    });
  }
  if (reachable < base.quorum()) {
    error_ = "only " + std::to_string(reachable) + " of " +
             std::to_string(base.S()) +
             " servers reachable; a reconfiguration needs a quorum (" +
             std::to_string(base.quorum()) + ")";
    old_map_ = nullptr;
    new_map_ = nullptr;
    return false;
  }

  // Install + discovery, atomically per server: once a server is at the
  // new epoch it cannot create a new moved instance (data messages for
  // un-seeded moved objects are held or nacked), so its index read right
  // after the install is complete for this migration. Every server
  // fences moved objects from this point on; only then may clients learn
  // of the epoch (they learn via server replies or via the published
  // map, both of which happen after the installs), so no new-epoch
  // message can reach a server still at the old epoch.
  std::unordered_set<object_id> discovered;
  for (std::uint32_t i = 0; i < base.S(); ++i) {
    ctl_.with_server(i, [&](store::server& s) {
      s.install_map(new_map_, force_moved_);
      for (const auto obj : s.list_objects()) discovered.insert(obj);
    });
  }
  ctl_.publish(new_map_);
  epoch_gauge_->set(static_cast<std::int64_t>(new_map_->epoch()));
  stats_.keys_discovered = discovered.size();

  // Handoff candidates: explicit keys first (their order and duplicates
  // preserved -- dedup happens at handoff time), then the discovered
  // objects they did not already cover, then any force-moved object
  // covered by neither (possible for an object hosted NOWHERE whose
  // lazy fetch was still buffered at the install -- its clients were
  // just nacked into parking, so it must get a handoff, and with it a
  // resume). Sorted so schedules driven by a seeded rng stay
  // deterministic.
  targets_.clear();
  std::unordered_set<object_id> covered;
  for (const auto& key : keys_) {
    const auto obj = store::key_object_id(key);
    targets_.push_back(obj);
    covered.insert(obj);
  }
  std::vector<object_id> rest;
  for (const auto obj : discovered) {
    if (covered.insert(obj).second) rest.push_back(obj);
  }
  for (const auto obj : force_moved_) {
    if (covered.insert(obj).second) rest.push_back(obj);
  }
  std::sort(rest.begin(), rest.end());
  targets_.insert(targets_.end(), rest.begin(), rest.end());

  advance_target();
  return true;
}

bool coordinator::target_moves(object_id obj) const {
  return store::object_moves(*old_map_, *new_map_, obj) ||
         force_moved_.contains(obj);
}

void coordinator::advance_target() {
  while (next_target_ < targets_.size()) {
    const auto obj = targets_[next_target_];
    ++next_target_;
    ++stats_.keys_considered;
    if (!target_moves(obj)) {
      continue;  // same protocol either side: instances carried over
    }
    // One handoff per OBJECT: target_moves stays true for the whole
    // reconfiguration, so a duplicated key (or a distinct key colliding
    // to the same object id) would otherwise re-run the handoff against
    // the stale previous-generation snapshot -- re-flooring the writer
    // below live state and parking a put that then completes
    // acknowledged-but-unstored.
    if (!handled_.insert(obj).second) continue;
    ++stats_.keys_moved;
    cur_obj_ = obj;
    const epoch_t old_epoch = old_map_->epoch();
    ctl_.with_migrator([&](store::client& c, netout& net) {
      c.begin_state_read(obj, old_epoch);
      c.flush(net);
    });
    phase_ = phase::reading;
    phase_start_ = obs::trace_now();
    return;
  }
  phase_ = phase::done;
}

void coordinator::step() {
  switch (phase_) {
    case phase::idle:
    case phase::done:
      return;
    case phase::reading: {
      if (!ctl_.migrator_done()) return;
      read_phase_ns_->observe(obs::trace_now() - phase_start_);
      const auto snap = ctl_.migrator_snapshot();
      // Writer floors must be in place BEFORE any server stops nacking
      // the object: otherwise a retried put could race the drain with a
      // timestamp below the seeded state and stall.
      ctl_.for_each_client([&](store::client& c, netout& net) {
        if (c.self().is_writer()) c.seed_writer_floor(cur_obj_, snap);
        c.flush(net);
      });
      ctl_.with_migrator([&](store::client& c, netout& net) {
        c.begin_seed(cur_obj_, snap, new_map_->epoch());
        c.flush(net);
      });
      phase_ = phase::seeding;
      phase_start_ = obs::trace_now();
      return;
    }
    case phase::seeding: {
      if (!ctl_.migrator_done()) return;
      seed_phase_ns_->observe(obs::trace_now() - phase_start_);
      // Quorum seeded: wake whatever the fence parked. Servers outside
      // the seeded quorum lazily fetch the snapshot on first access.
      ctl_.for_each_client([&](store::client& c, netout& net) {
        c.resume_parked(cur_obj_);
        c.flush(net);
      });
      advance_target();
      return;
    }
  }
}

}  // namespace fastreg::reconfig
