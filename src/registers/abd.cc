#include "registers/abd.h"

#include <algorithm>

#include "common/check.h"
#include "obs/trace.h"

namespace fastreg {

// --------------------------------------------------------- quorum_server --

quorum_server::quorum_server(system_config cfg, std::uint32_t index)
    : cfg_(std::move(cfg)), index_(index) {}

void quorum_server::on_message(netout& net, const process_id& from,
                               const message& m) {
  if (from.is_server()) return;
  message reply;
  reply.rcounter = m.rcounter;
  switch (m.type) {
    case msg_type::write_req:
    case msg_type::wb_req: {
      if (m.wts() > ts_) {
        ts_ = m.wts();
        val_ = m.val;
      }
      reply.type = m.type == msg_type::write_req ? msg_type::write_ack
                                                 : msg_type::wb_ack;
      // Echo the request's timestamp so the client can match the ack to
      // the op even if this server already stores a larger one.
      reply.ts = m.ts;
      reply.wid = m.wid;
      break;
    }
    case msg_type::read_req: {
      reply.type = msg_type::read_ack;
      reply.ts = ts_.num;
      reply.wid = ts_.wid;
      reply.val = val_;
      break;
    }
    case msg_type::query_req: {
      reply.type = msg_type::query_ack;
      reply.ts = ts_.num;
      reply.wid = ts_.wid;
      break;
    }
    default:
      return;
  }
  net.send(from, reply);
}

std::unique_ptr<automaton> quorum_server::clone() const {
  return std::make_unique<quorum_server>(*this);
}

register_snapshot quorum_server::peek_state() const {
  // prev mirrors val: the quorum family never serves a value older than
  // its stored one, so the "preceding write" tag is the value itself.
  return {ts_.num, ts_.wid, val_, val_, {}};
}

void quorum_server::seed_state(const register_snapshot& s) {
  ts_ = {s.ts, s.wid};
  val_ = s.val;
}

// ------------------------------------------------------------ abd_writer --

abd_writer::abd_writer(system_config cfg) : cfg_(std::move(cfg)) {}

void abd_writer::invoke_write(netout& net, value_t v) {
  FASTREG_EXPECTS(!pending_);
  pending_ = true;
  obs::op_begin(self(), /*is_write=*/true);
  obs::round_issue(self(), 1);
  ts_ += 1;  // single writer: the local counter is the latest timestamp
  rcounter_ += 1;
  acks_.clear();
  message m;
  m.type = msg_type::write_req;
  m.ts = ts_;
  m.val = std::move(v);
  m.rcounter = rcounter_;
  for (std::uint32_t i = 0; i < cfg_.S(); ++i) {
    net.send(server_id(i), m);
  }
}

void abd_writer::on_message(netout&, const process_id& from,
                            const message& m) {
  if (!pending_ || m.type != msg_type::write_ack || !from.is_server()) return;
  if (m.ts != ts_ || m.rcounter != rcounter_) return;
  acks_.insert(from.index);
  if (acks_.size() >= cfg_.quorum()) {
    pending_ = false;
    completed_ += 1;
    obs::round_ack(self(), 1);
    obs::op_end(self(), 1);
  }
}

std::unique_ptr<automaton> abd_writer::clone() const {
  return std::make_unique<abd_writer>(*this);
}

void abd_writer::seed_writer(const register_snapshot& migrated) {
  FASTREG_EXPECTS(!pending_);
  // invoke_write pre-increments, so the next write lands above the
  // migrated timestamp.
  ts_ = std::max(ts_, migrated.ts);
}

// ------------------------------------------------------------ abd_reader --

abd_reader::abd_reader(system_config cfg, std::uint32_t index)
    : cfg_(std::move(cfg)), index_(index) {}

void abd_reader::invoke_read(netout& net) {
  FASTREG_EXPECTS(phase_ == phase::idle);
  phase_ = phase::query;
  obs::op_begin(self(), /*is_write=*/false);
  obs::round_issue(self(), 1);
  rcounter_ += 1;
  best_ts_ = {};
  best_val_.clear();
  acks_.clear();
  message m;
  m.type = msg_type::read_req;
  m.rcounter = rcounter_;
  for (std::uint32_t i = 0; i < cfg_.S(); ++i) {
    net.send(server_id(i), m);
  }
}

void abd_reader::on_message(netout& net, const process_id& from,
                            const message& m) {
  if (!from.is_server() || m.rcounter != rcounter_) return;
  if (phase_ == phase::query && m.type == msg_type::read_ack) {
    if (acks_.contains(from.index)) return;
    acks_.insert(from.index);
    if (m.wts() > best_ts_) {
      best_ts_ = m.wts();
      best_val_ = m.val;
    }
    if (acks_.size() >= cfg_.quorum()) {
      // Round-trip 2: propagate the chosen pair before returning, so that
      // a subsequent read cannot observe an older value.
      phase_ = phase::write_back;
      obs::round_ack(self(), 1);
      obs::round_issue(self(), 2);
      rcounter_ += 1;
      acks_.clear();
      message wb;
      wb.type = msg_type::wb_req;
      wb.ts = best_ts_.num;
      wb.wid = best_ts_.wid;
      wb.val = best_val_;
      wb.rcounter = rcounter_;
      for (std::uint32_t i = 0; i < cfg_.S(); ++i) {
        net.send(server_id(i), wb);
      }
    }
    return;
  }
  if (phase_ == phase::write_back && m.type == msg_type::wb_ack) {
    if (acks_.contains(from.index)) return;
    acks_.insert(from.index);
    if (acks_.size() >= cfg_.quorum()) {
      phase_ = phase::idle;
      completed_ += 1;
      last_result_ = read_result{best_ts_.num, best_ts_.wid, best_val_, 2};
      obs::round_ack(self(), 2);
      obs::op_end(self(), 2);
    }
  }
}

std::unique_ptr<automaton> abd_reader::clone() const {
  return std::make_unique<abd_reader>(*this);
}

// -------------------------------------------------------------- protocol --

std::unique_ptr<automaton> abd_protocol::make_writer(const system_config& cfg,
                                                     std::uint32_t index,
                                                     object_id) const {
  FASTREG_EXPECTS(index == 0);
  return std::make_unique<abd_writer>(cfg);
}

std::unique_ptr<automaton> abd_protocol::make_reader(const system_config& cfg,
                                                     std::uint32_t index,
                                                     object_id) const {
  return std::make_unique<abd_reader>(cfg, index);
}

std::unique_ptr<automaton> abd_protocol::make_server(const system_config& cfg,
                                                     std::uint32_t index,
                                                     object_id) const {
  return std::make_unique<quorum_server>(cfg, index);
}

}  // namespace fastreg
