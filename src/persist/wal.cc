#include "persist/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/check.h"
#include "common/log.h"
#include "common/serialization.h"

namespace fastreg::persist {

namespace {

constexpr std::uint32_t k_snap_magic = 0x4e535246;  // "FRSN" little-endian
constexpr std::uint32_t k_snap_version = 1;
/// Frame header: payload length + payload CRC.
constexpr std::size_t k_frame_header = 8;

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Writes all of `data`, retrying EINTR and short writes. Returns false
/// on a real error (errno preserved for the caller's log line).
bool full_write(int fd, const std::uint8_t* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads the whole file into a byte vector; nullopt when it cannot be
/// opened (missing file included -- callers distinguish via errno).
std::optional<std::vector<std::uint8_t>> read_file(const std::string& path) {
  int fd;
  do {
    fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return std::nullopt;
  std::vector<std::uint8_t> out;
  std::uint8_t buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return std::nullopt;
    }
    if (n == 0) break;
    out.insert(out.end(), buf, buf + n);
  }
  ::close(fd);
  return out;
}

void encode_snapshot_fields(byte_writer& w, object_id obj,
                            const register_snapshot& s) {
  w.put_u64(obj);
  w.put_i64(s.ts);
  w.put_i32(s.wid);
  w.put_string(s.val);
  w.put_string(s.prev);
  w.put_bytes(s.sig);
}

bool decode_snapshot_fields(byte_reader& r, object_id& obj,
                            register_snapshot& s) {
  const auto o = r.get_u64();
  const auto ts = r.get_i64();
  const auto wid = r.get_i32();
  auto val = r.get_string();
  auto prev = r.get_string();
  auto sig = r.get_bytes();
  if (!o || !ts || !wid || !val || !prev || !sig) return false;
  obj = *o;
  s.ts = *ts;
  s.wid = *wid;
  s.val = std::move(*val);
  s.prev = std::move(*prev);
  s.sig = std::move(*sig);
  return true;
}

std::vector<std::uint8_t> encode_record(const log_record& rec) {
  byte_writer w;
  w.put_u8(static_cast<std::uint8_t>(rec.k));
  w.put_u64(rec.epoch);
  if (rec.k == log_record::kind::epoch_mark) {
    w.put_u32(static_cast<std::uint32_t>(rec.fenced.size()));
    for (const auto obj : rec.fenced) w.put_u64(obj);
  } else {
    encode_snapshot_fields(w, rec.obj, rec.snap);
  }
  return w.take();
}

std::optional<log_record> decode_record(std::span<const std::uint8_t> payload) {
  byte_reader r(payload);
  const auto kind = r.get_u8();
  const auto epoch = r.get_u64();
  if (!kind || !epoch) return std::nullopt;
  log_record rec;
  rec.epoch = *epoch;
  switch (*kind) {
    case static_cast<std::uint8_t>(log_record::kind::op):
    case static_cast<std::uint8_t>(log_record::kind::seed):
      rec.k = static_cast<log_record::kind>(*kind);
      if (!decode_snapshot_fields(r, rec.obj, rec.snap)) return std::nullopt;
      break;
    case static_cast<std::uint8_t>(log_record::kind::epoch_mark): {
      rec.k = log_record::kind::epoch_mark;
      const auto n = r.get_u32();
      if (!n) return std::nullopt;
      rec.fenced.reserve(*n);
      for (std::uint32_t i = 0; i < *n; ++i) {
        const auto obj = r.get_u64();
        if (!obj) return std::nullopt;
        rec.fenced.push_back(*obj);
      }
      break;
    }
    default:
      return std::nullopt;
  }
  if (!r.exhausted()) return std::nullopt;  // trailing garbage in the frame
  return rec;
}

}  // namespace

// ------------------------------------------------------------------ crc32 --

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  // IEEE 802.3 reflected polynomial, table built on first use.
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t c = 0xffffffffu;
  for (const auto b : data) {
    c = table[(c ^ b) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

// ---------------------------------------------------------------- options --

const char* to_string(fsync_policy p) {
  switch (p) {
    case fsync_policy::never:
      return "never";
    case fsync_policy::interval:
      return "interval";
    case fsync_policy::every_op:
      return "every_op";
  }
  return "?";
}

fsync_policy parse_fsync_policy(const std::string& s, fsync_policy fallback) {
  if (s == "never") return fsync_policy::never;
  if (s == "interval") return fsync_policy::interval;
  if (s == "every_op") return fsync_policy::every_op;
  return fallback;
}

options options::from_env(std::string dir) {
  options o;
  o.dir = std::move(dir);
  if (const char* env = std::getenv("FASTREG_FSYNC")) {
    o.fsync = parse_fsync_policy(env, o.fsync);
  }
  return o;
}

// -------------------------------------------------------------------- wal --

wal::wal(std::string path, fsync_policy policy,
         std::uint64_t fsync_interval_ms)
    : path_(std::move(path)),
      policy_(policy),
      fsync_interval_ms_(fsync_interval_ms) {
  do {
    fd_ = ::open(path_.c_str(), O_CREAT | O_WRONLY | O_APPEND | O_CLOEXEC,
                 0644);
  } while (fd_ < 0 && errno == EINTR);
  if (fd_ < 0) {
    LOG_ERROR("persist: cannot open op log %s: %s -- continuing without "
              "durability",
              path_.c_str(), std::strerror(errno));
  }
  last_sync_ns_ = steady_now_ns();
}

wal::~wal() {
  if (fd_ >= 0) {
    if (policy_ != fsync_policy::never && dirty_bytes_ > 0) ::fsync(fd_);
    ::close(fd_);
  }
}

void wal::append(const log_record& rec) {
  if (fd_ < 0) return;
  const auto payload = encode_record(rec);
  byte_writer frame;
  frame.put_u32(static_cast<std::uint32_t>(payload.size()));
  frame.put_u32(crc32(payload));
  std::vector<std::uint8_t> bytes = frame.take();
  bytes.insert(bytes.end(), payload.begin(), payload.end());
  if (!full_write(fd_, bytes.data(), bytes.size())) {
    LOG_ERROR("persist: append to %s failed: %s -- closing the log "
              "(server keeps serving without durability)",
              path_.c_str(), std::strerror(errno));
    ::close(fd_);
    fd_ = -1;
    return;
  }
  ++appended_;
  bytes_ += bytes.size();
  dirty_bytes_ += bytes.size();
  maybe_sync();
}

void wal::maybe_sync() {
  if (fd_ < 0 || dirty_bytes_ == 0) return;
  switch (policy_) {
    case fsync_policy::never:
      return;
    case fsync_policy::every_op:
      break;
    case fsync_policy::interval: {
      const std::uint64_t now = steady_now_ns();
      if (now - last_sync_ns_ < fsync_interval_ms_ * 1'000'000ull) return;
      break;
    }
  }
  sync();
}

void wal::sync() {
  if (fd_ < 0 || dirty_bytes_ == 0) return;
  ::fsync(fd_);
  ++fsyncs_;
  dirty_bytes_ = 0;
  last_sync_ns_ = steady_now_ns();
}

void wal::reset() {
  if (fd_ < 0) return;
  if (::ftruncate(fd_, 0) != 0) {
    LOG_ERROR("persist: truncate of %s after snapshot failed: %s",
              path_.c_str(), std::strerror(errno));
  }
  dirty_bytes_ = 0;
}

wal_load_result wal::load(const std::string& path, bool repair) {
  wal_load_result out;
  const auto bytes = read_file(path);
  if (!bytes) return out;  // no log yet: empty result, no warning
  const auto& data = *bytes;
  std::size_t pos = 0;
  while (pos < data.size()) {
    const std::span<const std::uint8_t> rest(data.data() + pos,
                                             data.size() - pos);
    byte_reader hdr(rest);
    const auto len = hdr.get_u32();
    const auto crc = hdr.get_u32();
    if (!len || !crc || pos + k_frame_header + *len > data.size()) {
      out.warning = "torn tail: incomplete frame at offset " +
                    std::to_string(pos) + " (" +
                    std::to_string(data.size() - pos) + " trailing bytes)";
      break;
    }
    const auto payload = rest.subspan(k_frame_header, *len);
    if (crc32(payload) != *crc) {
      out.warning = "corrupt record at offset " + std::to_string(pos) +
                    ": CRC mismatch (stored " + std::to_string(*crc) +
                    ", computed " + std::to_string(crc32(payload)) +
                    "); dropping it and everything after";
      break;
    }
    auto rec = decode_record(payload);
    if (!rec) {
      out.warning = "corrupt record at offset " + std::to_string(pos) +
                    ": CRC valid but payload undecodable; dropping it "
                    "and everything after";
      break;
    }
    out.records.push_back(std::move(*rec));
    pos += k_frame_header + *len;
  }
  out.valid_bytes = pos;
  out.dropped_bytes = data.size() - pos;
  if (out.truncated()) {
    LOG_WARN("persist: %s: %s (%llu valid records, %llu bytes kept, %llu "
             "bytes dropped)",
             path.c_str(), out.warning.c_str(),
             static_cast<unsigned long long>(out.records.size()),
             static_cast<unsigned long long>(out.valid_bytes),
             static_cast<unsigned long long>(out.dropped_bytes));
    if (repair && ::truncate(path.c_str(),
                             static_cast<off_t>(out.valid_bytes)) != 0) {
      LOG_ERROR("persist: repair-truncate of %s to %llu bytes failed: %s",
                path.c_str(),
                static_cast<unsigned long long>(out.valid_bytes),
                std::strerror(errno));
    }
  }
  return out;
}

// -------------------------------------------------------------- snapshots --

bool write_snapshot_file(const std::string& path, const snapshot_data& snap,
                         fsync_policy policy, std::string* err) {
  byte_writer body;
  body.put_u64(snap.epoch);
  body.put_u32(static_cast<std::uint32_t>(snap.objects.size()));
  for (const auto& [obj, s] : snap.objects) {
    encode_snapshot_fields(body, obj, s);
  }
  const auto payload = body.take();
  byte_writer file;
  file.put_u32(k_snap_magic);
  file.put_u32(k_snap_version);
  file.put_u32(static_cast<std::uint32_t>(payload.size()));
  file.put_u32(crc32(payload));
  std::vector<std::uint8_t> bytes = file.take();
  bytes.insert(bytes.end(), payload.begin(), payload.end());

  const std::string tmp = path + ".tmp";
  int fd;
  do {
    fd = ::open(tmp.c_str(), O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC, 0644);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    if (err) *err = "open " + tmp + ": " + std::strerror(errno);
    return false;
  }
  if (!full_write(fd, bytes.data(), bytes.size())) {
    if (err) *err = "write " + tmp + ": " + std::strerror(errno);
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  // The rename is only atomic-durable if the tmp's bytes are on disk
  // first; under fsync never the page cache is the declared contract.
  if (policy != fsync_policy::never) ::fsync(fd);
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    if (err) *err = "rename " + tmp + " -> " + path + ": " +
                    std::strerror(errno);
    ::unlink(tmp.c_str());
    return false;
  }
  return true;
}

std::optional<snapshot_data> load_snapshot_file(const std::string& path,
                                                std::string* err) {
  if (err) err->clear();
  const auto bytes = read_file(path);
  if (!bytes) {
    if (errno != ENOENT && err) {
      *err = "open " + path + ": " + std::strerror(errno);
    }
    return std::nullopt;
  }
  byte_reader r{std::span<const std::uint8_t>(*bytes)};
  const auto magic = r.get_u32();
  const auto version = r.get_u32();
  const auto len = r.get_u32();
  const auto crc = r.get_u32();
  if (!magic || *magic != k_snap_magic) {
    if (err) *err = "snapshot " + path + " rejected: bad magic";
    return std::nullopt;
  }
  if (!version || *version != k_snap_version) {
    if (err) {
      *err = "snapshot " + path + " rejected: unsupported version " +
             std::to_string(version.value_or(0));
    }
    return std::nullopt;
  }
  if (!len || !crc || r.remaining() != *len) {
    if (err) {
      *err = "snapshot " + path + " rejected: truncated (" +
             std::to_string(bytes->size()) + " bytes on disk)";
    }
    return std::nullopt;
  }
  const auto payload = std::span(*bytes).subspan(bytes->size() - *len);
  if (crc32(payload) != *crc) {
    if (err) {
      *err = "snapshot " + path + " rejected: CRC mismatch (stored " +
             std::to_string(*crc) + ", computed " +
             std::to_string(crc32(payload)) + ")";
    }
    return std::nullopt;
  }
  byte_reader body(payload);
  const auto epoch = body.get_u64();
  const auto count = body.get_u32();
  if (!epoch || !count) {
    if (err) *err = "snapshot " + path + " rejected: undecodable header";
    return std::nullopt;
  }
  snapshot_data snap;
  snap.epoch = *epoch;
  snap.objects.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    object_id obj;
    register_snapshot s;
    if (!decode_snapshot_fields(body, obj, s)) {
      if (err) {
        *err = "snapshot " + path + " rejected: undecodable object entry " +
               std::to_string(i);
      }
      return std::nullopt;
    }
    snap.objects.emplace_back(obj, std::move(s));
  }
  return snap;
}

}  // namespace fastreg::persist
