// A network node: one protocol automaton hosted on its own epoll reactor
// thread, speaking the framed TCP protocol of framing.h.
//
// Topology (matching the paper's client/server system):
//  * server nodes listen on a TCP port; clients connect to every server
//    lazily and keep the connection open; servers answer over the same
//    connection.
//  * server nodes also open outbound connections to other servers when the
//    protocol requires it (the max-min variant's gossip round).
//
// Threading: the automaton runs exclusively on the reactor thread.
// Invocations from client code are posted through an eventfd queue;
// blocking_read / blocking_write wait on a condition variable until the
// automaton reports completion. Operation histories are recorded with
// steady-clock nanosecond timestamps so cross-node histories are
// comparable (same clock domain on one machine).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "checker/history.h"
#include "net/framing.h"
#include "net/socket.h"
#include "registers/automaton.h"

namespace fastreg::net {

/// Where to find each server. Clients and servers share one address book.
struct address_book {
  std::vector<std::uint16_t> server_ports;
};

class node final : public netout {
 public:
  node(system_config cfg, std::unique_ptr<automaton> a,
       std::shared_ptr<const address_book> book);
  ~node() override;

  node(const node&) = delete;
  node& operator=(const node&) = delete;

  /// Servers: bind the listener (port 0 = ephemeral) before start().
  void bind_listener(std::uint16_t port = 0);
  [[nodiscard]] std::uint16_t listen_port() const;

  void start();
  void stop();

  /// Blocking client operations (call from any non-reactor thread).
  /// Returns nullopt / false on timeout.
  [[nodiscard]] std::optional<read_result> blocking_read(
      std::chrono::milliseconds timeout = std::chrono::seconds(10));
  [[nodiscard]] bool blocking_write(
      value_t v,
      std::chrono::milliseconds timeout = std::chrono::seconds(10));

  /// Generic blocking invocation for automata that expose
  /// async_client_iface (the store front-end): `start` runs on the reactor
  /// thread (it may begin several pipelined ops); returns once every op it
  /// began completed, or false on timeout. Histories are the caller's job.
  [[nodiscard]] bool blocking_op(
      const std::function<void(automaton&, netout&)>& start,
      std::chrono::milliseconds timeout = std::chrono::seconds(10));

  /// Runs `fn` on the reactor thread and waits for it to finish. The only
  /// safe way for non-reactor code to inspect automaton state that late
  /// messages may still mutate (e.g. draining store completions).
  void run_on_reactor(const std::function<void(automaton&)>& fn);

  /// Like run_on_reactor, but NEVER runs `fn` inline when the reactor is
  /// not running: returns false instead (also when the reactor exits
  /// before draining the task). For callers that treat a stopped node as
  /// crashed (the reconfiguration control plane) -- the inline fallback
  /// would mutate a "crashed" automaton behind the deployment's back and
  /// is racy against a concurrent stop().
  [[nodiscard]] bool try_run_on_reactor(
      const std::function<void(automaton&)>& fn);

  /// Like run_on_reactor, but hands `fn` this node's netout so it can
  /// start or re-issue protocol traffic (the reconfiguration control
  /// plane: migration handoff ops, resuming parked ops). Does NOT wait
  /// for any started op to complete -- pair with a completion poll.
  void run_on_reactor_net(const std::function<void(automaton&, netout&)>& fn);

  /// Operation history recorded by this node (clients only). Safe to call
  /// after stop(), or concurrently (copies under lock).
  [[nodiscard]] checker::history hist() const;

  [[nodiscard]] const process_id& self() const { return self_; }

  // netout: called by the automaton on the reactor thread.
  void send(const process_id& to, message m) override;
  void send_batch(const process_id& to, std::vector<message> msgs) override;

 private:
  struct connection {
    unique_fd fd;
    frame_buffer in;
    std::vector<std::uint8_t> out;
    std::size_t out_offset{0};
    std::optional<process_id> peer;
    bool connecting{false};
  };

  void reactor_main();
  void post(std::function<void()> fn);
  void handle_readable(int fd);
  void handle_writable(int fd);
  void flush(int fd, connection& c);
  void close_conn(int fd);
  void queue_bytes(int fd, std::vector<std::uint8_t> bytes);
  void route_bytes(const process_id& to, std::vector<std::uint8_t> bytes);
  int outbound_to_server(std::uint32_t index);
  void poll_client_completion();
  void update_epoll(int fd, connection& c);

  system_config cfg_;
  std::unique_ptr<automaton> automaton_;
  std::shared_ptr<const address_book> book_;
  process_id self_;
  /// Cached cross-cast; non-null when the automaton is a store front-end.
  async_client_iface* async_iface_{nullptr};

  unique_fd listen_fd_;
  unique_fd epoll_fd_;
  unique_fd event_fd_;
  std::thread thread_;

  std::unordered_map<int, connection> conns_;
  std::unordered_map<std::uint32_t, int> out_to_server_;
  std::unordered_map<process_id, int> inbound_by_peer_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  bool started_{false};
  bool stop_requested_{false};
  bool reactor_exited_{false};
  checker::history hist_;
  std::uint64_t reads_done_{0};
  std::uint64_t writes_done_{0};
  std::size_t open_op_index_{0};
  bool op_open_{false};
  // Reactor-maintained mirror of async_iface_ state, so blocking_op can
  // wait under mu_ without racing on automaton internals.
  bool async_busy_{false};
  std::uint64_t async_done_{0};

  static std::uint64_t now_ns();
};

}  // namespace fastreg::net
