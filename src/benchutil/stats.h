// Latency sample accumulator with percentile queries.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fastreg::benchutil {

class stats {
 public:
  void add(double sample) {
    samples_.push_back(sample);
    sorted_ = false;
  }
  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Percentile; p outside [0, 100] aborts (contract check), no samples
  /// returns 0. Linear interpolation on the sorted samples.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double p50() const { return percentile(50); }
  [[nodiscard]] double p99() const { return percentile(99); }

 private:
  void ensure_sorted() const;
  mutable std::vector<double> samples_;
  mutable bool sorted_{false};
};

/// "123.4" with the given precision; "-" when no samples.
[[nodiscard]] std::string fmt(double v, int precision = 1);

}  // namespace fastreg::benchutil
