// The live reconfiguration subsystem: plan validation, the epoch-versioned
// map registry, online key migration on the simulator (values surviving
// protocol switches, ops spanning the epoch boundary, parked ops resuming)
// and on the TCP deployment under concurrent client traffic.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "crypto/sig.h"
#include "reconfig/control.h"
#include "reconfig/coordinator.h"
#include "reconfig/plan.h"
#include "reconfig/versioned_map.h"
#include "store/sim_store.h"
#include "store/tcp_store.h"

namespace fastreg::reconfig {
namespace {

store::store_config make_cfg(std::vector<std::string> protos,
                             std::uint32_t num_shards = 2,
                             std::uint32_t R = 2, std::uint32_t S = 7,
                             std::uint32_t t = 1, std::uint32_t W = 1) {
  store::store_config cfg;
  cfg.base.servers = S;
  cfg.base.t_failures = t;
  cfg.base.readers = R;
  cfg.base.writers = W;
  cfg.num_shards = num_shards;
  cfg.shard_protocols = std::move(protos);
  return cfg;
}

/// Interleaves coordinator control actions with random message delivery
/// until the migration finishes.
void drive_reconfig(store::sim_store& s, coordinator& coord, rng& r) {
  std::uint64_t guard = 0;
  while (!coord.done()) {
    ASSERT_LT(++guard, 1'000'000u);
    coord.step();
    if (!s.world().in_transit().empty()) s.run_random(r, 1);
  }
}

void run_until_idle(store::sim_store& s, rng& r) {
  std::uint64_t guard = 0;
  while (!s.idle()) {
    ASSERT_LT(++guard, 1'000'000u);
    ASSERT_FALSE(s.world().in_transit().empty());
    s.run_random(r, 1);
  }
}

// ------------------------------------------------------------ plans --

TEST(ReconfigPlan, RejectsUnknownProtocol) {
  store::shard_map cur(make_cfg({"abd"}));
  reconfig_plan plan{2, {"no_such_protocol"}};
  EXPECT_NE(validate_plan(cur, plan).find("unknown"), std::string::npos);
}

TEST(ReconfigPlan, RejectsSingleWriterProtocolWhenMultiWriter) {
  store::shard_map cur(make_cfg({"mwmr"}, 2, 2, 7, 1, /*W=*/2));
  reconfig_plan plan{2, {"abd"}};
  EXPECT_NE(validate_plan(cur, plan).find("single-writer"),
            std::string::npos);
}

TEST(ReconfigPlan, RejectsInfeasibleProtocol) {
  // S = 4, t = 1, R = 2: fast_swmr needs S > (R+2)t = 4.
  store::shard_map cur(make_cfg({"abd"}, 2, 2, /*S=*/4));
  reconfig_plan plan{2, {"fast_swmr"}};
  EXPECT_NE(validate_plan(cur, plan).find("infeasible"), std::string::npos);
}

TEST(ReconfigPlan, RejectsSwitchIntoFastBft) {
  store::shard_map cur(make_cfg({"abd"}, 2, 2, /*S=*/8));
  reconfig_plan plan{2, {"fast_bft"}};
  EXPECT_NE(validate_plan(cur, plan).find("fast_bft"), std::string::npos);
}

TEST(ReconfigPlan, RejectsUnsignedMigrationUnderByzantineFaults) {
  // With b > 0 the state read only trusts signed answers; a reshard that
  // could move unsigned (abd) state would seed bottom. Must be rejected
  // at validation.
  auto cfg = make_cfg({"abd"}, 2, 1, /*S=*/8);
  cfg.base.b_malicious = 1;
  store::shard_map cur(cfg);
  reconfig_plan plan{3, {"abd"}};
  EXPECT_NE(validate_plan(cur, plan).find("b > 0"), std::string::npos);
  // Same layout (nothing moves) stays allowed.
  EXPECT_EQ(validate_plan(cur, reconfig_plan{2, {"abd"}}), "");
}

TEST(ReconfigPlan, AllowsSameLayoutFastBft) {
  auto cfg = make_cfg({"fast_bft"}, 2, 1, /*S=*/8);
  cfg.base.b_malicious = 1;
  store::shard_map cur(cfg);
  reconfig_plan plan{2, {"fast_bft"}};
  EXPECT_EQ(validate_plan(cur, plan), "");
}

TEST(ReconfigPlan, BuildsNextEpochMap) {
  store::shard_map cur(make_cfg({"abd"}, 2));
  reconfig_plan plan{3, {"fast_swmr", "abd"}};
  ASSERT_EQ(validate_plan(cur, plan), "");
  const auto next = build_next_map(cur, plan);
  EXPECT_EQ(next->epoch(), 1u);
  EXPECT_EQ(next->num_shards(), 3u);
  EXPECT_EQ(next->config().base.S(), cur.config().base.S());
}

TEST(VersionedMapDeath, InstallMustAdvanceByOne) {
  versioned_map maps(std::make_shared<const store::shard_map>(
      make_cfg({"abd"})));
  auto skip = std::make_shared<const store::shard_map>(make_cfg({"abd"}),
                                                       /*epoch=*/2);
  EXPECT_DEATH(maps.install(skip), "precondition");
}

// -------------------------------------------------- sim migrations --

TEST(SimReconfig, ValuesSurviveProtocolSwitchAndShardCountChange) {
  store::sim_store s(make_cfg({"abd"}, 2));
  rng r(11);
  std::vector<std::string> keys;
  for (int i = 0; i < 8; ++i) keys.push_back("key" + std::to_string(i));
  for (const auto& k : keys) s.invoke_put(0, k, "v:" + k);
  run_until_idle(s, r);

  sim_control ctl(s);
  coordinator coord(ctl, keys);
  ASSERT_TRUE(
      coord.start(s.shards(), reconfig_plan{3, {"fast_swmr", "abd"}}))
      << coord.error();
  drive_reconfig(s, coord, r);
  EXPECT_EQ(s.proto().maps()->epoch(), 1u);
  EXPECT_GT(coord.stats().keys_moved, 0u);
  for (std::uint32_t i = 0; i < s.config().base.S(); ++i) {
    EXPECT_EQ(s.server_at(i).epoch(), 1u);
  }

  // Every migrated value must be readable under the new map, from both
  // readers, with no post-migration writes.
  for (std::size_t i = 0; i < keys.size(); ++i) {
    s.invoke_get(static_cast<std::uint32_t>(i % 2), keys[i]);
  }
  run_until_idle(s, r);
  const auto& hist = s.histories();
  EXPECT_TRUE(hist.all_complete());
  for (const auto& k : keys) {
    const auto reads = hist.all().at(k).completed_reads();
    ASSERT_EQ(reads.size(), 1u) << k;
    EXPECT_EQ(reads[0].val, "v:" + k) << k;
  }
  EXPECT_TRUE(hist.verify().ok);
}

TEST(SimReconfig, FastReadsAfterPromotionToFastSwmr) {
  // One shard, abd -> fast_swmr: the "promote the hot shard" move.
  store::sim_store s(make_cfg({"abd"}, 1));
  rng r(12);
  s.invoke_put(0, "hot", "h1");
  run_until_idle(s, r);
  s.invoke_get(0, "hot");
  run_until_idle(s, r);

  sim_control ctl(s);
  coordinator coord(ctl, {"hot"});
  ASSERT_TRUE(coord.start(s.shards(), reconfig_plan{1, {"fast_swmr"}}))
      << coord.error();
  drive_reconfig(s, coord, r);

  s.invoke_get(1, "hot");
  run_until_idle(s, r);
  s.invoke_put(0, "hot", "h2");
  run_until_idle(s, r);
  s.invoke_get(0, "hot");
  run_until_idle(s, r);

  const auto& h = s.histories().all().at("hot");
  const auto reads = h.completed_reads();
  ASSERT_EQ(reads.size(), 3u);
  EXPECT_EQ(reads[0].rounds, 2);  // abd
  EXPECT_EQ(reads[0].val, "h1");
  EXPECT_EQ(reads[1].rounds, 1);  // fast_swmr, migrated value
  EXPECT_EQ(reads[1].val, "h1");
  EXPECT_EQ(reads[2].rounds, 1);  // fast_swmr, post-migration write
  EXPECT_EQ(reads[2].val, "h2");
  EXPECT_TRUE(s.histories().verify().ok);
}

TEST(SimReconfig, OpsHoldDuringDrainAndComplete) {
  store::sim_store s(make_cfg({"abd"}, 1));
  rng r(13);
  s.invoke_put(0, "k", "v1");
  run_until_idle(s, r);

  sim_control ctl(s);
  coordinator coord(ctl, {"k"});
  ASSERT_TRUE(coord.start(s.shards(), reconfig_plan{1, {"fast_swmr"}}))
      << coord.error();
  // Clients invoke while the key drains. WITHOUT advancing the
  // coordinator, the ops must end up held -- re-issued under the new
  // epoch and buffered behind the servers' lazy seed fetch (no seed
  // exists anywhere yet, and the old generation's state is still set
  // aside, so the fetches go dormant) -- not completed and not lost.
  s.invoke_get(0, "k");
  s.invoke_put(0, "k", "v2");
  std::uint64_t guard = 0;
  while (!s.world().in_transit().empty()) {
    ASSERT_LT(++guard, 100'000u);
    s.run_random(r, 1);
  }
  EXPECT_TRUE(s.reader_client(0).op_in_progress());
  EXPECT_TRUE(s.writer_client(0).op_in_progress());
  EXPECT_EQ(s.histories().all().at("k").completed_reads().size(), 0u);

  // Finishing the migration seeds the servers, which replay what they
  // buffered; the floor install parks and re-issues the in-flight put.
  drive_reconfig(s, coord, r);
  run_until_idle(s, r);
  const auto& h = s.histories().all().at("k");
  EXPECT_TRUE(s.histories().all_complete());
  const auto reads = h.completed_reads();
  ASSERT_EQ(reads.size(), 1u);
  // The read and the write were concurrent: either order linearizes.
  EXPECT_TRUE(reads[0].val == "v1" || reads[0].val == "v2");
  EXPECT_TRUE(s.histories().verify().ok);
}

TEST(SimReconfig, DuplicateKeysInCoordinatorListHandOffOnce) {
  // A duplicated key must not re-run the handoff: object_moves stays
  // true for the whole reconfiguration, so a second visit would read the
  // STALE previous-generation snapshot, re-floor the writers below live
  // state and park an in-flight put into an acknowledged-but-unstored
  // completion.
  store::sim_store s(make_cfg({"abd"}, 1));
  rng r(55);
  s.invoke_put(0, "k", "v1");
  run_until_idle(s, r);

  sim_control ctl(s);
  coordinator coord(ctl, {"k", "k", "k"});
  ASSERT_TRUE(coord.start(s.shards(), reconfig_plan{1, {"fast_swmr"}}))
      << coord.error();
  drive_reconfig(s, coord, r);
  EXPECT_EQ(coord.stats().keys_considered, 3u);
  EXPECT_EQ(coord.stats().keys_moved, 1u);

  s.invoke_put(0, "k", "v2");
  run_until_idle(s, r);
  s.invoke_get(0, "k");
  run_until_idle(s, r);
  EXPECT_TRUE(s.histories().all_complete());
  const auto reads = s.histories().all().at("k").completed_reads();
  ASSERT_EQ(reads.size(), 1u);
  EXPECT_EQ(reads[0].val, "v2");
  EXPECT_TRUE(s.histories().verify().ok);
}

TEST(SimReconfig, InFlightPutAtNewEpochCannotOutrunWriterFloor) {
  // Regression (lost-update race): a put invoked at the NEW epoch while
  // its key drains, BEFORE the coordinator installs the writer floor,
  // runs on an un-floored automaton (abd ts=1). If its write_reqs stay
  // in transit until after the servers seed the migrated state, no
  // epoch_nack is ever produced and the acks echo the request's
  // timestamp -- the put must NOT complete off those acks with no server
  // storing the value. The floor install parks the put; the resume
  // re-issues it above the migrated timestamp.
  store::sim_store s(make_cfg({"fast_swmr"}, 1));
  rng r(77);
  s.invoke_put(0, "k", "v1");
  run_until_idle(s, r);

  sim_control ctl(s);
  coordinator coord(ctl, {"k"});
  ASSERT_TRUE(coord.start(s.shards(), reconfig_plan{1, {"abd"}}))
      << coord.error();
  // The writer learns the new epoch (the map is already published) and
  // invokes while the state read is still in flight: the put's requests
  // leave at the new epoch, from an automaton that never saw a floor.
  s.world().invoke_step(writer_id(0), [&](netout& net) {
    s.writer_client(0).refresh_map();
    s.writer_client(0).flush(net);
  });
  ASSERT_EQ(s.writer_client(0).epoch(), 1u);
  s.invoke_put(0, "k", "v2");

  // Adversarial schedule, phase by phase. First: deliver only the state
  // read, holding the put's write_reqs, until the coordinator installs
  // the floor (parking the put) and puts the seed_reqs in transit.
  const auto has_seed_req = [&] {
    return !s.world()
                .find_envelopes([](const sim::envelope& e) {
                  return e.msg.type == msg_type::seed_req;
                })
                .empty();
  };
  std::uint64_t guard = 0;
  while (!has_seed_req()) {
    ASSERT_LT(++guard, 100'000u);
    coord.step();
    s.world().deliver_matching([](const sim::envelope& e) {
      return e.msg.mig && e.msg.type != msg_type::seed_req;
    });
  }
  // The servers seed; their seed_acks stay in transit, so the
  // coordinator cannot resume anyone yet.
  s.world().deliver_matching([](const sim::envelope& e) {
    return e.msg.type == msg_type::seed_req;
  });
  // Now the held un-floored write_reqs land on the freshly seeded
  // servers (no nack anymore), and their acks -- echoing the request's
  // own timestamp -- come back to the writer. Without the floor-install
  // park, the put would complete HERE, before the resume, with no server
  // storing v2.
  s.world().deliver_matching(
      [](const sim::envelope& e) { return !e.msg.mig; });  // write_reqs
  s.world().deliver_matching(
      [](const sim::envelope& e) { return !e.msg.mig; });  // write_acks
  s.drain_completions();
  ASSERT_TRUE(s.writer_client(0).op_in_progress());
  EXPECT_EQ(s.writer_client(0).parked_count(), 1u);

  // Release everything; the resume re-issues the put above the migrated
  // timestamp, it completes and must be durable.
  drive_reconfig(s, coord, r);
  run_until_idle(s, r);
  s.invoke_get(0, "k");
  run_until_idle(s, r);
  EXPECT_TRUE(s.histories().all_complete());
  const auto reads = s.histories().all().at("k").completed_reads();
  ASSERT_EQ(reads.size(), 1u);
  EXPECT_EQ(reads[0].val, "v2");
  EXPECT_TRUE(s.histories().verify().ok);
}

TEST(SimReconfig, HistoriesSpanningEpochChangeLinearize) {
  // Concurrent gets/puts on overlapping keys while a reshard with a
  // protocol flip runs mid-workload, under the aggressive random
  // schedule. Every per-key history spans the epoch boundary and must
  // still pass the atomicity checker.
  const std::vector<std::string> keys = {"a", "b", "c", "d", "e"};
  for (std::uint64_t seed = 21; seed <= 32; ++seed) {
    store::sim_store s(make_cfg({"fast_swmr", "abd"}, 4, /*R=*/3));
    rng r(seed);
    sim_control ctl(s);
    coordinator coord(ctl, keys);
    bool started = false;
    std::uint32_t puts_left = 24;
    std::vector<std::uint32_t> gets_left(3, 16);
    std::uint64_t put_seq = 0;
    std::uint64_t guard = 0;
    for (;;) {
      ASSERT_LT(++guard, 1'000'000u);
      if (!started && puts_left <= 16) {
        // Mid-workload: flip the protocol assignment and change the
        // shard count, so most objects migrate.
        started = true;
        ASSERT_TRUE(coord.start(s.shards(),
                                reconfig_plan{5, {"abd", "fast_swmr"}}))
            << coord.error();
      }
      if (started && !coord.done()) coord.step();
      const bool can_put =
          puts_left > 0 && !s.writer_client(0).op_in_progress();
      bool can_get = false;
      for (std::uint32_t i = 0; i < 3; ++i) {
        can_get = can_get || (gets_left[i] > 0 &&
                              !s.reader_client(i).op_in_progress());
      }
      const bool can_deliver = !s.world().in_transit().empty();
      if (!can_put && !can_get && !can_deliver &&
          (!started || coord.done())) {
        break;
      }
      const auto dice = r.below(8);
      if (dice == 0 && can_put) {
        --puts_left;
        s.invoke_put(0, keys[r.below(keys.size())],
                     "v" + std::to_string(++put_seq));
        continue;
      }
      if (dice == 1 && can_get) {
        const auto i = static_cast<std::uint32_t>(r.below(3));
        if (gets_left[i] > 0 && !s.reader_client(i).op_in_progress()) {
          --gets_left[i];
          s.invoke_get(i, keys[r.below(keys.size())]);
        }
        continue;
      }
      if (can_deliver) s.run_random(r, 1);
    }
    ASSERT_TRUE(started);
    EXPECT_TRUE(coord.done());
    EXPECT_TRUE(s.histories().all_complete()) << "seed " << seed;
    const auto res = s.histories().verify();
    EXPECT_TRUE(res.ok) << "seed " << seed << ": " << res.error;
  }
}

TEST(SimReconfig, SequentialReshardsCompose) {
  // Two reconfigurations back to back (epoch 0 -> 1 -> 2), with traffic
  // between and after: the second install must cleanly retire the first
  // one's previous generation and re-fence the moved keys.
  store::sim_store s(make_cfg({"abd"}, 2));
  rng r(41);
  const std::vector<std::string> keys = {"m", "n", "o"};
  std::uint64_t seq = 0;
  for (const auto& k : keys) s.invoke_put(0, k, k + std::to_string(++seq));
  run_until_idle(s, r);

  sim_control ctl(s);
  {
    coordinator coord(ctl, keys);
    ASSERT_TRUE(coord.start(s.shards(), reconfig_plan{3, {"fast_swmr"}}))
        << coord.error();
    drive_reconfig(s, coord, r);
  }
  for (const auto& k : keys) s.invoke_put(0, k, k + std::to_string(++seq));
  run_until_idle(s, r);
  {
    coordinator coord(ctl, keys);
    ASSERT_TRUE(coord.start(s.shards(), reconfig_plan{2, {"abd"}}))
        << coord.error();
    drive_reconfig(s, coord, r);
  }
  EXPECT_EQ(s.proto().maps()->epoch(), 2u);
  for (const auto& k : keys) s.invoke_get(1, k);
  run_until_idle(s, r);
  EXPECT_TRUE(s.histories().all_complete());
  EXPECT_TRUE(s.histories().verify().ok);
  for (const auto& k : keys) {
    const auto reads = s.histories().all().at(k).completed_reads();
    ASSERT_EQ(reads.size(), 1u);
    EXPECT_EQ(reads[0].rounds, 2);  // back on abd
    EXPECT_EQ(reads[0].val.substr(0, 1), k);  // second-round write value
  }
}

TEST(SimReconfig, SameLayoutEpochBumpIsInvisibleToOps) {
  auto cfg = make_cfg({"fast_bft"}, 2, /*R=*/1, /*S=*/8);
  cfg.base.b_malicious = 1;
  cfg.base.sigs = crypto::make_signature_scheme("oracle", /*seed=*/99);
  store::sim_store s(cfg);
  rng r(31);
  s.invoke_put(0, "x", "x1");
  s.invoke_put(0, "y", "y1");
  run_until_idle(s, r);

  sim_control ctl(s);
  coordinator coord(ctl, {"x", "y"});
  ASSERT_TRUE(coord.start(s.shards(), reconfig_plan{2, {"fast_bft"}}))
      << coord.error();
  drive_reconfig(s, coord, r);
  EXPECT_EQ(coord.stats().keys_moved, 0u);  // nothing moves: carried over
  EXPECT_EQ(s.proto().maps()->epoch(), 1u);

  // Ops keep flowing across the bump; the carried fast_bft instances
  // (including their signed state) answer without re-migration.
  s.invoke_get(0, "x");
  run_until_idle(s, r);
  s.invoke_put(0, "x", "x2");
  run_until_idle(s, r);
  s.invoke_get(0, "x");
  run_until_idle(s, r);
  const auto reads = s.histories().all().at("x").completed_reads();
  ASSERT_EQ(reads.size(), 2u);
  EXPECT_EQ(reads[0].val, "x1");
  EXPECT_EQ(reads[1].val, "x2");
  EXPECT_TRUE(s.histories().verify().ok);
}

// ----------------------------------- every migration pair linearizes --

using migration_pair = std::pair<std::string, std::string>;

class ReconfigEveryPair : public ::testing::TestWithParam<migration_pair> {};

TEST_P(ReconfigEveryPair, PutMigrateGetPutGet) {
  const auto& [from, to] = GetParam();
  store::sim_store s(make_cfg({from}, 2));
  rng r(fnv1a64(from + to));
  const std::vector<std::string> keys = {"p", "q", "r"};
  std::uint64_t seq = 0;
  for (const auto& k : keys) {
    s.invoke_put(0, k, k + std::to_string(++seq));
  }
  run_until_idle(s, r);

  sim_control ctl(s);
  coordinator coord(ctl, keys);
  ASSERT_TRUE(coord.start(s.shards(), reconfig_plan{2, {to}}))
      << coord.error();
  drive_reconfig(s, coord, r);
  EXPECT_EQ(coord.stats().keys_moved, from == to ? 0u : keys.size());

  for (const auto& k : keys) {
    s.invoke_get(0, k);
  }
  run_until_idle(s, r);
  for (const auto& k : keys) {
    s.invoke_put(0, k, k + std::to_string(++seq));
  }
  run_until_idle(s, r);
  for (const auto& k : keys) {
    s.invoke_get(1, k);
  }
  run_until_idle(s, r);
  EXPECT_TRUE(s.histories().all_complete());
  const auto res = s.histories().verify();
  EXPECT_TRUE(res.ok) << from << "->" << to << ": " << res.error;
  // Second round of reads sees the post-migration writes.
  for (const auto& k : keys) {
    const auto reads = s.histories().all().at(k).completed_reads();
    ASSERT_EQ(reads.size(), 2u);
    EXPECT_EQ(reads[1].val.substr(0, 1), k);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AtomicProtocols, ReconfigEveryPair,
    ::testing::Values(migration_pair{"abd", "fast_swmr"},
                      migration_pair{"fast_swmr", "abd"},
                      migration_pair{"abd", "maxmin"},
                      migration_pair{"maxmin", "fast_swmr"},
                      migration_pair{"fast_swmr", "mwmr"},
                      migration_pair{"mwmr", "abd"},
                      migration_pair{"abd", "abd"}),
    [](const auto& info) {
      return info.param.first + "_to_" + info.param.second;
    });

// ---------------------------------------- crash-tolerant reconfiguration --

TEST(SimReconfig, CrashedServerMidReshardStillCompletes) {
  // Regression for the full-fleet seed deadlock: one server dies
  // mid-reshard and the migration (plus every op held behind a drain)
  // must still complete -- every wait in the pipeline is a quorum wait.
  store::sim_store s(make_cfg({"abd"}, 1, /*R=*/2, /*S=*/7));
  rng r(91);
  const std::vector<std::string> keys = {"k0", "k1", "k2", "k3"};
  std::uint64_t seq = 0;
  for (const auto& k : keys) s.invoke_put(0, k, k + std::to_string(++seq));
  run_until_idle(s, r);

  sim_control ctl(s);
  coordinator coord(ctl, keys);
  ASSERT_TRUE(coord.start(s.shards(), reconfig_plan{1, {"fast_swmr"}}))
      << coord.error();
  // Kill a server mid-migration, with handoff traffic in flight; invoke
  // ops on draining keys so completions depend on the drain lifting.
  s.invoke_get(0, "k1");
  s.invoke_put(0, "k2", "mid");
  std::uint64_t steps = 0;
  while (!coord.done() && steps < 40) {
    coord.step();
    steps += s.run_random(r, 1);
  }
  ASSERT_FALSE(coord.done());  // still migrating when the crash hits
  s.world().crash(server_id(6));
  s.invoke_get(1, "k3");
  drive_reconfig(s, coord, r);
  EXPECT_TRUE(coord.done());
  EXPECT_EQ(coord.stats().keys_moved, keys.size());
  run_until_idle(s, r);
  EXPECT_EQ(s.reader_client(0).parked_count(), 0u);
  EXPECT_EQ(s.writer_client(0).parked_count(), 0u);

  // The store still serves every key with the crash outstanding (S = 7,
  // t = 1: quorums of the 6 live servers suffice).
  for (const auto& k : keys) s.invoke_get(0, k);
  run_until_idle(s, r);
  EXPECT_TRUE(s.histories().all_complete());
  const auto res = s.histories().verify();
  EXPECT_TRUE(res.ok) << res.error;
}

TEST(SimReconfig, ServerCrashedForEntireMigration) {
  // The crash predates start(): the install skips the dead server, the
  // handoffs run on quorums of the survivors, and done() still turns
  // true with zero parked ops.
  store::sim_store s(make_cfg({"abd"}, 2, /*R=*/2, /*S=*/7));
  rng r(92);
  const std::vector<std::string> keys = {"a", "b", "c"};
  std::uint64_t seq = 0;
  for (const auto& k : keys) s.invoke_put(0, k, k + std::to_string(++seq));
  run_until_idle(s, r);

  s.world().crash(server_id(3));
  sim_control ctl(s);
  coordinator coord(ctl, keys);
  ASSERT_TRUE(coord.start(s.shards(), reconfig_plan{3, {"fast_swmr"}}))
      << coord.error();
  s.invoke_put(0, "a", "during");
  drive_reconfig(s, coord, r);
  EXPECT_TRUE(coord.done());
  run_until_idle(s, r);
  for (const auto& k : keys) s.invoke_get(1, k);
  run_until_idle(s, r);
  EXPECT_TRUE(s.histories().all_complete());
  const auto reads = s.histories().all().at("a").completed_reads();
  ASSERT_EQ(reads.size(), 1u);
  EXPECT_EQ(reads[0].val, "during");
  EXPECT_TRUE(s.histories().verify().ok);
}

TEST(SimReconfig, TooManyCrashedServersRefusedUpFront) {
  store::sim_store s(make_cfg({"abd"}, 1, /*R=*/2, /*S=*/5));
  rng r(93);
  s.invoke_put(0, "k", "v");
  run_until_idle(s, r);
  s.world().crash(server_id(0));
  s.world().crash(server_id(1));  // 3 of 5 reachable < quorum 4
  sim_control ctl(s);
  coordinator coord(ctl, {"k"});
  EXPECT_FALSE(coord.start(s.shards(), reconfig_plan{1, {"fast_swmr"}}));
  EXPECT_NE(coord.error().find("quorum"), std::string::npos);
  // Nothing was installed or published: the fleet stays at the old epoch
  // (2 of 5 crashed exceeds t = 1, so the data plane is degraded anyway,
  // but the refusal means no key was fenced on the survivors).
  EXPECT_EQ(s.proto().maps()->epoch(), 0u);
  for (std::uint32_t i = 2; i < 5; ++i) {
    EXPECT_EQ(s.server_at(i).epoch(), 0u) << i;
  }
}

TEST(SimReconfig, UnlistedKeyDiscoveredAndMigrated) {
  // Regression for the permanently-fenced-key bug: a reshard that omits
  // hosted keys from the coordinator's list must still migrate them --
  // discovery unions the servers' object indexes.
  store::sim_store s(make_cfg({"abd"}, 1, /*R=*/2, /*S=*/7));
  rng r(94);
  const std::vector<std::string> keys = {"k0", "k1", "k2", "k3"};
  std::uint64_t seq = 0;
  for (const auto& k : keys) s.invoke_put(0, k, k + std::to_string(++seq));
  run_until_idle(s, r);

  sim_control ctl(s);
  coordinator coord(ctl, {"k0", "k1"});  // k2, k3 omitted
  ASSERT_TRUE(coord.start(s.shards(), reconfig_plan{1, {"fast_swmr"}}))
      << coord.error();
  drive_reconfig(s, coord, r);
  EXPECT_EQ(coord.stats().keys_discovered, keys.size());
  EXPECT_EQ(coord.stats().keys_moved, keys.size());

  // The omitted keys serve reads under the new protocol (one round).
  s.invoke_get(0, "k2");
  run_until_idle(s, r);
  s.invoke_get(1, "k3");
  run_until_idle(s, r);
  EXPECT_TRUE(s.histories().all_complete());
  for (const auto* k : {"k2", "k3"}) {
    const auto reads = s.histories().all().at(k).completed_reads();
    ASSERT_EQ(reads.size(), 1u) << k;
    EXPECT_EQ(reads[0].rounds, 1) << k;
    EXPECT_EQ(reads[0].val.substr(0, 2), k) << k;
  }
  EXPECT_TRUE(s.histories().verify().ok);
}

TEST(SimReconfig, DiscoveryAloneMigratesEverything) {
  // No keys at all: the coordinator migrates purely from the indexes.
  store::sim_store s(make_cfg({"abd"}, 2, /*R=*/2, /*S=*/7));
  rng r(95);
  const std::vector<std::string> keys = {"x", "y", "z"};
  std::uint64_t seq = 0;
  for (const auto& k : keys) s.invoke_put(0, k, k + std::to_string(++seq));
  run_until_idle(s, r);

  sim_control ctl(s);
  coordinator coord(ctl);
  ASSERT_TRUE(coord.start(s.shards(), reconfig_plan{2, {"fast_swmr"}}))
      << coord.error();
  drive_reconfig(s, coord, r);
  EXPECT_EQ(coord.stats().keys_discovered, keys.size());
  EXPECT_EQ(coord.stats().keys_moved, keys.size());
  for (const auto& k : keys) s.invoke_get(0, k);
  run_until_idle(s, r);
  EXPECT_TRUE(s.histories().all_complete());
  EXPECT_TRUE(s.histories().verify().ok);
}

TEST(SimReconfig, LazySeedFetchHealsServerThatMissedTheSeed) {
  // Partition-style loss: every seed_req to server 0 is dropped, so it
  // misses the quorum seed entirely. Its first post-drain access must
  // pull the snapshot from a generation peer before answering.
  store::sim_store s(make_cfg({"abd"}, 1, /*R=*/2, /*S=*/7));
  rng r(96);
  s.invoke_put(0, "k", "v1");
  run_until_idle(s, r);

  sim_control ctl(s);
  coordinator coord(ctl, {"k"});
  ASSERT_TRUE(coord.start(s.shards(), reconfig_plan{1, {"fast_swmr"}}))
      << coord.error();
  std::uint64_t guard = 0;
  while (!coord.done()) {
    ASSERT_LT(++guard, 1'000'000u);
    coord.step();
    s.world().drop_matching([](const sim::envelope& e) {
      return e.msg.type == msg_type::seed_req && e.to == server_id(0);
    });
    if (!s.world().in_transit().empty()) s.run_random(r, 1);
  }
  EXPECT_EQ(s.server_at(0).seeded_count(), 0u);  // missed the seed wave
  for (std::uint32_t i = 1; i < 7; ++i) {
    EXPECT_EQ(s.server_at(i).seeded_count(), 1u) << i;
  }

  // A fast_swmr read waits for S - t = 6 of 7 answers, so server 0 is on
  // the critical path of every read once any other server lags; the read
  // completing proves the lazy fetch answered.
  s.invoke_get(0, "k");
  run_until_idle(s, r);
  EXPECT_EQ(s.server_at(0).seeded_count(), 1u);  // healed via fetch
  const auto reads = s.histories().all().at("k").completed_reads();
  ASSERT_EQ(reads.size(), 1u);
  EXPECT_EQ(reads[0].val, "v1");
  EXPECT_TRUE(s.histories().verify().ok);
}

TEST(SimReconfig, BrandNewKeyUsableUnderDrainedMap) {
  // A key nobody ever wrote, first touched after a reshard: no server
  // hosts state for it, so the lazy fetch establishes "never written"
  // from a safe majority of peers and self-seeds bottom.
  store::sim_store s(make_cfg({"abd"}, 1, /*R=*/2, /*S=*/7));
  rng r(97);
  s.invoke_put(0, "old", "o1");
  run_until_idle(s, r);

  sim_control ctl(s);
  coordinator coord(ctl);
  ASSERT_TRUE(coord.start(s.shards(), reconfig_plan{1, {"fast_swmr"}}))
      << coord.error();
  drive_reconfig(s, coord, r);

  s.invoke_put(0, "brand-new", "n1");
  run_until_idle(s, r);
  s.invoke_get(0, "brand-new");
  run_until_idle(s, r);
  EXPECT_TRUE(s.histories().all_complete());
  const auto reads = s.histories().all().at("brand-new").completed_reads();
  ASSERT_EQ(reads.size(), 1u);
  EXPECT_EQ(reads[0].val, "n1");
  EXPECT_TRUE(s.histories().verify().ok);
}

TEST(SimReconfig, MissedSeedStateReHandedOffByNextReshard) {
  // Server 0 misses the seed of "k" in epoch 1. Epoch 2 keeps the
  // protocol for "k" unchanged, so nothing would ordinarily move -- but
  // the pre-flight collects server 0's unseeded report and force-moves
  // "k": it is re-fenced, re-read from a quorum and re-seeded, instead
  // of server 0 silently serving regressed (bottom) state.
  store::sim_store s(make_cfg({"abd"}, 1, /*R=*/2, /*S=*/7));
  rng r(98);
  s.invoke_put(0, "k", "v1");
  run_until_idle(s, r);

  sim_control ctl(s);
  {
    coordinator coord(ctl, {"k"});
    ASSERT_TRUE(coord.start(s.shards(), reconfig_plan{1, {"fast_swmr"}}))
        << coord.error();
    std::uint64_t guard = 0;
    while (!coord.done()) {
      ASSERT_LT(++guard, 1'000'000u);
      coord.step();
      s.world().drop_matching([](const sim::envelope& e) {
        return e.msg.type == msg_type::seed_req && e.to == server_id(0);
      });
      if (!s.world().in_transit().empty()) s.run_random(r, 1);
    }
  }
  ASSERT_EQ(s.server_at(0).seeded_count(), 0u);

  // Epoch 2: same protocol for every object (fast_swmr -> fast_swmr with
  // a different shard count moves nothing by protocol comparison).
  {
    coordinator coord(ctl);
    ASSERT_TRUE(coord.start(s.shards(), reconfig_plan{2, {"fast_swmr"}}))
        << coord.error();
    drive_reconfig(s, coord, r);
    EXPECT_EQ(coord.stats().keys_moved, 1u);  // the force-moved "k"
  }
  EXPECT_EQ(s.server_at(0).seeded_count(), 1u);  // finally seeded
  s.invoke_get(0, "k");
  run_until_idle(s, r);
  const auto reads = s.histories().all().at("k").completed_reads();
  ASSERT_EQ(reads.size(), 1u);
  EXPECT_EQ(reads[0].val, "v1");
  EXPECT_EQ(reads[0].rounds, 1);
  EXPECT_TRUE(s.histories().verify().ok);
}

TEST(SimReconfig, SeedDelayedPastItsMigrationIsDropped) {
  // With quorum completion a seed_req can outlive the migration it
  // belongs to. One held in transit across the NEXT install must not
  // land as that generation's seed (it would record stale state and ack
  // itself into the new seed quorum); servers drop seeds not stamped
  // with their current generation.
  store::sim_store s(make_cfg({"abd"}, 1, /*R=*/2, /*S=*/7));
  rng r(99);
  s.invoke_put(0, "k", "v1");
  run_until_idle(s, r);

  sim_control ctl(s);
  const auto held = [](const sim::envelope& e) {
    return e.msg.type == msg_type::seed_req && e.to == server_id(0);
  };
  {
    coordinator coord(ctl, {"k"});
    ASSERT_TRUE(coord.start(s.shards(), reconfig_plan{1, {"fast_swmr"}}))
        << coord.error();
    std::uint64_t guard = 0;
    while (!coord.done()) {
      ASSERT_LT(++guard, 1'000'000u);
      coord.step();
      s.world().deliver_matching(
          [&](const sim::envelope& e) { return !held(e); });
    }
  }
  // The epoch-1 seed_req to server 0 is still in flight.
  ASSERT_EQ(s.world().find_envelopes(held).size(), 1u);
  ASSERT_EQ(s.server_at(0).seeded_count(), 0u);

  coordinator coord(ctl);
  ASSERT_TRUE(coord.start(s.shards(), reconfig_plan{2, {"fast_swmr"}}))
      << coord.error();  // epoch 2; "k" force-moved (server 0 missed it)
  // The stale epoch-1 seed finally lands -- after the epoch-2 install.
  ASSERT_EQ(s.world().deliver_matching(held), 1u);
  EXPECT_EQ(s.server_at(0).seeded_count(), 0u);  // dropped, not adopted

  drive_reconfig(s, coord, r);
  EXPECT_EQ(coord.stats().keys_moved, 1u);
  EXPECT_EQ(s.server_at(0).seeded_count(), 1u);  // the REAL epoch-2 seed
  s.invoke_get(0, "k");
  run_until_idle(s, r);
  const auto reads = s.histories().all().at("k").completed_reads();
  ASSERT_EQ(reads.size(), 1u);
  EXPECT_EQ(reads[0].val, "v1");
  EXPECT_TRUE(s.histories().verify().ok);
}

// ------------------------------------------------------------- TCP --

TEST(TcpReconfig, LiveReshardUnderConcurrentTraffic) {
  store::tcp_store ts(make_cfg({"abd"}, 2, /*R=*/2, /*S=*/5));
  ts.start();
  const std::vector<std::string> keys = {"k0", "k1", "k2", "k3"};
  for (const auto& k : keys) {
    ASSERT_TRUE(ts.put(0, k, k + ":0"));
  }

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (int n = 1; n <= 200 && (!stop.load() || n <= 4); ++n) {
      ASSERT_TRUE(ts.put(0, keys[static_cast<std::size_t>(n) % keys.size()],
                         "w" + std::to_string(n)));
    }
  });
  std::vector<std::thread> readers;
  for (std::uint32_t i = 0; i < 2; ++i) {
    readers.emplace_back([&, i] {
      for (int n = 0; n <= 200 && (!stop.load() || n < 2); ++n) {
        const auto res = ts.multi_get(i, {keys[0], keys[2]});
        ASSERT_TRUE(res.has_value());
      }
    });
  }

  tcp_control ctl(ts);
  coordinator coord(ctl, keys);
  ASSERT_TRUE(coord.start(ts.proto().shards(),
                          reconfig_plan{3, {"fast_swmr", "abd"}}))
      << coord.error();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!coord.done()) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    coord.step();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true);
  writer.join();
  for (auto& th : readers) th.join();

  // Post-reshard, the store still serves every key.
  for (const auto& k : keys) {
    const auto res = ts.get(1, k);
    ASSERT_TRUE(res.has_value()) << k;
    EXPECT_FALSE(res->val.empty()) << k;
  }
  const auto hist = ts.gather();
  const auto res = hist.verify();
  EXPECT_TRUE(res.ok) << res.error;
  ts.stop();
}

TEST(TcpReconfig, ReshardCompletesWithServerCrashedThroughout) {
  // The acceptance scenario on real sockets: one server is down for the
  // ENTIRE migration (stopped before start()), concurrent client traffic
  // keeps flowing, and the reshard -- driven purely by discovery, no key
  // list -- still completes with every op accounted for.
  store::tcp_store ts(make_cfg({"abd"}, 2, /*R=*/2, /*S=*/5));
  ts.start();
  const std::vector<std::string> keys = {"k0", "k1", "k2", "k3"};
  for (const auto& k : keys) {
    ASSERT_TRUE(ts.put(0, k, k + ":0"));
  }
  ts.cluster().server(4).stop();  // crashed for the whole reshard

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (int n = 1; n <= 200 && (!stop.load() || n <= 4); ++n) {
      ASSERT_TRUE(ts.put(0, keys[static_cast<std::size_t>(n) % keys.size()],
                         "w" + std::to_string(n)));
    }
  });
  std::vector<std::thread> readers;
  for (std::uint32_t i = 0; i < 2; ++i) {
    readers.emplace_back([&, i] {
      for (int n = 0; n <= 200 && (!stop.load() || n < 2); ++n) {
        const auto res = ts.multi_get(i, {keys[1], keys[3]});
        ASSERT_TRUE(res.has_value());
      }
    });
  }

  tcp_control ctl(ts);
  coordinator coord(ctl);  // discovery supplies the key set
  ASSERT_TRUE(coord.start(ts.proto().shards(),
                          reconfig_plan{3, {"fast_swmr", "abd"}}))
      << coord.error();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!coord.done()) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    coord.step();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(coord.stats().keys_discovered, keys.size());
  stop.store(true);
  writer.join();
  for (auto& th : readers) th.join();

  // Post-reshard, quorums of the 4 live servers serve every key.
  for (const auto& k : keys) {
    const auto res = ts.get(1, k);
    ASSERT_TRUE(res.has_value()) << k;
    EXPECT_FALSE(res->val.empty()) << k;
  }
  const auto res = ts.gather().verify();
  EXPECT_TRUE(res.ok) << res.error;
  ts.stop();
}

}  // namespace
}  // namespace fastreg::reconfig
