// Deterministic simulator deployment of the store: installs store client
// and server automata into a sim::world, drives invocations through
// world::invoke_step, and demultiplexes every completed get/put into
// per-key histories.
//
// Scheduling is delegated to the world (random or timed), one step at a
// time so completions are harvested as they happen; the usual drivers
// (adversary surgery, crash injection) keep working on the underlying
// world.
#pragma once

#include <span>
#include <string>
#include <unordered_map>
#include <utility>

#include "sim/world.h"
#include "store/histories.h"
#include "store/store.h"

namespace fastreg::store {

class sim_store {
 public:
  explicit sim_store(store_config cfg);

  [[nodiscard]] sim::world& world() { return world_; }
  /// Deployment-time (epoch 0) configuration; base is fixed for life.
  [[nodiscard]] const store_config& config() const {
    return proto_.config();
  }
  /// The latest installed shard map.
  [[nodiscard]] std::shared_ptr<const shard_map> shards() const {
    return proto_.shards();
  }
  [[nodiscard]] store_protocol& proto() { return proto_; }

  [[nodiscard]] client& reader_client(std::uint32_t i);
  [[nodiscard]] client& writer_client(std::uint32_t i);
  [[nodiscard]] server& server_at(std::uint32_t i);

  /// Restarts server i (typically after world().crash): builds a fresh
  /// server automaton under the CURRENT shard map -- replaying its
  /// persistent log + snapshot when config().persist is enabled, empty
  /// otherwise -- and swaps it in un-crashed. Returns the new server.
  server& restart_server(std::uint32_t i);

  // ----------------------------------------------------------- invocations --
  void invoke_get(std::uint32_t reader_index, const std::string& key);
  void invoke_put(std::uint32_t writer_index, const std::string& key,
                  value_t v);
  /// Pipelined invocations: every op in `ops` starts in ONE step, so the
  /// requests leave as batched envelopes (one per server). Keys must be
  /// distinct and op-free. This is the submission primitive the unified
  /// async front-end (store/async_client.h) issues through; invoke_get/
  /// invoke_put are one-op shims over it.
  void invoke_ops(const process_id& p, std::span<const store_op> ops);

  // ------------------------------------------------------------- schedules --
  /// Single-step wrappers around the world's schedules that harvest store
  /// completions after every step. Return the number of steps executed.
  std::uint64_t run_random(rng& r, std::uint64_t max_steps = 1'000'000);
  std::uint64_t run_timed(rng& r, sim::delay_model& delays,
                          std::uint64_t max_steps = 1'000'000);

  /// True when no client has an op in flight and no message is in transit.
  [[nodiscard]] bool idle();

  /// Completes history records for everything the clients finished.
  void drain_completions();

  // Per-client completion taps, for the async front-end's sessions:
  // while `p` is tapped, every completion drained for it is ALSO copied
  // into a per-client stash fetched (and cleared) with take_tapped.
  void tap_client(const process_id& p);
  void untap_client(const process_id& p);
  [[nodiscard]] std::vector<store_result> take_tapped(const process_id& p);

  /// Scrapes server `server_index`'s metrics over the simulated data
  /// path (stats_req/stats_ack through reader 0), driving the world
  /// until the ack lands. Returns the `name{labels} value` text dump;
  /// empty if the ack never arrived within `max_steps`.
  [[nodiscard]] std::string scrape(std::uint32_t server_index, rng& r,
                                   std::uint64_t max_steps = 10'000);

  [[nodiscard]] const store_histories& histories() const { return hist_; }

 private:
  client& client_at(const process_id& p);
  void record_invoke(const process_id& p, const std::string& key,
                     bool is_put, const value_t& v);

  store_protocol proto_;
  sim::world world_;
  store_histories hist_;
  /// Open op index per (client, key), for completing history records.
  std::unordered_map<process_id,
                     std::unordered_map<std::string, std::size_t>>
      open_;
  /// Completion stashes of tapped clients (see tap_client).
  std::unordered_map<process_id, std::vector<store_result>> taps_;
};

}  // namespace fastreg::store
