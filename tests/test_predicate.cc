// White-box tests of the fast-read predicate (Figure 2 line 19 and
// Figure 5 line 19), including the witness cases used inside the paper's
// proofs (Lemma 2 uses a = 1, Lemma 3 uses a = 2, Lemma 4 case <4>2 uses
// a = R+1).
#include <gtest/gtest.h>

#include <vector>

#include "common/seen_set.h"
#include "registers/predicate.h"

namespace fastreg {
namespace {

seen_set mk(std::initializer_list<process_id> ids) {
  seen_set s;
  for (const auto& p : ids) s.insert(p);
  return s;
}

/// S - t messages whose seen sets all contain the reader: Lemma 2's case
/// (every server echoed the reader's own write-back), a = 1 must fire.
TEST(Predicate, Lemma2CaseAEquals1) {
  const std::uint32_t S = 8, t = 1, R = 4;
  std::vector<seen_set> seen(S - t, mk({reader_id(0)}));
  EXPECT_TRUE(fast_read_predicate(std::span<const seen_set>(seen), S, t, 0, R));
  EXPECT_GE(fast_read_predicate_witness(std::span<const seen_set>(seen), S, t,
                                        0, R),
            1u);
}

/// Lemma 3: after a complete write, S - 2t messages carry {w, r_j}: the
/// predicate must hold with a = 2.
TEST(Predicate, Lemma3CaseAEquals2) {
  const std::uint32_t S = 8, t = 2, R = 1;  // S - 2t = 4 messages
  std::vector<seen_set> seen(S - 2 * t, mk({writer_id(0), reader_id(0)}));
  EXPECT_TRUE(fast_read_predicate(std::span<const seen_set>(seen), S, t, 0, R));
}

/// Fewer than S - 2t messages with a 2-element intersection, and no
/// 1-element intersection of size S - t: predicate must fail.
TEST(Predicate, FailsBelowThreshold) {
  const std::uint32_t S = 8, t = 2, R = 1;
  // Only 3 < S - 2t = 4 messages, each seen by {w, r1}.
  std::vector<seen_set> seen(3, mk({writer_id(0), reader_id(0)}));
  EXPECT_FALSE(
      fast_read_predicate(std::span<const seen_set>(seen), S, t, 0, R));
}

/// The a = R+1 case: all R+1 clients in every seen set, S - (R+1)t
/// messages suffice.
TEST(Predicate, MaxWitnessAEqualsRPlus1) {
  const std::uint32_t S = 10, t = 2, R = 2;  // S - (R+1)t = 4
  seen_set all = mk({writer_id(0), reader_id(0), reader_id(1)});
  std::vector<seen_set> seen(4, all);
  EXPECT_TRUE(fast_read_predicate(std::span<const seen_set>(seen), S, t, 0, R));
  EXPECT_EQ(fast_read_predicate_witness(std::span<const seen_set>(seen), S, t,
                                        0, R),
            R + 1);
}

/// Mixed seen sets: the witness subset must be *common* to >= S - at
/// messages; disjoint pairs do not combine.
TEST(Predicate, IntersectionMustBeCommon) {
  const std::uint32_t S = 6, t = 1, R = 2;
  // 5 = S - t messages but their seen sets share no single client:
  std::vector<seen_set> seen = {
      mk({writer_id(0)}),  mk({reader_id(0)}), mk({reader_id(1)}),
      mk({reader_id(0)}),  mk({writer_id(0)}),
  };
  // a=1 needs 5 messages sharing one client: max count is 2. a=2 needs
  // S-2t=4 sharing two clients: impossible. a=3 needs 3 sharing three.
  EXPECT_FALSE(
      fast_read_predicate(std::span<const seen_set>(seen), S, t, 0, R));
}

/// A qualifying subset hidden inside a larger message set is found.
TEST(Predicate, FindsSubsetNotWholeSet) {
  const std::uint32_t S = 6, t = 1, R = 2;
  // 4 = S - 2t messages share {w, r1}; the fifth is unrelated.
  std::vector<seen_set> seen = {
      mk({writer_id(0), reader_id(0)}), mk({writer_id(0), reader_id(0)}),
      mk({writer_id(0), reader_id(0)}), mk({writer_id(0), reader_id(0)}),
      mk({reader_id(1)}),
  };
  EXPECT_TRUE(fast_read_predicate(std::span<const seen_set>(seen), S, t, 0, R));
}

/// Byzantine threshold: |MS| >= S - a*t - (a-1)*b. With b > 0 the same
/// evidence passes at a weaker message count.
TEST(Predicate, ByzantineThresholdLoosensWithA) {
  const std::uint32_t S = 14, t = 2, b = 2, R = 1;
  // a=2 needs S - 2t - b = 8 messages with a 2-element intersection.
  std::vector<seen_set> seen(8, mk({writer_id(0), reader_id(0)}));
  EXPECT_TRUE(fast_read_predicate(std::span<const seen_set>(seen), S, t, b, R));
  // 7 messages are not enough for a=2, and a=1 needs S - t = 12.
  seen.pop_back();
  EXPECT_FALSE(
      fast_read_predicate(std::span<const seen_set>(seen), S, t, b, R));
}

/// Outside the feasible region thresholds can drop to or below zero; the
/// pseudocode then accepts trivially (empty MS). The protocol only runs
/// there when the adversary is demonstrating the lower bound.
TEST(Predicate, DegenerateThresholdIsTrue) {
  const std::uint32_t S = 4, t = 2, R = 3;  // S - at <= 0 for a >= 2
  std::vector<seen_set> seen(1, mk({writer_id(0)}));
  EXPECT_TRUE(fast_read_predicate(std::span<const seen_set>(seen), S, t, 0, R));
}

TEST(Predicate, EmptyMessageSetFailsWhenThresholdPositive) {
  const std::uint32_t S = 8, t = 1, R = 2;
  std::vector<seen_set> seen;
  EXPECT_FALSE(
      fast_read_predicate(std::span<const seen_set>(seen), S, t, 0, R));
}

TEST(Predicate, WitnessZeroWhenFails) {
  const std::uint32_t S = 8, t = 1, R = 2;
  std::vector<seen_set> seen(2, mk({writer_id(0)}));
  EXPECT_EQ(fast_read_predicate_witness(std::span<const seen_set>(seen), S, t,
                                        0, R),
            0u);
}

/// Message-count masks exceed one machine word (S > 64).
TEST(Predicate, WorksBeyond64Messages) {
  const std::uint32_t S = 100, t = 10, R = 2;
  std::vector<seen_set> seen(90, mk({reader_id(0)}));  // S - t = 90
  EXPECT_TRUE(fast_read_predicate(std::span<const seen_set>(seen), S, t, 0, R));
}

/// Overload taking messages extracts seen sets correctly.
TEST(Predicate, MessageOverload) {
  const std::uint32_t S = 4, t = 1, R = 1;
  message m;
  m.seen = mk({reader_id(0)});
  std::vector<message> msgs(S - t, m);
  EXPECT_TRUE(fast_read_predicate(std::span<const message>(msgs), S, t, 0, R));
}

}  // namespace
}  // namespace fastreg
