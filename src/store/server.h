// The store's server automaton: one process hosting per-object server
// automata, created lazily on first traffic for an object. Replies
// triggered by one delivered batch coalesce into batched envelopes (one
// per destination), so a client that pipelined k ops gets its k acks back
// in a single transport unit.
//
// Reconfiguration (src/reconfig): install_map moves the server to the
// next epoch. Objects whose protocol changed ("moved") have their old
// instances set aside as the previous generation; until the migration
// coordinator seeds an object's new instance, client data messages for it
// are answered with epoch_nack (stale-epoch requests are nacked even
// after the drain, so clients routed by a superseded map refetch).
// Unmoved objects keep their instances and are served across the epoch
// boundary without interruption.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "store/batching.h"
#include "store/shard_map.h"

namespace fastreg::store {

class server final : public automaton {
 public:
  server(std::shared_ptr<const shard_map> shards, std::uint32_t index);
  server(const server& o);
  server& operator=(const server&) = delete;

  void on_message(netout& net, const process_id& from,
                  const message& m) override;
  void on_batch(netout& net, const process_id& from,
                std::span<const message> msgs) override;
  [[nodiscard]] std::unique_ptr<automaton> clone() const override;
  [[nodiscard]] process_id self() const override { return server_id(index_); }

  // ---------------------------------------------------------- reconfig --
  // Control plane; call on the automaton's thread (between steps on the
  // simulator, via node::run_on_reactor on TCP).

  /// Moves to the next epoch's map (epoch must advance by exactly one).
  /// Must not be called while a previous reconfiguration is still
  /// draining -- the coordinator serializes reconfigurations.
  void install_map(std::shared_ptr<const shard_map> next);

  [[nodiscard]] epoch_t epoch() const { return map_->epoch(); }
  /// Objects seeded since the last install (diagnostic).
  [[nodiscard]] std::size_t seeded_count() const { return seeded_.size(); }

  /// Distinct objects this server hosts in the current generation
  /// (diagnostic).
  [[nodiscard]] std::size_t objects_hosted() const { return objects_.size(); }

 private:
  automaton& inner_for(object_id obj);
  /// True when `obj`'s state moved generations at the last install.
  [[nodiscard]] bool moved(object_id obj) const;
  void handle_one(const process_id& from, const message& m);
  void handle_state_req(const process_id& from, const message& m);
  void handle_seed_req(const process_id& from, const message& m);
  void send_nack(const process_id& to, const message& m);

  std::shared_ptr<const shard_map> map_;
  /// Map of the previous epoch; null until the first install.
  std::shared_ptr<const shard_map> prev_map_;
  std::uint32_t index_;
  std::unordered_map<object_id, std::unique_ptr<automaton>> objects_;
  /// Superseded instances of moved objects, kept for migration state
  /// reads (and for old-generation gossip stragglers) until the next
  /// install.
  std::unordered_map<object_id, std::unique_ptr<automaton>> prev_objects_;
  /// Moved objects whose new-generation instance was seeded: their drain
  /// is over.
  std::unordered_set<object_id> seeded_;
  batch_collector outbox_;
};

}  // namespace fastreg::store
