#include "adversary/blocks.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace fastreg::adversary {

block_partition block_partition::from_sizes(
    const std::vector<std::uint32_t>& sizes) {
  block_partition p;
  std::uint32_t next = 0;
  for (const std::uint32_t n : sizes) {
    std::vector<std::uint32_t> blk(n);
    std::iota(blk.begin(), blk.end(), next);
    next += n;
    p.blocks_.push_back(std::move(blk));
  }
  return p;
}

bool block_partition::contains(std::size_t block_index,
                               std::uint32_t server) const {
  const auto& blk = blocks_[block_index];
  return std::find(blk.begin(), blk.end(), server) != blk.end();
}

std::vector<bool> block_partition::membership(
    const std::vector<std::size_t>& block_indices,
    std::uint32_t num_servers) const {
  std::vector<bool> in(num_servers, false);
  for (const std::size_t bi : block_indices) {
    for (const std::uint32_t s : blocks_[bi]) in[s] = true;
  }
  return in;
}

std::string block_partition::describe(
    const std::vector<std::string>& names) const {
  std::string out;
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    out += (i < names.size() ? names[i] : "B" + std::to_string(i + 1)) + "={";
    for (std::size_t j = 0; j < blocks_[i].size(); ++j) {
      if (j != 0) out += ",";
      out += "s" + std::to_string(blocks_[i][j] + 1);
    }
    out += "} ";
  }
  return out;
}

namespace {

/// Distributes S servers over blocks with the given caps, visiting blocks
/// in `priority` order and filling each up to its cap.
std::vector<std::uint32_t> fill_sizes(std::uint32_t S,
                                      const std::vector<std::uint32_t>& caps,
                                      const std::vector<std::size_t>& priority) {
  std::vector<std::uint32_t> sizes(caps.size(), 0);
  std::uint32_t remaining = S;
  for (const std::size_t i : priority) {
    const std::uint32_t take = std::min(caps[i], remaining);
    sizes[i] = take;
    remaining -= take;
  }
  FASTREG_CHECK(remaining == 0);
  return sizes;
}

}  // namespace

std::optional<swmr_partition> make_swmr_partition(std::uint32_t S,
                                                  std::uint32_t t,
                                                  std::uint32_t R) {
  if (t == 0) return std::nullopt;
  for (std::uint32_t rp = 2; rp <= R; ++rp) {
    if (static_cast<std::uint64_t>(rp + 2) * t < S) continue;
    // Fill B_{R'+1} (index rp) first: it is the only block that receives
    // the write, and the construction needs it non-empty.
    std::vector<std::uint32_t> caps(rp + 2, t);
    std::vector<std::size_t> priority;
    priority.push_back(rp);
    for (std::size_t i = 0; i < rp; ++i) priority.push_back(i);
    priority.push_back(rp + 1);
    swmr_partition out;
    out.readers_used = rp;
    out.part = block_partition::from_sizes(fill_sizes(S, caps, priority));
    return out;
  }
  return std::nullopt;
}

std::optional<bft_partition> make_bft_partition(std::uint32_t S,
                                                std::uint32_t t,
                                                std::uint32_t b,
                                                std::uint32_t R) {
  if (t == 0) return std::nullopt;
  for (std::uint32_t rp = 2; rp <= R; ++rp) {
    const std::uint64_t capacity = static_cast<std::uint64_t>(rp + 2) * t +
                                   static_cast<std::uint64_t>(rp + 1) * b;
    if (capacity < S) continue;
    // Blocks [0 .. rp+1] are T_1..T_{rp+2} (cap t);
    // blocks [rp+2 .. 2rp+2] are B_1..B_{rp+1} (cap b).
    std::vector<std::uint32_t> caps(rp + 2, t);
    caps.insert(caps.end(), rp + 1, b);
    std::vector<std::size_t> priority;
    priority.push_back(rp);            // T_{rp+1}: receives the write
    priority.push_back(rp + 2 + rp);   // B_{rp+1}: two-faced block
    for (std::size_t i = 0; i < rp; ++i) priority.push_back(i);  // T_1..T_rp
    for (std::size_t i = 0; i < rp; ++i) {
      priority.push_back(rp + 2 + i);  // B_1..B_rp
    }
    priority.push_back(rp + 1);        // T_{rp+2}
    bft_partition out;
    out.readers_used = rp;
    out.part = block_partition::from_sizes(fill_sizes(S, caps, priority));
    return out;
  }
  return std::nullopt;
}

}  // namespace fastreg::adversary
