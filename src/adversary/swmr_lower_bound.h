// Executable version of the Section 5 lower bound (Proposition 5): if
// R >= S/t - 2 there is no fast atomic SWMR register, crash failures only.
//
// The proof constructs a family of partial runs; this module *executes*
// them, as concrete message schedules in the simulator, against any
// protocol that claims fast reads and writes:
//
//   wr     : write(v1) completes, skipping block B_{R+2};
//   pr_i / Delta-pr_i : reads by r_1..r_i with carefully chosen skip sets,
//            where indistinguishability forces each r_i to return v1;
//   pr^A   : r_1's read finally completes having seen *no trace* of the
//            write (only block B_{R+1} received it, and r_1 missed B_{R+1});
//   pr^B   : identical to pr^A but the write never happened -- r_1 cannot
//            tell, so it returns bottom in both;
//   pr^C/pr^D : r_1 reads once more (still missing B_{R+1}); now r_1's
//            bottom read *succeeds* r_R's read of v1: atomicity violated.
//
// Running it against the Figure 2 protocol outside its feasible region
// produces a checker-certified violation; inside the region the partition
// does not exist and the construction reports "not applicable".
#pragma once

#include "adversary/report.h"
#include "registers/automaton.h"

namespace fastreg::adversary {

/// Runs the construction against `proto` under `cfg` (uses cfg.S/t/R;
/// b is ignored -- crash model). The protocol must have 1-round reads and
/// writes; this is asserted.
[[nodiscard]] construction_report run_swmr_lower_bound(
    const protocol& proto, const system_config& cfg);

}  // namespace fastreg::adversary
