// The executable lower bounds: the Section 5 / 6.2 / 7 constructions must
// (a) produce checker-certified atomicity violations exactly outside the
// feasible region, and (b) report "not applicable" inside it.
#include <gtest/gtest.h>

#include <tuple>

#include "adversary/bft_lower_bound.h"
#include "adversary/blocks.h"
#include "adversary/mwmr_lower_bound.h"
#include "adversary/swmr_lower_bound.h"
#include "registers/registry.h"
#include "sim_test_util.h"

namespace fastreg::adversary {
namespace {

using test::make_cfg;

// -------------------------------------------------------------- partitions

TEST(Blocks, SwmrPartitionExistsIffInfeasible) {
  // S=8, t=2: fast feasible iff R < 2. R=2 -> partition exists.
  EXPECT_TRUE(make_swmr_partition(8, 2, 2).has_value());
  // S=9, t=2, R=2: 9 > 8 feasible -> no partition.
  EXPECT_FALSE(make_swmr_partition(9, 2, 2).has_value());
  EXPECT_FALSE(make_swmr_partition(8, 0, 5).has_value());
}

TEST(Blocks, SwmrPartitionShapes) {
  const auto sp = make_swmr_partition(8, 2, 4);
  ASSERT_TRUE(sp.has_value());
  // Minimal R' with (R'+2)*2 >= 8 is R'=2.
  EXPECT_EQ(sp->readers_used, 2u);
  ASSERT_EQ(sp->part.block_count(), 4u);
  std::uint32_t total = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_LE(sp->part.block(i).size(), 2u);
    total += sp->part.block(i).size();
  }
  EXPECT_EQ(total, 8u);
  // B_{R'+1} (index R') must be non-empty: it alone receives the write.
  EXPECT_FALSE(sp->part.block(sp->readers_used).empty());
}

TEST(Blocks, BftPartitionRespectsBothCaps) {
  // S=12, t=2, b=1, R=3: (R'+2)*2 + (R'+1)*1 >= 12 -> R'=2 gives 8+3=11 <
  // 12; R'=3 gives 10+4=14 >= 12.
  const auto bp = make_bft_partition(12, 2, 1, 3);
  ASSERT_TRUE(bp.has_value());
  EXPECT_EQ(bp->readers_used, 3u);
  const std::uint32_t rp = bp->readers_used;
  std::uint32_t total = 0;
  for (std::size_t j = 0; j < rp + 2; ++j) {
    EXPECT_LE(bp->part.block(j).size(), 2u);  // T-blocks: cap t
    total += bp->part.block(j).size();
  }
  for (std::size_t j = rp + 2; j < 2 * rp + 3; ++j) {
    EXPECT_LE(bp->part.block(j).size(), 1u);  // B-blocks: cap b
    total += bp->part.block(j).size();
  }
  EXPECT_EQ(total, 12u);
  EXPECT_FALSE(bp->part.block(rp).empty());  // T_{R'+1}
}

TEST(Blocks, MembershipUnionsBlocks) {
  const auto sp = make_swmr_partition(8, 2, 2);
  ASSERT_TRUE(sp.has_value());
  const auto in = sp->part.membership({0, 1}, 8);
  std::uint32_t count = 0;
  for (bool x : in) count += x ? 1 : 0;
  EXPECT_EQ(count,
            sp->part.block(0).size() + sp->part.block(1).size());
}

// ------------------------------------------------- Section 5 (crash model)

struct lb_case {
  std::uint32_t S, t, R;
};

class SwmrLowerBound
    : public ::testing::TestWithParam<lb_case> {};

TEST_P(SwmrLowerBound, ViolatesAtomicityOutsideFeasibleRegion) {
  const auto c = GetParam();
  ASSERT_FALSE(fast_swmr_feasible(c.S, c.t, c.R));
  const auto rep =
      run_swmr_lower_bound(*make_protocol("fast_swmr"), make_cfg(c.S, c.t, c.R));
  ASSERT_TRUE(rep.applicable) << rep.reason;
  // The proof's induction: every chained read returned the written value.
  for (const auto& v : rep.chain) EXPECT_EQ(v, rep.written_value);
  // r1 saw no trace of the write in either completing read.
  EXPECT_EQ(*rep.read_pr_a, k_bottom_value);
  EXPECT_EQ(*rep.read_pr_c, k_bottom_value);
  // r1 could not distinguish the write/no-write siblings.
  EXPECT_TRUE(rep.indistinguishability_ok);
  // And the checker certifies the new/old inversion.
  EXPECT_TRUE(rep.violation) << rep.summary();
  EXPECT_NE(rep.checker_error.find("condition 4"), std::string::npos)
      << rep.checker_error;
}

INSTANTIATE_TEST_SUITE_P(
    InfeasibleConfigs, SwmrLowerBound,
    ::testing::Values(lb_case{4, 1, 2},    // boundary: S = (R+2)t
                      lb_case{8, 2, 2},    //
                      lb_case{6, 1, 4},    //
                      lb_case{12, 3, 2},   //
                      lb_case{10, 2, 3},   //
                      lb_case{7, 2, 2},    // uneven blocks
                      lb_case{11, 3, 4},   // R' < R
                      lb_case{5, 3, 2}));  // t > S/2

TEST(SwmrLowerBoundNA, NotApplicableInFeasibleRegion) {
  for (const auto c : {lb_case{9, 2, 2}, lb_case{8, 1, 2}, lb_case{25, 4, 3}}) {
    ASSERT_TRUE(fast_swmr_feasible(c.S, c.t, c.R));
    const auto rep = run_swmr_lower_bound(*make_protocol("fast_swmr"),
                                          make_cfg(c.S, c.t, c.R));
    EXPECT_FALSE(rep.applicable) << c.S << "," << c.t << "," << c.R;
  }
}

// --------------------------------------------- Section 6.2 (byzantine model)

struct bft_lb_case {
  std::uint32_t S, t, b, R;
};

class BftLowerBound : public ::testing::TestWithParam<bft_lb_case> {};

TEST_P(BftLowerBound, ViolatesAtomicityOutsideFeasibleRegion) {
  const auto c = GetParam();
  ASSERT_FALSE(fast_bft_feasible(c.S, c.t, c.b, c.R));
  const auto rep = run_bft_lower_bound(
      *make_protocol("fast_bft"), make_cfg(c.S, c.t, c.R, c.b, 1, "oracle"));
  ASSERT_TRUE(rep.applicable) << rep.reason;
  for (const auto& v : rep.chain) EXPECT_EQ(v, rep.written_value);
  EXPECT_EQ(*rep.read_pr_a, k_bottom_value);
  EXPECT_EQ(*rep.read_pr_c, k_bottom_value);
  EXPECT_TRUE(rep.indistinguishability_ok);
  EXPECT_TRUE(rep.violation) << rep.summary();
}

INSTANTIATE_TEST_SUITE_P(
    InfeasibleConfigs, BftLowerBound,
    ::testing::Values(bft_lb_case{8, 2, 0, 2},    // b = 0 degenerates to S5
                      bft_lb_case{11, 2, 1, 2},   // boundary: 8+3 = 11
                      bft_lb_case{10, 2, 1, 2},   //
                      bft_lb_case{14, 2, 2, 2},   // 8+6 = 14
                      bft_lb_case{17, 3, 2, 2},   // uneven
                      bft_lb_case{13, 2, 1, 4})); // R' < R

TEST(BftLowerBoundNA, NotApplicableInFeasibleRegion) {
  const auto rep = run_bft_lower_bound(
      *make_protocol("fast_bft"), make_cfg(12, 2, 2, 1, 1, "oracle"));
  EXPECT_FALSE(rep.applicable);  // 12 > (4)*2 + 3*1 = 11: feasible
}

// ------------------------------------------------------- Section 7 (MWMR)

TEST(MwmrLowerBound, NaiveFastMwmrIsNotAtomic) {
  for (const std::uint32_t S : {3u, 5u, 8u}) {
    const auto rep =
        run_mwmr_lower_bound(*make_protocol("naive_fast_mwmr"), S);
    EXPECT_TRUE(rep.violation) << "S=" << S << ": " << rep.summary();
    EXPECT_EQ(rep.series.size(), S + 1);
  }
}

TEST(MwmrLowerBound, SeriesEndpointsExposeP1) {
  // The naive protocol orders by writer id, so even run^1 (sequential
  // w2;w1) returns w2's value: property P1 is violated immediately.
  const auto rep = run_mwmr_lower_bound(*make_protocol("naive_fast_mwmr"), 4);
  EXPECT_FALSE(rep.p1_ok_run1);
  EXPECT_EQ(rep.series.front(), rep.w2_value);
}

}  // namespace
}  // namespace fastreg::adversary
