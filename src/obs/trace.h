// Per-operation phase tracer: records, for every register operation,
// the spans the paper's cost model cares about — when each round's
// requests were issued, when its quorum of acks arrived, and how many
// rounds the op took end to end.
//
// The hooks are called from the client-role register automata
// (src/registers/*.cc) at the protocol-defined phase boundaries, so a
// trace's round count is the protocol's REAL executed round count, not
// the theoretical one a bench table assumes. E1/E5/E11 print their
// measured rounds-per-op columns from these traces.
//
// Keying: an op is identified by (automaton self id, current object).
// Inner per-object automata do not know their object id, so the store
// front-end publishes it in a thread-local context (set_trace_object)
// immediately before stepping an inner automaton; plain single-register
// deployments leave it at k_default_object.
//
// Clock domain: trace timestamps come from trace_now(), which the
// simulator overrides with its tick counter around every automaton step
// (set_trace_time) and which otherwise reads the steady clock in
// nanoseconds — the same clock net::node stamps its histories with. A
// trace therefore always agrees with the linearizability history the
// same run produced.
//
// Cross-node merge guarantee (src/obs/timeline.h): two timestamps are
// comparable iff they come from the SAME domain. The sim domain is the
// scheduler's global tick counter — totally ordered across every
// simulated node by construction. The ns domain is one process's
// steady_clock — and because every net::node reactor in a deployment
// runs in the same process, all TCP nodes share that single clock.
// Timestamps are never compared across the sim/ns boundary; the
// recorder tags each event with its domain (trace_time_overridden()) so
// the merge pass can keep them apart.
//
// Cost when disabled (the default): every hook is one relaxed atomic
// load and a branch. Enable via set_tracing(true) or FASTREG_OBS=trace
// (or =1) in the environment.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/types.h"

namespace fastreg::obs {

// ------------------------------------------------------------ global gate --

namespace detail {
extern std::atomic<bool> tracing_on;
}

/// True when per-op tracing is recording. Initialized once from
/// FASTREG_OBS ("trace" or "1" enables).
[[nodiscard]] bool tracing_enabled();
void set_tracing(bool on);

// ------------------------------------------------------ per-thread context --

/// Publishes the object the current thread is about to step an inner
/// automaton for. Restores the previous object on destruction.
class scoped_trace_object {
 public:
  explicit scoped_trace_object(object_id obj);
  ~scoped_trace_object();
  scoped_trace_object(const scoped_trace_object&) = delete;
  scoped_trace_object& operator=(const scoped_trace_object&) = delete;

 private:
  object_id prev_;
};

[[nodiscard]] object_id trace_object();

/// Overrides trace_now() for the current thread (the simulator sets its
/// tick counter around automaton steps). Restores on destruction.
class scoped_trace_time {
 public:
  explicit scoped_trace_time(std::uint64_t t);
  ~scoped_trace_time();
  scoped_trace_time(const scoped_trace_time&) = delete;
  scoped_trace_time& operator=(const scoped_trace_time&) = delete;

 private:
  std::uint64_t prev_;
  bool had_prev_;
};

/// The thread's trace clock: the active override, else steady-clock ns.
[[nodiscard]] std::uint64_t trace_now();

/// True while a scoped_trace_time override is active on this thread —
/// i.e. trace_now() is returning simulator ticks, not steady-clock ns.
/// The flight recorder stores this bit with every event so the merge
/// pass never orders a sim tick against a wall-clock nanosecond.
[[nodiscard]] bool trace_time_overridden();

// ------------------------------------------------------------------ hooks --

/// Called by client-role automata. All are no-ops (one relaxed load)
/// while tracing is disabled. An op_begin for a key with an open trace
/// replaces it and counts a restart (re-issue after an epoch nack).
inline bool trace_active() {
  return detail::tracing_on.load(std::memory_order_relaxed);
}

void op_begin(const process_id& self, bool is_write);
void round_issue(const process_id& self, int round);
void round_ack(const process_id& self, int round);
void op_end(const process_id& self, int rounds);

// ----------------------------------------------------------------- output --

struct round_span {
  int round{0};
  std::uint64_t issue_t{0};
  std::uint64_t ack_t{0};
};

/// One completed operation's trace.
struct op_trace {
  process_id self{};
  object_id obj{k_default_object};
  bool is_write{false};
  std::uint64_t begin_t{0};
  std::uint64_t end_t{0};
  int rounds{0};
  std::vector<round_span> spans{};
};

/// Forces creation of the tracer's lazily-registered counters (drops,
/// restarts) so threads under the registry's hot-loop creation check
/// (reactor threads) never hit the creation path.
void preheat_trace_metrics();

/// Drains completed traces (oldest first). Retention is capped; drops
/// are visible as the fastreg_obs_trace_drops_total counter.
[[nodiscard]] std::vector<op_trace> take_traces();
/// Discards completed and in-flight trace state.
void reset_traces();

/// Mean executed rounds over `traces`, reads and writes separately;
/// negative when no op of that kind completed.
struct rounds_summary {
  double read_rounds{-1};
  double write_rounds{-1};
  std::uint64_t reads{0};
  std::uint64_t writes{0};
};
[[nodiscard]] rounds_summary summarize_rounds(
    const std::vector<op_trace>& traces);

}  // namespace fastreg::obs
