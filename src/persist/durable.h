// One store server's durability engine: owns the server's op log and
// snapshot file, replays them at construction, and exposes the append /
// snapshot entry points store::server calls after applying state.
//
// Recovery = snapshot, then log tail. The log may contain records from
// several epochs; an epoch_mark record (appended at install_map) advances
// the recovered epoch and drops the state of objects the install fenced
// for migration -- their post-mark seed records re-establish them. The
// caller (store::server) compares the recovered epoch against its current
// shard map and either installs the state (rejoin) or discards it and
// falls back to the bootstrap/lazy-seed path (the map moved on while the
// server was down, so its idea of which objects it owns is void).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "persist/options.h"
#include "persist/wal.h"

namespace fastreg::persist {

/// State recovered from disk at construction.
struct recovered_state {
  epoch_t epoch{k_initial_epoch};
  /// Latest durable snapshot per object (op and seed records both land
  /// here; replay keeps only the last record per object).
  std::unordered_map<object_id, register_snapshot> objects{};
  /// Anything -- snapshot or log records -- existed on disk.
  bool found{false};
};

class server_durability {
 public:
  server_durability(options opt, std::uint32_t server_index);

  [[nodiscard]] const recovered_state& recovered() const { return rec_; }
  /// Epoch fence failed: drop the recovered state AND its on-disk backing
  /// (log truncated, snapshot removed), so appends under the new epoch
  /// start from a clean slate instead of stacking on void state.
  void discard_recovered();

  void append_op(epoch_t epoch, object_id obj, const register_snapshot& s);
  void append_seed(epoch_t epoch, object_id obj, const register_snapshot& s);
  void append_epoch_mark(epoch_t epoch,
                         const std::vector<object_id>& fenced);

  /// True once snapshot_every records accumulated since the last
  /// snapshot; the server answers with write_snapshot.
  [[nodiscard]] bool snapshot_due() const {
    return since_snapshot_ >= opt_.snapshot_every;
  }
  void write_snapshot(
      epoch_t epoch,
      std::vector<std::pair<object_id, register_snapshot>> objects);

  /// Forces the log to disk (tests and orderly shutdown).
  void sync() { log_.sync(); }

  [[nodiscard]] const options& opts() const { return opt_; }
  [[nodiscard]] const std::string& log_path() const { return log_.path(); }
  [[nodiscard]] const std::string& snap_path() const { return snap_path_; }
  [[nodiscard]] std::uint64_t records_appended() const {
    return log_.records_appended();
  }

  /// Log/snapshot file names under `dir` for server `index`.
  [[nodiscard]] static std::string log_path_for(const std::string& dir,
                                                std::uint32_t index);
  [[nodiscard]] static std::string snap_path_for(const std::string& dir,
                                                 std::uint32_t index);

 private:
  void append(const log_record& rec);
  void replay();

  options opt_;
  std::uint32_t index_;
  std::string snap_path_;
  wal log_;
  recovered_state rec_;
  std::uint64_t since_snapshot_{0};

  struct persist_metrics {
    obs::counter* log_bytes{nullptr};
    obs::counter* log_records{nullptr};
    obs::counter* fsyncs{nullptr};
    obs::counter* snapshots{nullptr};
    obs::counter* replayed_records{nullptr};
    obs::counter* torn_tail_truncations{nullptr};
    obs::histogram* replay_ns{nullptr};
  };
  persist_metrics pm_;
};

}  // namespace fastreg::persist
