#include "adversary/swmr_lower_bound.h"

#include <functional>

#include "adversary/blocks.h"
#include "checker/atomicity.h"
#include "common/check.h"
#include "sim/world.h"

namespace fastreg::adversary {

std::string construction_report::summary() const {
  if (!applicable) return "not applicable: " + reason;
  std::string out = "R'=" + std::to_string(readers_used) + "; chain=[";
  for (std::size_t i = 0; i < chain.size(); ++i) {
    if (i != 0) out += ",";
    out += "\"" + chain[i] + "\"";
  }
  out += "]; pr^A read=\"" + (read_pr_a ? *read_pr_a : "?") + "\"";
  out += "; pr^C read=\"" + (read_pr_c ? *read_pr_c : "?") + "\"";
  out += violation ? "; VIOLATION (" + checker_error + ")"
                   : "; no violation";
  return out;
}

namespace {

using sim::envelope;
using sim::world;

/// Delivers `client`'s outstanding request messages (read/write) to every
/// server in the allowed set.
void deliver_requests(world& w, const process_id& client,
                      const std::vector<bool>& allowed) {
  w.deliver_matching([&](const envelope& e) {
    return e.from == client && e.to.is_server() && allowed[e.to.index] &&
           (e.msg.type == msg_type::read_req ||
            e.msg.type == msg_type::write_req);
  });
}

/// Delivers server acks addressed to `client` originating in the allowed
/// server set.
void deliver_acks(world& w, const process_id& client,
                  const std::vector<bool>& allowed) {
  w.deliver_matching([&](const envelope& e) {
    return e.to == client && e.from.is_server() && allowed[e.from.index];
  });
}

std::vector<bool> all_servers(std::uint32_t S, bool value = true) {
  return std::vector<bool>(S, value);
}

struct schedule_outcome {
  std::optional<value_t> last_chain_read;  // r_{R'}'s read in Delta-pr_{R'}
  std::optional<value_t> read_pr_a;
  std::optional<value_t> read_pr_c;
  checker::check_result check{};
};

/// Executes the pr^C schedule (or pr^D when with_write = false) and
/// returns what the readers saw.
schedule_outcome run_schedule(const protocol& proto, const system_config& cfg,
                              const swmr_partition& sp, bool with_write,
                              const value_t& v1) {
  const std::uint32_t S = cfg.S();
  const std::uint32_t rp = sp.readers_used;  // R'
  const auto& part = sp.part;
  // Block indices: paper's B_j (1-based) is part.block(j-1).
  const std::size_t b_rp1 = rp;      // B_{R'+1}: the only block written
  const std::size_t b_rp2 = rp + 1;  // B_{R'+2}: skipped by the write

  world w(cfg);
  w.install(proto);
  schedule_outcome out;

  // --- wr_{R'+1}: write(v1) reaches only B_{R'+1}; its acks stay in
  // transit, so the write never completes in this run family.
  if (with_write) {
    w.invoke_write(v1);
    deliver_requests(w, writer_id(0), part.membership({b_rp1}, S));
  }

  // --- Delta-pr_{R'}: reads r_1..r_{R'}; r_h skips blocks B_h..B_{R'}.
  for (std::uint32_t h = 1; h <= rp; ++h) {
    std::vector<std::size_t> allowed_blocks;
    for (std::size_t j = 0; j + 1 < h; ++j) allowed_blocks.push_back(j);
    allowed_blocks.push_back(b_rp1);
    allowed_blocks.push_back(b_rp2);
    w.invoke_read(h - 1);
    deliver_requests(w, reader_id(h - 1), part.membership(allowed_blocks, S));
    if (h == rp) {
      // The last read of the chain completes; indistinguishability forces
      // it to return v1. The adversary schedules acks from the written
      // block first (a reader that waits for only S - t replies might
      // otherwise complete before hearing any evidence of the write).
      deliver_acks(w, reader_id(h - 1), part.membership({b_rp1}, S));
      deliver_acks(w, reader_id(h - 1), all_servers(S));
      const auto res = w.last_read(h - 1);
      FASTREG_CHECK(res.has_value());
      out.last_chain_read = res->val;
    }
  }

  // --- pr^A: r_1's first read completes without ever hearing from
  // B_{R'+1} (the block that got the write): acks from B_{R'+2} first,
  // then B_1..B_{R'} receive the request and answer.
  deliver_acks(w, reader_id(0), part.membership({b_rp2}, S));
  std::vector<std::size_t> b_1_to_rp;
  for (std::size_t j = 0; j < rp; ++j) b_1_to_rp.push_back(j);
  deliver_requests(w, reader_id(0), part.membership(b_1_to_rp, S));
  deliver_acks(w, reader_id(0), part.membership(b_1_to_rp, S));
  {
    const auto res = w.last_read(0);
    FASTREG_CHECK(res.has_value());
    out.read_pr_a = res->val;
  }

  // --- pr^C: r_1 reads once more, skipping B_{R'+1}. This read *succeeds*
  // r_{R'}'s read.
  w.invoke_read(0);
  std::vector<std::size_t> all_but_written;
  for (std::size_t j = 0; j < part.block_count(); ++j) {
    if (j != b_rp1) all_but_written.push_back(j);
  }
  deliver_requests(w, reader_id(0), part.membership(all_but_written, S));
  deliver_acks(w, reader_id(0), part.membership(all_but_written, S));
  {
    const auto res = w.last_read(0);
    FASTREG_CHECK(res.has_value());
    out.read_pr_c = res->val;
  }

  out.check = checker::check_swmr_atomicity(w.hist());
  return out;
}

/// Executes Delta-pr_i standalone (fresh world) and returns r_i's value.
value_t run_chain_step(const protocol& proto, const system_config& cfg,
                       const swmr_partition& sp, std::uint32_t i,
                       const value_t& v1) {
  const std::uint32_t S = cfg.S();
  const std::uint32_t rp = sp.readers_used;
  const auto& part = sp.part;

  world w(cfg);
  w.install(proto);

  // Write reaches blocks B_{i+1}..B_{R'+1} (0-based: i..rp).
  w.invoke_write(v1);
  std::vector<std::size_t> write_blocks;
  for (std::size_t j = i; j <= rp; ++j) write_blocks.push_back(j);
  deliver_requests(w, writer_id(0), part.membership(write_blocks, S));

  // Reads r_1..r_i; r_h skips {B_j : h <= j <= i}.
  for (std::uint32_t h = 1; h <= i; ++h) {
    std::vector<std::size_t> allowed_blocks;
    for (std::size_t j = 0; j + 1 < h; ++j) allowed_blocks.push_back(j);
    for (std::size_t j = i; j <= static_cast<std::size_t>(rp) + 1; ++j) {
      allowed_blocks.push_back(j);
    }
    w.invoke_read(h - 1);
    deliver_requests(w, reader_id(h - 1), part.membership(allowed_blocks, S));
    if (h == i) {
      // Acks from the written blocks first (see run_schedule).
      deliver_acks(w, reader_id(h - 1), part.membership(write_blocks, S));
      deliver_acks(w, reader_id(h - 1), all_servers(S));
    }
  }
  const auto res = w.last_read(i - 1);
  FASTREG_CHECK(res.has_value());
  return res->val;
}

}  // namespace

construction_report run_swmr_lower_bound(const protocol& proto,
                                         const system_config& cfg) {
  construction_report rep;
  rep.written_value = "v1";
  FASTREG_EXPECTS(proto.read_rounds() == 1 && proto.write_rounds() == 1);

  const auto sp = make_swmr_partition(cfg.S(), cfg.t(), cfg.R());
  if (!sp) {
    rep.applicable = false;
    rep.reason = "no block partition exists: S > (R+2)t for all R' <= R "
                 "(feasible region, " +
                 cfg.describe() + ")";
    return rep;
  }
  rep.applicable = true;
  rep.readers_used = sp->readers_used;
  {
    std::vector<std::string> names;
    for (std::uint32_t j = 1; j <= sp->readers_used + 2; ++j) {
      names.push_back("B" + std::to_string(j));
    }
    rep.partition = sp->part.describe(names);
  }
  rep.trace.push_back("partition: " + rep.partition);

  // The Delta-pr_i chain, each in a fresh world: the values the proof's
  // induction forces to v1.
  for (std::uint32_t i = 1; i <= sp->readers_used; ++i) {
    rep.chain.push_back(run_chain_step(proto, cfg, *sp, i, rep.written_value));
    rep.trace.push_back("Delta-pr_" + std::to_string(i) + ": r" +
                        std::to_string(i) + " read \"" + rep.chain.back() +
                        "\"");
  }

  // pr^C (with the write) and pr^D (without): r_1 must not distinguish.
  const auto pr_c =
      run_schedule(proto, cfg, *sp, /*with_write=*/true, rep.written_value);
  const auto pr_d =
      run_schedule(proto, cfg, *sp, /*with_write=*/false, rep.written_value);

  rep.read_pr_a = pr_c.read_pr_a;
  rep.read_pr_c = pr_c.read_pr_c;
  rep.indistinguishability_ok = pr_c.read_pr_a == pr_d.read_pr_a &&
                                pr_c.read_pr_c == pr_d.read_pr_c;
  rep.trace.push_back("pr^A: r1 read \"" + *pr_c.read_pr_a +
                      "\" (pr^B sibling: \"" + *pr_d.read_pr_a + "\")");
  rep.trace.push_back("pr^C: r1 read \"" + *pr_c.read_pr_c +
                      "\" (pr^D sibling: \"" + *pr_d.read_pr_c + "\")");

  rep.violation = !pr_c.check.ok;
  rep.checker_error = pr_c.check.error;
  rep.trace.push_back(rep.violation ? "checker: VIOLATION: " + pr_c.check.error
                                    : "checker: history is atomic");
  return rep;
}

}  // namespace fastreg::adversary
