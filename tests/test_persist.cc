// Durability and crash-recovery suite (src/persist + the store's rejoin
// path): WAL framing round-trips, torn-tail truncation at the last valid
// CRC frame, corrupt-record and corrupt-snapshot rejection with useful
// diagnostics, the fsync-policy matrix, epoch fencing of stale recovered
// state, and the end-to-end acceptance schedule -- a server killed in the
// middle of a Zipf-keyed load restarts, replays snapshot + log tail,
// rejoins, and every per-key history still verifies, on both transports.
//
// "Crash" here is in-process (world::crash / node::stop), so the log
// bytes survive in the page cache regardless of fsync policy -- which is
// exactly what makes the recovery tests deterministic under fsync=never.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "benchutil/stress.h"
#include "benchutil/workload.h"
#include "common/check.h"
#include "common/rng.h"
#include "persist/durable.h"
#include "persist/wal.h"
#include "store/server.h"
#include "store/sim_store.h"

namespace fastreg::persist {
namespace {

/// Fresh directory under the system temp root, removed on destruction.
class temp_dir {
 public:
  explicit temp_dir(const std::string& tag) {
    static std::atomic<std::uint64_t> counter{0};
    dir_ = std::filesystem::temp_directory_path() /
           ("fastreg_persist_" + tag + "_" + std::to_string(::getpid()) +
            "_" + std::to_string(counter.fetch_add(1)));
    std::filesystem::create_directories(dir_);
  }
  ~temp_dir() {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  [[nodiscard]] std::string path() const { return dir_.string(); }

 private:
  std::filesystem::path dir_;
};

register_snapshot snap(ts_t ts, std::int32_t wid, std::string val) {
  register_snapshot s;
  s.ts = ts;
  s.wid = wid;
  s.val = std::move(val);
  return s;
}

log_record op_rec(epoch_t epoch, object_id obj, register_snapshot s) {
  log_record r;
  r.k = log_record::kind::op;
  r.epoch = epoch;
  r.obj = obj;
  r.snap = std::move(s);
  return r;
}

std::uint64_t file_size(const std::string& path) {
  std::error_code ec;
  const auto n = std::filesystem::file_size(path, ec);
  return ec ? 0 : static_cast<std::uint64_t>(n);
}

void append_raw(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Flips one byte at `offset` in place.
void corrupt_byte(const std::string& path, std::uint64_t offset) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  f.seekg(static_cast<std::streamoff>(offset));
  char c = 0;
  f.read(&c, 1);
  c = static_cast<char>(c ^ 0x5a);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&c, 1);
}

// ------------------------------------------------------------- WAL unit --

TEST(Wal, RoundTripsOpSeedAndEpochMarkRecords) {
  temp_dir td("roundtrip");
  const std::string path = td.path() + "/server_0.log";
  std::vector<log_record> want;
  want.push_back(op_rec(0, 11, snap(3, 1, "a")));
  {
    log_record seed = op_rec(0, 12, snap(7, 0, "b"));
    seed.k = log_record::kind::seed;
    seed.snap.prev = "prev";
    seed.snap.sig = {1, 2, 3};
    want.push_back(seed);
  }
  {
    log_record mark;
    mark.k = log_record::kind::epoch_mark;
    mark.epoch = 1;
    mark.fenced = {11, 99};
    want.push_back(mark);
  }
  {
    wal w(path, fsync_policy::never, 0);
    for (const auto& r : want) w.append(r);
    EXPECT_EQ(w.records_appended(), want.size());
    EXPECT_EQ(w.bytes_appended(), file_size(path));
  }
  const auto got = wal::load(path, /*repair=*/false);
  EXPECT_EQ(got.records, want);
  EXPECT_FALSE(got.truncated()) << got.warning;
  EXPECT_EQ(got.valid_bytes, file_size(path));
}

TEST(Wal, TornTailTruncatedAtLastValidCrcFrame) {
  temp_dir td("torn");
  const std::string path = td.path() + "/server_0.log";
  {
    wal w(path, fsync_policy::never, 0);
    for (int i = 0; i < 3; ++i) {
      w.append(op_rec(0, 5, snap(i + 1, 0, "v" + std::to_string(i))));
    }
  }
  const std::uint64_t clean = file_size(path);
  // A frame header promising 100 payload bytes, followed by only 4: the
  // shape a crash mid-append leaves behind.
  append_raw(path, std::string("\x64\x00\x00\x00", 4) +
                       std::string(8, '\xab'));
  auto res = wal::load(path, /*repair=*/false);
  EXPECT_EQ(res.records.size(), 3u);
  EXPECT_TRUE(res.truncated());
  EXPECT_EQ(res.valid_bytes, clean);
  EXPECT_NE(res.warning.find("torn tail"), std::string::npos)
      << res.warning;

  // Repair mode truncates the file to the valid prefix; the next load is
  // clean and a new wal appends right after the surviving records.
  res = wal::load(path, /*repair=*/true);
  EXPECT_EQ(res.records.size(), 3u);
  EXPECT_EQ(file_size(path), clean);
  const auto again = wal::load(path, /*repair=*/false);
  EXPECT_FALSE(again.truncated()) << again.warning;
  EXPECT_EQ(again.records.size(), 3u);
}

TEST(Wal, CorruptRecordRejectedWithOffsetAndCrcDiagnostic) {
  temp_dir td("corrupt");
  const std::string path = td.path() + "/server_0.log";
  std::uint64_t first_frame_end = 0;
  {
    wal w(path, fsync_policy::never, 0);
    w.append(op_rec(0, 5, snap(1, 0, "good")));
    first_frame_end = w.bytes_appended();
    w.append(op_rec(0, 5, snap(2, 0, "bad-to-be")));
    w.append(op_rec(0, 5, snap(3, 0, "unreachable")));
  }
  // Flip a payload byte of the SECOND record: everything before it loads,
  // everything after it is unreachable (no resynchronization by design --
  // a log whose middle lies cannot be trusted past the lie).
  corrupt_byte(path, first_frame_end + 12);
  const auto res = wal::load(path, /*repair=*/false);
  EXPECT_EQ(res.records.size(), 1u);
  EXPECT_TRUE(res.truncated());
  EXPECT_EQ(res.valid_bytes, first_frame_end);
  EXPECT_NE(res.warning.find("CRC mismatch"), std::string::npos)
      << res.warning;
  EXPECT_NE(res.warning.find(std::to_string(first_frame_end)),
            std::string::npos)
      << "diagnostic should name the bad record's offset: " << res.warning;
}

TEST(Wal, SnapshotRoundTripsAndCorruptionIsRejectedWholesale) {
  temp_dir td("snap");
  const std::string path = td.path() + "/server_0.snap";
  snapshot_data want;
  want.epoch = 2;
  want.objects.emplace_back(7, snap(9, 1, "x"));
  want.objects.emplace_back(8, snap(4, 0, "y"));
  std::string err;
  ASSERT_TRUE(write_snapshot_file(path, want, fsync_policy::never, &err))
      << err;
  auto got = load_snapshot_file(path, &err);
  ASSERT_TRUE(got.has_value()) << err;
  EXPECT_EQ(got->epoch, want.epoch);
  EXPECT_EQ(got->objects, want.objects);

  corrupt_byte(path, file_size(path) - 2);  // payload byte
  got = load_snapshot_file(path, &err);
  EXPECT_FALSE(got.has_value());
  EXPECT_NE(err.find("CRC"), std::string::npos) << err;

  // Missing file: nullopt with NO diagnostic (the fresh-server case).
  err = "sentinel";
  got = load_snapshot_file(td.path() + "/absent.snap", &err);
  EXPECT_FALSE(got.has_value());
  EXPECT_TRUE(err.empty());
}

// -------------------------------------------------- durability replay --

TEST(Durability, ReplaysSnapshotThenLogTailKeepingLatestPerObject) {
  temp_dir td("replay");
  options o;
  o.dir = td.path();
  o.fsync = fsync_policy::never;
  o.snapshot_every = 1000;  // snapshots only when asked below
  {
    server_durability d(o, 0);
    EXPECT_FALSE(d.recovered().found);
    d.append_seed(0, 1, snap(1, 0, "seeded"));
    d.append_op(0, 1, snap(2, 0, "old"));
    d.append_op(0, 2, snap(5, 1, "keep"));
    d.write_snapshot(0, {{1, snap(2, 0, "old")}, {2, snap(5, 1, "keep")}});
    d.append_op(0, 1, snap(3, 0, "tail-wins"));
  }
  server_durability d2(o, 0);
  const auto& rec = d2.recovered();
  ASSERT_TRUE(rec.found);
  EXPECT_EQ(rec.epoch, 0u);
  ASSERT_EQ(rec.objects.size(), 2u);
  EXPECT_EQ(rec.objects.at(1).val, "tail-wins");
  EXPECT_EQ(rec.objects.at(2).val, "keep");
}

TEST(Durability, TornLogTailRepairedOnConstruction) {
  temp_dir td("replay_torn");
  options o;
  o.dir = td.path();
  o.fsync = fsync_policy::never;
  {
    server_durability d(o, 3);
    d.append_op(0, 1, snap(1, 0, "a"));
    d.append_op(0, 2, snap(2, 0, "b"));
  }
  const std::string log = server_durability::log_path_for(td.path(), 3);
  const std::uint64_t clean = file_size(log);
  append_raw(log, "torn-garbage-tail");
  server_durability d2(o, 3);
  ASSERT_TRUE(d2.recovered().found);
  EXPECT_EQ(d2.recovered().objects.size(), 2u);
  EXPECT_EQ(file_size(log), clean)
      << "replay should repair-truncate the torn tail on disk";
}

TEST(Durability, EpochMarkDropsFencedObjectsAndAdvancesEpoch) {
  temp_dir td("mark");
  options o;
  o.dir = td.path();
  o.fsync = fsync_policy::never;
  {
    server_durability d(o, 0);
    d.append_op(0, 1, snap(1, 0, "fenced-away"));
    d.append_op(0, 2, snap(2, 0, "carried"));
    d.append_epoch_mark(1, {1});
    d.append_seed(1, 1, snap(9, 0, "reseeded"));
  }
  server_durability d2(o, 0);
  const auto& rec = d2.recovered();
  ASSERT_TRUE(rec.found);
  EXPECT_EQ(rec.epoch, 1u);
  ASSERT_EQ(rec.objects.size(), 2u);
  EXPECT_EQ(rec.objects.at(1).val, "reseeded");
  EXPECT_EQ(rec.objects.at(2).val, "carried");
}

// ----------------------------------------------------- epoch fencing --

store::store_config small_cfg(const std::string& dir) {
  store::store_config cfg;
  cfg.base.servers = 3;
  cfg.base.t_failures = 1;
  cfg.base.readers = 1;
  cfg.base.writers = 1;
  cfg.shard_protocols = {"abd"};
  cfg.persist.dir = dir;
  cfg.persist.fsync = fsync_policy::never;
  return cfg;
}

TEST(Recovery, ServerRejoinsWithMatchingEpochState) {
  temp_dir td("rejoin");
  const auto cfg = small_cfg(td.path());
  {
    server_durability d(cfg.persist, 0);
    d.append_op(0, 42, snap(5, 0, "durable"));
  }
  store::server s(std::make_shared<const store::shard_map>(cfg), 0);
  EXPECT_EQ(s.recovered_objects(), 1u);
  EXPECT_EQ(s.objects_hosted(), 1u);
  ASSERT_NE(s.durable(), nullptr);
  EXPECT_TRUE(s.durable()->recovered().found);
}

TEST(Recovery, EpochFenceDiscardsStaleStateAndItsDiskBacking) {
  temp_dir td("fence");
  const auto cfg = small_cfg(td.path());
  {
    server_durability d(cfg.persist, 0);
    d.append_op(0, 42, snap(5, 0, "stale"));
    d.write_snapshot(0, {{42, snap(5, 0, "stale")}});
  }
  // The fleet reconfigured to epoch 1 while this server was down: its
  // epoch-0 idea of the world is void. It must come up EMPTY (the
  // bootstrap path re-seeds it lazily) and wipe the stale backing so new
  // appends do not stack on discarded state.
  store::server s(
      std::make_shared<const store::shard_map>(cfg, /*epoch=*/1), 0);
  EXPECT_EQ(s.recovered_objects(), 0u);
  EXPECT_EQ(s.objects_hosted(), 0u);
  ASSERT_NE(s.durable(), nullptr);
  EXPECT_FALSE(s.durable()->recovered().found);
  EXPECT_EQ(file_size(server_durability::log_path_for(td.path(), 0)), 0u);
  EXPECT_FALSE(std::filesystem::exists(
      server_durability::snap_path_for(td.path(), 0)));
}

// ------------------------------------- kill mid-load, restart, verify --

/// The acceptance schedule on the simulator: a Zipf-keyed MWMR load, one
/// server killed a third of the way in, restarted (replaying its durable
/// state) at two thirds, and every per-key history verified at the end.
/// Returns the restarted server's recovered-object count.
std::size_t run_sim_kill_restart(const std::string& dir,
                                 fsync_policy policy, std::uint64_t seed) {
  store::store_config cfg;
  cfg.base.servers = 5;
  cfg.base.t_failures = 1;
  cfg.base.readers = 2;
  cfg.base.writers = 2;
  cfg.shard_protocols = {"mwmr"};
  cfg.persist.dir = dir;
  cfg.persist.fsync = policy;
  cfg.persist.snapshot_every = 64;  // several snapshot cycles per run
  store::sim_store s(cfg);
  rng r(seed);
  const benchutil::zipf_sampler zipf(/*n=*/20, /*s=*/0.99);
  const auto key = [&] { return "k" + std::to_string(zipf.sample(r)); };

  const std::uint32_t per_client = 160;
  std::vector<std::uint32_t> puts_left(2, per_client);
  std::vector<std::uint32_t> gets_left(2, per_client);
  std::vector<std::uint64_t> put_seq(2, 0);
  const std::uint64_t total = 4ull * per_client;
  std::uint64_t invoked = 0, guard = 0;
  bool crashed = false;
  std::size_t recovered = 0;
  for (;;) {
    FASTREG_CHECK(++guard < 50'000'000);
    if (!crashed && invoked >= total / 3) {
      crashed = true;
      s.world().crash(server_id(4));
    }
    if (crashed && recovered == 0 && invoked >= 2 * total / 3) {
      auto& ns = s.restart_server(4);
      recovered = ns.recovered_objects();
    }
    bool invoked_now = false;
    for (std::uint32_t j = 0; j < 2; ++j) {
      if (puts_left[j] == 0 || s.writer_client(j).op_in_progress()) continue;
      --puts_left[j];
      ++invoked;
      invoked_now = true;
      s.invoke_put(j, key(),
                   "w" + std::to_string(j) + ":" +
                       std::to_string(++put_seq[j]));
    }
    for (std::uint32_t i = 0; i < 2; ++i) {
      if (gets_left[i] == 0 || s.reader_client(i).op_in_progress()) continue;
      --gets_left[i];
      ++invoked;
      invoked_now = true;
      s.invoke_get(i, key());
    }
    if (s.world().in_transit().empty()) {
      if (invoked_now) continue;
      break;
    }
    s.run_random(r, 1);
  }
  EXPECT_TRUE(s.histories().all_complete());
  std::string failing;
  const auto res =
      s.histories().verify(store::verify_mode::mwmr, &failing);
  EXPECT_TRUE(res.ok) << "seed " << seed << " key " << failing << ": "
                      << res.error;
  return recovered;
}

TEST(Recovery, SimServerKilledMidZipfLoadRestartsReplaysAndRejoins) {
  temp_dir td("sim_kill");
  const auto recovered = run_sim_kill_restart(
      td.path(), fsync_policy::never, benchutil::stress_seed_from_env());
  // Two thirds of a 640-op Zipf load has touched (and persisted) state on
  // every server; a restart that replayed nothing would mean the durable
  // path never engaged.
  EXPECT_GT(recovered, 0u);
  EXPECT_GT(file_size(server_durability::log_path_for(td.path(), 0)) +
                file_size(server_durability::snap_path_for(td.path(), 0)),
            0u);
}

TEST(Recovery, FsyncPolicyMatrixSmoke) {
  // Same kill/restart/verify schedule under every fsync policy: the knob
  // must change only WHEN bytes reach the platter, never what replays.
  for (const auto policy : {fsync_policy::never, fsync_policy::interval,
                            fsync_policy::every_op}) {
    temp_dir td(std::string("matrix_") + to_string(policy));
    const auto recovered =
        run_sim_kill_restart(td.path(), policy, /*seed=*/7);
    EXPECT_GT(recovered, 0u) << "policy " << to_string(policy);
  }
}

TEST(Recovery, FsyncPolicyParsesAndRoundTrips) {
  EXPECT_EQ(parse_fsync_policy("never", fsync_policy::interval),
            fsync_policy::never);
  EXPECT_EQ(parse_fsync_policy("interval", fsync_policy::never),
            fsync_policy::interval);
  EXPECT_EQ(parse_fsync_policy("every_op", fsync_policy::never),
            fsync_policy::every_op);
  // Unknown strings keep the fallback (and warn) instead of silently
  // running a different durability contract than asked for.
  EXPECT_EQ(parse_fsync_policy("bogus", fsync_policy::every_op),
            fsync_policy::every_op);
  for (const auto p : {fsync_policy::never, fsync_policy::interval,
                       fsync_policy::every_op}) {
    EXPECT_EQ(parse_fsync_policy(to_string(p), fsync_policy::never), p);
  }
}

// -------------------------------------- stress harness, both transports --

TEST(Recovery, SimStressCrashRestartScheduleWithDurableState) {
  temp_dir td("stress_sim");
  benchutil::stress_options opt;
  opt.protocol = "mwmr";
  opt.S = 5;
  opt.t = 1;
  opt.R = 2;
  opt.W = 2;
  opt.num_keys = 3;
  opt.puts_per_writer = benchutil::stress_iters(150);
  opt.gets_per_reader = benchutil::stress_iters(150);
  opt.crash_servers = 1;
  opt.restart_crashed = true;
  opt.persist_dir = td.path();
  opt.seed = benchutil::stress_seed_from_env();
  opt.label = "recovery_sim_restart";
  const auto rep = run_sim_stress(opt);
  EXPECT_TRUE(rep.ok()) << rep.describe();
}

TEST(Recovery, TcpStressCrashRestartScheduleWithDurableState) {
  temp_dir td("stress_tcp");
  benchutil::stress_options opt;
  opt.protocol = "mwmr";
  opt.S = 5;
  opt.t = 1;
  opt.R = 2;
  opt.W = 2;
  opt.num_keys = 3;
  opt.puts_per_writer = benchutil::stress_iters(120);
  opt.gets_per_reader = benchutil::stress_iters(120);
  opt.crash_servers = 1;
  opt.restart_crashed = true;
  opt.persist_dir = td.path();
  opt.seed = benchutil::stress_seed_from_env();
  opt.label = "recovery_tcp_restart";
  const auto rep = run_tcp_stress(opt);
  EXPECT_TRUE(rep.ok()) << rep.describe();
  // The killed server (index 4) actually wrote durable state before the
  // restart replayed it.
  EXPECT_GT(file_size(server_durability::log_path_for(td.path(), 4)) +
                file_size(server_durability::snap_path_for(td.path(), 4)),
            0u);
}

}  // namespace
}  // namespace fastreg::persist
