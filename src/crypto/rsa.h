// Textbook RSA signatures over SHA-256 digests (hash-then-sign,
// s = H(m)^d mod n). Section 6 of the paper cites [Rivest et al. 1978]
// for writer signatures; this module provides the real-cost implementation
// used by the TCP deployment and the signature-cost benchmarks.
//
// Deliberate simplifications, documented in DESIGN.md: no PKCS#1 padding
// (the digest is numerically < n for all supported key sizes), keys are
// generated from a seeded RNG so runs are reproducible. These do not affect
// the two properties the protocol needs (Authentication, Unforgeability
// within the simulated adversary model).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "crypto/bignum.h"

namespace fastreg::crypto {

struct rsa_public_key {
  bignum n;  // modulus
  bignum e;  // public exponent
};

struct rsa_private_key {
  bignum n;
  bignum d;  // private exponent
};

struct rsa_keypair {
  rsa_public_key pub;
  rsa_private_key priv;
};

/// Generates a keypair with a modulus of exactly `bits` bits.
/// 512 is the default: big enough to exercise real multi-precision cost,
/// small enough that benches finish quickly.
[[nodiscard]] rsa_keypair rsa_generate(std::size_t bits, rng& r);

/// Signs SHA-256(payload) with the private key.
[[nodiscard]] std::vector<std::uint8_t> rsa_sign(
    const rsa_private_key& key, std::span<const std::uint8_t> payload);

/// Verifies a signature produced by rsa_sign.
[[nodiscard]] bool rsa_verify(const rsa_public_key& key,
                              std::span<const std::uint8_t> payload,
                              std::span<const std::uint8_t> signature);

}  // namespace fastreg::crypto
