// Reconfiguration plans: what a live reshard may change (shard count,
// per-shard protocol assignment) and the rules that keep a plan sound
// before the coordinator starts moving state.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "store/shard_map.h"

namespace fastreg::reconfig {

/// The requested next configuration. The server/client fleet (base) is
/// fixed for the lifetime of a deployment; reconfiguration re-routes keys
/// over it.
struct reconfig_plan {
  std::uint32_t num_shards{1};
  /// Registry names, assigned round-robin exactly like store_config.
  std::vector<std::string> shard_protocols{};

  [[nodiscard]] std::string describe() const;
};

/// Empty string when the plan may be applied on top of `cur`; otherwise a
/// human-readable reason. Rules:
///  * at least one shard and one protocol name, all known to the registry;
///  * W > 1 requires every new protocol to be multi-writer (same rule the
///    shard_map constructor enforces at deployment time);
///  * every new protocol must be feasible under the deployment's base
///    config (a reshard must not route keys onto a protocol that cannot
///    serve them);
///  * no object may switch INTO fast_bft from an unsigned protocol: its
///    migrated state would lack the writer signature fast_bft servers and
///    readers demand.
[[nodiscard]] std::string validate_plan(const store::shard_map& cur,
                                        const reconfig_plan& plan);

/// Builds the next epoch's shard map from a validated plan. Aborts on an
/// invalid plan (call validate_plan first).
[[nodiscard]] std::shared_ptr<const store::shard_map> build_next_map(
    const store::shard_map& cur, const reconfig_plan& plan);

}  // namespace fastreg::reconfig
