// E5 -- Proposition 11 / Section 7: no fast MWMR atomic register exists,
// even with W = R = 2, t = 1. Two halves:
//   (a) the run^1..run^{S+1} flip-point construction against the one-round
//       strawman ("naive_fast_mwmr"): some property P1/P2 must break;
//   (b) the correct two-phase MWMR register: linearizable, but reads AND
//       writes cost 2 round-trips -- the price Proposition 11 proves
//       unavoidable.
#include <cstdio>

#include "adversary/mwmr_lower_bound.h"
#include "benchutil/table.h"
#include "benchutil/workload.h"
#include "checker/atomicity.h"
#include "registers/registry.h"

using namespace fastreg;
using namespace fastreg::benchutil;

int main() {
  std::printf("E5: multiple writers (Section 7, Proposition 11)\n\n");

  std::printf(
      "== E5.a: the run-series construction vs two fast strawmen ==\n");
  {
    table t({"strawman", "S", "series(r1 per run)", "P1_run1", "P1_runS+1",
             "flip", "r2(run')", "r2(run'')", "verdict"});
    for (const char* name : {"naive_fast_mwmr", "naive_fast_mwmr_lww"}) {
      auto strawman = make_protocol(name);
      for (std::uint32_t S : {3u, 4u, 6u, 9u}) {
        const auto rep = adversary::run_mwmr_lower_bound(*strawman, S);
        std::string series;
        for (std::size_t i = 0; i < rep.series.size(); ++i) {
          series += (i ? "," : "") + rep.series[i];
        }
        t.add_row({name, std::to_string(S), series,
                   rep.p1_ok_run1 ? "ok" : "VIOLATED",
                   rep.p1_ok_runlast ? "ok" : "VIOLATED",
                   rep.flip_index ? std::to_string(*rep.flip_index) : "-",
                   rep.r2_run_prime ? *rep.r2_run_prime : "-",
                   rep.r2_run_doubleprime ? *rep.r2_run_doubleprime : "-",
                   rep.violation ? "NOT ATOMIC" : "atomic (bug!)"});
      }
    }
    t.print();
    std::printf(
        "expected: every row NOT ATOMIC. The wid-tiebreak strawman fails "
        "P1 outright; the last-write-wins strawman passes P1 at the "
        "endpoints, so the construction finds the flip i1 and the r2 "
        "extensions expose the P2 disagreement -- the paper's full "
        "argument.\n\n");
  }

  std::printf("== E5.b: the correct 2-phase MWMR baseline ==\n");
  {
    table t({"W", "R", "S", "t", "ops", "read_p50", "write_p50",
             "rd_rounds", "wr_rounds", "rd_traced", "wr_traced",
             "linearizable"});
    for (std::uint32_t W : {2u, 3u}) {
      system_config cfg;
      cfg.servers = 7;
      cfg.t_failures = 2;
      cfg.readers = 2;
      cfg.writers = W;
      auto proto = make_protocol("mwmr");
      // Latency is measured through writer 0 (rounds are identical for all
      // writers); multi-writer linearizability is exercised by the tests.
      // History sizes here are far past the old exponential checker's
      // 63-op cap -- the polynomial checker verifies them outright.
      workload_options opt;
      opt.num_writes = 200;
      opt.reads_per_reader = 200;
      opt.concurrent = true;
      const auto rep = run_measured(*proto, cfg, opt);
      t.add_row(
          {std::to_string(W), "2", "7", "2",
           std::to_string(rep.hist.size()), fmt(rep.read_latency.p50()),
           fmt(rep.write_latency.p50()), fmt(rep.read_rounds.mean()),
           fmt(rep.write_rounds.mean()), fmt(rep.traced.read_rounds),
           fmt(rep.traced.write_rounds),
           checker::check_mwmr_linearizable(rep.hist).ok ? "yes" : "NO"});
    }
    t.print();
    std::printf("expected: rd_rounds = wr_rounds = 2.0 -- both op types pay "
                "the second round-trip -- the traced columns (measured at "
                "the protocol's issue/ack hooks) agreeing, and every "
                "history (600 ops, checked in O(n log n)) linearizable.\n");
  }
  return 0;
}
