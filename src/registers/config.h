// System configuration (the paper's S, t, b, R, W) and the feasibility
// predicates that are the paper's headline results. These predicates are
// the ground truth every test and bench compares against.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "crypto/sig.h"

namespace fastreg {

struct system_config {
  std::uint32_t servers{3};   // S
  std::uint32_t t_failures{1};  // t: max faulty servers (crash or arbitrary)
  std::uint32_t b_malicious{0};  // b <= t: of the t, at most b malicious
  std::uint32_t readers{1};   // R
  std::uint32_t writers{1};   // W (1 except for MWMR experiments)

  /// Signature scheme shared by all automata in the run; never null for
  /// the Byzantine protocol, may be null elsewhere.
  std::shared_ptr<crypto::signature_scheme> sigs{};

  [[nodiscard]] std::uint32_t S() const { return servers; }
  [[nodiscard]] std::uint32_t t() const { return t_failures; }
  [[nodiscard]] std::uint32_t b() const { return b_malicious; }
  [[nodiscard]] std::uint32_t R() const { return readers; }
  [[nodiscard]] std::uint32_t W() const { return writers; }

  /// Quorum size every client waits for: S - t (a client cannot wait for
  /// more without risking blocking on the t faulty servers).
  [[nodiscard]] std::uint32_t quorum() const { return servers - t_failures; }

  [[nodiscard]] std::string describe() const;
};

/// Fast SWMR atomic register feasibility, crash model (paper Sections 4-5):
/// exists iff R < S/t - 2, equivalently S > (R+2)*t. The lower bound needs
/// R >= 2; R = 1 is handled by single-reader feasibility below.
[[nodiscard]] constexpr bool fast_swmr_feasible(std::uint32_t S,
                                                std::uint32_t t,
                                                std::uint32_t R) {
  return t >= 1 && S > (R + 2) * t;
}

/// Fast SWMR atomic register feasibility, arbitrary-failure model
/// (Section 6): exists iff S > (R+2)*t + (R+1)*b, i.e. R < (S+b)/(t+b) - 2.
[[nodiscard]] constexpr bool fast_bft_feasible(std::uint32_t S,
                                               std::uint32_t t,
                                               std::uint32_t b,
                                               std::uint32_t R) {
  return t >= 1 && b <= t && S > (R + 2) * t + (R + 1) * b;
}

/// Single-reader fast atomic register (Section 1): the R >= 2 lower bound
/// does not apply; the modified-ABD single-reader protocol is fast whenever
/// a majority of servers is correct.
[[nodiscard]] constexpr bool fast_single_reader_feasible(std::uint32_t S,
                                                         std::uint32_t t) {
  return 2 * t < S;
}

/// Fast *regular* SWMR register (Section 8): t < S/2, any finite R.
[[nodiscard]] constexpr bool fast_regular_feasible(std::uint32_t S,
                                                   std::uint32_t t) {
  return 2 * t < S;
}

/// Fast MWMR atomic register (Section 7, Proposition 11): never, once
/// W >= 2, R >= 2, t >= 1.
[[nodiscard]] constexpr bool fast_mwmr_feasible(std::uint32_t W,
                                                std::uint32_t R,
                                                std::uint32_t t) {
  return !(W >= 2 && R >= 2 && t >= 1);
}

/// Non-fast baselines (ABD, max-min, MWMR two-phase): majority correct.
[[nodiscard]] constexpr bool majority_feasible(std::uint32_t S,
                                               std::uint32_t t) {
  return 2 * t < S;
}

}  // namespace fastreg
