// Name-based protocol lookup used by benches, examples and parameterized
// tests.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "registers/automaton.h"

namespace fastreg {

/// Returns the protocol registered under `name`, or nullptr.
/// Known names: "fast_swmr", "fast_bft", "abd", "maxmin", "regular",
/// "single_reader", "mwmr", "naive_fast_mwmr".
[[nodiscard]] std::unique_ptr<protocol> make_protocol(const std::string& name);

/// All registered protocol names, in a stable order.
[[nodiscard]] std::vector<std::string> protocol_names();

}  // namespace fastreg
