// Result of executing a lower-bound construction against a concrete
// protocol implementation.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"

namespace fastreg::adversary {

struct construction_report {
  /// False when the configuration is inside the feasible region (the
  /// required block partition does not exist) -- the paper's bound says no
  /// schedule can break the protocol there.
  bool applicable{false};
  std::string reason{};

  /// R' -- number of readers the construction actually used.
  std::uint32_t readers_used{0};
  std::string partition{};

  /// Value returned by r_i's read in the partial run Delta-pr_i, i=1..R'.
  /// The proof forces all of these to be the written value.
  std::vector<value_t> chain{};
  /// r1's first read (run pr^A) -- the proof forces bottom.
  std::optional<value_t> read_pr_a{};
  /// r1's second read (run pr^C) -- the proof forces bottom, which
  /// contradicts r_R' having read the written value.
  std::optional<value_t> read_pr_c{};
  value_t written_value{};

  /// Empirical indistinguishability: r1 returned identical values in
  /// pr^C and in pr^D (the sibling run with no write at all).
  bool indistinguishability_ok{false};

  /// The atomicity checker's verdict on pr^C's history.
  bool violation{false};
  std::string checker_error{};

  std::vector<std::string> trace{};

  [[nodiscard]] std::string summary() const;
};

}  // namespace fastreg::adversary
