// Arbitrary-precision unsigned integers, sized for RSA key material
// (256..2048 bits). Little-endian 32-bit limbs; schoolbook multiplication
// and long division, which is ample for signature workloads at bench scale.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"

namespace fastreg::crypto {

class bignum {
 public:
  bignum() = default;
  /* implicit */ bignum(std::uint64_t v);  // NOLINT: intended conversion

  /// Big-endian byte import/export (the usual crypto wire order).
  [[nodiscard]] static bignum from_bytes(std::span<const std::uint8_t> be);
  [[nodiscard]] std::vector<std::uint8_t> to_bytes() const;

  [[nodiscard]] static bignum from_hex(const std::string& hex);
  [[nodiscard]] std::string to_hex() const;

  [[nodiscard]] bool is_zero() const { return limbs_.empty(); }
  [[nodiscard]] bool is_odd() const {
    return !limbs_.empty() && (limbs_[0] & 1) != 0;
  }
  /// Number of significant bits; 0 for zero.
  [[nodiscard]] std::size_t bit_length() const;
  [[nodiscard]] bool bit(std::size_t i) const;

  [[nodiscard]] int compare(const bignum& o) const;
  friend bool operator==(const bignum& a, const bignum& b) {
    return a.compare(b) == 0;
  }
  friend bool operator!=(const bignum& a, const bignum& b) {
    return a.compare(b) != 0;
  }
  friend bool operator<(const bignum& a, const bignum& b) {
    return a.compare(b) < 0;
  }
  friend bool operator<=(const bignum& a, const bignum& b) {
    return a.compare(b) <= 0;
  }
  friend bool operator>(const bignum& a, const bignum& b) {
    return a.compare(b) > 0;
  }
  friend bool operator>=(const bignum& a, const bignum& b) {
    return a.compare(b) >= 0;
  }

  [[nodiscard]] bignum add(const bignum& o) const;
  /// Requires *this >= o.
  [[nodiscard]] bignum sub(const bignum& o) const;
  [[nodiscard]] bignum mul(const bignum& o) const;
  /// Returns {quotient, remainder}. Requires o != 0.
  [[nodiscard]] std::pair<bignum, bignum> divmod(const bignum& o) const;
  [[nodiscard]] bignum mod(const bignum& o) const { return divmod(o).second; }
  [[nodiscard]] bignum shl(std::size_t bits) const;
  [[nodiscard]] bignum shr(std::size_t bits) const;

  /// (this ^ exp) mod m, square-and-multiply. Requires m != 0.
  [[nodiscard]] bignum modexp(const bignum& exp, const bignum& m) const;
  /// Multiplicative inverse mod m, or zero bignum if gcd(this, m) != 1.
  [[nodiscard]] bignum modinv(const bignum& m) const;
  [[nodiscard]] static bignum gcd(bignum a, bignum b);

  /// Uniform random value in [0, bound).
  [[nodiscard]] static bignum random_below(const bignum& bound, rng& r);
  /// Random value with exactly `bits` bits (top bit set).
  [[nodiscard]] static bignum random_bits(std::size_t bits, rng& r);

  /// Miller-Rabin with `rounds` random bases.
  [[nodiscard]] bool is_probable_prime(rng& r, int rounds = 32) const;
  /// Random probable prime with exactly `bits` bits.
  [[nodiscard]] static bignum random_prime(std::size_t bits, rng& r);

  [[nodiscard]] std::uint64_t low_u64() const;

 private:
  void normalize();

  std::vector<std::uint32_t> limbs_;  // little-endian, no trailing zeros
};

}  // namespace fastreg::crypto
