// Causal flight recorder: a per-node lock-free ring buffer of message
// events, each stamped with the originating operation's 64-bit trace id
// and 16-bit span (the attempt/round generation), so a post-mortem can
// reconstruct exactly which frames, on which links, in which order,
// produced a checker violation.
//
// The recorder is the capture half; src/obs/timeline.h parses, merges,
// and renders the dumps. tools/trace_merge drives both from the CLI.
//
// Cost: every hook starts with one relaxed atomic load of the global
// gate (recording_active()) and returns when recording is off — the
// same discipline as trace.h's tracing gate, and asserted the same way
// in tests. When on, a record() is one fetch_add plus eight relaxed
// stores into a preallocated slot: no locks, no allocation, no
// syscalls, safe from reactor threads.
//
// Concurrency: each 64-byte slot is a seqlock — a stamp word bracketing
// seven relaxed-atomic payload words. Writers claim slots with a single
// fetch_add on the head counter and overwrite the oldest when the ring
// wraps; dump() snapshots slots and drops any whose stamp changed
// mid-copy (torn by a concurrent overwrite). Every access is an atomic
// with explicit ordering, so concurrent record/dump is race-free under
// TSan. A dump taken while traffic is flowing is a best-effort snapshot;
// forensics dumps happen after the run quiesces and are exact.
//
// Clock domains (the contract timeline.h's merge relies on): each event
// stores trace_now() plus a one-bit domain tag from
// trace_time_overridden(). dom=sim timestamps are simulator ticks —
// globally ordered across all simulated nodes by the scheduler. dom=ns
// timestamps are steady-clock nanoseconds of the ONE process all
// net::node reactors share, so they are mutually comparable too. The
// two domains are never compared with each other.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"

namespace fastreg::obs {

// ------------------------------------------------------------ global gate --

namespace detail {
extern std::atomic<bool> recording_on;
}

/// True when the flight recorder is capturing. Initialized once from
/// FASTREG_OBS ("record" enables).
[[nodiscard]] inline bool recording_active() {
  return detail::recording_on.load(std::memory_order_relaxed);
}
[[nodiscard]] bool recording_enabled();
void set_recording(bool on);

// -------------------------------------------------------------- trace ids --

/// Fresh operation ids for the trace field of message. Never returns 0
/// (0 means untraced on the wire).
[[nodiscard]] std::uint64_t next_trace_id();

/// Thread-local trace context for paths that do not carry an explicit
/// per-op record (the raw single-register deployments): the transports
/// stamp outgoing messages whose trace is still 0 from it. The store
/// path stamps explicitly via tagging_netout and always wins.
struct trace_ctx {
  std::uint64_t trace{0};
  std::uint16_t span{0};
};
[[nodiscard]] trace_ctx current_trace_ctx();

/// Publishes a trace context for the current thread; restores the
/// previous one on destruction. The simulator wraps invoke_write/
/// invoke_read and do_step with it; net::node wraps its blocking-op
/// lambdas and drain callback.
class scoped_trace_ctx {
 public:
  scoped_trace_ctx(std::uint64_t trace, std::uint16_t span);
  ~scoped_trace_ctx();
  scoped_trace_ctx(const scoped_trace_ctx&) = delete;
  scoped_trace_ctx& operator=(const scoped_trace_ctx&) = delete;

 private:
  trace_ctx prev_;
};

// ----------------------------------------------------------------- events --

/// What happened. send/recv fire in the transports (sim envelope flush
/// and delivery; TCP frame append and drain); serve on a store server's
/// data path and seed install; nack when a server epoch-fences a
/// request; park/resume on the store client; fence when a server
/// buffers a request behind a lazy-seed fetch.
enum class rec_event : std::uint8_t {
  send = 0,
  recv = 1,
  serve = 2,
  nack = 3,
  park = 4,
  resume = 5,
  fence = 6,
};

[[nodiscard]] const char* to_string(rec_event e);

/// Wire message-type names for dump rendering, by the numeric codes of
/// registers/message.h (1..18). obs cannot link fastreg_registers (the
/// dependency points the other way), so it keeps its own table; a unit
/// test asserts parity with registers' to_string. Returns "-" for 0 or
/// out-of-range codes.
[[nodiscard]] const char* rec_msg_type_name(std::uint8_t code);

/// One decoded ring entry, oldest-first in dump order.
struct rec_entry {
  std::uint64_t t{0};        ///< trace_now() at capture
  bool sim_clock{false};     ///< t is sim ticks (else steady ns)
  std::uint64_t trace{0};
  std::uint16_t span{0};
  rec_event ev{rec_event::send};
  std::uint8_t mtype{0};     ///< msg_type numeric code; 0 = none
  process_id peer{};         ///< the other endpoint (self is the node)
  object_id obj{k_default_object};
  epoch_t epoch{k_initial_epoch};
  ts_t ts{k_initial_ts};     ///< value timestamp carried by the message
};

// --------------------------------------------------------------- recorder --

/// One node's ring. Obtain via recorder_for() and cache the reference at
/// construction time (hot paths must not take the registry lock).
class recorder {
 public:
  /// `capacity` is rounded up to a power of two, minimum 64.
  explicit recorder(std::size_t capacity);
  // Out of line: slots_ holds the private slot type, which is complete
  // only inside recorder.cc.
  ~recorder();
  recorder(const recorder&) = delete;
  recorder& operator=(const recorder&) = delete;

  /// Append one event. Lock-free; callable from any thread. The caller
  /// checks recording_active() first (keeps the off-path to one load at
  /// the call site).
  void record(rec_event ev, std::uint64_t trace, std::uint16_t span,
              std::uint8_t mtype, const process_id& peer, object_id obj,
              epoch_t epoch, ts_t ts);

  /// Decoded entries, oldest first, optionally filtered to one object.
  /// Torn slots (overwritten mid-copy) are skipped.
  [[nodiscard]] std::vector<rec_entry> entries(
      std::optional<object_id> only_obj = std::nullopt) const;

  /// Renders entries in the dump grammar timeline.h parses: one
  /// `rec node="..." dom=... t=... ...` line per event.
  [[nodiscard]] std::string dump(
      const std::string& node,
      std::optional<object_id> only_obj = std::nullopt) const;

  void reset();

  [[nodiscard]] std::size_t capacity() const;

 private:
  struct slot;
  std::vector<slot> slots_;
  std::size_t mask_;
  std::atomic<std::uint64_t> head_{0};
};

/// The named node's recorder, created on first use (ring capacity from
/// FASTREG_OBS_RING, default 4096 slots). Pointers are stable for the
/// process lifetime.
[[nodiscard]] recorder& recorder_for(const process_id& node);

/// Every registered node's dump, as (node name, dump text) pairs sorted
/// by node name. Forensics writes one file per pair.
[[nodiscard]] std::vector<std::pair<std::string, std::string>>
recorder_dump_all(std::optional<object_id> only_obj = std::nullopt);

/// Clears every registered ring (a stress run resets before its ops so a
/// failure dump holds only that run's traffic).
void recorder_reset_all();

}  // namespace fastreg::obs
