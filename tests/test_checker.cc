// The checkers themselves, validated on hand-crafted histories -- both
// legal ones and ones violating each Section 3.1 condition individually.
#include <gtest/gtest.h>

#include "checker/atomicity.h"
#include "checker/history.h"

namespace fastreg::checker {
namespace {

/// Builder for compact history literals.
struct hb {
  history h;
  std::size_t write(std::uint64_t inv, std::uint64_t resp, value_t v) {
    const auto i = h.begin_op(writer_id(0), true, inv, v);
    h.complete_write(i, resp, 1);
    return i;
  }
  std::size_t write_mw(std::uint32_t wi, std::uint64_t inv,
                       std::uint64_t resp, value_t v) {
    const auto i = h.begin_op(writer_id(wi), true, inv, v);
    h.complete_write(i, resp, 1);
    return i;
  }
  std::size_t incomplete_write(std::uint64_t inv, value_t v) {
    return h.begin_op(writer_id(0), true, inv, v);
  }
  std::size_t read(std::uint32_t ri, std::uint64_t inv, std::uint64_t resp,
                   value_t v, ts_t ts = 0, int rounds = 1) {
    const auto i = h.begin_op(reader_id(ri), false, inv);
    h.complete_read(i, resp, ts, 0, v, rounds);
    return i;
  }
};

TEST(SwmrChecker, EmptyHistoryIsAtomic) {
  history h;
  EXPECT_TRUE(check_swmr_atomicity(h).ok);
}

TEST(SwmrChecker, SequentialWriteReadIsAtomic) {
  hb b;
  b.write(1, 2, "a");
  b.read(0, 3, 4, "a", 1);
  EXPECT_TRUE(check_swmr_atomicity(b.h).ok);
}

TEST(SwmrChecker, ReadOfBottomBeforeWritesIsAtomic) {
  hb b;
  b.read(0, 1, 2, k_bottom_value);
  b.write(3, 4, "a");
  EXPECT_TRUE(check_swmr_atomicity(b.h).ok);
}

TEST(SwmrChecker, Condition1UnwrittenValue) {
  hb b;
  b.write(1, 2, "a");
  b.read(0, 3, 4, "phantom");
  const auto res = check_swmr_atomicity(b.h);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("condition 1"), std::string::npos);
}

TEST(SwmrChecker, Condition2StaleReadAfterCompletedWrite) {
  hb b;
  b.write(1, 2, "a");
  b.write(3, 4, "b");
  b.read(0, 5, 6, "a");  // must have returned "b" or later
  const auto res = check_swmr_atomicity(b.h);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("condition 2"), std::string::npos);
}

TEST(SwmrChecker, Condition3ReadFromTheFuture) {
  hb b;
  b.read(0, 1, 2, "a");   // returns a value whose write starts later
  b.write(3, 4, "a");
  const auto res = check_swmr_atomicity(b.h);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("condition 3"), std::string::npos);
}

TEST(SwmrChecker, Condition4NewOldInversion) {
  hb b;
  b.incomplete_write(1, "a");  // concurrent with both reads
  b.read(0, 2, 3, "a");
  b.read(1, 4, 5, k_bottom_value);  // succeeds the first read, older value
  const auto res = check_swmr_atomicity(b.h);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("condition 4"), std::string::npos);
}

TEST(SwmrChecker, ConcurrentReadsMayDisagree) {
  hb b;
  b.incomplete_write(1, "a");
  b.read(0, 2, 10, "a");              // overlaps the next read
  b.read(1, 3, 9, k_bottom_value);    // concurrent: no violation
  EXPECT_TRUE(check_swmr_atomicity(b.h).ok);
}

TEST(SwmrChecker, ReadConcurrentWithWriteMayReturnEither) {
  hb b;
  b.write(1, 2, "a");
  b.incomplete_write(3, "b");
  b.read(0, 4, 5, "a");
  b.read(1, 6, 7, "b");
  // Second read is newer: fine. A third read going back would violate.
  EXPECT_TRUE(check_swmr_atomicity(b.h).ok);
  b.read(0, 8, 9, "a");
  EXPECT_FALSE(check_swmr_atomicity(b.h).ok);
}

TEST(SwmrChecker, RegularAllowsInversionAtomicDoesNot) {
  hb b;
  b.incomplete_write(1, "a");
  b.read(0, 2, 3, "a");
  b.read(1, 4, 5, k_bottom_value);
  EXPECT_FALSE(check_swmr_atomicity(b.h).ok);
  EXPECT_TRUE(check_swmr_regular(b.h).ok);  // Section 8's distinction
}

TEST(SwmrChecker, RegularStillForbidsStaleAfterCompletedWrite) {
  hb b;
  b.write(1, 2, "a");
  b.read(0, 3, 4, k_bottom_value);
  EXPECT_FALSE(check_swmr_regular(b.h).ok);
}

TEST(SwmrChecker, DuplicateWriteValuesRejected) {
  hb b;
  b.write(1, 2, "same");
  b.write(3, 4, "same");
  const auto res = check_swmr_atomicity(b.h);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("unique"), std::string::npos);
}

TEST(SwmrChecker, MultiWriterHistoryRejected) {
  // The SWMR checker refuses histories with more than one writer (they
  // need the full linearizability checker instead).
  history h;
  const auto i1 = h.begin_op(writer_id(0), true, 1, "a");
  h.complete_write(i1, 2, 1);
  const auto i2 = h.begin_op(writer_id(1), true, 3, "b");
  h.complete_write(i2, 4, 1);
  const auto res = check_swmr_atomicity(h);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("more than one writer"), std::string::npos);
}

TEST(Fastness, FlagsSlowOps) {
  hb b;
  b.read(0, 1, 2, k_bottom_value, 0, /*rounds=*/2);
  EXPECT_TRUE(check_fastness(b.h, 2, 1).ok);
  EXPECT_FALSE(check_fastness(b.h, 1, 1).ok);
}

// ------------------------------------------------------- linearizability

TEST(Linearizable, SequentialHistory) {
  hb b;
  b.write_mw(0, 1, 2, "x");
  b.read(0, 3, 4, "x");
  b.write_mw(1, 5, 6, "y");
  b.read(1, 7, 8, "y");
  EXPECT_TRUE(check_linearizable(b.h).ok);
}

TEST(Linearizable, ConcurrentWritesEitherOrder) {
  hb b;
  b.write_mw(0, 1, 10, "x");
  b.write_mw(1, 2, 9, "y");
  b.read(0, 11, 12, "x");  // legal: y then x
  EXPECT_TRUE(check_linearizable(b.h).ok);
}

TEST(Linearizable, P2StyleDisagreementRejected) {
  // Both writes complete, then two sequential reads disagree on the final
  // value: Section 7's property P2 violation.
  hb b;
  b.write_mw(0, 1, 4, "one");
  b.write_mw(1, 2, 5, "two");
  b.read(0, 6, 7, "one");
  b.read(1, 8, 9, "two");
  EXPECT_FALSE(check_linearizable(b.h).ok);
}

TEST(Linearizable, ReadOfOverwrittenValueAfterBothComplete) {
  hb b;
  b.write_mw(0, 1, 2, "old");
  b.write_mw(1, 3, 4, "new");
  b.read(0, 5, 6, "old");  // precedence forces "new"
  EXPECT_FALSE(check_linearizable(b.h).ok);
}

TEST(Linearizable, IncompleteWriteMayOrMayNotTakeEffect) {
  hb b;
  b.h.begin_op(writer_id(0), true, 1, "maybe");  // never completes
  b.read(0, 2, 3, "maybe");
  EXPECT_TRUE(check_linearizable(b.h).ok);

  hb b2;
  b2.h.begin_op(writer_id(0), true, 1, "maybe");
  b2.read(0, 2, 3, k_bottom_value);
  EXPECT_TRUE(check_linearizable(b2.h).ok);
}

TEST(Linearizable, BottomThenValueOrderRespected) {
  hb b;
  b.write_mw(0, 5, 6, "x");
  b.read(0, 1, 2, k_bottom_value);  // precedes the write: fine
  EXPECT_TRUE(check_linearizable(b.h).ok);

  hb b2;
  b2.write_mw(0, 1, 2, "x");
  b2.read(0, 3, 4, k_bottom_value);  // write completed first: violation
  EXPECT_FALSE(check_linearizable(b2.h).ok);
}

TEST(Linearizable, RequiresUniqueValues) {
  hb b;
  b.write_mw(0, 1, 2, "dup");
  b.write_mw(1, 3, 4, "dup");
  EXPECT_FALSE(check_linearizable(b.h).ok);
}

// --------------------------------------- polynomial MWMR checker edges
//
// The cases the cluster reduction must get right; each is also covered
// against the exponential oracle in test_checker_differential.cc.

TEST(MwmrPoly, SequentialMultiWriterHistory) {
  hb b;
  b.write_mw(0, 1, 2, "x");
  b.read(0, 3, 4, "x");
  b.write_mw(1, 5, 6, "y");
  b.read(1, 7, 8, "y");
  EXPECT_TRUE(check_mwmr_linearizable(b.h).ok);
}

TEST(MwmrPoly, ReadConcurrentWithTheWriteItReturns) {
  // The read's whole interval may even contain the write's: valid, the
  // read linearizes just after the write.
  hb b;
  b.write_mw(0, 5, 10, "x");
  b.read(0, 1, 20, "x");
  EXPECT_TRUE(check_mwmr_linearizable(b.h).ok);
  // A second read overlapping the write from the left is fine too.
  b.read(1, 2, 7, "x");
  EXPECT_TRUE(check_mwmr_linearizable(b.h).ok);
}

TEST(MwmrPoly, ReadEntirelyBeforeItsWriteRejected) {
  hb b;
  b.read(0, 1, 2, "x");
  b.write_mw(0, 3, 4, "x");
  const auto res = check_mwmr_linearizable(b.h);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("before its write"), std::string::npos);
}

TEST(MwmrPoly, DuplicateValuesFromDifferentWritersRejectedAsInput) {
  hb b;
  b.write_mw(0, 1, 10, "dup");
  b.write_mw(1, 2, 11, "dup");
  const auto res = check_mwmr_linearizable(b.h);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("unique"), std::string::npos);
  // The message names the second writer: it is an input problem, not a
  // linearizability verdict.
  EXPECT_NE(res.error.find("w2"), std::string::npos) << res.error;
}

TEST(MwmrPoly, WritingBottomRejectedAsInput) {
  hb b;
  b.write_mw(0, 1, 2, k_bottom_value);
  const auto res = check_mwmr_linearizable(b.h);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("bottom"), std::string::npos);
}

TEST(MwmrPoly, PendingWriteMayOrMayNotTakeEffect) {
  // Unobserved pending write: ignorable, bottom reads stay legal.
  hb b;
  b.h.begin_op(writer_id(0), true, 1, "maybe");
  b.read(0, 2, 3, k_bottom_value);
  b.read(1, 4, 5, k_bottom_value);
  EXPECT_TRUE(check_mwmr_linearizable(b.h).ok);

  // Observed pending write: it takes effect; a later read may not
  // travel back to bottom.
  hb b2;
  b2.h.begin_op(writer_id(0), true, 1, "maybe");
  b2.read(0, 2, 3, "maybe");
  b2.read(1, 4, 5, k_bottom_value);
  const auto res = check_mwmr_linearizable(b2.h);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("maybe"), std::string::npos) << res.error;
}

TEST(MwmrPoly, ObservedPendingWriteOrdersAgainstCompletedWrites) {
  // "maybe" never completes but was read before "base" was re-read:
  // cluster(maybe) and cluster(base) must each precede the other.
  hb b;
  b.write_mw(0, 1, 2, "base");
  b.h.begin_op(writer_id(1), true, 3, "maybe");
  b.read(0, 4, 5, "maybe");
  b.read(1, 6, 7, "base");
  EXPECT_FALSE(check_mwmr_linearizable(b.h).ok);
}

TEST(MwmrPoly, BottomValuedInitialReads) {
  // Bottom reads before and concurrent with the first writes are legal;
  // a bottom read strictly after a completed write is not.
  hb b;
  b.read(0, 1, 2, k_bottom_value);
  b.write_mw(0, 1, 10, "x");
  b.read(1, 3, 4, k_bottom_value);  // concurrent with the write: legal
  EXPECT_TRUE(check_mwmr_linearizable(b.h).ok);

  hb b2;
  b2.write_mw(0, 1, 2, "x");
  b2.read(0, 3, 4, k_bottom_value);
  EXPECT_FALSE(check_mwmr_linearizable(b2.h).ok);
}

TEST(MwmrPoly, UnreadCompletedWritesStillOrder) {
  // Nobody reads "a" or "b", but their real-time order plus the reads
  // of "c" pin the linearization; a read of bottom after all three
  // completed must fail even with no read of a/b.
  hb b;
  b.write_mw(0, 1, 2, "a");
  b.write_mw(1, 3, 4, "b");
  b.write_mw(2, 5, 6, "c");
  b.read(0, 7, 8, "c");
  EXPECT_TRUE(check_mwmr_linearizable(b.h).ok);
  b.read(1, 9, 10, k_bottom_value);
  EXPECT_FALSE(check_mwmr_linearizable(b.h).ok);
}

TEST(MwmrPoly, ScalesFarBeyondTheOracleCap) {
  // 40,000 ops in one history: ~3 orders of magnitude past the oracle's
  // 63-op ceiling, and far past anything feasible exponentially.
  hb b;
  std::uint64_t t = 0;
  for (int round = 0; round < 10'000; ++round) {
    const auto w = static_cast<std::uint32_t>(round % 3);
    b.write_mw(w, t + 1, t + 2, "v" + std::to_string(round));
    b.read(0, t + 3, t + 4, "v" + std::to_string(round));
    ++t;
  }
  EXPECT_TRUE(check_mwmr_linearizable(b.h).ok);
  // One stale read at the end flips the verdict.
  b.read(1, t + 10, t + 11, "v0");
  EXPECT_FALSE(check_mwmr_linearizable(b.h).ok);
}

}  // namespace
}  // namespace fastreg::checker
