#include "obs/trace.h"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <utility>

#include "obs/metrics.h"

namespace fastreg::obs {

namespace detail {
std::atomic<bool> tracing_on{[] {
  const char* v = std::getenv("FASTREG_OBS");
  return v != nullptr && (std::strcmp(v, "trace") == 0 ||
                          std::strcmp(v, "1") == 0);
}()};
}  // namespace detail

bool tracing_enabled() { return trace_active(); }
void set_tracing(bool on) {
  detail::tracing_on.store(on, std::memory_order_relaxed);
}

// ------------------------------------------------------ per-thread context --

namespace {

thread_local object_id t_obj = k_default_object;
thread_local std::uint64_t t_time = 0;
thread_local bool t_time_set = false;

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

scoped_trace_object::scoped_trace_object(object_id obj) : prev_(t_obj) {
  t_obj = obj;
}
scoped_trace_object::~scoped_trace_object() { t_obj = prev_; }

object_id trace_object() { return t_obj; }

scoped_trace_time::scoped_trace_time(std::uint64_t t)
    : prev_(t_time), had_prev_(t_time_set) {
  t_time = t;
  t_time_set = true;
}
scoped_trace_time::~scoped_trace_time() {
  t_time = prev_;
  t_time_set = had_prev_;
}

std::uint64_t trace_now() { return t_time_set ? t_time : steady_ns(); }

bool trace_time_overridden() { return t_time_set; }

// ------------------------------------------------------------------ store --

namespace {

/// Retention cap for completed traces: a measurement pass drains them;
/// a forgotten-enabled run must not grow without bound.
constexpr std::size_t k_max_completed = 1u << 20;

struct trace_store {
  std::mutex mu;
  std::map<std::pair<process_id, object_id>, op_trace> open;
  std::vector<op_trace> completed;
};

trace_store& store() {
  static trace_store s;
  return s;
}

counter& drops_counter() {
  static counter& c = registry::instance().get_counter(
      "fastreg_obs_trace_drops_total");
  return c;
}

counter& restarts_counter() {
  static counter& c = registry::instance().get_counter(
      "fastreg_obs_op_restarts_total");
  return c;
}

}  // namespace

void preheat_trace_metrics() {
  (void)drops_counter();
  (void)restarts_counter();
}

void op_begin(const process_id& self, bool is_write) {
  if (!trace_active()) return;
  auto& s = store();
  std::lock_guard<std::mutex> lk(s.mu);
  auto& t = s.open[{self, trace_object()}];
  if (t.begin_t != 0 || !t.spans.empty()) restarts_counter().inc();
  t = op_trace{};
  t.self = self;
  t.obj = trace_object();
  t.is_write = is_write;
  t.begin_t = trace_now();
}

void round_issue(const process_id& self, int round) {
  if (!trace_active()) return;
  auto& s = store();
  std::lock_guard<std::mutex> lk(s.mu);
  const auto it = s.open.find({self, trace_object()});
  if (it == s.open.end()) return;
  it->second.spans.push_back({round, trace_now(), 0});
}

void round_ack(const process_id& self, int round) {
  if (!trace_active()) return;
  auto& s = store();
  std::lock_guard<std::mutex> lk(s.mu);
  const auto it = s.open.find({self, trace_object()});
  if (it == s.open.end()) return;
  for (auto& span : it->second.spans) {
    if (span.round == round && span.ack_t == 0) {
      span.ack_t = trace_now();
      break;
    }
  }
}

void op_end(const process_id& self, int rounds) {
  if (!trace_active()) return;
  auto& s = store();
  std::lock_guard<std::mutex> lk(s.mu);
  const auto it = s.open.find({self, trace_object()});
  if (it == s.open.end()) return;
  op_trace t = std::move(it->second);
  s.open.erase(it);
  t.end_t = trace_now();
  t.rounds = rounds;
  if (s.completed.size() >= k_max_completed) {
    drops_counter().inc();
    return;
  }
  s.completed.push_back(std::move(t));
}

std::vector<op_trace> take_traces() {
  auto& s = store();
  std::lock_guard<std::mutex> lk(s.mu);
  return std::exchange(s.completed, {});
}

void reset_traces() {
  auto& s = store();
  std::lock_guard<std::mutex> lk(s.mu);
  s.open.clear();
  s.completed.clear();
}

rounds_summary summarize_rounds(const std::vector<op_trace>& traces) {
  rounds_summary out;
  std::uint64_t rr = 0;
  std::uint64_t wr = 0;
  for (const auto& t : traces) {
    if (t.is_write) {
      ++out.writes;
      wr += static_cast<std::uint64_t>(t.rounds);
    } else {
      ++out.reads;
      rr += static_cast<std::uint64_t>(t.rounds);
    }
  }
  if (out.reads > 0) {
    out.read_rounds =
        static_cast<double>(rr) / static_cast<double>(out.reads);
  }
  if (out.writes > 0) {
    out.write_rounds =
        static_cast<double>(wr) / static_cast<double>(out.writes);
  }
  return out;
}

}  // namespace fastreg::obs
