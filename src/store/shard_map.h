// Key -> object -> shard -> protocol routing for the multi-object store.
//
// The store multiplexes many independent register objects over one shared
// set of server processes. Every participant derives the same routing from
// the store_config alone, with no coordination:
//
//   object id  = fnv1a64(key)           (what messages carry on the wire)
//   shard      = object id % num_shards
//   protocol   = shard_protocols[shard % shard_protocols.size()]
//
// Per-shard protocol selection lets hot read-mostly shards run fast_swmr
// while contended shards run abd/mwmr, inside one deployment.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "registers/automaton.h"

namespace fastreg::store {

struct store_config {
  /// Per-object protocol instantiation parameters (S, t, b, R, W). Every
  /// object shares the same server fleet and client population.
  system_config base{};
  std::uint32_t num_shards{1};
  /// Registry names, assigned to shards round-robin. Single-writer shard
  /// protocols require base.W() == 1 (one writer client owns every key).
  std::vector<std::string> shard_protocols{{"abd"}};

  [[nodiscard]] std::string describe() const;
};

[[nodiscard]] inline object_id key_object_id(const std::string& key) {
  return fnv1a64(key);
}

/// Resolved routing table: owns one protocol instance per shard. Immutable
/// after construction and safe to share (const) across node threads.
class shard_map {
 public:
  explicit shard_map(store_config cfg);

  [[nodiscard]] const store_config& config() const { return cfg_; }
  [[nodiscard]] std::uint32_t num_shards() const { return cfg_.num_shards; }

  [[nodiscard]] std::uint32_t shard_of_object(object_id obj) const {
    return static_cast<std::uint32_t>(obj % cfg_.num_shards);
  }
  [[nodiscard]] std::uint32_t shard_of_key(const std::string& key) const {
    return shard_of_object(key_object_id(key));
  }

  [[nodiscard]] const protocol& protocol_for_shard(std::uint32_t shard) const;
  [[nodiscard]] const protocol& protocol_for_object(object_id obj) const {
    return protocol_for_shard(shard_of_object(obj));
  }

  /// True when every shard protocol is multi-writer capable; single-writer
  /// protocols silently collapse all writers onto writer 0, so the store
  /// rejects W > 1 unless this holds.
  [[nodiscard]] bool all_multi_writer() const;

 private:
  store_config cfg_;
  std::vector<std::unique_ptr<protocol>> protos_;  // one per shard
};

}  // namespace fastreg::store
