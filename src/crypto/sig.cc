#include "crypto/sig.h"

#include "common/check.h"
#include "crypto/sha256.h"

namespace fastreg::crypto {

oracle_signature_scheme::oracle_signature_scheme(std::uint64_t seed)
    : seed_(seed) {}

std::vector<std::uint8_t> oracle_signature_scheme::key_for(
    const process_id& signer) const {
  // Derive a per-signer secret from the scheme seed. Outside code never
  // sees this value; only sign()/verify() recompute it.
  sha256 h;
  std::uint8_t material[16];
  for (int i = 0; i < 8; ++i) {
    material[i] = static_cast<std::uint8_t>(seed_ >> (8 * i));
  }
  const std::uint64_t ident =
      (static_cast<std::uint64_t>(signer.r) << 32) | signer.index;
  for (int i = 0; i < 8; ++i) {
    material[8 + i] = static_cast<std::uint8_t>(ident >> (8 * i));
  }
  h.update(std::span<const std::uint8_t>(material, sizeof material));
  const sha256::digest d = h.finish();
  return {d.begin(), d.end()};
}

std::vector<std::uint8_t> oracle_signature_scheme::sign(
    const process_id& signer, std::span<const std::uint8_t> payload) {
  sha256 h;
  const auto key = key_for(signer);
  h.update(std::span<const std::uint8_t>(key.data(), key.size()));
  h.update(payload);
  const sha256::digest d = h.finish();
  return {d.begin(), d.end()};
}

bool oracle_signature_scheme::verify(const process_id& signer,
                                     std::span<const std::uint8_t> payload,
                                     std::span<const std::uint8_t> sig) const {
  if (sig.size() != sha256::digest_size) return false;
  sha256 h;
  const auto key = key_for(signer);
  h.update(std::span<const std::uint8_t>(key.data(), key.size()));
  h.update(payload);
  const sha256::digest d = h.finish();
  return std::equal(d.begin(), d.end(), sig.begin());
}

rsa_signature_scheme::rsa_signature_scheme(std::size_t key_bits,
                                           std::uint64_t seed)
    : key_bits_(key_bits), seed_(seed) {}

const rsa_keypair& rsa_signature_scheme::keypair_for(
    const process_id& signer) const {
  auto it = keys_.find(signer);
  if (it == keys_.end()) {
    rng r(seed_ ^ (static_cast<std::uint64_t>(signer.r) << 32) ^
          signer.index);
    it = keys_.emplace(signer, rsa_generate(key_bits_, r)).first;
  }
  return it->second;
}

std::vector<std::uint8_t> rsa_signature_scheme::sign(
    const process_id& signer, std::span<const std::uint8_t> payload) {
  return rsa_sign(keypair_for(signer).priv, payload);
}

bool rsa_signature_scheme::verify(const process_id& signer,
                                  std::span<const std::uint8_t> payload,
                                  std::span<const std::uint8_t> sig) const {
  return rsa_verify(keypair_for(signer).pub, payload, sig);
}

std::unique_ptr<signature_scheme> make_signature_scheme(
    const std::string& name, std::uint64_t seed) {
  if (name == "null") return std::make_unique<null_signature_scheme>();
  if (name == "oracle") {
    return std::make_unique<oracle_signature_scheme>(seed);
  }
  if (name == "rsa") {
    return std::make_unique<rsa_signature_scheme>(512, seed);
  }
  FASTREG_CHECK(false && "unknown signature scheme");
  return nullptr;
}

}  // namespace fastreg::crypto
