// E7 -- the paper's summary (Section 9) as one table: for a grid of
// (S, t, b, R), compare
//   theory   : the exact feasibility predicates,
//   measured : randomized stress inside the region (atomicity must hold,
//              every op 1 round-trip) and the executable lower-bound
//              construction outside it (must produce a violation).
// Any disagreement between the two columns is a reproduction failure.
#include <cstdio>

#include "adversary/bft_lower_bound.h"
#include "adversary/swmr_lower_bound.h"
#include "benchutil/table.h"
#include "checker/atomicity.h"
#include "crypto/sig.h"
#include "registers/registry.h"
#include "sim/world.h"

using namespace fastreg;

namespace {

/// Randomized stress inside the feasible region; returns true if atomic
/// and fast across all seeds.
bool stress_ok(const protocol& proto, const system_config& cfg,
               int seeds = 5) {
  for (int seed = 1; seed <= seeds; ++seed) {
    sim::world w(cfg);
    w.install(proto);
    rng r(static_cast<std::uint64_t>(seed) * 7919);
    std::uint32_t writes = 0;
    std::vector<std::uint32_t> reads(cfg.R(), 0);
    for (;;) {
      bool more = false;
      if (writes < 6 && !w.writer(0)->write_in_progress()) {
        w.invoke_write("v" + std::to_string(++writes));
        more = true;
      }
      for (std::uint32_t i = 0; i < cfg.R(); ++i) {
        if (reads[i] < 6 && !w.reader(i)->read_in_progress()) {
          ++reads[i];
          w.invoke_read(i);
          more = true;
        }
      }
      if (!w.in_transit().empty()) {
        const auto& ms = w.in_transit();
        w.deliver(ms[r.below(ms.size())].id);
        more = true;
      }
      if (!more) break;
    }
    if (!checker::check_swmr_atomicity(w.hist()).ok) return false;
    if (!checker::check_fastness(w.hist(), 1, 1).ok) return false;
  }
  return true;
}

}  // namespace

int main() {
  std::printf("E7: the feasibility threshold, theory vs measured "
              "(Section 9 summary)\n\n");
  benchutil::table t({"S", "t", "b", "R", "theory", "measured", "agree"});
  int disagreements = 0;
  struct c4 {
    std::uint32_t S, t, b, R;
  };
  const c4 grid[] = {
      // crash-model boundary pairs around S = (R+2)t
      {9, 2, 0, 2},  {8, 2, 0, 2},  {13, 3, 0, 2}, {12, 3, 0, 2},
      {11, 2, 0, 3}, {10, 2, 0, 3}, {7, 1, 0, 4},  {6, 1, 0, 4},
      // byzantine boundary pairs around S = (R+2)t + (R+1)b
      {12, 2, 1, 2}, {11, 2, 1, 2}, {15, 2, 2, 2}, {14, 2, 2, 2},
      {19, 3, 2, 2}, {18, 3, 2, 2}, {16, 2, 1, 3}, {13, 2, 1, 3},
  };
  for (const auto c : grid) {
    system_config cfg;
    cfg.servers = c.S;
    cfg.t_failures = c.t;
    cfg.b_malicious = c.b;
    cfg.readers = c.R;
    const bool byz = c.b > 0;
    cfg.sigs = crypto::make_signature_scheme("oracle");
    auto proto = make_protocol(byz ? "fast_bft" : "fast_swmr");
    const bool theory = byz ? fast_bft_feasible(c.S, c.t, c.b, c.R)
                            : fast_swmr_feasible(c.S, c.t, c.R);
    bool measured;
    std::string measured_str;
    if (theory) {
      measured = stress_ok(*proto, cfg);
      measured_str = measured ? "stress: atomic+fast" : "stress: FAILED";
    } else {
      const auto rep = byz ? adversary::run_bft_lower_bound(*proto, cfg)
                           : adversary::run_swmr_lower_bound(*proto, cfg);
      measured = !(rep.applicable && rep.violation);
      measured_str = rep.violation ? "adversary: violation"
                                   : "adversary: no violation(!)";
    }
    const bool agree = theory == measured;
    if (!agree) ++disagreements;
    t.add_row({std::to_string(c.S), std::to_string(c.t), std::to_string(c.b),
               std::to_string(c.R), theory ? "fast possible" : "impossible",
               measured_str, agree ? "yes" : "NO"});
  }
  t.print();
  std::printf("\nR < (S+b)/(t+b) - 2 <=> S > (R+2)t + (R+1)b; crash model is "
              "b = 0. disagreements: %d\n",
              disagreements);
  return disagreements == 0 ? 0 : 1;
}
