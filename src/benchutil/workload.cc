#include "benchutil/workload.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "sim/world.h"
#include "store/async_client.h"
#include "store/sim_store.h"

namespace fastreg::benchutil {

latency_report run_measured(const protocol& proto, const system_config& cfg,
                            const workload_options& opt) {
  sim::world w(cfg);
  w.install(proto);
  rng r(opt.seed);
  sim::uniform_delay delays(opt.delay_lo, opt.delay_hi);

  // Trace the whole run so the report's rounds column is MEASURED at the
  // protocol's issue/ack hooks, not trusted from completion records.
  const bool was_tracing = obs::tracing_enabled();
  obs::set_tracing(true);
  obs::reset_traces();

  FASTREG_EXPECTS(opt.crash_servers <= cfg.t());
  if (!opt.crash_midway) {
    for (std::uint32_t i = 0; i < opt.crash_servers; ++i) {
      w.crash(server_id(i));
    }
  }

  std::uint32_t writes_invoked = 0;
  std::vector<std::uint32_t> reads_invoked(cfg.R(), 0);
  bool crashed_midway = false;
  std::uint64_t guard = 0;

  auto idle = [&](const process_id& p) { return !w.client_busy(p); };
  auto anything_in_flight = [&] {
    if (w.writer(0)->write_in_progress()) return true;
    for (std::uint32_t i = 0; i < cfg.R(); ++i) {
      if (w.reader(i)->read_in_progress()) return true;
    }
    return false;
  };

  for (;;) {
    FASTREG_CHECK(++guard < 100'000'000);
    if (opt.crash_midway && !crashed_midway &&
        writes_invoked >= opt.num_writes / 2) {
      crashed_midway = true;
      for (std::uint32_t i = 0; i < opt.crash_servers; ++i) {
        // Torn crash: the next send burst of each victim is truncated.
        w.crash_after_sends(server_id(i), 1);
      }
    }

    bool invoked = false;
    const bool allow_invoke = opt.concurrent || !anything_in_flight();
    if (allow_invoke) {
      if (writes_invoked < opt.num_writes && idle(writer_id(0))) {
        ++writes_invoked;
        w.invoke_write("v" + std::to_string(writes_invoked));
        invoked = true;
      }
      for (std::uint32_t i = 0; i < cfg.R(); ++i) {
        if (!opt.concurrent && (invoked || anything_in_flight())) break;
        if (reads_invoked[i] < opt.reads_per_reader && idle(reader_id(i))) {
          ++reads_invoked[i];
          w.invoke_read(i);
          invoked = true;
        }
      }
    }

    if (w.in_transit().empty()) {
      if (invoked) continue;
      break;  // drained and nothing more to start
    }
    w.run_timed(r, delays, /*max_steps=*/1);
  }

  latency_report rep;
  rep.traced = obs::summarize_rounds(obs::take_traces());
  obs::set_tracing(was_tracing);
  rep.hist = w.hist();
  std::uint64_t completed = 0;
  for (const auto& op : rep.hist.ops()) {
    if (!op.response_time) {
      rep.all_complete = false;
      continue;
    }
    ++completed;
    const double lat =
        static_cast<double>(*op.response_time - op.invoke_time);
    if (op.is_write) {
      rep.write_latency.add(lat);
      rep.write_rounds.add(op.rounds);
    } else {
      rep.read_latency.add(lat);
      rep.read_rounds.add(op.rounds);
    }
  }
  rep.msgs_per_op =
      completed == 0 ? 0
                     : static_cast<double>(w.messages_sent()) /
                           static_cast<double>(completed);
  return rep;
}

// ------------------------------------------------------- multi-key store --

zipf_sampler::zipf_sampler(std::uint32_t n, double s) {
  FASTREG_EXPECTS(n >= 1);
  FASTREG_EXPECTS(s >= 0.0);
  cdf_.reserve(n);
  double total = 0.0;
  for (std::uint32_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k) + 1.0, s);
    cdf_.push_back(total);
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding leaving the last bin short
}

std::uint32_t zipf_sampler::sample(rng& r) const {
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), r.uniform01());
  return static_cast<std::uint32_t>(it - cdf_.begin());
}

double zipf_sampler::probability(std::uint32_t k) const {
  FASTREG_EXPECTS(k < cdf_.size());
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

std::vector<std::string> sample_distinct_keys_zipf(rng& r,
                                                   const zipf_sampler& zipf,
                                                   std::uint32_t k) {
  FASTREG_EXPECTS(k <= zipf.n());
  std::vector<std::uint32_t> picked;
  picked.reserve(k);
  std::uint64_t guard = 0;
  while (picked.size() < k) {
    // Rejection keeps the marginal distribution Zipf conditioned on
    // distinctness; the guard bounds pathological streaks (k <= n makes
    // progress certain in expectation).
    FASTREG_CHECK(++guard < 10'000ull * (k + 1ull));
    const auto pick = zipf.sample(r);
    if (std::find(picked.begin(), picked.end(), pick) == picked.end()) {
      picked.push_back(pick);
    }
  }
  std::vector<std::string> keys;
  keys.reserve(k);
  for (const auto rank : picked) {
    keys.push_back("key" + std::to_string(rank));
  }
  return keys;
}

std::vector<std::string> sample_distinct_keys(rng& r,
                                              std::vector<std::uint32_t>& idx,
                                              std::uint32_t k) {
  FASTREG_EXPECTS(k <= idx.size());
  std::vector<std::string> keys;
  keys.reserve(k);
  for (std::uint32_t i = 0; i < k; ++i) {
    const auto j =
        i + static_cast<std::uint32_t>(r.below(idx.size() - i));
    std::swap(idx[i], idx[j]);
    keys.push_back("key" + std::to_string(idx[i]));
  }
  return keys;
}

store_report run_store_measured(const store::store_config& cfg,
                                const store_workload_options& opt) {
  FASTREG_EXPECTS(opt.num_keys >= 1);
  store::sim_store s(cfg);
  rng r(opt.seed);
  sim::uniform_delay delays(opt.delay_lo, opt.delay_hi);
  const std::uint32_t batch = std::min(std::max(opt.batch, 1u), opt.num_keys);

  const auto& base = cfg.base;
  // One pipelined session per client through the unified front-end,
  // window = batch: a full batch is admitted back-to-back and pump()
  // issues it in ONE invocation step (batched envelopes), the same wire
  // shape the old invoke_*_batch drivers produced.
  store::sim_frontend fe(s, r);
  std::vector<std::unique_ptr<store::async_session>> wses, rses;
  for (std::uint32_t j = 0; j < base.W(); ++j) {
    wses.push_back(fe.open_session(writer_id(j), batch));
  }
  for (std::uint32_t i = 0; i < base.R(); ++i) {
    rses.push_back(fe.open_session(reader_id(i), batch));
  }
  std::vector<std::uint32_t> gets_left(base.R(), opt.gets_per_reader);
  std::vector<std::uint32_t> puts_left(base.W(), opt.puts_per_writer);
  std::vector<std::uint64_t> put_seq(base.W(), 0);
  std::vector<std::uint32_t> idx(opt.num_keys);
  for (std::uint32_t i = 0; i < opt.num_keys; ++i) idx[i] = i;
  const zipf_sampler zipf(opt.num_keys,
                          opt.dist == key_dist::zipf ? opt.zipf_s : 0.0);
  auto pick_keys = [&](std::uint32_t k) {
    return opt.dist == key_dist::zipf
               ? sample_distinct_keys_zipf(r, zipf, k)
               : sample_distinct_keys(r, idx, k);
  };
  std::uint64_t guard = 0;

  for (;;) {
    FASTREG_CHECK(++guard < 100'000'000);
    bool invoked = false;
    for (std::uint32_t j = 0; j < base.W(); ++j) {
      auto& ses = *wses[j];
      ses.pump();  // harvest, so in_flight() reflects completions
      (void)ses.take_results();
      if (puts_left[j] == 0 || ses.in_flight() != 0) continue;
      const auto k = std::min(batch, puts_left[j]);
      for (auto& key : pick_keys(k)) {
        const auto st = ses.try_put(
            key, "w" + std::to_string(j) + ":" + std::to_string(++put_seq[j]));
        FASTREG_CHECK(st == store::submit_status::submitted);
      }
      ses.pump();  // one invoke step for the whole batch
      puts_left[j] -= k;
      invoked = true;
    }
    for (std::uint32_t i = 0; i < base.R(); ++i) {
      auto& ses = *rses[i];
      ses.pump();
      (void)ses.take_results();
      if (gets_left[i] == 0 || ses.in_flight() != 0) continue;
      const auto k = std::min(batch, gets_left[i]);
      for (auto& key : pick_keys(k)) {
        const auto st = ses.try_get(key);
        FASTREG_CHECK(st == store::submit_status::submitted);
      }
      ses.pump();
      gets_left[i] -= k;
      invoked = true;
    }
    if (s.world().in_transit().empty()) {
      if (invoked) continue;
      break;  // drained and every quota exhausted
    }
    s.run_timed(r, delays, /*max_steps=*/1);
  }

  store_report rep;
  rep.hist = s.histories();
  std::uint64_t completed = 0;
  for (const auto& [key, h] : rep.hist.all()) {
    for (const auto& op : h.ops()) {
      if (!op.response_time) {
        rep.all_complete = false;
        continue;
      }
      ++completed;
      const double lat =
          static_cast<double>(*op.response_time - op.invoke_time);
      if (op.is_write) {
        rep.put_latency.add(lat);
      } else {
        rep.get_latency.add(lat);
      }
    }
  }
  if (completed > 0) {
    const auto n = static_cast<double>(completed);
    rep.msgs_per_op = static_cast<double>(s.world().messages_sent()) / n;
    rep.envelopes_per_op =
        static_cast<double>(s.world().envelopes_sent()) / n;
    if (s.world().now() > 0) {
      rep.ops_per_ktick = n * 1000.0 / static_cast<double>(s.world().now());
    }
  }
  return rep;
}

}  // namespace fastreg::benchutil
