// Signature-scheme abstraction used by the Byzantine-tolerant register
// (Figure 5). The protocol only relies on the two properties of Section 6:
//
//   Property 1 (Authentication): readers can check that a value returned by
//   a server was in fact written by the writer.
//   Property 2 (Unforgeability): it is impossible to forge the writer's
//   signature.
//
// Three interchangeable implementations:
//   * null_signature_scheme   -- no-op; for crash-model protocols.
//   * oracle_signature_scheme -- keyed-hash oracle; exact unforgeability
//     within the process, negligible cost. Default for simulations.
//   * rsa_signature_scheme    -- real RSA over SHA-256; for TCP runs and
//     signature-cost measurements.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "crypto/rsa.h"

namespace fastreg::crypto {

class signature_scheme {
 public:
  virtual ~signature_scheme() = default;

  /// Produces `signer`'s signature over `payload`. In a real deployment only
  /// the holder of `signer`'s private key can do this; protocol code must
  /// only ever call sign() for the process it is running as.
  [[nodiscard]] virtual std::vector<std::uint8_t> sign(
      const process_id& signer, std::span<const std::uint8_t> payload) = 0;

  /// Checks that `sig` is `signer`'s signature over `payload`.
  [[nodiscard]] virtual bool verify(
      const process_id& signer, std::span<const std::uint8_t> payload,
      std::span<const std::uint8_t> sig) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Always-valid scheme for protocols that do not use signatures.
class null_signature_scheme final : public signature_scheme {
 public:
  [[nodiscard]] std::vector<std::uint8_t> sign(
      const process_id&, std::span<const std::uint8_t>) override {
    return {};
  }
  [[nodiscard]] bool verify(const process_id&, std::span<const std::uint8_t>,
                            std::span<const std::uint8_t>) const override {
    return true;
  }
  [[nodiscard]] std::string name() const override { return "null"; }
};

/// Keyed-hash oracle: sig = SHA-256(secret_key[signer] || payload).
/// Per-signer secrets derive from the seed, so runs are reproducible.
/// Byzantine automata in our test harness only access verify(), which models
/// unforgeability exactly (they cannot produce a digest without the secret).
class oracle_signature_scheme final : public signature_scheme {
 public:
  explicit oracle_signature_scheme(std::uint64_t seed = 42);

  [[nodiscard]] std::vector<std::uint8_t> sign(
      const process_id& signer,
      std::span<const std::uint8_t> payload) override;
  [[nodiscard]] bool verify(const process_id& signer,
                            std::span<const std::uint8_t> payload,
                            std::span<const std::uint8_t> sig) const override;
  [[nodiscard]] std::string name() const override { return "oracle"; }

 private:
  [[nodiscard]] std::vector<std::uint8_t> key_for(
      const process_id& signer) const;

  std::uint64_t seed_;
};

/// Real RSA signatures. Keys are generated lazily per signer from the seed.
class rsa_signature_scheme final : public signature_scheme {
 public:
  explicit rsa_signature_scheme(std::size_t key_bits = 512,
                                std::uint64_t seed = 42);

  [[nodiscard]] std::vector<std::uint8_t> sign(
      const process_id& signer,
      std::span<const std::uint8_t> payload) override;
  [[nodiscard]] bool verify(const process_id& signer,
                            std::span<const std::uint8_t> payload,
                            std::span<const std::uint8_t> sig) const override;
  [[nodiscard]] std::string name() const override { return "rsa"; }

 private:
  const rsa_keypair& keypair_for(const process_id& signer) const;

  std::size_t key_bits_;
  std::uint64_t seed_;
  mutable std::unordered_map<process_id, rsa_keypair> keys_;
};

/// Factory by name ("null" | "oracle" | "rsa"), used by benches/examples.
[[nodiscard]] std::unique_ptr<signature_scheme> make_signature_scheme(
    const std::string& name, std::uint64_t seed = 42);

}  // namespace fastreg::crypto
