// The sharded multi-object store: routing, batching, per-key atomicity
// under random schedules, every registry protocol as a shard protocol,
// and the TCP deployment.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "benchutil/workload.h"
#include "crypto/sig.h"
#include "registers/registry.h"
#include "store/shard_map.h"
#include "store/sim_store.h"
#include "store/tcp_store.h"

namespace fastreg::store {
namespace {

store_config small_cfg(std::vector<std::string> protos,
                       std::uint32_t num_shards = 2, std::uint32_t R = 2,
                       std::uint32_t S = 7, std::uint32_t t = 1) {
  store_config cfg;
  cfg.base.servers = S;
  cfg.base.t_failures = t;
  cfg.base.readers = R;
  cfg.base.writers = 1;
  cfg.num_shards = num_shards;
  cfg.shard_protocols = std::move(protos);
  return cfg;
}

// -------------------------------------------------------------- shard map

TEST(ShardMap, RoutingIsDeterministicAndInRange) {
  shard_map m(small_cfg({"abd", "fast_swmr"}, /*num_shards=*/4));
  for (int i = 0; i < 100; ++i) {
    const auto key = "key" + std::to_string(i);
    const auto s = m.shard_of_key(key);
    EXPECT_LT(s, 4u);
    EXPECT_EQ(s, m.shard_of_key(key));  // stable
    EXPECT_EQ(s, m.shard_of_object(key_object_id(key)));
  }
}

TEST(ShardMap, ProtocolsAssignedRoundRobin) {
  shard_map m(small_cfg({"abd", "fast_swmr"}, /*num_shards=*/4));
  EXPECT_EQ(m.protocol_for_shard(0).name(), "abd");
  EXPECT_EQ(m.protocol_for_shard(1).name(), "fast_swmr");
  EXPECT_EQ(m.protocol_for_shard(2).name(), "abd");
  EXPECT_EQ(m.protocol_for_shard(3).name(), "fast_swmr");
}

TEST(ShardMap, KeysSpreadAcrossShards) {
  shard_map m(small_cfg({"abd"}, /*num_shards=*/4));
  std::set<std::uint32_t> hit;
  for (int i = 0; i < 64; ++i) {
    hit.insert(m.shard_of_key("key" + std::to_string(i)));
  }
  EXPECT_EQ(hit.size(), 4u);  // 64 uniform keys miss a shard w.p. ~1e-7
}

TEST(ShardMapDeath, SingleWriterShardsRejectMultipleWriters) {
  auto cfg = small_cfg({"abd"});
  cfg.base.writers = 2;
  EXPECT_DEATH(shard_map{cfg}, "precondition");
}

TEST(ShardMap, MwmrShardsAcceptMultipleWriters) {
  auto cfg = small_cfg({"mwmr"});
  cfg.base.writers = 2;
  shard_map m(cfg);
  EXPECT_TRUE(m.all_multi_writer());
}

// ------------------------------------------------------------- sim store

TEST(SimStore, PutThenGetRoundTrips) {
  sim_store s(small_cfg({"fast_swmr", "abd"}, 4));
  rng r(1);
  sim::uniform_delay d(50, 150);
  s.invoke_put(0, "alpha", "1");
  s.invoke_put(0, "beta", "2");
  s.run_timed(r, d);
  ASSERT_TRUE(s.idle());
  s.invoke_get(0, "alpha");
  s.invoke_get(1, "beta");
  s.run_timed(r, d);
  ASSERT_TRUE(s.idle());
  const auto& hist = s.histories();
  EXPECT_EQ(hist.key_count(), 2u);
  EXPECT_TRUE(hist.all_complete());
  const auto& alpha_reads = hist.all().at("alpha").completed_reads();
  ASSERT_EQ(alpha_reads.size(), 1u);
  EXPECT_EQ(alpha_reads[0].val, "1");
  const auto& beta_reads = hist.all().at("beta").completed_reads();
  ASSERT_EQ(beta_reads.size(), 1u);
  EXPECT_EQ(beta_reads[0].val, "2");
  EXPECT_TRUE(hist.verify().ok);
}

TEST(SimStore, ShardProtocolDictatesReadRounds) {
  // One shard per protocol: keys on the abd shard must take 2 round
  // trips, keys on the fast_swmr shard 1.
  sim_store s(small_cfg({"fast_swmr", "abd"}, 2));
  rng r(2);
  sim::uniform_delay d(100, 100);
  // Find one key per shard.
  std::string fast_key, abd_key;
  for (int i = 0; fast_key.empty() || abd_key.empty(); ++i) {
    const auto key = "key" + std::to_string(i);
    (s.shards()->shard_of_key(key) == 0 ? fast_key : abd_key) = key;
  }
  s.invoke_put(0, fast_key, "f");
  s.invoke_put(0, abd_key, "a");
  s.run_timed(r, d);
  s.invoke_get(0, fast_key);
  s.invoke_get(0, abd_key);
  s.run_timed(r, d);
  ASSERT_TRUE(s.idle());
  const auto fast_reads = s.histories().all().at(fast_key).completed_reads();
  const auto abd_reads = s.histories().all().at(abd_key).completed_reads();
  ASSERT_EQ(fast_reads.size(), 1u);
  ASSERT_EQ(abd_reads.size(), 1u);
  EXPECT_EQ(fast_reads[0].rounds, 1);
  EXPECT_EQ(abd_reads[0].rounds, 2);
}

TEST(SimStore, ConcurrentOverlappingKeysLinearizePerKey) {
  // Concurrent gets/puts on overlapping keys under the aggressive random
  // schedule; every demuxed per-object history must linearize.
  for (const std::uint64_t seed : {11ull, 22ull, 33ull, 44ull}) {
    sim_store s(small_cfg({"fast_swmr", "abd"}, 4, /*R=*/3));
    rng r(seed);
    const std::vector<std::string> keys = {"a", "b", "c", "d", "e"};
    std::uint32_t puts_left = 20;
    std::vector<std::uint32_t> gets_left(3, 15);
    std::uint64_t put_seq = 0;
    std::uint64_t guard = 0;
    for (;;) {
      ASSERT_LT(++guard, 1'000'000u);
      const bool can_put =
          puts_left > 0 && !s.writer_client(0).op_in_progress();
      bool can_get = false;
      for (std::uint32_t i = 0; i < 3; ++i) {
        can_get = can_get || (gets_left[i] > 0 &&
                              !s.reader_client(i).op_in_progress());
      }
      const bool can_deliver = !s.world().in_transit().empty();
      if (!can_put && !can_get && !can_deliver) break;
      const auto dice = r.below(8);
      if (dice == 0 && can_put) {
        --puts_left;
        s.invoke_put(0, keys[r.below(keys.size())],
                     "v" + std::to_string(++put_seq));
        continue;
      }
      if (dice == 1 && can_get) {
        const auto i = static_cast<std::uint32_t>(r.below(3));
        if (gets_left[i] > 0 && !s.reader_client(i).op_in_progress()) {
          --gets_left[i];
          s.invoke_get(i, keys[r.below(keys.size())]);
        }
        continue;
      }
      if (can_deliver) s.run_random(r, 1);
    }
    EXPECT_TRUE(s.histories().all_complete());
    const auto res = s.histories().verify();
    EXPECT_TRUE(res.ok) << "seed " << seed << ": " << res.error;
  }
}

TEST(SimStore, PipelinedBatchesCoalesceEnvelopes) {
  store_config cfg = small_cfg({"fast_swmr"}, 1, /*R=*/1);
  sim_store s(cfg);
  rng r(3);
  sim::uniform_delay d(50, 150);
  const std::vector<std::string> keys = {"k0", "k1", "k2", "k3",
                                         "k4", "k5", "k6", "k7"};
  std::vector<store_op> puts, gets;
  for (const auto& k : keys) {
    puts.push_back(store_op{k, /*is_put=*/true, "v:" + k});
    gets.push_back(store_op{k, /*is_put=*/false, {}});
  }
  s.invoke_ops(writer_id(0), puts);
  s.run_timed(r, d);
  s.invoke_ops(reader_id(0), gets);
  s.run_timed(r, d);
  ASSERT_TRUE(s.idle());
  EXPECT_TRUE(s.histories().all_complete());
  EXPECT_TRUE(s.histories().verify().ok);
  // 8 ops per direction shared each envelope: far fewer envelopes than
  // messages. Request legs alone save 7/8 of the transport units.
  EXPECT_LT(s.world().envelopes_sent() * 4, s.world().messages_sent());
  // And pipelining is visible in the histories: the 8 gets overlap.
  for (const auto& [key, h] : s.histories().all()) {
    EXPECT_EQ(h.size(), 2u) << key;
  }
}

TEST(SimStore, WorldForkClonesStoreAutomata) {
  sim_store s(small_cfg({"abd"}, 2));
  rng r(5);
  s.invoke_put(0, "x", "1");
  // Mid-flight fork: both branches must independently complete the op.
  auto forked = s.world().fork();
  s.run_random(r, 100);
  rng r2(6);
  forked.run_random(r2, 100);
  EXPECT_TRUE(s.idle());
  EXPECT_TRUE(forked.in_transit().empty());
}

// ----------------------------------------- every protocol as a shard

class StoreEveryProtocol : public ::testing::TestWithParam<std::string> {};

TEST_P(StoreEveryProtocol, RandomWorkloadLinearizesPerKey) {
  const auto name = GetParam();
  store_config cfg;
  // S=8, t=1, b=1, R=1, W=1 is inside every protocol's feasible region,
  // and the single reader keeps single_reader valid as a shard protocol.
  cfg.base.servers = 8;
  cfg.base.t_failures = 1;
  cfg.base.b_malicious = 1;
  cfg.base.readers = 1;
  cfg.base.writers = 1;
  cfg.base.sigs = crypto::make_signature_scheme("oracle", /*seed=*/99);
  cfg.num_shards = 2;
  cfg.shard_protocols = {name};
  sim_store s(cfg);
  ASSERT_TRUE(
      store_protocol(cfg).feasible(cfg.base))
      << name << " infeasible under " << cfg.describe();

  rng r(fnv1a64(name));
  const std::vector<std::string> keys = {"p", "q", "r"};
  std::uint32_t puts_left = 8, gets_left = 8;
  std::uint64_t seq = 0, guard = 0;
  for (;;) {
    ASSERT_LT(++guard, 1'000'000u);
    const bool can_put =
        puts_left > 0 && !s.writer_client(0).op_in_progress();
    const bool can_get =
        gets_left > 0 && !s.reader_client(0).op_in_progress();
    const bool can_deliver = !s.world().in_transit().empty();
    if (!can_put && !can_get && !can_deliver) break;
    const auto dice = r.below(8);
    if (dice == 0 && can_put) {
      --puts_left;
      s.invoke_put(0, keys[r.below(keys.size())],
                   "v" + std::to_string(++seq));
      continue;
    }
    if (dice == 1 && can_get) {
      --gets_left;
      s.invoke_get(0, keys[r.below(keys.size())]);
      continue;
    }
    if (can_deliver) s.run_random(r, 1);
  }
  EXPECT_TRUE(s.histories().all_complete()) << name;
  const auto res = s.histories().verify();
  EXPECT_TRUE(res.ok) << name << ": " << res.error;
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, StoreEveryProtocol,
                         ::testing::ValuesIn(protocol_names()),
                         [](const auto& info) { return info.param; });

// -------------------------------------------------------- workload driver

TEST(StoreWorkload, ClosedLoopCompletesAndLinearizes) {
  store_config cfg = small_cfg({"fast_swmr", "abd"}, 4, /*R=*/3);
  benchutil::store_workload_options opt;
  opt.num_keys = 12;
  opt.gets_per_reader = 24;
  opt.puts_per_writer = 12;
  opt.batch = 4;
  const auto rep = benchutil::run_store_measured(cfg, opt);
  EXPECT_TRUE(rep.all_complete);
  EXPECT_EQ(rep.hist.total_ops(), 3u * 24u + 12u);
  EXPECT_TRUE(rep.hist.verify().ok);
  EXPECT_GT(rep.ops_per_ktick, 0.0);
  // Batching: pipelined ops share envelopes.
  EXPECT_LT(rep.envelopes_per_op, rep.msgs_per_op);
}

// ----------------------------------------- lazy-fetch overflow counter

namespace {

/// netout capturing everything a directly-driven automaton sends.
struct capture_netout final : netout {
  std::vector<std::pair<process_id, message>> sent;
  void send(const process_id& to, message m) override {
    sent.emplace_back(to, std::move(m));
  }
  std::size_t count(msg_type t) const {
    std::size_t n = 0;
    for (const auto& [to, m] : sent) n += m.type == t ? 1 : 0;
    return n;
  }
};

}  // namespace

TEST(StoreServer, FetchBufferOverflowNackIsCountedAndObservable) {
  // A moved, un-seeded object buffers current-epoch client data behind a
  // lazy seed fetch; the 65th message overflows the 64-slot buffer and
  // is nacked, parking a client that only the NEXT reconfiguration
  // resumes. The ROADMAP-flagged gap: that state used to be invisible.
  // It must now bump the server's counter (and log an alarm).
  const auto cfg0 = small_cfg({"abd"}, /*num_shards=*/1, /*R=*/2, /*S=*/5);
  auto cfg1 = cfg0;
  cfg1.shard_protocols = {"fast_swmr"};  // name change: every object moves
  server s(std::make_shared<const shard_map>(cfg0), /*index=*/0);
  s.install_map(std::make_shared<const shard_map>(cfg1, /*epoch=*/1));

  const object_id obj = key_object_id("parked");
  capture_netout net;
  for (std::uint32_t i = 0; i < 64; ++i) {
    message m;
    m.type = msg_type::read_req;
    m.obj = obj;
    m.epoch = 1;
    m.attempt = i;
    s.on_message(net, reader_id(0), m);
    EXPECT_EQ(s.fetch_overflow_nacks(), 0u) << "message " << i;
  }
  // 64 buffered messages, no nacks yet; the first message fanned the
  // fetch_req out to the 4 peers.
  EXPECT_EQ(net.count(msg_type::epoch_nack), 0u);
  EXPECT_EQ(net.count(msg_type::fetch_req), 4u);

  message overflow;
  overflow.type = msg_type::read_req;
  overflow.obj = obj;
  overflow.epoch = 1;
  overflow.attempt = 64;
  s.on_message(net, reader_id(1), overflow);
  EXPECT_EQ(s.fetch_overflow_nacks(), 1u);
  EXPECT_EQ(net.count(msg_type::epoch_nack), 1u);
  // The nack went to the overflowing client, tagged with its attempt so
  // the client recognizes (and parks on) it.
  const auto& [to, nack] = net.sent.back();
  EXPECT_EQ(to, reader_id(1));
  EXPECT_EQ(nack.type, msg_type::epoch_nack);
  EXPECT_EQ(nack.attempt, 64u);

  // Messages for a DIFFERENT object still run their own fetch; the
  // counter is cumulative across objects.
  message other;
  other.type = msg_type::read_req;
  other.obj = key_object_id("other");
  other.epoch = 1;
  s.on_message(net, reader_id(0), other);
  EXPECT_EQ(s.fetch_overflow_nacks(), 1u);
}

// -------------------------------------------------------------- TCP store

TEST(TcpStore, PutGetAndMultiGetOverSockets) {
  tcp_store ts(small_cfg({"fast_swmr", "abd"}, 4, /*R=*/2, /*S=*/5));
  ts.start();
  ASSERT_TRUE(ts.put(0, "alpha", "a1"));
  ASSERT_TRUE(ts.put(0, "beta", "b1"));
  const auto a = ts.get(0, "alpha");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->val, "a1");
  const auto many = ts.multi_get(1, {"alpha", "beta", "gamma"});
  ASSERT_TRUE(many.has_value());
  EXPECT_EQ(many->size(), 3u);
  for (const auto& res : *many) {
    if (res.key == "alpha") {
      EXPECT_EQ(res.val, "a1");
    } else if (res.key == "beta") {
      EXPECT_EQ(res.val, "b1");
    } else {
      EXPECT_EQ(res.val, "");  // "gamma" was never written
    }
  }
  const auto hist = ts.gather();
  EXPECT_EQ(hist.key_count(), 3u);
  EXPECT_TRUE(hist.verify().ok);
  ts.stop();
}

TEST(TcpStore, ConcurrentClientsStayAtomicPerKey) {
  tcp_store ts(small_cfg({"fast_swmr", "abd"}, 4, /*R=*/2, /*S=*/5));
  ts.start();
  std::thread writer([&] {
    for (int n = 1; n <= 12; ++n) {
      ASSERT_TRUE(ts.put(0, "k" + std::to_string(n % 4),
                         "v" + std::to_string(n)));
    }
  });
  std::vector<std::thread> readers;
  for (std::uint32_t i = 0; i < 2; ++i) {
    readers.emplace_back([&, i] {
      for (int n = 0; n < 8; ++n) {
        const auto res = ts.multi_get(i, {"k0", "k1", "k2", "k3"});
        ASSERT_TRUE(res.has_value());
        EXPECT_EQ(res->size(), 4u);
      }
    });
  }
  writer.join();
  for (auto& th : readers) th.join();
  const auto hist = ts.gather();
  const auto res = hist.verify();
  EXPECT_TRUE(res.ok) << res.error;
  ts.stop();
}

}  // namespace
}  // namespace fastreg::store
