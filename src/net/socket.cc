#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/check.h"

namespace fastreg::net {

unique_fd::~unique_fd() { reset(); }

unique_fd& unique_fd::operator=(unique_fd&& o) noexcept {
  if (this != &o) reset(o.release());
  return *this;
}

void unique_fd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  FASTREG_CHECK(flags >= 0);
  FASTREG_CHECK(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0);
}

void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

unique_fd listen_on(std::uint16_t port) {
  unique_fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  FASTREG_CHECK(fd.valid());
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  FASTREG_CHECK(::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                       sizeof addr) == 0);
  // Backlog sized for the E12 fan-in benchmark: ~1k pipelined clients
  // connecting in a burst. The kernel clamps to net.core.somaxconn.
  FASTREG_CHECK(::listen(fd.get(), 4096) == 0);
  set_nonblocking(fd.get());
  return fd;
}

std::uint16_t local_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  FASTREG_CHECK(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) ==
                0);
  return ntohs(addr.sin_port);
}

unique_fd connect_to(std::uint16_t port) {
  unique_fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  FASTREG_CHECK(fd.valid());
  set_nonblocking(fd.get());
  set_nodelay(fd.get());
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  const int rc =
      ::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  FASTREG_CHECK(rc == 0 || errno == EINPROGRESS);
  return fd;
}

std::optional<unique_fd> accept_one(int listen_fd) {
  // Retry EINTR: returning nullopt exits the caller's accept loop, and
  // with a level-triggered epoll the pending connection would only be
  // picked up a full poll cycle later (or stall behind a signal storm).
  int fd;
  do {
    fd = ::accept(listen_fd, nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    return std::nullopt;
  }
  set_nonblocking(fd);
  set_nodelay(fd);
  return unique_fd(fd);
}

}  // namespace fastreg::net
