#include "crypto/rsa.h"

#include "common/check.h"
#include "crypto/sha256.h"

namespace fastreg::crypto {

rsa_keypair rsa_generate(std::size_t bits, rng& r) {
  FASTREG_EXPECTS(bits >= 512);
  const bignum e{65537};
  for (;;) {
    const bignum p = bignum::random_prime(bits / 2, r);
    const bignum q = bignum::random_prime(bits - bits / 2, r);
    if (p == q) continue;
    const bignum n = p.mul(q);
    if (n.bit_length() != bits) continue;
    const bignum phi = p.sub(bignum{1}).mul(q.sub(bignum{1}));
    const bignum d = e.modinv(phi);
    if (d.is_zero()) continue;  // e not invertible mod phi; rare
    return rsa_keypair{{n, e}, {n, d}};
  }
}

namespace {

bignum digest_as_number(std::span<const std::uint8_t> payload) {
  const sha256::digest d = sha256::hash(payload);
  return bignum::from_bytes(std::span<const std::uint8_t>(d.data(), d.size()));
}

}  // namespace

std::vector<std::uint8_t> rsa_sign(const rsa_private_key& key,
                                   std::span<const std::uint8_t> payload) {
  const bignum m = digest_as_number(payload);
  FASTREG_EXPECTS(m < key.n);
  return m.modexp(key.d, key.n).to_bytes();
}

bool rsa_verify(const rsa_public_key& key,
                std::span<const std::uint8_t> payload,
                std::span<const std::uint8_t> signature) {
  if (signature.empty()) return false;
  const bignum sig = bignum::from_bytes(signature);
  if (sig >= key.n) return false;
  const bignum recovered = sig.modexp(key.e, key.n);
  return recovered == digest_as_number(payload);
}

}  // namespace fastreg::crypto
