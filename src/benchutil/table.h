// Column-aligned plain-text table printer for the experiment binaries.
#pragma once

#include <string>
#include <vector>

namespace fastreg::benchutil {

class table {
 public:
  explicit table(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  /// Renders with a header rule, e.g.:
  ///   proto      read_p50  rounds
  ///   ---------  --------  ------
  ///   fast_swmr  203.0     1
  [[nodiscard]] std::string render() const;
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fastreg::benchutil
