// The store's server automaton: one process hosting per-object server
// automata, created lazily on first traffic for an object. Replies
// triggered by one delivered batch coalesce into batched envelopes (one
// per destination), so a client that pipelined k ops gets its k acks back
// in a single transport unit.
//
// Reconfiguration (src/reconfig): install_map moves the server to the
// next epoch. Objects whose protocol changed ("moved") have their old
// instances set aside as the previous generation; stale-epoch requests
// for them are nacked (clients routed by a superseded map refetch).
// Unmoved objects keep their instances and are served across the epoch
// boundary without interruption.
//
// Lazy seed fetch: the migration coordinator seeds a moved object's
// new-generation state on a QUORUM of servers (reconfig/coordinator.h).
// A server that has not seen the seed -- the handoff may still be in
// flight, or this server was partitioned out of the seeded quorum -- and
// receives a current-epoch data message for the object does not nack it:
// it buffers the message and asks its generation peers for the seeded
// snapshot (fetch_req). The first peer that holds the generation's
// ORIGINAL seed snapshot supplies it (fetch_ack with k_fetch_seeded); the
// server seeds from it and replays the buffered messages. Otherwise the
// fetch resolves once a safe majority of peers answered (of the S-1
// peers, at most t may be crashed, so S-1-t answers is the most it may
// wait for):
//  * Some answerer (or this server) still holds previous-generation
//    state for the object: the handoff is in flight. The buffered
//    messages stay buffered, and every peer that answered "no seed"
//    recorded a SUBSCRIPTION; the moment it adopts a seed it pushes an
//    unsolicited seeded fetch_ack to its subscribers. The coordinator's
//    seed wave reaches a quorum, and (feasibility: S > 2t) at least one
//    quorum member is among the S-1-t answerers, so the notification --
//    and with it the buffered messages' replay -- cannot be lost. No
//    nack is involved, so there is no window where a client parks after
//    the coordinator already resumed its object.
//  * Nobody reachable holds old-generation state or a seed: the object
//    was never written (any state a completed old-epoch op established
//    lives on a quorum, which intersects the answerers plus self). The
//    server self-seeds the initial snapshot -- a register nobody ever
//    wrote starts at bottom -- and serves; this is how a brand-new key
//    becomes usable under a drained map without any operator listing it.
// Only the crash model runs this path: plans that move state under b > 0
// are rejected at validation (reconfig/plan.cc).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/recorder.h"
#include "persist/durable.h"
#include "store/batching.h"
#include "store/shard_map.h"

namespace fastreg::store {

class server final : public automaton {
 public:
  server(std::shared_ptr<const shard_map> shards, std::uint32_t index);
  server(const server& o);
  server& operator=(const server&) = delete;

  void on_message(netout& net, const process_id& from,
                  const message& m) override;
  void on_batch(netout& net, const process_id& from,
                std::span<const message> msgs) override;
  [[nodiscard]] std::unique_ptr<automaton> clone() const override;
  [[nodiscard]] process_id self() const override { return server_id(index_); }

  // ---------------------------------------------------------- reconfig --
  // Control plane; call on the automaton's thread (between steps on the
  // simulator, via node::run_on_reactor on TCP).

  /// Moves to the next epoch's map (epoch must advance by exactly one).
  /// Must not be called while a previous reconfiguration is still
  /// draining -- the coordinator serializes reconfigurations.
  /// `force_move`: objects to set aside and fence even though their
  /// protocol does not change -- the coordinator passes the fleet-wide
  /// union of unseeded_moved_objects(), so state a server missed the
  /// previous generation's quorum seed for is re-handed-off (re-fenced,
  /// re-read from a quorum, re-seeded) instead of silently regressing.
  void install_map(std::shared_ptr<const shard_map> next,
                   const std::unordered_set<object_id>& force_move = {});

  [[nodiscard]] epoch_t epoch() const { return map_->epoch(); }
  /// Objects seeded since the last install (diagnostic).
  [[nodiscard]] std::size_t seeded_count() const {
    return seed_snaps_.size();
  }

  /// Distinct objects this server hosts in the current generation
  /// (diagnostic).
  [[nodiscard]] std::size_t objects_hosted() const { return objects_.size(); }

  /// Client data messages nacked because a lazy seed fetch's buffer was
  /// full (k_max_fetch_waiting). Each such nack parks a client that is
  /// only resumed by the object's NEXT migration -- unreachable with
  /// one-op-per-object clients, so a nonzero counter is an alarm (also
  /// logged at warn level) that a deployment hit the gap ROADMAP flags.
  [[nodiscard]] std::uint64_t fetch_overflow_nacks() const {
    return fetch_overflow_nacks_;
  }

  /// The server's object index: every object it hosts, current AND
  /// previous generation. The reconfiguration coordinator unions these
  /// across a quorum of servers to discover the live key set (every
  /// completed write created instances on a quorum, so a quorum of
  /// indexes covers it); queried right after install_map, when no new
  /// moved instance can be born until its seed lands.
  [[nodiscard]] std::vector<object_id> list_objects() const;

  /// Moved objects whose superseded state is still set aside but whose
  /// new-generation seed never arrived here (this server missed the
  /// quorum seed). Reported to the coordinator before the NEXT install
  /// so it can force-move them; see install_map.
  [[nodiscard]] std::vector<object_id> unseeded_moved_objects() const;

  /// Client data messages per current-map shard since the last
  /// install_map or reset (the reconfig::load_monitor's sampling source).
  [[nodiscard]] const std::vector<std::uint64_t>& shard_ops() const {
    return shard_ops_;
  }
  void reset_shard_ops();

  // ------------------------------------------------------------- persist --
  /// The durability engine when map_->config().persist is enabled, null
  /// otherwise. Construction replayed snapshot + log tail and, when the
  /// recovered epoch matched the map's, re-installed every recovered
  /// object (the rejoin path); a mismatch discarded the state (the fleet
  /// reconfigured while this server was down -- it re-bootstraps through
  /// the lazy seed-fetch path like a brand-new server).
  [[nodiscard]] persist::server_durability* durable() {
    return durable_.get();
  }
  /// Objects re-installed from disk at construction (diagnostic).
  [[nodiscard]] std::size_t recovered_objects() const {
    return recovered_objects_;
  }

 private:
  /// A lazy seed fetch in flight for one moved, un-seeded object.
  struct fetch_state {
    /// Client data messages held back until the fetch resolves; a full
    /// buffer nacks the overflow (the client parks and is resumed by
    /// the object's migration).
    std::vector<std::pair<process_id, message>> waiting{};
    /// Server-to-server gossip held back likewise, in its own smaller
    /// buffer so a gossip-chatty protocol cannot starve client data of
    /// buffer space; overflow is dropped (gossip is max-merging and
    /// self-healing, and a nack would mean nothing to a server).
    std::vector<std::pair<process_id, message>> gossip_waiting{};
    /// Peers that answered without a seed (k_fetch_seeded clear).
    std::unordered_set<std::uint32_t> answered{};
    /// Some answering peer still hosts previous-generation state.
    bool any_prev{false};
    /// Enough peers answered and the handoff is in flight: stop
    /// counting, keep buffering, and wait for a peer's seed
    /// notification (we are subscribed everywhere we asked).
    bool dormant{false};
  };

  automaton& inner_for(object_id obj);
  /// True when `obj`'s state moved generations at the last install.
  [[nodiscard]] bool moved(object_id obj) const;
  void handle_one(const process_id& from, const message& m);
  void handle_state_req(const process_id& from, const message& m);
  void handle_seed_req(const process_id& from, const message& m);
  void handle_fetch_req(const process_id& from, const message& m);
  void handle_fetch_ack(const process_id& from, const message& m);
  /// Installs `snap` as obj's seeded new-generation state (idempotent)
  /// and pushes seeded fetch_acks to this object's fetch subscribers.
  void adopt_seed(object_id obj, const register_snapshot& snap);
  /// Buffers a data message for a moved, un-seeded object and starts (or
  /// joins) the object's lazy seed fetch.
  void enqueue_fetch(const process_id& from, const message& m);
  /// Replays what a now-seeded fetch buffered.
  void finish_fetch(object_id obj);
  void send_nack(const process_id& to, const message& m);
  /// Appends an op record when serving a message advanced obj's durable
  /// timestamp (protocol-agnostic: compares peek_state() against the last
  /// persisted wts). No-op without durability.
  void maybe_persist(object_id obj);
  /// Writes a full-state snapshot (and truncates the log) when one is due.
  void maybe_snapshot();
  /// Construction-time recovery: installs the replayed state if its epoch
  /// matches the current map, discards it otherwise.
  void recover_from_disk();

  std::shared_ptr<const shard_map> map_;
  /// Map of the previous epoch; null until the first install.
  std::shared_ptr<const shard_map> prev_map_;
  std::uint32_t index_;
  std::unordered_map<object_id, std::unique_ptr<automaton>> objects_;
  /// Superseded instances of moved objects, kept for migration state
  /// reads (and for old-generation gossip stragglers) until the next
  /// install.
  std::unordered_map<object_id, std::unique_ptr<automaton>> prev_objects_;
  /// Original seed snapshot per seeded object -- one entry per moved
  /// object whose drain is over (seeded-ness IS membership here), kept
  /// for the generation so this server can answer peers' lazy fetches
  /// with exactly what the coordinator installed (a live instance's
  /// CURRENT state may include not-yet-established later writes, which
  /// must not be seeded).
  std::unordered_map<object_id, register_snapshot> seed_snaps_;
  /// Lazy fetches in flight, by object.
  std::unordered_map<object_id, fetch_state> fetches_;
  /// Peers whose fetch_req for the object this server answered without a
  /// seed; they get an unsolicited seeded fetch_ack the moment one is
  /// adopted here. Cleared per generation.
  std::unordered_map<object_id, std::unordered_set<std::uint32_t>>
      fetch_subs_;
  /// Objects the last install set aside by coordinator fiat (their
  /// protocol did not change); they fence and migrate like moved ones.
  std::unordered_set<object_id> force_moved_;
  /// Client data messages per shard of the current map (load signal).
  std::vector<std::uint64_t> shard_ops_;
  /// Lifetime count of buffered-fetch overflow nacks (see accessor).
  std::uint64_t fetch_overflow_nacks_{0};
  batch_collector outbox_;
  /// Durability engine; null when persistence is off. NOT cloned: a
  /// fork()'d sibling appending to the same file would interleave two
  /// histories in one log (clones exist only for adversary surgery,
  /// which never persists).
  std::unique_ptr<persist::server_durability> durable_;
  /// Last wts persisted per object; an op record is appended only when
  /// serving a message advanced past it.
  std::unordered_map<object_id, wts_t> persisted_wts_;
  std::size_t recovered_objects_{0};

  /// Registry handles (per-server label), resolved in the constructor.
  /// The members above stay the source of truth for the accessors --
  /// clones share these handles, so the registry sees the union of every
  /// clone's activity while each clone's accessors stay exact.
  struct srv_metrics {
    obs::counter* ops{nullptr};
    obs::counter* nacks{nullptr};
    obs::counter* fetch_reqs{nullptr};
    obs::counter* fetch_overflow{nullptr};
    obs::gauge* epoch{nullptr};
    obs::histogram* serve_ns{nullptr};
  };
  srv_metrics sm_;
  /// One op counter per shard of the current map (label shard="k");
  /// rebuilt on install_map when the shard count changes.
  std::vector<obs::counter*> shard_counters_;
  /// Flight recorder for this node (stable global, cached like sm_).
  obs::recorder* rec_{nullptr};
  void bind_metrics();
};

}  // namespace fastreg::store
