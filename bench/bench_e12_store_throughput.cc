// E12 -- multi-object store throughput: many named registers multiplexed
// over one server fleet, pipelined clients, batched transport.
//
// Part 1 (timed simulator): ops per kilotick and get-latency percentiles
// across key counts x shard protocol mixes, plus the batching win
// (envelopes per op vs messages per op -- the gap is traffic that shared
// one transport unit). Part 2 (localhost TCP): the same shape on real
// sockets, wall-clock microseconds; per-key atomicity is verified on
// every history either part produces.
// Part 3 (E12c) isolates the transport knobs the zero-copy wire pipeline
// added: the reactor batch window (FASTREG_BATCH_WINDOW_US) and the
// pipelined client depth, on an 8-client-thread workload whose rows vary
// ONLY those two knobs. Part 4 (E12d) is the connection fan-in test for
// the sharded reactor pool: 1000+ pipelined client sessions from ONE
// process (a 4-reactor hub node) against the same server fleet run with
// 1 reactor vs 4 reactors per node, equal connection count -- the
// multi-reactor row must at least match the single-reactor row's
// aggregate ops/s. `--smoke` runs a seconds-scale subset of E12c plus
// E12d (the Release CI job uses it as a link/run sanity check and as
// the 1k-connection gate).
#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "benchutil/stats.h"
#include "benchutil/table.h"
#include "benchutil/workload.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "store/tcp_store.h"

using namespace fastreg;
using namespace fastreg::benchutil;

namespace {

struct mix {
  const char* label;
  std::vector<std::string> protocols;
};

const std::vector<mix>& mixes() {
  static const std::vector<mix> m = {
      {"fast_swmr", {"fast_swmr"}},
      {"abd", {"abd"}},
      {"fast+abd", {"fast_swmr", "abd"}},
  };
  return m;
}

store::store_config make_store_cfg(const mix& m, std::uint32_t num_shards,
                                   std::uint32_t R) {
  store::store_config cfg;
  // S=7, t=1 keeps fast_swmr feasible up to R=4 (S > (R+2)t).
  cfg.base.servers = 7;
  cfg.base.t_failures = 1;
  cfg.base.readers = R;
  cfg.base.writers = 1;
  cfg.num_shards = num_shards;
  cfg.shard_protocols = m.protocols;
  return cfg;
}

void run_sim_part() {
  std::printf("E12a: store throughput on the timed simulator "
              "(delay U[50,150] ticks, R=3 readers, batch=8)\n\n");
  table t({"keys", "shards", "mix", "ops/ktick", "get_p50", "get_p99",
           "env/op", "msg/op", "atomic"});
  for (const std::uint32_t keys : {8u, 64u, 512u}) {
    for (const std::uint32_t shards : {1u, 4u}) {
      for (const auto& m : mixes()) {
        store_workload_options opt;
        opt.num_keys = keys;
        opt.gets_per_reader = 240;
        opt.puts_per_writer = 80;
        opt.batch = 8;
        opt.seed = 42 + keys + shards;
        const auto cfg = make_store_cfg(m, shards, /*R=*/3);
        const auto rep = run_store_measured(cfg, opt);
        const bool atomic = rep.all_complete && rep.hist.verify().ok;
        t.add_row({std::to_string(keys), std::to_string(shards), m.label,
                   fmt(rep.ops_per_ktick, 2), fmt(rep.get_latency.p50()),
                   fmt(rep.get_latency.p99()), fmt(rep.envelopes_per_op, 2),
                   fmt(rep.msgs_per_op, 2), atomic ? "yes" : "NO"});
      }
    }
  }
  t.print();
  std::printf("\nexpected shape: abd shards double get latency (2 RTT vs "
              "1); batching keeps env/op well under msg/op at batch=8; "
              "throughput is flat across key counts (shared fleet, "
              "independent objects).\n\n");
}

void run_tcp_part() {
  std::printf("E12b: store throughput over real TCP sockets (localhost, "
              "2 reader threads, multi_get batch=8)\n\n");
  table t({"keys", "mix", "ops/s", "get_p50_us", "get_p99_us", "atomic"});
  const std::uint32_t R = 2;
  const int rounds = 40;
  for (const std::uint32_t keys : {8u, 64u, 512u}) {
    for (const auto& m : mixes()) {
      store::tcp_store ts(make_store_cfg(m, /*num_shards=*/4, R));
      ts.start();
      // Warmup: establish every client-server connection.
      for (std::uint32_t k = 0; k < std::min(keys, 8u); ++k) {
        (void)ts.put(0, "key" + std::to_string(k), "seed");
      }
      for (std::uint32_t i = 0; i < R; ++i) (void)ts.get(i, "key0");

      std::vector<std::vector<double>> lat_us(R);
      const auto t0 = std::chrono::steady_clock::now();
      std::thread writer([&] {
        rng r(7);
        for (int n = 0; n < rounds; ++n) {
          (void)ts.put(0, "key" + std::to_string(r.below(keys)),
                       "v" + std::to_string(n + 1));
        }
      });
      std::vector<std::thread> readers;
      for (std::uint32_t i = 0; i < R; ++i) {
        readers.emplace_back([&, i] {
          rng r(100 + i);
          std::vector<std::uint32_t> idx(keys);
          for (std::uint32_t k = 0; k < keys; ++k) idx[k] = k;
          const std::uint32_t batch = std::min(8u, keys);
          for (int n = 0; n < rounds; ++n) {
            const auto ks = sample_distinct_keys(r, idx, batch);
            const auto s0 = std::chrono::steady_clock::now();
            const auto res = ts.multi_get(i, ks);
            const auto s1 = std::chrono::steady_clock::now();
            if (!res) continue;
            // The batch's gets are genuinely concurrent; each op carries
            // the batch's wall time.
            const double us =
                std::chrono::duration<double, std::micro>(s1 - s0).count();
            for (std::size_t k = 0; k < res->size(); ++k) {
              lat_us[i].push_back(us);
            }
          }
        });
      }
      writer.join();
      for (auto& th : readers) th.join();
      const auto t1 = std::chrono::steady_clock::now();

      stats get_us;
      for (const auto& per_reader : lat_us) {
        for (const double v : per_reader) get_us.add(v);
      }
      const double secs = std::chrono::duration<double>(t1 - t0).count();
      const double total_ops =
          static_cast<double>(get_us.count()) + rounds;  // gets + puts
      const bool atomic = ts.gather().verify().ok;
      t.add_row({std::to_string(keys), m.label,
                 fmt(secs > 0 ? total_ops / secs : 0, 0),
                 fmt(get_us.p50()), fmt(get_us.p99()),
                 atomic ? "yes" : "NO"});
      ts.stop();
    }
  }
  t.print();
  std::printf("\nexpected shape: abd ~= 2x fast_swmr get latency (two "
              "round trips vs one); ops/s scales with the multi_get "
              "batch because k gets share one envelope per server.\n");
}

// ------------------------------------------- E12c: window x pipelining --

struct wire_mode {
  const char* window;
  net::node_options nopt;
  std::uint32_t depth;
};

std::vector<wire_mode> wire_modes(bool smoke) {
  net::node_options none;
  net::node_options w200;
  w200.batch_window_us = 200;
  net::node_options adaptive;
  adaptive.adaptive = true;
  if (smoke) {
    return {{"0", none, 1}, {"200us", w200, 8}};
  }
  return {{"0", none, 1},
          {"200us", w200, 1},
          {"0", none, 8},
          {"200us", w200, 8},
          {"adaptive", adaptive, 8}};
}

/// Sum of every series of `name` (any labels) in an interval delta.
double sum_counter(const std::vector<obs::sample>& rows,
                   const char* name) {
  double s = 0;
  const std::string prefix = std::string(name) + "{";
  for (const auto& r : rows) {
    if (r.name == name || r.name.rfind(prefix, 0) == 0) s += r.value;
  }
  return s;
}

void run_wire_knob_part(bool smoke) {
  std::printf("E12c: transport knobs under 8 client threads (1 writer + 7 "
              "readers, abd shards, 64 keys, single-key ops). Rows vary "
              "ONLY the reactor batch window and the pipelined client "
              "depth; the first row (window 0, depth 1: flush-per-step, "
              "one blocking op per client) is the pre-pipeline "
              "baseline. frames/writev is the measured coalescing factor, "
              "from a reset-free obs::interval_scrape per row.\n\n");
  const std::uint32_t R = 7;
  const std::uint32_t keys = 64;
  const int rounds = smoke ? 40 : 400;

  table t({"batch_window", "pipeline_depth", "ops/s", "get_p50_us",
           "get_p99_us", "vs_baseline", "frames/writev", "atomic"});
  double base_ops = 0;
  // Registry counters are cumulative across rows (and earlier parts);
  // the interval scrape subtracts the previous snapshot so each row
  // reports only its own traffic, without resetting anything.
  obs::interval_scrape scrape;
  for (const auto& m : wire_modes(smoke)) {
    store::store_config cfg;
    cfg.base.servers = 7;
    cfg.base.t_failures = 1;
    cfg.base.readers = R;
    cfg.base.writers = 1;
    cfg.num_shards = 4;
    cfg.shard_protocols = {"abd"};
    store::tcp_store ts(cfg, m.nopt);
    ts.start();
    // Warmup: connections + initial values.
    for (std::uint32_t k = 0; k < keys; ++k) {
      (void)ts.put(0, "key" + std::to_string(k), "seed");
    }
    for (std::uint32_t i = 0; i < R; ++i) (void)ts.get(i, "key0");
    (void)scrape.take();  // drop the warmup's counter deltas

    const auto t0 = std::chrono::steady_clock::now();
    // gather() timestamps share this clock; ops invoked before the
    // measured run (the warmup) are filtered out below.
    const std::uint64_t run_start_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            t0.time_since_epoch())
            .count());
    std::thread writer([&] {
      rng r(7);
      if (m.depth == 1) {
        for (int n = 0; n < rounds; ++n) {
          (void)ts.put(0, "key" + std::to_string(r.below(keys)),
                       "v" + std::to_string(n + 1));
        }
      } else {
        auto p = ts.open_session(writer_id(0), m.depth);
        for (int n = 0; n < rounds; ++n) {
          (void)p->put("key" + std::to_string(r.below(keys)),
                       "v" + std::to_string(n + 1));
        }
        (void)p->drain();
      }
    });
    std::vector<std::thread> readers;
    for (std::uint32_t i = 0; i < R; ++i) {
      readers.emplace_back([&, i] {
        rng r(100 + i);
        if (m.depth == 1) {
          for (int n = 0; n < rounds; ++n) {
            (void)ts.get(i, "key" + std::to_string(r.below(keys)));
          }
        } else {
          auto p = ts.open_session(reader_id(i), m.depth);
          for (int n = 0; n < rounds; ++n) {
            (void)p->get("key" + std::to_string(r.below(keys)));
          }
          (void)p->drain();
        }
      });
    }
    writer.join();
    for (auto& th : readers) th.join();
    const auto t1 = std::chrono::steady_clock::now();

    const auto hist = ts.gather();
    // Per-op latency from the shared op log (valid for blocking and
    // pipelined rows alike); warmup ops are excluded by count.
    stats get_us;
    std::uint64_t completed = 0;
    for (const auto& [key, h] : hist.all()) {
      for (const auto& op : h.ops()) {
        if (!op.response_time || op.invoke_time < run_start_ns) continue;
        ++completed;
        if (!op.is_write) {
          get_us.add(static_cast<double>(*op.response_time -
                                         op.invoke_time) /
                     1000.0);
        }
      }
    }
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    const double ops_s =
        secs > 0 ? static_cast<double>(completed) / secs : 0;
    if (base_ops == 0) base_ops = ops_s;
    const bool atomic = hist.verify().ok;
    const auto delta = scrape.take();
    const double frames =
        sum_counter(delta, "fastreg_net_frames_out_total");
    const double writevs =
        sum_counter(delta, "fastreg_net_writev_calls_total");
    t.add_row({m.window, std::to_string(m.depth), fmt(ops_s, 0),
               fmt(get_us.p50()), fmt(get_us.p99()),
               fmt(base_ops > 0 ? ops_s / base_ops : 0, 2) + "x",
               fmt(writevs > 0 ? frames / writevs : 0, 2),
               atomic ? "yes" : "NO"});
    ts.stop();
  }
  t.print();
  std::printf("\nexpected shape: window + pipelining >= 1.5x the baseline "
              "row's ops/s (requests from many in-flight ops coalesce "
              "into one writev per window instead of one write per "
              "frame); window alone at depth 1 mostly adds latency, "
              "depth alone helps, together they compound; the adaptive "
              "window tracks the fixed one under sustained load.\n");
}

// --------------------------------------------- E12d: connection fan-in --

/// 1000+ sockets per side live in one process; lift RLIMIT_NOFILE as
/// close to `want` as the hard limit allows (CI also raises `ulimit -n`
/// so the hard limit itself is not the ceiling there).
void raise_fd_limit(rlim_t want) {
  rlimit rl{};
  if (getrlimit(RLIMIT_NOFILE, &rl) != 0) return;
  if (rl.rlim_cur >= want) return;
  rlimit nrl = rl;
  nrl.rlim_cur =
      rl.rlim_max == RLIM_INFINITY ? want : std::min(want, rl.rlim_max);
  if (nrl.rlim_cur > rl.rlim_cur) (void)setrlimit(RLIMIT_NOFILE, &nrl);
}

/// Live sum of every fastreg_net_reactor_connections series belonging to
/// a server node (labels render as node="s1", node="s2", ...).
double server_connections_now() {
  double s = 0;
  for (const auto& row : obs::snapshot()) {
    if (row.name.rfind("fastreg_net_reactor_connections{", 0) == 0 &&
        row.name.find("node=\"s") != std::string::npos) {
      s += row.value;
    }
  }
  return s;
}

void run_fanin_part(bool smoke) {
  const std::uint32_t sessions = 1000;
  const std::uint32_t ops_per = smoke ? 2 : 8;
  const std::uint32_t writer_rounds = smoke ? 32 : 128;
  const std::uint32_t keys = 64;
  const std::uint32_t depth = 4;
  const std::uint32_t drivers = 8;
  std::printf(
      "E12d: connection fan-in -- %u pipelined reader sessions (depth %u) "
      "from one process on a 4-reactor hub node, against S=3 abd servers "
      "run with 1 vs 4 reactors each (equal connection count, %u driver "
      "threads, %u gets/session + %u concurrent blocking puts).\n\n",
      sessions, depth, drivers, ops_per, writer_rounds);
  raise_fd_limit(4 * (sessions + 64));

  table t({"server_reactors", "sessions", "server_conns", "ops/s",
           "get_p50_us", "vs_1reactor", "atomic"});
  double base_ops = 0;
  for (const std::uint32_t sreact : {1u, 4u}) {
    store::store_config cfg;
    cfg.base.servers = 3;
    cfg.base.t_failures = 1;
    cfg.base.readers = sessions;
    cfg.base.writers = 1;
    cfg.num_shards = 1;
    cfg.shard_protocols = {"abd"};
    net::cluster_options copt;
    copt.server_reactors = sreact;
    copt.client_hub = true;
    copt.hub_reactors = 4;
    store::tcp_store ts(cfg, net::node_options{}, copt);
    ts.start();
    // Gauge baseline: an earlier row's teardown may leave its final
    // decrements unflushed, so each row reports its own delta.
    const double conns0 = server_connections_now();
    for (std::uint32_t k = 0; k < keys; ++k) {
      (void)ts.put(0, "key" + std::to_string(k), "seed");
    }

    struct fan_slot {
      std::unique_ptr<store::async_session> ses;
      std::uint32_t next{0};
    };
    std::vector<fan_slot> slots(sessions);
    for (std::uint32_t i = 0; i < sessions; ++i) {
      slots[i].ses = ts.open_session(reader_id(i), depth);
    }

    const auto t0 = std::chrono::steady_clock::now();
    const std::uint64_t run_start_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            t0.time_since_epoch())
            .count());
    const auto deadline = t0 + std::chrono::seconds(120);
    std::atomic<std::uint64_t> failures{0};
    std::thread writer([&] {
      rng r(7);
      for (std::uint32_t n = 0; n < writer_rounds; ++n) {
        if (!ts.put(0, "key" + std::to_string(r.below(keys)),
                    "v" + std::to_string(n + 1))) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
    // Driver pool: thread d multiplexes sessions d, d+drivers, ...
    // Connection setup rides inside the measured window on purpose: the
    // row is "what can this process sustain from a cold fan-in".
    std::vector<std::thread> pool;
    for (std::uint32_t d = 0; d < drivers; ++d) {
      pool.emplace_back([&, d] {
        while (true) {
          bool done = true;
          bool progress = false;
          for (std::size_t i = d; i < slots.size(); i += drivers) {
            auto& sl = slots[i];
            sl.ses->pump();
            (void)sl.ses->take_results();
            while (sl.next < ops_per) {
              const auto st = sl.ses->try_get(
                  "key" + std::to_string((i + sl.next) % keys));
              if (st != store::submit_status::submitted) break;
              ++sl.next;
              progress = true;
            }
            if (sl.next < ops_per || sl.ses->in_flight() != 0) done = false;
          }
          if (done) return;
          if (std::chrono::steady_clock::now() > deadline) return;
          if (!progress) std::this_thread::sleep_for(
              std::chrono::microseconds(200));
        }
      });
    }
    writer.join();
    for (auto& th : pool) th.join();
    // All sessions still hold their connections here: the gauge is the
    // live per-server-reactor connection count summed over the fleet.
    const double conns = server_connections_now() - conns0;
    for (auto& sl : slots) {
      if (!sl.ses->drain(std::chrono::seconds(10))) {
        failures.fetch_add(sl.ses->in_flight(), std::memory_order_relaxed);
      }
      failures.fetch_add(ops_per - sl.next, std::memory_order_relaxed);
    }
    const auto t1 = std::chrono::steady_clock::now();

    const auto hist = ts.gather();
    stats get_us;
    std::uint64_t completed = 0;
    for (const auto& [key, h] : hist.all()) {
      for (const auto& op : h.ops()) {
        if (!op.response_time || op.invoke_time < run_start_ns) continue;
        ++completed;
        if (!op.is_write) {
          get_us.add(
              static_cast<double>(*op.response_time - op.invoke_time) /
              1000.0);
        }
      }
    }
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    const double ops_s =
        secs > 0 ? static_cast<double>(completed) / secs : 0;
    if (base_ops == 0) base_ops = ops_s;
    const bool atomic = hist.verify().ok && failures.load() == 0;
    t.add_row({std::to_string(sreact), std::to_string(sessions),
               fmt(conns, 0), fmt(ops_s, 0), fmt(get_us.p50()),
               fmt(base_ops > 0 ? ops_s / base_ops : 0, 2) + "x",
               atomic ? "yes" : "NO"});
    ts.stop();
  }
  t.print();
  std::printf("\nexpected shape: server_conns = sessions x 3 servers "
              "(>= 1000 per server node, all live at once); the 4-reactor "
              "row's ops/s at least matches the 1-reactor row at equal "
              "connections -- the accept loop deals connections "
              "round-robin across the pool, so the fan-in load spreads "
              "instead of serializing on one epoll thread.\n\n");
}

// ------------------------------------------ --obs-check: telemetry gate --

/// One blocking-op measurement pass over a warm store; returns get p50
/// in microseconds. Identical work whether tracing is on or off -- the
/// caller toggles the tracer around calls to isolate its cost.
double obs_check_pass(store::tcp_store& ts, std::uint32_t R,
                      std::uint32_t keys, int rounds) {
  std::vector<std::vector<double>> lat_us(R);
  std::thread writer([&] {
    rng r(7);
    for (int n = 0; n < rounds; ++n) {
      (void)ts.put(0, "key" + std::to_string(r.below(keys)),
                   "v" + std::to_string(n + 1));
    }
  });
  std::vector<std::thread> readers;
  for (std::uint32_t i = 0; i < R; ++i) {
    readers.emplace_back([&, i] {
      rng r(100 + i);
      for (int n = 0; n < rounds; ++n) {
        const auto s0 = std::chrono::steady_clock::now();
        const auto res = ts.get(i, "key" + std::to_string(r.below(keys)));
        const auto s1 = std::chrono::steady_clock::now();
        if (!res) continue;
        lat_us[i].push_back(
            std::chrono::duration<double, std::micro>(s1 - s0).count());
      }
    });
  }
  writer.join();
  for (auto& th : readers) th.join();
  stats get_us;
  for (const auto& per_reader : lat_us) {
    for (const double v : per_reader) get_us.add(v);
  }
  return get_us.p50();
}

/// CI gate: (a) the stats_req scrape over a raw socket yields a dump
/// that parses under the exposition grammar, and (b) window-0 blocking
/// get p50 with the phase tracer ON -- and, separately, with the flight
/// recorder ON -- stays within 5% of both off in the SAME run. Rotating
/// passes, best-of-3 per mode: the min is what the machine can do, so a
/// spurious scheduler spike in one pass cannot fake (or mask) a
/// regression. Writes the dump to `dump_path` (when given) for the
/// external obs_check validator.
int run_obs_check(const char* dump_path) {
  std::printf("E12 --obs-check: tracing/recording overhead + scrape "
              "validation\n\n");
  const std::uint32_t R = 4;
  const std::uint32_t keys = 64;
  const int rounds = 150;
  store::store_config cfg;
  cfg.base.servers = 7;
  cfg.base.t_failures = 1;
  cfg.base.readers = R;
  cfg.base.writers = 1;
  cfg.num_shards = 4;
  cfg.shard_protocols = {"abd"};
  store::tcp_store ts(cfg);  // window 0: the latency-first default
  ts.start();
  for (std::uint32_t k = 0; k < keys; ++k) {
    (void)ts.put(0, "key" + std::to_string(k), "seed");
  }
  for (std::uint32_t i = 0; i < R; ++i) (void)ts.get(i, "key0");
  {
    // Touch the pipelined front-end so the admission counters exist and
    // the dump check below covers them. The session is closed before
    // the measurement passes run blocking ops on the same index.
    auto se = ts.open_session(reader_id(0), /*depth=*/2);
    (void)se->try_get("key0");
    (void)se->try_get("key0");  // key_busy: counted, not submitted
    (void)se->drain();
  }

  double best_off = 0;
  double best_on = 0;
  double best_rec = 0;
  double best_on_ratio = 0;
  double best_rec_ratio = 0;
  // Mode order rotates across passes: a fixed order would hand whichever
  // mode always runs last any systematic drift (thermal, page cache) as
  // a fake regression. Five passes: the per-event cost is ~40ns (a few
  // us per op against a several-hundred-us p50), so the gate is really
  // measuring scheduler noise -- the min of five keeps it below the 5%
  // threshold. Two ways to pass, either suffices: the global minima
  // compare (best each mode ever did), and the best WITHIN-pass ratio
  // (three adjacent measurements, so multi-second load drift -- which
  // can deny one mode the quiet window another got -- cancels out).
  for (int i = 0; i < 5; ++i) {
    double off = 0, on = 0, rec = 0;
    for (int m = 0; m < 3; ++m) {
      switch ((i + m) % 3) {
        case 0:
          obs::set_tracing(false);
          obs::set_recording(false);
          off = obs_check_pass(ts, R, keys, rounds);
          break;
        case 1:
          obs::set_tracing(true);
          obs::set_recording(false);
          on = obs_check_pass(ts, R, keys, rounds);
          break;
        default:
          obs::set_tracing(false);
          obs::set_recording(true);
          rec = obs_check_pass(ts, R, keys, rounds);
          break;
      }
    }
    std::printf("  pass %d: get_p50 off=%sus trace=%sus record=%sus\n",
                i + 1, fmt(off).c_str(), fmt(on).c_str(),
                fmt(rec).c_str());
    if (i == 0 || off < best_off) best_off = off;
    if (i == 0 || on < best_on) best_on = on;
    if (i == 0 || rec < best_rec) best_rec = rec;
    if (off > 0) {
      if (i == 0 || on / off < best_on_ratio) best_on_ratio = on / off;
      if (i == 0 || rec / off < best_rec_ratio) best_rec_ratio = rec / off;
    }
  }
  obs::set_tracing(false);
  obs::set_recording(false);

  const std::string dump = ts.scrape(0);
  ts.stop();

  bool ok = true;
  if (dump.empty()) {
    std::printf("FAIL: stats scrape returned nothing\n");
    ok = false;
  } else if (const auto err = obs::validate_dump(dump); !err.empty()) {
    std::printf("FAIL: stats dump invalid: %s\n", err.c_str());
    ok = false;
  } else if (dump.find("fastreg_store_ops_total") == std::string::npos) {
    std::printf("FAIL: dump lacks fastreg_store_ops_total\n");
    ok = false;
  } else if (dump.find("fastreg_store_admission_total") ==
             std::string::npos) {
    std::printf("FAIL: dump lacks fastreg_store_admission_total\n");
    ok = false;
  } else if (dump.find("fastreg_net_reactor_connections") ==
             std::string::npos) {
    std::printf("FAIL: dump lacks fastreg_net_reactor_connections\n");
    ok = false;
  } else {
    std::printf("scrape: %zu bytes, dump valid\n", dump.size());
  }
  if (dump_path != nullptr && !dump.empty()) {
    if (std::FILE* f = std::fopen(dump_path, "w")) {
      std::fwrite(dump.data(), 1, dump.size(), f);
      std::fclose(f);
    }
  }
  const double limit = best_off * 1.05;
  std::printf("overhead: best p50 off=%sus trace=%sus record=%sus "
              "(limit %sus); best within-pass ratio trace=%s record=%s\n",
              fmt(best_off).c_str(), fmt(best_on).c_str(),
              fmt(best_rec).c_str(), fmt(limit).c_str(),
              fmt(best_on_ratio, 3).c_str(),
              fmt(best_rec_ratio, 3).c_str());
  if (best_on > limit && best_on_ratio > 1.05) {
    std::printf("FAIL: tracing-on p50 regressed more than 5%%\n");
    ok = false;
  }
  if (best_rec > limit && best_rec_ratio > 1.05) {
    std::printf("FAIL: recording-on p50 regressed more than 5%%\n");
    ok = false;
  }
  std::printf("%s\n", ok ? "OBS-CHECK PASS" : "OBS-CHECK FAIL");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--obs-check") == 0) {
    return run_obs_check(argc > 2 ? argv[2] : nullptr);
  }
  const bool smoke =
      argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  if (smoke) {
    // Link/run sanity for the Release CI job: the full wire path end to
    // end (sim + TCP + pipeline), seconds not minutes, plus the
    // 1k-connection fan-in gate against the 4-reactor servers.
    run_wire_knob_part(/*smoke=*/true);
    run_fanin_part(/*smoke=*/true);
    return 0;
  }
  run_sim_part();
  run_tcp_part();
  run_wire_knob_part(/*smoke=*/false);
  run_fanin_part(/*smoke=*/false);
  return 0;
}
