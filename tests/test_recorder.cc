// Flight recorder (src/obs/recorder.h + src/obs/timeline.h): ring
// semantics, the dump grammar, trace/span on the wire, trace
// propagation across a live reshard on both transports, and the
// forensics path -- a checker failure must leave behind per-node dumps
// that merge into a causally-valid timeline and reject tampering.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "benchutil/stress.h"
#include "net/framing.h"
#include "obs/recorder.h"
#include "obs/timeline.h"
#include "registers/message.h"

namespace fastreg {
namespace {

using benchutil::run_sim_stress;
using benchutil::run_tcp_stress;
using benchutil::stress_options;
using net::encode_batch_frame;
using net::encode_msg_frame;
using net::frame_buffer;

/// Restores the recording gate on scope exit so a failing ASSERT cannot
/// leave it flipped for the rest of the binary.
struct recording_guard {
  bool prev;
  explicit recording_guard(bool on) : prev(obs::recording_enabled()) {
    obs::set_recording(on);
  }
  ~recording_guard() { obs::set_recording(prev); }
};

// ------------------------------------------------------- msg-type table --

TEST(RecMsgTypeNames, TableMatchesRegisters) {
  // obs cannot link fastreg_registers, so recorder.cc keeps its own
  // name table; this is the lockstep check its comment promises.
  for (std::uint8_t code = 1; code <= 18; ++code) {
    EXPECT_STREQ(obs::rec_msg_type_name(code),
                 to_string(static_cast<msg_type>(code)))
        << "code " << static_cast<int>(code);
  }
  EXPECT_STREQ(obs::rec_msg_type_name(0), "-");
  EXPECT_STREQ(obs::rec_msg_type_name(19), "-");
  EXPECT_STREQ(obs::rec_msg_type_name(255), "-");
}

// ------------------------------------------------------ ring semantics --

TEST(RecorderRing, CapacityRoundsUpAndOverwritesOldest) {
  obs::recorder r(100);
  EXPECT_EQ(r.capacity(), 128u);
  for (int i = 0; i < 200; ++i) {
    r.record(obs::rec_event::send, 1, 0, 0, server_id(0), 7, 0,
             static_cast<ts_t>(i));
  }
  const auto es = r.entries();
  ASSERT_EQ(es.size(), 128u);
  // Oldest-first, and the ring kept the newest 128 of the 200.
  EXPECT_EQ(es.front().ts, 72);
  EXPECT_EQ(es.back().ts, 199);
  for (std::size_t i = 1; i < es.size(); ++i) {
    EXPECT_EQ(es[i].ts, es[i - 1].ts + 1);
  }
  r.reset();
  EXPECT_TRUE(r.entries().empty());
}

TEST(RecorderRing, ObjectFilterAndFieldRoundTrip) {
  obs::recorder r(64);
  r.record(obs::rec_event::recv, 0xabc, 3,
           static_cast<std::uint8_t>(msg_type::read_req), writer_id(1),
           42, 5, 9);
  r.record(obs::rec_event::serve, 0xdef, 0,
           static_cast<std::uint8_t>(msg_type::write_req), reader_id(0),
           99, 1, 2);
  const auto only42 = r.entries(object_id{42});
  ASSERT_EQ(only42.size(), 1u);
  const auto& e = only42[0];
  EXPECT_EQ(e.ev, obs::rec_event::recv);
  EXPECT_EQ(e.trace, 0xabcu);
  EXPECT_EQ(e.span, 3u);
  EXPECT_EQ(e.mtype, static_cast<std::uint8_t>(msg_type::read_req));
  EXPECT_EQ(e.peer, writer_id(1));
  EXPECT_EQ(e.obj, 42u);
  EXPECT_EQ(e.epoch, 5u);
  EXPECT_EQ(e.ts, 9);
  EXPECT_EQ(r.entries().size(), 2u);
}

TEST(RecorderRing, DumpGrammarValidatesAndTamperingDoesNot) {
  obs::recorder r(64);
  r.record(obs::rec_event::send, 0x2a, 1,
           static_cast<std::uint8_t>(msg_type::read_req), server_id(0),
           42, 0, 7);
  r.record(obs::rec_event::park, 0x2a, 1, 0, reader_id(0), 42, 1, 0);
  const auto dump = r.dump("r0");
  EXPECT_EQ(obs::validate_recorder_dump(dump), "");
  const auto parsed = obs::parse_recorder_dump(dump);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].node, "r0");
  EXPECT_EQ(parsed[0].trace, 0x2au);
  EXPECT_EQ(parsed[0].ev, "send");
  EXPECT_EQ(parsed[0].type, "READ");
  EXPECT_EQ(parsed[1].ev, "park");
  // A corrupted event token must be rejected, not skipped.
  std::string mutated = dump;
  const auto pos = mutated.find("ev=send");
  ASSERT_NE(pos, std::string::npos);
  mutated.replace(pos, 7, "ev=zzzz");
  EXPECT_NE(obs::validate_recorder_dump(mutated), "");
}

TEST(RecorderCatapult, ValidatorAcceptsRenderAndRejectsGarbage) {
  obs::recorder r(64);
  r.record(obs::rec_event::send, 0x2a, 0,
           static_cast<std::uint8_t>(msg_type::read_req), server_id(1),
           42, 0, 7);
  r.record(obs::rec_event::recv, 0x2a, 0,
           static_cast<std::uint8_t>(msg_type::read_ack), server_id(1),
           42, 0, 7);
  const auto merged =
      obs::merge_events({obs::parse_recorder_dump(r.dump("r0"))});
  const auto json = obs::render_catapult(merged);
  EXPECT_EQ(obs::validate_catapult(json), "");
  EXPECT_NE(obs::validate_catapult("not json"), "");
  EXPECT_NE(obs::validate_catapult("{\"ph\":\"i\"}"), "")
      << "an object is not the array format";
  EXPECT_NE(obs::validate_catapult("[{\"ph\":5}]"), "")
      << "ph must be a string";
  EXPECT_NE(obs::validate_catapult(
                "[{\"ph\":\"i\",\"name\":\"x\",\"pid\":1,\"tid\":1}]"),
            "")
      << "a non-metadata event needs ts";
}

// ------------------------------------------------------------ the wire --

TEST(RecorderWire, TraceAndSpanSurviveMsgAndBatchFrames) {
  message m;
  m.type = msg_type::read_req;
  m.obj = 42;
  m.trace = 0x1122334455667788ull;
  m.span = 513;
  const auto bytes = encode_msg_frame(reader_id(0), m);
  frame_buffer fb;
  fb.feed(bytes.data(), bytes.size());
  const auto f = fb.next();
  ASSERT_TRUE(f.has_value());
  ASSERT_TRUE(f->msg.has_value());
  EXPECT_EQ(f->msg->trace, m.trace);
  EXPECT_EQ(f->msg->span, m.span);
  EXPECT_EQ(*f->msg, m);

  message m2 = m;
  m2.trace = 7;
  m2.span = 0;
  const std::vector<message> msgs{m, m2};
  const auto batch = encode_batch_frame(writer_id(0), msgs);
  frame_buffer fb2;
  fb2.feed(batch.data(), batch.size());
  const auto bf = fb2.next();
  ASSERT_TRUE(bf.has_value());
  ASSERT_EQ(bf->batch.size(), 2u);
  EXPECT_EQ(bf->batch[0].trace, m.trace);
  EXPECT_EQ(bf->batch[0].span, m.span);
  EXPECT_EQ(bf->batch[1].trace, 7u);
  EXPECT_EQ(bf->batch[1].span, 0u);
}

// -------------------------------------------------- gate off = no events --

TEST(RecorderGate, HooksCaptureNothingWhenOff) {
  recording_guard guard(false);
  obs::recorder_reset_all();
  stress_options opt;
  opt.protocol = "abd";
  opt.S = 5;
  opt.t = 1;
  opt.R = 2;
  opt.W = 1;
  opt.puts_per_writer = 40;
  opt.gets_per_reader = 40;
  opt.seed = 1;
  opt.label = "rec_gate_off";
  const auto rep = run_sim_stress(opt);
  EXPECT_TRUE(rep.ok()) << rep.describe();
  // Every ring stayed empty: recorder_dump_all drops empty dumps.
  EXPECT_TRUE(obs::recorder_dump_all().empty());
}

// --------------------------------- trace propagation across a reshard --

/// Full merged timeline of every node's ring, for live-reshard runs.
std::vector<obs::timeline_event> merged_timeline() {
  std::vector<std::vector<obs::timeline_event>> per_node;
  for (const auto& [node, dump] : obs::recorder_dump_all()) {
    EXPECT_EQ(obs::validate_recorder_dump(dump), "") << node;
    per_node.push_back(obs::parse_recorder_dump(dump));
  }
  return obs::merge_events(std::move(per_node));
}

/// Asserts the park -> resume contract on a merged timeline: every park
/// has a resume with the SAME trace id and the NEXT span, and the
/// object's quorum seed install (the serve of a SEED frame) sits
/// between them. Returns the number of parks found.
std::size_t check_park_resume(
    const std::vector<obs::timeline_event>& merged, bool expect_seed) {
  std::size_t parks = 0;
  for (std::size_t i = 0; i < merged.size(); ++i) {
    const auto& p = merged[i];
    if (p.ev != "park") continue;
    ++parks;
    EXPECT_NE(p.trace, 0u) << "parked op lost its trace id";
    bool resumed = false;
    bool seeded = false;
    for (std::size_t j = i + 1; j < merged.size(); ++j) {
      const auto& e = merged[j];
      if (e.ev == "serve" && e.type == "SEED" && e.obj == p.obj) {
        seeded = true;
      }
      if (e.ev == "resume" && e.node == p.node && e.trace == p.trace &&
          e.obj == p.obj) {
        // A new attempt is a new span of the same trace.
        EXPECT_EQ(e.span, p.span + 1);
        EXPECT_TRUE(!expect_seed || seeded)
            << "resume before the object's seed install in merged order";
        resumed = true;
        break;
      }
    }
    EXPECT_TRUE(resumed) << "park without a later resume, trace=0x"
                         << std::hex << p.trace;
  }
  return parks;
}

TEST(RecorderReshard, SimParkSeedResumeKeepTraceInCausalOrder) {
  recording_guard guard(true);
  // abd -> fast_swmr moves every object through the full dual-quorum
  // handoff; ops that hit a migrating object park. Not every seed
  // parks, so hunt a few until one does (deterministic per seed).
  std::size_t parks = 0;
  for (std::uint64_t seed = 1; seed <= 10 && parks == 0; ++seed) {
    stress_options opt;
    opt.protocol = "abd";
    opt.S = 8;
    opt.t = 1;
    opt.R = 2;
    opt.W = 1;
    opt.num_shards = 2;
    opt.num_keys = 4;
    opt.seed = seed;
    opt.label = "rec_sim_reshard";
    opt.reshard = true;
    opt.reshard_num_shards = 3;
    opt.reshard_protocols = {"fast_swmr"};
    opt.puts_per_writer = 150;
    opt.gets_per_reader = 150;
    const auto rep = run_sim_stress(opt);
    ASSERT_TRUE(rep.ok()) << rep.describe();
    const auto merged = merged_timeline();
    EXPECT_EQ(obs::validate_timeline(merged), "");
    // Sim events only: the run never touched a reactor thread.
    for (const auto& e : merged) EXPECT_TRUE(e.sim_domain) << e.node;
    parks = check_park_resume(merged, /*expect_seed=*/true);
  }
  EXPECT_GT(parks, 0u)
      << "no op ever parked across 10 seeds of a full-handoff reshard";
}

TEST(RecorderReshard, TcpReshardCarriesTraceIdsEndToEnd) {
  recording_guard guard(true);
  stress_options opt;
  opt.protocol = "abd";
  opt.S = 5;
  opt.t = 1;
  opt.R = 2;
  opt.W = 1;
  opt.num_shards = 2;
  opt.num_keys = 4;
  opt.seed = benchutil::stress_seed_from_env();
  opt.label = "rec_tcp_reshard";
  opt.reshard = true;
  opt.reshard_num_shards = 3;
  opt.reshard_protocols = {"fast_swmr"};
  opt.puts_per_writer = 100;
  opt.gets_per_reader = 100;
  const auto rep = run_tcp_stress(opt);
  ASSERT_TRUE(rep.ok()) << rep.describe();
  const auto merged = merged_timeline();
  ASSERT_FALSE(merged.empty());
  EXPECT_EQ(obs::validate_timeline(merged), "");
  // Reactor threads share one steady clock: everything is ns-domain.
  std::size_t data_recvs = 0;
  for (const auto& e : merged) {
    EXPECT_FALSE(e.sim_domain) << e.node;
    // Every client-issued data frame a server receives must carry the
    // op's trace -- across the reshard too. (Control-plane frames from
    // the coordinator and gossip may legitimately be untraced.)
    if (e.ev == "recv" && (e.type == "READ" || e.type == "WRITE" ||
                           e.type == "QUERY" || e.type == "WB")) {
      ++data_recvs;
      EXPECT_NE(e.trace, 0u) << "untraced " << e.type << " at " << e.node;
    }
  }
  EXPECT_GT(data_recvs, 0u);
  // Parks are timing-dependent over real sockets; when one happened,
  // hold it to the same trace/span contract as the sim (seed-install
  // ordering included -- dumps are taken after the run quiesces).
  check_park_resume(merged, /*expect_seed=*/true);
}

// ----------------------------------------------------------- forensics --

TEST(RecorderForensics, BrokenMwmrFailureLeavesMergeableDumps) {
  // The red path end to end: the naive one-round MWMR strawman fails
  // the checker; the harness must drop one pre-filtered recorder dump
  // per node, and the dumps must merge into a causally-valid timeline
  // showing both violating ops' round structure.
  recording_guard guard(true);
  bool caught = false;
  for (std::uint64_t seed = 1; seed <= 20 && !caught; ++seed) {
    stress_options opt;
    opt.protocol = "naive_fast_mwmr";
    opt.S = 4;
    opt.t = 1;
    opt.R = 2;
    opt.W = 2;
    opt.num_shards = 1;
    opt.num_keys = 1;
    opt.puts_per_writer = 60;
    opt.gets_per_reader = 60;
    opt.seed = seed;
    opt.label = "rec_meta_naive_mwmr";
    const auto rep = run_sim_stress(opt);
    if (rep.check.ok) continue;
    caught = true;
    ASSERT_FALSE(rep.recorder_paths.empty())
        << "failure with recording on produced no recorder dumps";
    EXPECT_NE(rep.describe().find("trace_merge"), std::string::npos)
        << rep.describe();
    std::vector<std::vector<obs::timeline_event>> per_node;
    for (const auto& path : rep.recorder_paths) {
      std::ifstream in(path);
      ASSERT_TRUE(in.good()) << path;
      std::stringstream ss;
      ss << in.rdbuf();
      const auto text = ss.str();
      ASSERT_EQ(obs::validate_recorder_dump(text), "") << path;
      per_node.push_back(obs::parse_recorder_dump(text));
    }
    const auto merged = obs::merge_events(std::move(per_node));
    ASSERT_FALSE(merged.empty());
    EXPECT_EQ(obs::validate_timeline(merged), "");
    // Both ops' rounds made it in: reads and writes, sent and served.
    const auto count = [&](const char* ev, const char* type) {
      return std::count_if(merged.begin(), merged.end(),
                           [&](const obs::timeline_event& e) {
                             return e.ev == ev && e.type == type;
                           });
    };
    EXPECT_GT(count("send", "READ"), 0);
    EXPECT_GT(count("recv", "READ"), 0);
    EXPECT_GT(count("send", "WRITE"), 0);
    EXPECT_GT(count("recv", "WRITE"), 0);
    // Dumps are pre-filtered to the violating object.
    const auto obj = merged.front().obj;
    for (const auto& e : merged) EXPECT_EQ(e.obj, obj);
    // The narrative and the catapult export both accept the merge.
    EXPECT_FALSE(obs::render_narrative(merged).empty());
    EXPECT_EQ(obs::validate_catapult(obs::render_catapult(merged)), "");
  }
  EXPECT_TRUE(caught)
      << "the non-linearizable strawman survived 20 seeds of stress";
}

}  // namespace
}  // namespace fastreg
