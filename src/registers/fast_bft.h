// The fast SWMR atomic register for the arbitrary-failure model (Figure 5).
// Tolerates t faulty servers of which up to b are malicious; fast reads and
// writes whenever S > (R+2)t + (R+1)b.
//
// Differences from the crash-model protocol of Figure 2 (Section 6.1):
//  * the writer digitally signs every (ts, value, prev) triple;
//  * servers ignore messages whose timestamp signature does not verify
//    ("receivevalid");
//  * the reader writes back the highest *signed* timestamp of its previous
//    read, discards READACKs that are provably malicious (bad signature,
//    timestamp lower than the written-back one, or missing itself in the
//    seen set), and uses the weakened predicate
//    |MS| >= S - a*t - (a-1)*b.
// The initial timestamp 0 is by convention unsigned (Section 6.1).
#pragma once

#include <optional>
#include <unordered_set>
#include <vector>

#include "registers/automaton.h"
#include "registers/predicate.h"

namespace fastreg {

/// A signed (ts, val, prev) triple as stored/forwarded by the protocol.
struct signed_value {
  tagged_value tv{};
  std::vector<std::uint8_t> sig{};
};

/// True iff `m` carries a valid writer signature over (ts, val, prev), or
/// is the unsigned initial timestamp.
[[nodiscard]] bool valid_signed_ts(const system_config& cfg, const message& m);

class fast_bft_writer final : public automaton, public writer_iface {
 public:
  /// `obj` is bound into every signature this writer produces, so a
  /// malicious server cannot replay this object's signed timestamps into
  /// another object's message stream (see signed_payload).
  explicit fast_bft_writer(system_config cfg, object_id obj = k_default_object);

  void on_message(netout& net, const process_id& from,
                  const message& m) override;
  [[nodiscard]] std::unique_ptr<automaton> clone() const override;
  [[nodiscard]] process_id self() const override { return writer_id(0); }

  void invoke_write(netout& net, value_t v) override;
  [[nodiscard]] bool write_in_progress() const override { return pending_; }
  [[nodiscard]] std::uint64_t writes_completed() const override {
    return completed_;
  }
  [[nodiscard]] int last_write_rounds() const override { return 1; }
  void seed_writer(const register_snapshot& migrated) override;

 private:
  system_config cfg_;
  object_id obj_{k_default_object};
  ts_t ts_{1};
  bool pending_{false};
  value_t cur_val_{};
  value_t last_val_{};
  std::unordered_set<std::uint32_t> acks_{};
  std::uint64_t completed_{0};
};

class fast_bft_reader final : public automaton, public reader_iface {
 public:
  fast_bft_reader(system_config cfg, std::uint32_t index);

  void on_message(netout& net, const process_id& from,
                  const message& m) override;
  [[nodiscard]] std::unique_ptr<automaton> clone() const override;
  [[nodiscard]] process_id self() const override {
    return reader_id(index_);
  }

  void invoke_read(netout& net) override;
  [[nodiscard]] bool read_in_progress() const override { return pending_; }
  [[nodiscard]] const std::optional<read_result>& last_read() const override {
    return last_result_;
  }
  [[nodiscard]] std::uint64_t reads_completed() const override {
    return completed_;
  }
  [[nodiscard]] std::uint32_t last_witness() const { return last_witness_; }
  /// READACKs discarded as provably malicious across the reader's lifetime.
  [[nodiscard]] std::uint64_t discarded_acks() const { return discarded_; }

 private:
  void decide();

  system_config cfg_;
  std::uint32_t index_;
  signed_value maxts_{};  // highest signed timestamp; written back (line 13)
  std::uint64_t rcounter_{0};
  bool pending_{false};
  std::vector<message> acks_{};
  std::unordered_set<std::uint32_t> ack_from_{};
  std::optional<read_result> last_result_{};
  std::uint64_t completed_{0};
  std::uint32_t last_witness_{0};
  std::uint64_t discarded_{0};
};

class fast_bft_server final : public automaton, public seedable {
 public:
  fast_bft_server(system_config cfg, std::uint32_t index);

  void on_message(netout& net, const process_id& from,
                  const message& m) override;
  [[nodiscard]] std::unique_ptr<automaton> clone() const override;
  [[nodiscard]] process_id self() const override {
    return server_id(index_);
  }

  [[nodiscard]] register_snapshot peek_state() const override;
  void seed_state(const register_snapshot& s) override;

  [[nodiscard]] const signed_value& stored() const { return cur_; }
  [[nodiscard]] const seen_set& seen() const { return seen_; }

 private:
  system_config cfg_;
  std::uint32_t index_;
  signed_value cur_{};
  seen_set seen_{};
  std::vector<std::uint64_t> counters_;
};

class fast_bft_protocol final : public protocol {
 public:
  [[nodiscard]] std::string name() const override { return "fast_bft"; }
  [[nodiscard]] bool feasible(const system_config& cfg) const override {
    return fast_bft_feasible(cfg.S(), cfg.t(), cfg.b(), cfg.R());
  }
  [[nodiscard]] int read_rounds() const override { return 1; }
  [[nodiscard]] int write_rounds() const override { return 1; }
  [[nodiscard]] std::unique_ptr<automaton> make_writer(
      const system_config& cfg, std::uint32_t index,
      object_id obj = k_default_object) const override;
  [[nodiscard]] std::unique_ptr<automaton> make_reader(
      const system_config& cfg, std::uint32_t index,
      object_id obj = k_default_object) const override;
  [[nodiscard]] std::unique_ptr<automaton> make_server(
      const system_config& cfg, std::uint32_t index,
      object_id obj = k_default_object) const override;
};

}  // namespace fastreg
