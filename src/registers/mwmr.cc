#include "registers/mwmr.h"

#include "common/check.h"
#include "obs/trace.h"
#include "registers/regular.h"

namespace fastreg {

// ----------------------------------------------------------- mwmr_writer --

mwmr_writer::mwmr_writer(system_config cfg, std::uint32_t index)
    : cfg_(std::move(cfg)), index_(index) {}

void mwmr_writer::invoke_write(netout& net, value_t v) {
  FASTREG_EXPECTS(phase_ == phase::idle);
  phase_ = phase::query;
  obs::op_begin(self(), /*is_write=*/true);
  obs::round_issue(self(), 1);
  pending_val_ = std::move(v);
  rcounter_ += 1;
  max_num_ = 0;
  acks_.clear();
  message m;
  m.type = msg_type::query_req;
  m.rcounter = rcounter_;
  for (std::uint32_t i = 0; i < cfg_.S(); ++i) {
    net.send(server_id(i), m);
  }
}

void mwmr_writer::on_message(netout& net, const process_id& from,
                             const message& m) {
  if (!from.is_server() || m.rcounter != rcounter_) return;
  if (phase_ == phase::query && m.type == msg_type::query_ack) {
    if (acks_.contains(from.index)) return;
    acks_.insert(from.index);
    max_num_ = std::max(max_num_, m.ts);
    if (acks_.size() >= cfg_.quorum()) {
      phase_ = phase::write;
      obs::round_ack(self(), 1);
      obs::round_issue(self(), 2);
      rcounter_ += 1;
      acks_.clear();
      message w;
      w.type = msg_type::write_req;
      w.ts = max_num_ + 1;
      // wid 0 is reserved for "no writer" in defaulted wts_t; writers use
      // index + 1 so that distinct writers always compare differently.
      w.wid = static_cast<std::int32_t>(index_) + 1;
      w.val = pending_val_;
      w.rcounter = rcounter_;
      for (std::uint32_t i = 0; i < cfg_.S(); ++i) {
        net.send(server_id(i), w);
      }
    }
    return;
  }
  if (phase_ == phase::write && m.type == msg_type::write_ack) {
    if (acks_.contains(from.index)) return;
    acks_.insert(from.index);
    if (acks_.size() >= cfg_.quorum()) {
      phase_ = phase::idle;
      completed_ += 1;
      obs::round_ack(self(), 2);
      obs::op_end(self(), 2);
    }
  }
}

std::unique_ptr<automaton> mwmr_writer::clone() const {
  return std::make_unique<mwmr_writer>(*this);
}

// ----------------------------------------------------------- mwmr_reader --

mwmr_reader::mwmr_reader(system_config cfg, std::uint32_t index)
    : cfg_(std::move(cfg)), index_(index) {}

void mwmr_reader::invoke_read(netout& net) {
  FASTREG_EXPECTS(phase_ == phase::idle);
  phase_ = phase::query;
  obs::op_begin(self(), /*is_write=*/false);
  obs::round_issue(self(), 1);
  rcounter_ += 1;
  best_ts_ = {};
  best_val_.clear();
  acks_.clear();
  message m;
  m.type = msg_type::read_req;
  m.rcounter = rcounter_;
  for (std::uint32_t i = 0; i < cfg_.S(); ++i) {
    net.send(server_id(i), m);
  }
}

void mwmr_reader::on_message(netout& net, const process_id& from,
                             const message& m) {
  if (!from.is_server() || m.rcounter != rcounter_) return;
  if (phase_ == phase::query && m.type == msg_type::read_ack) {
    if (acks_.contains(from.index)) return;
    acks_.insert(from.index);
    if (m.wts() > best_ts_) {
      best_ts_ = m.wts();
      best_val_ = m.val;
    }
    if (acks_.size() >= cfg_.quorum()) {
      phase_ = phase::write_back;
      obs::round_ack(self(), 1);
      obs::round_issue(self(), 2);
      rcounter_ += 1;
      acks_.clear();
      message wb;
      wb.type = msg_type::wb_req;
      wb.ts = best_ts_.num;
      wb.wid = best_ts_.wid;
      wb.val = best_val_;
      wb.rcounter = rcounter_;
      for (std::uint32_t i = 0; i < cfg_.S(); ++i) {
        net.send(server_id(i), wb);
      }
    }
    return;
  }
  if (phase_ == phase::write_back && m.type == msg_type::wb_ack) {
    if (acks_.contains(from.index)) return;
    acks_.insert(from.index);
    if (acks_.size() >= cfg_.quorum()) {
      phase_ = phase::idle;
      completed_ += 1;
      last_result_ = read_result{best_ts_.num, best_ts_.wid, best_val_, 2};
      obs::round_ack(self(), 2);
      obs::op_end(self(), 2);
    }
  }
}

std::unique_ptr<automaton> mwmr_reader::clone() const {
  return std::make_unique<mwmr_reader>(*this);
}

// ----------------------------------------------------- naive_mwmr_writer --

naive_mwmr_writer::naive_mwmr_writer(system_config cfg, std::uint32_t index)
    : cfg_(std::move(cfg)), index_(index) {}

void naive_mwmr_writer::invoke_write(netout& net, value_t v) {
  FASTREG_EXPECTS(!pending_);
  pending_ = true;
  obs::op_begin(self(), /*is_write=*/true);
  obs::round_issue(self(), 1);
  ts_ += 1;  // local counter only: this is what makes the protocol unsound
  rcounter_ += 1;
  acks_.clear();
  message m;
  m.type = msg_type::write_req;
  m.ts = ts_;
  m.wid = static_cast<std::int32_t>(index_) + 1;
  m.val = std::move(v);
  m.rcounter = rcounter_;
  for (std::uint32_t i = 0; i < cfg_.S(); ++i) {
    net.send(server_id(i), m);
  }
}

void naive_mwmr_writer::on_message(netout&, const process_id& from,
                                   const message& m) {
  if (!pending_ || m.type != msg_type::write_ack || !from.is_server()) return;
  if (m.rcounter != rcounter_) return;
  acks_.insert(from.index);
  if (acks_.size() >= cfg_.quorum()) {
    pending_ = false;
    completed_ += 1;
    obs::round_ack(self(), 1);
    obs::op_end(self(), 1);
  }
}

std::unique_ptr<automaton> naive_mwmr_writer::clone() const {
  return std::make_unique<naive_mwmr_writer>(*this);
}

// ------------------------------------------------------------- protocols --

std::unique_ptr<automaton> mwmr_protocol::make_writer(
    const system_config& cfg, std::uint32_t index, object_id) const {
  return std::make_unique<mwmr_writer>(cfg, index);
}

std::unique_ptr<automaton> mwmr_protocol::make_reader(
    const system_config& cfg, std::uint32_t index, object_id) const {
  return std::make_unique<mwmr_reader>(cfg, index);
}

std::unique_ptr<automaton> mwmr_protocol::make_server(
    const system_config& cfg, std::uint32_t index, object_id) const {
  return std::make_unique<quorum_server>(cfg, index);
}

// ------------------------------------------------------------ lww_server --

lww_server::lww_server(system_config cfg, std::uint32_t index)
    : cfg_(std::move(cfg)), index_(index) {}

void lww_server::on_message(netout& net, const process_id& from,
                            const message& m) {
  if (from.is_server()) return;
  message reply;
  reply.rcounter = m.rcounter;
  switch (m.type) {
    case msg_type::write_req: {
      // Last write wins among equal timestamp numbers.
      if (m.ts > ts_.num || (m.ts == ts_.num)) {
        ts_ = m.wts();
        val_ = m.val;
      }
      reply.type = msg_type::write_ack;
      reply.ts = m.ts;
      reply.wid = m.wid;
      break;
    }
    case msg_type::read_req: {
      reply.type = msg_type::read_ack;
      reply.ts = ts_.num;
      reply.wid = ts_.wid;
      reply.val = val_;
      break;
    }
    default:
      return;
  }
  net.send(from, reply);
}

std::unique_ptr<automaton> lww_server::clone() const {
  return std::make_unique<lww_server>(*this);
}

std::unique_ptr<automaton> naive_fast_mwmr_lww_protocol::make_writer(
    const system_config& cfg, std::uint32_t index, object_id) const {
  return std::make_unique<naive_mwmr_writer>(cfg, index);
}

std::unique_ptr<automaton> naive_fast_mwmr_lww_protocol::make_reader(
    const system_config& cfg, std::uint32_t index, object_id) const {
  return std::make_unique<regular_reader>(cfg, index);
}

std::unique_ptr<automaton> naive_fast_mwmr_lww_protocol::make_server(
    const system_config& cfg, std::uint32_t index, object_id) const {
  return std::make_unique<lww_server>(cfg, index);
}

std::unique_ptr<automaton> naive_fast_mwmr_protocol::make_writer(
    const system_config& cfg, std::uint32_t index, object_id) const {
  return std::make_unique<naive_mwmr_writer>(cfg, index);
}

std::unique_ptr<automaton> naive_fast_mwmr_protocol::make_reader(
    const system_config& cfg, std::uint32_t index, object_id) const {
  // One-round max reader: same as the regular reader.
  return std::make_unique<regular_reader>(cfg, index);
}

std::unique_ptr<automaton> naive_fast_mwmr_protocol::make_server(
    const system_config& cfg, std::uint32_t index, object_id) const {
  return std::make_unique<quorum_server>(cfg, index);
}

}  // namespace fastreg
