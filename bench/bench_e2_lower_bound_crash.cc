// E2 -- Proposition 5 / Figures 1, 3, 4: for R >= S/t - 2 no fast atomic
// SWMR register exists (crash model). This bench executes the paper's
// partial-run construction against the Figure 2 protocol across a grid of
// configurations and reports, for each:
//   * theory: is the configuration feasible (S > (R+2)t)?
//   * construction: applicable (the block partition exists)?
//   * result: checker-certified atomicity violation found?
// The two columns must complement each other exactly.
#include <cstdio>

#include "adversary/swmr_lower_bound.h"
#include "benchutil/table.h"
#include "registers/registry.h"

using namespace fastreg;
using namespace fastreg::adversary;

int main() {
  std::printf("E2: executable lower bound, crash model (Proposition 5)\n");
  std::printf("construction: wr -> Delta-pr_i chain -> pr^A/pr^B -> "
              "pr^C/pr^D\n\n");
  benchutil::table t({"S", "t", "R", "theory_fast", "construction",
                      "chain_reads", "prC_read", "violation"});
  auto proto = make_protocol("fast_swmr");
  int mismatches = 0;
  for (std::uint32_t S : {4u, 5u, 6u, 8u, 10u, 12u, 16u, 20u}) {
    for (std::uint32_t tf : {1u, 2u, 3u}) {
      for (std::uint32_t R : {2u, 3u, 4u}) {
        system_config cfg;
        cfg.servers = S;
        cfg.t_failures = tf;
        cfg.readers = R;
        const bool feasible = fast_swmr_feasible(S, tf, R);
        const auto rep = run_swmr_lower_bound(*proto, cfg);
        std::string chain = "-";
        if (rep.applicable) {
          chain.clear();
          for (std::size_t i = 0; i < rep.chain.size(); ++i) {
            chain += (i ? "," : "") + rep.chain[i];
          }
        }
        t.add_row({std::to_string(S), std::to_string(tf), std::to_string(R),
                   feasible ? "yes" : "no",
                   rep.applicable ? "applies" : "n/a", chain,
                   rep.read_pr_c ? *rep.read_pr_c == "" ? "(bottom)"
                                                        : *rep.read_pr_c
                                 : "-",
                   rep.applicable ? (rep.violation ? "VIOLATION" : "none")
                                  : "-"});
        // The theorem: violation exactly when infeasible.
        if (feasible == rep.applicable ||
            (rep.applicable && !rep.violation)) {
          ++mismatches;
        }
      }
    }
  }
  t.print();
  std::printf("\npaper vs measured: construction applies and breaks "
              "atomicity exactly when R >= S/t - 2. mismatches: %d\n",
              mismatches);
  return mismatches == 0 ? 0 : 1;
}
