// Microbenchmarks (google-benchmark): the hot paths that set the
// constant factors behind every experiment -- the fast-read predicate,
// the crypto substrate, wire codec, and raw simulator step throughput.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "crypto/rsa.h"
#include "crypto/sha256.h"
#include "crypto/sig.h"
#include "registers/message.h"
#include "registers/predicate.h"
#include "registers/registry.h"
#include "sim/world.h"

namespace fastreg {
namespace {

void BM_PredicateAllSeen(benchmark::State& state) {
  const auto S = static_cast<std::uint32_t>(state.range(0));
  const auto R = static_cast<std::uint32_t>(state.range(1));
  const std::uint32_t t = S / (R + 2) > 0 ? S / (R + 2) - 1 + 1 : 1;
  seen_set all;
  all.insert(writer_id(0));
  for (std::uint32_t i = 0; i < R; ++i) all.insert(reader_id(i));
  std::vector<seen_set> seen(S - t, all);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fast_read_predicate(
        std::span<const seen_set>(seen), S, t, 0, R));
  }
}
BENCHMARK(BM_PredicateAllSeen)->Args({8, 2})->Args({32, 6})->Args({64, 12});

void BM_PredicateWorstCaseMixed(benchmark::State& state) {
  const auto S = static_cast<std::uint32_t>(state.range(0));
  const auto R = static_cast<std::uint32_t>(state.range(1));
  const std::uint32_t t = 1;
  // Adversarial: distinct random-ish seen sets so the subset search works.
  rng r(7);
  std::vector<seen_set> seen;
  for (std::uint32_t i = 0; i + t < S; ++i) {
    seen_set s;
    s.insert(writer_id(0));
    for (std::uint32_t j = 0; j < R; ++j) {
      if (r.chance(1, 2)) s.insert(reader_id(j));
    }
    seen.push_back(s);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(fast_read_predicate(
        std::span<const seen_set>(seen), S, t, 0, R));
  }
}
BENCHMARK(BM_PredicateWorstCaseMixed)->Args({16, 4})->Args({64, 12});

void BM_Sha256(benchmark::State& state) {
  std::string payload(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::sha256::hash(payload));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_RsaSign(benchmark::State& state) {
  rng r(1);
  const auto kp = crypto::rsa_generate(512, r);
  const std::vector<std::uint8_t> payload(100, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::rsa_sign(kp.priv, payload));
  }
}
BENCHMARK(BM_RsaSign);

void BM_RsaVerify(benchmark::State& state) {
  rng r(2);
  const auto kp = crypto::rsa_generate(512, r);
  const std::vector<std::uint8_t> payload(100, 7);
  const auto sig = crypto::rsa_sign(kp.priv, payload);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::rsa_verify(kp.pub, payload, sig));
  }
}
BENCHMARK(BM_RsaVerify);

void BM_OracleSign(benchmark::State& state) {
  crypto::oracle_signature_scheme scheme(1);
  const std::vector<std::uint8_t> payload(100, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.sign(writer_id(0), payload));
  }
}
BENCHMARK(BM_OracleSign);

void BM_MessageCodec(benchmark::State& state) {
  message m;
  m.type = msg_type::read_ack;
  m.ts = 123456;
  m.val = std::string(static_cast<std::size_t>(state.range(0)), 'v');
  m.prev = m.val;
  m.seen.insert(writer_id(0));
  m.rcounter = 42;
  for (auto _ : state) {
    byte_writer w;
    encode_message(w, m);
    byte_reader r(std::span<const std::uint8_t>(w.bytes()));
    benchmark::DoNotOptimize(decode_message(r));
  }
}
BENCHMARK(BM_MessageCodec)->Arg(16)->Arg(1024);

void BM_SimulatorOpRoundTrip(benchmark::State& state) {
  // Full write+read cycle on the untimed simulator: measures raw steps/s.
  const auto S = static_cast<std::uint32_t>(state.range(0));
  system_config cfg;
  cfg.servers = S;
  cfg.t_failures = 1;
  cfg.readers = 1;
  sim::world w(cfg);
  auto proto = make_protocol("fast_swmr");
  w.install(*proto);
  rng r(3);
  int k = 0;
  for (auto _ : state) {
    w.invoke_write("v" + std::to_string(++k));
    w.run_random(r);
    w.invoke_read(0);
    w.run_random(r);
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_SimulatorOpRoundTrip)->Arg(4)->Arg(16)->Arg(64);

}  // namespace
}  // namespace fastreg

BENCHMARK_MAIN();
