#include "common/types.h"

#include "common/seen_set.h"

namespace fastreg {

std::string to_string(const process_id& p) {
  switch (p.r) {
    case role::writer:
      return p.index == 0 ? "w" : "w" + std::to_string(p.index + 1);
    case role::reader:
      return "r" + std::to_string(p.index + 1);
    case role::server:
      return "s" + std::to_string(p.index + 1);
  }
  return "?";
}

std::string seen_set::to_string() const {
  std::string out = "{";
  bool first = true;
  for (std::uint32_t slot = 0; slot < max_clients; ++slot) {
    if ((bits_ & (std::uint64_t{1} << slot)) == 0) continue;
    if (!first) out += ",";
    first = false;
    out += slot == 0 ? "w" : "r" + std::to_string(slot);
  }
  out += "}";
  return out;
}

}  // namespace fastreg
