// The unified pipelined store front-end (store/async_client.h): the
// same session surface drives the deterministic simulator and the real
// TCP cluster, so one scripted driver must produce verifier-clean,
// shape-identical histories on both. Also covered: the non-blocking
// admission statuses (window_full / key_busy) and their registry
// counters, backpressure against a paused (slow) server fleet,
// connection churn while a pipeline is in flight, and a multi-reactor
// hub+server run whose data races -- if any -- are TSan's to find.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "net/cluster.h"
#include "net/node.h"
#include "obs/metrics.h"
#include "store/async_client.h"
#include "store/sim_store.h"
#include "store/tcp_store.h"

namespace fastreg::store {
namespace {

using namespace std::chrono_literals;

store_config frontend_cfg(std::uint32_t S, std::uint32_t t,
                          std::uint32_t R) {
  store_config cfg;
  cfg.base.servers = S;
  cfg.base.t_failures = t;
  cfg.base.readers = R;
  cfg.base.writers = 1;
  cfg.num_shards = 2;
  cfg.shard_protocols = {"abd"};
  return cfg;
}

std::string script_key(int n) { return "k" + std::to_string(n % 4); }

/// The shared scripted driver: one writer and two readers interleave 30
/// blocking ops each through pipelined sessions (depth 3), then drain.
/// Works against ANY store_frontend -- that is the point of the test.
void run_script(store_frontend& fe) {
  auto w = fe.open_session(writer_id(0), /*depth=*/3);
  auto r0 = fe.open_session(reader_id(0), /*depth=*/3);
  auto r1 = fe.open_session(reader_id(1), /*depth=*/3);
  // Writes land first so no read ever targets a never-written key.
  for (int k = 0; k < 4; ++k) {
    ASSERT_TRUE(w->put(script_key(k), "seed" + std::to_string(k)));
  }
  ASSERT_TRUE(w->drain());
  for (int n = 0; n < 30; ++n) {
    ASSERT_TRUE(w->put(script_key(n), "v" + std::to_string(n)));
    ASSERT_TRUE(r0->get(script_key(n + 1)));
    ASSERT_TRUE(r1->get(script_key(n + 2)));
  }
  ASSERT_TRUE(w->drain());
  ASSERT_TRUE(r0->drain());
  ASSERT_TRUE(r1->drain());
  EXPECT_EQ(w->submitted(), 34u);
  EXPECT_EQ(r0->submitted(), 30u);
  EXPECT_EQ(r1->submitted(), 30u);
  EXPECT_EQ(w->in_flight(), 0u);
}

TEST(StoreFrontend, SameScriptOnSimAndTcpVerifierIdenticalShape) {
  const auto cfg = frontend_cfg(5, 1, 2);

  sim_store s(cfg);
  rng r(7);
  sim_frontend sim_fe(s, r);
  run_script(sim_fe);
  const auto sim_hist = sim_fe.gather();

  tcp_store ts(cfg);
  ts.start();
  run_script(ts.frontend());
  const auto tcp_hist = ts.gather();
  ts.stop();

  for (const auto* hist : {&sim_hist, &tcp_hist}) {
    EXPECT_TRUE(hist->all_complete());
    const auto res = hist->verify();
    EXPECT_TRUE(res.ok) << res.error;
  }
  // Identical shape: same keys, same per-key op count, same read/write
  // split. (Timestamps and read values legitimately differ: virtual
  // time and the sim's schedule vs wall clock and real concurrency.)
  EXPECT_EQ(sim_hist.total_ops(), tcp_hist.total_ops());
  ASSERT_EQ(sim_hist.key_count(), tcp_hist.key_count());
  for (const auto& [key, h] : sim_hist.all()) {
    ASSERT_TRUE(tcp_hist.all().contains(key)) << key;
    const auto& th = tcp_hist.all().at(key);
    EXPECT_EQ(h.ops().size(), th.ops().size()) << key;
    const auto writes = [](const checker::history& hh) {
      std::size_t n = 0;
      for (const auto& op : hh.ops()) n += op.is_write ? 1 : 0;
      return n;
    };
    EXPECT_EQ(writes(h), writes(th)) << key;
  }
}

/// Sum of an admission counter's delta across an interval scrape.
double admission_delta(const std::vector<obs::sample>& rows,
                       const char* result) {
  const std::string want = "fastreg_store_admission_total{result=\"" +
                           std::string(result) + "\"}";
  double s = 0;
  for (const auto& row : rows) {
    if (row.name == want) s += row.value;
  }
  return s;
}

TEST(StoreFrontend, SimAdmissionStatusesAndCounters) {
  const auto cfg = frontend_cfg(5, 1, 1);
  sim_store s(cfg);
  rng r(11);
  sim_frontend fe(s, r);
  obs::interval_scrape scrape;

  auto w = fe.open_session(writer_id(0), /*depth=*/2);
  EXPECT_EQ(w->try_put("k0", "a"), submit_status::submitted);
  // Same (client, key) already admitted: per-object well-formedness.
  EXPECT_EQ(w->try_put("k0", "b"), submit_status::key_busy);
  EXPECT_EQ(w->try_put("k1", "c"), submit_status::submitted);
  // Window of 2 is full, even for a fresh key.
  EXPECT_EQ(w->try_put("k2", "d"), submit_status::window_full);
  EXPECT_EQ(w->in_flight(), 2u);

  ASSERT_TRUE(w->drain());
  EXPECT_EQ(w->in_flight(), 0u);
  // The window and the keys are free again.
  EXPECT_EQ(w->try_put("k0", "e"), submit_status::submitted);
  ASSERT_TRUE(w->drain());
  EXPECT_EQ(w->take_results().size(), 3u);

  const auto delta = scrape.take();
  EXPECT_GE(admission_delta(delta, "submitted"), 3.0);
  EXPECT_GE(admission_delta(delta, "key_busy"), 1.0);
  EXPECT_GE(admission_delta(delta, "window_full"), 1.0);

  const auto res = fe.gather().verify();
  EXPECT_TRUE(res.ok) << res.error;
}

TEST(StoreFrontend, TcpBackpressureAgainstPausedServers) {
  // Pause-fault EVERY server: requests keep leaving the client (kernel
  // and window buffers absorb them) but no completion can arrive, so
  // the session's window fills and admission pushes back instead of
  // buffering unboundedly. Healing releases the queued bytes and the
  // pipeline drains clean.
  const auto cfg = frontend_cfg(3, 1, 1);
  tcp_store ts(cfg);
  ts.start();
  for (int k = 0; k < 3; ++k) {
    ASSERT_TRUE(ts.put(0, "k" + std::to_string(k), "seed"));
  }
  // Warm the reader's connections BEFORE the pause so the submits below
  // test backpressure, not connect-while-paused.
  ASSERT_TRUE(ts.get(0, "k0").has_value());

  auto se = ts.open_session(reader_id(0), /*depth=*/2);
  for (std::uint32_t i = 0; i < 3; ++i) {
    ts.cluster().server(i).set_fault_all(net::conn_fault::pause);
  }
  EXPECT_EQ(se->try_get("k0"), submit_status::submitted);
  EXPECT_EQ(se->try_get("k1"), submit_status::submitted);
  EXPECT_EQ(se->try_get("k2"), submit_status::window_full);
  EXPECT_FALSE(se->drain(100ms));
  EXPECT_EQ(se->in_flight(), 2u);

  for (std::uint32_t i = 0; i < 3; ++i) {
    ts.cluster().server(i).set_fault_all(net::conn_fault::none);
  }
  ASSERT_TRUE(se->drain(10s));
  EXPECT_EQ(se->take_results().size(), 2u);
  const auto res = ts.gather().verify();
  EXPECT_TRUE(res.ok) << res.error;
  ts.stop();
}

TEST(StoreFrontend, TcpConnectionChurnMidPipeline) {
  // Reset every connection of one server (within the failure budget)
  // while both sessions hold full windows: in-flight ops must complete
  // from the surviving quorum, later sends must transparently
  // reconnect, and the whole history must still verify.
  const auto cfg = frontend_cfg(5, 1, 1);
  tcp_store ts(cfg);
  ts.start();
  for (int k = 0; k < 4; ++k) {
    ASSERT_TRUE(ts.put(0, script_key(k), "seed"));
  }

  auto w = ts.open_session(writer_id(0), /*depth=*/4);
  auto r = ts.open_session(reader_id(0), /*depth=*/4);
  for (int k = 0; k < 4; ++k) {
    ASSERT_EQ(w->try_put(script_key(k), "mid" + std::to_string(k)),
              submit_status::submitted);
    ASSERT_EQ(r->try_get(script_key(k)), submit_status::submitted);
  }
  ts.cluster().server(4).reset_all_conns();
  for (int n = 0; n < 20; ++n) {
    ASSERT_TRUE(w->put(script_key(n), "post" + std::to_string(n)));
    ASSERT_TRUE(r->get(script_key(n + 1)));
  }
  ASSERT_TRUE(w->drain());
  ASSERT_TRUE(r->drain());
  EXPECT_EQ(w->take_results().size(), 24u);
  EXPECT_EQ(r->take_results().size(), 24u);

  const auto hist = ts.gather();
  EXPECT_TRUE(hist.all_complete());
  const auto res = hist.verify();
  EXPECT_TRUE(res.ok) << res.error;
  ts.stop();
}

TEST(StoreFrontend, MultiReactorHubAndServersConcurrentSessions) {
  // The TSan target: 2-reactor servers, a shared 2-reactor hub node
  // carrying every client, and five driver threads running pipelined
  // sessions concurrently -- cross-reactor frame shipping, the reactor
  // pool's accept dealing, and the shared op log all under real
  // parallelism.
  const auto cfg = frontend_cfg(3, 1, 4);
  net::cluster_options copt;
  copt.server_reactors = 2;
  copt.client_hub = true;
  copt.hub_reactors = 2;
  tcp_store ts(cfg, net::node_options{}, copt);
  ts.start();
  for (int k = 0; k < 4; ++k) {
    ASSERT_TRUE(ts.put(0, script_key(k), "seed"));
  }

  std::thread writer([&] {
    auto w = ts.open_session(writer_id(0), /*depth=*/4);
    for (int n = 0; n < 40; ++n) {
      EXPECT_TRUE(w->put(script_key(n), "v" + std::to_string(n)));
    }
    EXPECT_TRUE(w->drain());
  });
  std::vector<std::thread> readers;
  for (std::uint32_t i = 0; i < 4; ++i) {
    readers.emplace_back([&, i] {
      auto se = ts.open_session(reader_id(i), /*depth=*/4);
      for (int n = 0; n < 40; ++n) {
        EXPECT_TRUE(se->get(script_key(n + static_cast<int>(i))));
      }
      EXPECT_TRUE(se->drain());
    });
  }
  writer.join();
  for (auto& th : readers) th.join();

  const auto hist = ts.gather();
  EXPECT_TRUE(hist.all_complete());
  const auto res = hist.verify();
  EXPECT_TRUE(res.ok) << res.error;
  ts.stop();
}

}  // namespace
}  // namespace fastreg::store
