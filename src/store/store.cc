#include "store/store.h"

#include <algorithm>

#include "common/check.h"

namespace fastreg::store {

bool store_protocol::feasible(const system_config& cfg) const {
  const auto map = shards();
  for (std::uint32_t s = 0; s < map->num_shards(); ++s) {
    if (!map->protocol_for_shard(s).feasible(cfg)) return false;
  }
  return true;
}

int store_protocol::read_rounds() const {
  const auto map = shards();
  int rounds = 1;
  for (std::uint32_t s = 0; s < map->num_shards(); ++s) {
    rounds = std::max(rounds, map->protocol_for_shard(s).read_rounds());
  }
  return rounds;
}

int store_protocol::write_rounds() const {
  const auto map = shards();
  int rounds = 1;
  for (std::uint32_t s = 0; s < map->num_shards(); ++s) {
    rounds = std::max(rounds, map->protocol_for_shard(s).write_rounds());
  }
  return rounds;
}

std::unique_ptr<automaton> store_protocol::make_writer(
    const system_config& cfg, std::uint32_t index, object_id) const {
  FASTREG_EXPECTS(cfg.W() == config().base.W());
  return std::make_unique<client>(shards(), writer_id(index),
                                  maps_->source());
}

std::unique_ptr<automaton> store_protocol::make_reader(
    const system_config& cfg, std::uint32_t index, object_id) const {
  FASTREG_EXPECTS(cfg.R() == config().base.R());
  return std::make_unique<client>(shards(), reader_id(index),
                                  maps_->source());
}

std::unique_ptr<automaton> store_protocol::make_server(
    const system_config& cfg, std::uint32_t index, object_id) const {
  FASTREG_EXPECTS(cfg.S() == config().base.S());
  return std::make_unique<server>(shards(), index);
}

}  // namespace fastreg::store
