// Length-prefixed framing for protocol messages over TCP.
//
// Frame layout: u32 length (LE) | u8 kind | payload.
//   kind 0 (hello): payload = sender process_id. Sent once per connection
//                   so the acceptor learns who is on the other end.
//   kind 1 (msg):   payload = sender process_id + encoded message.
//   kind 2 (batch): payload = sender process_id + u32 count + count
//                   encoded messages. One frame per send_batch call, so a
//                   burst of store traffic to one destination pays the
//                   frame and syscall overhead once.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <vector>

#include "registers/message.h"

namespace fastreg::net {

enum class frame_kind : std::uint8_t { hello = 0, msg = 1, batch = 2 };

struct frame {
  frame_kind kind{frame_kind::msg};
  process_id from{};
  std::optional<message> msg{};  // present for kind::msg
  std::vector<message> batch{};  // non-empty for kind::batch
};

[[nodiscard]] std::vector<std::uint8_t> encode_hello(const process_id& from);
[[nodiscard]] std::vector<std::uint8_t> encode_msg_frame(
    const process_id& from, const message& m);
[[nodiscard]] std::vector<std::uint8_t> encode_batch_frame(
    const process_id& from, std::span<const message> msgs);

/// Incremental frame decoder: feed raw bytes, pop complete frames.
/// Malformed frames (bad decode) are dropped with a count, never fatal --
/// a Byzantine peer must not be able to crash a correct process.
///
/// Two failure severities:
///  * A frame with a PLAUSIBLE length prefix but an undecodable payload
///    is skipped by exactly its declared extent; later frames on the
///    stream still parse (malformed_count grows).
///  * An IMPLAUSIBLE length prefix (zero, or beyond max_frame_bytes)
///    means framing itself is lost: every byte after it is unattributable
///    garbage, and scanning for the "next" frame could resynchronize on
///    attacker-chosen bytes. The buffer latches corrupt(): no further
///    frames are produced and fed bytes are discarded. The connection
///    MUST be reset -- net::node closes it (the peer reconnects with
///    fresh framing state and retransmits per protocol retry rules);
///    intact frames popped before the corruption are unaffected.
class frame_buffer {
 public:
  void feed(const std::uint8_t* data, std::size_t n);
  [[nodiscard]] std::optional<frame> next();
  [[nodiscard]] std::uint64_t malformed_count() const { return malformed_; }
  /// Framing lost (hopeless length prefix): reset the connection.
  [[nodiscard]] bool corrupt() const { return corrupt_; }

  /// Upper bound on accepted frame payloads; larger frames mark the
  /// stream corrupt.
  static constexpr std::uint32_t max_frame_bytes = 16 * 1024 * 1024;

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t consumed_{0};
  std::uint64_t malformed_{0};
  bool corrupt_{false};
};

}  // namespace fastreg::net
