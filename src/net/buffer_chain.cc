#include "net/buffer_chain.h"

#include <algorithm>

#include "common/check.h"

namespace fastreg::net {

std::vector<std::uint8_t>& buffer_chain::tail_for(std::size_t upcoming) {
  if (!blocks_.empty()) {
    auto& tail = blocks_.back().data;
    if (tail.size() + upcoming <= tail.capacity()) return tail;
  }
  blocks_.emplace_back();
  auto& b = blocks_.back();
  if (!spare_.empty()) {
    b.data = std::move(spare_.back());
    spare_.pop_back();
  }
  b.data.reserve(std::max(block_bytes, upcoming));
  return b.data;
}

std::size_t buffer_chain::bytes() const {
  std::size_t n = 0;
  for (const auto& b : blocks_) n += b.data.size() - b.off;
  return n;
}

std::size_t buffer_chain::fill_iovec(struct iovec* iov,
                                     std::size_t max) const {
  std::size_t n = 0;
  for (const auto& b : blocks_) {
    if (n == max) break;
    const std::size_t len = b.data.size() - b.off;
    if (len == 0) continue;  // tail block opened but not yet written into
    iov[n].iov_base =
        const_cast<std::uint8_t*>(b.data.data()) + b.off;
    iov[n].iov_len = len;
    ++n;
  }
  return n;
}

void buffer_chain::consume(std::size_t n) {
  while (n > 0) {
    FASTREG_EXPECTS(!blocks_.empty());
    auto& b = blocks_.front();
    const std::size_t avail = b.data.size() - b.off;
    // A zero-length block can only be the not-yet-filled tail; n > 0 past
    // it would mean the caller consumed more than bytes().
    FASTREG_CHECK(avail > 0);
    const std::size_t take = std::min(avail, n);
    b.off += take;
    n -= take;
    if (b.off == b.data.size()) {
      recycle(std::move(b.data));
      blocks_.pop_front();
    }
  }
  // An empty tail block left behind by consuming everything written so
  // far (off == size == 0 never happens: recycle pops exact drains); a
  // zero-length front block can only be the not-yet-filled tail, keep it.
}

void buffer_chain::clear() {
  for (auto& b : blocks_) recycle(std::move(b.data));
  blocks_.clear();
}

void buffer_chain::recycle(std::vector<std::uint8_t> data) {
  // Oversized one-off blocks (giant frames) are not worth keeping.
  if (spare_.size() >= max_spare_blocks || data.capacity() > 2 * block_bytes) {
    return;
  }
  data.clear();
  spare_.push_back(std::move(data));
}

}  // namespace fastreg::net
