// E11 -- the E1/E8 shape on a real network stack: localhost TCP with one
// reactor thread per process. Wall-clock microseconds; absolute numbers
// are machine-dependent, the ratios are the reproduction target:
// abd read ~= 2x fast read; maxmin in between; write ~= fast read.
//
// `--trace-out FILE` skips the latency table and instead runs a short
// flight-recorded pass per protocol, merges every node's recorder ring
// into one causally-ordered timeline, and writes it as Chrome
// trace-event JSON (load in about:tracing or Perfetto). CI smoke-runs
// this and validates the output with `trace_merge --validate`.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "benchutil/stats.h"
#include "benchutil/table.h"
#include "checker/atomicity.h"
#include "crypto/sig.h"
#include "net/cluster.h"
#include "obs/recorder.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "registers/registry.h"

using namespace fastreg;
using namespace fastreg::benchutil;

namespace {

struct tcp_result {
  stats read_us;
  stats write_us;
  obs::rounds_summary traced;
  bool atomic{false};
};

tcp_result run_tcp(const std::string& proto, std::uint32_t S, std::uint32_t t,
                   const std::string& sigs, int ops,
                   std::uint32_t window_us) {
  system_config cfg;
  cfg.servers = S;
  cfg.t_failures = t;
  cfg.readers = 1;
  if (!sigs.empty()) cfg.sigs = crypto::make_signature_scheme(sigs);
  net::node_options nopt;
  nopt.batch_window_us = window_us;
  net::cluster c(cfg, *make_protocol(proto), nopt);
  c.start();
  tcp_result out;
  // Warmup: establish connections.
  (void)c.writer().blocking_write("warmup");
  (void)c.reader(0).blocking_read();
  for (int k = 0; k < ops; ++k) {
    auto t0 = std::chrono::steady_clock::now();
    const bool ok = c.writer().blocking_write("v" + std::to_string(k + 1));
    auto t1 = std::chrono::steady_clock::now();
    const auto rd = c.reader(0).blocking_read();
    auto t2 = std::chrono::steady_clock::now();
    if (!ok || !rd) continue;
    out.write_us.add(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
    out.read_us.add(
        std::chrono::duration<double, std::micro>(t2 - t1).count());
  }
  // Rounds column: a short traced pass AFTER the latency loop, so the
  // tracer's (cheap but nonzero) recording never touches the latency
  // numbers above. The hooks fire on the client reactor threads; 20 ops
  // are plenty to pin a mean that must be exactly 1.0 or 2.0.
  obs::set_tracing(true);
  obs::reset_traces();
  for (int k = 0; k < 20; ++k) {
    (void)c.writer().blocking_write("t" + std::to_string(k));
    (void)c.reader(0).blocking_read();
  }
  out.traced = obs::summarize_rounds(obs::take_traces());
  obs::set_tracing(false);
  out.atomic = checker::check_swmr_atomicity(c.gather_history()).ok;
  c.stop();
  return out;
}

/// --trace-out: a few flight-recorded round trips per protocol at
/// window 0, merged across every node's ring into catapult JSON.
int run_trace_out(const char* out_path) {
  std::printf("E11 --trace-out: recording 10 round trips per protocol\n");
  obs::set_recording(true);
  obs::recorder_reset_all();
  for (const char* proto : {"fast_swmr", "abd", "maxmin"}) {
    system_config cfg;
    cfg.servers = 5;
    cfg.t_failures = 1;
    cfg.readers = 1;
    net::cluster c(cfg, *make_protocol(proto), {});
    c.start();
    for (int k = 0; k < 10; ++k) {
      (void)c.writer().blocking_write(std::string(proto) + ":" +
                                      std::to_string(k));
      (void)c.reader(0).blocking_read();
    }
    c.stop();
  }
  obs::set_recording(false);
  std::vector<std::vector<obs::timeline_event>> per_node;
  for (const auto& [node, dump] : obs::recorder_dump_all()) {
    if (const auto err = obs::validate_recorder_dump(dump); !err.empty()) {
      std::fprintf(stderr, "E11: dump of %s invalid: %s\n", node.c_str(),
                   err.c_str());
      return 1;
    }
    per_node.push_back(obs::parse_recorder_dump(dump));
  }
  const auto merged = obs::merge_events(std::move(per_node));
  if (const auto err = obs::validate_timeline(merged); !err.empty()) {
    std::fprintf(stderr, "E11: causal check failed: %s\n", err.c_str());
    return 1;
  }
  const auto json = obs::render_catapult(merged);
  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "E11: cannot write %s\n", out_path);
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("E11: wrote %s (%zu events from %zu nodes)\n", out_path,
              merged.size(), obs::recorder_dump_all().size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 2 && std::strcmp(argv[1], "--trace-out") == 0) {
    return run_trace_out(argv[2]);
  }
  std::printf("E11: latency over real TCP sockets (localhost, "
              "microseconds)\n\n");
  table t({"proto", "S", "sigs", "window_us", "read_p50_us", "read_p99_us",
           "write_p50_us", "read/write", "rd_rounds", "wr_rounds",
           "atomic"});
  const int ops = 300;
  struct row {
    const char* proto;
    std::uint32_t S, t;
    const char* sigs;
    std::uint32_t window_us;
  };
  // window_us = 0 is the latency-first default (flush within the step);
  // the windowed rows price the Nagle-style coalescing in p50 terms for
  // single blocking ops -- the worst case for a window, since nothing
  // else shares the flush.
  for (const auto c :
       {row{"fast_swmr", 5, 1, "", 0}, row{"abd", 5, 1, "", 0},
        row{"maxmin", 5, 1, "", 0}, row{"fast_bft", 7, 1, "oracle", 0},
        row{"fast_bft", 7, 1, "rsa", 0}, row{"fast_swmr", 5, 1, "", 200},
        row{"abd", 5, 1, "", 200}}) {
    const auto res = run_tcp(c.proto, c.S, c.t, c.sigs,
                             std::string(c.sigs) == "rsa" ? 60 : ops,
                             c.window_us);
    const double ratio =
        res.write_us.p50() > 0 ? res.read_us.p50() / res.write_us.p50() : 0;
    t.add_row({c.proto, std::to_string(c.S),
               std::string(c.sigs).empty() ? "-" : c.sigs,
               std::to_string(c.window_us),
               fmt(res.read_us.p50()), fmt(res.read_us.p99()),
               fmt(res.write_us.p50()), fmt(ratio, 2),
               fmt(res.traced.read_rounds), fmt(res.traced.write_rounds),
               res.atomic ? "yes" : "NO"});
  }
  t.print();
  std::printf("\nexpected shape: fast_swmr read/write ~= 1.0 (both one "
              "RTT); abd ~= 2.0; maxmin between; RSA signing adds a "
              "visible constant to fast_bft writes and reads. rd/wr_rounds "
              "are tracer-measured on a separate short pass: fast_swmr "
              "and maxmin reads 1.0, abd reads 2.0, all writes 1.0. The "
              "window_us=200 rows show the batching window's latency tax "
              "on isolated ops -- roughly the window per round trip; "
              "throughput workloads buy it back (E12c).\n");
  return 0;
}
