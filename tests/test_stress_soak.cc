// Cross-protocol randomized stress/soak suite on the benchutil stress
// harness: every register protocol, sim and TCP, crashes, message delays
// and live reshards mid-run, with every per-key history verified -- at
// history sizes (5000+ ops on one key) only the polynomial MWMR checker
// can handle.
//
// Reproducibility: the seed comes from FASTREG_STRESS_SEED (fresh entropy
// otherwise) and is printed by every failure, which also names the file
// the failing per-key history was dumped to. FASTREG_STRESS_ITERS scales
// the op counts (the nightly soak job sets it to 20).
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "benchutil/stress.h"

namespace fastreg::benchutil {
namespace {

void expect_ok(const stress_report& rep) {
  EXPECT_TRUE(rep.ok()) << rep.describe();
}

// --------------------------------------------- every protocol, both nets

struct proto_case {
  const char* name;
  std::uint32_t S, t, b, R, W;
  const char* sigs;
};

const proto_case k_proto_cases[] = {
    {"abd", 5, 2, 0, 2, 1, ""},
    {"mwmr", 5, 1, 0, 2, 2, ""},
    {"fast_swmr", 8, 1, 0, 2, 1, ""},
    {"fast_bft", 8, 1, 1, 1, 1, "oracle"},
    {"regular", 5, 2, 0, 3, 1, ""},
};

stress_options options_for(const proto_case& c, const char* transport) {
  stress_options opt;
  opt.protocol = c.name;
  opt.S = c.S;
  opt.t = c.t;
  opt.b = c.b;
  opt.R = c.R;
  opt.W = c.W;
  opt.sig_scheme = c.sigs;
  opt.num_shards = 2;
  opt.num_keys = 3;
  opt.seed = stress_seed_from_env();
  opt.label = std::string("stress_") + c.name + "_" + transport;
  return opt;
}

class EveryProtocolStress : public ::testing::TestWithParam<proto_case> {};

TEST_P(EveryProtocolStress, SimRandomReorderSchedule) {
  auto opt = options_for(GetParam(), "sim");
  opt.puts_per_writer = stress_iters(80);
  opt.gets_per_reader = stress_iters(80);
  expect_ok(run_sim_stress(opt));
}

TEST_P(EveryProtocolStress, SimTimedDelaySchedule) {
  auto opt = options_for(GetParam(), "sim_timed");
  opt.timed = true;
  opt.puts_per_writer = stress_iters(60);
  opt.gets_per_reader = stress_iters(60);
  expect_ok(run_sim_stress(opt));
}

TEST_P(EveryProtocolStress, TcpConcurrentClients) {
  auto opt = options_for(GetParam(), "tcp");
  opt.puts_per_writer = stress_iters(40);
  opt.gets_per_reader = stress_iters(40);
  expect_ok(run_tcp_stress(opt));
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, EveryProtocolStress,
                         ::testing::ValuesIn(k_proto_cases),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

// ------------------------------------------------- MWMR at soak scale --

stress_options mwmr_base(const char* label) {
  stress_options opt;
  opt.protocol = "mwmr";
  opt.S = 5;
  opt.t = 1;
  opt.R = 2;
  opt.W = 2;
  opt.num_shards = 1;
  opt.num_keys = 1;  // everything lands on one key: maximal contention
  opt.seed = stress_seed_from_env();
  opt.label = label;
  return opt;
}

TEST(StressSoak, MwmrSimFiveThousandOpsOneKeyWithCrash) {
  // >= 5000 multi-writer ops on a single key, with a server crashing a
  // third of the way in -- one verification call on a history the
  // exponential checker could never touch (its cap is 63 ops).
  auto opt = mwmr_base("soak_mwmr_sim_crash");
  opt.puts_per_writer = stress_iters(1300);
  opt.gets_per_reader = stress_iters(1300);
  opt.crash_servers = 1;
  const auto rep = run_sim_stress(opt);
  expect_ok(rep);
  EXPECT_GE(rep.max_key_ops, 5000u) << rep.describe();
}

TEST(StressSoak, MwmrSimPartitionMinorityThenHeal) {
  // A minority server is link-partitioned from the whole system a third
  // of the way into a contended multi-writer run and healed at two
  // thirds: its stalled messages (including acks for long-decided
  // timestamps) land in one burst after the heal, and the full history
  // must still verify with zero violations.
  auto opt = mwmr_base("soak_mwmr_sim_partition");
  opt.puts_per_writer = stress_iters(1300);
  opt.gets_per_reader = stress_iters(1300);
  opt.partition_servers = 1;
  const auto rep = run_sim_stress(opt);
  expect_ok(rep);
  EXPECT_GE(rep.max_key_ops, 5000u) << rep.describe();
}

TEST(StressSoak, MwmrSimTimedPartitionAndCrashDisjointServers) {
  // Timed schedule with BOTH failure flavors at once: one server crashes
  // (taken from the high end of the index range) while another (low end,
  // so the sets are disjoint by construction) is partitioned and later
  // healed. S=7, t=2: the two unreachable servers together stay within
  // the tolerated budget, so every op keeps completing throughout.
  auto opt = mwmr_base("soak_mwmr_sim_part_crash");
  opt.S = 7;
  opt.t = 2;
  opt.timed = true;
  opt.puts_per_writer = stress_iters(400);
  opt.gets_per_reader = stress_iters(400);
  opt.crash_servers = 1;
  opt.partition_servers = 1;
  expect_ok(run_sim_stress(opt));
}

TEST(StressSoak, MwmrSimTimedDelaysFiveThousandOps) {
  auto opt = mwmr_base("soak_mwmr_sim_timed");
  opt.timed = true;
  opt.puts_per_writer = stress_iters(1300);
  opt.gets_per_reader = stress_iters(1300);
  const auto rep = run_sim_stress(opt);
  expect_ok(rep);
  EXPECT_GE(rep.max_key_ops, 5000u) << rep.describe();
}

TEST(StressSoak, MwmrSimLiveReshardMidRun) {
  // A live reshard (same protocol, shard count 1 -> 2: epoch bump, epoch
  // fencing, client refetch/reissue) lands mid-workload; the combined
  // history must still linearize per key.
  auto opt = mwmr_base("soak_mwmr_sim_reshard");
  opt.num_keys = 2;
  opt.reshard = true;
  opt.puts_per_writer = stress_iters(650);
  opt.gets_per_reader = stress_iters(650);
  const auto rep = run_sim_stress(opt);
  expect_ok(rep);
  EXPECT_EQ(rep.final_epoch, 1u) << rep.describe();
}

TEST(StressSoak, MwmrTcpFiveThousandOpsOneKey) {
  // The same soak scale over real sockets: 2 writer threads and 2 reader
  // threads hammering one key.
  auto opt = mwmr_base("soak_mwmr_tcp");
  opt.puts_per_writer = stress_iters(1300);
  opt.gets_per_reader = stress_iters(1300);
  const auto rep = run_tcp_stress(opt);
  expect_ok(rep);
  EXPECT_GE(rep.max_key_ops, 5000u) << rep.describe();
}

TEST(StressSoak, MwmrTcpPartitionPauseSoakThenHeal) {
  // The TCP flavor of the partition soak: the minority server's
  // connections are pause-faulted (net::conn_fault::pause -- bytes queue
  // on both sides of every socket) a third of the way into a contended
  // multi-writer run and released at two thirds. S=5, t=1: quorums keep
  // completing without the paused server, so no op may time out, and the
  // stale flood that flushes at the heal must land with zero violations.
  auto opt = mwmr_base("soak_mwmr_tcp_partition");
  opt.partition_servers = 1;
  opt.puts_per_writer = stress_iters(250);
  opt.gets_per_reader = stress_iters(250);
  const auto rep = run_tcp_stress(opt);
  expect_ok(rep);
}

TEST(StressSoak, MwmrTcpCrashAndReshardMidRun) {
  auto opt = mwmr_base("soak_mwmr_tcp_crash_reshard");
  opt.num_keys = 2;
  opt.crash_servers = 1;
  opt.reshard = true;
  opt.puts_per_writer = stress_iters(250);
  opt.gets_per_reader = stress_iters(250);
  const auto rep = run_tcp_stress(opt);
  expect_ok(rep);
  EXPECT_EQ(rep.final_epoch, 1u) << rep.describe();
}

// --------------------------------- crash, restart-with-state, verify --

/// Scratch durability directory for one soak run, removed afterwards.
struct soak_dir {
  explicit soak_dir(const char* tag)
      : path(std::filesystem::temp_directory_path() /
             (std::string("fastreg_soak_") + tag + "_" +
              std::to_string(::getpid()))) {
    std::filesystem::create_directories(path);
  }
  ~soak_dir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::filesystem::path path;
};

TEST(StressSoak, MwmrSimCrashThenRestartWithDurableState) {
  // The crash-RECOVERY soak: a server is killed a third of the way into
  // a contended multi-writer run and restarted at two thirds, replaying
  // its snapshot + op log (fsync policy from FASTREG_FSYNC -- the ASan
  // recovery job runs this under `never`). The final third hammers the
  // rejoined server, so recovered-but-stale state is a checker violation.
  soak_dir dir("sim_restart");
  auto opt = mwmr_base("soak_mwmr_sim_restart");
  opt.puts_per_writer = stress_iters(1300);
  opt.gets_per_reader = stress_iters(1300);
  opt.crash_servers = 1;
  opt.restart_crashed = true;
  opt.persist_dir = dir.path.string();
  const auto rep = run_sim_stress(opt);
  expect_ok(rep);
  EXPECT_GE(rep.max_key_ops, 5000u) << rep.describe();
}

TEST(StressSoak, MwmrTcpCrashThenRestartWithDurableState) {
  // Same schedule over real sockets: node::stop mid-load, then
  // tcp_store::restart_server rebinds the original port and replays;
  // clients reconnect lazily and every history must still linearize.
  soak_dir dir("tcp_restart");
  auto opt = mwmr_base("soak_mwmr_tcp_restart");
  opt.puts_per_writer = stress_iters(250);
  opt.gets_per_reader = stress_iters(250);
  opt.crash_servers = 1;
  opt.restart_crashed = true;
  opt.persist_dir = dir.path.string();
  const auto rep = run_tcp_stress(opt);
  expect_ok(rep);
}

// -------------------------------------- reshard with a real handoff --

TEST(StressSoak, SwmrSimReshardWithFullHandoffUnderLoad) {
  // abd -> fast_swmr switches every object's protocol, so the reshard
  // runs the full dual-quorum handoff (fence, drain, state read, writer
  // floor, quorum seed, resume) under sustained load.
  stress_options opt;
  opt.protocol = "abd";
  opt.S = 8;
  opt.t = 1;
  opt.R = 2;
  opt.W = 1;
  opt.num_shards = 2;
  opt.num_keys = 4;
  opt.seed = stress_seed_from_env();
  opt.label = "soak_swmr_sim_handoff";
  opt.reshard = true;
  opt.reshard_num_shards = 3;
  opt.reshard_protocols = {"fast_swmr"};
  opt.puts_per_writer = stress_iters(400);
  opt.gets_per_reader = stress_iters(400);
  const auto rep = run_sim_stress(opt);
  expect_ok(rep);
  EXPECT_EQ(rep.final_epoch, 1u) << rep.describe();
}

// ------------------------------------------- the harness catches bugs --

TEST(StressSoak, HarnessCatchesABrokenMwmrProtocol) {
  // Meta-test: drive the one-round MWMR strawman (not linearizable under
  // contention -- Proposition 11 is the reason "mwmr" pays two rounds)
  // and demand the harness catch it, name the seed, and dump the failing
  // history to a readable file. If every green run relies on this
  // machinery, the machinery itself needs a red-path test.
  bool caught = false;
  for (std::uint64_t seed = 1; seed <= 20 && !caught; ++seed) {
    stress_options opt;
    opt.protocol = "naive_fast_mwmr";
    opt.S = 4;
    opt.t = 1;
    opt.R = 2;
    opt.W = 2;
    opt.num_shards = 1;
    opt.num_keys = 1;
    opt.puts_per_writer = 60;
    opt.gets_per_reader = 60;
    opt.seed = seed;
    opt.label = "meta_naive_mwmr";
    const auto rep = run_sim_stress(opt);
    if (rep.check.ok) continue;
    caught = true;
    EXPECT_NE(rep.describe().find("FASTREG_STRESS_SEED"),
              std::string::npos);
    ASSERT_FALSE(rep.dump_path.empty());
    std::ifstream dump(rep.dump_path);
    EXPECT_TRUE(dump.good()) << rep.dump_path;
    std::string first_line;
    std::getline(dump, first_line);
    EXPECT_NE(first_line.find("stress failure"), std::string::npos);
  }
  EXPECT_TRUE(caught)
      << "the non-linearizable strawman survived 20 seeds of stress";
}

}  // namespace
}  // namespace fastreg::benchutil
