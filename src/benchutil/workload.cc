#include "benchutil/workload.h"

#include "common/check.h"
#include "sim/world.h"

namespace fastreg::benchutil {

latency_report run_measured(const protocol& proto, const system_config& cfg,
                            const workload_options& opt) {
  sim::world w(cfg);
  w.install(proto);
  rng r(opt.seed);
  sim::uniform_delay delays(opt.delay_lo, opt.delay_hi);

  FASTREG_EXPECTS(opt.crash_servers <= cfg.t());
  if (!opt.crash_midway) {
    for (std::uint32_t i = 0; i < opt.crash_servers; ++i) {
      w.crash(server_id(i));
    }
  }

  std::uint32_t writes_invoked = 0;
  std::vector<std::uint32_t> reads_invoked(cfg.R(), 0);
  bool crashed_midway = false;
  std::uint64_t guard = 0;

  auto idle = [&](const process_id& p) { return !w.client_busy(p); };
  auto anything_in_flight = [&] {
    if (w.writer(0)->write_in_progress()) return true;
    for (std::uint32_t i = 0; i < cfg.R(); ++i) {
      if (w.reader(i)->read_in_progress()) return true;
    }
    return false;
  };

  for (;;) {
    FASTREG_CHECK(++guard < 100'000'000);
    if (opt.crash_midway && !crashed_midway &&
        writes_invoked >= opt.num_writes / 2) {
      crashed_midway = true;
      for (std::uint32_t i = 0; i < opt.crash_servers; ++i) {
        // Torn crash: the next send burst of each victim is truncated.
        w.crash_after_sends(server_id(i), 1);
      }
    }

    bool invoked = false;
    const bool allow_invoke = opt.concurrent || !anything_in_flight();
    if (allow_invoke) {
      if (writes_invoked < opt.num_writes && idle(writer_id(0))) {
        ++writes_invoked;
        w.invoke_write("v" + std::to_string(writes_invoked));
        invoked = true;
      }
      for (std::uint32_t i = 0; i < cfg.R(); ++i) {
        if (!opt.concurrent && (invoked || anything_in_flight())) break;
        if (reads_invoked[i] < opt.reads_per_reader && idle(reader_id(i))) {
          ++reads_invoked[i];
          w.invoke_read(i);
          invoked = true;
        }
      }
    }

    if (w.in_transit().empty()) {
      if (invoked) continue;
      break;  // drained and nothing more to start
    }
    w.run_timed(r, delays, /*max_steps=*/1);
  }

  latency_report rep;
  rep.hist = w.hist();
  std::uint64_t completed = 0;
  for (const auto& op : rep.hist.ops()) {
    if (!op.response_time) {
      rep.all_complete = false;
      continue;
    }
    ++completed;
    const double lat =
        static_cast<double>(*op.response_time - op.invoke_time);
    if (op.is_write) {
      rep.write_latency.add(lat);
      rep.write_rounds.add(op.rounds);
    } else {
      rep.read_latency.add(lat);
      rep.read_rounds.add(op.rounds);
    }
  }
  rep.msgs_per_op =
      completed == 0 ? 0
                     : static_cast<double>(w.messages_sent()) /
                           static_cast<double>(completed);
  return rep;
}

}  // namespace fastreg::benchutil
