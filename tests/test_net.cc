// TCP transport: framing robustness, then end-to-end protocol runs over
// real localhost sockets.
#include <gtest/gtest.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "checker/atomicity.h"
#include "net/cluster.h"
#include "net/framing.h"
#include "net/socket.h"
#include "obs/metrics.h"
#include "registers/registry.h"
#include "sim_test_util.h"

namespace fastreg::net {
namespace {

using test::make_cfg;

// ---------------------------------------------------------------- framing

TEST(Framing, HelloRoundTrip) {
  const auto bytes = encode_hello(reader_id(3));
  frame_buffer fb;
  fb.feed(bytes.data(), bytes.size());
  const auto f = fb.next();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->kind, frame_kind::hello);
  EXPECT_EQ(f->from, reader_id(3));
  EXPECT_FALSE(fb.next().has_value());
}

TEST(Framing, MessageRoundTrip) {
  message m;
  m.type = msg_type::read_ack;
  m.obj = 0xdeadbeefcafef00dull;
  m.ts = 42;
  m.val = "value";
  m.prev = "previous";
  m.seen.insert(writer_id(0));
  m.seen.insert(reader_id(1));
  m.rcounter = 7;
  m.sig = {1, 2, 3, 4};
  const auto bytes = encode_msg_frame(server_id(2), m);
  frame_buffer fb;
  fb.feed(bytes.data(), bytes.size());
  const auto f = fb.next();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->kind, frame_kind::msg);
  EXPECT_EQ(f->from, server_id(2));
  ASSERT_TRUE(f->msg.has_value());
  EXPECT_EQ(*f->msg, m);
}

TEST(Framing, EpochAttemptAndMigSurviveTheWire) {
  // The reconfiguration coordinate travels end to end: epoch, attempt and
  // the migration flag must round-trip through frames, including the new
  // control message types.
  for (const auto type : {msg_type::epoch_nack, msg_type::state_req,
                          msg_type::state_ack, msg_type::seed_req,
                          msg_type::seed_ack, msg_type::read_req}) {
    message m;
    m.type = type;
    m.obj = fnv1a64("moving-key");
    m.epoch = 0x1122334455667788ull;
    m.attempt = 3;
    m.mig = type != msg_type::read_req;
    m.ts = 9;
    m.wid = 2;
    m.val = "migrated";
    m.prev = "older";
    m.sig = {9, 8, 7};
    m.rcounter = 12;
    const auto bytes = encode_msg_frame(server_id(0), m);
    frame_buffer fb;
    fb.feed(bytes.data(), bytes.size());
    const auto f = fb.next();
    ASSERT_TRUE(f.has_value()) << to_string(type);
    ASSERT_TRUE(f->msg.has_value());
    EXPECT_EQ(*f->msg, m) << to_string(type);
    EXPECT_EQ(f->msg->epoch, m.epoch);
    EXPECT_EQ(f->msg->attempt, 3u);
    EXPECT_EQ(f->msg->mig, m.mig);
  }
}

TEST(Framing, ByteAtATimeDelivery) {
  message m;
  m.type = msg_type::write_req;
  m.ts = 1;
  m.val = "x";
  const auto bytes = encode_msg_frame(writer_id(0), m);
  frame_buffer fb;
  for (const std::uint8_t b : bytes) {
    fb.feed(&b, 1);
  }
  const auto f = fb.next();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->msg->val, "x");
}

TEST(Framing, MultipleFramesInOneFeed) {
  message m;
  m.type = msg_type::read_req;
  auto bytes = encode_msg_frame(reader_id(0), m);
  const auto more = encode_msg_frame(reader_id(1), m);
  bytes.insert(bytes.end(), more.begin(), more.end());
  frame_buffer fb;
  fb.feed(bytes.data(), bytes.size());
  EXPECT_TRUE(fb.next().has_value());
  EXPECT_TRUE(fb.next().has_value());
  EXPECT_FALSE(fb.next().has_value());
}

TEST(Framing, MalformedPayloadCountedAndSkipped) {
  // A well-framed but undecodable payload is skipped, later frames parse.
  std::vector<std::uint8_t> junk = {3, 0, 0, 0, 1, 0xff, 0xff};
  const auto good = encode_hello(writer_id(0));
  junk.insert(junk.end(), good.begin(), good.end());
  frame_buffer fb;
  fb.feed(junk.data(), junk.size());
  const auto f = fb.next();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->kind, frame_kind::hello);
  EXPECT_GE(fb.malformed_count(), 1u);
}

TEST(Framing, BatchFrameRoundTrip) {
  std::vector<message> msgs(3);
  for (std::size_t i = 0; i < msgs.size(); ++i) {
    msgs[i].type = msg_type::read_ack;
    msgs[i].obj = 1000 + i;
    msgs[i].ts = static_cast<ts_t>(i);
    msgs[i].val = "v" + std::to_string(i);
  }
  const auto bytes = encode_batch_frame(server_id(1), msgs);
  frame_buffer fb;
  fb.feed(bytes.data(), bytes.size());
  const auto f = fb.next();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->kind, frame_kind::batch);
  EXPECT_EQ(f->from, server_id(1));
  ASSERT_EQ(f->batch.size(), 3u);
  for (std::size_t i = 0; i < msgs.size(); ++i) {
    EXPECT_EQ(f->batch[i], msgs[i]);
  }
  EXPECT_FALSE(fb.next().has_value());
}

TEST(Framing, BatchIsOneFrameNotThree) {
  std::vector<message> msgs(3);
  const auto batched = encode_batch_frame(reader_id(0), msgs);
  const auto single = encode_msg_frame(reader_id(0), msgs[0]);
  // Per-message frame overhead (length, kind, sender) is paid once.
  EXPECT_LT(batched.size(), 3 * single.size());
}

TEST(Framing, MalformedBatchCountedAndSkipped) {
  // Claims 5 messages but carries none decodable.
  byte_writer w;
  encode_process_id(w, server_id(0));
  w.put_u32(5);
  w.put_u8(0xff);
  std::vector<std::uint8_t> bytes;
  const std::uint32_t len =
      static_cast<std::uint32_t>(w.bytes().size() + 1);
  for (int i = 0; i < 4; ++i) {
    bytes.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  }
  bytes.push_back(static_cast<std::uint8_t>(frame_kind::batch));
  bytes.insert(bytes.end(), w.bytes().begin(), w.bytes().end());
  const auto good = encode_hello(writer_id(0));
  bytes.insert(bytes.end(), good.begin(), good.end());
  frame_buffer fb;
  fb.feed(bytes.data(), bytes.size());
  const auto f = fb.next();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->kind, frame_kind::hello);
  EXPECT_GE(fb.malformed_count(), 1u);
}

TEST(Framing, HostileBatchCountRejectedWithoutAllocating) {
  // A batch frame whose count field claims ~payload-size messages must be
  // rejected by the pre-allocation bound (reserving count * sizeof
  // (message) would be gigabytes for a hostile count).
  byte_writer w;
  encode_process_id(w, server_id(0));
  w.put_u32(0x00ffffffu);  // claims ~16M messages
  for (int i = 0; i < 64; ++i) w.put_u8(0xab);
  std::vector<std::uint8_t> bytes;
  const std::uint32_t len =
      static_cast<std::uint32_t>(w.bytes().size() + 1);
  for (int i = 0; i < 4; ++i) {
    bytes.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  }
  bytes.push_back(static_cast<std::uint8_t>(frame_kind::batch));
  bytes.insert(bytes.end(), w.bytes().begin(), w.bytes().end());
  frame_buffer fb;
  fb.feed(bytes.data(), bytes.size());
  EXPECT_FALSE(fb.next().has_value());
  EXPECT_EQ(fb.malformed_count(), 1u);
}

TEST(Framing, OversizedLengthLatchesCorrupt) {
  std::vector<std::uint8_t> evil = {0xff, 0xff, 0xff, 0xff, 1};
  frame_buffer fb;
  fb.feed(evil.data(), evil.size());
  EXPECT_FALSE(fb.next().has_value());
  EXPECT_EQ(fb.malformed_count(), 1u);
  // An implausible length prefix means framing is lost for good: the
  // buffer latches corrupt() and the owner must reset the connection.
  EXPECT_TRUE(fb.corrupt());
  // Bytes fed after the corruption are unattributable garbage: ignored.
  const auto good = encode_hello(writer_id(0));
  fb.feed(good.data(), good.size());
  EXPECT_FALSE(fb.next().has_value());
}

TEST(Framing, ZeroLengthLatchesCorrupt) {
  std::vector<std::uint8_t> evil = {0, 0, 0, 0, 7};
  frame_buffer fb;
  fb.feed(evil.data(), evil.size());
  EXPECT_FALSE(fb.next().has_value());
  EXPECT_TRUE(fb.corrupt());
  EXPECT_EQ(fb.malformed_count(), 1u);
}

TEST(Framing, IntactFramesBeforeCorruptionStillParse) {
  // Frames already framed correctly ahead of the bad length prefix are
  // delivered; only the tail after it is lost to the reset.
  const auto a = encode_hello(reader_id(1));
  const auto b = encode_msg_frame(server_id(2), message{});
  std::vector<std::uint8_t> bytes;
  bytes.insert(bytes.end(), a.begin(), a.end());
  bytes.insert(bytes.end(), b.begin(), b.end());
  bytes.insert(bytes.end(), {0xff, 0xff, 0xff, 0xff});  // hopeless prefix
  frame_buffer fb;
  fb.feed(bytes.data(), bytes.size());
  const auto f1 = fb.next();
  ASSERT_TRUE(f1.has_value());
  EXPECT_EQ(f1->kind, frame_kind::hello);
  const auto f2 = fb.next();
  ASSERT_TRUE(f2.has_value());
  EXPECT_EQ(f2->kind, frame_kind::msg);
  EXPECT_FALSE(fb.next().has_value());
  EXPECT_TRUE(fb.corrupt());
}

// ------------------------------------------------------------- end-to-end

TEST(Cluster, CorruptStreamResetsConnectionAndServerKeepsServing) {
  cluster c(make_cfg(3, 1, 1), *make_protocol("abd"));
  c.start();
  ASSERT_TRUE(c.writer().blocking_write("before-garbage"));

  // A raw connection feeding an implausible length prefix: the server
  // must reset it (frame_buffer's corruption contract) rather than stall
  // or crash, and unrelated clients keep being served.
  unique_fd evil = connect_to(c.book().server_ports[0]);
  ASSERT_TRUE(evil.valid());
  const std::uint8_t garbage[] = {0xff, 0xff, 0xff, 0xff, 0x42};
  ASSERT_EQ(::send(evil.get(), garbage, sizeof garbage, 0),
            static_cast<ssize_t>(sizeof garbage));
  // The server closes the connection: read() sees EOF (0) or a reset.
  pollfd pfd{evil.get(), POLLIN | POLLHUP, 0};
  ASSERT_GT(::poll(&pfd, 1, 5000), 0) << "server never reset the stream";
  std::uint8_t buf[16];
  EXPECT_LE(::recv(evil.get(), buf, sizeof buf, 0), 0);

  ASSERT_TRUE(c.writer().blocking_write("after-garbage"));
  const auto r = c.reader(0).blocking_read();
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->val, "after-garbage");
  c.stop();
}

TEST(Cluster, FastSwmrWriteReadOverTcp) {
  cluster c(make_cfg(5, 1, 2), *make_protocol("fast_swmr"));
  c.start();
  ASSERT_TRUE(c.writer().blocking_write("over-the-wire"));
  const auto r0 = c.reader(0).blocking_read();
  ASSERT_TRUE(r0.has_value());
  EXPECT_EQ(r0->val, "over-the-wire");
  EXPECT_EQ(r0->rounds, 1);
  c.stop();
}

TEST(Cluster, AbdReadTakesTwoRounds) {
  cluster c(make_cfg(3, 1, 1), *make_protocol("abd"));
  c.start();
  ASSERT_TRUE(c.writer().blocking_write("abd-value"));
  const auto r0 = c.reader(0).blocking_read();
  ASSERT_TRUE(r0.has_value());
  EXPECT_EQ(r0->val, "abd-value");
  EXPECT_EQ(r0->rounds, 2);
  c.stop();
}

TEST(Cluster, MaxminGossipsServerToServer) {
  cluster c(make_cfg(5, 2, 1), *make_protocol("maxmin"));
  c.start();
  ASSERT_TRUE(c.writer().blocking_write("gossiped"));
  const auto r0 = c.reader(0).blocking_read();
  ASSERT_TRUE(r0.has_value());
  EXPECT_EQ(r0->val, "gossiped");
  c.stop();
}

TEST(Cluster, BftWithRealRsaSignatures) {
  cluster c(make_cfg(8, 1, 1, 1, 1, "rsa"), *make_protocol("fast_bft"));
  c.start();
  ASSERT_TRUE(c.writer().blocking_write("rsa-signed"));
  const auto r0 = c.reader(0).blocking_read();
  ASSERT_TRUE(r0.has_value());
  EXPECT_EQ(r0->val, "rsa-signed");
  c.stop();
}

TEST(Cluster, SequencesOfOpsStayAtomic) {
  cluster c(make_cfg(7, 1, 2), *make_protocol("fast_swmr"));
  c.start();
  for (int k = 1; k <= 10; ++k) {
    ASSERT_TRUE(c.writer().blocking_write("v" + std::to_string(k)));
    const auto a = c.reader(0).blocking_read();
    const auto b = c.reader(1).blocking_read();
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(a->val, "v" + std::to_string(k));
    EXPECT_EQ(b->val, "v" + std::to_string(k));
  }
  const auto hist = c.gather_history();
  const auto res = checker::check_swmr_atomicity(hist);
  EXPECT_TRUE(res.ok) << res.error;
  EXPECT_TRUE(checker::check_fastness(hist, 1, 1).ok);
  c.stop();
}

TEST(Cluster, ConcurrentClientsProduceAtomicHistory) {
  cluster c(make_cfg(9, 1, 3), *make_protocol("fast_swmr"));
  c.start();
  std::thread writer_thread([&] {
    for (int k = 1; k <= 15; ++k) {
      ASSERT_TRUE(c.writer().blocking_write("v" + std::to_string(k)));
    }
  });
  std::vector<std::thread> reader_threads;
  for (std::uint32_t i = 0; i < 3; ++i) {
    reader_threads.emplace_back([&, i] {
      for (int k = 0; k < 10; ++k) {
        ASSERT_TRUE(c.reader(i).blocking_read().has_value());
      }
    });
  }
  writer_thread.join();
  for (auto& t : reader_threads) t.join();
  const auto hist = c.gather_history();
  const auto res = checker::check_swmr_atomicity(hist);
  EXPECT_TRUE(res.ok) << res.error << "\n" << hist.dump();
  c.stop();
}

TEST(Cluster, ServerStopModelsCrashToleratedByQuorum) {
  cluster c(make_cfg(5, 1, 1), *make_protocol("fast_swmr"));
  c.start();
  ASSERT_TRUE(c.writer().blocking_write("before-crash"));
  c.server(0).stop();  // one server goes dark: within the t = 1 budget
  ASSERT_TRUE(c.writer().blocking_write("after-crash"));
  const auto r0 = c.reader(0).blocking_read();
  ASSERT_TRUE(r0.has_value());
  EXPECT_EQ(r0->val, "after-crash");
  c.stop();
}

/// Sum of every registry counter series whose name starts with `prefix`
/// (labels vary per node/reactor; the total is what the test cares about).
double counter_total(const std::string& prefix) {
  double total = 0;
  for (const auto& s : obs::snapshot()) {
    if (s.name.rfind(prefix, 0) == 0) total += s.value;
  }
  return total;
}

TEST(Cluster, SignalStormDuringWorkloadClosesZeroConnections) {
  // An interrupted syscall is a signal, not a peer event: before the
  // EINTR-aware read/writev/accept/epoll paths, every stray signal that
  // landed in a reactor mid-read tore down a healthy connection (the
  // n <= 0 fallthrough called close_conn), and the workload survived
  // only by silently reconnecting. This drives a workload under a
  // SIGUSR1 storm aimed at the reactor threads and asserts nothing was
  // closed: zero new accepts (no reconnects) and zero stream resets.
  struct sigaction sa{};
  sa.sa_handler = [](int) {};
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // deliberately NOT SA_RESTART: syscalls must see EINTR
  struct sigaction old_sa{};
  ASSERT_EQ(::sigaction(SIGUSR1, &sa, &old_sa), 0);

  cluster c(make_cfg(5, 1, 2), *make_protocol("fast_swmr"));
  c.start();
  // Warm-up pass: every client-server connection exists afterwards, so
  // any accept during the storm pass can only be a reconnect.
  ASSERT_TRUE(c.writer().blocking_write("warmup"));
  ASSERT_TRUE(c.reader(0).blocking_read().has_value());
  ASSERT_TRUE(c.reader(1).blocking_read().has_value());

  // Block SIGUSR1 on this thread (and, by mask inheritance, the storm
  // thread): the kernel then delivers the process-directed signals below
  // only to threads that keep it unblocked -- the reactor threads
  // c.start() spawned before this mask change.
  sigset_t storm_set, old_set;
  sigemptyset(&storm_set);
  sigaddset(&storm_set, SIGUSR1);
  ASSERT_EQ(pthread_sigmask(SIG_BLOCK, &storm_set, &old_set), 0);

  const double accepts_before =
      counter_total("fastreg_net_reactor_accepts_total");
  const double resets_before =
      counter_total("fastreg_net_conn_resets_total");

  // Full-rate storm (no sleep): the sockets are nonblocking, so a signal
  // only lands "inside" read/writev during the microseconds the syscall
  // actually runs -- maximizing delivery frequency and payload size is
  // what makes the window hittable at all.
  std::atomic<bool> storming{true};
  std::thread storm([&] {
    while (storming.load(std::memory_order_relaxed)) {
      ::kill(::getpid(), SIGUSR1);
      ::sched_yield();
    }
  });
  const std::string big(16 * 1024, 'x');  // multi-read-sized frames
  for (int k = 1; k <= 100; ++k) {
    ASSERT_TRUE(c.writer().blocking_write(big + std::to_string(k)));
    ASSERT_TRUE(c.reader(0).blocking_read().has_value());
    ASSERT_TRUE(c.reader(1).blocking_read().has_value());
  }
  storming.store(false);
  storm.join();

  EXPECT_EQ(counter_total("fastreg_net_reactor_accepts_total"),
            accepts_before)
      << "a connection was closed and re-accepted during the storm";
  EXPECT_EQ(counter_total("fastreg_net_conn_resets_total"), resets_before);

  const auto hist = c.gather_history();
  EXPECT_TRUE(checker::check_swmr_atomicity(hist).ok);
  c.stop();
  ASSERT_EQ(pthread_sigmask(SIG_SETMASK, &old_set, nullptr), 0);
  ASSERT_EQ(::sigaction(SIGUSR1, &old_sa, nullptr), 0);
}

TEST(Cluster, MwmrTwoWritersOverTcp) {
  cluster c(make_cfg(5, 2, 2, 0, 2), *make_protocol("mwmr"));
  c.start();
  ASSERT_TRUE(c.writer(0).blocking_write("from-w1"));
  ASSERT_TRUE(c.writer(1).blocking_write("from-w2"));
  const auto r0 = c.reader(0).blocking_read();
  ASSERT_TRUE(r0.has_value());
  EXPECT_EQ(r0->val, "from-w2");
  const auto hist = c.gather_history();
  EXPECT_TRUE(checker::check_linearizable(hist).ok);
  c.stop();
}

}  // namespace
}  // namespace fastreg::net
