// CRC-framed append-only op log + atomic per-object snapshot files: the
// on-disk primitives behind a store server's durable state.
//
// Log format: a sequence of records, each framed as
//
//   u32 payload_len | u32 crc32(payload) | payload
//
// with the payload encoded by common/serialization.h (little-endian):
//
//   u8 kind | u64 epoch | kind-specific fields
//     op / seed:    u64 object | i64 ts | i32 wid | string val |
//                   string prev | bytes sig
//     epoch_mark:   u32 n | n x u64 fenced objects
//
// A record is appended AFTER the server applied the state change, so a
// torn tail (crash mid-append) only loses suffix state the crash model
// already tolerates. load() stops at the first frame that is incomplete
// or fails its CRC, reports why, and (repair mode) truncates the file to
// the last valid frame so the next append continues a clean log.
//
// Snapshot format (separate file, rewritten atomically via tmp+rename):
//
//   u32 magic "FRSN" | u32 version | u32 payload_len | u32 crc32(payload)
//   | payload = u64 epoch | u32 count | count x (u64 object | i64 ts |
//                i32 wid | string val | string prev | bytes sig)
//
// A snapshot that fails validation is REJECTED with a diagnostic (the
// server starts from the log alone, or empty); it is never partially
// applied.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "persist/options.h"
#include "registers/automaton.h"

namespace fastreg::persist {

/// CRC-32 (IEEE 802.3, reflected), the frame checksum.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data);

struct log_record {
  enum class kind : std::uint8_t { op = 1, seed = 2, epoch_mark = 3 };
  kind k{kind::op};
  epoch_t epoch{k_initial_epoch};
  /// op / seed only.
  object_id obj{0};
  register_snapshot snap{};
  /// epoch_mark only: objects fenced (set aside for migration) at the
  /// install; replay drops their recovered state -- the new generation
  /// re-seeds them through records appended after the mark.
  std::vector<object_id> fenced{};

  friend bool operator==(const log_record&, const log_record&) = default;
};

struct wal_load_result {
  std::vector<log_record> records{};
  /// Prefix of the file covered by valid frames.
  std::uint64_t valid_bytes{0};
  /// Bytes past the last valid frame (torn tail or corrupt record).
  std::uint64_t dropped_bytes{0};
  /// Human-readable reason the scan stopped early; empty on a clean read.
  std::string warning{};

  [[nodiscard]] bool truncated() const { return dropped_bytes > 0; }
};

/// The append side of one server's op log. Append failures are logged and
/// counted, never fatal: a server that cannot persist keeps serving (it
/// degrades to the in-memory-only behavior the crash budget covers).
class wal {
 public:
  wal(std::string path, fsync_policy policy, std::uint64_t fsync_interval_ms);
  ~wal();
  wal(const wal&) = delete;
  wal& operator=(const wal&) = delete;

  void append(const log_record& rec);
  /// Forces an fsync now (policy-independent; used by tests).
  void sync();
  /// Empties the log (the snapshot that was just written supersedes it).
  void reset();

  [[nodiscard]] std::uint64_t records_appended() const { return appended_; }
  [[nodiscard]] std::uint64_t bytes_appended() const { return bytes_; }
  [[nodiscard]] const std::string& path() const { return path_; }

  /// Scans `path` front to back. With `repair`, a file with a torn or
  /// corrupt tail is truncated on disk to its valid prefix (the contract
  /// "a stopped server rejoins from the last valid CRC frame").
  [[nodiscard]] static wal_load_result load(const std::string& path,
                                            bool repair);

 private:
  void maybe_sync();

  std::string path_;
  fsync_policy policy_;
  std::uint64_t fsync_interval_ms_;
  int fd_{-1};
  std::uint64_t appended_{0};
  std::uint64_t bytes_{0};
  std::uint64_t fsyncs_{0};
  /// steady_clock nanoseconds of the last fsync (interval policy).
  std::uint64_t last_sync_ns_{0};
  /// Un-synced bytes since the last fsync (skip no-op fsyncs).
  std::uint64_t dirty_bytes_{0};

  friend class server_durability;
};

struct snapshot_data {
  epoch_t epoch{k_initial_epoch};
  std::vector<std::pair<object_id, register_snapshot>> objects{};
};

/// Atomically replaces `path` with the encoded snapshot (tmp + rename;
/// fsync'd before the rename unless `policy` is never). Returns false and
/// fills `err` on I/O failure.
bool write_snapshot_file(const std::string& path, const snapshot_data& snap,
                         fsync_policy policy, std::string* err);

/// Loads and validates a snapshot file. nullopt with empty `err` when the
/// file does not exist; nullopt with a diagnostic in `err` when it exists
/// but fails validation (bad magic/version/CRC/truncation) -- the caller
/// must reject it wholesale.
[[nodiscard]] std::optional<snapshot_data> load_snapshot_file(
    const std::string& path, std::string* err);

}  // namespace fastreg::persist
