// The single wire message type shared by every protocol in fastreg.
//
// One struct (rather than a per-protocol variant hierarchy) keeps the
// simulator's in-transit set, the TCP codec, and the adversary's message
// surgery uniform. Fields unused by a protocol are left at their defaults
// and cost nothing on the simulated path.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/seen_set.h"
#include "common/serialization.h"
#include "common/types.h"

namespace fastreg {

enum class msg_type : std::uint8_t {
  // One-phase write (all protocols) / phase-2 of the MWMR write.
  write_req = 1,
  write_ack = 2,
  // Read round (all protocols).
  read_req = 3,
  read_ack = 4,
  // Write-back phase: ABD read phase 2, MWMR read phase 2.
  wb_req = 5,
  wb_ack = 6,
  // Timestamp query: MWMR write phase 1.
  query_req = 7,
  query_ack = 8,
  // Server-to-server timestamp broadcast (max-min variant, Section 1).
  gossip = 9,
  // Reconfiguration control plane (src/reconfig). epoch_nack: a store
  // server refuses a data message for a migrating object (stale epoch or
  // the key is still draining); `epoch` carries the server's epoch.
  epoch_nack = 10,
  // Migration handoff, phase 1: read the old-generation register state of
  // one object from every server; the ack carries (ts, wid, val, prev,
  // sig) verbatim from the superseded instance.
  state_req = 11,
  state_ack = 12,
  // Migration handoff, phase 2: install the drained state as the initial
  // state of the object's new-generation instance and stop nacking it.
  seed_req = 13,
  seed_ack = 14,
  // Server-to-server lazy seed fetch: a server that missed the quorum
  // seed of a moved object asks its generation peers for the seeded
  // snapshot on first post-drain access. The ack's `rcounter` carries the
  // k_fetch_* flag bits; when k_fetch_seeded is set, (ts, wid, val, prev,
  // sig) is the ORIGINAL seed snapshot of the object's generation.
  fetch_req = 15,
  fetch_ack = 16,
  // Observability admin frames (src/obs): a stats_req asks a store server
  // for its metrics; the stats_ack's `val` carries the text dump (one
  // `name{labels} value` line per metric). Answered before any epoch
  // fencing -- scraping must work mid-migration.
  stats_req = 17,
  stats_ack = 18,
};

/// fetch_ack flag bits (carried in message::rcounter): the answering peer
/// holds the object's seeded new-generation snapshot / still holds its
/// previous-generation instance.
inline constexpr std::uint64_t k_fetch_seeded = 1;
inline constexpr std::uint64_t k_fetch_prev_hosted = 2;

[[nodiscard]] const char* to_string(msg_type t);

struct message {
  msg_type type{msg_type::read_req};

  /// Which register object this message belongs to. The single-register
  /// deployments leave it at k_default_object; the store (src/store)
  /// multiplexes many objects over one transport and demultiplexes on it.
  object_id obj{k_default_object};

  /// Shard-map epoch the sender routed under (src/reconfig). Store servers
  /// fence data messages for migrating objects on it; single-register
  /// deployments leave it at k_initial_epoch.
  epoch_t epoch{k_initial_epoch};

  /// Client-side attempt counter for one store operation: bumped every
  /// time the op is re-issued after an epoch_nack, and echoed by nacks so
  /// the client can discard nacks aimed at an abandoned attempt.
  std::uint32_t attempt{0};

  /// Marks migration-handoff traffic (state/seed), which bypasses the
  /// epoch fence that holds ordinary client ops back during a drain.
  bool mig{false};

  /// Flight-recorder identity (src/obs/recorder.h): the 64-bit id of the
  /// originating operation, carried unchanged through every request, ack,
  /// nack, and server-to-server hop that the op causes. 0 means untraced.
  std::uint64_t trace{0};

  /// Span within the trace: 0 on the first issue, bumped each time the op
  /// is re-issued (epoch nack, park/resume), so the recorder can separate
  /// the rounds of each attempt.
  std::uint16_t span{0};

  /// Timestamp number. 0 is the initial timestamp whose value is bottom.
  ts_t ts{k_initial_ts};
  /// Writer id for MWMR lexicographic timestamps; 0 in single-writer runs.
  std::int32_t wid{0};

  /// Value associated with ts, and the value of the immediately preceding
  /// write (Section 4's two tags).
  value_t val{};
  value_t prev{};

  /// The server's seen set (Figure 2 line 33); empty on requests.
  seen_set seen{};

  /// Per-client operation counter (Figure 2's rCounter). Writers use 0 for
  /// every write in the fast protocols; other protocols tag each op.
  std::uint64_t rcounter{0};

  /// Writer signature over (ts, wid, val, prev); Figure 5 only.
  std::vector<std::uint8_t> sig{};

  /// For gossip: the reader whose read triggered the broadcast.
  process_id origin{};

  [[nodiscard]] wts_t wts() const { return wts_t{ts, wid}; }

  friend bool operator==(const message&, const message&) = default;
};

/// Canonical byte payload the writer signs: (obj, ts, wid, val, prev).
/// Shared by signers (writer) and verifiers (servers, readers). Binding
/// the object id prevents a malicious server from replaying a correctly
/// signed timestamp of one object into another object's message stream.
[[nodiscard]] std::vector<std::uint8_t> signed_payload(const message& m);
[[nodiscard]] std::vector<std::uint8_t> signed_payload(object_id obj, ts_t ts,
                                                       std::int32_t wid,
                                                       const value_t& val,
                                                       const value_t& prev);

/// Wire codec (used by the TCP transport; the simulator passes structs).
void encode_message(byte_writer& w, const message& m);
[[nodiscard]] std::optional<message> decode_message(byte_reader& r);

void encode_process_id(byte_writer& w, const process_id& p);
[[nodiscard]] std::optional<process_id> decode_process_id(byte_reader& r);

/// EXACT encoded sizes of the codec above, for the zero-copy wire path:
/// the transport sums these, reserves once into a reused buffer, and
/// encodes in place -- no intermediate byte vector per message. Kept
/// adjacent to the encoders; a field added to one must be added to both
/// (the encoder no-allocation unit test catches a drift).
[[nodiscard]] constexpr std::size_t process_id_wire_size() {
  return wire_size_u8() + wire_size_u32();
}
[[nodiscard]] inline std::size_t message_wire_size(const message& m) {
  return wire_size_u8()                           // type
         + wire_size_u64()                        // obj
         + wire_size_u64()                        // epoch
         + wire_size_u32()                        // attempt
         + wire_size_u8()                         // mig
         + wire_size_u64()                        // trace
         + wire_size_u32()                        // span (u16, sent as u32)
         + wire_size_u64()                        // ts (i64)
         + wire_size_u32()                        // wid (i32)
         + wire_size_string(m.val)                // val
         + wire_size_string(m.prev)               // prev
         + wire_size_u64()                        // seen bits
         + wire_size_u64()                        // rcounter
         + wire_size_bytes(m.sig)                 // sig
         + process_id_wire_size();                // origin
}

}  // namespace fastreg
