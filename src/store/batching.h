// Outbound coalescing shared by the store's multiplexing automata.
//
// During one step (an invocation or a delivered envelope/frame), inner
// per-object automata send through a tagging_netout, which stamps the
// object id and parks the message in a batch_collector. At the end of the
// step the collector flushes: all messages to one destination leave as a
// single send_batch (one envelope on the simulator, one frame on TCP).
//
// Envelope-semantics parity (sim == TCP): one send_batch is ALWAYS one
// delivery unit -- a sim envelope delivered as one on_batch step, and one
// TCP batch frame delivered as one on_batch step. The TCP reactor's
// time-window flush (net::node_options) coalesces strictly at the byte
// level, packing several such frames into one writev; it never merges or
// splits the frames themselves, so the receiving automaton's step
// structure is identical on both transports whatever the window is. That
// is what lets histories produced under any batch window be verified by
// the same checkers as simulator runs.
#pragma once

#include <utility>
#include <vector>

#include "registers/automaton.h"

namespace fastreg::store {

class batch_collector {
 public:
  void add(const process_id& to, message m) {
    for (auto& [dest, msgs] : groups_) {
      if (dest == to) {
        msgs.push_back(std::move(m));
        return;
      }
    }
    groups_.emplace_back(to, std::vector<message>{std::move(m)});
  }

  /// Emits one send (or send_batch) per destination, in first-touch order
  /// so simulator schedules stay deterministic, then resets.
  void flush(netout& net) {
    for (auto& [dest, msgs] : groups_) {
      if (msgs.size() == 1) {
        net.send(dest, std::move(msgs.front()));
      } else {
        net.send_batch(dest, std::move(msgs));
      }
    }
    groups_.clear();
  }

  [[nodiscard]] bool empty() const { return groups_.empty(); }

 private:
  // Destinations per step are few (at most the fleet size): linear scan
  // beats hashing and keeps flush order deterministic.
  std::vector<std::pair<process_id, std::vector<message>>> groups_;
};

/// netout an inner per-object automaton sends through: stamps the object
/// id, the sender's shard-map epoch and the op's attempt counter on every
/// outbound message and defers the actual send to the enclosing step's
/// collector. The epoch stamp is what lets receivers fence traffic routed
/// under a superseded map (src/reconfig).
class tagging_netout final : public netout {
 public:
  tagging_netout(batch_collector& out, object_id obj,
                 epoch_t epoch = k_initial_epoch, std::uint32_t attempt = 0,
                 bool mig = false, std::uint64_t trace = 0,
                 std::uint16_t span = 0)
      : out_(out),
        obj_(obj),
        epoch_(epoch),
        attempt_(attempt),
        mig_(mig),
        trace_(trace),
        span_(span) {}

  void send(const process_id& to, message m) override {
    m.obj = obj_;
    m.epoch = epoch_;
    m.attempt = attempt_;
    m.mig = mig_;
    m.trace = trace_;
    m.span = span_;
    out_.add(to, std::move(m));
  }

 private:
  batch_collector& out_;
  object_id obj_;
  epoch_t epoch_;
  std::uint32_t attempt_;
  bool mig_;
  std::uint64_t trace_;
  std::uint16_t span_;
};

}  // namespace fastreg::store
