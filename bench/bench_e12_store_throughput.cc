// E12 -- multi-object store throughput: many named registers multiplexed
// over one server fleet, pipelined clients, batched transport.
//
// Part 1 (timed simulator): ops per kilotick and get-latency percentiles
// across key counts x shard protocol mixes, plus the batching win
// (envelopes per op vs messages per op -- the gap is traffic that shared
// one transport unit). Part 2 (localhost TCP): the same shape on real
// sockets, wall-clock microseconds; per-key atomicity is verified on
// every history either part produces.
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "benchutil/stats.h"
#include "benchutil/table.h"
#include "benchutil/workload.h"
#include "common/rng.h"
#include "store/tcp_store.h"

using namespace fastreg;
using namespace fastreg::benchutil;

namespace {

struct mix {
  const char* label;
  std::vector<std::string> protocols;
};

const std::vector<mix>& mixes() {
  static const std::vector<mix> m = {
      {"fast_swmr", {"fast_swmr"}},
      {"abd", {"abd"}},
      {"fast+abd", {"fast_swmr", "abd"}},
  };
  return m;
}

store::store_config make_store_cfg(const mix& m, std::uint32_t num_shards,
                                   std::uint32_t R) {
  store::store_config cfg;
  // S=7, t=1 keeps fast_swmr feasible up to R=4 (S > (R+2)t).
  cfg.base.servers = 7;
  cfg.base.t_failures = 1;
  cfg.base.readers = R;
  cfg.base.writers = 1;
  cfg.num_shards = num_shards;
  cfg.shard_protocols = m.protocols;
  return cfg;
}

void run_sim_part() {
  std::printf("E12a: store throughput on the timed simulator "
              "(delay U[50,150] ticks, R=3 readers, batch=8)\n\n");
  table t({"keys", "shards", "mix", "ops/ktick", "get_p50", "get_p99",
           "env/op", "msg/op", "atomic"});
  for (const std::uint32_t keys : {8u, 64u, 512u}) {
    for (const std::uint32_t shards : {1u, 4u}) {
      for (const auto& m : mixes()) {
        store_workload_options opt;
        opt.num_keys = keys;
        opt.gets_per_reader = 240;
        opt.puts_per_writer = 80;
        opt.batch = 8;
        opt.seed = 42 + keys + shards;
        const auto cfg = make_store_cfg(m, shards, /*R=*/3);
        const auto rep = run_store_measured(cfg, opt);
        const bool atomic = rep.all_complete && rep.hist.verify().ok;
        t.add_row({std::to_string(keys), std::to_string(shards), m.label,
                   fmt(rep.ops_per_ktick, 2), fmt(rep.get_latency.p50()),
                   fmt(rep.get_latency.p99()), fmt(rep.envelopes_per_op, 2),
                   fmt(rep.msgs_per_op, 2), atomic ? "yes" : "NO"});
      }
    }
  }
  t.print();
  std::printf("\nexpected shape: abd shards double get latency (2 RTT vs "
              "1); batching keeps env/op well under msg/op at batch=8; "
              "throughput is flat across key counts (shared fleet, "
              "independent objects).\n\n");
}

void run_tcp_part() {
  std::printf("E12b: store throughput over real TCP sockets (localhost, "
              "2 reader threads, multi_get batch=8)\n\n");
  table t({"keys", "mix", "ops/s", "get_p50_us", "get_p99_us", "atomic"});
  const std::uint32_t R = 2;
  const int rounds = 40;
  for (const std::uint32_t keys : {8u, 64u, 512u}) {
    for (const auto& m : mixes()) {
      store::tcp_store ts(make_store_cfg(m, /*num_shards=*/4, R));
      ts.start();
      // Warmup: establish every client-server connection.
      for (std::uint32_t k = 0; k < std::min(keys, 8u); ++k) {
        (void)ts.put(0, "key" + std::to_string(k), "seed");
      }
      for (std::uint32_t i = 0; i < R; ++i) (void)ts.get(i, "key0");

      std::vector<std::vector<double>> lat_us(R);
      const auto t0 = std::chrono::steady_clock::now();
      std::thread writer([&] {
        rng r(7);
        for (int n = 0; n < rounds; ++n) {
          (void)ts.put(0, "key" + std::to_string(r.below(keys)),
                       "v" + std::to_string(n + 1));
        }
      });
      std::vector<std::thread> readers;
      for (std::uint32_t i = 0; i < R; ++i) {
        readers.emplace_back([&, i] {
          rng r(100 + i);
          std::vector<std::uint32_t> idx(keys);
          for (std::uint32_t k = 0; k < keys; ++k) idx[k] = k;
          const std::uint32_t batch = std::min(8u, keys);
          for (int n = 0; n < rounds; ++n) {
            const auto ks = sample_distinct_keys(r, idx, batch);
            const auto s0 = std::chrono::steady_clock::now();
            const auto res = ts.multi_get(i, ks);
            const auto s1 = std::chrono::steady_clock::now();
            if (!res) continue;
            // The batch's gets are genuinely concurrent; each op carries
            // the batch's wall time.
            const double us =
                std::chrono::duration<double, std::micro>(s1 - s0).count();
            for (std::size_t k = 0; k < res->size(); ++k) {
              lat_us[i].push_back(us);
            }
          }
        });
      }
      writer.join();
      for (auto& th : readers) th.join();
      const auto t1 = std::chrono::steady_clock::now();

      stats get_us;
      for (const auto& per_reader : lat_us) {
        for (const double v : per_reader) get_us.add(v);
      }
      const double secs = std::chrono::duration<double>(t1 - t0).count();
      const double total_ops =
          static_cast<double>(get_us.count()) + rounds;  // gets + puts
      const bool atomic = ts.gather().verify().ok;
      t.add_row({std::to_string(keys), m.label,
                 fmt(secs > 0 ? total_ops / secs : 0, 0),
                 fmt(get_us.p50()), fmt(get_us.p99()),
                 atomic ? "yes" : "NO"});
      ts.stop();
    }
  }
  t.print();
  std::printf("\nexpected shape: abd ~= 2x fast_swmr get latency (two "
              "round trips vs one); ops/s scales with the multi_get "
              "batch because k gets share one envelope per server.\n");
}

}  // namespace

int main() {
  run_sim_part();
  run_tcp_part();
  return 0;
}
