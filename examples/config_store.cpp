// config_store: a replicated configuration register over real TCP.
//
// Scenario (the paper's motivating use: shared variables for cooperating
// programs): one deployment controller publishes configuration versions;
// a fleet of application nodes read the current configuration on their
// hot path. Reads must be atomic -- once any app node observes config v7,
// no node may later observe v6 -- and FAST, because they sit on the
// request path.
//
// With S = 7 replicas and t = 1, the paper allows up to R < 7/1 - 2 = 4
// fast readers. We run 3. Every process is a real socket endpoint with
// its own reactor thread.
//
// Build & run:  ./build/examples/config_store
#include <chrono>
#include <cstdio>
#include <thread>

#include "checker/atomicity.h"
#include "net/cluster.h"
#include "registers/registry.h"

using namespace fastreg;

int main() {
  system_config cfg;
  cfg.servers = 7;
  cfg.t_failures = 1;
  cfg.readers = 3;
  std::printf("config_store: S=7 replicas, t=1, %u app-node readers "
              "(fast bound allows R < %u)\n\n",
              cfg.R(), cfg.S() / cfg.t_failures - 2);

  net::cluster cluster(cfg, *make_protocol("fast_swmr"));
  cluster.start();

  // The controller rolls out 5 config versions while app nodes poll.
  std::thread controller([&] {
    for (int v = 1; v <= 5; ++v) {
      const std::string conf =
          "{\"version\":" + std::to_string(v) + ",\"feature_x\":" +
          (v >= 3 ? "true" : "false") + "}";
      if (!cluster.writer().blocking_write(conf)) {
        std::printf("[controller] write v%d FAILED\n", v);
        return;
      }
      std::printf("[controller] published config v%d\n", v);
      std::this_thread::sleep_for(std::chrono::milliseconds(15));
    }
  });

  std::vector<std::thread> apps;
  for (std::uint32_t i = 0; i < cfg.R(); ++i) {
    apps.emplace_back([&, i] {
      for (int k = 0; k < 8; ++k) {
        const auto t0 = std::chrono::steady_clock::now();
        const auto res = cluster.reader(i).blocking_read();
        const auto us = std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
        if (res) {
          std::printf("[app-%u] config=%s  (%.0f us, %d round-trip)\n",
                      i + 1, res->val.empty() ? "(none)" : res->val.c_str(),
                      us, res->rounds);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(9));
      }
    });
  }

  controller.join();
  for (auto& t : apps) t.join();

  const auto hist = cluster.gather_history();
  const auto verdict = checker::check_swmr_atomicity(hist);
  std::printf("\n%zu ops recorded; atomic: %s; all fast: %s\n", hist.size(),
              verdict.ok ? "yes" : "NO",
              checker::check_fastness(hist, 1, 1).ok ? "yes" : "NO");
  cluster.stop();
  return verdict.ok ? 0 : 1;
}
