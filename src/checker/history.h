// Operation histories: the invoke/response record every driver (simulator,
// TCP cluster, adversary) produces and every checker consumes.
//
// Times are driver-defined monotone integers (simulator steps, simulated
// nanoseconds, or wall-clock nanoseconds); checkers only compare them.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace fastreg::checker {

struct op_record {
  process_id client{};
  bool is_write{false};
  std::uint64_t invoke_time{0};
  /// nullopt while the op is outstanding (incomplete ops stay that way).
  std::optional<std::uint64_t> response_time{};

  // Write: the value written. Read: the value returned (when complete).
  value_t val{};
  /// Timestamp attached by the protocol (reads only; diagnostic).
  ts_t ts{0};
  std::int32_t wid{0};
  /// Round-trips the operation used (reads and writes; 1 == fast).
  int rounds{0};
};

class history {
 public:
  /// Starts an operation; returns its index for complete_op.
  std::size_t begin_op(const process_id& client, bool is_write,
                       std::uint64_t invoke_time, value_t written_value = {});

  void complete_read(std::size_t index, std::uint64_t response_time, ts_t ts,
                     std::int32_t wid, value_t returned, int rounds);
  void complete_write(std::size_t index, std::uint64_t response_time,
                      int rounds);

  [[nodiscard]] const std::vector<op_record>& ops() const { return ops_; }
  [[nodiscard]] std::size_t size() const { return ops_.size(); }
  [[nodiscard]] const op_record& op(std::size_t i) const { return ops_[i]; }

  /// Completed writes by `client` in invocation order.
  [[nodiscard]] std::vector<op_record> writes_by(const process_id& client) const;
  /// All writes (complete and incomplete), in invocation order.
  [[nodiscard]] std::vector<op_record> all_writes() const;
  [[nodiscard]] std::vector<op_record> completed_reads() const;

  [[nodiscard]] std::string dump() const;

 private:
  std::vector<op_record> ops_;
  // Index of each client's most recent op, for O(1) well-formedness checks.
  std::unordered_map<process_id, std::size_t> last_op_;
};

}  // namespace fastreg::checker
