#include "benchutil/table.h"

#include <algorithm>
#include <cstdio>

namespace fastreg::benchutil {

table::table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
    for (const auto& row : rows_) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto pad = [&](const std::string& s, std::size_t w) {
    return s + std::string(w - s.size() + 2, ' ');
  };
  std::string out;
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    out += pad(headers_[i], widths[i]);
  }
  out += "\n";
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    out += pad(std::string(widths[i], '-'), widths[i]);
  }
  out += "\n";
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      out += pad(row[i], widths[i]);
    }
    out += "\n";
  }
  return out;
}

void table::print() const { std::printf("%s", render().c_str()); }

}  // namespace fastreg::benchutil
