#include "registers/registry.h"

#include "registers/abd.h"
#include "registers/fast_bft.h"
#include "registers/fast_swmr.h"
#include "registers/maxmin.h"
#include "registers/mwmr.h"
#include "registers/regular.h"

namespace fastreg {

std::unique_ptr<protocol> make_protocol(const std::string& name) {
  if (name == "fast_swmr") return std::make_unique<fast_swmr_protocol>();
  if (name == "fast_bft") return std::make_unique<fast_bft_protocol>();
  if (name == "abd") return std::make_unique<abd_protocol>();
  if (name == "maxmin") return std::make_unique<maxmin_protocol>();
  if (name == "regular") return std::make_unique<regular_protocol>();
  if (name == "single_reader") {
    return std::make_unique<single_reader_protocol>();
  }
  if (name == "mwmr") return std::make_unique<mwmr_protocol>();
  if (name == "naive_fast_mwmr") {
    return std::make_unique<naive_fast_mwmr_protocol>();
  }
  if (name == "naive_fast_mwmr_lww") {
    return std::make_unique<naive_fast_mwmr_lww_protocol>();
  }
  return nullptr;
}

std::vector<std::string> protocol_names() {
  return {"fast_swmr", "fast_bft",      "abd",  "maxmin",
          "regular",   "single_reader", "mwmr", "naive_fast_mwmr",
          "naive_fast_mwmr_lww"};
}

}  // namespace fastreg
