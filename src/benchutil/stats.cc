#include "benchutil/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "common/check.h"

namespace fastreg::benchutil {

void stats::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double stats::mean() const {
  if (samples_.empty()) return 0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double stats::min() const {
  ensure_sorted();
  return samples_.empty() ? 0 : samples_.front();
}

double stats::max() const {
  ensure_sorted();
  return samples_.empty() ? 0 : samples_.back();
}

double stats::percentile(double p) const {
  // Out-of-domain p (including NaN) would index outside the sample array.
  FASTREG_EXPECTS(p >= 0 && p <= 100);
  if (samples_.empty()) return 0;
  ensure_sorted();
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - std::floor(rank);
  return samples_[lo] * (1 - frac) + samples_[hi] * frac;
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

}  // namespace fastreg::benchutil
