// An in-process TCP deployment of a full protocol instance: S server
// nodes, R reader nodes, W writer nodes, each with its own reactor thread
// and real localhost sockets. Used by the examples, the TCP latency bench
// (E11), and the end-to-end socket tests.
#pragma once

#include <memory>
#include <vector>

#include "checker/history.h"
#include "net/node.h"
#include "registers/automaton.h"

namespace fastreg::net {

class cluster {
 public:
  /// Builds all nodes. Servers bind ephemeral ports immediately; the
  /// resulting address book is shared with every node. `nopt` (the
  /// outbound batch-window policy) applies to every node; the default
  /// comes from FASTREG_BATCH_WINDOW_US (immediate flush when unset).
  cluster(system_config cfg, const protocol& proto,
          node_options nopt = node_options::from_env());
  ~cluster();

  cluster(const cluster&) = delete;
  cluster& operator=(const cluster&) = delete;

  void start();
  void stop();

  [[nodiscard]] node& writer(std::uint32_t i = 0) { return *writers_[i]; }
  [[nodiscard]] node& reader(std::uint32_t i) { return *readers_[i]; }
  [[nodiscard]] node& server(std::uint32_t i) { return *servers_[i]; }

  [[nodiscard]] const address_book& book() const { return *book_; }
  [[nodiscard]] const system_config& config() const { return cfg_; }

  /// Merged history of all client nodes (timestamps share the steady
  /// clock, so cross-node ordering is meaningful on one machine).
  [[nodiscard]] checker::history gather_history() const;

 private:
  system_config cfg_;
  std::shared_ptr<address_book> book_;
  std::vector<std::unique_ptr<node>> servers_;
  std::vector<std::unique_ptr<node>> readers_;
  std::vector<std::unique_ptr<node>> writers_;
  bool started_{false};
};

}  // namespace fastreg::net
