// The reconfiguration coordinator: installs an epoch-versioned shard map
// fleet-wide and migrates every moved key online.
//
// Protocol (per reconfiguration):
//  1. install the new map on EVERY server (each starts tagging replies
//     with the new epoch and fencing moved objects), then publish it to
//     the versioned_map so clients can refetch;
//  2. per moved key, a dual-quorum handoff:
//     a. STATE READ: ask all servers for the old-generation state, take
//        the maximum over a quorum of answers. Quorum intersection with
//        the old generation's write/read quorums guarantees the maximum
//        is at least as new as anything a completed old-epoch op
//        established (the feasibility conditions S > 2t, resp.
//        S > (R+2)t + (R+1)b, give a nonempty intersection);
//     b. WRITER FLOOR: hand the snapshot to every writer client, so the
//        fresh writer automaton the key gets at the new epoch resumes
//        above the migrated timestamp;
//     c. SEED: install the snapshot as the key's new-generation state on
//        ALL servers (full-fleet, so nobody keeps nacking afterwards);
//     d. RESUME: unpark the key on every client.
//  3. done when every moved key drained. Keys outside `keys` stay fenced
//     until migrated by a later reconfiguration -- pass every key in use.
//
// LIVENESS ASSUMPTION: step 2c requires an ack from EVERY server, so a
// single crashed or partitioned server stalls the migration of every
// moved key -- and with it every client op parked on one. While a
// reconfiguration is in flight the deployment therefore does NOT enjoy
// the t-crash tolerance of the underlying register protocols; run the
// coordinator only while the full fleet is believed healthy, and treat a
// stuck migration as an operator-visible incident (done() stays false,
// parked_count() stays nonzero). Data-plane ops on keys that are not
// moving retain their usual fault tolerance throughout. Lifting this --
// quorum seeding plus a server-side lazy fetch of the seed on first
// post-drain access -- is tracked as a ROADMAP open item.
//
// The coordinator is an incremental state machine: start() performs the
// synchronous control-plane installs, then step() advances the handoff
// pipeline; call it interleaved with whatever is driving the transport
// (simulator steps, or a polling loop next to live TCP traffic). This
// keeps client operations flowing DURING the migration, which is the
// point of the exercise.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "reconfig/plan.h"
#include "store/client.h"
#include "store/server.h"
#include "store/shard_map.h"

namespace fastreg::reconfig {

/// Transport adapter: how the coordinator reaches servers, clients and
/// the map registry of one concrete deployment (simulator or TCP).
/// All calls are synchronous control-plane actions.
class control_plane {
 public:
  virtual ~control_plane() = default;

  /// Runs `fn` against every store server automaton, one at a time.
  virtual void for_each_server(
      const std::function<void(store::server&)>& fn) = 0;
  /// Publishes `next` to the deployment's versioned_map.
  virtual void publish(std::shared_ptr<const store::shard_map> next) = 0;
  /// Runs `fn` as a step of the migrator client (by convention reader 0)
  /// with a netout, flushing its sends into the transport.
  virtual void with_migrator(
      const std::function<void(store::client&, netout&)>& fn) = 0;
  /// True when the migrator's in-flight handoff op completed. Thread-safe
  /// against live traffic (TCP marshals through the reactor).
  virtual bool migrator_done() = 0;
  /// The completed state read's snapshot (call only when migrator_done()).
  virtual register_snapshot migrator_snapshot() = 0;
  /// Runs `fn` against every client automaton (writers and readers) as a
  /// step with a netout.
  virtual void for_each_client(
      const std::function<void(store::client&, netout&)>& fn) = 0;
};

struct reconfig_stats {
  epoch_t new_epoch{0};
  std::size_t keys_considered{0};
  std::size_t keys_moved{0};
};

class coordinator {
 public:
  /// `keys`: every key whose state must be handed off if it moves. Keys
  /// that do not move under the plan are skipped cheaply; duplicates are
  /// handed off only once.
  coordinator(control_plane& ctl, std::vector<std::string> keys);

  /// Validates the plan against `cur` (the currently installed map),
  /// installs the new map fleet-wide and publishes it. Returns false
  /// (with error()) on an invalid plan. On success the migration pipeline
  /// is armed; drive it with step().
  bool start(std::shared_ptr<const store::shard_map> cur,
             const reconfig_plan& plan);

  /// Advances the migration by at most one control action. Call
  /// repeatedly, interleaved with transport progress, until done().
  void step();

  [[nodiscard]] bool done() const { return phase_ == phase::done; }
  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] const reconfig_stats& stats() const { return stats_; }

 private:
  enum class phase { idle, reading, seeding, done };

  /// Skips keys that do not move; arms the next handoff or finishes.
  void advance_key();

  control_plane& ctl_;
  std::vector<std::string> keys_;
  /// Objects already handed off this reconfiguration (dedups keys_).
  std::unordered_set<object_id> handled_;
  std::shared_ptr<const store::shard_map> old_map_;
  std::shared_ptr<const store::shard_map> new_map_;
  std::size_t next_key_{0};
  std::string cur_key_{};
  phase phase_{phase::idle};
  std::string error_{};
  reconfig_stats stats_{};
};

}  // namespace fastreg::reconfig
