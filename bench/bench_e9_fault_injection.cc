// E9 -- wait-freedom under failures (Sections 2-4): reads and writes must
// terminate regardless of which t servers fail and when, including crashes
// that tear a broadcast in half. Measures latency impact of the crash
// pattern on the fast register and verifies every op still completes in
// one round-trip.
#include <cstdio>

#include "benchutil/table.h"
#include "benchutil/workload.h"
#include "checker/atomicity.h"
#include "registers/registry.h"

using namespace fastreg;
using namespace fastreg::benchutil;

int main() {
  std::printf("E9: wait-freedom and latency under server crashes\n\n");
  table t({"proto", "S", "t", "crashed", "when", "read_p50", "write_p50",
           "all_complete", "atomic", "fast"});
  struct c3 {
    const char* proto;
    std::uint32_t S, t, R;
  };
  for (const auto c : {c3{"fast_swmr", 16, 3, 2}, c3{"abd", 7, 3, 2}}) {
    for (const std::uint32_t crashes : {0u, c.t / 2 + 1, c.t}) {
      for (const bool midway : {false, true}) {
        if (crashes == 0 && midway) continue;
        system_config cfg;
        cfg.servers = c.S;
        cfg.t_failures = c.t;
        cfg.readers = c.R;
        workload_options opt;
        opt.num_writes = 20;
        opt.reads_per_reader = 10;
        opt.concurrent = true;
        opt.crash_servers = crashes;
        opt.crash_midway = midway;
        const auto rep = run_measured(*make_protocol(c.proto), cfg, opt);
        const int rd_limit = std::string(c.proto) == "abd" ? 2 : 1;
        t.add_row(
            {c.proto, std::to_string(c.S), std::to_string(c.t),
             std::to_string(crashes), midway ? "mid-run(torn)" : "up-front",
             fmt(rep.read_latency.p50()), fmt(rep.write_latency.p50()),
             rep.all_complete ? "yes" : "NO",
             checker::check_swmr_atomicity(rep.hist).ok ? "yes" : "NO",
             checker::check_fastness(rep.hist, rd_limit, 1).ok ? "yes"
                                                               : "NO"});
      }
    }
  }
  t.print();
  std::printf("\nexpected: all_complete/atomic/fast = yes everywhere; "
              "latency is essentially flat (clients wait for S-t replies "
              "regardless of crashes -- that is what wait-freedom buys).\n");
  return 0;
}
