// Differential testing of the polynomial MWMR linearizability checker
// against the exponential Wing&Gong oracle: thousands of randomized small
// multi-writer histories (where the oracle is still feasible) on which the
// two verdicts must agree exactly, plus hand-built non-linearizable
// mutants both must reject with a useful error message.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "checker/atomicity.h"
#include "checker/history.h"
#include "common/rng.h"

namespace fastreg::checker {
namespace {

// ------------------------------------------------ random history maker --

/// Generates a well-formed random history: up to `max_ops` operations
/// from 3 writers and 3 readers, each client's ops sequential, intervals
/// drawn in a small time range so concurrency is dense. Reads return a
/// value drawn from the full written set (past or FUTURE writes, so both
/// legal and illegal returns are produced), bottom, or -- rarely -- a
/// never-written value. A client's last op may be left incomplete.
history random_history(rng& r, std::uint32_t max_ops) {
  history h;
  const std::uint32_t n_ops = 1 + static_cast<std::uint32_t>(
                                      r.below(max_ops));
  struct plan_op {
    process_id client;
    bool is_write;
    std::uint64_t inv, resp;
    bool complete;
  };
  std::vector<plan_op> plan;
  std::vector<std::uint64_t> next_free(6, 0);  // 3 writers then 3 readers
  std::vector<bool> parked(6, false);  // incomplete op: client's last
  std::uint32_t seq = 0;
  std::vector<value_t> written;
  for (std::uint32_t i = 0; i < n_ops; ++i) {
    std::uint32_t c = static_cast<std::uint32_t>(r.below(6));
    for (std::uint32_t tries = 0; parked[c] && tries < 6; ++tries) {
      c = static_cast<std::uint32_t>(r.below(6));
    }
    if (parked[c]) continue;
    plan_op op;
    op.client = c < 3 ? writer_id(c) : reader_id(c - 3);
    op.is_write = r.chance(1, 2);
    op.inv = next_free[c] + r.below(8);
    op.resp = op.inv + r.below(10);
    op.complete = !r.chance(1, 6);
    if (!op.complete) {
      parked[c] = true;
    } else {
      next_free[c] = op.resp + 1;
    }
    plan.push_back(op);
    if (op.is_write) {
      written.push_back("v" + std::to_string(++seq));
    }
  }
  // Issue begin/complete in a well-formed order (begin sorted by invoke
  // time; the history builder only checks per-client sequencing, which
  // next_free already guarantees).
  std::vector<std::size_t> order(plan.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return plan[a].inv < plan[b].inv;
  });
  std::uint32_t next_written = 0;
  for (const auto i : order) {
    const auto& op = plan[i];
    if (op.is_write) {
      const auto idx = h.begin_op(op.client, true, op.inv,
                                  written[next_written++]);
      if (op.complete) h.complete_write(idx, op.resp, 1);
    } else {
      const auto idx = h.begin_op(op.client, false, op.inv);
      if (op.complete) {
        value_t v = k_bottom_value;
        const auto dice = r.below(10);
        if (dice == 0) {
          v = "phantom";  // never written: both checkers must reject
        } else if (dice <= 6 && !written.empty()) {
          v = written[r.below(written.size())];
        }
        h.complete_read(idx, op.resp, 0, 0, v, 1);
      }
    }
  }
  return h;
}

TEST(CheckerDifferential, PolynomialAgreesWithOracleOnRandomHistories) {
  std::uint64_t agreed_ok = 0, agreed_fail = 0;
  for (std::uint64_t trial = 0; trial < 6000; ++trial) {
    rng r(0x5eed0000 + trial);
    const history h = random_history(r, 12);
    const auto fast = check_mwmr_linearizable(h);
    const auto oracle = check_linearizable(h);
    ASSERT_EQ(fast.ok, oracle.ok)
        << "divergence on trial " << trial << ":\npolynomial: "
        << (fast.ok ? "ok" : fast.error) << "\noracle: "
        << (oracle.ok ? "ok" : oracle.error) << "\n"
        << h.dump();
    (fast.ok ? agreed_ok : agreed_fail) += 1;
  }
  // The generator must actually exercise both verdicts.
  EXPECT_GT(agreed_ok, 500u);
  EXPECT_GT(agreed_fail, 500u);
}

TEST(CheckerDifferential, DuplicateValuesRejectedByBothAsInput) {
  for (std::uint64_t trial = 0; trial < 64; ++trial) {
    rng r(0xd0b0 + trial);
    history h;
    // Two writers write the same value concurrently; whatever else the
    // generator would do, both checkers must refuse the input rather
    // than return a verdict.
    const auto w1 = h.begin_op(writer_id(0), true, 1 + r.below(4), "dup");
    h.complete_write(w1, 10, 1);
    const auto w2 = h.begin_op(writer_id(1), true, 1 + r.below(4), "dup");
    h.complete_write(w2, 10, 1);
    const auto fast = check_mwmr_linearizable(h);
    const auto oracle = check_linearizable(h);
    EXPECT_FALSE(fast.ok);
    EXPECT_FALSE(oracle.ok);
    EXPECT_NE(fast.error.find("unique"), std::string::npos) << fast.error;
    EXPECT_NE(oracle.error.find("unique"), std::string::npos);
  }
}

// ------------------------------------------------- hand-built mutants --

/// Builder mirroring test_checker.cc's, for multi-writer literals.
struct hb {
  history h;
  void write(std::uint32_t wi, std::uint64_t inv, std::uint64_t resp,
             value_t v) {
    const auto i = h.begin_op(writer_id(wi), true, inv, std::move(v));
    h.complete_write(i, resp, 1);
  }
  void read(std::uint32_t ri, std::uint64_t inv, std::uint64_t resp,
            value_t v) {
    const auto i = h.begin_op(reader_id(ri), false, inv);
    h.complete_read(i, resp, 0, 0, std::move(v), 1);
  }
};

void expect_both_reject(const history& h, const std::string& what) {
  const auto fast = check_mwmr_linearizable(h);
  const auto oracle = check_linearizable(h);
  EXPECT_FALSE(fast.ok) << what << ": polynomial checker accepted\n"
                        << h.dump();
  EXPECT_FALSE(oracle.ok) << what << ": oracle accepted\n" << h.dump();
  // A useful message: non-empty and naming at least one involved value.
  EXPECT_FALSE(fast.error.empty());
  EXPECT_FALSE(oracle.error.empty());
}

TEST(CheckerMutants, NewOldInversion) {
  // "old" is completely written; "new" is concurrent with both reads.
  // The reads are sequential and see new then old -- the classic
  // inversion: reader 0 observing "new" pins its write before reader 0,
  // so reader 1, strictly later, may not travel back to "old".
  hb b;
  b.write(0, 1, 2, "old");
  b.write(1, 3, 100, "new");
  b.read(0, 10, 11, "new");
  b.read(1, 20, 21, "old");
  expect_both_reject(b.h, "new/old inversion");
  const auto res = check_mwmr_linearizable(b.h);
  EXPECT_NE(res.error.find("old"), std::string::npos) << res.error;
  EXPECT_NE(res.error.find("new"), std::string::npos) << res.error;
}

TEST(CheckerMutants, LostUpdate) {
  // write_2 strictly follows write_1, yet a later read returns write_1's
  // value: write_2's update was lost.
  hb b;
  b.write(0, 1, 2, "first");
  b.write(1, 3, 4, "second");
  b.read(0, 5, 6, "first");
  expect_both_reject(b.h, "lost update");
  const auto res = check_mwmr_linearizable(b.h);
  EXPECT_NE(res.error.find("second"), std::string::npos) << res.error;
}

TEST(CheckerMutants, CycleThroughThreeWriters) {
  // Three concurrent writes a, b, c; three readers observe a-before-b,
  // b-before-c and c-before-a respectively. Every pairwise order is
  // individually fine; only the three-cluster cycle is contradictory --
  // the case that separates a real linearizability check from pairwise
  // read-ordering heuristics (and exercises the checker's theorem that
  // any cluster cycle contains a 2-cycle).
  hb b;
  b.write(0, 1, 100, "a");
  b.write(1, 1, 100, "b");
  b.write(2, 1, 100, "c");
  b.read(0, 10, 11, "a");
  b.read(0, 12, 13, "b");
  b.read(1, 10, 11, "b");
  b.read(1, 12, 13, "c");
  b.read(2, 10, 11, "c");
  b.read(2, 12, 13, "a");
  expect_both_reject(b.h, "three-writer cycle");
}

TEST(CheckerMutants, StaleBottomRead) {
  // A completed write, then a read of bottom: the initial value came
  // back from the future of a completed write.
  hb b;
  b.write(0, 1, 2, "x");
  b.read(0, 3, 4, k_bottom_value);
  expect_both_reject(b.h, "stale bottom read");
}

TEST(CheckerMutants, ReadFromTheFuture) {
  hb b;
  b.read(0, 1, 2, "later");
  b.write(0, 5, 6, "later");
  expect_both_reject(b.h, "read from the future");
  const auto res = check_mwmr_linearizable(b.h);
  EXPECT_NE(res.error.find("before its write"), std::string::npos)
      << res.error;
}

}  // namespace
}  // namespace fastreg::checker
