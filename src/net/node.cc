#include "net/node.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/timerfd.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/check.h"
#include "common/log.h"

namespace fastreg::net {

std::uint64_t node::now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

node_options node_options::from_env() {
  node_options opt;
  const char* env = std::getenv("FASTREG_BATCH_WINDOW_US");
  if (env == nullptr || *env == '\0') return opt;
  // Strict parsing: a malformed value must not silently configure
  // something other than what was asked for (a bench run under a typo'd
  // knob would measure the wrong transport).
  if (std::strcmp(env, "adaptive") == 0) {
    opt.adaptive = true;
    return opt;
  }
  if (std::strncmp(env, "adaptive:", 9) == 0) {
    char* end = nullptr;
    const unsigned long cap = std::strtoul(env + 9, &end, 10);
    if (end != env + 9 && *end == '\0' && cap > 0) {
      opt.adaptive = true;
      opt.adaptive_cap_us = static_cast<std::uint32_t>(cap);
      return opt;
    }
  } else {
    char* end = nullptr;
    const unsigned long us = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0') {
      opt.batch_window_us = static_cast<std::uint32_t>(us);
      return opt;
    }
  }
  LOG_WARN("ignoring malformed FASTREG_BATCH_WINDOW_US=\"%s\" (expected an "
           "integer, \"adaptive\", or \"adaptive:<cap_us>\"); using "
           "immediate flush",
           env);
  return node_options{};
}

node::node(system_config cfg, std::unique_ptr<automaton> a,
           std::shared_ptr<const address_book> book, node_options opt)
    : cfg_(std::move(cfg)),
      automaton_(std::move(a)),
      book_(std::move(book)),
      self_(automaton_->self()),
      opt_(opt),
      async_iface_(dynamic_cast<async_client_iface*>(automaton_.get())) {
  epoll_fd_.reset(::epoll_create1(0));
  FASTREG_CHECK(epoll_fd_.valid());
  event_fd_.reset(::eventfd(0, EFD_NONBLOCK));
  FASTREG_CHECK(event_fd_.valid());
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = event_fd_.get();
  FASTREG_CHECK(::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, event_fd_.get(),
                            &ev) == 0);
  timer_fd_.reset(::timerfd_create(CLOCK_MONOTONIC, TFD_NONBLOCK));
  FASTREG_CHECK(timer_fd_.valid());
  ev = epoll_event{};
  ev.events = EPOLLIN;
  ev.data.fd = timer_fd_.get();
  FASTREG_CHECK(::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, timer_fd_.get(),
                            &ev) == 0);
  if (!opt_.adaptive) cur_window_us_ = opt_.batch_window_us;

  // One label per node; handles stay valid for the life of the process,
  // so the hot path never touches the registry's lock.
  auto& reg = obs::registry::instance();
  const std::string lbl = "node=\"" + to_string(self_) + "\"";
  wm_.frames_out = &reg.get_counter("fastreg_net_frames_out_total", lbl);
  wm_.bytes_out = &reg.get_counter("fastreg_net_bytes_out_total", lbl);
  wm_.frames_in = &reg.get_counter("fastreg_net_frames_in_total", lbl);
  wm_.bytes_in = &reg.get_counter("fastreg_net_bytes_in_total", lbl);
  wm_.writev_calls = &reg.get_counter("fastreg_net_writev_calls_total", lbl);
  wm_.short_writes =
      &reg.get_counter("fastreg_net_short_write_resumptions_total", lbl);
  wm_.flushes_immediate = &reg.get_counter(
      "fastreg_net_flushes_total", lbl + ",reason=\"immediate\"");
  wm_.flushes_window = &reg.get_counter("fastreg_net_flushes_total",
                                        lbl + ",reason=\"window_expired\"");
  wm_.flushes_step = &reg.get_counter("fastreg_net_flushes_total",
                                      lbl + ",reason=\"step_end\"");
  wm_.window_widen =
      &reg.get_counter("fastreg_net_window_widen_total", lbl);
  wm_.conn_resets = &reg.get_counter("fastreg_net_conn_resets_total", lbl);
  wm_.connections = &reg.get_gauge("fastreg_net_connections", lbl);
  wm_.backlog_bytes = &reg.get_gauge("fastreg_net_backlog_bytes", lbl);
  wm_.flush_ns = &reg.get_histogram("fastreg_net_flush_ns", lbl);
  wm_.window_wait_ns = &reg.get_histogram("fastreg_net_window_wait_ns", lbl);
  rec_ = &obs::recorder_for(self_);
}

node::~node() { stop(); }

void node::bind_listener(std::uint16_t port) {
  listen_fd_ = listen_on(port);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_.get();
  FASTREG_CHECK(::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, listen_fd_.get(),
                            &ev) == 0);
}

std::uint16_t node::listen_port() const {
  FASTREG_EXPECTS(listen_fd_.valid());
  return local_port(listen_fd_.get());
}

void node::start() {
  FASTREG_EXPECTS(!thread_.joinable());
  {
    std::lock_guard<std::mutex> lk(mu_);
    started_ = true;
  }
  thread_ = std::thread([this] { reactor_main(); });
}

void node::stop() {
  if (!thread_.joinable()) return;
  post([this] {
    std::lock_guard<std::mutex> lk(mu_);
    stop_requested_ = true;
  });
  thread_.join();
}


void node::post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    tasks_.push_back(std::move(fn));
  }
  const std::uint64_t one = 1;
  [[maybe_unused]] const auto n =
      ::write(event_fd_.get(), &one, sizeof one);
}

// ----------------------------------------------------------- client calls --

std::optional<read_result> node::blocking_read(
    std::chrono::milliseconds timeout) {
  auto* r = as_reader(automaton_.get());
  FASTREG_EXPECTS(r != nullptr);
  std::uint64_t before;
  {
    std::lock_guard<std::mutex> lk(mu_);
    before = reads_done_;
  }
  post([this, r] {
    {
      std::lock_guard<std::mutex> lk(mu_);
      open_op_index_ = hist_.begin_op(self_, false, now_ns());
      op_open_ = true;
    }
    // Register automata never stamp their messages; the ambient trace
    // context tags everything this invocation sends (see node::send).
    obs::scoped_trace_ctx trace_ctx(obs::next_trace_id(), 0);
    r->invoke_read(*this);
  });
  std::unique_lock<std::mutex> lk(mu_);
  if (!cv_.wait_for(lk, timeout, [&] { return reads_done_ > before; })) {
    return std::nullopt;
  }
  return r->last_read();
}

bool node::blocking_write(value_t v, std::chrono::milliseconds timeout) {
  auto* w = as_writer(automaton_.get());
  FASTREG_EXPECTS(w != nullptr);
  std::uint64_t before;
  {
    std::lock_guard<std::mutex> lk(mu_);
    before = writes_done_;
  }
  post([this, w, v = std::move(v)]() mutable {
    {
      std::lock_guard<std::mutex> lk(mu_);
      open_op_index_ = hist_.begin_op(self_, true, now_ns(), v);
      op_open_ = true;
    }
    obs::scoped_trace_ctx trace_ctx(obs::next_trace_id(), 0);
    w->invoke_write(*this, std::move(v));
  });
  std::unique_lock<std::mutex> lk(mu_);
  return cv_.wait_for(lk, timeout, [&] { return writes_done_ > before; });
}

bool node::blocking_op(const std::function<void(automaton&, netout&)>& start,
                       std::chrono::milliseconds timeout) {
  FASTREG_EXPECTS(async_iface_ != nullptr);
  auto started = std::make_shared<bool>(false);
  post([this, start, started] {
    start(*automaton_, *this);
    {
      std::lock_guard<std::mutex> lk(mu_);
      *started = true;
      // Mirror immediately: the wait predicate must not observe the
      // stale pre-invocation idle state as completion.
      async_busy_ = async_iface_->op_in_progress();
      async_done_ = async_iface_->ops_completed();
      async_in_flight_ = async_iface_->ops_in_flight();
    }
    cv_.notify_all();
  });
  std::unique_lock<std::mutex> lk(mu_);
  return cv_.wait_for(lk, timeout, [&] { return *started && !async_busy_; });
}

bool node::wait_ops_in_flight_below(std::size_t limit,
                                    std::chrono::milliseconds timeout) {
  FASTREG_EXPECTS(async_iface_ != nullptr);
  std::unique_lock<std::mutex> lk(mu_);
  return cv_.wait_for(lk, timeout, [&] { return async_in_flight_ < limit; });
}

bool node::wait_ops_completed(std::uint64_t target,
                              std::chrono::milliseconds timeout) {
  FASTREG_EXPECTS(async_iface_ != nullptr);
  std::unique_lock<std::mutex> lk(mu_);
  return cv_.wait_for(lk, timeout, [&] { return async_done_ >= target; });
}

std::uint64_t node::async_completed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return async_done_;
}

void node::run_on_reactor(const std::function<void(automaton&)>& fn) {
  // Reactor not running (never started, already stopped, or it exited
  // before draining the task): the caller has exclusive access, run
  // inline instead of waiting forever on a task nothing will drain.
  if (!try_run_on_reactor(fn)) fn(*automaton_);
}

bool node::try_run_on_reactor(const std::function<void(automaton&)>& fn) {
  {
    // Only a definitely-not-running reactor short-circuits. A merely
    // stop-REQUESTED reactor may still be draining: returning false here
    // would let run_on_reactor's inline fallback race the live reactor
    // thread; posting is safe either way (the task runs on the reactor,
    // or the exit path discards it and the wait below observes that).
    std::lock_guard<std::mutex> lk(mu_);
    if (!started_ || reactor_exited_) return false;
  }
  auto done = std::make_shared<bool>(false);
  // fn is copied into the task: if the reactor exits without draining
  // it, the closure outlives this call (reactor_main clears the queue on
  // exit, but the post() below can land just after that).
  post([this, fn, done] {
    fn(*automaton_);
    {
      std::lock_guard<std::mutex> lk(mu_);
      *done = true;
    }
    cv_.notify_all();
  });
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return *done || reactor_exited_; });
  // A task the reactor exited without draining never ran and never will;
  // report the node unreachable rather than running fn here.
  return *done;
}

void node::run_on_reactor_net(
    const std::function<void(automaton&, netout&)>& fn) {
  run_on_reactor([this, &fn](automaton& a) {
    fn(a, *this);
    poll_client_completion();
  });
}

checker::history node::hist() const {
  std::lock_guard<std::mutex> lk(mu_);
  return hist_;
}

void node::poll_client_completion() {
  if (async_iface_ != nullptr) {
    std::lock_guard<std::mutex> lk(mu_);
    const bool busy = async_iface_->op_in_progress();
    const std::uint64_t done = async_iface_->ops_completed();
    const std::size_t in_flight = async_iface_->ops_in_flight();
    if (busy != async_busy_ || done != async_done_ ||
        in_flight != async_in_flight_) {
      async_busy_ = busy;
      async_done_ = done;
      async_in_flight_ = in_flight;
      cv_.notify_all();
    }
  }
  if (auto* r = as_reader(automaton_.get())) {
    std::lock_guard<std::mutex> lk(mu_);
    if (op_open_ && r->reads_completed() > reads_done_) {
      const auto& res = r->last_read();
      FASTREG_CHECK(res.has_value());
      hist_.complete_read(open_op_index_, now_ns(), res->ts, res->wid,
                          res->val, res->rounds);
      op_open_ = false;
      reads_done_ = r->reads_completed();
      cv_.notify_all();
    }
  }
  if (auto* w = as_writer(automaton_.get())) {
    std::lock_guard<std::mutex> lk(mu_);
    if (op_open_ && w->writes_completed() > writes_done_) {
      hist_.complete_write(open_op_index_, now_ns(), w->last_write_rounds());
      op_open_ = false;
      writes_done_ = w->writes_completed();
      cv_.notify_all();
    }
  }
}

// -------------------------------------------------------------- reactor --

void node::reactor_main() {
  // Every log line this thread emits is tagged with the node it serves.
  log_set_node(to_string(self_));
  for (;;) {
    epoll_event events[64];
    // Do not block when a task is already queued: a post() landing after
    // this iteration's task swap but before the eventfd drain below would
    // otherwise lose its wakeup (the drain eats the counter while the
    // task waits a full epoll timeout).
    int wait_ms = 50;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (!tasks_.empty()) wait_ms = 0;
    }
    const int n = ::epoll_wait(epoll_fd_.get(), events, 64, wait_ms);
    // Drain posted tasks first (includes invocations and stop requests).
    std::deque<std::function<void()>> tasks;
    {
      std::lock_guard<std::mutex> lk(mu_);
      tasks.swap(tasks_);
    }
    for (auto& t : tasks) t();
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (stop_requested_) break;
    }
    bool window_expired = false;
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == event_fd_.get()) {
        std::uint64_t buf;
        while (::read(event_fd_.get(), &buf, sizeof buf) > 0) {
        }
        continue;
      }
      if (fd == timer_fd_.get()) {
        std::uint64_t expirations;
        while (::read(timer_fd_.get(), &expirations, sizeof expirations) >
               0) {
        }
        window_expired = true;
        continue;
      }
      if (listen_fd_.valid() && fd == listen_fd_.get()) {
        while (auto accepted = accept_one(listen_fd_.get())) {
          const int cfd = accepted->get();
          connection c;
          c.fd = std::move(*accepted);
          conns_.emplace(cfd, std::move(c));
          wm_.connections->add(1);
          epoll_event ev{};
          ev.events = EPOLLIN;
          ev.data.fd = cfd;
          ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, cfd, &ev);
        }
        continue;
      }
      if ((events[i].events & (EPOLLERR | EPOLLHUP)) != 0) {
        close_conn(fd);
        continue;
      }
      if ((events[i].events & EPOLLIN) != 0) handle_readable(fd);
      if ((events[i].events & EPOLLOUT) != 0) handle_writable(fd);
    }
    if (window_expired) {
      window_armed_ = false;
      // Adaptive policy: widen while the window keeps catching
      // multi-frame backlog, shrink toward immediate when it stops.
      if (opt_.adaptive) {
        if (frames_since_flush_ >= 8) {
          cur_window_us_ = cur_window_us_ == 0
                               ? 50
                               : std::min(opt_.window_cap_us(),
                                          cur_window_us_ * 2);
          wm_.window_widen->inc();
        } else if (frames_since_flush_ <= 1) {
          cur_window_us_ = cur_window_us_ >= 100 ? cur_window_us_ / 2 : 0;
        }
      }
      wm_.flushes_window->inc();
      flush_dirty();
    } else if (opt_.adaptive && cur_window_us_ == 0 && !dirty_fds_.empty()) {
      // Adaptive at window 0: flush at the end of the step that queued
      // the bytes (immediate-equivalent latency), but keep measuring the
      // step's backlog so sustained bursts re-open the window.
      if (frames_since_flush_ >= 8) {
        cur_window_us_ = 50;
        wm_.window_widen->inc();
        arm_window(cur_window_us_);
      } else {
        wm_.flushes_step->inc();
        flush_dirty();
      }
    }
    poll_client_completion();
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    reactor_exited_ = true;
    // Undrained tasks never run: they must not fire on a later start()
    // (their captures may be long dead by then).
    tasks_.clear();
  }
  cv_.notify_all();
}

void node::handle_readable(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  // Reference (not iterator): stable across the insert-rehash a drain
  // callback can cause by opening a new outbound connection. Erasure of
  // THIS entry while the drain runs is deferred by close_conn (see the
  // drain_guard_fd_ comment there).
  auto& c = it->second;
  std::uint8_t buf[64 * 1024];
  bool reset = false;
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n <= 0) {
      close_conn(fd);
      return;
    }
    wm_.bytes_in->inc(static_cast<std::uint64_t>(n));
    // Frames parse IN PLACE from the read buffer (only a trailing
    // partial frame is copied aside); the automaton steps run inside the
    // drain callback, so a burst of frames in one read is one pass over
    // the bytes.
    drain_guard_fd_ = fd;
    c.in.drain(buf, static_cast<std::size_t>(n), [&](frame&& f) {
      wm_.frames_in->inc();
      if (f.kind == frame_kind::hello) {
        c.peer = f.from;
        inbound_by_peer_[f.from] = fd;
        return;
      }
      if (f.kind == frame_kind::batch) {
        if (obs::recording_active()) {
          for (const auto& m : f.batch) {
            rec_->record(obs::rec_event::recv, m.trace, m.span,
                         static_cast<std::uint8_t>(m.type), f.from, m.obj,
                         m.epoch, m.ts);
          }
        }
        // Ambient trace ctx for replies of trace-oblivious automata; a
        // batch carries the head's (store automata stamp replies
        // themselves, matching the simulator's convention).
        obs::scoped_trace_ctx trace_ctx(
            f.batch.empty() ? 0 : f.batch.front().trace,
            f.batch.empty() ? std::uint16_t{0} : f.batch.front().span);
        automaton_->on_batch(*this, f.from, f.batch);
        return;
      }
      if (f.msg.has_value()) {
        if (obs::recording_active()) {
          rec_->record(obs::rec_event::recv, f.msg->trace, f.msg->span,
                       static_cast<std::uint8_t>(f.msg->type), f.from,
                       f.msg->obj, f.msg->epoch, f.msg->ts);
        }
        obs::scoped_trace_ctx trace_ctx(f.msg->trace, f.msg->span);
        automaton_->on_message(*this, f.from, *f.msg);
      }
    });
    drain_guard_fd_ = -1;
    if (drain_close_pending_ || c.in.corrupt()) {
      reset = true;
      break;
    }
  }
  if (reset) {
    // Framing lost on this stream (frame_buffer's contract), or a send
    // inside the drain hit a fatal write error on this same socket: the
    // only safe recovery is a reset. The peer reconnects with fresh
    // framing state; undelivered messages are covered by the protocols'
    // quorum waits and the store's retry paths.
    drain_close_pending_ = false;
    wm_.conn_resets->inc();
    LOG_DEBUG("%s: resetting connection on fd %d (corrupt stream or "
              "write failure mid-drain)",
              to_string(self_).c_str(), fd);
    close_conn(fd);
    return;
  }
  poll_client_completion();
}

void node::handle_writable(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  it->second.connecting = false;
  flush(fd, it->second);
}

void node::flush(int fd, connection& c) {
  // c.dirty is left alone: it means "fd is listed in dirty_fds_", and a
  // direct flush (immediate mode, or handle_writable) does not unlist.
  // A listed-but-already-flushed connection is a cheap no-op later.
  const std::uint64_t flush_start = c.out.empty() ? 0 : now_ns();
  while (!c.out.empty()) {
    struct iovec iov[16];
    const std::size_t cnt = c.out.fill_iovec(iov, 16);
    if (cnt == 0) break;  // only a not-yet-filled tail block: nothing queued
    std::size_t queued = 0;
    for (std::size_t i = 0; i < cnt; ++i) queued += iov[i].iov_len;
    const ssize_t n = ::writev(fd, iov, static_cast<int>(cnt));
    wm_.writev_calls->inc();
    if (n > 0) {
      // Possibly a SHORT write: consume() leaves the remainder (even
      // mid-block) at the chain's front and the next flush resumes there.
      wm_.bytes_out->inc(static_cast<std::uint64_t>(n));
      wm_.backlog_bytes->add(-static_cast<std::int64_t>(n));
      if (static_cast<std::size_t>(n) < queued) wm_.short_writes->inc();
      c.out.consume(static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    close_conn(fd);
    return;
  }
  if (flush_start != 0) wm_.flush_ns->observe(now_ns() - flush_start);
  update_epoll(fd, c);
}

void node::update_epoll(int fd, connection& c) {
  epoll_event ev{};
  ev.events = EPOLLIN;
  if (c.connecting || c.out.bytes() > 0) ev.events |= EPOLLOUT;
  ev.data.fd = fd;
  ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, fd, &ev);
}

void node::close_conn(int fd) {
  // An automaton step running inside handle_readable's drain can hit a
  // fatal write error on the very connection being drained (the server
  // answers over the inbound socket). Erasing it here would free the
  // frame_buffer mid-parse; defer -- handle_readable performs the close
  // as soon as the drain returns.
  if (fd == drain_guard_fd_) {
    drain_close_pending_ = true;
    return;
  }
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  if (it->second.peer) inbound_by_peer_.erase(*it->second.peer);
  for (auto o = out_to_server_.begin(); o != out_to_server_.end();) {
    o = o->second == fd ? out_to_server_.erase(o) : std::next(o);
  }
  std::erase(dirty_fds_, fd);
  ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, fd, nullptr);
  wm_.backlog_bytes->add(-static_cast<std::int64_t>(it->second.out.bytes()));
  wm_.connections->add(-1);
  conns_.erase(it);  // unique_fd closes
}

void node::arm_window(std::uint32_t us) {
  if (window_armed_) return;
  itimerspec spec{};
  spec.it_value.tv_sec = us / 1'000'000;
  spec.it_value.tv_nsec = static_cast<long>(us % 1'000'000) * 1'000;
  if (spec.it_value.tv_sec == 0 && spec.it_value.tv_nsec == 0) {
    spec.it_value.tv_nsec = 1;  // fire immediately rather than disarm
  }
  ::timerfd_settime(timer_fd_.get(), 0, &spec, nullptr);
  window_armed_ = true;
}

void node::after_queue(int fd, connection& c) {
  ++frames_since_flush_;
  const bool windowed = opt_.adaptive || cur_window_us_ > 0;
  if (!windowed) {
    // Immediate mode (window 0): the pre-window behavior, one flush per
    // queueing step.
    wm_.flushes_immediate->inc();
    if (!c.connecting) {
      flush(fd, c);
    } else {
      update_epoll(fd, c);
    }
    return;
  }
  if (frames_since_flush_ == 1) window_open_ns_ = now_ns();
  if (!c.dirty) {
    c.dirty = true;
    dirty_fds_.push_back(fd);
  }
  if (cur_window_us_ > 0) arm_window(cur_window_us_);
  // Adaptive at window 0: flushed at the end of this reactor step (see
  // reactor_main), so a lone frame still leaves with step latency.
}

void node::flush_dirty() {
  // flush() can close a connection (erasing from conns_); iterate over a
  // drained copy and re-validate each fd.
  std::vector<int> fds;
  fds.swap(dirty_fds_);
  for (const int fd : fds) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) continue;
    auto& c = it->second;
    c.dirty = false;
    if (c.connecting) {
      // Connect still in progress: the bytes leave in handle_writable.
      update_epoll(fd, c);
      continue;
    }
    flush(fd, c);
  }
  if (frames_since_flush_ > 0 && window_open_ns_ != 0) {
    wm_.window_wait_ns->observe(now_ns() - window_open_ns_);
  }
  window_open_ns_ = 0;
  frames_since_flush_ = 0;
}

node::connection* node::conn_for(const process_id& to) {
  if (to.is_server()) {
    const int fd = outbound_to_server(to.index);
    auto it = conns_.find(fd);
    return it == conns_.end() ? nullptr : &it->second;
  }
  // Replies to clients (or servers acting as clients of this server) go
  // over the connection they introduced themselves on.
  if (auto it = inbound_by_peer_.find(to); it != inbound_by_peer_.end()) {
    auto cit = conns_.find(it->second);
    return cit == conns_.end() ? nullptr : &cit->second;
  }
  LOG_DEBUG("%s: no route to %s; dropping frame", to_string(self_).c_str(),
            to_string(to).c_str());
  return nullptr;
}

int node::outbound_to_server(std::uint32_t index) {
  if (auto it = out_to_server_.find(index); it != out_to_server_.end()) {
    return it->second;
  }
  FASTREG_EXPECTS(index < book_->server_ports.size());
  unique_fd fd = connect_to(book_->server_ports[index]);
  const int raw = fd.get();
  connection c;
  c.fd = std::move(fd);
  c.connecting = true;
  conns_.emplace(raw, std::move(c));
  wm_.connections->add(1);
  out_to_server_[index] = raw;
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLOUT;
  ev.data.fd = raw;
  ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, raw, &ev);
  // Introduce ourselves so the server can route replies back. The hello
  // must precede any frame on this connection, so it bypasses the batch
  // window ordering-wise (it is appended first) but still leaves in the
  // same writev as the frames that triggered the connect.
  auto& cref = conns_.find(raw)->second;
  append_hello_frame(cref.out.tail_for(64), self_);
  wm_.frames_out->inc();
  wm_.backlog_bytes->add(static_cast<std::int64_t>(cref.out.bytes()));
  return raw;
}

namespace {

// Register automata never stamp their messages; the reactor step's
// ambient trace context (set by the invocation or the delivery being
// handled) fills the gap. Store messages arrive here already stamped.
void stamp_if_untraced(message& m) {
  if (m.trace != 0) return;
  const auto ctx = obs::current_trace_ctx();
  m.trace = ctx.trace;
  m.span = ctx.span;
}

}  // namespace

void node::send(const process_id& to, message m) {
  stamp_if_untraced(m);
  connection* c = conn_for(to);
  if (c == nullptr) return;
  if (obs::recording_active()) {
    rec_->record(obs::rec_event::send, m.trace, m.span,
                 static_cast<std::uint8_t>(m.type), to, m.obj, m.epoch, m.ts);
  }
  // Encoded in place into the connection's chain: no intermediate
  // per-message byte vector.
  const std::size_t before = c->out.bytes();
  append_msg_frame(c->out.tail_for(msg_frame_wire_size(m)), self_, m);
  wm_.frames_out->inc();
  wm_.backlog_bytes->add(static_cast<std::int64_t>(c->out.bytes() - before));
  after_queue(c->fd.get(), *c);
}

void node::send_batch(const process_id& to, std::vector<message> msgs) {
  FASTREG_EXPECTS(!msgs.empty());
  if (msgs.size() == 1) {
    send(to, std::move(msgs.front()));
    return;
  }
  for (auto& m : msgs) stamp_if_untraced(m);
  connection* c = conn_for(to);
  if (c == nullptr) return;
  if (obs::recording_active()) {
    for (const auto& m : msgs) {
      rec_->record(obs::rec_event::send, m.trace, m.span,
                   static_cast<std::uint8_t>(m.type), to, m.obj, m.epoch,
                   m.ts);
    }
  }
  const std::size_t before = c->out.bytes();
  // Chunk so no frame approaches frame_buffer::max_frame_bytes -- the
  // receiver treats an oversized frame as stream corruption and resets
  // the connection, which batching large values could otherwise trigger.
  constexpr std::size_t chunk_limit = frame_buffer::max_frame_bytes / 4;
  std::size_t begin = 0;
  std::size_t bytes = 0;
  for (std::size_t i = 0; i < msgs.size(); ++i) {
    const std::size_t sz = message_wire_size(msgs[i]);
    if (i > begin && bytes + sz > chunk_limit) {
      const auto chunk =
          std::span<const message>(msgs.data() + begin, i - begin);
      append_batch_frame(c->out.tail_for(batch_frame_wire_size(chunk)),
                         self_, chunk);
      wm_.frames_out->inc();
      begin = i;
      bytes = 0;
    }
    bytes += sz;
  }
  const auto chunk =
      std::span<const message>(msgs.data() + begin, msgs.size() - begin);
  if (chunk.size() == 1) {
    append_msg_frame(c->out.tail_for(msg_frame_wire_size(chunk.front())),
                     self_, chunk.front());
  } else {
    append_batch_frame(c->out.tail_for(batch_frame_wire_size(chunk)), self_,
                       chunk);
  }
  wm_.frames_out->inc();
  wm_.backlog_bytes->add(static_cast<std::int64_t>(c->out.bytes() - before));
  after_queue(c->fd.get(), *c);
}

}  // namespace fastreg::net
