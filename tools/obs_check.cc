// obs_check -- validates an observability text dump. Two grammars,
// auto-detected by the first non-blank, non-comment line:
//  * metrics exposition (`name{key="value",...} number`, one sample per
//    line) -- CI runs it on the dump E12 --obs-check scrapes over the
//    stats_req frame, so a format drift between the renderer and
//    external scrapers fails the build instead of a dashboard;
//  * flight-recorder dumps (lines starting `rec `, the *.recorder files
//    a checker failure emits; see src/obs/recorder.h).
// Reads the file named on the command line, or stdin with no argument.
// Exit 0 on a valid dump, 1 with a diagnostic on the first offending
// line.
#include <cstdio>
#include <string>

#include "obs/metrics.h"
#include "obs/timeline.h"

int main(int argc, char** argv) {
  std::string text;
  if (argc > 1) {
    std::FILE* f = std::fopen(argv[1], "r");
    if (f == nullptr) {
      std::fprintf(stderr, "obs_check: cannot open %s\n", argv[1]);
      return 1;
    }
    char buf[64 * 1024];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
      text.append(buf, n);
    }
    std::fclose(f);
  } else {
    char buf[64 * 1024];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, stdin)) > 0) {
      text.append(buf, n);
    }
  }
  if (text.empty()) {
    std::fprintf(stderr, "obs_check: empty dump\n");
    return 1;
  }
  // Flavor detection: the first line that is not blank or a '#' comment
  // starts with `rec ` in a recorder dump and never does in a metrics
  // exposition (metric names cannot contain a space).
  bool recorder_dump = false;
  for (std::size_t pos = 0; pos < text.size();) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    recorder_dump = line.rfind("rec ", 0) == 0;
    break;
  }
  const auto err = recorder_dump
                       ? fastreg::obs::validate_recorder_dump(text)
                       : fastreg::obs::validate_dump(text);
  if (!err.empty()) {
    std::fprintf(stderr, "obs_check: %s\n", err.c_str());
    return 1;
  }
  std::size_t lines = 0;
  for (const char ch : text) {
    if (ch == '\n') ++lines;
  }
  std::printf("obs_check: %zu lines ok\n", lines);
  return 0;
}
