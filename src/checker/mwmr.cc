// check_mwmr_linearizable: polynomial register linearizability.
//
// The key observation (Gibbons & Korach, "Testing Shared Memories"):
// verifying linearizability of a register history is NP-hard in general,
// but with UNIQUE written values every read names its dictating write, and
// the problem collapses to ordering per-value clusters.
//
// Cluster C_v = { write(v) } u { completed reads returning v }; the
// initial value bottom gets a virtual write completed before time began.
// A linearization orders the writes and places each cluster's reads
// between its write and the next write, so H is linearizable iff
//
//   (V) every completed read is VALID: its value was written, and the
//       dictating write was invoked no later than the read responded
//       (a read cannot return a value from its future); and
//   (A) the precedence relation  u -> v  iff  some op of C_u responds
//       before some op of C_v is invoked  is ACYCLIC over clusters.
//
// (V) + (A) => linearizable: take any topological order of the clusters;
// placing each cluster's reads right after its write (sorted by invoke
// time) satisfies every real-time constraint, because a violated
// constraint between clusters would be a relation edge contradicting the
// topological order, and within a cluster (V) plus the sort handle it.
// Linearizable => (V) + (A) is immediate: a linearization is a witness
// order.
//
// Acyclicity reduces to a PAIRWISE test: with a(u) = min response over
// C_u and b(u) = max invocation over C_u, the relation is "u -> v iff
// a(u) < b(v)". Any directed cycle contains a 2-cycle: let u* be the
// cycle node with minimum a; for every other cycle node w with
// predecessor w' on the cycle, a(u*) <= a(w') < b(w) gives the edge
// u* -> w, so u* -> pred(u*) closes a 2-cycle with pred(u*) -> u*.
// Hence H is non-linearizable iff some PAIR u != v has
// a(u) < b(v) && a(v) < b(u), found by sorting clusters by a and
// sweeping with prefix maxima of b -- O(n log n) overall.
//
// Incomplete operations: an incomplete read never has to take effect and
// is ignored. An incomplete write whose value no completed read returned
// can always be dropped from a linearization (nothing between it and the
// next write observes it), so it is ignored too; one that WAS read must
// take effect and joins its cluster with response = +infinity. This is
// exactly the semantics of the exponential oracle (check_linearizable),
// which test_checker_differential.cc holds the two to.
#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "checker/atomicity.h"

namespace fastreg::checker {
namespace {

check_result fail(std::string msg) { return {false, std::move(msg)}; }

/// Time extended with -infinity (the virtual initial write's response)
/// and +infinity (an incomplete op's response). Lexicographic compare.
struct ext_time {
  int cls{0};  // -1: -inf, 0: finite, +1: +inf
  std::uint64_t t{0};

  friend auto operator<=>(const ext_time&, const ext_time&) = default;
};

constexpr ext_time k_neg_inf{-1, 0};
constexpr ext_time k_pos_inf{+1, 0};

ext_time response_of(const op_record& op) {
  return op.response_time ? ext_time{0, *op.response_time} : k_pos_inf;
}

std::string op_desc(const op_record* op) {
  if (op == nullptr) return "the initial state";
  std::string s = op->is_write ? "write" : "read";
  s += " of \"" + op->val + "\" by " + to_string(op->client);
  return s;
}

/// One per-value cluster: the dictating write (null for bottom) plus
/// every completed read returning the value, reduced to the two numbers
/// the pairwise cycle test needs -- with witness ops for error messages.
struct cluster {
  value_t val{};
  /// min response over member ops (-inf for the bottom cluster's
  /// virtual write), and the op achieving it.
  ext_time a{k_pos_inf};
  const op_record* a_op{nullptr};
  /// max invocation over member ops (-inf when the cluster is only the
  /// virtual bottom write), and the op achieving it.
  ext_time b{k_neg_inf};
  const op_record* b_op{nullptr};
  bool write_included{false};

  void add(const op_record* op) {
    const ext_time resp = op == nullptr ? k_neg_inf : response_of(*op);
    const ext_time inv =
        op == nullptr ? k_neg_inf : ext_time{0, op->invoke_time};
    if (resp < a) {
      a = resp;
      a_op = op;
    }
    if (inv > b || b_op == nullptr) {
      b = inv;
      b_op = op;
    }
  }
};

}  // namespace

check_result check_mwmr_linearizable(const history& h) {
  // ---- index the writes; enforce the input assumptions ----------------
  std::map<value_t, const op_record*> write_of;
  for (const auto& op : h.ops()) {
    if (!op.is_write) continue;
    if (op.val == k_bottom_value) {
      return fail("MWMR checker: a write of the bottom (empty) value is "
                  "indistinguishable from the initial state; written "
                  "values must be non-empty");
    }
    const auto [it, inserted] = write_of.emplace(op.val, &op);
    if (!inserted) {
      return fail("MWMR checker requires unique written values: \"" +
                  op.val + "\" written by both " +
                  to_string(it->second->client) + " and " +
                  to_string(op.client));
    }
  }

  // ---- build clusters --------------------------------------------------
  // clusters_by_val maps a value to its cluster slot, created lazily for
  // the bottom cluster and for every write that must take effect.
  std::vector<cluster> clusters;
  std::map<value_t, std::size_t> slot_of;
  auto slot_for = [&](const value_t& v,
                      const op_record* write) -> cluster& {
    const auto [it, inserted] = slot_of.emplace(v, clusters.size());
    if (inserted) {
      clusters.push_back({});
      clusters.back().val = v;
    }
    auto& c = clusters[it->second];
    if (write != nullptr || v == k_bottom_value) {
      if (!c.write_included) {
        c.write_included = true;
        c.add(write);  // nullptr == the virtual bottom write
      }
    }
    return c;
  };

  // The bottom cluster always exists: its virtual write responds at
  // -infinity, which puts it (correctly) before every other cluster.
  slot_for(k_bottom_value, nullptr);
  // Complete writes must take effect even if nobody read them.
  for (const auto& op : h.ops()) {
    if (op.is_write && op.response_time) slot_for(op.val, &op);
  }
  // Completed reads join their value's cluster; an incomplete write some
  // read observed is forced to take effect here.
  for (const auto& op : h.ops()) {
    if (op.is_write || !op.response_time) continue;
    const op_record* w = nullptr;
    if (op.val != k_bottom_value) {
      const auto it = write_of.find(op.val);
      if (it == write_of.end()) {
        return fail("read by " + to_string(op.client) +
                    " returned unwritten value \"" + op.val + "\"");
      }
      w = it->second;
      // Validity: the dictating write must not begin after the read
      // ended (reading from the future).
      if (*op.response_time < w->invoke_time) {
        return fail("read by " + to_string(op.client) + " returned \"" +
                    op.val + "\" before its write (by " +
                    to_string(w->client) + ") was invoked");
      }
    }
    slot_for(op.val, w).add(&op);
  }

  // ---- pairwise cycle sweep -------------------------------------------
  // Order clusters by a ascending; for each v, every u in the strict
  // prefix { a(u) < b(v) } has an edge u -> v, so a 2-cycle exists iff
  // the prefix (minus v itself) contains some u with b(u) > a(v). Track
  // the top two prefix maxima of b so excluding v costs nothing.
  std::vector<std::size_t> order(clusters.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return clusters[x].a < clusters[y].a;
  });
  struct prefix_max {
    ext_time best{k_neg_inf};
    std::size_t best_idx{static_cast<std::size_t>(-1)};
    ext_time second{k_neg_inf};
    std::size_t second_idx{static_cast<std::size_t>(-1)};
  };
  std::vector<prefix_max> pref(order.size() + 1);
  for (std::size_t i = 0; i < order.size(); ++i) {
    prefix_max p = pref[i];
    const auto& c = clusters[order[i]];
    if (c.b > p.best) {
      p.second = p.best;
      p.second_idx = p.best_idx;
      p.best = c.b;
      p.best_idx = order[i];
    } else if (c.b > p.second) {
      p.second = c.b;
      p.second_idx = order[i];
    }
    pref[i + 1] = p;
  }
  std::vector<ext_time> sorted_a(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    sorted_a[i] = clusters[order[i]].a;
  }
  for (std::size_t vi = 0; vi < clusters.size(); ++vi) {
    const auto& v = clusters[vi];
    // Strict prefix with a(u) < b(v).
    const auto cnt = static_cast<std::size_t>(
        std::lower_bound(sorted_a.begin(), sorted_a.end(), v.b) -
        sorted_a.begin());
    if (cnt == 0) continue;
    const auto& p = pref[cnt];
    ext_time best = p.best;
    std::size_t best_idx = p.best_idx;
    if (best_idx == vi) {
      best = p.second;
      best_idx = p.second_idx;
    }
    if (best_idx == static_cast<std::size_t>(-1) || !(v.a < best)) {
      continue;
    }
    const auto& u = clusters[best_idx];
    return fail(
        "not linearizable: values \"" + u.val + "\" and \"" + v.val +
        "\" must each precede the other (" + op_desc(u.a_op) +
        " responded before " + op_desc(v.b_op) + " was invoked, and " +
        op_desc(v.a_op) + " responded before " + op_desc(u.b_op) +
        " was invoked)");
  }
  return {};
}

}  // namespace fastreg::checker
