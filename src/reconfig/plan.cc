#include "reconfig/plan.h"

#include "common/check.h"
#include "registers/registry.h"

namespace fastreg::reconfig {

std::string reconfig_plan::describe() const {
  std::string out = "shards=" + std::to_string(num_shards) + " protos=";
  for (std::size_t i = 0; i < shard_protocols.size(); ++i) {
    if (i != 0) out += "+";
    out += shard_protocols[i];
  }
  return out;
}

std::string validate_plan(const store::shard_map& cur,
                          const reconfig_plan& plan) {
  if (plan.num_shards < 1) return "plan needs at least one shard";
  if (plan.shard_protocols.empty()) {
    return "plan needs at least one shard protocol";
  }
  const auto& base = cur.config().base;
  bool any_bft = false;
  for (const auto& name : plan.shard_protocols) {
    const auto proto = make_protocol(name);
    if (proto == nullptr) return "unknown protocol \"" + name + "\"";
    if (base.W() > 1 && !proto->multi_writer()) {
      return "protocol \"" + name + "\" is single-writer but W = " +
             std::to_string(base.W());
    }
    if (!proto->feasible(base)) {
      return "protocol \"" + name + "\" is infeasible under " +
             base.describe();
    }
    any_bft = any_bft || name == "fast_bft";
  }
  const bool same_layout =
      plan.num_shards == cur.num_shards() &&
      plan.shard_protocols == cur.config().shard_protocols;
  if (any_bft && !same_layout) {
    // A switch into fast_bft would seed unsigned state into a protocol
    // whose servers only serve signed timestamps. Allow fast_bft in the
    // new map only where the object already ran fast_bft, which with
    // round-robin assignment means: identical shard layout.
    for (const auto& name : cur.config().shard_protocols) {
      if (name != "fast_bft") {
        return "cannot switch objects into fast_bft from unsigned "
               "protocol \"" +
               name + "\" (migrated state would carry no signature)";
      }
    }
  }
  if (base.b() > 0 && !same_layout) {
    // Under Byzantine faults the migration state read only trusts
    // answers carrying a valid writer signature; state coming from an
    // unsigned protocol would be rejected wholesale and the key seeded
    // with bottom. (fast_bft objects never move -- same protocol name on
    // both sides -- so any cross-protocol move is an unsigned source.)
    for (const auto* protos :
         {&cur.config().shard_protocols, &plan.shard_protocols}) {
      for (const auto& name : *protos) {
        if (name != "fast_bft") {
          return "with b > 0, migrated state must carry writer "
                 "signatures: reshards may not move objects governed by "
                 "unsigned protocol \"" +
                 name + "\"";
        }
      }
    }
  }
  return {};
}

std::shared_ptr<const store::shard_map> build_next_map(
    const store::shard_map& cur, const reconfig_plan& plan) {
  FASTREG_EXPECTS(validate_plan(cur, plan).empty());
  store::store_config cfg;
  cfg.base = cur.config().base;
  cfg.num_shards = plan.num_shards;
  cfg.shard_protocols = plan.shard_protocols;
  // Durability rides across epochs: a reshard must not silently turn a
  // persistent fleet volatile (a server reconstructed under the new map
  // replays and fences against it -- see store::server's recovery path).
  cfg.persist = cur.config().persist;
  return std::make_shared<const store::shard_map>(std::move(cfg),
                                                  cur.epoch() + 1);
}

}  // namespace fastreg::reconfig
