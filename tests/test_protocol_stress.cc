// Property-based stress: every protocol, driven by randomized concurrent
// workloads under aggressive message reordering (and, in some suites,
// crashes), must produce histories that satisfy its correctness contract
// and its round-trip bound. Parameterized over (config, seed).
#include <gtest/gtest.h>

#include <tuple>

#include "checker/atomicity.h"
#include "registers/registry.h"
#include "sim/world.h"
#include "sim_test_util.h"

namespace fastreg {
namespace {

using test::make_cfg;
using test::run_random_workload;
using test::run_random_workload_mw;

struct stress_case {
  std::uint32_t S, t, R;
  std::uint32_t b{0};
};

// ----------------------------------------------------- fast SWMR (atomic)

class FastSwmrStress
    : public ::testing::TestWithParam<std::tuple<stress_case, std::uint64_t>> {
};

TEST_P(FastSwmrStress, RandomScheduleIsAtomicAndFast) {
  const auto [c, seed] = GetParam();
  ASSERT_TRUE(fast_swmr_feasible(c.S, c.t, c.R));
  const auto cfg = make_cfg(c.S, c.t, c.R);
  sim::world w(cfg);
  w.install(*make_protocol("fast_swmr"));
  rng r(seed);
  run_random_workload(w, r, /*num_writes=*/8, /*reads_per_reader=*/8);
  const auto res = checker::check_swmr_atomicity(w.hist());
  EXPECT_TRUE(res.ok) << res.error << "\n" << w.hist().dump();
  EXPECT_TRUE(checker::check_fastness(w.hist(), 1, 1).ok);
}

TEST_P(FastSwmrStress, SurvivesCrashesOfTServers) {
  const auto [c, seed] = GetParam();
  const auto cfg = make_cfg(c.S, c.t, c.R);
  sim::world w(cfg);
  w.install(*make_protocol("fast_swmr"));
  rng r(seed ^ 0xfeed);
  // Crash t random distinct servers up front (the harshest allowed case).
  std::vector<std::uint32_t> order(c.S);
  for (std::uint32_t i = 0; i < c.S; ++i) order[i] = i;
  std::shuffle(order.begin(), order.end(), r);
  for (std::uint32_t i = 0; i < c.t; ++i) w.crash(server_id(order[i]));

  run_random_workload(w, r, 6, 6);
  // Wait-freedom: every invoked op completed despite the crashes.
  for (const auto& op : w.hist().ops()) {
    EXPECT_TRUE(op.response_time.has_value());
  }
  const auto res = checker::check_swmr_atomicity(w.hist());
  EXPECT_TRUE(res.ok) << res.error << "\n" << w.hist().dump();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FastSwmrStress,
    ::testing::Combine(::testing::Values(stress_case{4, 1, 1},
                                         stress_case{8, 1, 2},
                                         stress_case{9, 2, 2},
                                         stress_case{13, 2, 4},
                                         stress_case{16, 3, 3},
                                         stress_case{25, 4, 4}),
                       ::testing::Range<std::uint64_t>(1, 9)));

// ------------------------------------------------------------ ABD / maxmin

class TwoRoundBaselineStress
    : public ::testing::TestWithParam<
          std::tuple<std::string, stress_case, std::uint64_t>> {};

TEST_P(TwoRoundBaselineStress, RandomScheduleIsAtomic) {
  const auto [name, c, seed] = GetParam();
  ASSERT_TRUE(majority_feasible(c.S, c.t));
  const auto cfg = make_cfg(c.S, c.t, c.R);
  sim::world w(cfg);
  w.install(*make_protocol(name));
  rng r(seed);
  run_random_workload(w, r, 6, 6);
  const auto res = checker::check_swmr_atomicity(w.hist());
  EXPECT_TRUE(res.ok) << name << ": " << res.error << "\n" << w.hist().dump();
  // ABD reads take 2 round-trips; writes 1. maxmin is 1 client round-trip.
  const int read_rounds = name == "abd" ? 2 : 1;
  EXPECT_TRUE(checker::check_fastness(w.hist(), read_rounds, 1).ok);
}

TEST_P(TwoRoundBaselineStress, SurvivesCrashes) {
  const auto [name, c, seed] = GetParam();
  const auto cfg = make_cfg(c.S, c.t, c.R);
  sim::world w(cfg);
  w.install(*make_protocol(name));
  rng r(seed ^ 0xabcd);
  for (std::uint32_t i = 0; i < c.t; ++i) w.crash(server_id(i));
  run_random_workload(w, r, 5, 5);
  for (const auto& op : w.hist().ops()) {
    EXPECT_TRUE(op.response_time.has_value());
  }
  const auto res = checker::check_swmr_atomicity(w.hist());
  EXPECT_TRUE(res.ok) << name << ": " << res.error;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TwoRoundBaselineStress,
    ::testing::Combine(::testing::Values("abd", "maxmin"),
                       ::testing::Values(stress_case{3, 1, 2},
                                         stress_case{5, 2, 3},
                                         stress_case{7, 3, 2},
                                         stress_case{9, 4, 4}),
                       ::testing::Range<std::uint64_t>(1, 6)));

// ----------------------------------------------------------- single reader

class SingleReaderStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SingleReaderStress, AtomicAndFastWithMajority) {
  // R = 1 and t < S/2: beyond the R >= 2 bound's reach, still fast.
  const auto cfg = make_cfg(5, 2, 1);
  ASSERT_TRUE(fast_single_reader_feasible(5, 2));
  ASSERT_FALSE(fast_swmr_feasible(5, 2, 1));  // Figure 2 could NOT do this
  sim::world w(cfg);
  w.install(*make_protocol("single_reader"));
  rng r(GetParam());
  run_random_workload(w, r, 10, 10);
  const auto res = checker::check_swmr_atomicity(w.hist());
  EXPECT_TRUE(res.ok) << res.error << "\n" << w.hist().dump();
  EXPECT_TRUE(checker::check_fastness(w.hist(), 1, 1).ok);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SingleReaderStress,
                         ::testing::Range<std::uint64_t>(1, 13));

// ---------------------------------------------------------------- regular

class RegularStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RegularStress, RegularSemanticsHoldWithManyReaders) {
  // Far more readers than any fast atomic register could support.
  const auto cfg = make_cfg(5, 2, 6);
  ASSERT_FALSE(fast_swmr_feasible(5, 2, 6));
  sim::world w(cfg);
  w.install(*make_protocol("regular"));
  rng r(GetParam());
  run_random_workload(w, r, 8, 4);
  // Conditions 1-3 hold; condition 4 (no new/old inversion) may not.
  const auto res = checker::check_swmr_regular(w.hist());
  EXPECT_TRUE(res.ok) << res.error << "\n" << w.hist().dump();
  EXPECT_TRUE(checker::check_fastness(w.hist(), 1, 1).ok);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegularStress,
                         ::testing::Range<std::uint64_t>(1, 13));

// ------------------------------------------------------------------- MWMR

class MwmrStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MwmrStress, TwoPhaseProtocolIsLinearizable) {
  auto cfg = make_cfg(5, 2, 2, 0, /*W=*/2);
  sim::world w(cfg);
  w.install(*make_protocol("mwmr"));
  rng r(GetParam());
  run_random_workload_mw(w, r, /*writes_per_writer=*/3,
                         /*reads_per_reader=*/3);
  // Small enough for the exponential oracle: the polynomial checker and
  // the oracle must agree on every protocol-produced history too.
  const auto res = checker::check_mwmr_linearizable(w.hist());
  EXPECT_TRUE(res.ok) << res.error << "\n" << w.hist().dump();
  EXPECT_TRUE(checker::check_linearizable(w.hist()).ok);
  // Both ops are two-round: NOT fast, as Proposition 11 demands.
  EXPECT_TRUE(checker::check_fastness(w.hist(), 2, 2).ok);
}

TEST_P(MwmrStress, LinearizableAtScaleBeyondTheOracle) {
  // ~240 ops per history: 4x past the exponential checker's 63-op cap,
  // trivial for the polynomial one. This is the scale where reordering
  // schedules start hitting interleavings the tiny histories never saw.
  auto cfg = make_cfg(5, 2, 3, 0, /*W=*/3);
  sim::world w(cfg);
  w.install(*make_protocol("mwmr"));
  rng r(GetParam() ^ 0x5ca1e);
  run_random_workload_mw(w, r, /*writes_per_writer=*/40,
                         /*reads_per_reader=*/40);
  const auto res = checker::check_mwmr_linearizable(w.hist());
  EXPECT_TRUE(res.ok) << res.error << "\n" << w.hist().dump();
  EXPECT_TRUE(checker::check_fastness(w.hist(), 2, 2).ok);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MwmrStress,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace fastreg
