// control_plane adapters binding the reconfiguration coordinator to the
// two concrete deployments: the deterministic simulator (sim_store) and
// the socket cluster (tcp_store).
//
// Simulator: control actions run between world steps on the driving
// thread; client steps go through world::invoke_step so their sends land
// in the world's in-transit set like any other step.
//
// TCP: control actions are posted to each node's reactor thread
// (run_on_reactor / run_on_reactor_net), so they serialize with live
// traffic exactly like delivered frames. The coordinator may therefore
// run on its own thread next to concurrently operating client threads.
#pragma once

#include "reconfig/coordinator.h"
#include "store/sim_store.h"
#include "store/tcp_store.h"

namespace fastreg::reconfig {

class sim_control final : public control_plane {
 public:
  explicit sim_control(store::sim_store& s) : s_(s) {}

  bool with_server(std::uint32_t index,
                   const std::function<void(store::server&)>& fn) override {
    if (s_.world().crashed(server_id(index))) return false;
    fn(s_.server_at(index));
    return true;
  }

  void publish(std::shared_ptr<const store::shard_map> next) override {
    s_.proto().maps()->install(std::move(next));
  }

  void with_migrator(
      const std::function<void(store::client&, netout&)>& fn) override {
    s_.world().invoke_step(reader_id(0), [&](netout& net) {
      fn(s_.reader_client(0), net);
    });
  }

  bool migrator_done() override { return s_.reader_client(0).mig_done(); }

  register_snapshot migrator_snapshot() override {
    return s_.reader_client(0).mig_snapshot();
  }

  void for_each_client(
      const std::function<void(store::client&, netout&)>& fn) override {
    const auto& base = s_.config().base;
    for (std::uint32_t j = 0; j < base.W(); ++j) {
      s_.world().invoke_step(writer_id(j), [&](netout& net) {
        fn(s_.writer_client(j), net);
      });
    }
    for (std::uint32_t i = 0; i < base.R(); ++i) {
      s_.world().invoke_step(reader_id(i), [&](netout& net) {
        fn(s_.reader_client(i), net);
      });
    }
  }

 private:
  store::sim_store& s_;
};

class tcp_control final : public control_plane {
 public:
  explicit tcp_control(store::tcp_store& s) : s_(s) {}

  bool with_server(std::uint32_t index,
                   const std::function<void(store::server&)>& fn) override {
    // A stopped node models a crashed server; control actions skip it.
    // try_run_on_reactor is atomic against a concurrent stop() -- plain
    // run_on_reactor would fall back to running inline, un-crashing the
    // automaton's state behind the deployment's back.
    return s_.cluster().server(index).try_run_on_reactor(
        [&](automaton& a) { fn(dynamic_cast<store::server&>(a)); });
  }

  void publish(std::shared_ptr<const store::shard_map> next) override {
    s_.proto().maps()->install(std::move(next));
  }

  void with_migrator(
      const std::function<void(store::client&, netout&)>& fn) override {
    // The migrator is reader 0, addressed through client_node /
    // client_actor so per-node and hub client topologies both work.
    auto& c = s_.cluster();
    c.client_node(reader_id(0))
        .run_on_reactor_net(c.client_actor(reader_id(0)),
                            [&](automaton& a, netout& net) {
                              fn(dynamic_cast<store::client&>(a), net);
                            });
  }

  bool migrator_done() override {
    bool done = false;
    // Marshal the peek through the reactor: the migration op's state is
    // mutated by live traffic on that thread.
    auto& c = s_.cluster();
    c.client_node(reader_id(0))
        .run_on_reactor(c.client_actor(reader_id(0)), [&](automaton& a) {
          done = dynamic_cast<store::client&>(a).mig_done();
        });
    return done;
  }

  register_snapshot migrator_snapshot() override {
    register_snapshot snap;
    auto& c = s_.cluster();
    c.client_node(reader_id(0))
        .run_on_reactor(c.client_actor(reader_id(0)), [&](automaton& a) {
          snap = dynamic_cast<store::client&>(a).mig_snapshot();
        });
    return snap;
  }

  void for_each_client(
      const std::function<void(store::client&, netout&)>& fn) override {
    const auto& base = s_.config().base;
    auto& c = s_.cluster();
    const auto step = [&](const process_id& pid) {
      c.client_node(pid).run_on_reactor_net(
          c.client_actor(pid), [&](automaton& a, netout& net) {
            fn(dynamic_cast<store::client&>(a), net);
          });
    };
    for (std::uint32_t j = 0; j < base.W(); ++j) step(writer_id(j));
    for (std::uint32_t i = 0; i < base.R(); ++i) step(reader_id(i));
  }

 private:
  store::tcp_store& s_;
};

}  // namespace fastreg::reconfig
