// Shared helpers for simulator-based protocol tests: config builders and a
// randomized concurrent workload driver whose histories feed the checkers.
#pragma once

#include <string>

#include "common/check.h"
#include "common/rng.h"
#include "crypto/sig.h"
#include "registers/automaton.h"
#include "sim/world.h"

namespace fastreg::test {

inline system_config make_cfg(std::uint32_t S, std::uint32_t t,
                              std::uint32_t R, std::uint32_t b = 0,
                              std::uint32_t W = 1,
                              const std::string& sig_scheme = "") {
  system_config cfg;
  cfg.servers = S;
  cfg.t_failures = t;
  cfg.b_malicious = b;
  cfg.readers = R;
  cfg.writers = W;
  if (!sig_scheme.empty()) {
    cfg.sigs = crypto::make_signature_scheme(sig_scheme, /*seed=*/1234);
  }
  return cfg;
}

/// Drives a random concurrent workload: the writer issues `num_writes`
/// writes with unique values v1, v2, ...; every reader issues
/// `reads_per_reader` reads; message deliveries, and invocation timing are
/// all randomized from `r`. Runs until every invoked op completed or no
/// further progress is possible (e.g. due to injected crashes).
inline void run_random_workload(sim::world& w, rng& r,
                                std::uint32_t num_writes,
                                std::uint32_t reads_per_reader) {
  const auto& cfg = w.config();
  std::uint32_t writes_invoked = 0;
  std::vector<std::uint32_t> reads_invoked(cfg.R(), 0);
  std::uint64_t guard = 0;

  for (;;) {
    FASTREG_CHECK(++guard < 50'000'000);
    const bool can_write = writes_invoked < num_writes &&
                           !w.crashed(writer_id(0)) &&
                           !w.writer(0)->write_in_progress();
    bool can_read = false;
    for (std::uint32_t i = 0; i < cfg.R(); ++i) {
      if (reads_invoked[i] < reads_per_reader &&
          !w.reader(i)->read_in_progress()) {
        can_read = true;
        break;
      }
    }
    const bool can_deliver = !w.in_transit().empty();
    if (!can_write && !can_read && !can_deliver) break;

    const std::uint64_t dice = r.below(8);
    if (dice == 0 && can_write) {
      ++writes_invoked;
      w.invoke_write("v" + std::to_string(writes_invoked));
      continue;
    }
    if (dice == 1 && can_read) {
      // Pick a random reader with remaining quota.
      for (std::uint32_t attempt = 0; attempt < cfg.R(); ++attempt) {
        const std::uint32_t i =
            static_cast<std::uint32_t>(r.below(cfg.R()));
        if (reads_invoked[i] < reads_per_reader &&
            !w.reader(i)->read_in_progress()) {
          ++reads_invoked[i];
          w.invoke_read(i);
          break;
        }
      }
      continue;
    }
    if (can_deliver) {
      const auto& ms = w.in_transit();
      w.deliver(ms[r.below(ms.size())].id);
    }
  }
}

/// Multi-writer version: writer j issues values "w<j>_<k>".
inline void run_random_workload_mw(sim::world& w, rng& r,
                                   std::uint32_t writes_per_writer,
                                   std::uint32_t reads_per_reader) {
  const auto& cfg = w.config();
  std::vector<std::uint32_t> writes_invoked(cfg.W(), 0);
  std::vector<std::uint32_t> reads_invoked(cfg.R(), 0);
  std::uint64_t guard = 0;

  for (;;) {
    FASTREG_CHECK(++guard < 50'000'000);
    bool can_write = false;
    for (std::uint32_t j = 0; j < cfg.W(); ++j) {
      if (writes_invoked[j] < writes_per_writer &&
          !w.writer(j)->write_in_progress()) {
        can_write = true;
        break;
      }
    }
    bool can_read = false;
    for (std::uint32_t i = 0; i < cfg.R(); ++i) {
      if (reads_invoked[i] < reads_per_reader &&
          !w.reader(i)->read_in_progress()) {
        can_read = true;
        break;
      }
    }
    const bool can_deliver = !w.in_transit().empty();
    if (!can_write && !can_read && !can_deliver) break;

    const std::uint64_t dice = r.below(8);
    if (dice == 0 && can_write) {
      for (std::uint32_t attempt = 0; attempt < cfg.W(); ++attempt) {
        const std::uint32_t j =
            static_cast<std::uint32_t>(r.below(cfg.W()));
        if (writes_invoked[j] < writes_per_writer &&
            !w.writer(j)->write_in_progress()) {
          ++writes_invoked[j];
          w.invoke_write(j, "w" + std::to_string(j + 1) + "_" +
                                std::to_string(writes_invoked[j]));
          break;
        }
      }
      continue;
    }
    if (dice == 1 && can_read) {
      for (std::uint32_t attempt = 0; attempt < cfg.R(); ++attempt) {
        const std::uint32_t i =
            static_cast<std::uint32_t>(r.below(cfg.R()));
        if (reads_invoked[i] < reads_per_reader &&
            !w.reader(i)->read_in_progress()) {
          ++reads_invoked[i];
          w.invoke_read(i);
          break;
        }
      }
      continue;
    }
    if (can_deliver) {
      const auto& ms = w.in_transit();
      w.deliver(ms[r.below(ms.size())].id);
    }
  }
}

}  // namespace fastreg::test
