// The store's client front-end: one process multiplexing per-object
// reader or writer automata behind a get(key)/put(key, v) surface.
//
// Roles mirror the paper's client split: a reader-role client (process_id
// role::reader) serves gets, a writer-role client serves puts. For
// single-writer shard protocols the writer-role client 0 is the sole
// writer of every object, which preserves each protocol's correctness
// argument unchanged.
//
// Pipelining: well-formedness (one outstanding op per client) applies per
// OBJECT, because each object is an independent register with its own
// automaton. A client may therefore keep one op in flight on each of many
// distinct keys; all requests started before one flush() leave as batched
// envelopes (see batching.h), which is where the store's transport win
// comes from.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "store/batching.h"
#include "store/shard_map.h"

namespace fastreg::store {

/// Result of one completed store operation, as observed by the client.
struct store_result {
  std::string key{};
  bool is_put{false};
  ts_t ts{k_initial_ts};
  std::int32_t wid{0};
  value_t val{};
  /// Communication round-trips the underlying register op used.
  int rounds{0};
};

class client final : public automaton, public async_client_iface {
 public:
  client(std::shared_ptr<const shard_map> shards, process_id self);
  client(const client& o);
  client& operator=(const client&) = delete;

  // ------------------------------------------------------------ front-end --
  // Call within an invocation step (world::invoke_step / node::blocking_op):
  // begin one or more ops on DISTINCT keys, then flush() exactly once.

  /// Starts a read of `key` (reader-role clients only). Precondition: no
  /// op pending on this key.
  void begin_get(const std::string& key);
  /// Starts a write of `key` (writer-role clients only). Precondition: no
  /// op pending on this key.
  void begin_put(const std::string& key, value_t v);
  /// Sends everything the begun ops produced, coalesced per destination.
  void flush(netout& net);

  /// Completed ops since the last call, in completion order.
  [[nodiscard]] std::vector<store_result> take_completions();
  [[nodiscard]] std::size_t pending_count() const { return pending_.size(); }
  /// True while an op on `key` is in flight (e.g. orphaned by a driver
  /// timeout); begin_get/begin_put on such a key would violate their
  /// precondition.
  [[nodiscard]] bool has_pending(const std::string& key) const {
    return pending_.contains(key_object_id(key));
  }

  // async_client_iface
  [[nodiscard]] bool op_in_progress() const override {
    return !pending_.empty();
  }
  [[nodiscard]] std::uint64_t ops_completed() const override {
    return completed_;
  }

  // automaton
  void on_message(netout& net, const process_id& from,
                  const message& m) override;
  void on_batch(netout& net, const process_id& from,
                std::span<const message> msgs) override;
  [[nodiscard]] std::unique_ptr<automaton> clone() const override;
  [[nodiscard]] process_id self() const override { return self_; }

  /// Distinct objects this client has touched (diagnostic).
  [[nodiscard]] std::size_t objects_hosted() const { return objects_.size(); }

 private:
  automaton& inner_for(object_id obj);
  void poll_object(object_id obj);

  std::shared_ptr<const shard_map> shards_;
  process_id self_;
  std::unordered_map<object_id, std::unique_ptr<automaton>> objects_;

  struct pending_op {
    std::string key{};
    bool is_put{false};
    /// Inner completion counter snapshot at invocation.
    std::uint64_t before{0};
  };
  std::unordered_map<object_id, pending_op> pending_;
  batch_collector outbox_;
  std::vector<store_result> completions_;
  std::uint64_t completed_{0};
};

[[nodiscard]] inline client* as_store_client(automaton* a) {
  return dynamic_cast<client*>(a);
}

}  // namespace fastreg::store
