// Store quickstart: many named registers over one server fleet.
//
//  1. Configure a sharded store: 4 shards, hot shards on the fast
//     one-round protocol, the rest on ABD.
//  2. put()/get() by key on the deterministic simulator; keys route to
//     shards by hash, each shard runs its own protocol.
//  3. Pipeline a batch of gets: requests and replies share envelopes
//     (the store's batched transport).
//  4. Demultiplex per-key histories and verify each object's atomicity.
//
// Build & run:  ./build/store_quickstart
#include <cstdio>

#include "store/sim_store.h"

using namespace fastreg;

int main() {
  // --- 1. Configuration: one fleet, many objects, per-shard protocols.
  store::store_config cfg;
  cfg.base.servers = 7;
  cfg.base.t_failures = 1;
  cfg.base.readers = 2;  // fast_swmr needs R < S/t - 2 = 5
  cfg.num_shards = 4;
  cfg.shard_protocols = {"fast_swmr", "abd"};  // shards 0,2 fast; 1,3 abd
  std::printf("store: %s\n\n", cfg.describe().c_str());

  store::sim_store s(cfg);
  rng schedule(/*seed=*/2026);
  sim::uniform_delay delays(50, 150);

  // --- 2. Keyed writes and reads.
  for (const char* key : {"user:alice", "user:bob", "cfg:limit"}) {
    s.invoke_put(0, key, std::string("value-of-") + key);
    s.run_timed(schedule, delays);
  }
  for (const char* key : {"user:alice", "cfg:limit"}) {
    s.invoke_get(0, key);
    s.run_timed(schedule, delays);
    const auto reads = s.histories().all().at(key).completed_reads();
    std::printf("get(%s) -> \"%s\"  (shard %u, %s, %d round-trip%s)\n", key,
                reads.back().val.c_str(), s.shards()->shard_of_key(key),
                s.shards()->protocol_for_object(store::key_object_id(key))
                    .name()
                    .c_str(),
                reads.back().rounds, reads.back().rounds == 1 ? "" : "s");
  }

  // --- 3. A pipelined batch: 8 gets leave in ONE envelope per server.
  const auto env_before = s.world().envelopes_sent();
  const auto msg_before = s.world().messages_sent();
  std::vector<store::store_op> gets;
  for (int i = 0; i < 8; ++i) {
    gets.push_back({"item" + std::to_string(i), /*is_put=*/false, {}});
  }
  s.invoke_ops(reader_id(1), gets);
  s.run_timed(schedule, delays);
  std::printf("\nbatched 8 gets: %llu envelopes carried %llu messages\n",
              static_cast<unsigned long long>(s.world().envelopes_sent() -
                                              env_before),
              static_cast<unsigned long long>(s.world().messages_sent() -
                                              msg_before));

  // --- 4. Per-key verification.
  const auto res = s.histories().verify();
  std::printf("\n%zu keys, %zu ops, per-key atomicity: %s\n",
              s.histories().key_count(), s.histories().total_ops(),
              res.ok ? "OK" : res.error.c_str());
  return res.ok ? 0 : 1;
}
