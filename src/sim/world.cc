#include "sim/world.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "common/log.h"
#include "obs/recorder.h"
#include "obs/trace.h"

namespace fastreg::sim {

world::world(system_config cfg) : cfg_(std::move(cfg)) {}

void world::install(const protocol& proto) {
  procs_.clear();
  procs_.reserve(cfg_.W() + cfg_.R() + cfg_.S());
  for (std::uint32_t i = 0; i < cfg_.W(); ++i) {
    procs_.push_back(proto.make_writer(cfg_, i));
  }
  for (std::uint32_t i = 0; i < cfg_.R(); ++i) {
    procs_.push_back(proto.make_reader(cfg_, i));
  }
  for (std::uint32_t i = 0; i < cfg_.S(); ++i) {
    procs_.push_back(proto.make_server(cfg_, i));
  }
}

std::size_t world::index_of(const process_id& p) const {
  switch (p.r) {
    case role::writer:
      FASTREG_EXPECTS(p.index < cfg_.W());
      return p.index;
    case role::reader:
      FASTREG_EXPECTS(p.index < cfg_.R());
      return cfg_.W() + p.index;
    case role::server:
      FASTREG_EXPECTS(p.index < cfg_.S());
      return cfg_.W() + cfg_.R() + p.index;
  }
  FASTREG_CHECK(false);
  return 0;
}

void world::replace_automaton(const process_id& p,
                              std::unique_ptr<automaton> a) {
  procs_[index_of(p)] = std::move(a);
}

automaton* world::get(const process_id& p) {
  return procs_[index_of(p)].get();
}

reader_iface* world::reader(std::uint32_t i) {
  auto* r = as_reader(get(reader_id(i)));
  FASTREG_ENSURES(r != nullptr);
  return r;
}

writer_iface* world::writer(std::uint32_t i) {
  auto* w = as_writer(get(writer_id(i)));
  FASTREG_ENSURES(w != nullptr);
  return w;
}

// --------------------------------------------------------------- sending --

obs::recorder& world::rec_for(const process_id& p) {
  auto it = rec_cache_.find(p);
  if (it == rec_cache_.end()) {
    it = rec_cache_.emplace(p, &obs::recorder_for(p)).first;
  }
  return *it->second;
}

namespace {

// Register automata predate trace ids and never stamp their messages;
// the step's ambient trace context (set by the invocation / delivery
// that triggered this send) fills the gap. Store messages arrive here
// already stamped and keep their id.
void stamp_if_untraced(message& m) {
  if (m.trace != 0) return;
  const auto ctx = obs::current_trace_ctx();
  m.trace = ctx.trace;
  m.span = ctx.span;
}

}  // namespace

void world::send(const process_id& to, message m) {
  stamp_if_untraced(m);
  outbox_.push_back({to, std::move(m), {}});
}

void world::send_batch(const process_id& to, std::vector<message> msgs) {
  FASTREG_EXPECTS(!msgs.empty());
  for (auto& m : msgs) stamp_if_untraced(m);
  outbox_entry e;
  e.to = to;
  e.first = std::move(msgs.front());
  e.tail.assign(std::make_move_iterator(msgs.begin() + 1),
                std::make_move_iterator(msgs.end()));
  outbox_.push_back(std::move(e));
}

void world::flush_sends(const process_id& from) {
  std::size_t keep = outbox_.size();
  if (auto it = armed_partial_crash_.find(from);
      it != armed_partial_crash_.end() && !outbox_.empty()) {
    keep = std::min(keep, it->second);
    armed_partial_crash_.erase(it);
    crashed_.insert(from);
  }
  const bool rec = obs::recording_active();
  for (std::size_t i = 0; i < keep; ++i) {
    envelope env;
    env.id = next_envelope_id_++;
    env.from = from;
    env.to = outbox_[i].to;
    env.msg = std::move(outbox_[i].first);
    env.tail = std::move(outbox_[i].tail);
    env.sent_at = now_;
    env.due_at = 0;
    sent_count_ += env.message_count();
    ++envelopes_sent_;
    if (rec) {
      auto& r = rec_for(from);
      r.record(obs::rec_event::send, env.msg.trace, env.msg.span,
               static_cast<std::uint8_t>(env.msg.type), env.to, env.msg.obj,
               env.msg.epoch, env.msg.ts);
      for (const auto& m : env.tail) {
        r.record(obs::rec_event::send, m.trace, m.span,
                 static_cast<std::uint8_t>(m.type), env.to, m.obj, m.epoch,
                 m.ts);
      }
    }
    mset_.push_back(std::move(env));
  }
  outbox_.clear();
}

// ----------------------------------------------------------- invocations --

void world::invoke_write(std::uint32_t writer_index, value_t v) {
  const process_id wid = writer_id(writer_index);
  FASTREG_EXPECTS(!crashed_.contains(wid));
  auto* w = writer(writer_index);
  FASTREG_EXPECTS(!w->write_in_progress());
  ++now_;
  auto& st = clients_[wid];
  st.pending = true;
  st.completed_before = w->writes_completed();
  st.op_index = history_.begin_op(wid, /*is_write=*/true, now_, v);
  // The tracer (obs) stamps this step with the simulated clock, so sim
  // traces agree with the history this run records; log lines carry the
  // stepped automaton's id. A fresh trace id covers every message this
  // register op causes (the automata themselves are trace-oblivious).
  obs::scoped_trace_time trace_time(now_);
  obs::scoped_trace_ctx trace_ctx(obs::next_trace_id(), 0);
  scoped_log_node log_node(to_string(wid));
  w->invoke_write(*this, std::move(v));
  flush_sends(wid);
}

void world::invoke_read(std::uint32_t reader_index) {
  const process_id rid = reader_id(reader_index);
  FASTREG_EXPECTS(!crashed_.contains(rid));
  auto* r = reader(reader_index);
  FASTREG_EXPECTS(!r->read_in_progress());
  ++now_;
  auto& st = clients_[rid];
  st.pending = true;
  st.completed_before = r->reads_completed();
  st.op_index = history_.begin_op(rid, /*is_write=*/false, now_);
  obs::scoped_trace_time trace_time(now_);
  obs::scoped_trace_ctx trace_ctx(obs::next_trace_id(), 0);
  scoped_log_node log_node(to_string(rid));
  r->invoke_read(*this);
  flush_sends(rid);
}

void world::invoke_step(const process_id& p,
                        const std::function<void(netout&)>& fn) {
  FASTREG_EXPECTS(!crashed_.contains(p));
  ++now_;
  obs::scoped_trace_time trace_time(now_);
  scoped_log_node log_node(to_string(p));
  fn(*this);
  flush_sends(p);
}

bool world::client_busy(const process_id& p) {
  if (p.is_reader()) return reader(p.index)->read_in_progress();
  if (p.is_writer()) return writer(p.index)->write_in_progress();
  return false;
}

std::optional<read_result> world::last_read(std::uint32_t reader_index) {
  return reader(reader_index)->last_read();
}

void world::poll_completion(const process_id& p) {
  auto it = clients_.find(p);
  if (it == clients_.end() || !it->second.pending) return;
  auto& st = it->second;
  if (p.is_reader()) {
    auto* r = reader(p.index);
    if (r->reads_completed() > st.completed_before) {
      const auto& res = r->last_read();
      FASTREG_CHECK(res.has_value());
      history_.complete_read(st.op_index, now_, res->ts, res->wid, res->val,
                             res->rounds);
      st.pending = false;
    }
  } else if (p.is_writer()) {
    auto* w = writer(p.index);
    if (w->writes_completed() > st.completed_before) {
      history_.complete_write(st.op_index, now_, w->last_write_rounds());
      st.pending = false;
    }
  }
}

// -------------------------------------------------------- manual driving --

void world::do_step(const process_id& to, const envelope& env) {
  auto& a = *procs_[index_of(to)];
  obs::scoped_trace_time trace_time(now_);
  // Replies a trace-oblivious automaton sends during this step inherit
  // the delivered message's identity (batches only carry one ambient
  // ctx -- the head's -- but store automata stamp replies themselves).
  obs::scoped_trace_ctx trace_ctx(env.msg.trace, env.msg.span);
  scoped_log_node log_node(to_string(to));
  if (obs::recording_active()) {
    auto& r = rec_for(to);
    r.record(obs::rec_event::recv, env.msg.trace, env.msg.span,
             static_cast<std::uint8_t>(env.msg.type), env.from, env.msg.obj,
             env.msg.epoch, env.msg.ts);
    for (const auto& m : env.tail) {
      r.record(obs::rec_event::recv, m.trace, m.span,
               static_cast<std::uint8_t>(m.type), env.from, m.obj, m.epoch,
               m.ts);
    }
  }
  if (env.tail.empty()) {
    a.on_message(*this, env.from, env.msg);
  } else {
    std::vector<message> all;
    all.reserve(env.message_count());
    all.push_back(env.msg);
    all.insert(all.end(), env.tail.begin(), env.tail.end());
    a.on_batch(*this, env.from, all);
  }
  flush_sends(to);
  delivered_count_ += env.message_count();
  poll_completion(to);
}

bool world::deliver(std::uint64_t envelope_id) {
  auto it = std::find_if(mset_.begin(), mset_.end(), [&](const envelope& e) {
    return e.id == envelope_id;
  });
  if (it == mset_.end()) return false;
  envelope env = std::move(*it);
  mset_.erase(it);
  ++now_;
  if (crashed_.contains(env.to)) return false;  // consumed, never processed
  do_step(env.to, env);
  return true;
}

std::vector<std::uint64_t> world::find_envelopes(
    const envelope_pred& pred) const {
  std::vector<std::uint64_t> ids;
  for (const auto& e : mset_) {
    if (pred(e)) ids.push_back(e.id);
  }
  return ids;
}

std::size_t world::deliver_matching(const envelope_pred& pred) {
  std::size_t n = 0;
  for (std::uint64_t id : find_envelopes(pred)) {
    if (deliver(id)) ++n;
  }
  return n;
}

std::size_t world::drop_matching(const envelope_pred& pred) {
  const std::size_t before = mset_.size();
  std::erase_if(mset_, pred);
  return before - mset_.size();
}

// --------------------------------------------------------- bulk schedules --

std::uint64_t world::run_random(rng& r, std::uint64_t max_steps) {
  return run_random_until(r, [] { return false; }, max_steps);
}

std::uint64_t world::run_random_until(rng& r,
                                      const std::function<bool()>& done,
                                      std::uint64_t max_steps) {
  std::uint64_t steps = 0;
  while (!mset_.empty() && steps < max_steps && !done()) {
    std::size_t pick;
    if (blocked_.empty()) {
      pick = static_cast<std::size_t>(r.below(mset_.size()));
    } else {
      // Partitions active: choose uniformly among DELIVERABLE envelopes;
      // blocked ones stay in transit until heal.
      std::vector<std::size_t> deliverable;
      deliverable.reserve(mset_.size());
      for (std::size_t i = 0; i < mset_.size(); ++i) {
        if (!link_blocked(mset_[i].from, mset_[i].to)) {
          deliverable.push_back(i);
        }
      }
      if (deliverable.empty()) break;  // everything in transit is blocked
      pick = deliverable[static_cast<std::size_t>(
          r.below(deliverable.size()))];
    }
    envelope env = std::move(mset_[pick]);
    mset_.erase(mset_.begin() + static_cast<std::ptrdiff_t>(pick));
    ++now_;
    ++steps;
    if (crashed_.contains(env.to)) continue;
    do_step(env.to, env);
  }
  return steps;
}

std::uint64_t world::run_timed(rng& r, delay_model& delays,
                               std::uint64_t max_steps) {
  return run_timed_until(r, delays, [] { return false; }, max_steps);
}

std::uint64_t world::run_timed_until(rng& r, delay_model& delays,
                                     const std::function<bool()>& done,
                                     std::uint64_t max_steps) {
  std::uint64_t steps = 0;
  while (!mset_.empty() && steps < max_steps && !done()) {
    // Assign due times to any messages that do not have one yet.
    for (auto& e : mset_) {
      if (e.due_at == 0) {
        e.due_at = std::max(e.sent_at, now_) + delays.sample(r, e.from, e.to);
      }
    }
    // Earliest due DELIVERABLE message next (a blocked link delays its
    // messages past the heal; their due time may then be long past, so
    // they arrive in one post-heal burst -- the flush a real partition
    // ends with).
    auto it = mset_.end();
    for (auto e = mset_.begin(); e != mset_.end(); ++e) {
      if (!blocked_.empty() && link_blocked(e->from, e->to)) continue;
      if (it == mset_.end() || e->due_at < it->due_at) it = e;
    }
    if (it == mset_.end()) break;  // everything in transit is blocked
    envelope env = std::move(*it);
    mset_.erase(it);
    now_ = std::max(now_ + 1, env.due_at);
    ++steps;
    if (crashed_.contains(env.to)) continue;
    do_step(env.to, env);
  }
  return steps;
}

// --------------------------------------------------------------- failures --

void world::crash(const process_id& p) { crashed_.insert(p); }

void world::restart(const process_id& p, std::unique_ptr<automaton> a) {
  FASTREG_EXPECTS(a != nullptr);
  crashed_.erase(p);
  armed_partial_crash_.erase(p);
  replace_automaton(p, std::move(a));
}

void world::crash_after_sends(const process_id& p, std::size_t deliver_first) {
  armed_partial_crash_[p] = deliver_first;
}

// ------------------------------------------------------------ partitions --

namespace {

std::pair<process_id, process_id> link_key(const process_id& a,
                                           const process_id& b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

}  // namespace

void world::partition(const process_id& a, const process_id& b) {
  blocked_.insert(link_key(a, b));
}

void world::heal(const process_id& a, const process_id& b) {
  blocked_.erase(link_key(a, b));
}

void world::heal_all() { blocked_.clear(); }

bool world::link_blocked(const process_id& a, const process_id& b) const {
  return !blocked_.empty() && blocked_.contains(link_key(a, b));
}

// ------------------------------------------------------------------ fork --

world world::fork() const {
  world w(cfg_);
  w.procs_.reserve(procs_.size());
  for (const auto& a : procs_) w.procs_.push_back(a->clone());
  w.mset_ = mset_;
  w.next_envelope_id_ = next_envelope_id_;
  w.now_ = now_;
  w.crashed_ = crashed_;
  w.blocked_ = blocked_;
  w.armed_partial_crash_ = armed_partial_crash_;
  w.clients_ = clients_;
  w.history_ = history_;
  w.sent_count_ = sent_count_;
  w.delivered_count_ = delivered_count_;
  w.envelopes_sent_ = envelopes_sent_;
  return w;
}

}  // namespace fastreg::sim
