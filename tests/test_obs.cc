// Observability: registry concurrency, histogram accuracy, the
// streaming bench accumulator, tracer-measured rounds-per-op, and the
// stats_req/stats_ack scrape on both deployments. The concurrent cases
// double as the TSan surface for the metrics hot path (run with
// -DFASTREG_SANITIZE=thread).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <tuple>
#include <vector>

#include "benchutil/stats.h"
#include "benchutil/workload.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "registers/registry.h"
#include "store/sim_store.h"
#include "store/tcp_store.h"

namespace fastreg {
namespace {

store::store_config small_store_cfg(std::vector<std::string> protos,
                                    std::uint32_t num_shards = 2,
                                    std::uint32_t R = 2) {
  store::store_config cfg;
  cfg.base.servers = 5;
  cfg.base.t_failures = 1;
  cfg.base.readers = R;
  cfg.base.writers = 1;
  cfg.num_shards = num_shards;
  cfg.shard_protocols = std::move(protos);
  return cfg;
}

// --------------------------------------------------------------- registry

TEST(ObsRegistry, ConcurrentIncrementsAreExact) {
  auto& c = obs::registry::instance().get_counter(
      "test_obs_concurrent_total");
  c.reset();
  constexpr int k_threads = 8;
  constexpr std::uint64_t k_incs = 20'000;
  std::vector<std::thread> ts;
  for (int i = 0; i < k_threads; ++i) {
    ts.emplace_back([&] {
      for (std::uint64_t n = 0; n < k_incs; ++n) c.inc();
    });
  }
  // Snapshot concurrently with the writers: reads must be race-free
  // (relaxed) and monotone in what they CAN observe.
  std::uint64_t last = 0;
  for (int i = 0; i < 50; ++i) {
    const auto snap = obs::snapshot();
    EXPECT_FALSE(snap.empty());
    const auto v = c.value();
    EXPECT_GE(v, last);
    last = v;
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(c.value(), k_threads * k_incs);
}

TEST(ObsRegistry, SameNameSameLabelsSameHandle) {
  auto& a = obs::registry::instance().get_counter("test_obs_handle_total",
                                                  "node=\"x\"");
  auto& b = obs::registry::instance().get_counter("test_obs_handle_total",
                                                  "node=\"x\"");
  auto& other = obs::registry::instance().get_counter(
      "test_obs_handle_total", "node=\"y\"");
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &other);
}

TEST(ObsRegistry, GaugeTracksLevels) {
  auto& g = obs::registry::instance().get_gauge("test_obs_gauge");
  g.reset();
  g.add(5);
  g.add(-2);
  EXPECT_EQ(g.value(), 3);
  g.set(-7);
  EXPECT_EQ(g.value(), -7);
}

// -------------------------------------------------------------- histogram

TEST(ObsHistogram, PercentileWithinBucketError) {
  obs::histogram h;
  rng r(11);
  std::vector<std::uint64_t> vals;
  for (int i = 0; i < 20'000; ++i) {
    // Log-uniform over ~6 decades: exercises many octaves.
    const double e = r.uniform01() * 6.0;
    vals.push_back(static_cast<std::uint64_t>(std::pow(10.0, e)));
    h.observe(vals.back());
  }
  std::sort(vals.begin(), vals.end());
  EXPECT_EQ(h.count(), vals.size());
  EXPECT_EQ(h.min(), vals.front());
  EXPECT_EQ(h.max(), vals.back());
  for (const double p : {10.0, 50.0, 90.0, 99.0}) {
    const auto exact =
        vals[static_cast<std::size_t>(p / 100.0 *
                                      static_cast<double>(vals.size() - 1))];
    const auto est = h.percentile(p);
    // 8 sub-buckets per octave: worst-case relative quantization ~9%;
    // allow a little headroom for the rank-vs-interpolation difference.
    EXPECT_NEAR(static_cast<double>(est), static_cast<double>(exact),
                0.15 * static_cast<double>(exact))
        << "p" << p;
  }
}

TEST(ObsHistogram, BucketIndexRoundTrips) {
  for (const std::uint64_t v :
       {0ull, 1ull, 7ull, 64ull, 1'000ull, 123'456'789ull}) {
    const auto idx = obs::histogram::bucket_index(v);
    ASSERT_LT(idx, obs::histogram::k_buckets);
    const auto rep = obs::histogram::bucket_value(idx);
    if (v == 0) {
      EXPECT_EQ(rep, 0u);
    } else {
      EXPECT_NEAR(static_cast<double>(rep), static_cast<double>(v),
                  0.2 * static_cast<double>(v));
    }
  }
}

// ------------------------------------------------- streaming bench stats

TEST(StreamHist, DifferentialAgainstExactStats) {
  benchutil::stats exact;
  benchutil::stream_hist stream;
  rng r(23);
  for (int i = 0; i < 50'000; ++i) {
    // Latency-shaped: a lognormal-ish spread with sub-integer values.
    const double v = std::pow(10.0, 1.0 + 3.0 * r.uniform01()) / 16.0;
    exact.add(v);
    stream.add(v);
  }
  EXPECT_EQ(stream.count(), exact.count());
  EXPECT_NEAR(stream.mean(), exact.mean(), 1e-9 * exact.mean());
  EXPECT_DOUBLE_EQ(stream.min(), exact.min());
  EXPECT_DOUBLE_EQ(stream.max(), exact.max());
  for (const double p : {1.0, 50.0, 90.0, 99.0}) {
    EXPECT_NEAR(stream.percentile(p), exact.percentile(p),
                0.10 * exact.percentile(p))
        << "p" << p;
  }
}

TEST(StreamHist, EmptyAndReset) {
  benchutil::stream_hist s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.p50(), 0.0);
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.max(), 0.0);
}

// ----------------------------------------------------- rounds from traces

TEST(ObsTrace, FastReadIsOneRoundAbdIsTwo) {
  const std::vector<std::tuple<const char*, double, double>> cases = {
      {"fast_swmr", 1.0, 1.0}, {"abd", 2.0, 1.0}, {"mwmr", 2.0, 2.0}};
  for (const auto& [proto, rd, wr] : cases) {
    system_config cfg;
    cfg.servers = 7;
    cfg.t_failures = 1;
    cfg.readers = 2;
    if (std::string(proto) == "mwmr") cfg.writers = 2;
    benchutil::workload_options opt;
    opt.num_writes = 10;
    opt.reads_per_reader = 10;
    const auto rep =
        benchutil::run_measured(*make_protocol(proto), cfg, opt);
    // The tracer's issue/ack hooks, not the completion records: an
    // automaton claiming the wrong round count in its result would not
    // fool this.
    EXPECT_GT(rep.traced.reads, 0u) << proto;
    EXPECT_GT(rep.traced.writes, 0u) << proto;
    EXPECT_DOUBLE_EQ(rep.traced.read_rounds, rd) << proto;
    EXPECT_DOUBLE_EQ(rep.traced.write_rounds, wr) << proto;
  }
}

// ------------------------------------------------------------ text dump

TEST(ObsDump, RenderValidatesAndGarbageDoesNot) {
  obs::registry::instance().get_counter("test_obs_dump_total").inc();
  obs::registry::instance()
      .get_histogram("test_obs_dump_ns", "node=\"s1\"")
      .observe(42);
  const auto text = obs::render_text();
  EXPECT_EQ(obs::validate_dump(text), "");
  EXPECT_NE(text.find("test_obs_dump_total"), std::string::npos);
  EXPECT_NE(text.find("test_obs_dump_ns_p50{node=\"s1\"}"),
            std::string::npos);

  EXPECT_NE(obs::validate_dump("not a metric line\n"), "");
  EXPECT_NE(obs::validate_dump("name{unquoted=x} 1\n"), "");
  EXPECT_NE(obs::validate_dump("name{a=\"b\"} not_a_number\n"), "");
  EXPECT_EQ(obs::validate_dump("plain_name 3.25\n"), "");
}

// -------------------------------------------------------- scrape: sim

TEST(ObsScrape, SimStatsRoundTrip) {
  store::sim_store s(small_store_cfg({"fast_swmr", "abd"}));
  rng r(5);
  for (int n = 1; n <= 6; ++n) {
    s.invoke_put(0, "k" + std::to_string(n % 3), "v" + std::to_string(n));
    s.run_random(r, 10'000);
  }
  const auto dump = s.scrape(0, r);
  ASSERT_FALSE(dump.empty());
  EXPECT_EQ(obs::validate_dump(dump), "") << dump.substr(0, 200);
  // The scraped server counted its own ops under its node label.
  EXPECT_NE(dump.find("fastreg_store_ops_total{node=\"s1\"}"),
            std::string::npos);
}

// -------------------------------------------------------- scrape: TCP

TEST(ObsScrape, TcpStatsRoundTripOverRawSocket) {
  store::tcp_store ts(small_store_cfg({"fast_swmr", "abd"}));
  ts.start();
  ASSERT_TRUE(ts.put(0, "alpha", "a1"));
  const auto a = ts.get(0, "alpha");
  ASSERT_TRUE(a.has_value());
  const auto dump = ts.scrape(0);
  ASSERT_FALSE(dump.empty());
  EXPECT_EQ(obs::validate_dump(dump), "") << dump.substr(0, 200);
  EXPECT_NE(dump.find("fastreg_store_ops_total"), std::string::npos);
  EXPECT_NE(dump.find("fastreg_net_frames_in_total"), std::string::npos);
  // Live traffic keeps flowing after a scrape.
  ASSERT_TRUE(ts.put(0, "alpha", "a2"));
  const auto b = ts.get(1, "alpha");
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->val, "a2");
  EXPECT_TRUE(ts.gather().verify().ok);
  ts.stop();
}

// A scrape against a dead port fails cleanly instead of hanging.
TEST(ObsScrape, TcpScrapeTimesOutCleanly) {
  store::tcp_store ts(small_store_cfg({"abd"}));
  ts.start();
  ts.stop();  // ports are now closed
  const auto dump = ts.scrape(0, std::chrono::milliseconds(200));
  EXPECT_TRUE(dump.empty());
}

// ----------------------------------------- reactor-thread hooks (TSan)

TEST(ObsTrace, ReactorHooksRaceFreeUnderConcurrentScrape) {
  const bool was = obs::tracing_enabled();
  obs::set_tracing(true);
  obs::reset_traces();
  store::tcp_store ts(small_store_cfg({"fast_swmr", "abd"}));
  ts.start();
  std::thread writer([&] {
    for (int n = 1; n <= 10; ++n) {
      ASSERT_TRUE(
          ts.put(0, "k" + std::to_string(n % 3), "v" + std::to_string(n)));
    }
  });
  std::vector<std::thread> readers;
  for (std::uint32_t i = 0; i < 2; ++i) {
    readers.emplace_back([&, i] {
      for (int n = 0; n < 8; ++n) {
        (void)ts.get(i, "k" + std::to_string(n % 3));
      }
    });
  }
  // Snapshot + render + scrape while the reactor threads trace and count.
  for (int i = 0; i < 10; ++i) {
    (void)obs::snapshot();
    (void)obs::render_text();
  }
  const auto dump = ts.scrape(0);
  EXPECT_FALSE(dump.empty());
  writer.join();
  for (auto& th : readers) th.join();
  const auto traces = obs::take_traces();
  EXPECT_FALSE(traces.empty());
  obs::set_tracing(was);
  ts.stop();
}

// ------------------------------------------- interval (delta) scraping

/// The sample named exactly `name` (labels included), or nullptr.
const obs::sample* find_row(const std::vector<obs::sample>& rows,
                            const std::string& name) {
  const auto it =
      std::find_if(rows.begin(), rows.end(),
                   [&](const obs::sample& s) { return s.name == name; });
  return it == rows.end() ? nullptr : &*it;
}

TEST(ObsSnapshot, DiffSubtractsCumulativeAndKeepsLevels) {
  auto& c = obs::registry::instance().get_counter("test_diff_total");
  auto& g = obs::registry::instance().get_gauge("test_diff_level");
  auto& h = obs::registry::instance().get_histogram("test_diff_us");
  c.reset();
  g.set(3);
  h.reset();
  h.observe(10);
  const auto prev = obs::snapshot();
  c.inc(7);
  g.set(5);
  h.observe(20);
  h.observe(30);
  const auto delta = obs::diff_snapshot(obs::snapshot(), prev);
  // Cumulative rows subtract; level rows pass through at current value.
  const auto* dc = find_row(delta, "test_diff_total");
  ASSERT_NE(dc, nullptr);
  EXPECT_EQ(dc->value, 7);
  const auto* dg = find_row(delta, "test_diff_level");
  ASSERT_NE(dg, nullptr);
  EXPECT_EQ(dg->value, 5);
  const auto* dn = find_row(delta, "test_diff_us_count");
  ASSERT_NE(dn, nullptr);
  EXPECT_EQ(dn->value, 2);
  const auto* ds = find_row(delta, "test_diff_us_sum");
  ASSERT_NE(ds, nullptr);
  EXPECT_EQ(ds->value, 50);
  // A series absent from prev deltas from zero.
  auto& fresh =
      obs::registry::instance().get_counter("test_diff_fresh_total");
  fresh.reset();
  fresh.inc(4);
  const auto delta2 = obs::diff_snapshot(obs::snapshot(), prev);
  const auto* df = find_row(delta2, "test_diff_fresh_total");
  ASSERT_NE(df, nullptr);
  EXPECT_EQ(df->value, 4);
}

TEST(ObsSnapshot, IntervalScrapeRollsItsBaselineForward) {
  auto& c =
      obs::registry::instance().get_counter("test_interval_total");
  c.reset();
  obs::interval_scrape scrape;
  c.inc(5);
  const auto* first = find_row(scrape.take(), "test_interval_total");
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->value, 5);
  c.inc(3);
  const auto* second = find_row(scrape.take(), "test_interval_total");
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(second->value, 3);
  // Nothing moved: the delta is zero, and the dump still validates.
  const auto third = scrape.take();
  const auto* idle = find_row(third, "test_interval_total");
  ASSERT_NE(idle, nullptr);
  EXPECT_EQ(idle->value, 0);
  EXPECT_EQ(obs::validate_dump(obs::render_samples(third)), "");
}

TEST(ObsDump, AnnotatedRowsAllCarryANodeLabel) {
  (void)obs::registry::instance().get_counter("test_annot_plain_total");
  (void)obs::registry::instance().get_counter("test_annot_owned_total",
                                              "node=\"server:3\"");
  const auto text = obs::render_text_annotated("reader:1");
  EXPECT_EQ(obs::validate_dump(text), "");
  std::size_t lines = 0;
  std::size_t start = 0;
  while (start < text.size()) {
    auto end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const auto line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    ++lines;
    // Every row names its node; rows that already had one keep it.
    EXPECT_NE(line.find("node=\""), std::string::npos) << line;
  }
  EXPECT_GT(lines, 0u);
  EXPECT_NE(text.find("test_annot_plain_total{node=\"reader:1\"}"),
            std::string::npos);
  EXPECT_NE(text.find("test_annot_owned_total{node=\"server:3\"}"),
            std::string::npos);
}

}  // namespace
}  // namespace fastreg
