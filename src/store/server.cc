#include "store/server.h"

#include "common/check.h"

namespace fastreg::store {

server::server(std::shared_ptr<const shard_map> shards, std::uint32_t index)
    : map_(std::move(shards)), index_(index) {}

server::server(const server& o)
    : map_(o.map_),
      prev_map_(o.prev_map_),
      index_(o.index_),
      seeded_(o.seeded_) {
  FASTREG_EXPECTS(o.outbox_.empty());
  for (const auto& [obj, a] : o.objects_) {
    objects_.emplace(obj, a->clone());
  }
  for (const auto& [obj, a] : o.prev_objects_) {
    prev_objects_.emplace(obj, a->clone());
  }
}

automaton& server::inner_for(object_id obj) {
  auto it = objects_.find(obj);
  if (it == objects_.end()) {
    const auto& proto = map_->protocol_for_object(obj);
    it = objects_
             .emplace(obj,
                      proto.make_server(map_->config().base, index_, obj))
             .first;
  }
  return *it->second;
}

bool server::moved(object_id obj) const {
  return prev_map_ != nullptr && object_moves(*prev_map_, *map_, obj);
}

void server::install_map(std::shared_ptr<const shard_map> next) {
  FASTREG_EXPECTS(next != nullptr);
  FASTREG_EXPECTS(next->epoch() == map_->epoch() + 1);
  prev_objects_.clear();  // previous reconfiguration fully drained by now
  seeded_.clear();
  for (auto it = objects_.begin(); it != objects_.end();) {
    if (object_moves(*map_, *next, it->first)) {
      prev_objects_.emplace(it->first, std::move(it->second));
      it = objects_.erase(it);
    } else {
      ++it;
    }
  }
  prev_map_ = std::move(map_);
  map_ = std::move(next);
}

void server::send_nack(const process_id& to, const message& m) {
  message nack;
  nack.type = msg_type::epoch_nack;
  nack.obj = m.obj;
  nack.epoch = map_->epoch();
  nack.attempt = m.attempt;
  outbox_.add(to, std::move(nack));
}

void server::handle_state_req(const process_id& from, const message& m) {
  register_snapshot snap;
  const auto prev = prev_objects_.find(m.obj);
  if (prev != prev_objects_.end()) {
    auto* s = as_seedable(prev->second.get());
    FASTREG_CHECK(s != nullptr);
    snap = s->peek_state();
  } else if (!moved(m.obj)) {
    // Defensive: a state read of an unmoved object answers the live
    // instance (the coordinator normally only reads moved keys).
    const auto cur = objects_.find(m.obj);
    if (cur != objects_.end()) {
      auto* s = as_seedable(cur->second.get());
      FASTREG_CHECK(s != nullptr);
      snap = s->peek_state();
    }
  }
  // Moved but never hosted: this server holds no old-generation state, so
  // the default snapshot (the initial timestamp) is the honest answer.
  message ack;
  ack.type = msg_type::state_ack;
  ack.obj = m.obj;
  ack.epoch = map_->epoch();
  ack.mig = true;
  ack.rcounter = m.rcounter;
  ack.ts = snap.ts;
  ack.wid = snap.wid;
  ack.val = snap.val;
  ack.prev = snap.prev;
  ack.sig = snap.sig;
  outbox_.add(from, std::move(ack));
}

void server::handle_seed_req(const process_id& from, const message& m) {
  if (!seeded_.contains(m.obj)) {
    // Replace whatever stray instance exists (none should: data traffic
    // for a draining object is nacked until this seed lands).
    objects_.erase(m.obj);
    auto& inner = inner_for(m.obj);
    if (m.ts != k_initial_ts) {
      auto* s = as_seedable(&inner);
      FASTREG_CHECK(s != nullptr);
      s->seed_state({m.ts, m.wid, m.val, m.prev, m.sig});
    }
    seeded_.insert(m.obj);
  }
  message ack;
  ack.type = msg_type::seed_ack;
  ack.obj = m.obj;
  ack.epoch = map_->epoch();
  ack.mig = true;
  ack.rcounter = m.rcounter;
  outbox_.add(from, std::move(ack));
}

void server::handle_one(const process_id& from, const message& m) {
  if (m.type == msg_type::state_req) {
    handle_state_req(from, m);
    return;
  }
  if (m.type == msg_type::seed_req) {
    handle_seed_req(from, m);
    return;
  }
  if (m.type == msg_type::epoch_nack || m.type == msg_type::state_ack ||
      m.type == msg_type::seed_ack) {
    return;  // not server-bound; a confused or malicious peer sent this
  }
  if (from.is_server()) {
    // Server-to-server traffic (max-min gossip) is routed by generation:
    // old-generation gossip finishes against the set-aside instances.
    // The attempt tag rides along even on the gossip path: a client-bound
    // reply a gossip message triggers (maxmin's maybe_reply) must carry
    // the attempt of the read it serves, or the client would drop it.
    if (moved(m.obj) && m.epoch < map_->epoch()) {
      const auto prev = prev_objects_.find(m.obj);
      if (prev == prev_objects_.end()) return;
      tagging_netout tagged(outbox_, m.obj, m.epoch, m.attempt);
      prev->second->on_message(tagged, from, m);
      return;
    }
    tagging_netout tagged(outbox_, m.obj, map_->epoch(), m.attempt);
    inner_for(m.obj).on_message(tagged, from, m);
    return;
  }
  // Client data message. Moved objects are fenced: requests routed under
  // a superseded map are nacked (the client refetches and retries), and
  // current-epoch requests are nacked until the migration handoff seeds
  // the new instance (the client parks until resumed).
  if (moved(m.obj) &&
      (m.epoch != map_->epoch() || !seeded_.contains(m.obj))) {
    send_nack(from, m);
    return;
  }
  tagging_netout tagged(outbox_, m.obj, map_->epoch(), m.attempt);
  inner_for(m.obj).on_message(tagged, from, m);
}

void server::on_message(netout& net, const process_id& from,
                        const message& m) {
  handle_one(from, m);
  outbox_.flush(net);
}

void server::on_batch(netout& net, const process_id& from,
                      std::span<const message> msgs) {
  for (const auto& m : msgs) handle_one(from, m);
  outbox_.flush(net);
}

std::unique_ptr<automaton> server::clone() const {
  return std::unique_ptr<automaton>(new server(*this));
}

}  // namespace fastreg::store
