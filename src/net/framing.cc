#include "net/framing.h"

#include <cstring>

namespace fastreg::net {
namespace {

std::vector<std::uint8_t> finish_frame(frame_kind kind,
                                       const byte_writer& payload) {
  const auto& body = payload.bytes();
  std::vector<std::uint8_t> out;
  const std::uint32_t len = static_cast<std::uint32_t>(body.size() + 1);
  out.reserve(4 + len);
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  }
  out.push_back(static_cast<std::uint8_t>(kind));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

}  // namespace

std::vector<std::uint8_t> encode_hello(const process_id& from) {
  byte_writer w;
  encode_process_id(w, from);
  return finish_frame(frame_kind::hello, w);
}

std::vector<std::uint8_t> encode_msg_frame(const process_id& from,
                                           const message& m) {
  byte_writer w;
  encode_process_id(w, from);
  encode_message(w, m);
  return finish_frame(frame_kind::msg, w);
}

std::vector<std::uint8_t> encode_batch_frame(const process_id& from,
                                             std::span<const message> msgs) {
  byte_writer w;
  encode_process_id(w, from);
  w.put_u32(static_cast<std::uint32_t>(msgs.size()));
  for (const auto& m : msgs) encode_message(w, m);
  return finish_frame(frame_kind::batch, w);
}

void frame_buffer::feed(const std::uint8_t* data, std::size_t n) {
  if (corrupt_) return;  // connection is due for a reset; drop the bytes
  // Compact occasionally so the buffer does not grow without bound.
  if (consumed_ > 0 && consumed_ == buf_.size()) {
    buf_.clear();
    consumed_ = 0;
  } else if (consumed_ > 64 * 1024) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
}

std::optional<frame> frame_buffer::next() {
  for (;;) {
    if (corrupt_) return std::nullopt;
    const std::size_t avail = buf_.size() - consumed_;
    if (avail < 4) return std::nullopt;
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<std::uint32_t>(buf_[consumed_ + static_cast<std::size_t>(i)])
             << (8 * i);
    }
    if (len == 0 || len > max_frame_bytes) {
      // Hopeless: with the length prefix untrustworthy there is no
      // reliable frame boundary left on this stream. Latch corrupt();
      // the owner resets the connection (see the class comment).
      ++malformed_;
      corrupt_ = true;
      buf_.clear();
      consumed_ = 0;
      return std::nullopt;
    }
    if (avail < 4 + static_cast<std::size_t>(len)) return std::nullopt;
    const std::uint8_t* body = buf_.data() + consumed_ + 4;
    consumed_ += 4 + len;

    frame f;
    const std::uint8_t kind = body[0];
    byte_reader r(std::span<const std::uint8_t>(body + 1, len - 1));
    const auto from = decode_process_id(r);
    if (!from) {
      ++malformed_;
      continue;
    }
    f.from = *from;
    if (kind == static_cast<std::uint8_t>(frame_kind::hello)) {
      f.kind = frame_kind::hello;
      return f;
    }
    if (kind == static_cast<std::uint8_t>(frame_kind::msg)) {
      f.kind = frame_kind::msg;
      auto m = decode_message(r);
      if (!m) {
        ++malformed_;
        continue;
      }
      f.msg = std::move(*m);
      return f;
    }
    if (kind == static_cast<std::uint8_t>(frame_kind::batch)) {
      f.kind = frame_kind::batch;
      const auto count = r.get_u32();
      // An encoded message is over 40 bytes; a count the remaining payload
      // cannot possibly hold is a malformed (or hostile) frame. The bound
      // must hold BEFORE any allocation sized by count, or a crafted
      // count forces a multi-GB reserve and bad_alloc kills the process.
      if (!count || *count == 0 || *count > r.remaining() / 40) {
        ++malformed_;
        continue;
      }
      bool ok = true;
      f.batch.reserve(*count);
      for (std::uint32_t i = 0; i < *count; ++i) {
        auto m = decode_message(r);
        if (!m) {
          ok = false;
          break;
        }
        f.batch.push_back(std::move(*m));
      }
      if (!ok) {
        ++malformed_;
        f.batch.clear();
        continue;
      }
      return f;
    }
    ++malformed_;
  }
}

}  // namespace fastreg::net
