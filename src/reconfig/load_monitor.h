// Load-triggered automatic resharding.
//
// Store servers count client data messages per shard of the current map
// (server::shard_ops). The load_monitor samples those counters across the
// reachable fleet, and when a shard's share of the window's traffic is
// disproportionate (a Zipf workload concentrates a few hot objects on a
// few shards), builds a reconfig_plan that promotes the hot shards to a
// fast (one-round-read) protocol while leaving the rest alone. The
// auto_resharder closes the loop: it samples periodically and, when a
// plan appears, starts and drives a migration coordinator -- no operator
// in the loop. This is the ROADMAP's "watch per-shard load and reshard
// hot shards to fast protocols" item.
//
// Demotion closes the loop in the other direction, with hysteresis
// against churn: promotion fires the moment a shard crosses the hi
// watermark (hot_factor x fair share), but a promoted shard is demoted
// back to its base protocol only after demote_after CONSECUTIVE sample
// windows at or below the cool watermark (cool_factor x fair share) --
// one warm window resets the streak, so a shard oscillating near the
// boundary stays where it is instead of paying a full handoff per flip.
// A plan is proposed only when it validates under the deployment's base
// config (e.g. fast_swmr must be feasible: S > (R+2)t), so an
// auto-resharder on an infeasible deployment simply never fires.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "reconfig/coordinator.h"
#include "reconfig/plan.h"
#include "store/shard_map.h"

namespace fastreg::reconfig {

struct load_monitor_options {
  /// A shard is hot when its share of the sample window's ops is at
  /// least hot_factor times the fair share (1 / num_shards).
  double hot_factor{2.0};
  /// Ignore sample windows with fewer total ops than this (noise guard).
  std::uint64_t min_total_ops{200};
  /// Protocol hot shards are promoted to.
  std::string fast_protocol{"fast_swmr"};

  /// Demotion target for cooled shards currently on fast_protocol; empty
  /// disables demotion. A deployment typically names its base (epoch-0)
  /// shard protocol here.
  std::string demote_protocol{};
  /// Cool watermark: a promoted shard counts a cool window when its
  /// share is at most cool_factor times the fair share. Keep it at or
  /// below hot_factor (the gap is the hysteresis band).
  double cool_factor{1.0};
  /// Consecutive cool windows required before a demotion is proposed.
  std::uint32_t demote_after{3};
};

/// Expands `cur`'s round-robin protocol list to one name per shard,
/// promotes every hot shard (per `totals`, the summed per-shard op
/// counts) to opt.fast_protocol -- and, when demotion is configured and
/// `cool_streaks` is given, demotes every shard on opt.fast_protocol
/// whose streak reached opt.demote_after (and is not hot right now) back
/// to opt.demote_protocol. Returns the resulting plan, or nullopt when
/// the window is too small, nothing qualifies, or the plan would not
/// validate. Pure function; unit-testable without a transport.
[[nodiscard]] std::optional<reconfig_plan> build_hot_shard_plan(
    const store::shard_map& cur, const std::vector<std::uint64_t>& totals,
    const load_monitor_options& opt,
    const std::vector<std::uint32_t>* cool_streaks = nullptr);

/// Advances the per-shard consecutive-cool-window counters from one
/// window's totals: a shard currently on opt.fast_protocol at or below
/// the cool watermark extends its streak, any warmer window (or a too-
/// small one, or a shard not on the fast protocol) resets it. `streaks`
/// is resized (and zeroed) on shard-count changes. Pure state-transition
/// helper shared by load_monitor::sample and its unit tests.
void update_cool_streaks(const store::shard_map& cur,
                         const std::vector<std::uint64_t>& totals,
                         const load_monitor_options& opt,
                         std::vector<std::uint32_t>& streaks);

class load_monitor {
 public:
  explicit load_monitor(control_plane& ctl, load_monitor_options opt = {})
      : ctl_(ctl), opt_(opt) {}

  /// Sums per-shard op counters across reachable servers and RESETS them
  /// (each call samples a fresh window), advances the demotion cool
  /// streaks, then applies build_hot_shard_plan.
  [[nodiscard]] std::optional<reconfig_plan> sample(
      const store::shard_map& cur);

  /// The last sample's summed per-shard counts (diagnostic).
  [[nodiscard]] const std::vector<std::uint64_t>& last_totals() const {
    return totals_;
  }
  /// Consecutive-cool-window counters (diagnostic).
  [[nodiscard]] const std::vector<std::uint32_t>& cool_streaks() const {
    return streaks_;
  }

 private:
  control_plane& ctl_;
  load_monitor_options opt_;
  std::vector<std::uint64_t> totals_;
  std::vector<std::uint32_t> streaks_;
};

/// The self-driving loop: sample the load every `sample_every` steps;
/// when the monitor proposes a plan, start a coordinator on it and drive
/// the migration to completion, then go back to watching.
class auto_resharder {
 public:
  struct options {
    load_monitor_options monitor{};
    /// step() calls between load samples (a sample resets the window).
    std::uint64_t sample_every{64};
  };

  /// `maps` supplies the currently installed shard map (the deployment's
  /// versioned_map source).
  auto_resharder(control_plane& ctl, store::map_source maps, options opt);
  auto_resharder(control_plane& ctl, store::map_source maps)
      : auto_resharder(ctl, std::move(maps), options{}) {}

  /// One control action: advances an in-flight reshard, or counts toward
  /// the next load sample and starts a reshard when one is due and a hot
  /// shard shows. Call interleaved with transport progress.
  void step();

  /// True while a started reshard has not finished.
  [[nodiscard]] bool resharding() const {
    return coord_.has_value() && !coord_->done();
  }
  [[nodiscard]] std::uint64_t reshards_started() const { return started_; }
  [[nodiscard]] const load_monitor& monitor() const { return mon_; }

 private:
  control_plane& ctl_;
  store::map_source maps_;
  options opt_;
  load_monitor mon_;
  /// The in-flight (or last finished) migration; rebuilt per reshard.
  std::optional<coordinator> coord_;
  std::uint64_t ticks_{0};
  std::uint64_t started_{0};
};

}  // namespace fastreg::reconfig
