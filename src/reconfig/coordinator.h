// The reconfiguration coordinator: installs an epoch-versioned shard map
// fleet-wide and migrates every moved object online.
//
// Protocol (per reconfiguration):
//  1. PRE-FLIGHT: count reachable servers (fewer than a quorum aborts the
//     reconfiguration before anything is installed) and collect each
//     server's unseeded_moved_objects() -- state a server fenced in the
//     previous generation but never received the seed for. Those objects
//     are FORCE-MOVED: fenced and handed off again even if their protocol
//     does not change, so no replica silently serves regressed state.
//  2. INSTALL + DISCOVERY: install the new map on every reachable server
//     (each starts tagging replies with the new epoch and fencing moved
//     objects) and, in the same control action, read the server's object
//     index. The migration set is the union of the indexes -- every
//     completed write created instances on a quorum of servers, so a
//     quorum of indexes covers every key the store actually hosts; the
//     constructor's `keys` list only ADDS candidates (it is no longer
//     required to be complete). Then publish the map so clients refetch.
//  3. Per moved object, a dual-quorum handoff:
//     a. STATE READ: ask all servers for the old-generation state, take
//        the maximum over a quorum of answers. Quorum intersection with
//        the old generation's write/read quorums guarantees the maximum
//        is at least as new as anything a completed old-epoch op
//        established (the feasibility conditions S > 2t, resp.
//        S > (R+2)t + (R+1)b, give a nonempty intersection);
//     b. WRITER FLOOR: hand the snapshot to every writer client, so the
//        fresh writer automaton the object gets at the new epoch resumes
//        above the migrated timestamp;
//     c. SEED: install the snapshot as the object's new-generation state;
//        completes at a QUORUM of acks;
//     d. RESUME: unpark the object on every client.
//  4. done when every moved object drained.
//
// LIVENESS: every wait in the pipeline is a quorum wait, so the
// deployment keeps the t-crash tolerance of the underlying register
// protocols THROUGH a reconfiguration: a reshard completes, and every
// parked client op resumes, with up to t servers crashed or partitioned.
// A server that missed the quorum seed of step 3c pulls the snapshot from
// a generation peer on its first post-drain access (the lazy seed fetch,
// store/server.h) before answering, so it cannot stall clients either.
// Keys never listed and never written are also safe: discovery covers
// everything hosted, and a first-ever access to a brand-new object under
// a drained map self-seeds bottom once a safe majority of peers confirms
// no old-generation state exists. (The pre-PR-3 implementation seeded the
// FULL fleet and migrated only the keys it was given; see CHANGES.md.)
//
// The coordinator is an incremental state machine: start() performs the
// synchronous control-plane installs, then step() advances the handoff
// pipeline; call it interleaved with whatever is driving the transport
// (simulator steps, or a polling loop next to live TCP traffic). This
// keeps client operations flowing DURING the migration, which is the
// point of the exercise.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "obs/metrics.h"
#include "reconfig/plan.h"
#include "store/client.h"
#include "store/server.h"
#include "store/shard_map.h"

namespace fastreg::reconfig {

/// Transport adapter: how the coordinator reaches servers, clients and
/// the map registry of one concrete deployment (simulator or TCP).
/// All calls are synchronous control-plane actions.
class control_plane {
 public:
  virtual ~control_plane() = default;

  /// Runs `fn` against server `index`'s automaton; returns false without
  /// running it when the server is crashed or stopped. Control actions
  /// skip unreachable servers -- the quorum-based handoff tolerates up to
  /// t of them.
  virtual bool with_server(std::uint32_t index,
                           const std::function<void(store::server&)>& fn) = 0;
  /// Publishes `next` to the deployment's versioned_map.
  virtual void publish(std::shared_ptr<const store::shard_map> next) = 0;
  /// Runs `fn` as a step of the migrator client (by convention reader 0)
  /// with a netout, flushing its sends into the transport.
  virtual void with_migrator(
      const std::function<void(store::client&, netout&)>& fn) = 0;
  /// True when the migrator's in-flight handoff op completed. Thread-safe
  /// against live traffic (TCP marshals through the reactor).
  virtual bool migrator_done() = 0;
  /// The completed state read's snapshot (call only when migrator_done()).
  virtual register_snapshot migrator_snapshot() = 0;
  /// Runs `fn` against every client automaton (writers and readers) as a
  /// step with a netout.
  virtual void for_each_client(
      const std::function<void(store::client&, netout&)>& fn) = 0;
};

struct reconfig_stats {
  epoch_t new_epoch{0};
  /// Distinct objects the servers' indexes reported hosting.
  std::size_t keys_discovered{0};
  std::size_t keys_considered{0};
  std::size_t keys_moved{0};
};

class coordinator {
 public:
  /// `keys`: extra keys to consider for handoff, beyond what discovery
  /// finds in the servers' object indexes. Listing keys is optional --
  /// anything a completed write created is discovered -- and listing a
  /// key that does not move (or duplicating one) is harmless.
  ///
  /// One coordinator drives ONE reconfiguration: construct a fresh one
  /// per reshard (start() on a finished coordinator trips its
  /// phase-is-idle contract check rather than reusing stale handoff
  /// state). A start() that returned false may be retried.
  explicit coordinator(control_plane& ctl,
                       std::vector<std::string> keys = {});

  /// Validates the plan against `cur` (the currently installed map),
  /// installs the new map on every reachable server (at least a quorum
  /// must be reachable), discovers the hosted object set and publishes
  /// the map. Returns false (with error()) on an invalid plan or an
  /// unreachable fleet. On success the migration pipeline is armed;
  /// drive it with step().
  bool start(std::shared_ptr<const store::shard_map> cur,
             const reconfig_plan& plan);

  /// Advances the migration by at most one control action. Call
  /// repeatedly, interleaved with transport progress, until done().
  void step();

  [[nodiscard]] bool done() const { return phase_ == phase::done; }
  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] const reconfig_stats& stats() const { return stats_; }

 private:
  enum class phase { idle, reading, seeding, done };

  /// True when `obj`'s state must be handed off under this plan.
  [[nodiscard]] bool target_moves(object_id obj) const;
  /// Skips objects that do not move; arms the next handoff or finishes.
  void advance_target();

  control_plane& ctl_;
  std::vector<std::string> keys_;
  /// Handoff candidates: the explicit keys' objects first, then every
  /// discovered object not already covered (sorted for determinism).
  std::vector<object_id> targets_;
  /// Objects already handed off this reconfiguration (dedups targets_).
  std::unordered_set<object_id> handled_;
  /// Objects re-fenced by fiat because a server reported missing their
  /// previous generation's seed (their protocol may be unchanged).
  std::unordered_set<object_id> force_moved_;
  std::shared_ptr<const store::shard_map> old_map_;
  std::shared_ptr<const store::shard_map> new_map_;
  std::size_t next_target_{0};
  object_id cur_obj_{k_default_object};
  phase phase_{phase::idle};
  std::string error_{};
  reconfig_stats stats_{};
  /// Telemetry: the installed epoch and per-object handoff phase
  /// durations (trace clock: sim ticks under the simulator, wall ns on
  /// TCP). Handles resolved once; a fresh coordinator per reshard just
  /// re-resolves the same registry rows.
  obs::gauge* epoch_gauge_{nullptr};
  obs::histogram* read_phase_ns_{nullptr};
  obs::histogram* seed_phase_ns_{nullptr};
  std::uint64_t phase_start_{0};
};

}  // namespace fastreg::reconfig
