// The classic robust SWMR atomic register of Attiya, Bar-Noy and Dolev
// (JACM 1995), adapted to the paper's client/server setting (Section 1):
//
//  * write: the single writer increments its local timestamp and writes to
//    all servers, returning after S - t acks. One round-trip ("fast").
//  * read: round-trip 1 collects (ts, val) from S - t servers and selects
//    the maximum; round-trip 2 writes that pair back to S - t servers
//    before returning. Two round-trips -- the baseline the paper improves.
//
// Requires a correct majority (t < S/2) so any two (S-t)-quorums intersect.
//
// This header also defines `quorum_server`, the plain highest-timestamp-
// wins replica shared by the ABD, regular, single-reader and MWMR
// protocols (none of which need seen sets).
#pragma once

#include <optional>
#include <unordered_set>
#include <vector>

#include "registers/automaton.h"

namespace fastreg {

/// Shared replica automaton: stores the lexicographically largest
/// (ts, wid) and its value; acknowledges writes and write-backs; answers
/// reads; answers MWMR timestamp queries.
class quorum_server final : public automaton, public seedable {
 public:
  quorum_server(system_config cfg, std::uint32_t index);

  void on_message(netout& net, const process_id& from,
                  const message& m) override;
  [[nodiscard]] std::unique_ptr<automaton> clone() const override;
  [[nodiscard]] process_id self() const override {
    return server_id(index_);
  }

  [[nodiscard]] register_snapshot peek_state() const override;
  void seed_state(const register_snapshot& s) override;

  [[nodiscard]] wts_t stored_ts() const { return ts_; }
  [[nodiscard]] const value_t& stored_val() const { return val_; }

 private:
  system_config cfg_;
  std::uint32_t index_;
  wts_t ts_{};
  value_t val_{};
};

/// The single writer: local timestamp, one write round.
class abd_writer final : public automaton, public writer_iface {
 public:
  explicit abd_writer(system_config cfg);

  void on_message(netout& net, const process_id& from,
                  const message& m) override;
  [[nodiscard]] std::unique_ptr<automaton> clone() const override;
  [[nodiscard]] process_id self() const override { return writer_id(0); }

  void invoke_write(netout& net, value_t v) override;
  [[nodiscard]] bool write_in_progress() const override { return pending_; }
  [[nodiscard]] std::uint64_t writes_completed() const override {
    return completed_;
  }
  [[nodiscard]] int last_write_rounds() const override { return 1; }
  void seed_writer(const register_snapshot& migrated) override;

 private:
  system_config cfg_;
  ts_t ts_{0};
  bool pending_{false};
  std::unordered_set<std::uint32_t> acks_{};
  std::uint64_t completed_{0};
  std::uint64_t rcounter_{0};
};

/// Two-round reader: query phase then write-back phase.
class abd_reader final : public automaton, public reader_iface {
 public:
  abd_reader(system_config cfg, std::uint32_t index);

  void on_message(netout& net, const process_id& from,
                  const message& m) override;
  [[nodiscard]] std::unique_ptr<automaton> clone() const override;
  [[nodiscard]] process_id self() const override {
    return reader_id(index_);
  }

  void invoke_read(netout& net) override;
  [[nodiscard]] bool read_in_progress() const override {
    return phase_ != phase::idle;
  }
  [[nodiscard]] const std::optional<read_result>& last_read() const override {
    return last_result_;
  }
  [[nodiscard]] std::uint64_t reads_completed() const override {
    return completed_;
  }

 private:
  enum class phase { idle, query, write_back };

  system_config cfg_;
  std::uint32_t index_;
  phase phase_{phase::idle};
  std::uint64_t rcounter_{0};
  wts_t best_ts_{};
  value_t best_val_{};
  std::unordered_set<std::uint32_t> acks_{};
  std::optional<read_result> last_result_{};
  std::uint64_t completed_{0};
};

class abd_protocol final : public protocol {
 public:
  [[nodiscard]] std::string name() const override { return "abd"; }
  [[nodiscard]] bool feasible(const system_config& cfg) const override {
    return majority_feasible(cfg.S(), cfg.t());
  }
  [[nodiscard]] int read_rounds() const override { return 2; }
  [[nodiscard]] int write_rounds() const override { return 1; }
  [[nodiscard]] std::unique_ptr<automaton> make_writer(
      const system_config& cfg, std::uint32_t index,
      object_id obj = k_default_object) const override;
  [[nodiscard]] std::unique_ptr<automaton> make_reader(
      const system_config& cfg, std::uint32_t index,
      object_id obj = k_default_object) const override;
  [[nodiscard]] std::unique_ptr<automaton> make_server(
      const system_config& cfg, std::uint32_t index,
      object_id obj = k_default_object) const override;
};

}  // namespace fastreg
