// Load-triggered automatic resharding: the hot-shard plan builder as a
// pure function, and the auto_resharder closing the loop on the simulator
// (a Zipf-style hot key gets its shard promoted to fast_swmr without an
// operator, mid-traffic, with per-key atomicity intact).
#include <gtest/gtest.h>

#include <functional>

#include "reconfig/control.h"
#include "reconfig/load_monitor.h"
#include "store/sim_store.h"

namespace fastreg::reconfig {
namespace {

store::store_config make_cfg(std::vector<std::string> protos,
                             std::uint32_t num_shards, std::uint32_t S = 7,
                             std::uint32_t R = 2) {
  store::store_config cfg;
  cfg.base.servers = S;
  cfg.base.t_failures = 1;
  cfg.base.readers = R;
  cfg.base.writers = 1;
  cfg.num_shards = num_shards;
  cfg.shard_protocols = std::move(protos);
  return cfg;
}

// ------------------------------------------------- plan builder (pure) --

TEST(HotShardPlan, PromotesTheHotShardOnly) {
  store::shard_map cur(make_cfg({"abd"}, 4));
  const auto plan =
      build_hot_shard_plan(cur, {900, 40, 30, 30}, load_monitor_options{});
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->num_shards, 4u);
  const std::vector<std::string> want = {"fast_swmr", "abd", "abd", "abd"};
  EXPECT_EQ(plan->shard_protocols, want);
}

TEST(HotShardPlan, QuietWindowProposesNothing) {
  store::shard_map cur(make_cfg({"abd"}, 4));
  EXPECT_FALSE(build_hot_shard_plan(cur, {50, 1, 1, 1},
                                    load_monitor_options{})
                   .has_value());  // below min_total_ops
}

TEST(HotShardPlan, BalancedLoadProposesNothing) {
  store::shard_map cur(make_cfg({"abd"}, 4));
  EXPECT_FALSE(build_hot_shard_plan(cur, {250, 250, 250, 250},
                                    load_monitor_options{})
                   .has_value());  // nobody reaches hot_factor x fair share
}

TEST(HotShardPlan, AlreadyFastShardProposesNothing) {
  store::shard_map cur(make_cfg({"fast_swmr"}, 2));
  EXPECT_FALSE(build_hot_shard_plan(cur, {900, 100},
                                    load_monitor_options{})
                   .has_value());
}

TEST(HotShardPlan, InfeasibleFastProtocolProposesNothing) {
  // S = 4, t = 1, R = 2: fast_swmr needs S > (R+2)t = 4, so promotion
  // would not validate; the monitor must stay quiet instead of wedging
  // the coordinator with an invalid plan.
  store::shard_map cur(make_cfg({"abd"}, 2, /*S=*/4));
  EXPECT_FALSE(build_hot_shard_plan(cur, {900, 100},
                                    load_monitor_options{})
                   .has_value());
}

// --------------------------------------------- demotion with hysteresis --

load_monitor_options demote_opts() {
  load_monitor_options opt;
  opt.demote_protocol = "abd";
  opt.demote_after = 3;
  return opt;
}

TEST(Demotion, RequiresKConsecutiveCoolWindows) {
  // Shard 0 runs the fast protocol but has gone cold. Streak below the
  // threshold: no plan; at the threshold: demoted back to abd.
  store::shard_map cur(make_cfg({"fast_swmr", "abd", "abd", "abd"}, 4));
  const auto opt = demote_opts();
  const std::vector<std::uint64_t> totals = {10, 330, 330, 330};
  const std::vector<std::uint32_t> immature = {2, 0, 0, 0};
  EXPECT_FALSE(build_hot_shard_plan(cur, totals, opt, &immature)
                   .has_value());
  const std::vector<std::uint32_t> mature = {3, 0, 0, 0};
  const auto plan = build_hot_shard_plan(cur, totals, opt, &mature);
  ASSERT_TRUE(plan.has_value());
  const std::vector<std::string> want = {"abd", "abd", "abd", "abd"};
  EXPECT_EQ(plan->shard_protocols, want);
}

TEST(Demotion, HotShardNeverDemotedEvenWithStaleStreak) {
  // Defensive: a hot window resets the streak, but the pure function
  // must also refuse stale streak input that claims a currently-hot
  // shard is cool.
  store::shard_map cur(make_cfg({"fast_swmr", "abd", "abd", "abd"}, 4));
  const std::vector<std::uint64_t> totals = {700, 100, 100, 100};
  const std::vector<std::uint32_t> streaks = {5, 0, 0, 0};
  EXPECT_FALSE(build_hot_shard_plan(cur, totals, demote_opts(), &streaks)
                   .has_value());
}

TEST(Demotion, StreaksExtendOnCoolResetOnWarm) {
  store::shard_map cur(make_cfg({"fast_swmr", "abd", "abd", "abd"}, 4));
  const auto opt = demote_opts();
  std::vector<std::uint32_t> streaks;
  // Cool window (shard 0 at ~1% share, fair share 25%): streak grows.
  update_cool_streaks(cur, {10, 330, 330, 330}, opt, streaks);
  update_cool_streaks(cur, {10, 330, 330, 330}, opt, streaks);
  EXPECT_EQ(streaks[0], 2u);
  // One warm window (50% share > cool watermark) resets it -- the
  // hysteresis that prevents promote/demote churn at the boundary.
  update_cool_streaks(cur, {500, 170, 170, 160}, opt, streaks);
  EXPECT_EQ(streaks[0], 0u);
  // Non-fast shards never accumulate a streak.
  update_cool_streaks(cur, {10, 990, 0, 0}, opt, streaks);
  EXPECT_EQ(streaks[1], 0u);
  // A window below the noise guard leaves streaks untouched.
  update_cool_streaks(cur, {0, 50, 50, 50}, opt, streaks);
  EXPECT_EQ(streaks[0], 1u);
}

// ------------------------------------------- auto-resharder, end to end --

TEST(SimAutoReshard, HotShardPromotedWithoutAnOperator) {
  store::sim_store s(make_cfg({"abd"}, 4));
  rng r(123);
  // Give every key initial state so discovery has something to migrate.
  const std::vector<std::string> keys = {"hot", "c1", "c2", "c3"};
  std::uint64_t seq = 0;
  for (const auto& k : keys) s.invoke_put(0, k, k + std::to_string(++seq));
  std::uint64_t guard = 0;
  while (!s.idle()) {
    ASSERT_LT(++guard, 1'000'000u);
    s.run_random(r, 1);
  }

  sim_control ctl(s);
  auto_resharder::options opt;
  // One sim step delivers one message and an op costs ~20 of them, so a
  // 400-step window holds enough ops to clear the noise guard.
  opt.sample_every = 400;
  opt.monitor.min_total_ops = 64;
  auto_resharder ar(ctl, s.proto().maps()->source(), opt);

  // Heavily skewed closed loop: ~7 of 8 ops hit "hot". The monitor must
  // notice, reshard once, and the migration must drain mid-traffic.
  std::uint32_t puts_left = 300;
  std::vector<std::uint32_t> gets_left(2, 300);
  guard = 0;
  for (;;) {
    ASSERT_LT(++guard, 2'000'000u);
    ar.step();
    const auto pick = [&]() -> const std::string& {
      return r.below(8) < 7 ? keys[0] : keys[1 + r.below(3)];
    };
    if (puts_left > 0 && !s.writer_client(0).op_in_progress()) {
      --puts_left;
      s.invoke_put(0, pick(), "v" + std::to_string(++seq));
    }
    for (std::uint32_t i = 0; i < 2; ++i) {
      if (gets_left[i] > 0 && !s.reader_client(i).op_in_progress()) {
        --gets_left[i];
        s.invoke_get(i, pick());
      }
    }
    if (!s.world().in_transit().empty()) {
      s.run_random(r, 1);
    } else if (puts_left == 0 && gets_left[0] == 0 && gets_left[1] == 0 &&
               !ar.resharding() && s.idle()) {
      break;
    }
  }
  EXPECT_GE(ar.reshards_started(), 1u);
  EXPECT_FALSE(ar.resharding());
  EXPECT_GE(s.proto().maps()->epoch(), 1u);
  // The hot key's shard now runs the fast protocol...
  const auto cur = s.shards();
  EXPECT_EQ(cur->protocol_for_object(store::key_object_id("hot")).name(),
            "fast_swmr");
  // ...and serves one-round reads.
  s.invoke_get(0, "hot");
  guard = 0;
  while (!s.idle()) {
    ASSERT_LT(++guard, 1'000'000u);
    s.run_random(r, 1);
  }
  const auto reads = s.histories().all().at("hot").completed_reads();
  ASSERT_FALSE(reads.empty());
  EXPECT_EQ(reads.back().rounds, 1);
  EXPECT_TRUE(s.histories().all_complete());
  const auto res = s.histories().verify();
  EXPECT_TRUE(res.ok) << res.error;
}

TEST(SimAutoReshard, PromotedShardCoolsAndDemotesWithoutChurn) {
  store::sim_store s(make_cfg({"abd"}, 4));
  rng r(321);

  // One representative key per shard, so cooling the promoted shard is
  // unambiguous (no cold key accidentally keeps it warm).
  std::vector<std::string> keys(4);
  std::vector<bool> have(4, false);
  std::uint32_t found = 0;
  for (int i = 0; found < 4; ++i) {
    const std::string k = "k" + std::to_string(i);
    const auto shard = s.shards()->shard_of_key(k);
    if (!have[shard]) {
      have[shard] = true;
      keys[shard] = k;
      ++found;
    }
  }
  const std::string hot = keys[0];

  std::uint64_t seq = 0;
  for (const auto& k : keys) s.invoke_put(0, k, k + std::to_string(++seq));
  std::uint64_t guard = 0;
  while (!s.idle()) {
    ASSERT_LT(++guard, 1'000'000u);
    s.run_random(r, 1);
  }

  sim_control ctl(s);
  auto_resharder::options opt;
  opt.sample_every = 400;
  opt.monitor.min_total_ops = 64;
  // Hi watermark at 75% share: the skewed phase (~87% on the hot key)
  // clears it, while random fluctuation of the 3-way cold traffic
  // (~33% per shard) cannot -- otherwise a lucky window would promote a
  // cold shard and the churn assertion below would measure noise.
  opt.monitor.hot_factor = 3.0;
  opt.monitor.demote_protocol = "abd";
  opt.monitor.demote_after = 3;
  auto_resharder ar(ctl, s.proto().maps()->source(), opt);

  // Drives closed-loop traffic with `pick` until `until` holds (checked
  // between steps) -- the promote, cool-down and steady phases share the
  // loop shape of the promotion test above.
  const auto drive = [&](const std::function<const std::string&()>& pick,
                         const std::function<bool()>& until,
                         std::uint64_t max_iters) {
    std::uint64_t iters = 0;
    for (;;) {
      if (++iters > max_iters) return false;
      ar.step();
      if (!ar.resharding() && until()) return true;
      if (!s.writer_client(0).op_in_progress()) {
        s.invoke_put(0, pick(), "v" + std::to_string(++seq));
      }
      for (std::uint32_t i = 0; i < 2; ++i) {
        if (!s.reader_client(i).op_in_progress()) s.invoke_get(i, pick());
      }
      if (!s.world().in_transit().empty()) s.run_random(r, 1);
    }
  };

  // Phase 1 -- skewed load: ~7 of 8 ops hit the hot key; the monitor
  // promotes its shard.
  const auto pick_hot = [&]() -> const std::string& {
    return r.below(8) < 7 ? hot : keys[1 + r.below(3)];
  };
  ASSERT_TRUE(drive(pick_hot, [&] { return ar.reshards_started() == 1; },
                    2'000'000));
  EXPECT_EQ(
      s.shards()->protocol_for_object(store::key_object_id(hot)).name(),
      "fast_swmr");

  // Phase 2 -- the hot key goes cold (traffic moves to the other
  // shards). Only after demote_after consecutive cool windows may the
  // second reshard fire, demoting the shard back to abd.
  const auto pick_cold = [&]() -> const std::string& {
    return keys[1 + r.below(3)];
  };
  ASSERT_TRUE(drive(pick_cold, [&] { return ar.reshards_started() == 2; },
                    4'000'000));
  EXPECT_EQ(
      s.shards()->protocol_for_object(store::key_object_id(hot)).name(),
      "abd");
  EXPECT_GE(s.proto().maps()->epoch(), 2u);

  // Phase 3 -- hysteresis against churn: several more cool windows of
  // the same cold traffic must NOT trigger a third reshard (the shard is
  // already on its base protocol).
  std::uint32_t cold_ops = 600;
  EXPECT_TRUE(drive(pick_cold, [&] { return --cold_ops == 0; },
                    4'000'000));
  EXPECT_EQ(ar.reshards_started(), 2u);

  // Quiesce and verify every per-key history across all three epochs.
  std::uint64_t drain_guard = 0;
  while (!s.idle()) {
    ASSERT_LT(++drain_guard, 2'000'000u);
    s.run_random(r, 1);
  }
  EXPECT_TRUE(s.histories().all_complete());
  const auto res = s.histories().verify();
  EXPECT_TRUE(res.ok) << res.error;
}

}  // namespace
}  // namespace fastreg::reconfig
