#include "store/sim_store.h"

#include "common/check.h"

namespace fastreg::store {

sim_store::sim_store(store_config cfg)
    : proto_(std::move(cfg)), world_(proto_.config().base) {
  world_.install(proto_);
}

client& sim_store::client_at(const process_id& p) {
  auto* c = as_store_client(world_.get(p));
  FASTREG_ENSURES(c != nullptr);
  return *c;
}

client& sim_store::reader_client(std::uint32_t i) {
  return client_at(reader_id(i));
}

client& sim_store::writer_client(std::uint32_t i) {
  return client_at(writer_id(i));
}

server& sim_store::server_at(std::uint32_t i) {
  auto* s = dynamic_cast<server*>(world_.get(server_id(i)));
  FASTREG_ENSURES(s != nullptr);
  return *s;
}

server& sim_store::restart_server(std::uint32_t i) {
  // make_server consults the protocol's CURRENT map (maps_->get()), so a
  // rejoin after a reshard fences against the latest epoch, not the
  // deployment-time one.
  world_.restart(server_id(i),
                 proto_.make_server(proto_.config().base, i));
  return server_at(i);
}

void sim_store::record_invoke(const process_id& p, const std::string& key,
                              bool is_put, const value_t& v) {
  open_[p][key] =
      hist_.for_key(key).begin_op(p, is_put, world_.now(), v);
}

void sim_store::invoke_get(std::uint32_t reader_index,
                           const std::string& key) {
  const store_op op{key, /*is_put=*/false, {}};
  invoke_ops(reader_id(reader_index), std::span<const store_op>(&op, 1));
}

void sim_store::invoke_put(std::uint32_t writer_index, const std::string& key,
                           value_t v) {
  const store_op op{key, /*is_put=*/true, std::move(v)};
  invoke_ops(writer_id(writer_index), std::span<const store_op>(&op, 1));
}

void sim_store::invoke_ops(const process_id& p,
                           std::span<const store_op> ops) {
  auto& c = client_at(p);
  world_.invoke_step(p, [&](netout& net) {
    for (const auto& op : ops) {
      record_invoke(p, op.key, op.is_put, op.val);
      if (op.is_put) {
        c.begin_put(op.key, op.val);
      } else {
        c.begin_get(op.key);
      }
    }
    c.flush(net);
  });
}

void sim_store::tap_client(const process_id& p) { taps_[p]; }

void sim_store::untap_client(const process_id& p) { taps_.erase(p); }

std::vector<store_result> sim_store::take_tapped(const process_id& p) {
  const auto it = taps_.find(p);
  if (it == taps_.end()) return {};
  return std::exchange(it->second, {});
}

void sim_store::drain_completions() {
  const auto& cfg = proto_.config().base;
  for (std::uint32_t role = 0; role < 2; ++role) {
    const bool writers = role == 0;
    const std::uint32_t count = writers ? cfg.W() : cfg.R();
    for (std::uint32_t i = 0; i < count; ++i) {
      const process_id p = writers ? writer_id(i) : reader_id(i);
      for (auto& res : client_at(p).take_completions()) {
        auto& open_for_p = open_[p];
        const auto it = open_for_p.find(res.key);
        FASTREG_CHECK(it != open_for_p.end());
        auto& h = hist_.for_key(res.key);
        if (res.is_put) {
          h.complete_write(it->second, world_.now(), res.rounds);
        } else {
          h.complete_read(it->second, world_.now(), res.ts, res.wid,
                          res.val, res.rounds);
        }
        open_for_p.erase(it);
        const auto tap = taps_.find(p);
        if (tap != taps_.end()) tap->second.push_back(std::move(res));
      }
    }
  }
}

std::uint64_t sim_store::run_random(rng& r, std::uint64_t max_steps) {
  std::uint64_t steps = 0;
  while (steps < max_steps && world_.run_random(r, 1) == 1) {
    ++steps;
    drain_completions();
  }
  return steps;
}

std::uint64_t sim_store::run_timed(rng& r, sim::delay_model& delays,
                                   std::uint64_t max_steps) {
  std::uint64_t steps = 0;
  while (steps < max_steps && world_.run_timed(r, delays, 1) == 1) {
    ++steps;
    drain_completions();
  }
  return steps;
}

std::string sim_store::scrape(std::uint32_t server_index, rng& r,
                              std::uint64_t max_steps) {
  const process_id p = reader_id(0);
  auto& c = client_at(p);
  world_.invoke_step(p, [&](netout& net) {
    c.begin_stats(server_index);
    c.flush(net);
  });
  std::uint64_t steps = 0;
  while (!c.stats_ready() && steps < max_steps &&
         world_.run_random(r, 1) == 1) {
    ++steps;
    drain_completions();  // a scrape may interleave with live traffic
  }
  return c.take_stats();
}

bool sim_store::idle() {
  if (!world_.in_transit().empty()) return false;
  const auto& cfg = proto_.config().base;
  for (std::uint32_t i = 0; i < cfg.W(); ++i) {
    if (writer_client(i).op_in_progress()) return false;
  }
  for (std::uint32_t i = 0; i < cfg.R(); ++i) {
    if (reader_client(i).op_in_progress()) return false;
  }
  return true;
}

}  // namespace fastreg::store
