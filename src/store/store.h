// store_protocol: presents the whole multi-object store as one `protocol`
// so the existing deployment machinery -- sim::world::install and
// net::cluster -- hosts it unchanged. make_writer/make_reader yield store
// client front-ends, make_server yields the multiplexing store server.
//
// All participants share one reconfig::versioned_map: clients hold its
// pull-side (map_source) so they can refetch the routing table when a
// server reply reveals a newer epoch; the reconfiguration coordinator
// installs new epochs into it (after installing them on every server).
#pragma once

#include <memory>

#include "reconfig/versioned_map.h"
#include "store/client.h"
#include "store/server.h"
#include "store/shard_map.h"

namespace fastreg::store {

class store_protocol final : public protocol {
 public:
  explicit store_protocol(store_config cfg)
      : initial_(std::make_shared<const shard_map>(std::move(cfg))),
        maps_(std::make_shared<reconfig::versioned_map>(initial_)) {}

  [[nodiscard]] std::string name() const override { return "store"; }

  /// The store is usable iff every shard protocol is.
  [[nodiscard]] bool feasible(const system_config& cfg) const override;

  /// Worst case across shards: a mix of fast and two-round shards is a
  /// two-round store as far as upper bounds go.
  [[nodiscard]] int read_rounds() const override;
  [[nodiscard]] int write_rounds() const override;

  [[nodiscard]] std::unique_ptr<automaton> make_writer(
      const system_config& cfg, std::uint32_t index,
      object_id obj = k_default_object) const override;
  [[nodiscard]] std::unique_ptr<automaton> make_reader(
      const system_config& cfg, std::uint32_t index,
      object_id obj = k_default_object) const override;
  [[nodiscard]] std::unique_ptr<automaton> make_server(
      const system_config& cfg, std::uint32_t index,
      object_id obj = k_default_object) const override;

  /// The latest installed shard map (epoch 0's until a reconfiguration).
  [[nodiscard]] std::shared_ptr<const shard_map> shards() const {
    return maps_->get();
  }
  [[nodiscard]] const std::shared_ptr<reconfig::versioned_map>& maps() const {
    return maps_;
  }
  /// The deployment-time (epoch 0) configuration. Its base (S, t, b, R,
  /// W) is fixed for the deployment's lifetime; num_shards and the
  /// protocol list reflect epoch 0 only -- consult shards() for the
  /// current routing.
  [[nodiscard]] const store_config& config() const {
    return initial_->config();
  }

 private:
  std::shared_ptr<const shard_map> initial_;
  std::shared_ptr<reconfig::versioned_map> maps_;
};

}  // namespace fastreg::store
