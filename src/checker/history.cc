#include "checker/history.h"

#include <algorithm>

#include "common/check.h"

namespace fastreg::checker {

std::size_t history::begin_op(const process_id& client, bool is_write,
                              std::uint64_t invoke_time,
                              value_t written_value) {
  // Well-formedness: a client has at most one outstanding op.
  if (auto it = last_op_.find(client); it != last_op_.end()) {
    FASTREG_EXPECTS(ops_[it->second].response_time.has_value());
  }
  last_op_[client] = ops_.size();
  op_record rec;
  rec.client = client;
  rec.is_write = is_write;
  rec.invoke_time = invoke_time;
  rec.val = std::move(written_value);
  ops_.push_back(std::move(rec));
  return ops_.size() - 1;
}

void history::complete_read(std::size_t index, std::uint64_t response_time,
                            ts_t ts, std::int32_t wid, value_t returned,
                            int rounds) {
  FASTREG_EXPECTS(index < ops_.size());
  auto& op = ops_[index];
  FASTREG_EXPECTS(!op.is_write && !op.response_time.has_value());
  FASTREG_EXPECTS(response_time >= op.invoke_time);
  op.response_time = response_time;
  op.ts = ts;
  op.wid = wid;
  op.val = std::move(returned);
  op.rounds = rounds;
}

void history::complete_write(std::size_t index, std::uint64_t response_time,
                             int rounds) {
  FASTREG_EXPECTS(index < ops_.size());
  auto& op = ops_[index];
  FASTREG_EXPECTS(op.is_write && !op.response_time.has_value());
  FASTREG_EXPECTS(response_time >= op.invoke_time);
  op.response_time = response_time;
  op.rounds = rounds;
}

std::vector<op_record> history::writes_by(const process_id& client) const {
  std::vector<op_record> out;
  for (const auto& op : ops_) {
    if (op.is_write && op.client == client && op.response_time) {
      out.push_back(op);
    }
  }
  return out;
}

std::vector<op_record> history::all_writes() const {
  std::vector<op_record> out;
  for (const auto& op : ops_) {
    if (op.is_write) out.push_back(op);
  }
  return out;
}

std::vector<op_record> history::completed_reads() const {
  std::vector<op_record> out;
  for (const auto& op : ops_) {
    if (!op.is_write && op.response_time) out.push_back(op);
  }
  return out;
}

std::string history::dump() const {
  std::string out;
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    const auto& op = ops_[i];
    out += std::to_string(i) + ": " + to_string(op.client);
    out += op.is_write ? " write(" : " read -> (";
    out += "ts=" + std::to_string(op.ts) + ", val=\"" + op.val + "\")";
    out += " [" + std::to_string(op.invoke_time) + ", ";
    out += op.response_time ? std::to_string(*op.response_time) : "inf";
    out += ") rounds=" + std::to_string(op.rounds) + "\n";
  }
  return out;
}

}  // namespace fastreg::checker
