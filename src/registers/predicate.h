// The fast-read predicate at the heart of the paper's algorithms.
//
// Figure 2, line 19 (crash model, b = 0):
//   exists a in [1, R+1] and MS subset of maxTSmsg such that
//     |MS| >= S - a*t   and   |intersection of m.seen over MS| >= a
//
// Figure 5, line 19 (arbitrary failures):
//   |MS| >= S - a*t - (a-1)*b, same intersection condition.
//
// If the predicate holds the read returns maxTS (the latest value); else it
// returns maxTS - 1 (the previous value). Intuition (Section 4): a reader
// may return the latest timestamp only if enough servers have shown it to
// enough clients that every subsequent reader -- which may miss t servers
// per hop plus b liars -- is still guaranteed to see it with one a-step
// deeper evidence.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/seen_set.h"
#include "registers/message.h"

namespace fastreg {

/// Evaluates the predicate over the seen sets of the messages that carry
/// maxTS. `maxts_seen` holds one seen_set per message in maxTSmsg.
///
/// Semantics follow the pseudocode exactly, including the degenerate case:
/// when S - a*t - (a-1)*b <= 0 the empty MS qualifies (the intersection
/// over an empty family is the universe), so the predicate is trivially
/// true. That degenerate case can only arise outside the feasible region,
/// where the lower-bound constructions exploit exactly this kind of
/// over-eagerness.
[[nodiscard]] bool fast_read_predicate(std::span<const seen_set> maxts_seen,
                                       std::uint32_t S, std::uint32_t t,
                                       std::uint32_t b, std::uint32_t R);

/// Convenience overload extracting seen sets from readack messages.
[[nodiscard]] bool fast_read_predicate(std::span<const message> maxts_msgs,
                                       std::uint32_t S, std::uint32_t t,
                                       std::uint32_t b, std::uint32_t R);

/// The largest witness `a` for which the predicate holds, or 0 if it fails
/// for every a in [1, R+1]. Exposed for white-box tests and diagnostics.
[[nodiscard]] std::uint32_t fast_read_predicate_witness(
    std::span<const seen_set> maxts_seen, std::uint32_t S, std::uint32_t t,
    std::uint32_t b, std::uint32_t R);

}  // namespace fastreg
