// Unit tests: ids, seen sets, serialization, deterministic RNG.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/seen_set.h"
#include "common/serialization.h"
#include "common/types.h"

namespace fastreg {
namespace {

TEST(ProcessId, RolesAreDisjoint) {
  EXPECT_NE(writer_id(0), reader_id(0));
  EXPECT_NE(reader_id(0), server_id(0));
  EXPECT_NE(writer_id(0), server_id(0));
  EXPECT_EQ(reader_id(3), reader_id(3));
}

TEST(ProcessId, ClientSlotMatchesPaperPidFunction) {
  // Figure 2: pid(w) = 0, pid(r_i) = i.
  EXPECT_EQ(client_slot(writer_id(0)), 0u);
  EXPECT_EQ(client_slot(reader_id(0)), 1u);  // paper's r_1
  EXPECT_EQ(client_slot(reader_id(9)), 10u);
}

TEST(ProcessId, ToStringUsesPaperNames) {
  EXPECT_EQ(to_string(writer_id(0)), "w");
  EXPECT_EQ(to_string(reader_id(0)), "r1");
  EXPECT_EQ(to_string(server_id(4)), "s5");
}

TEST(SeenSet, InsertAndContains) {
  seen_set s;
  EXPECT_TRUE(s.empty());
  s.insert(writer_id(0));
  s.insert(reader_id(2));
  EXPECT_TRUE(s.contains(writer_id(0)));
  EXPECT_TRUE(s.contains(reader_id(2)));
  EXPECT_FALSE(s.contains(reader_id(0)));
  EXPECT_EQ(s.size(), 2u);
}

TEST(SeenSet, ClearResetsToEmpty) {
  seen_set s;
  s.insert(reader_id(0));
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.contains(reader_id(0)));
}

TEST(SeenSet, IntersectAndUnite) {
  seen_set a;
  a.insert(writer_id(0));
  a.insert(reader_id(0));
  seen_set b;
  b.insert(reader_id(0));
  b.insert(reader_id(1));
  const seen_set i = a.intersect(b);
  EXPECT_EQ(i.size(), 1u);
  EXPECT_TRUE(i.contains(reader_id(0)));
  const seen_set u = a.unite(b);
  EXPECT_EQ(u.size(), 3u);
}

TEST(SeenSet, UniverseContainsEveryClient) {
  const seen_set u = seen_universe();
  EXPECT_TRUE(u.contains(writer_id(0)));
  EXPECT_TRUE(u.contains(reader_id(61)));
}

TEST(SeenSet, IdempotentInsert) {
  seen_set s;
  s.insert(reader_id(5));
  s.insert(reader_id(5));
  EXPECT_EQ(s.size(), 1u);
}

TEST(Serialization, RoundTripsIntegers) {
  byte_writer w;
  w.put_u8(0xab);
  w.put_u32(0xdeadbeef);
  w.put_u64(0x0123456789abcdefull);
  w.put_i64(-42);
  w.put_i32(-7);
  byte_reader r(std::span<const std::uint8_t>(w.bytes()));
  EXPECT_EQ(r.get_u8(), 0xab);
  EXPECT_EQ(r.get_u32(), 0xdeadbeefu);
  EXPECT_EQ(r.get_u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.get_i64(), -42);
  EXPECT_EQ(r.get_i32(), -7);
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialization, RoundTripsStringsAndBytes) {
  byte_writer w;
  w.put_string("hello");
  w.put_string("");
  const std::vector<std::uint8_t> blob = {1, 2, 3};
  w.put_bytes(std::span<const std::uint8_t>(blob));
  byte_reader r(std::span<const std::uint8_t>(w.bytes()));
  EXPECT_EQ(r.get_string(), "hello");
  EXPECT_EQ(r.get_string(), "");
  EXPECT_EQ(r.get_bytes(), blob);
}

TEST(Serialization, TruncationYieldsNulloptNotCrash) {
  byte_writer w;
  w.put_u64(7);
  auto bytes = w.bytes();
  bytes.pop_back();
  byte_reader r{std::span<const std::uint8_t>(bytes)};
  EXPECT_EQ(r.get_u64(), std::nullopt);
}

TEST(Serialization, StringLengthBeyondBufferRejected) {
  byte_writer w;
  w.put_u32(1000);  // claims 1000 bytes, provides none
  byte_reader r(std::span<const std::uint8_t>(w.bytes()));
  EXPECT_EQ(r.get_string(), std::nullopt);
}

TEST(Rng, DeterministicForSameSeed) {
  rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowRespectsBound) {
  rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.below(17), 17u);
  }
  EXPECT_EQ(r.below(0), 0u);
  EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  rng r(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01InUnitInterval) {
  rng r(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

}  // namespace
}  // namespace fastreg
