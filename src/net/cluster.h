// An in-process TCP deployment of a full protocol instance: S server
// nodes plus the client side, over real localhost sockets. Used by the
// examples, the TCP latency bench (E11), the store front-end, and the
// end-to-end socket tests.
//
// Client topology is selectable (cluster_options):
//  * per-node (default): every reader and writer is its own node with its
//    own reactor thread -- one OS thread per client, the historical
//    layout, right for latency measurements of a handful of clients.
//  * hub: ALL readers and writers are actors multiplexed on ONE hub node
//    whose reactor pool (hub_reactors) carries every client connection --
//    the fan-in layout the pipelined store front-end uses to drive
//    thousands of clients from a few threads.
// Code that addresses clients by process_id through client_node() /
// client_actor() works unchanged under either topology.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "checker/history.h"
#include "common/check.h"
#include "net/node.h"
#include "registers/automaton.h"

namespace fastreg::net {

struct cluster_options {
  /// Reactor threads per server node.
  std::uint32_t server_reactors{1};
  /// Host every reader/writer as an actor on one hub node instead of a
  /// node (and thread) per client.
  bool client_hub{false};
  /// Reactor threads on the hub node (client_hub only).
  std::uint32_t hub_reactors{1};
};

class cluster {
 public:
  /// Builds all nodes. Servers bind ephemeral ports immediately; the
  /// resulting address book is shared with every node. `nopt` (the
  /// outbound flush policy) applies to every node; the default comes
  /// from FASTREG_BATCH_WINDOW_US / FASTREG_FLUSH_BYTES (immediate flush
  /// when unset). `copt` picks the client topology and reactor counts.
  cluster(system_config cfg, const protocol& proto,
          node_options nopt = node_options::from_env(),
          cluster_options copt = {});
  ~cluster();

  cluster(const cluster&) = delete;
  cluster& operator=(const cluster&) = delete;

  void start();
  void stop();

  /// Tears server i's node down (closing its listener and connections;
  /// peers observe HUP and reconnect lazily) and rebuilds it on the SAME
  /// port with a freshly constructed automaton from the deployment's
  /// protocol -- which replays persistent state when the protocol is so
  /// configured. Started immediately when the cluster is running. Safe
  /// for a node that was stop()ed earlier (the crash-then-restart
  /// schedule); do not call concurrently with start()/stop().
  void restart_server(std::uint32_t i);

  /// Per-client-node accessors (per-node topology only; a hub cluster
  /// has no per-client nodes -- use client_node()/client_actor()).
  [[nodiscard]] node& writer(std::uint32_t i = 0) {
    FASTREG_EXPECTS(!copt_.client_hub);
    return *writers_[i];
  }
  [[nodiscard]] node& reader(std::uint32_t i) {
    FASTREG_EXPECTS(!copt_.client_hub);
    return *readers_[i];
  }
  [[nodiscard]] node& server(std::uint32_t i) { return *servers_[i]; }

  /// The node hosting client `pid` and the actor index of `pid` on it:
  /// {that client's own node, 0} per-node, {the hub, its slot} under a
  /// hub. Together they address any client under either topology via
  /// node's actor-indexed API.
  [[nodiscard]] node& client_node(const process_id& pid);
  [[nodiscard]] std::size_t client_actor(const process_id& pid) const;
  [[nodiscard]] bool client_hub() const { return copt_.client_hub; }
  /// The hub node (hub topology only).
  [[nodiscard]] node& hub() {
    FASTREG_EXPECTS(copt_.client_hub);
    return *hub_;
  }

  [[nodiscard]] const address_book& book() const { return *book_; }
  [[nodiscard]] const system_config& config() const { return cfg_; }

  /// Merged history of all client nodes (timestamps share the steady
  /// clock, so cross-node ordering is meaningful on one machine).
  [[nodiscard]] checker::history gather_history() const;

 private:
  system_config cfg_;
  cluster_options copt_;
  /// For restart_server: the deployment's protocol (owned by the caller,
  /// outlives the cluster -- same lifetime contract as the constructor
  /// reference) and the node options every server was built with.
  const protocol* proto_;
  node_options nopt_;
  std::shared_ptr<address_book> book_;
  std::vector<std::unique_ptr<node>> servers_;
  std::vector<std::unique_ptr<node>> readers_;
  std::vector<std::unique_ptr<node>> writers_;
  std::unique_ptr<node> hub_;
  bool started_{false};
};

}  // namespace fastreg::net
