// Per-key operation histories: the store's drivers record every get/put
// into the history of the key it touched, so checker::atomicity verifies
// each object independently (atomicity is closed under composition for
// independent registers, so per-object checks imply store-wide
// correctness).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "checker/atomicity.h"
#include "checker/history.h"

namespace fastreg::store {

class store_histories {
 public:
  /// History for `key`, created empty on first touch.
  [[nodiscard]] checker::history& for_key(const std::string& key) {
    return by_key_[key];
  }

  /// Ordered by key, so iteration (and failure reports) are deterministic.
  [[nodiscard]] const std::map<std::string, checker::history>& all() const {
    return by_key_;
  }

  [[nodiscard]] std::size_t key_count() const { return by_key_.size(); }
  [[nodiscard]] std::size_t total_ops() const;
  [[nodiscard]] bool all_complete() const;

  /// Runs the per-object checker on every key's history: the exact
  /// single-writer check when `multi_writer` is false, the general
  /// linearizability search (exponential; keep per-key histories small)
  /// otherwise. Returns the first failure annotated with its key.
  [[nodiscard]] checker::check_result verify(bool multi_writer = false) const;

 private:
  std::map<std::string, checker::history> by_key_;
};

}  // namespace fastreg::store
