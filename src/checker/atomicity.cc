#include "checker/atomicity.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "common/check.h"

namespace fastreg::checker {
namespace {

check_result fail(std::string msg) { return {false, std::move(msg)}; }

/// Write index k for every value; val_0 (bottom) is the empty string at
/// ts 0. Returns nullopt and sets `err` when values are not unique.
std::optional<std::map<value_t, std::size_t>> build_value_index(
    const std::vector<op_record>& writes, std::string& err) {
  std::map<value_t, std::size_t> index;
  index[k_bottom_value] = 0;
  for (std::size_t k = 0; k < writes.size(); ++k) {
    const auto [it, inserted] = index.emplace(writes[k].val, k + 1);
    if (!inserted) {
      err = "written values are not unique: \"" + writes[k].val + "\"";
      return std::nullopt;
    }
  }
  return index;
}

}  // namespace

namespace detail {

/// Shared core of the atomic and regular SWMR checks.
check_result check_swmr(const history& h, bool require_condition4) {
  // Collect the single writer's writes in invocation order. The paper's
  // single-writer model has sequential writes; verify that.
  std::vector<op_record> writes = h.all_writes();
  for (const auto& w : writes) {
    if (w.client != writer_id(0)) {
      return fail("SWMR checker: writes from more than one writer");
    }
  }
  std::sort(writes.begin(), writes.end(),
            [](const op_record& a, const op_record& b) {
              return a.invoke_time < b.invoke_time;
            });
  for (std::size_t i = 0; i + 1 < writes.size(); ++i) {
    if (!writes[i].response_time) {
      return fail("SWMR checker: incomplete write is not the last write");
    }
    if (*writes[i].response_time > writes[i + 1].invoke_time) {
      return fail("SWMR checker: overlapping writes in a single-writer run");
    }
  }

  std::string err;
  const auto value_index = build_value_index(writes, err);
  if (!value_index) return fail(err);

  const std::vector<op_record> reads = h.completed_reads();

  // Condition (1): every read returns a written value.
  // Also annotate each read with the write index l it returned.
  struct annotated_read {
    const op_record* op;
    std::size_t l;
  };
  std::vector<annotated_read> ann;
  ann.reserve(reads.size());
  for (const auto& rd : reads) {
    const auto it = value_index->find(rd.val);
    if (it == value_index->end()) {
      return fail("condition 1 violated: read by " + to_string(rd.client) +
                  " returned unwritten value \"" + rd.val + "\"");
    }
    ann.push_back({&rd, it->second});
  }

  for (const auto& [rd, l] : ann) {
    // Condition (2): reads see at least the last write completed before
    // their invocation.
    std::size_t k_min = 0;
    for (std::size_t k = 0; k < writes.size(); ++k) {
      if (writes[k].response_time &&
          *writes[k].response_time < rd->invoke_time) {
        k_min = k + 1;
      }
    }
    if (l < k_min) {
      return fail("condition 2 violated: read by " + to_string(rd->client) +
                  " returned val_" + std::to_string(l) + " (\"" + rd->val +
                  "\") after write_" + std::to_string(k_min) + " completed");
    }
    // Condition (3): no reading from the future.
    if (l >= 1) {
      const auto& wr = writes[l - 1];
      if (wr.invoke_time >= *rd->response_time) {
        return fail("condition 3 violated: read returned val_" +
                    std::to_string(l) + " before write_" + std::to_string(l) +
                    " was invoked");
      }
    }
  }

  if (require_condition4) {
    // Condition (4): reader-to-reader monotonicity. Sweep reads in invoke
    // order, keeping the maximum l over reads whose response precedes the
    // current read's invocation.
    std::vector<annotated_read> by_invoke = ann;
    std::sort(by_invoke.begin(), by_invoke.end(),
              [](const annotated_read& a, const annotated_read& b) {
                return a.op->invoke_time < b.op->invoke_time;
              });
    std::vector<annotated_read> by_response = ann;
    std::sort(by_response.begin(), by_response.end(),
              [](const annotated_read& a, const annotated_read& b) {
                return *a.op->response_time < *b.op->response_time;
              });
    std::size_t max_l = 0;
    const op_record* max_op = nullptr;
    std::size_t next_resp = 0;
    for (const auto& rd : by_invoke) {
      while (next_resp < by_response.size() &&
             *by_response[next_resp].op->response_time <
                 rd.op->invoke_time) {
        if (by_response[next_resp].l > max_l) {
          max_l = by_response[next_resp].l;
          max_op = by_response[next_resp].op;
        }
        ++next_resp;
      }
      if (rd.l < max_l) {
        return fail(
            "condition 4 violated (new/old inversion): read by " +
            to_string(rd.op->client) + " returned val_" +
            std::to_string(rd.l) + " after a read by " +
            to_string(max_op->client) + " returned val_" +
            std::to_string(max_l));
      }
    }
  }
  return {};
}

}  // namespace detail

check_result check_swmr_atomicity(const history& h) {
  return detail::check_swmr(h, /*require_condition4=*/true);
}

check_result check_swmr_regular(const history& h) {
  return detail::check_swmr(h, /*require_condition4=*/false);
}

check_result check_fastness(const history& h, int max_read_rounds,
                            int max_write_rounds) {
  for (const auto& op : h.ops()) {
    if (!op.response_time) continue;
    const int limit = op.is_write ? max_write_rounds : max_read_rounds;
    if (op.rounds > limit) {
      return fail(std::string(op.is_write ? "write" : "read") + " by " +
                  to_string(op.client) + " took " +
                  std::to_string(op.rounds) + " round-trips (limit " +
                  std::to_string(limit) + ")");
    }
  }
  return {};
}

// ------------------------------------------------ MWMR linearizability --

namespace {

/// Wing&Gong-style search. Ops are indexed; a state is (set of linearized
/// ops, index of the last linearized write). Incomplete ops may be
/// linearized or skipped; the search succeeds when all complete ops are
/// linearized.
class linearizer {
 public:
  explicit linearizer(const history& h) {
    for (const auto& op : h.ops()) ops_.push_back(op);
  }

  check_result run() {
    if (ops_.size() > 63) {
      return fail("linearizability checker supports at most 63 operations");
    }
    all_complete_ = 0;
    for (std::size_t i = 0; i < ops_.size(); ++i) {
      if (ops_[i].response_time) all_complete_ |= bit(i);
    }
    if (search(0, npos)) return {};
    return fail("history is not linearizable");
  }

 private:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  static std::uint64_t bit(std::size_t i) { return std::uint64_t{1} << i; }

  /// Current register value given the last linearized write.
  [[nodiscard]] const value_t& value_after(std::size_t last_write) const {
    static const value_t bottom = k_bottom_value;
    return last_write == npos ? bottom : ops_[last_write].val;
  }

  /// op i may be linearized next iff every unlinearized op whose response
  /// precedes i's invocation... does not exist (i is minimal), and i's
  /// semantics match the current value.
  bool minimal(std::uint64_t done, std::size_t i) const {
    for (std::size_t j = 0; j < ops_.size(); ++j) {
      if (j == i || (done & bit(j))) continue;
      if (ops_[j].response_time &&
          *ops_[j].response_time < ops_[i].invoke_time) {
        return false;
      }
    }
    return true;
  }

  bool search(std::uint64_t done, std::size_t last_write) {
    if ((done & all_complete_) == all_complete_) return true;
    const auto key = std::make_pair(done, last_write);
    if (!visited_.insert(key).second) return false;
    for (std::size_t i = 0; i < ops_.size(); ++i) {
      if (done & bit(i)) continue;
      if (!minimal(done, i)) continue;
      if (ops_[i].is_write) {
        if (search(done | bit(i), i)) return true;
      } else {
        // A read must return the current value. Incomplete reads have no
        // recorded return value; they may also simply never take effect,
        // so they are not forced into the linearization.
        if (!ops_[i].response_time) continue;
        if (ops_[i].val == value_after(last_write)) {
          if (search(done | bit(i), last_write)) return true;
        }
      }
    }
    // Incomplete ops may be skipped: try declaring each permanently
    // not-taken-effect by linearizing nothing and moving on. This is
    // handled implicitly: the success condition only requires complete
    // ops, and incomplete writes are only linearized when useful.
    return false;
  }

  std::vector<op_record> ops_;
  std::uint64_t all_complete_{0};
  std::set<std::pair<std::uint64_t, std::size_t>> visited_;
};

}  // namespace

check_result check_linearizable(const history& h) {
  // Value uniqueness across all writes keeps read matching unambiguous.
  std::set<value_t> vals;
  for (const auto& op : h.all_writes()) {
    if (!vals.insert(op.val).second) {
      return fail("linearizability checker requires unique written values");
    }
  }
  return linearizer(h).run();
}

}  // namespace fastreg::checker
