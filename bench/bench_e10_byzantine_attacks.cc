// E10 -- the Figure 5 validation paths under live attack: b malicious
// servers run each behaviour from the attack library while clients work.
// For every attack: liveness (all ops complete), safety (atomic), speed
// (1 round-trip), and how many provably-malicious acks readers discarded.
#include <cstdio>

#include "adversary/byzantine.h"
#include "benchutil/table.h"
#include "checker/atomicity.h"
#include "crypto/sig.h"
#include "registers/fast_bft.h"
#include "registers/registry.h"
#include "sim/world.h"

using namespace fastreg;
using namespace fastreg::adversary;

namespace {

std::unique_ptr<automaton> make_attack(const std::string& kind,
                                       const system_config& cfg,
                                       sim::world& w, std::uint32_t index) {
  auto* cur = w.get(server_id(index));
  if (kind == "stale") return std::make_unique<stale_server>(index);
  if (kind == "forge") return std::make_unique<forging_server>(index);
  if (kind == "mute") return std::make_unique<mute_server>(index);
  if (kind == "seen_liar") {
    return std::make_unique<seen_liar_server>(cur->clone(), cfg.R());
  }
  if (kind == "equivocate") {
    return std::make_unique<equivocating_server>(cur->clone(), index);
  }
  return std::make_unique<two_faced_server>(
      cur->clone(), std::unordered_set<process_id>{reader_id(0)});
}

}  // namespace

int main() {
  std::printf("E10: fast BFT register under live byzantine attack "
              "(S=19, t=3, b=2, R=2; feasible: 19 > 12+6)\n\n");
  benchutil::table t({"attack", "ops", "all_complete", "atomic", "fast",
                      "discarded_acks"});
  for (const std::string kind : {"stale", "forge", "mute", "seen_liar",
                                 "equivocate", "two_faced"}) {
    system_config cfg;
    cfg.servers = 19;
    cfg.t_failures = 3;
    cfg.b_malicious = 2;
    cfg.readers = 2;
    cfg.sigs = crypto::make_signature_scheme("oracle");
    sim::world w(cfg);
    w.install(*make_protocol("fast_bft"));
    for (std::uint32_t i = 0; i < cfg.b(); ++i) {
      const std::uint32_t victim = 4 + 9 * i;
      w.replace_automaton(server_id(victim),
                          make_attack(kind, cfg, w, victim));
    }
    rng r(99);
    std::uint32_t writes = 0;
    std::vector<std::uint32_t> reads(cfg.R(), 0);
    for (;;) {
      bool more = false;
      if (writes < 10 && !w.writer(0)->write_in_progress()) {
        w.invoke_write("v" + std::to_string(++writes));
        more = true;
      }
      for (std::uint32_t i = 0; i < cfg.R(); ++i) {
        if (reads[i] < 10 && !w.reader(i)->read_in_progress()) {
          ++reads[i];
          w.invoke_read(i);
          more = true;
        }
      }
      if (!w.in_transit().empty()) {
        const auto& ms = w.in_transit();
        w.deliver(ms[r.below(ms.size())].id);
        more = true;
      }
      if (!more) break;
    }
    bool all_complete = true;
    for (const auto& op : w.hist().ops()) {
      all_complete &= op.response_time.has_value();
    }
    std::uint64_t discarded = 0;
    for (std::uint32_t i = 0; i < cfg.R(); ++i) {
      discarded += dynamic_cast<fast_bft_reader*>(w.get(reader_id(i)))
                       ->discarded_acks();
    }
    t.add_row({kind, std::to_string(w.hist().ops().size()),
               all_complete ? "yes" : "NO",
               checker::check_swmr_atomicity(w.hist()).ok ? "yes" : "NO",
               checker::check_fastness(w.hist(), 1, 1).ok ? "yes" : "NO",
               std::to_string(discarded)});
  }
  t.print();
  std::printf("\nexpected: every attack masked (all yes). 'discarded_acks' "
              "shows receivevalid at work; attacks that stay protocol-"
              "plausible (seen_liar, two_faced) are absorbed by the "
              "S - at - (a-1)b predicate margin instead.\n");
  return 0;
}
