#include "store/client.h"

#include <utility>

#include "common/check.h"
#include "crypto/sig.h"
#include "obs/trace.h"

namespace fastreg::store {

client::client(std::shared_ptr<const shard_map> shards, process_id self,
               map_source source)
    : map_(std::move(shards)), source_(std::move(source)), self_(self) {
  FASTREG_EXPECTS(self_.is_reader() || self_.is_writer());
  auto& reg = obs::registry::instance();
  const std::string lbl = "node=\"" + to_string(self_) + "\"";
  parks_total_ = &reg.get_counter("fastreg_store_parks_total", lbl);
  resumes_total_ = &reg.get_counter("fastreg_store_resumes_total", lbl);
  rec_ = &obs::recorder_for(self_);
}

client::client(const client& o)
    : map_(o.map_),
      source_(o.source_),
      self_(o.self_),
      floors_(o.floors_),
      pending_(o.pending_),
      attempts_(o.attempts_),
      mig_(o.mig_),
      mig_seq_(o.mig_seq_),
      completions_(o.completions_),
      completed_(o.completed_),
      stats_(o.stats_),
      stats_seq_(o.stats_seq_),
      parks_total_(o.parks_total_),
      resumes_total_(o.resumes_total_),
      rec_(o.rec_) {
  // outbox_ is intentionally not copied: it is empty between steps, and
  // clone() (world::fork) only runs between steps.
  FASTREG_EXPECTS(o.outbox_.empty());
  for (const auto& [obj, inner] : o.objects_) {
    objects_.emplace(obj, inner_automaton{inner.a->clone(), inner.birth});
  }
}

automaton& client::inner_for(object_id obj) {
  auto it = objects_.find(obj);
  if (it == objects_.end()) {
    const auto& proto = map_->protocol_for_object(obj);
    const auto& base = map_->config().base;
    auto a = self_.is_reader() ? proto.make_reader(base, self_.index, obj)
                               : proto.make_writer(base, self_.index, obj);
    if (self_.is_writer()) {
      // A migrated object's fresh writer must resume above the handed-off
      // timestamp (and advertise its value as the preceding write).
      const auto fl = floors_.find(obj);
      if (fl != floors_.end()) as_writer(a.get())->seed_writer(fl->second);
    }
    it = objects_
             .emplace(obj, inner_automaton{std::move(a), map_->epoch()})
             .first;
  }
  return *it->second.a;
}

void client::invoke_on(object_id obj, pending_op& op) {
  auto& inner = inner_for(obj);
  op.epoch = epoch();
  // The inner automaton does not know its object id; publish it so the
  // tracer keys this invocation's op under (self, obj).
  obs::scoped_trace_object trace_obj(obj);
  tagging_netout tagged(outbox_, obj, epoch(), op.attempt, false, op.trace,
                        op.span);
  if (op.is_put) {
    auto* w = as_writer(&inner);
    FASTREG_ENSURES(w != nullptr);
    op.before = w->writes_completed();
    w->invoke_write(tagged, op.val);
  } else {
    auto* r = as_reader(&inner);
    FASTREG_ENSURES(r != nullptr);
    op.before = r->reads_completed();
    r->invoke_read(tagged);
  }
}

void client::begin_get(const std::string& key) {
  FASTREG_EXPECTS(self_.is_reader());
  const object_id obj = key_object_id(key);
  FASTREG_EXPECTS(!pending_.contains(obj));
  auto& op = pending_[obj];
  op.key = key;
  op.is_put = false;
  op.attempt = ++attempts_[obj];
  op.trace = obs::next_trace_id();
  invoke_on(obj, op);
}

void client::begin_put(const std::string& key, value_t v) {
  FASTREG_EXPECTS(self_.is_writer());
  const object_id obj = key_object_id(key);
  FASTREG_EXPECTS(!pending_.contains(obj));
  auto& op = pending_[obj];
  op.key = key;
  op.is_put = true;
  op.val = std::move(v);
  op.attempt = ++attempts_[obj];
  op.trace = obs::next_trace_id();
  invoke_on(obj, op);
}

void client::flush(netout& net) { outbox_.flush(net); }

std::vector<store_result> client::take_completions() {
  return std::exchange(completions_, {});
}

// ------------------------------------------------------------- reconfig --

std::size_t client::parked_count() const {
  std::size_t n = 0;
  for (const auto& [obj, op] : pending_) n += op.parked ? 1 : 0;
  return n;
}

void client::reissue(object_id obj, pending_op& op) {
  // The abandoned attempt's automaton state (including any acks it
  // gathered) is protocol state of a superseded generation; discard it
  // and start over against the current map.
  const bool resuming = op.parked;
  if (resuming) resumes_total_->inc();
  op.attempt = ++attempts_[obj];
  op.parked = false;
  ++op.span;  // a new attempt is a new span of the same trace
  if (resuming && obs::recording_active()) {
    rec_->record(obs::rec_event::resume, op.trace, op.span, 0, self_, obj,
                 epoch(), k_initial_ts);
  }
  objects_.erase(obj);
  invoke_on(obj, op);
}

void client::park(object_id obj, pending_op& op) {
  parks_total_->inc();
  if (obs::recording_active()) {
    rec_->record(obs::rec_event::park, op.trace, op.span, 0, self_, obj,
                 epoch(), k_initial_ts);
  }
  op.parked = true;
  objects_.erase(obj);
}

void client::refresh_map() {
  if (!source_) return;
  auto latest = source_();
  FASTREG_CHECK(latest != nullptr);
  if (latest->epoch() <= map_->epoch()) return;
  // Objects whose protocol changed get fresh automata (their server-side
  // instances were replaced too); unchanged objects keep automaton and
  // in-flight ops -- their instances carried over on every server.
  std::unordered_set<object_id> dropped;
  for (const auto& [obj, inner] : objects_) {
    if (object_moves(*map_, *latest, obj)) dropped.insert(obj);
  }
  for (const auto obj : dropped) objects_.erase(obj);
  map_ = std::move(latest);
  for (auto& [obj, op] : pending_) {
    if (op.parked || !dropped.contains(obj)) continue;
    reissue(obj, op);
  }
}

void client::resume_parked(const std::string& key) {
  resume_parked(key_object_id(key));
}

void client::resume_parked(object_id obj) {
  refresh_map();
  const auto it = pending_.find(obj);
  if (it == pending_.end() || !it->second.parked) return;
  // Only PARKED ops re-issue here. A non-parked in-flight op is either
  // answered normally or buffered at a server behind a lazy seed fetch
  // (store/server.h) and completes when the fetch replays it; re-issuing
  // it would discard an automaton whose requests servers may have
  // already processed, and the replacement's restarted per-client
  // request counter would be silently ignored by protocols that guard
  // against stale counters (fast_swmr line 26). Nacks cannot strand an
  // in-flight op either: handle_nack re-issues any attempt issued under
  // an older epoch and only parks current-epoch attempts, which only a
  // later reconfiguration nacks (and then resumes).
  reissue(it->first, it->second);
}

void client::seed_writer_floor(const std::string& key,
                               const register_snapshot& s) {
  seed_writer_floor(key_object_id(key), s);
}

void client::seed_writer_floor(object_id obj, const register_snapshot& s) {
  floors_[obj] = s;
  // A put already in flight on this object may run on an automaton created
  // BEFORE the floor existed (invoked at the new epoch while the key was
  // draining). Its un-floored requests could slip past the fence once the
  // servers seed, complete against acks that merely echo the request's
  // timestamp, and be lost. Park it: the automaton is discarded, and the
  // coordinator's resume_parked (which always follows a floor install)
  // re-issues the op through a freshly floored automaton.
  const auto it = pending_.find(obj);
  if (it != pending_.end() && !it->second.parked && it->second.is_put) {
    park(obj, it->second);
  }
}

void client::begin_state_read(object_id obj, epoch_t old_epoch) {
  FASTREG_EXPECTS(!mig_ || mig_->done);
  mig_.emplace();
  mig_->is_seed = false;
  mig_->obj = obj;
  mig_->seq = ++mig_seq_;
  message m;
  m.type = msg_type::state_req;
  m.obj = mig_->obj;
  m.epoch = old_epoch;
  m.mig = true;
  m.trace = obs::next_trace_id();
  m.rcounter = mig_->seq;
  for (std::uint32_t i = 0; i < map_->config().base.S(); ++i) {
    outbox_.add(server_id(i), m);
  }
}

void client::begin_seed(object_id obj, const register_snapshot& s,
                        epoch_t new_epoch) {
  FASTREG_EXPECTS(!mig_ || mig_->done);
  mig_.emplace();
  mig_->is_seed = true;
  mig_->obj = obj;
  mig_->seq = ++mig_seq_;
  message m;
  m.type = msg_type::seed_req;
  m.obj = mig_->obj;
  // The coordinator names the generation explicitly: this client's own
  // map may lag (it only refreshes from data-path replies), and the
  // servers reject seeds not stamped with their current generation.
  m.epoch = new_epoch;
  m.mig = true;
  m.trace = obs::next_trace_id();
  m.rcounter = mig_->seq;
  m.ts = s.ts;
  m.wid = s.wid;
  m.val = s.val;
  m.prev = s.prev;
  m.sig = s.sig;
  for (std::uint32_t i = 0; i < map_->config().base.S(); ++i) {
    outbox_.add(server_id(i), m);
  }
}

void client::begin_stats(std::uint32_t server_index) {
  message m;
  m.type = msg_type::stats_req;
  m.trace = obs::next_trace_id();
  m.rcounter = ++stats_seq_;
  stats_.reset();
  outbox_.add(server_id(server_index), std::move(m));
}

std::string client::take_stats() {
  std::string out = stats_.value_or(std::string{});
  stats_.reset();
  return out;
}

const register_snapshot& client::mig_snapshot() const {
  FASTREG_EXPECTS(mig_done() && !mig_->is_seed);
  return mig_->best;
}

void client::handle_mig_ack(const process_id& from, const message& m) {
  if (!mig_ || mig_->done || !from.is_server()) return;
  if (m.rcounter != mig_->seq || m.obj != mig_->obj) return;
  const bool is_seed_ack = m.type == msg_type::seed_ack;
  if (is_seed_ack != mig_->is_seed) return;
  if (!mig_->acked.insert(from.index).second) return;
  const auto& base = map_->config().base;
  if (!is_seed_ack) {
    // In the arbitrary-failure model only a valid writer signature makes
    // a state answer trustworthy (a Byzantine server could otherwise
    // fabricate an arbitrarily high timestamp).
    bool trusted = true;
    if (base.b() > 0) {
      FASTREG_CHECK(base.sigs != nullptr);
      if (m.ts == k_initial_ts) {
        trusted = m.sig.empty() && m.val.empty() && m.prev.empty();
      } else {
        const auto payload = signed_payload(m);
        trusted = m.ts > 0 &&
                  base.sigs->verify(
                      writer_id(0),
                      std::span<const std::uint8_t>(payload.data(),
                                                    payload.size()),
                      std::span<const std::uint8_t>(m.sig.data(),
                                                    m.sig.size()));
      }
    }
    if (trusted && wts_t{m.ts, m.wid} > mig_->best.wts()) {
      mig_->best = {m.ts, m.wid, m.val, m.prev, m.sig};
    }
    if (mig_->acked.size() >= base.quorum()) mig_->done = true;
  } else {
    // Seeding completes at a QUORUM of acks, so a crashed or partitioned
    // server cannot stall the handoff. A server that missed the seed
    // lazily pulls the snapshot from a generation peer on first
    // post-drain access (store/server.h) instead of nacking forever.
    if (mig_->acked.size() >= base.quorum()) mig_->done = true;
  }
}

void client::handle_nack(const message& m) {
  const auto it = pending_.find(m.obj);
  if (it == pending_.end()) return;
  auto& op = it->second;
  if (op.parked || m.attempt != op.attempt) return;  // stale or already held
  // The nack names the server's epoch; pull the map in case it is news.
  // refresh_map may itself re-issue this op (bumping attempt), in which
  // case the nack is spent.
  refresh_map();
  if (m.attempt != op.attempt) return;
  if (m.epoch >= epoch()) {
    if (op.epoch < epoch()) {
      // The attempt was issued under a superseded map but the object's
      // protocol did not change (refresh_map would have re-issued it
      // otherwise) -- it was force-moved by the coordinator (see
      // store/server.h). Re-issue under the current epoch: the fresh
      // attempt is served, or buffered behind the object's lazy seed
      // fetch, without depending on a resume that may already be past.
      reissue(m.obj, op);
    } else {
      // Nacked at the attempt's own epoch: a later reconfiguration
      // fenced the object (or its fetch buffer overflowed); the
      // migration that fences it resumes us.
      park(m.obj, op);
    }
  }
  // m.epoch < epoch(): stale nack from a server we have since overtaken;
  // the re-issued attempt will be answered on its own.
}

void client::route(const process_id& from, const message& m) {
  // Deliveries go to EXISTING automata only: begin_* creates them, and a
  // message for a dropped (migrated/parked) automaton is by construction
  // aimed at an abandoned attempt.
  const auto it = objects_.find(m.obj);
  if (it == objects_.end()) return;
  // Replies stamped with an epoch older than this automaton's birth were
  // produced for the superseded generation (possibly a different
  // protocol); feeding them in would corrupt the fresh instance.
  if (m.epoch < it->second.birth) return;
  std::uint32_t attempt = 0;
  const auto p = pending_.find(m.obj);
  if (p != pending_.end()) attempt = p->second.attempt;
  // Invocations and reissues recreate inner automata with fresh
  // counters, so a straggler reply addressed to an abandoned attempt at
  // the SAME epoch could alias the live attempt's counters. The attempt
  // stamp -- per-object and monotonic across ops, so stragglers of
  // EARLIER ops cannot alias either -- disambiguates (mirroring the
  // check handle_nack performs).
  if (m.attempt != attempt) return;
  obs::scoped_trace_object trace_obj(m.obj);
  // Follow-up rounds the reply triggers stay on the op's trace; the
  // pending record is authoritative, the reply's stamp the fallback.
  std::uint64_t trace = m.trace;
  std::uint16_t span = m.span;
  if (p != pending_.end()) {
    trace = p->second.trace;
    span = p->second.span;
  }
  tagging_netout tagged(outbox_, m.obj, epoch(), attempt, false, trace, span);
  it->second.a->on_message(tagged, from, m);
}

bool client::dispatch_one(const process_id& from, const message& m) {
  if (m.type == msg_type::stats_ack) {
    if (from.is_server() && m.rcounter == stats_seq_) stats_ = m.val;
    return false;  // scrape I/O never completes a front-end op
  }
  if (m.type == msg_type::epoch_nack) {
    handle_nack(m);
    return true;
  }
  if (m.type == msg_type::state_ack || m.type == msg_type::seed_ack) {
    handle_mig_ack(from, m);
    return false;  // migration I/O never completes a front-end op
  }
  route(from, m);
  // Server replies carry the server's epoch: learn newer maps lazily,
  // AFTER routing so the op the reply belongs to is not re-issued from
  // under it.
  if (m.epoch > epoch()) refresh_map();
  return true;
}

void client::on_message(netout& net, const process_id& from,
                        const message& m) {
  const bool poll = dispatch_one(from, m);
  flush(net);
  if (poll) poll_object(m.obj);
}

void client::on_batch(netout& net, const process_id& from,
                      std::span<const message> msgs) {
  std::vector<object_id> touched;
  touched.reserve(msgs.size());
  for (const auto& m : msgs) {
    if (dispatch_one(from, m)) touched.push_back(m.obj);
  }
  // One flush for the whole batch: replies the k messages triggered
  // coalesce into (at most) one envelope per destination.
  flush(net);
  for (std::size_t i = 0; i < touched.size(); ++i) {
    // Poll each object once even if the batch carried several messages
    // for it.
    bool seen = false;
    for (std::size_t j = 0; j < i; ++j) seen = seen || touched[j] == touched[i];
    if (!seen) poll_object(touched[i]);
  }
}

void client::poll_object(object_id obj) {
  const auto it = pending_.find(obj);
  if (it == pending_.end() || it->second.parked) return;
  const auto& op = it->second;
  const auto a = objects_.find(obj);
  if (a == objects_.end()) return;
  auto& inner = *a->second.a;
  store_result res;
  res.key = op.key;
  res.is_put = op.is_put;
  if (op.is_put) {
    auto* w = as_writer(&inner);
    if (w->writes_completed() <= op.before) return;
    res.rounds = w->last_write_rounds();
  } else {
    auto* r = as_reader(&inner);
    if (r->reads_completed() <= op.before) return;
    const auto& rr = r->last_read();
    FASTREG_CHECK(rr.has_value());
    res.ts = rr->ts;
    res.wid = rr->wid;
    res.val = rr->val;
    res.rounds = rr->rounds;
  }
  completions_.push_back(std::move(res));
  ++completed_;
  pending_.erase(it);
}

std::unique_ptr<automaton> client::clone() const {
  return std::unique_ptr<automaton>(new client(*this));
}

}  // namespace fastreg::store
