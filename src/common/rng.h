// Deterministic seeded RNG (xoshiro256**). Every randomized schedule, crash
// pattern and workload in fastreg derives from an explicit seed so that any
// failure is replayable bit-for-bit.
#pragma once

#include <cstdint>
#include <limits>

namespace fastreg {

class rng {
 public:
  explicit rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // splitmix64 seeding, the reference initialization for xoshiro.
    std::uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound = 0 returns 0.
  std::uint64_t below(std::uint64_t bound) {
    if (bound == 0) return 0;
    // Debiased via rejection; the loop terminates fast for all bounds.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli(p) with p expressed as numerator/denominator.
  bool chance(std::uint64_t num, std::uint64_t den) {
    return below(den) < num;
  }

  double uniform01() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  // UniformRandomBitGenerator interface, so std::shuffle works.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }
  result_type operator()() { return next(); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

}  // namespace fastreg
