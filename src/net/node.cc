#include "net/node.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>

#include "common/check.h"
#include "common/log.h"

namespace fastreg::net {

std::uint64_t node::now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

node::node(system_config cfg, std::unique_ptr<automaton> a,
           std::shared_ptr<const address_book> book)
    : cfg_(std::move(cfg)),
      automaton_(std::move(a)),
      book_(std::move(book)),
      self_(automaton_->self()),
      async_iface_(dynamic_cast<async_client_iface*>(automaton_.get())) {
  epoll_fd_.reset(::epoll_create1(0));
  FASTREG_CHECK(epoll_fd_.valid());
  event_fd_.reset(::eventfd(0, EFD_NONBLOCK));
  FASTREG_CHECK(event_fd_.valid());
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = event_fd_.get();
  FASTREG_CHECK(::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, event_fd_.get(),
                            &ev) == 0);
}

node::~node() { stop(); }

void node::bind_listener(std::uint16_t port) {
  listen_fd_ = listen_on(port);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_.get();
  FASTREG_CHECK(::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, listen_fd_.get(),
                            &ev) == 0);
}

std::uint16_t node::listen_port() const {
  FASTREG_EXPECTS(listen_fd_.valid());
  return local_port(listen_fd_.get());
}

void node::start() {
  FASTREG_EXPECTS(!thread_.joinable());
  {
    std::lock_guard<std::mutex> lk(mu_);
    started_ = true;
  }
  thread_ = std::thread([this] { reactor_main(); });
}

void node::stop() {
  if (!thread_.joinable()) return;
  post([this] {
    std::lock_guard<std::mutex> lk(mu_);
    stop_requested_ = true;
  });
  thread_.join();
}


void node::post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    tasks_.push_back(std::move(fn));
  }
  const std::uint64_t one = 1;
  [[maybe_unused]] const auto n =
      ::write(event_fd_.get(), &one, sizeof one);
}

// ----------------------------------------------------------- client calls --

std::optional<read_result> node::blocking_read(
    std::chrono::milliseconds timeout) {
  auto* r = as_reader(automaton_.get());
  FASTREG_EXPECTS(r != nullptr);
  std::uint64_t before;
  {
    std::lock_guard<std::mutex> lk(mu_);
    before = reads_done_;
  }
  post([this, r] {
    {
      std::lock_guard<std::mutex> lk(mu_);
      open_op_index_ = hist_.begin_op(self_, false, now_ns());
      op_open_ = true;
    }
    r->invoke_read(*this);
  });
  std::unique_lock<std::mutex> lk(mu_);
  if (!cv_.wait_for(lk, timeout, [&] { return reads_done_ > before; })) {
    return std::nullopt;
  }
  return r->last_read();
}

bool node::blocking_write(value_t v, std::chrono::milliseconds timeout) {
  auto* w = as_writer(automaton_.get());
  FASTREG_EXPECTS(w != nullptr);
  std::uint64_t before;
  {
    std::lock_guard<std::mutex> lk(mu_);
    before = writes_done_;
  }
  post([this, w, v = std::move(v)]() mutable {
    {
      std::lock_guard<std::mutex> lk(mu_);
      open_op_index_ = hist_.begin_op(self_, true, now_ns(), v);
      op_open_ = true;
    }
    w->invoke_write(*this, std::move(v));
  });
  std::unique_lock<std::mutex> lk(mu_);
  return cv_.wait_for(lk, timeout, [&] { return writes_done_ > before; });
}

bool node::blocking_op(const std::function<void(automaton&, netout&)>& start,
                       std::chrono::milliseconds timeout) {
  FASTREG_EXPECTS(async_iface_ != nullptr);
  auto started = std::make_shared<bool>(false);
  post([this, start, started] {
    start(*automaton_, *this);
    {
      std::lock_guard<std::mutex> lk(mu_);
      *started = true;
      // Mirror immediately: the wait predicate must not observe the
      // stale pre-invocation idle state as completion.
      async_busy_ = async_iface_->op_in_progress();
      async_done_ = async_iface_->ops_completed();
    }
    cv_.notify_all();
  });
  std::unique_lock<std::mutex> lk(mu_);
  return cv_.wait_for(lk, timeout, [&] { return *started && !async_busy_; });
}

void node::run_on_reactor(const std::function<void(automaton&)>& fn) {
  // Reactor not running (never started, already stopped, or it exited
  // before draining the task): the caller has exclusive access, run
  // inline instead of waiting forever on a task nothing will drain.
  if (!try_run_on_reactor(fn)) fn(*automaton_);
}

bool node::try_run_on_reactor(const std::function<void(automaton&)>& fn) {
  {
    // Only a definitely-not-running reactor short-circuits. A merely
    // stop-REQUESTED reactor may still be draining: returning false here
    // would let run_on_reactor's inline fallback race the live reactor
    // thread; posting is safe either way (the task runs on the reactor,
    // or the exit path discards it and the wait below observes that).
    std::lock_guard<std::mutex> lk(mu_);
    if (!started_ || reactor_exited_) return false;
  }
  auto done = std::make_shared<bool>(false);
  // fn is copied into the task: if the reactor exits without draining
  // it, the closure outlives this call (reactor_main clears the queue on
  // exit, but the post() below can land just after that).
  post([this, fn, done] {
    fn(*automaton_);
    {
      std::lock_guard<std::mutex> lk(mu_);
      *done = true;
    }
    cv_.notify_all();
  });
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return *done || reactor_exited_; });
  // A task the reactor exited without draining never ran and never will;
  // report the node unreachable rather than running fn here.
  return *done;
}

void node::run_on_reactor_net(
    const std::function<void(automaton&, netout&)>& fn) {
  run_on_reactor([this, &fn](automaton& a) {
    fn(a, *this);
    poll_client_completion();
  });
}

checker::history node::hist() const {
  std::lock_guard<std::mutex> lk(mu_);
  return hist_;
}

void node::poll_client_completion() {
  if (async_iface_ != nullptr) {
    std::lock_guard<std::mutex> lk(mu_);
    const bool busy = async_iface_->op_in_progress();
    const std::uint64_t done = async_iface_->ops_completed();
    if (busy != async_busy_ || done != async_done_) {
      async_busy_ = busy;
      async_done_ = done;
      cv_.notify_all();
    }
  }
  if (auto* r = as_reader(automaton_.get())) {
    std::lock_guard<std::mutex> lk(mu_);
    if (op_open_ && r->reads_completed() > reads_done_) {
      const auto& res = r->last_read();
      FASTREG_CHECK(res.has_value());
      hist_.complete_read(open_op_index_, now_ns(), res->ts, res->wid,
                          res->val, res->rounds);
      op_open_ = false;
      reads_done_ = r->reads_completed();
      cv_.notify_all();
    }
  }
  if (auto* w = as_writer(automaton_.get())) {
    std::lock_guard<std::mutex> lk(mu_);
    if (op_open_ && w->writes_completed() > writes_done_) {
      hist_.complete_write(open_op_index_, now_ns(), w->last_write_rounds());
      op_open_ = false;
      writes_done_ = w->writes_completed();
      cv_.notify_all();
    }
  }
}

// -------------------------------------------------------------- reactor --

void node::reactor_main() {
  for (;;) {
    epoll_event events[64];
    // Do not block when a task is already queued: a post() landing after
    // this iteration's task swap but before the eventfd drain below would
    // otherwise lose its wakeup (the drain eats the counter while the
    // task waits a full epoll timeout).
    int wait_ms = 50;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (!tasks_.empty()) wait_ms = 0;
    }
    const int n = ::epoll_wait(epoll_fd_.get(), events, 64, wait_ms);
    // Drain posted tasks first (includes invocations and stop requests).
    std::deque<std::function<void()>> tasks;
    {
      std::lock_guard<std::mutex> lk(mu_);
      tasks.swap(tasks_);
    }
    for (auto& t : tasks) t();
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (stop_requested_) break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == event_fd_.get()) {
        std::uint64_t buf;
        while (::read(event_fd_.get(), &buf, sizeof buf) > 0) {
        }
        continue;
      }
      if (listen_fd_.valid() && fd == listen_fd_.get()) {
        while (auto accepted = accept_one(listen_fd_.get())) {
          const int cfd = accepted->get();
          connection c;
          c.fd = std::move(*accepted);
          conns_.emplace(cfd, std::move(c));
          epoll_event ev{};
          ev.events = EPOLLIN;
          ev.data.fd = cfd;
          ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, cfd, &ev);
        }
        continue;
      }
      if ((events[i].events & (EPOLLERR | EPOLLHUP)) != 0) {
        close_conn(fd);
        continue;
      }
      if ((events[i].events & EPOLLIN) != 0) handle_readable(fd);
      if ((events[i].events & EPOLLOUT) != 0) handle_writable(fd);
    }
    poll_client_completion();
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    reactor_exited_ = true;
    // Undrained tasks never run: they must not fire on a later start()
    // (their captures may be long dead by then).
    tasks_.clear();
  }
  cv_.notify_all();
}

void node::handle_readable(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  auto& c = it->second;
  std::uint8_t buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n > 0) {
      c.in.feed(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    close_conn(fd);
    return;
  }
  while (auto f = c.in.next()) {
    if (f->kind == frame_kind::hello) {
      c.peer = f->from;
      inbound_by_peer_[f->from] = fd;
      continue;
    }
    if (f->kind == frame_kind::batch) {
      automaton_->on_batch(*this, f->from, f->batch);
      continue;
    }
    if (f->msg.has_value()) {
      automaton_->on_message(*this, f->from, *f->msg);
    }
  }
  if (c.in.corrupt()) {
    // Framing lost on this stream (frame_buffer's contract): the only
    // safe recovery is a reset. The peer reconnects with fresh framing
    // state; undelivered messages are covered by the protocols' quorum
    // waits and the store's retry paths.
    LOG_DEBUG("%s: corrupt frame stream from fd %d; closing connection",
              to_string(self_).c_str(), fd);
    close_conn(fd);
    return;
  }
  poll_client_completion();
}

void node::handle_writable(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  it->second.connecting = false;
  flush(fd, it->second);
}

void node::flush(int fd, connection& c) {
  while (c.out_offset < c.out.size()) {
    const ssize_t n = ::write(fd, c.out.data() + c.out_offset,
                              c.out.size() - c.out_offset);
    if (n > 0) {
      c.out_offset += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    close_conn(fd);
    return;
  }
  if (c.out_offset == c.out.size()) {
    c.out.clear();
    c.out_offset = 0;
  }
  update_epoll(fd, c);
}

void node::update_epoll(int fd, connection& c) {
  epoll_event ev{};
  ev.events = EPOLLIN;
  if (c.connecting || c.out_offset < c.out.size()) ev.events |= EPOLLOUT;
  ev.data.fd = fd;
  ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, fd, &ev);
}

void node::close_conn(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  if (it->second.peer) inbound_by_peer_.erase(*it->second.peer);
  for (auto o = out_to_server_.begin(); o != out_to_server_.end();) {
    o = o->second == fd ? out_to_server_.erase(o) : std::next(o);
  }
  ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, fd, nullptr);
  conns_.erase(it);  // unique_fd closes
}

void node::queue_bytes(int fd, std::vector<std::uint8_t> bytes) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  auto& c = it->second;
  c.out.insert(c.out.end(), bytes.begin(), bytes.end());
  if (!c.connecting) flush(fd, c);
  else update_epoll(fd, c);
}

int node::outbound_to_server(std::uint32_t index) {
  if (auto it = out_to_server_.find(index); it != out_to_server_.end()) {
    return it->second;
  }
  FASTREG_EXPECTS(index < book_->server_ports.size());
  unique_fd fd = connect_to(book_->server_ports[index]);
  const int raw = fd.get();
  connection c;
  c.fd = std::move(fd);
  c.connecting = true;
  conns_.emplace(raw, std::move(c));
  out_to_server_[index] = raw;
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLOUT;
  ev.data.fd = raw;
  ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, raw, &ev);
  // Introduce ourselves so the server can route replies back.
  queue_bytes(raw, encode_hello(self_));
  return raw;
}

void node::route_bytes(const process_id& to, std::vector<std::uint8_t> bytes) {
  if (to.is_server()) {
    queue_bytes(outbound_to_server(to.index), std::move(bytes));
    return;
  }
  // Replies to clients (or servers acting as clients of this server) go
  // over the connection they introduced themselves on.
  if (auto it = inbound_by_peer_.find(to); it != inbound_by_peer_.end()) {
    queue_bytes(it->second, std::move(bytes));
    return;
  }
  LOG_DEBUG("%s: no route to %s; dropping frame", to_string(self_).c_str(),
            to_string(to).c_str());
}

void node::send(const process_id& to, message m) {
  route_bytes(to, encode_msg_frame(self_, m));
}

namespace {

/// Conservative upper bound on one message's encoded size (fixed fields
/// are ~44 bytes; round up).
std::size_t encoded_size_bound(const message& m) {
  return 64 + m.val.size() + m.prev.size() + m.sig.size();
}

}  // namespace

void node::send_batch(const process_id& to, std::vector<message> msgs) {
  FASTREG_EXPECTS(!msgs.empty());
  if (msgs.size() == 1) {
    send(to, std::move(msgs.front()));
    return;
  }
  // Chunk so no frame approaches frame_buffer::max_frame_bytes -- the
  // receiver treats an oversized frame as stream corruption and resets
  // the connection, which batching large values could otherwise trigger.
  constexpr std::size_t chunk_limit = frame_buffer::max_frame_bytes / 4;
  std::size_t begin = 0;
  std::size_t bytes = 0;
  for (std::size_t i = 0; i < msgs.size(); ++i) {
    const std::size_t sz = encoded_size_bound(msgs[i]);
    if (i > begin && bytes + sz > chunk_limit) {
      route_bytes(to, encode_batch_frame(
                          self_, std::span<const message>(
                                     msgs.data() + begin, i - begin)));
      begin = i;
      bytes = 0;
    }
    bytes += sz;
  }
  const std::size_t n = msgs.size() - begin;
  if (n == 1) {
    send(to, std::move(msgs.back()));
  } else {
    route_bytes(to, encode_batch_frame(
                        self_, std::span<const message>(msgs.data() + begin,
                                                        n)));
  }
}

}  // namespace fastreg::net
