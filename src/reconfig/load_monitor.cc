#include "reconfig/load_monitor.h"

#include "common/check.h"
#include "obs/metrics.h"

namespace fastreg::reconfig {

namespace {

// Process-global event counters: plans are pure values with no node
// identity, so the registry rows are unlabelled. Counted only for plans
// that validate (a rejected plan proposes nothing).
obs::counter& promotions_counter() {
  static obs::counter& c = obs::registry::instance().get_counter(
      "fastreg_reshard_promotions_total");
  return c;
}

obs::counter& demotions_counter() {
  static obs::counter& c = obs::registry::instance().get_counter(
      "fastreg_reshard_demotions_total");
  return c;
}

/// `cur`'s round-robin protocol list resolved to one name per shard.
std::vector<std::string> resolve_assignment(const store::shard_map& cur) {
  const auto& names = cur.config().shard_protocols;
  std::vector<std::string> assignment(cur.num_shards());
  for (std::uint32_t s = 0; s < cur.num_shards(); ++s) {
    assignment[s] = names[s % names.size()];
  }
  return assignment;
}

}  // namespace

std::optional<reconfig_plan> build_hot_shard_plan(
    const store::shard_map& cur, const std::vector<std::uint64_t>& totals,
    const load_monitor_options& opt,
    const std::vector<std::uint32_t>* cool_streaks) {
  const std::uint32_t n = cur.num_shards();
  FASTREG_EXPECTS(totals.size() == n);
  std::uint64_t total = 0;
  for (const auto c : totals) total += c;
  if (total < opt.min_total_ops) return std::nullopt;

  // Resolve the current assignment so the new plan can change exactly
  // the shards that qualify.
  std::vector<std::string> assignment = resolve_assignment(cur);

  const double hot_share = opt.hot_factor / static_cast<double>(n);
  std::uint64_t promoted = 0;
  std::uint64_t demoted = 0;
  for (std::uint32_t s = 0; s < n; ++s) {
    const double share =
        static_cast<double>(totals[s]) / static_cast<double>(total);
    if (share >= hot_share && assignment[s] != opt.fast_protocol) {
      assignment[s] = opt.fast_protocol;
      ++promoted;
    }
  }
  // Demotion, gated on the hysteresis streak: only shards on the fast
  // protocol whose cool streak matured, and never one that is hot right
  // now (a hot window would have reset the streak anyway; the guard
  // keeps the pure function safe on stale streak input).
  if (cool_streaks != nullptr && !opt.demote_protocol.empty() &&
      opt.demote_protocol != opt.fast_protocol) {
    FASTREG_EXPECTS(cool_streaks->size() == n);
    for (std::uint32_t s = 0; s < n; ++s) {
      const double share =
          static_cast<double>(totals[s]) / static_cast<double>(total);
      if (assignment[s] == opt.fast_protocol && share < hot_share &&
          (*cool_streaks)[s] >= opt.demote_after) {
        assignment[s] = opt.demote_protocol;
        ++demoted;
      }
    }
  }
  if (promoted == 0 && demoted == 0) return std::nullopt;

  reconfig_plan plan{n, std::move(assignment)};
  if (!validate_plan(cur, plan).empty()) return std::nullopt;
  if (promoted > 0) promotions_counter().inc(promoted);
  if (demoted > 0) demotions_counter().inc(demoted);
  return plan;
}

void update_cool_streaks(const store::shard_map& cur,
                         const std::vector<std::uint64_t>& totals,
                         const load_monitor_options& opt,
                         std::vector<std::uint32_t>& streaks) {
  const std::uint32_t n = cur.num_shards();
  FASTREG_EXPECTS(totals.size() == n);
  if (streaks.size() != n) streaks.assign(n, 0);
  std::uint64_t total = 0;
  for (const auto c : totals) total += c;
  if (total < opt.min_total_ops) return;  // window too small to judge
  const std::vector<std::string> assignment = resolve_assignment(cur);
  const double cool_share = opt.cool_factor / static_cast<double>(n);
  for (std::uint32_t s = 0; s < n; ++s) {
    const double share =
        static_cast<double>(totals[s]) / static_cast<double>(total);
    const bool cool =
        assignment[s] == opt.fast_protocol && share <= cool_share;
    streaks[s] = cool ? streaks[s] + 1 : 0;
  }
}

std::optional<reconfig_plan> load_monitor::sample(
    const store::shard_map& cur) {
  totals_.assign(cur.num_shards(), 0);
  const auto& base = cur.config().base;
  for (std::uint32_t i = 0; i < base.S(); ++i) {
    ctl_.with_server(i, [&](store::server& s) {
      const auto& counts = s.shard_ops();
      // A server mid-install may briefly disagree on the shard count;
      // only same-geometry counters are comparable.
      if (counts.size() != totals_.size()) return;
      for (std::size_t j = 0; j < counts.size(); ++j) {
        totals_[j] += counts[j];
      }
      s.reset_shard_ops();
    });
  }
  const bool demotion =
      !opt_.demote_protocol.empty() && opt_.demote_after > 0;
  if (demotion) update_cool_streaks(cur, totals_, opt_, streaks_);
  return build_hot_shard_plan(cur, totals_, opt_,
                              demotion ? &streaks_ : nullptr);
}

auto_resharder::auto_resharder(control_plane& ctl, store::map_source maps,
                               options opt)
    : ctl_(ctl), maps_(std::move(maps)), opt_(opt), mon_(ctl, opt.monitor) {
  FASTREG_EXPECTS(maps_ != nullptr);
  FASTREG_EXPECTS(opt_.sample_every > 0);
}

void auto_resharder::step() {
  if (coord_ && !coord_->done()) {
    coord_->step();
    return;
  }
  if (++ticks_ % opt_.sample_every != 0) return;
  auto cur = maps_();
  FASTREG_CHECK(cur != nullptr);
  const auto plan = mon_.sample(*cur);
  if (!plan) return;
  coord_.emplace(ctl_);  // discovery supplies the key set
  if (!coord_->start(std::move(cur), *plan)) {
    // An unreachable fleet (or a racing manual reshard) is transient;
    // drop the attempt and keep watching.
    coord_.reset();
    return;
  }
  ++started_;
  obs::registry::instance()
      .get_counter("fastreg_reshards_started_total")
      .inc();
}

}  // namespace fastreg::reconfig
