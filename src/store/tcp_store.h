// Real-socket deployment of the store: a net::cluster hosting store
// client/server automata, with blocking get/put/multi_get front-ends and
// per-key history gathering.
//
// Threading contract: at most one blocking operation at a time per client
// index (same rule as node::blocking_read); different client indices may
// be driven from different threads concurrently. multi_get pipelines all
// its keys in one reactor step, so requests and replies travel as batch
// frames.
//
// For sustained throughput, `pipeline` replaces the one-blocking-op-at-a-
// time loop with a sliding window: up to `depth` operations in flight per
// client connection, submission blocking only while the window is full.
// Combined with the reactor's batch window (net::node_options) this keeps
// the wire busy across round trips instead of idling between them.
//
// Timeouts: a timed-out op may still be in flight; until it completes,
// further ops on the same (client, key) fail fast (nullopt/false) rather
// than abort, and a late completion closes the abandoned op's history
// record instead of leaking into a later call's results.
#pragma once

#include <chrono>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "net/cluster.h"
#include "store/histories.h"
#include "store/store.h"

namespace fastreg::store {

class tcp_store {
 public:
  explicit tcp_store(store_config cfg,
                     net::node_options nopt = net::node_options::from_env());

  void start() { cluster_.start(); }
  void stop() { cluster_.stop(); }

  [[nodiscard]] const store_config& config() const {
    return proto_.config();
  }
  [[nodiscard]] net::cluster& cluster() { return cluster_; }
  [[nodiscard]] store_protocol& proto() { return proto_; }

  /// Blocking single-key ops. nullopt / false on timeout.
  [[nodiscard]] std::optional<store_result> get(
      std::uint32_t reader_index, const std::string& key,
      std::chrono::milliseconds timeout = std::chrono::seconds(10));
  [[nodiscard]] bool put(
      std::uint32_t writer_index, const std::string& key, value_t v,
      std::chrono::milliseconds timeout = std::chrono::seconds(10));

  /// Pipelined read of several distinct keys issued in ONE step (batched
  /// on the wire). Returns completion-ordered results, or nullopt if any
  /// key timed out (partial completions are still recorded in histories).
  [[nodiscard]] std::optional<std::vector<store_result>> multi_get(
      std::uint32_t reader_index, const std::vector<std::string>& keys,
      std::chrono::milliseconds timeout = std::chrono::seconds(10));

  /// Pipelined write of several distinct keys issued in ONE step.
  [[nodiscard]] bool multi_put(
      std::uint32_t writer_index,
      const std::vector<std::pair<std::string, value_t>>& kvs,
      std::chrono::milliseconds timeout = std::chrono::seconds(10));

  /// Per-key histories of everything invoked so far, rebuilt in
  /// invocation-time order (steady-clock nanoseconds, one machine, so
  /// cross-node ordering is meaningful). Thread-safe.
  [[nodiscard]] store_histories gather() const;

  /// Scrapes server `server_index`'s metrics over a dedicated raw socket
  /// (hello + stats_req, framed exactly like any client): the admin path
  /// an external collector would use. Safe alongside live traffic -- the
  /// scraper introduces itself under a process id no real client holds,
  /// so no reply route is hijacked. Returns the `name{labels} value`
  /// text dump; empty on timeout or connection failure.
  [[nodiscard]] std::string scrape(
      std::uint32_t server_index,
      std::chrono::milliseconds timeout = std::chrono::seconds(10));

  /// Pipelined async session on one client: keeps up to `depth` ops in
  /// flight on the client's connection instead of one blocking op at a
  /// time. get/put SUBMIT (returning once the op is on the wire),
  /// blocking only while the window is full or the key already has an op
  /// in flight; drain() waits for everything submitted to complete.
  /// Completed results accumulate (completion-ordered) until
  /// take_results. One pipeline per client index at a time, driven from
  /// one thread (the same exclusivity rule as the blocking calls, which
  /// must not be mixed with an active pipeline on that index).
  class pipeline {
   public:
    pipeline(tcp_store& ts, bool is_writer, std::uint32_t index,
             std::uint32_t depth);

    [[nodiscard]] bool get(
        const std::string& key,
        std::chrono::milliseconds timeout = std::chrono::seconds(10));
    [[nodiscard]] bool put(
        const std::string& key, value_t v,
        std::chrono::milliseconds timeout = std::chrono::seconds(10));
    /// Waits until no submitted op remains in flight and harvests the
    /// final completions. False on timeout (ops may still be in flight).
    [[nodiscard]] bool drain(
        std::chrono::milliseconds timeout = std::chrono::seconds(10));

    [[nodiscard]] std::uint64_t submitted() const { return submitted_; }
    /// Harvested completions since the last call (may include late
    /// completions of ops an earlier timed-out blocking call abandoned).
    [[nodiscard]] std::vector<store_result> take_results();

   private:
    [[nodiscard]] bool submit(const std::string& key, bool is_put,
                              value_t v, std::chrono::milliseconds timeout);
    /// take_completions on the reactor; closes log entries and stashes
    /// the results.
    void harvest();

    tcp_store& ts_;
    net::node& node_;
    process_id client_;
    std::uint32_t depth_;
    std::uint64_t submitted_{0};
    std::vector<store_result> results_;
  };

 private:
  friend class pipeline;
  struct raw_op {
    std::string key{};
    process_id client{};
    bool is_put{false};
    std::uint64_t t0{0};
    std::optional<std::uint64_t> t1{};
    ts_t ts{k_initial_ts};
    std::int32_t wid{0};
    value_t val{};
    int rounds{0};
  };

  std::optional<std::vector<store_result>> run_ops(
      net::node& n, const process_id& client,
      const std::vector<std::pair<std::string, value_t>>& kvs, bool is_put,
      std::chrono::milliseconds timeout);

  /// Appends an incomplete log entry for a just-invoked op (mu_ held
  /// inside), registers it in open_, and returns its log index.
  std::size_t log_open(const process_id& client, const std::string& key,
                       bool is_put, const value_t& v, std::uint64_t t0);
  /// Closes the earliest incomplete entry for each result's (client,
  /// key); returns the closed log indices (parallel to `results`; npos
  /// for results with no open entry).
  std::vector<std::size_t> log_close(const process_id& client,
                                     const std::vector<store_result>& results,
                                     std::uint64_t t1);

  store_protocol proto_;
  net::cluster cluster_;
  mutable std::mutex mu_;
  std::vector<raw_op> log_;
  /// Indices of incomplete log_ entries per (client, key), oldest first,
  /// so completions match their op in O(log n) instead of rescanning the
  /// whole append-only log.
  std::map<std::pair<process_id, std::string>, std::deque<std::size_t>>
      open_;
};

}  // namespace fastreg::store
