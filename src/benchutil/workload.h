// Measured simulation workloads: drive a protocol on the timed simulator
// and report per-operation latency (in simulated time units), round-trips,
// and message complexity. One simulated time unit = one "tick" of the
// uniform link-delay model; with delay U[lo, hi], a request/reply
// round-trip costs roughly lo+lo .. hi+hi ticks, so shapes (1 RTT vs 2
// RTT) are directly visible.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "benchutil/stats.h"
#include "checker/history.h"
#include "obs/trace.h"
#include "registers/automaton.h"
#include "store/sim_store.h"

namespace fastreg::benchutil {

struct workload_options {
  std::uint32_t num_writes{20};
  std::uint32_t reads_per_reader{20};
  std::uint64_t seed{1};
  std::uint64_t delay_lo{50};
  std::uint64_t delay_hi{150};
  /// false: ops run one at a time (pure latency). true: every client is
  /// closed-loop (contention shapes).
  bool concurrent{false};
  /// Crash this many servers up front (must be <= cfg.t()).
  std::uint32_t crash_servers{0};
  /// Crash them mid-run (after half the writes) instead of up front.
  bool crash_midway{false};
};

struct latency_report {
  stats read_latency;
  stats write_latency;
  stats read_rounds;
  stats write_rounds;
  /// Rounds MEASURED by the obs tracer's protocol hooks (issue/ack
  /// boundaries), independent of the rounds the automata self-report in
  /// completions. The two agreeing is the cross-check E1/E5 print.
  obs::rounds_summary traced;
  double msgs_per_op{0};
  bool all_complete{true};
  checker::history hist;
};

/// Runs the workload on the timed simulator and collects the report.
[[nodiscard]] latency_report run_measured(const protocol& proto,
                                          const system_config& cfg,
                                          const workload_options& opt);

// ------------------------------------------------------- multi-key store --

/// How the closed-loop store workload picks keys.
enum class key_dist {
  uniform,
  /// Zipf(s) over key rank: P(key_i) proportional to 1/(i+1)^s. The skew
  /// that makes one shard hot -- the scenario per-shard protocol choice
  /// and live resharding exist for.
  zipf,
};

/// Inverse-CDF Zipf sampler over ranks 0..n-1 (rank 0 hottest).
/// Construction is O(n); sampling is O(log n).
class zipf_sampler {
 public:
  zipf_sampler(std::uint32_t n, double s);
  [[nodiscard]] std::uint32_t sample(rng& r) const;
  /// P(rank k): the sampler's exact discrete distribution.
  [[nodiscard]] double probability(std::uint32_t k) const;
  /// Domain size: ranks 0..n()-1.
  [[nodiscard]] std::uint32_t n() const {
    return static_cast<std::uint32_t>(cdf_.size());
  }

 private:
  std::vector<double> cdf_;  // cdf_[k] = P(rank <= k), cdf_.back() == 1
};

/// Closed-loop multi-key store workload: every client keeps `batch`
/// pipelined ops in flight on distinct random keys (readers issue gets,
/// writers issue puts with per-writer-unique values) and re-invokes the
/// moment its batch completes. Batched transport makes the
/// envelopes-per-op vs messages-per-op gap the headline number.
struct store_workload_options {
  std::uint32_t num_keys{16};
  std::uint32_t gets_per_reader{100};
  std::uint32_t puts_per_writer{40};
  /// Ops pipelined per invocation step (capped at num_keys).
  std::uint32_t batch{4};
  std::uint64_t seed{1};
  std::uint64_t delay_lo{50};
  std::uint64_t delay_hi{150};
  key_dist dist{key_dist::uniform};
  /// Zipf exponent (dist == zipf); 0.99 is the YCSB-style default.
  double zipf_s{0.99};
};

struct store_report {
  stats get_latency;
  stats put_latency;
  /// Completed ops per 1000 simulated ticks.
  double ops_per_ktick{0};
  double msgs_per_op{0};
  double envelopes_per_op{0};
  bool all_complete{true};
  store::store_histories hist;
};

/// Runs the store workload on the timed simulator.
[[nodiscard]] store_report run_store_measured(
    const store::store_config& cfg, const store_workload_options& opt);

/// Samples `k` distinct key names ("key0".."key{n-1}") by partial
/// Fisher-Yates over a caller-owned index scratchpad of size n. Shared by
/// the closed-loop generator and the store benches.
[[nodiscard]] std::vector<std::string> sample_distinct_keys(
    rng& r, std::vector<std::uint32_t>& idx, std::uint32_t k);

/// Samples `k` distinct key names Zipf-distributed by rank (rejection on
/// duplicates, so small k stays hot-key heavy without repeats). Requires
/// k <= zipf.n().
[[nodiscard]] std::vector<std::string> sample_distinct_keys_zipf(
    rng& r, const zipf_sampler& zipf, std::uint32_t k);

}  // namespace fastreg::benchutil
