#include "store/histories.h"

#include <algorithm>

namespace fastreg::store {

std::size_t store_histories::total_ops() const {
  std::size_t n = 0;
  for (const auto& [key, h] : by_key_) n += h.size();
  return n;
}

std::size_t store_histories::max_key_ops() const {
  std::size_t n = 0;
  for (const auto& [key, h] : by_key_) n = std::max(n, h.size());
  return n;
}

bool store_histories::all_complete() const {
  for (const auto& [key, h] : by_key_) {
    for (const auto& op : h.ops()) {
      if (!op.response_time.has_value()) return false;
    }
  }
  return true;
}

checker::check_result store_histories::verify(
    verify_mode mode, std::string* failing_key) const {
  for (const auto& [key, h] : by_key_) {
    checker::check_result res;
    switch (mode) {
      case verify_mode::swmr_atomic:
        res = checker::check_swmr_atomicity(h);
        break;
      case verify_mode::swmr_regular:
        res = checker::check_swmr_regular(h);
        break;
      case verify_mode::mwmr:
        res = checker::check_mwmr_linearizable(h);
        break;
      case verify_mode::mwmr_oracle:
        res = checker::check_linearizable(h);
        break;
    }
    if (!res.ok) {
      if (failing_key != nullptr) *failing_key = key;
      return {false, "key \"" + key + "\": " + res.error};
    }
  }
  return {};
}

}  // namespace fastreg::store
