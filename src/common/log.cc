#include "common/log.h"

#include <cstdarg>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace fastreg {
namespace {

log_level level_from_env() {
  const char* env = std::getenv("FASTREG_LOG");
  if (env == nullptr) return log_level::off;
  if (std::strcmp(env, "trace") == 0) return log_level::trace;
  if (std::strcmp(env, "debug") == 0) return log_level::debug;
  if (std::strcmp(env, "info") == 0) return log_level::info;
  if (std::strcmp(env, "warn") == 0) return log_level::warn;
  if (std::strcmp(env, "error") == 0) return log_level::error;
  return log_level::off;
}

const char* level_name(log_level lv) {
  switch (lv) {
    case log_level::trace:
      return "TRACE";
    case log_level::debug:
      return "DEBUG";
    case log_level::info:
      return "INFO";
    case log_level::warn:
      return "WARN";
    case log_level::error:
      return "ERROR";
    case log_level::off:
      break;
  }
  return "?";
}

std::mutex& log_mutex() {
  static std::mutex m;
  return m;
}

std::string& node_storage() {
  thread_local std::string node;
  return node;
}

}  // namespace

log_level& log_config::storage() {
  static log_level lv = level_from_env();
  return lv;
}

log_level log_config::level() { return storage(); }

void log_config::set_level(log_level lv) { storage() = lv; }

void log_set_node(std::string node) { node_storage() = std::move(node); }

const std::string& log_node() { return node_storage(); }

void log_write(log_level lv, const char* file, int line,
               const std::string& msg) {
  const char* base = std::strrchr(file, '/');
  base = base != nullptr ? base + 1 : file;
  const std::string& node = node_storage();
  std::lock_guard<std::mutex> guard(log_mutex());
  if (node.empty()) {
    std::fprintf(stderr, "[%s %s:%d] %s\n", level_name(lv), base, line,
                 msg.c_str());
  } else {
    std::fprintf(stderr, "[%s %s %s:%d] %s\n", level_name(lv), node.c_str(),
                 base, line, msg.c_str());
  }
}

namespace detail {

std::string log_format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

}  // namespace detail
}  // namespace fastreg
