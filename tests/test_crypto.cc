// Unit tests for the crypto substrate: SHA-256 against FIPS test vectors,
// bignum arithmetic, RSA sign/verify, and the signature-scheme properties
// the Figure 5 protocol relies on (Authentication, Unforgeability).
#include <gtest/gtest.h>

#include "crypto/bignum.h"
#include "crypto/rsa.h"
#include "crypto/sha256.h"
#include "crypto/sig.h"

namespace fastreg::crypto {
namespace {

TEST(Sha256, EmptyStringVector) {
  EXPECT_EQ(
      sha256::hex(sha256::hash(std::string{})),
      "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, AbcVector) {
  EXPECT_EQ(
      sha256::hex(sha256::hash(std::string{"abc"})),
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockVector) {
  EXPECT_EQ(
      sha256::hex(sha256::hash(std::string{
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"})),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(
      sha256::hex(h.finish()),
      "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  sha256 h;
  h.update(std::string{"hello "});
  h.update(std::string{"world"});
  EXPECT_EQ(sha256::hex(h.finish()),
            sha256::hex(sha256::hash(std::string{"hello world"})));
}

TEST(Sha256, ResetAllowsReuse) {
  sha256 h;
  h.update(std::string{"garbage"});
  h.reset();
  h.update(std::string{"abc"});
  EXPECT_EQ(
      sha256::hex(h.finish()),
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

// ------------------------------------------------------------------ bignum

TEST(Bignum, BasicArithmetic) {
  const bignum a{1000000007ull};
  const bignum b{998244353ull};
  EXPECT_EQ(a.add(b).low_u64(), 1000000007ull + 998244353ull);
  EXPECT_EQ(a.sub(b).low_u64(), 1000000007ull - 998244353ull);
  EXPECT_EQ(bignum{0xffffffffull}.add(bignum{1}).low_u64(), 0x100000000ull);
}

TEST(Bignum, MulMatches128BitReference) {
  const std::uint64_t x = 0xfedcba9876543210ull;
  const std::uint64_t y = 0x0123456789abcdefull;
  const bignum p = bignum{x}.mul(bignum{y});
  const unsigned __int128 ref =
      static_cast<unsigned __int128>(x) * static_cast<unsigned __int128>(y);
  EXPECT_EQ(p.mod(bignum{~0ull}).low_u64(),
            static_cast<std::uint64_t>(ref % (~0ull)));
}

TEST(Bignum, DivmodIdentity) {
  rng r(5);
  for (int i = 0; i < 50; ++i) {
    const bignum a = bignum::random_bits(160, r);
    const bignum b = bignum::random_bits(70, r);
    const auto [q, rem] = a.divmod(b);
    EXPECT_TRUE(rem < b);
    EXPECT_EQ(q.mul(b).add(rem), a);
  }
}

TEST(Bignum, ShiftRoundTrip) {
  rng r(6);
  const bignum a = bignum::random_bits(100, r);
  EXPECT_EQ(a.shl(37).shr(37), a);
}

TEST(Bignum, HexRoundTrip) {
  const bignum a = bignum::from_hex("deadbeefcafebabe0123456789");
  EXPECT_EQ(a.to_hex(), "deadbeefcafebabe0123456789");
}

TEST(Bignum, BytesRoundTrip) {
  rng r(8);
  const bignum a = bignum::random_bits(121, r);
  EXPECT_EQ(bignum::from_bytes(std::span<const std::uint8_t>(a.to_bytes())),
            a);
}

TEST(Bignum, ModexpSmallCases) {
  // 3^7 mod 11 = 2187 mod 11 = 9.
  EXPECT_EQ(bignum{3}.modexp(bignum{7}, bignum{11}).low_u64(), 9u);
  // Fermat: a^(p-1) = 1 mod p.
  EXPECT_EQ(bignum{12345}.modexp(bignum{1000000006}, bignum{1000000007})
                .low_u64(),
            1u);
}

TEST(Bignum, ModinvInvertsMultiplication) {
  rng r(10);
  const bignum m = bignum::random_prime(64, r);
  for (int i = 0; i < 10; ++i) {
    const bignum a = bignum::random_below(m, r);
    if (a.is_zero()) continue;
    const bignum inv = a.modinv(m);
    EXPECT_EQ(a.mul(inv).mod(m).low_u64(), 1u);
  }
}

TEST(Bignum, ModinvOfNonInvertibleIsZero) {
  EXPECT_TRUE(bignum{6}.modinv(bignum{9}).is_zero());
}

TEST(Bignum, GcdMatchesEuclid) {
  EXPECT_EQ(bignum::gcd(bignum{48}, bignum{18}).low_u64(), 6u);
  EXPECT_EQ(bignum::gcd(bignum{17}, bignum{31}).low_u64(), 1u);
}

TEST(Bignum, PrimalityKnownValues) {
  rng r(12);
  EXPECT_TRUE(bignum{2}.is_probable_prime(r));
  EXPECT_TRUE(bignum{1000000007ull}.is_probable_prime(r));
  EXPECT_FALSE(bignum{1000000007ull * 3}.is_probable_prime(r));
  EXPECT_FALSE(bignum{561}.is_probable_prime(r));  // Carmichael number
  EXPECT_FALSE(bignum{1}.is_probable_prime(r));
}

TEST(Bignum, RandomPrimeHasExactWidth) {
  rng r(13);
  const bignum p = bignum::random_prime(96, r);
  EXPECT_EQ(p.bit_length(), 96u);
  EXPECT_TRUE(p.is_probable_prime(r));
}

// --------------------------------------------------------------------- RSA

TEST(Rsa, SignVerifyRoundTrip) {
  rng r(42);
  const rsa_keypair kp = rsa_generate(512, r);
  const std::string msg = "ts=7 val=hello prev=world";
  const std::vector<std::uint8_t> payload(msg.begin(), msg.end());
  const auto sig = rsa_sign(kp.priv, payload);
  EXPECT_TRUE(rsa_verify(kp.pub, payload, sig));
}

TEST(Rsa, TamperedPayloadRejected) {
  rng r(43);
  const rsa_keypair kp = rsa_generate(512, r);
  std::vector<std::uint8_t> payload = {1, 2, 3, 4};
  const auto sig = rsa_sign(kp.priv, payload);
  payload[0] ^= 1;
  EXPECT_FALSE(rsa_verify(kp.pub, payload, sig));
}

TEST(Rsa, TamperedSignatureRejected) {
  rng r(44);
  const rsa_keypair kp = rsa_generate(512, r);
  const std::vector<std::uint8_t> payload = {9, 9, 9};
  auto sig = rsa_sign(kp.priv, payload);
  sig[0] ^= 0x80;
  EXPECT_FALSE(rsa_verify(kp.pub, payload, sig));
}

TEST(Rsa, WrongKeyRejected) {
  rng r(45);
  const rsa_keypair kp1 = rsa_generate(512, r);
  const rsa_keypair kp2 = rsa_generate(512, r);
  const std::vector<std::uint8_t> payload = {5, 5, 5};
  const auto sig = rsa_sign(kp1.priv, payload);
  EXPECT_FALSE(rsa_verify(kp2.pub, payload, sig));
}

TEST(Rsa, EmptySignatureRejected) {
  rng r(46);
  const rsa_keypair kp = rsa_generate(512, r);
  EXPECT_FALSE(rsa_verify(kp.pub, std::vector<std::uint8_t>{1}, {}));
}

// ------------------------------------------------------- signature schemes

class SigSchemeTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SigSchemeTest, AuthenticationProperty) {
  auto scheme = make_signature_scheme(GetParam(), 77);
  const std::vector<std::uint8_t> payload = {1, 2, 3};
  const auto sig = scheme->sign(writer_id(0), payload);
  EXPECT_TRUE(scheme->verify(writer_id(0), payload, sig));
}

TEST_P(SigSchemeTest, DeterministicAcrossInstances) {
  auto a = make_signature_scheme(GetParam(), 123);
  auto b = make_signature_scheme(GetParam(), 123);
  const std::vector<std::uint8_t> payload = {7, 7};
  EXPECT_TRUE(b->verify(writer_id(0), payload, a->sign(writer_id(0), payload)));
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SigSchemeTest,
                         ::testing::Values("oracle", "rsa"));

TEST(SigScheme, UnforgeabilityOracle) {
  oracle_signature_scheme scheme(99);
  const std::vector<std::uint8_t> payload = {1, 2, 3};
  const auto sig = scheme.sign(writer_id(0), payload);
  // Another signer's signature over the same payload does not verify as w's.
  const auto other = scheme.sign(reader_id(0), payload);
  EXPECT_FALSE(scheme.verify(writer_id(0), payload, other));
  // Nor does a mutated signature.
  auto bad = sig;
  bad[0] ^= 1;
  EXPECT_FALSE(scheme.verify(writer_id(0), payload, bad));
  // Nor a signature over different content.
  EXPECT_FALSE(
      scheme.verify(writer_id(0), std::vector<std::uint8_t>{9}, sig));
}

TEST(SigScheme, NullSchemeAcceptsEverything) {
  null_signature_scheme scheme;
  EXPECT_TRUE(scheme.verify(writer_id(0), std::vector<std::uint8_t>{1}, {}));
}

TEST(SigScheme, FactoryNames) {
  EXPECT_EQ(make_signature_scheme("null")->name(), "null");
  EXPECT_EQ(make_signature_scheme("oracle")->name(), "oracle");
  EXPECT_EQ(make_signature_scheme("rsa")->name(), "rsa");
}

}  // namespace
}  // namespace fastreg::crypto
