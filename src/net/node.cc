#include "net/node.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/timerfd.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <span>

#include "common/check.h"
#include "common/log.h"
#include "obs/trace.h"

namespace fastreg::net {

namespace {
/// The reactor struct the current thread is running, if any. Paired with
/// the struct's owner back-pointer so nested nodes in one process never
/// mistake each other's reactors for their own.
thread_local void* tls_reactor = nullptr;
}  // namespace

std::uint64_t node::now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

node_options node_options::from_env() {
  node_options opt;
  // Strict parsing throughout: a malformed value must not silently
  // configure something other than what was asked for (a bench run under
  // a typo'd knob would measure the wrong transport).
  if (const char* env = std::getenv("FASTREG_BATCH_WINDOW_US");
      env != nullptr && *env != '\0') {
    bool ok = false;
    if (std::strcmp(env, "adaptive") == 0) {
      opt.adaptive = true;
      ok = true;
    } else if (std::strncmp(env, "adaptive:", 9) == 0) {
      char* end = nullptr;
      const unsigned long cap = std::strtoul(env + 9, &end, 10);
      if (end != env + 9 && *end == '\0' && cap > 0) {
        opt.adaptive = true;
        opt.adaptive_cap_us = static_cast<std::uint32_t>(cap);
        ok = true;
      }
    } else {
      char* end = nullptr;
      const unsigned long us = std::strtoul(env, &end, 10);
      if (end != env && *end == '\0') {
        opt.batch_window_us = static_cast<std::uint32_t>(us);
        ok = true;
      }
    }
    if (!ok) {
      LOG_WARN("ignoring malformed FASTREG_BATCH_WINDOW_US=\"%s\" (expected "
               "an integer, \"adaptive\", or \"adaptive:<cap_us>\"); using "
               "immediate flush",
               env);
      opt = node_options{};
    }
  }
  if (const char* env = std::getenv("FASTREG_REACTORS");
      env != nullptr && *env != '\0') {
    char* end = nullptr;
    const unsigned long n = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && n > 0) {
      opt.reactors = static_cast<std::uint32_t>(n);
    } else {
      LOG_WARN("ignoring malformed FASTREG_REACTORS=\"%s\" (expected a "
               "positive integer); using 1 reactor",
               env);
    }
  }
  if (const char* env = std::getenv("FASTREG_FLUSH_BYTES");
      env != nullptr && *env != '\0') {
    char* end = nullptr;
    const unsigned long b = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0') {
      opt.flush_bytes = static_cast<std::uint32_t>(b);
    } else {
      LOG_WARN("ignoring malformed FASTREG_FLUSH_BYTES=\"%s\" (expected a "
               "byte count, 0 = no budget); keeping the default",
               env);
    }
  }
  return opt;
}

// ------------------------------------------------------------ construction --

node::node(system_config cfg, std::shared_ptr<const address_book> book,
           node_options opt)
    : cfg_(std::move(cfg)), book_(std::move(book)), opt_(opt) {
  FASTREG_EXPECTS(opt_.reactors >= 1);
  init_reactors();
}

node::node(system_config cfg, std::unique_ptr<automaton> a,
           std::shared_ptr<const address_book> book, node_options opt)
    : node(std::move(cfg), std::move(book), opt) {
  add_actor(std::move(a));
}

node::~node() { stop(); }

void node::init_reactors() {
  for (std::uint32_t i = 0; i < opt_.reactors; ++i) {
    auto r = std::make_unique<reactor>();
    r->index = i;
    r->owner = this;
    r->epoll_fd.reset(::epoll_create1(0));
    FASTREG_CHECK(r->epoll_fd.valid());
    r->event_fd.reset(::eventfd(0, EFD_NONBLOCK));
    FASTREG_CHECK(r->event_fd.valid());
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = r->event_fd.get();
    FASTREG_CHECK(::epoll_ctl(r->epoll_fd.get(), EPOLL_CTL_ADD,
                              r->event_fd.get(), &ev) == 0);
    r->timer_fd.reset(::timerfd_create(CLOCK_MONOTONIC, TFD_NONBLOCK));
    FASTREG_CHECK(r->timer_fd.valid());
    ev = epoll_event{};
    ev.events = EPOLLIN;
    ev.data.fd = r->timer_fd.get();
    FASTREG_CHECK(::epoll_ctl(r->epoll_fd.get(), EPOLL_CTL_ADD,
                              r->timer_fd.get(), &ev) == 0);
    reactors_.push_back(std::move(r));
  }
}

void node::bind_node_metrics() {
  if (metrics_bound_) return;
  metrics_bound_ = true;
  // One label per node; handles stay valid for the life of the process
  // and all underlying metrics are thread-safe, so every reactor shares
  // them and the hot path never touches the registry's lock. Everything
  // a reactor thread could need lazily is created here, off-reactor: the
  // registry asserts its fetch-or-create path stays cold on reactors.
  auto& reg = obs::registry::instance();
  const std::string lbl = "node=\"" + to_string(self_) + "\"";
  wm_.frames_out = &reg.get_counter("fastreg_net_frames_out_total", lbl);
  wm_.bytes_out = &reg.get_counter("fastreg_net_bytes_out_total", lbl);
  wm_.frames_in = &reg.get_counter("fastreg_net_frames_in_total", lbl);
  wm_.bytes_in = &reg.get_counter("fastreg_net_bytes_in_total", lbl);
  wm_.writev_calls = &reg.get_counter("fastreg_net_writev_calls_total", lbl);
  wm_.short_writes =
      &reg.get_counter("fastreg_net_short_write_resumptions_total", lbl);
  wm_.flushes_immediate = &reg.get_counter(
      "fastreg_net_flushes_total", lbl + ",reason=\"immediate\"");
  wm_.flushes_window = &reg.get_counter("fastreg_net_flushes_total",
                                        lbl + ",reason=\"window_expired\"");
  wm_.flushes_step = &reg.get_counter("fastreg_net_flushes_total",
                                      lbl + ",reason=\"step_end\"");
  wm_.flushes_bytes = &reg.get_counter("fastreg_net_flushes_total",
                                       lbl + ",reason=\"bytes\"");
  wm_.window_widen =
      &reg.get_counter("fastreg_net_window_widen_total", lbl);
  wm_.conn_resets = &reg.get_counter("fastreg_net_conn_resets_total", lbl);
  wm_.connections = &reg.get_gauge("fastreg_net_connections", lbl);
  wm_.backlog_bytes = &reg.get_gauge("fastreg_net_backlog_bytes", lbl);
  wm_.flush_ns = &reg.get_histogram("fastreg_net_flush_ns", lbl);
  wm_.window_wait_ns = &reg.get_histogram("fastreg_net_window_wait_ns", lbl);
  rm_.resize(opt_.reactors);
  for (std::uint32_t i = 0; i < opt_.reactors; ++i) {
    const std::string rl = lbl + ",reactor=\"" + std::to_string(i) + "\"";
    rm_[i].tasks_run = &reg.get_counter("fastreg_net_reactor_tasks_total", rl);
    rm_[i].accepts =
        &reg.get_counter("fastreg_net_reactor_accepts_total", rl);
    rm_[i].ships_in =
        &reg.get_counter("fastreg_net_reactor_ships_total", rl);
    rm_[i].connections = &reg.get_gauge("fastreg_net_reactor_connections", rl);
  }
  preheat_framing_metrics();
  obs::preheat_trace_metrics();
}

std::size_t node::add_actor(std::unique_ptr<automaton> a) {
  FASTREG_EXPECTS(a != nullptr);
  {
    std::lock_guard<std::mutex> lk(mu_);
    FASTREG_EXPECTS(!started_);
  }
  auto st = std::make_unique<actor_state>();
  st->automaton_ = std::move(a);
  st->self = st->automaton_->self();
  st->home_reactor =
      static_cast<std::uint32_t>(actors_.size()) % opt_.reactors;
  st->async_iface = dynamic_cast<async_client_iface*>(st->automaton_.get());
  st->reader = as_reader(st->automaton_.get());
  st->writer = as_writer(st->automaton_.get());
  st->rec = &obs::recorder_for(st->self);
  st->port.n = this;
  st->port.a = st.get();
  if (actors_.empty()) {
    // The first actor names the node (log tag, metric labels).
    self_ = st->self;
    bind_node_metrics();
  }
  actors_.push_back(std::move(st));
  return actors_.size() - 1;
}

node::actor_state& node::actor_at(std::size_t i) const {
  FASTREG_EXPECTS(i < actors_.size());
  return *actors_[i];
}

const process_id& node::actor_self(std::size_t actor) const {
  return actor_at(actor).self;
}

node::reactor* node::current_reactor() const {
  auto* r = static_cast<reactor*>(tls_reactor);
  return r != nullptr && r->owner == this ? r : nullptr;
}

void node::bind_listener(std::uint16_t port) {
  listen_fd_ = listen_on(port);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_.get();
  FASTREG_CHECK(::epoll_ctl(reactors_[0]->epoll_fd.get(), EPOLL_CTL_ADD,
                            listen_fd_.get(), &ev) == 0);
}

std::uint16_t node::listen_port() const {
  FASTREG_EXPECTS(listen_fd_.valid());
  return local_port(listen_fd_.get());
}

void node::start() {
  FASTREG_EXPECTS(!actors_.empty());
  FASTREG_EXPECTS(!reactors_[0]->thread.joinable());
  {
    std::lock_guard<std::mutex> lk(mu_);
    started_ = true;
    stop_requested_ = false;
    for (auto& r : reactors_) r->exited = false;
  }
  for (auto& r : reactors_) {
    r->thread = std::thread([this, rp = r.get()] { reactor_main(*rp); });
  }
}

void node::stop() {
  if (reactors_.empty() || !reactors_[0]->thread.joinable()) return;
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_requested_ = true;
  }
  for (auto& r : reactors_) wake(*r);
  for (auto& r : reactors_) {
    if (r->thread.joinable()) r->thread.join();
  }
}

void node::wake(reactor& r) {
  // A lost wakeup strands every task posted to this reactor until the
  // next epoll timeout: retry EINTR, and log anything else. EAGAIN is
  // benign -- the eventfd counter is saturated, so a wakeup is already
  // pending and the reactor cannot miss the queue.
  const std::uint64_t one = 1;
  for (;;) {
    const ssize_t n = ::write(r.event_fd.get(), &one, sizeof one);
    if (n == static_cast<ssize_t>(sizeof one)) return;
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    LOG_WARN("%s: reactor %u wakeup write failed (%s); posted tasks may "
             "wait a full epoll timeout",
             to_string(self_).c_str(), r.index,
             n < 0 ? std::strerror(errno) : "short write");
    return;
  }
}

void node::post_to(reactor& r, std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lk(r.q_mu);
    r.tasks.push_back(std::move(fn));
  }
  wake(r);
}

// ----------------------------------------------------------- client calls --

std::optional<read_result> node::blocking_read(
    std::chrono::milliseconds timeout) {
  return blocking_read(0, timeout);
}

std::optional<read_result> node::blocking_read(
    std::size_t actor, std::chrono::milliseconds timeout) {
  actor_state& a = actor_at(actor);
  FASTREG_EXPECTS(a.reader != nullptr);
  std::uint64_t before;
  {
    std::lock_guard<std::mutex> lk(mu_);
    before = a.reads_done;
  }
  post_to(home_of(a), [this, &a] {
    {
      std::lock_guard<std::mutex> step(a.step_mu);
      {
        std::lock_guard<std::mutex> lk(mu_);
        a.open_op_index = a.hist.begin_op(a.self, false, now_ns());
        a.op_open = true;
      }
      // Register automata never stamp their messages; the ambient trace
      // context tags everything this invocation sends (see send_from).
      obs::scoped_trace_ctx trace_ctx(obs::next_trace_id(), 0);
      a.reader->invoke_read(a.port);
    }
    poll_client_completion(a);
  });
  std::unique_lock<std::mutex> lk(mu_);
  if (!cv_.wait_for(lk, timeout, [&] { return a.reads_done > before; })) {
    return std::nullopt;
  }
  return a.reader->last_read();
}

bool node::blocking_write(value_t v, std::chrono::milliseconds timeout) {
  return blocking_write(0, std::move(v), timeout);
}

bool node::blocking_write(std::size_t actor, value_t v,
                          std::chrono::milliseconds timeout) {
  actor_state& a = actor_at(actor);
  FASTREG_EXPECTS(a.writer != nullptr);
  std::uint64_t before;
  {
    std::lock_guard<std::mutex> lk(mu_);
    before = a.writes_done;
  }
  post_to(home_of(a), [this, &a, v = std::move(v)]() mutable {
    {
      std::lock_guard<std::mutex> step(a.step_mu);
      {
        std::lock_guard<std::mutex> lk(mu_);
        a.open_op_index = a.hist.begin_op(a.self, true, now_ns(), v);
        a.op_open = true;
      }
      obs::scoped_trace_ctx trace_ctx(obs::next_trace_id(), 0);
      a.writer->invoke_write(a.port, std::move(v));
    }
    poll_client_completion(a);
  });
  std::unique_lock<std::mutex> lk(mu_);
  return cv_.wait_for(lk, timeout, [&] { return a.writes_done > before; });
}

bool node::blocking_op(const std::function<void(automaton&, netout&)>& start,
                       std::chrono::milliseconds timeout) {
  return blocking_op(0, start, timeout);
}

bool node::blocking_op(std::size_t actor,
                       const std::function<void(automaton&, netout&)>& start,
                       std::chrono::milliseconds timeout) {
  actor_state& a = actor_at(actor);
  FASTREG_EXPECTS(a.async_iface != nullptr);
  auto started = std::make_shared<bool>(false);
  post_to(home_of(a), [this, &a, start, started] {
    {
      std::lock_guard<std::mutex> step(a.step_mu);
      start(*a.automaton_, a.port);
      {
        std::lock_guard<std::mutex> lk(mu_);
        *started = true;
        // Mirror immediately: the wait predicate must not observe the
        // stale pre-invocation idle state as completion.
        a.async_busy = a.async_iface->op_in_progress();
        a.async_done = a.async_iface->ops_completed();
        a.async_in_flight = a.async_iface->ops_in_flight();
      }
    }
    cv_.notify_all();
  });
  std::unique_lock<std::mutex> lk(mu_);
  return cv_.wait_for(lk, timeout,
                      [&] { return *started && !a.async_busy; });
}

bool node::wait_ops_in_flight_below(std::size_t limit,
                                    std::chrono::milliseconds timeout) {
  return wait_ops_in_flight_below(0, limit, timeout);
}

bool node::wait_ops_in_flight_below(std::size_t actor, std::size_t limit,
                                    std::chrono::milliseconds timeout) {
  actor_state& a = actor_at(actor);
  FASTREG_EXPECTS(a.async_iface != nullptr);
  std::unique_lock<std::mutex> lk(mu_);
  return cv_.wait_for(lk, timeout,
                      [&] { return a.async_in_flight < limit; });
}

bool node::wait_ops_completed(std::uint64_t target,
                              std::chrono::milliseconds timeout) {
  return wait_ops_completed(0, target, timeout);
}

bool node::wait_ops_completed(std::size_t actor, std::uint64_t target,
                              std::chrono::milliseconds timeout) {
  actor_state& a = actor_at(actor);
  FASTREG_EXPECTS(a.async_iface != nullptr);
  std::unique_lock<std::mutex> lk(mu_);
  return cv_.wait_for(lk, timeout, [&] { return a.async_done >= target; });
}

std::uint64_t node::async_completed() const { return async_completed(0); }

std::uint64_t node::async_completed(std::size_t actor) const {
  actor_state& a = actor_at(actor);
  std::lock_guard<std::mutex> lk(mu_);
  return a.async_done;
}

void node::run_on_reactor(const std::function<void(automaton&)>& fn) {
  run_on_reactor(0, fn);
}

void node::run_on_reactor(std::size_t actor,
                          const std::function<void(automaton&)>& fn) {
  // Reactor not running (never started, already stopped, or it exited
  // before draining the task): the caller has exclusive access, run
  // inline instead of waiting forever on a task nothing will drain.
  if (try_run_on_reactor(actor, fn)) return;
  actor_state& a = actor_at(actor);
  std::lock_guard<std::mutex> step(a.step_mu);
  fn(*a.automaton_);
}

bool node::try_run_on_reactor(const std::function<void(automaton&)>& fn) {
  return try_run_on_reactor(0, fn);
}

bool node::try_run_on_reactor(std::size_t actor,
                              const std::function<void(automaton&)>& fn) {
  actor_state& a = actor_at(actor);
  reactor& home = home_of(a);
  {
    // Only a definitely-not-running reactor short-circuits. A merely
    // stop-REQUESTED reactor may still be draining: returning false here
    // would let run_on_reactor's inline fallback race the live reactor
    // thread; posting is safe either way (the task runs on the reactor,
    // or the exit path discards it and the wait below observes that).
    std::lock_guard<std::mutex> lk(mu_);
    if (!started_ || home.exited) return false;
  }
  auto done = std::make_shared<bool>(false);
  // fn is copied into the task: if the reactor exits without draining
  // it, the closure outlives this call (reactor_main clears the queue on
  // exit, but the post below can land just after that).
  post_to(home, [this, &a, fn, done] {
    {
      std::lock_guard<std::mutex> step(a.step_mu);
      fn(*a.automaton_);
    }
    poll_client_completion(a);
    {
      std::lock_guard<std::mutex> lk(mu_);
      *done = true;
    }
    cv_.notify_all();
  });
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return *done || home.exited; });
  // A task the reactor exited without draining never ran and never will;
  // report the node unreachable rather than running fn here.
  return *done;
}

void node::run_on_reactor_net(
    const std::function<void(automaton&, netout&)>& fn) {
  run_on_reactor_net(0, fn);
}

void node::run_on_reactor_net(
    std::size_t actor, const std::function<void(automaton&, netout&)>& fn) {
  actor_state& a = actor_at(actor);
  const bool ran = try_run_on_reactor(
      actor, [&a, &fn](automaton& au) { fn(au, a.port); });
  if (!ran) {
    {
      std::lock_guard<std::mutex> step(a.step_mu);
      fn(*a.automaton_, a.port);
    }
    poll_client_completion(a);
  }
}

checker::history node::hist() const {
  std::lock_guard<std::mutex> lk(mu_);
  if (actors_.size() == 1) return actors_[0]->hist;
  // Hub node: merge the actors' histories by invocation time (same merge
  // the cluster applies across nodes).
  std::vector<checker::op_record> all;
  for (const auto& a : actors_) {
    for (const auto& op : a->hist.ops()) all.push_back(op);
  }
  std::sort(all.begin(), all.end(),
            [](const checker::op_record& x, const checker::op_record& y) {
              return x.invoke_time < y.invoke_time;
            });
  checker::history merged;
  for (const auto& op : all) {
    const auto idx =
        merged.begin_op(op.client, op.is_write, op.invoke_time, op.val);
    if (op.response_time) {
      if (op.is_write) {
        merged.complete_write(idx, *op.response_time, op.rounds);
      } else {
        merged.complete_read(idx, *op.response_time, op.ts, op.wid, op.val,
                             op.rounds);
      }
    }
  }
  return merged;
}

void node::poll_client_completion(actor_state& a) {
  std::lock_guard<std::mutex> step(a.step_mu);
  if (a.async_iface != nullptr) {
    std::lock_guard<std::mutex> lk(mu_);
    const bool busy = a.async_iface->op_in_progress();
    const std::uint64_t done = a.async_iface->ops_completed();
    const std::size_t in_flight = a.async_iface->ops_in_flight();
    if (busy != a.async_busy || done != a.async_done ||
        in_flight != a.async_in_flight) {
      a.async_busy = busy;
      a.async_done = done;
      a.async_in_flight = in_flight;
      cv_.notify_all();
    }
  }
  if (a.reader != nullptr) {
    std::lock_guard<std::mutex> lk(mu_);
    if (a.op_open && a.reader->reads_completed() > a.reads_done) {
      const auto& res = a.reader->last_read();
      FASTREG_CHECK(res.has_value());
      a.hist.complete_read(a.open_op_index, now_ns(), res->ts, res->wid,
                           res->val, res->rounds);
      a.op_open = false;
      a.reads_done = a.reader->reads_completed();
      cv_.notify_all();
    }
  }
  if (a.writer != nullptr) {
    std::lock_guard<std::mutex> lk(mu_);
    if (a.op_open && a.writer->writes_completed() > a.writes_done) {
      a.hist.complete_write(a.open_op_index, now_ns(),
                            a.writer->last_write_rounds());
      a.op_open = false;
      a.writes_done = a.writer->writes_completed();
      cv_.notify_all();
    }
  }
}

// ------------------------------------------------------------------ reactor --

void node::reactor_main(reactor& r) {
  // Every log line this thread emits is tagged with the node it serves;
  // the registry asserts no metric is created from this thread (handles
  // were all resolved in bind_node_metrics).
  log_set_node(to_string(self_));
  obs::registry::mark_hot_loop_thread(true);
  tls_reactor = &r;
  for (;;) {
    epoll_event events[64];
    // Do not block when a task is already queued: a post landing after
    // this iteration's task swap but before the eventfd drain below would
    // otherwise lose its wakeup (the drain eats the counter while the
    // task waits a full epoll timeout).
    int wait_ms = 50;
    {
      std::lock_guard<std::mutex> lk(r.q_mu);
      if (!r.tasks.empty()) wait_ms = 0;
    }
    // EINTR (or any other failure) yields n = -1: skip the dispatch loop
    // below rather than indexing events[] with garbage, but still run the
    // task drain -- a signal must not delay posted work.
    int n = ::epoll_wait(r.epoll_fd.get(), events, 64, wait_ms);
    if (n < 0) {
      if (errno != EINTR) {
        LOG_WARN("%s: reactor %u epoll_wait failed: %s",
                 to_string(self_).c_str(), r.index, std::strerror(errno));
      }
      n = 0;
    }
    // Drain posted tasks first (includes invocations and shipped sends).
    std::deque<std::function<void()>> tasks;
    {
      std::lock_guard<std::mutex> lk(r.q_mu);
      tasks.swap(r.tasks);
    }
    if (!tasks.empty()) {
      rm_[r.index].tasks_run->inc(static_cast<std::uint64_t>(tasks.size()));
    }
    for (auto& t : tasks) t();
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (stop_requested_) break;
    }
    bool window_expired = false;
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == r.event_fd.get()) {
        std::uint64_t buf;
        // Retry EINTR so the counter actually drains (a level-triggered
        // eventfd would re-fire anyway, but burning an extra epoll pass
        // per signal is pointless).
        while (::read(r.event_fd.get(), &buf, sizeof buf) > 0 ||
               errno == EINTR) {
        }
        continue;
      }
      if (fd == r.timer_fd.get()) {
        std::uint64_t expirations;
        while (::read(r.timer_fd.get(), &expirations, sizeof expirations) >
                   0 ||
               errno == EINTR) {
        }
        window_expired = true;
        continue;
      }
      if (r.index == 0 && listen_fd_.valid() && fd == listen_fd_.get()) {
        while (auto accepted = accept_one(listen_fd_.get())) {
          rm_[0].accepts->inc();
          // Deal accepted connections round-robin across the pool; the
          // target reactor owns the connection for its whole life.
          const auto target = static_cast<std::uint32_t>(
              next_conn_rr_++ % reactors_.size());
          if (target == 0) {
            adopt_inbound(r, std::move(*accepted));
          } else {
            auto moved = std::make_shared<unique_fd>(std::move(*accepted));
            post_to(*reactors_[target], [this, target, moved] {
              adopt_inbound(*reactors_[target], std::move(*moved));
            });
          }
        }
        continue;
      }
      if ((events[i].events & (EPOLLERR | EPOLLHUP)) != 0) {
        close_conn(r, fd);
        continue;
      }
      if ((events[i].events & EPOLLIN) != 0) handle_readable(r, fd);
      if ((events[i].events & EPOLLOUT) != 0) handle_writable(r, fd);
    }
    if (window_expired) flush_expired(r);
    flush_step_end(r);
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    r.exited = true;
  }
  {
    // Undrained tasks never run: they must not fire on a later start()
    // (their captures may be long dead by then).
    std::lock_guard<std::mutex> lk(r.q_mu);
    r.tasks.clear();
  }
  cv_.notify_all();
  tls_reactor = nullptr;
}

void node::adopt_inbound(reactor& r, unique_fd fd) {
  const int cfd = fd.get();
  if (cfd < 0) return;  // raced with a shutdown path that closed it
  connection c;
  c.fd = std::move(fd);
  // Inbound traffic steps the node's primary automaton (servers host
  // exactly one); per-actor hubs never listen.
  c.owner = actors_.empty() ? nullptr : actors_[0].get();
  c.serial = next_conn_serial_.fetch_add(1, std::memory_order_relaxed);
  c.fault = default_fault_.load(std::memory_order_relaxed);
  c.cur_window_us = opt_.adaptive ? 0 : opt_.batch_window_us;
  const bool paused = c.fault == conn_fault::pause;
  r.conns.emplace(cfd, std::move(c));
  wm_.connections->add(1);
  rm_[r.index].connections->add(1);
  epoll_event ev{};
  ev.events = paused ? 0u : EPOLLIN;
  ev.data.fd = cfd;
  ::epoll_ctl(r.epoll_fd.get(), EPOLL_CTL_ADD, cfd, &ev);
}

void node::handle_readable(reactor& r, int fd) {
  auto it = r.conns.find(fd);
  if (it == r.conns.end()) return;
  // Reference (not iterator): stable across the insert-rehash a drain
  // callback can cause by opening a new outbound connection. Erasure of
  // THIS entry while the drain runs is deferred by close_conn (see the
  // drain_guard_fd comment there).
  auto& c = it->second;
  if (c.fault == conn_fault::pause) return;  // interest mask raced the fault
  std::uint8_t buf[64 * 1024];
  if (c.fault == conn_fault::blackhole) {
    // Partitioned: drain the socket so the kernel buffer never fills,
    // discard everything (still detect EOF).
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof buf);
      if (n < 0 && errno == EINTR) continue;  // interrupted, not dead
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      if (n <= 0) {
        close_conn(r, fd);
        return;
      }
    }
  }
  actor_state* owner = c.owner;
  FASTREG_CHECK(owner != nullptr);
  bool reset = false;
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    // EINTR is a signal, not a peer event: falling through to the n <= 0
    // branch here tore down a healthy connection on every stray SIGPROF/
    // SIGCHLD, surfacing as conn_resets under load. Retry instead.
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n <= 0) {
      close_conn(r, fd);
      return;
    }
    wm_.bytes_in->inc(static_cast<std::uint64_t>(n));
    // Frames parse IN PLACE from the read buffer (only a trailing
    // partial frame is copied aside); the automaton steps run inside the
    // drain callback, so a burst of frames in one read is one pass over
    // the bytes. The step mutex is uncontended for client actors (their
    // whole data path lives on this reactor); it serializes a server
    // automaton stepped from several reactors.
    r.drain_guard_fd = fd;
    {
      std::lock_guard<std::mutex> step(owner->step_mu);
      c.in.drain(buf, static_cast<std::size_t>(n), [&](frame&& f) {
        wm_.frames_in->inc();
        if (f.kind == frame_kind::hello) {
          c.peer = f.from;
          std::lock_guard<std::mutex> route(route_mu_);
          inbound_by_peer_[f.from] = conn_ref{r.index, fd, c.serial};
          return;
        }
        if (f.kind == frame_kind::batch) {
          if (obs::recording_active()) {
            for (const auto& m : f.batch) {
              owner->rec->record(obs::rec_event::recv, m.trace, m.span,
                                 static_cast<std::uint8_t>(m.type), f.from,
                                 m.obj, m.epoch, m.ts);
            }
          }
          // Ambient trace ctx for replies of trace-oblivious automata; a
          // batch carries the head's (store automata stamp replies
          // themselves, matching the simulator's convention).
          obs::scoped_trace_ctx trace_ctx(
              f.batch.empty() ? 0 : f.batch.front().trace,
              f.batch.empty() ? std::uint16_t{0} : f.batch.front().span);
          owner->automaton_->on_batch(owner->port, f.from, f.batch);
          return;
        }
        if (f.msg.has_value()) {
          if (obs::recording_active()) {
            owner->rec->record(obs::rec_event::recv, f.msg->trace,
                               f.msg->span,
                               static_cast<std::uint8_t>(f.msg->type), f.from,
                               f.msg->obj, f.msg->epoch, f.msg->ts);
          }
          obs::scoped_trace_ctx trace_ctx(f.msg->trace, f.msg->span);
          owner->automaton_->on_message(owner->port, f.from, *f.msg);
        }
      });
    }
    r.drain_guard_fd = -1;
    if (r.drain_close_pending || c.in.corrupt()) {
      reset = true;
      break;
    }
  }
  if (reset) {
    // Framing lost on this stream (frame_buffer's contract), or a send
    // inside the drain hit a fatal write error on this same socket: the
    // only safe recovery is a reset. The peer reconnects with fresh
    // framing state; undelivered messages are covered by the protocols'
    // quorum waits and the store's retry paths.
    r.drain_close_pending = false;
    wm_.conn_resets->inc();
    LOG_DEBUG("%s: resetting connection on fd %d (corrupt stream or "
              "write failure mid-drain)",
              to_string(self_).c_str(), fd);
    close_conn(r, fd);
    return;
  }
  poll_client_completion(*owner);
}

void node::handle_writable(reactor& r, int fd) {
  auto it = r.conns.find(fd);
  if (it == r.conns.end()) return;
  it->second.connecting = false;
  flush(r, fd, it->second);
}

void node::flush(reactor& r, int fd, connection& c) {
  if (c.fault == conn_fault::pause) return;  // bytes hold until healed
  if (c.fault == conn_fault::blackhole) {
    const std::size_t b = c.out.bytes();
    if (b > 0) {
      wm_.backlog_bytes->add(-static_cast<std::int64_t>(b));
      c.out.consume(b);
    }
    update_epoll(r, fd, c);
    return;
  }
  // c.dirty is left alone: it means "fd is listed in dirty_fds", and a
  // direct flush (immediate mode, or handle_writable) does not unlist.
  // A listed-but-already-flushed connection is a cheap no-op later.
  const std::uint64_t flush_start = c.out.empty() ? 0 : now_ns();
  while (!c.out.empty()) {
    struct iovec iov[16];
    const std::size_t cnt = c.out.fill_iovec(iov, 16);
    if (cnt == 0) break;  // only a not-yet-filled tail block: nothing queued
    std::size_t queued = 0;
    for (std::size_t i = 0; i < cnt; ++i) queued += iov[i].iov_len;
    const ssize_t n = ::writev(fd, iov, static_cast<int>(cnt));
    wm_.writev_calls->inc();
    if (n > 0) {
      // Possibly a SHORT write: consume() leaves the remainder (even
      // mid-block) at the chain's front and the next flush resumes there.
      wm_.bytes_out->inc(static_cast<std::uint64_t>(n));
      wm_.backlog_bytes->add(-static_cast<std::int64_t>(n));
      if (static_cast<std::size_t>(n) < queued) wm_.short_writes->inc();
      c.out.consume(static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;  // interrupted write: retry
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    close_conn(r, fd);
    return;
  }
  if (flush_start != 0) wm_.flush_ns->observe(now_ns() - flush_start);
  update_epoll(r, fd, c);
}

void node::update_epoll(reactor& r, int fd, connection& c) {
  epoll_event ev{};
  ev.data.fd = fd;
  if (c.fault == conn_fault::pause) {
    ev.events = 0;  // paused: no reads, no writes; bytes queue
  } else {
    ev.events = EPOLLIN;
    if (c.connecting || c.out.bytes() > 0) ev.events |= EPOLLOUT;
  }
  ::epoll_ctl(r.epoll_fd.get(), EPOLL_CTL_MOD, fd, &ev);
}

void node::close_conn(reactor& r, int fd) {
  // An automaton step running inside handle_readable's drain can hit a
  // fatal write error on the very connection being drained (the server
  // answers over the inbound socket). Erasing it here would free the
  // frame_buffer mid-parse; defer -- handle_readable performs the close
  // as soon as the drain returns.
  if (fd == r.drain_guard_fd) {
    r.drain_close_pending = true;
    return;
  }
  auto it = r.conns.find(fd);
  if (it == r.conns.end()) return;
  if (it->second.peer) {
    // Only erase the route if it still points at THIS connection (the
    // peer may have reconnected already, on any reactor).
    std::lock_guard<std::mutex> route(route_mu_);
    if (auto rit = inbound_by_peer_.find(*it->second.peer);
        rit != inbound_by_peer_.end() &&
        rit->second.serial == it->second.serial) {
      inbound_by_peer_.erase(rit);
    }
  }
  // Actor out_to_server entries are NOT touched here: they are guarded
  // by the owning actor's step mutex, which this reactor may not take
  // mid-step. Stale refs are detected by serial mismatch at the next
  // send and lazily invalidated there.
  std::erase(r.dirty_fds, fd);
  ::epoll_ctl(r.epoll_fd.get(), EPOLL_CTL_DEL, fd, nullptr);
  wm_.backlog_bytes->add(-static_cast<std::int64_t>(it->second.out.bytes()));
  wm_.connections->add(-1);
  rm_[r.index].connections->add(-1);
  r.conns.erase(it);  // unique_fd closes
}

// --------------------------------------------------------- flush controller --

void node::finish_window(connection& c) {
  if (c.window_open_ns != 0 && c.frames_since_flush > 0) {
    wm_.window_wait_ns->observe(now_ns() - c.window_open_ns);
  }
  c.window_open_ns = 0;
  c.frames_since_flush = 0;
}

void node::arm_window_at(reactor& r, std::uint64_t deadline_ns) {
  if (r.window_armed && r.armed_deadline_ns <= deadline_ns) return;
  const std::uint64_t now = now_ns();
  const std::uint64_t delta = deadline_ns > now ? deadline_ns - now : 1;
  itimerspec spec{};
  spec.it_value.tv_sec = static_cast<time_t>(delta / 1'000'000'000ull);
  spec.it_value.tv_nsec = static_cast<long>(delta % 1'000'000'000ull);
  if (spec.it_value.tv_sec == 0 && spec.it_value.tv_nsec == 0) {
    spec.it_value.tv_nsec = 1;  // fire immediately rather than disarm
  }
  ::timerfd_settime(r.timer_fd.get(), 0, &spec, nullptr);
  r.window_armed = true;
  r.armed_deadline_ns = deadline_ns;
}

void node::after_queue(reactor& r, int fd, connection& c) {
  ++c.frames_since_flush;
  if (c.fault == conn_fault::pause) {
    // Bytes hold until the fault heals; track the connection so the heal
    // path finds and flushes it.
    if (!c.dirty) {
      c.dirty = true;
      r.dirty_fds.push_back(fd);
    }
    return;
  }
  const bool windowed = opt_.adaptive || c.cur_window_us > 0;
  if (!windowed) {
    // Immediate mode (window 0): the pre-window behavior, one flush per
    // queueing step.
    wm_.flushes_immediate->inc();
    if (!c.connecting) {
      flush(r, fd, c);
    } else {
      update_epoll(r, fd, c);
    }
    return;
  }
  if (c.window_open_ns == 0) c.window_open_ns = now_ns();
  if (!c.dirty) {
    c.dirty = true;
    r.dirty_fds.push_back(fd);
  }
  if (opt_.flush_bytes > 0 && c.out.bytes() >= opt_.flush_bytes &&
      !c.connecting) {
    // Bytes budget: the backlog already amortizes a writev; waiting out
    // the window would only add latency.
    wm_.flushes_bytes->inc();
    finish_window(c);
    flush(r, fd, c);
    return;
  }
  if (c.cur_window_us > 0) {
    arm_window_at(r, c.window_open_ns +
                         static_cast<std::uint64_t>(c.cur_window_us) * 1000);
  }
  // Adaptive at window 0: flushed at the end of this reactor step (see
  // flush_step_end), so a lone frame still leaves with step latency.
}

void node::flush_expired(reactor& r) {
  r.window_armed = false;
  const std::uint64_t now = now_ns();
  std::vector<int> fds;
  fds.swap(r.dirty_fds);
  std::uint64_t next_deadline = 0;
  for (const int fd : fds) {
    auto it = r.conns.find(fd);
    if (it == r.conns.end()) continue;
    auto& c = it->second;
    if (c.fault == conn_fault::pause) {
      r.dirty_fds.push_back(fd);  // stays parked until healed
      continue;
    }
    if (c.window_open_ns == 0) {
      // Already flushed (bytes budget or writability); just unlist.
      c.dirty = false;
      continue;
    }
    const std::uint64_t deadline =
        c.window_open_ns + static_cast<std::uint64_t>(c.cur_window_us) * 1000;
    if (deadline > now) {
      // Still inside its window: keep listed, re-arm for it below.
      r.dirty_fds.push_back(fd);
      if (next_deadline == 0 || deadline < next_deadline) {
        next_deadline = deadline;
      }
      continue;
    }
    // Adaptive policy, per connection: widen while the window keeps
    // catching multi-frame backlog, shrink toward immediate when it
    // stops.
    if (opt_.adaptive) {
      if (c.frames_since_flush >= 8) {
        c.cur_window_us =
            c.cur_window_us == 0
                ? 50
                : std::min(opt_.window_cap_us(), c.cur_window_us * 2);
        wm_.window_widen->inc();
      } else if (c.frames_since_flush <= 1) {
        c.cur_window_us = c.cur_window_us >= 100 ? c.cur_window_us / 2 : 0;
      }
    }
    wm_.flushes_window->inc();
    finish_window(c);
    c.dirty = false;
    if (c.connecting) {
      update_epoll(r, fd, c);  // bytes leave in handle_writable
    } else {
      flush(r, fd, c);  // may close (erase) the connection: c is dead after
    }
  }
  if (next_deadline != 0) arm_window_at(r, next_deadline);
}

void node::flush_step_end(reactor& r) {
  // Only adaptive window-0 connections flush at step end; fixed-window
  // connections wait for the timer.
  if (!opt_.adaptive || r.dirty_fds.empty()) return;
  std::vector<int> fds;
  fds.swap(r.dirty_fds);
  for (const int fd : fds) {
    auto it = r.conns.find(fd);
    if (it == r.conns.end()) continue;
    auto& c = it->second;
    if (c.fault == conn_fault::pause || c.cur_window_us > 0) {
      r.dirty_fds.push_back(fd);
      continue;
    }
    if (c.window_open_ns == 0) {
      c.dirty = false;
      continue;
    }
    if (c.frames_since_flush >= 8) {
      // This step queued a burst: re-open the window instead of flushing.
      c.cur_window_us = 50;
      wm_.window_widen->inc();
      arm_window_at(r, c.window_open_ns + 50'000);
      r.dirty_fds.push_back(fd);
      continue;
    }
    wm_.flushes_step->inc();
    finish_window(c);
    c.dirty = false;
    if (c.connecting) {
      update_epoll(r, fd, c);
    } else {
      flush(r, fd, c);
    }
  }
}

// ------------------------------------------------------------------- faults --

void node::run_on_all_reactors(const std::function<void(reactor&)>& fn) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    // Not running: no reactor thread exists, so no connection exists
    // either (both inbound and outbound connections are created on
    // reactors). Nothing to apply to.
    if (!started_) return;
  }
  auto acked = std::make_shared<std::size_t>(0);
  for (auto& r : reactors_) {
    post_to(*r, [this, rp = r.get(), fn, acked] {
      fn(*rp);
      {
        std::lock_guard<std::mutex> lk(mu_);
        ++*acked;
      }
      cv_.notify_all();
    });
  }
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] {
    std::size_t live = 0;
    for (const auto& r : reactors_) {
      if (!r->exited) ++live;
    }
    return *acked >= live;
  });
}

void node::set_fault_all(conn_fault f) {
  default_fault_.store(f, std::memory_order_relaxed);
  run_on_all_reactors([this, f](reactor& r) {
    // apply_fault can close connections (heal-after-blackhole resets);
    // iterate over a snapshot of fds and re-validate each.
    std::vector<int> fds;
    fds.reserve(r.conns.size());
    for (const auto& [fd, c] : r.conns) fds.push_back(fd);
    for (const int fd : fds) {
      if (auto it = r.conns.find(fd); it != r.conns.end()) {
        apply_fault(r, fd, it->second, f);
      }
    }
  });
}

void node::reset_all_conns() {
  run_on_all_reactors([this](reactor& r) {
    std::vector<int> fds;
    fds.reserve(r.conns.size());
    for (const auto& [fd, c] : r.conns) fds.push_back(fd);
    for (const int fd : fds) {
      if (r.conns.find(fd) != r.conns.end()) {
        wm_.conn_resets->inc();
        close_conn(r, fd);
      }
    }
  });
}

void node::apply_fault(reactor& r, int fd, connection& c, conn_fault f) {
  if (c.fault == f) return;
  const conn_fault prev = c.fault;
  c.fault = f;
  if (f == conn_fault::none) {
    if (prev == conn_fault::blackhole) {
      // Frames were dropped mid-stream; framing cannot resume. Reset --
      // the peer reconnects with fresh state.
      wm_.conn_resets->inc();
      close_conn(r, fd);
      return;
    }
    // Healing a pause: resume epoll interest and release the held bytes.
    c.dirty = false;
    std::erase(r.dirty_fds, fd);
    finish_window(c);
    update_epoll(r, fd, c);
    if (!c.connecting && c.out.bytes() > 0) flush(r, fd, c);
    return;
  }
  if (f == conn_fault::blackhole) {
    // Discard anything queued; reads and writes are dropped from here on.
    const std::size_t b = c.out.bytes();
    if (b > 0) {
      wm_.backlog_bytes->add(-static_cast<std::int64_t>(b));
      c.out.consume(b);
    }
    c.dirty = false;
    std::erase(r.dirty_fds, fd);
    finish_window(c);
  }
  update_epoll(r, fd, c);  // pause: interest mask 0; blackhole keeps EPOLLIN
}

// -------------------------------------------------------------- send path --

namespace {

// Register automata never stamp their messages; the reactor step's
// ambient trace context (set by the invocation or the delivery being
// handled) fills the gap. Store messages arrive here already stamped.
void stamp_if_untraced(message& m) {
  if (m.trace != 0) return;
  const auto ctx = obs::current_trace_ctx();
  m.trace = ctx.trace;
  m.span = ctx.span;
}

}  // namespace

void node::actor_port::send(const process_id& to, message m) {
  n->send_from(*a, to, std::move(m));
}

void node::actor_port::send_batch(const process_id& to,
                                  std::vector<message> msgs) {
  n->send_batch_from(*a, to, std::move(msgs));
}

// The node-as-netout entry points operate on actor 0 and take its step
// mutex themselves: they are for EXTERNAL drivers only. Automata always
// send through their actor_port (whose calls originate inside steps that
// already hold the mutex) -- handing an automaton the node itself would
// deadlock here.
void node::send(const process_id& to, message m) {
  actor_state& a = actor_at(0);
  std::lock_guard<std::mutex> step(a.step_mu);
  send_from(a, to, std::move(m));
}

void node::send_batch(const process_id& to, std::vector<message> msgs) {
  actor_state& a = actor_at(0);
  std::lock_guard<std::mutex> step(a.step_mu);
  send_batch_from(a, to, std::move(msgs));
}

void node::send_from(actor_state& a, const process_id& to, message m) {
  stamp_if_untraced(m);
  if (obs::recording_active()) {
    a.rec->record(obs::rec_event::send, m.trace, m.span,
                  static_cast<std::uint8_t>(m.type), to, m.obj, m.epoch,
                  m.ts);
  }
  std::vector<message> one;
  one.push_back(std::move(m));
  route_from(a, to, std::move(one), /*batch=*/false);
}

void node::send_batch_from(actor_state& a, const process_id& to,
                           std::vector<message> msgs) {
  FASTREG_EXPECTS(!msgs.empty());
  if (msgs.size() == 1) {
    send_from(a, to, std::move(msgs.front()));
    return;
  }
  for (auto& m : msgs) stamp_if_untraced(m);
  if (obs::recording_active()) {
    for (const auto& m : msgs) {
      a.rec->record(obs::rec_event::send, m.trace, m.span,
                    static_cast<std::uint8_t>(m.type), to, m.obj, m.epoch,
                    m.ts);
    }
  }
  route_from(a, to, std::move(msgs), /*batch=*/true);
}

void node::route_from(actor_state& a, const process_id& to,
                      std::vector<message> msgs, bool batch) {
  reactor* cur = current_reactor();
  if (cur == nullptr) {
    // Off-reactor send (external driver): run on the actor's home
    // reactor, which then owns any connection it creates.
    reactor& home = home_of(a);
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (!started_ || home.exited) return;  // node not running: drop
    }
    auto moved = std::make_shared<std::vector<message>>(std::move(msgs));
    post_to(home, [this, &a, to, moved, batch] {
      std::lock_guard<std::mutex> step(a.step_mu);
      route_from(a, to, std::move(*moved), batch);
    });
    return;
  }
  if (to.is_server()) {
    if (auto it = a.out_to_server.find(to.index);
        it != a.out_to_server.end()) {
      const conn_ref ref = it->second;
      if (ref.reactor != cur->index) {
        ship_to(ref, a, static_cast<int>(to.index), std::move(msgs), batch);
        return;
      }
      if (auto cit = cur->conns.find(ref.fd);
          cit != cur->conns.end() && cit->second.serial == ref.serial) {
        queue_frames(*cur, ref.fd, cit->second, a.self, msgs, batch);
        return;
      }
      // Stale (connection closed; fd possibly recycled): reconnect.
      a.out_to_server.erase(to.index);
    }
    const conn_ref ref = open_to_server(*cur, a, to.index);
    auto cit = cur->conns.find(ref.fd);
    FASTREG_CHECK(cit != cur->conns.end());
    queue_frames(*cur, ref.fd, cit->second, a.self, msgs, batch);
    return;
  }
  // Replies to clients (or servers acting as clients of this server) go
  // over the connection they introduced themselves on.
  conn_ref ref{};
  bool found = false;
  {
    std::lock_guard<std::mutex> route(route_mu_);
    if (auto it = inbound_by_peer_.find(to); it != inbound_by_peer_.end()) {
      ref = it->second;
      found = true;
    }
  }
  if (!found) {
    LOG_DEBUG("%s: no route to %s; dropping frame",
              to_string(a.self).c_str(), to_string(to).c_str());
    return;
  }
  if (ref.reactor != cur->index) {
    ship_to(ref, a, /*server_index=*/-1, std::move(msgs), batch);
    return;
  }
  if (auto cit = cur->conns.find(ref.fd);
      cit != cur->conns.end() && cit->second.serial == ref.serial) {
    queue_frames(*cur, ref.fd, cit->second, a.self, msgs, batch);
    return;
  }
  LOG_DEBUG("%s: route to %s went away; dropping frame",
            to_string(a.self).c_str(), to_string(to).c_str());
}

void node::ship_to(const conn_ref& ref, actor_state& a, int server_index,
                   std::vector<message> msgs, bool batch) {
  // The connection lives on another reactor (or this thread is no
  // reactor at all): the frames must be encoded into its chain by the
  // owning thread. Ship them over; the serial check drops the frames
  // rather than landing them on a recycled fd.
  reactor& r = *reactors_[ref.reactor];
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (r.exited) return;
  }
  auto moved = std::make_shared<std::vector<message>>(std::move(msgs));
  post_to(r, [this, &a, ref, server_index, moved, batch] {
    reactor& owner = *reactors_[ref.reactor];
    auto it = owner.conns.find(ref.fd);
    if (it == owner.conns.end() || it->second.serial != ref.serial) {
      // Dropped; protocols retry / quorum-cover the loss. Invalidate the
      // actor's stale server route so its next send reconnects.
      if (server_index >= 0) {
        std::lock_guard<std::mutex> step(a.step_mu);
        if (auto o =
                a.out_to_server.find(static_cast<std::uint32_t>(server_index));
            o != a.out_to_server.end() && o->second.serial == ref.serial) {
          a.out_to_server.erase(o);
        }
      }
      return;
    }
    rm_[owner.index].ships_in->inc();
    queue_frames(owner, ref.fd, it->second, a.self, *moved, batch);
  });
}

node::conn_ref node::open_to_server(reactor& r, actor_state& a,
                                    std::uint32_t index) {
  FASTREG_EXPECTS(index < book_->server_ports.size());
  unique_fd fd = connect_to(book_->server_ports[index]);
  const int raw = fd.get();
  connection c;
  c.fd = std::move(fd);
  c.connecting = true;
  c.owner = &a;
  c.serial = next_conn_serial_.fetch_add(1, std::memory_order_relaxed);
  c.fault = default_fault_.load(std::memory_order_relaxed);
  c.cur_window_us = opt_.adaptive ? 0 : opt_.batch_window_us;
  const bool paused = c.fault == conn_fault::pause;
  r.conns.emplace(raw, std::move(c));
  wm_.connections->add(1);
  rm_[r.index].connections->add(1);
  epoll_event ev{};
  ev.events = paused ? 0u : (EPOLLIN | EPOLLOUT);
  ev.data.fd = raw;
  ::epoll_ctl(r.epoll_fd.get(), EPOLL_CTL_ADD, raw, &ev);
  // Introduce the ACTOR (not the node: a hub hosts many) so the server
  // can route replies back. The hello must precede any frame on this
  // connection, so it bypasses the batch window ordering-wise (it is
  // appended first) but still leaves in the same writev as the frames
  // that triggered the connect.
  auto& cref = r.conns.find(raw)->second;
  append_hello_frame(cref.out.tail_for(64), a.self);
  wm_.frames_out->inc();
  wm_.backlog_bytes->add(static_cast<std::int64_t>(cref.out.bytes()));
  const conn_ref ref{r.index, raw, cref.serial};
  a.out_to_server[index] = ref;
  return ref;
}

void node::queue_frames(reactor& r, int fd, connection& c,
                        const process_id& from, std::vector<message>& msgs,
                        bool batch) {
  if (c.fault == conn_fault::blackhole) return;  // sent into the void
  const std::size_t before = c.out.bytes();
  if (!batch || msgs.size() == 1) {
    // Encoded in place into the connection's chain: no intermediate
    // per-message byte vector.
    for (const auto& m : msgs) {
      append_msg_frame(c.out.tail_for(msg_frame_wire_size(m)), from, m);
      wm_.frames_out->inc();
    }
  } else {
    // Chunk so no frame approaches frame_buffer::max_frame_bytes -- the
    // receiver treats an oversized frame as stream corruption and resets
    // the connection, which batching large values could otherwise
    // trigger.
    constexpr std::size_t chunk_limit = frame_buffer::max_frame_bytes / 4;
    std::size_t begin = 0;
    std::size_t bytes = 0;
    for (std::size_t i = 0; i < msgs.size(); ++i) {
      const std::size_t sz = message_wire_size(msgs[i]);
      if (i > begin && bytes + sz > chunk_limit) {
        const auto chunk =
            std::span<const message>(msgs.data() + begin, i - begin);
        append_batch_frame(c.out.tail_for(batch_frame_wire_size(chunk)), from,
                           chunk);
        wm_.frames_out->inc();
        begin = i;
        bytes = 0;
      }
      bytes += sz;
    }
    const auto chunk =
        std::span<const message>(msgs.data() + begin, msgs.size() - begin);
    if (chunk.size() == 1) {
      append_msg_frame(c.out.tail_for(msg_frame_wire_size(chunk.front())),
                       from, chunk.front());
    } else {
      append_batch_frame(c.out.tail_for(batch_frame_wire_size(chunk)), from,
                         chunk);
    }
    wm_.frames_out->inc();
  }
  wm_.backlog_bytes->add(static_cast<std::int64_t>(c.out.bytes() - before));
  after_queue(r, fd, c);
}

}  // namespace fastreg::net
