// E4 -- Proposition 10 / Figure 6: with (R+2)t + (R+1)b >= S, no fast
// atomic register exists even with writer signatures. Executes the
// Section 6.2 construction (memory-losing / two-faced malicious blocks)
// against the Figure 5 protocol across a (S, t, b, R) grid.
#include <cstdio>

#include "adversary/bft_lower_bound.h"
#include "benchutil/table.h"
#include "crypto/sig.h"
#include "registers/registry.h"

using namespace fastreg;
using namespace fastreg::adversary;

int main() {
  std::printf("E4: executable lower bound, arbitrary failures "
              "(Proposition 10)\n");
  std::printf("malicious blocks deviate only by 'losing memory' toward r1 "
              "-- signatures cannot mask value withholding\n\n");
  benchutil::table t({"S", "t", "b", "R", "theory_fast", "construction",
                      "chain_reads", "prC_read", "violation"});
  auto proto = make_protocol("fast_bft");
  int mismatches = 0;
  struct c4 {
    std::uint32_t S, t, b;
  };
  for (const auto c :
       {c4{8, 2, 0}, c4{10, 2, 1}, c4{11, 2, 1}, c4{12, 2, 1}, c4{14, 2, 2},
        c4{16, 3, 1}, c4{17, 3, 2}, c4{20, 3, 2}, c4{23, 4, 2}}) {
    for (std::uint32_t R : {2u, 3u}) {
      system_config cfg;
      cfg.servers = c.S;
      cfg.t_failures = c.t;
      cfg.b_malicious = c.b;
      cfg.readers = R;
      cfg.sigs = crypto::make_signature_scheme("oracle");
      const bool feasible = fast_bft_feasible(c.S, c.t, c.b, R);
      const auto rep = run_bft_lower_bound(*proto, cfg);
      std::string chain = "-";
      if (rep.applicable) {
        chain.clear();
        for (std::size_t i = 0; i < rep.chain.size(); ++i) {
          chain += (i ? "," : "") + rep.chain[i];
        }
      }
      t.add_row({std::to_string(c.S), std::to_string(c.t),
                 std::to_string(c.b), std::to_string(R),
                 feasible ? "yes" : "no",
                 rep.applicable ? "applies" : "n/a", chain,
                 rep.read_pr_c
                     ? (*rep.read_pr_c == "" ? "(bottom)" : *rep.read_pr_c)
                     : "-",
                 rep.applicable ? (rep.violation ? "VIOLATION" : "none")
                                : "-"});
      if (feasible == rep.applicable || (rep.applicable && !rep.violation)) {
        ++mismatches;
      }
    }
  }
  t.print();
  std::printf("\npaper vs measured: violation exactly when "
              "S <= (R+2)t + (R+1)b. mismatches: %d\n",
              mismatches);
  return mismatches == 0 ? 0 : 1;
}
