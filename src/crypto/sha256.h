// From-scratch SHA-256 (FIPS 180-4). Used as the message digest for RSA
// signatures (Section 6 of the paper assumes writer signatures) and as a
// general-purpose fingerprint in tests.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace fastreg::crypto {

class sha256 {
 public:
  static constexpr std::size_t digest_size = 32;
  using digest = std::array<std::uint8_t, digest_size>;

  sha256();

  /// Absorb more input. May be called repeatedly.
  void update(std::span<const std::uint8_t> data);
  void update(const std::string& s);

  /// Finish and return the digest. The object must not be reused afterwards
  /// without calling reset().
  [[nodiscard]] digest finish();

  void reset();

  /// One-shot helpers.
  [[nodiscard]] static digest hash(std::span<const std::uint8_t> data);
  [[nodiscard]] static digest hash(const std::string& s);

  /// Lowercase hex rendering of a digest.
  [[nodiscard]] static std::string hex(const digest& d);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_{0};
  std::uint64_t total_len_{0};
};

}  // namespace fastreg::crypto
