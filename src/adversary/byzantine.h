// Concrete malicious server behaviours (Section 6's arbitrary failures).
//
// Each behaviour is an automaton that can replace a server in the
// simulator via world::replace_automaton. They fall into two groups:
//
//  * Attack library for stress tests (E10): mute, stale replies,
//    signature forging, equivocation, lying seen sets. The Figure 5
//    protocol must mask any b of these.
//  * Proof gadgets: two_faced_server implements the Section 6.2 failure
//    "replies to r1 as if it never received the write, to everyone else
//    as if it were correct" by running a real and a shadow copy of the
//    server; memory-loss ("B_i loses its memory") is done by replacing a
//    server with a fresh automaton.
//
// None of these behaviours can forge the writer's signature: they only
// ever replay stored signed triples or emit garbage signatures, exactly
// matching the unforgeability assumption.
#pragma once

#include <memory>
#include <unordered_set>

#include "registers/automaton.h"

namespace fastreg::adversary {

/// Never replies to anything (indistinguishable from a crash).
class mute_server final : public automaton {
 public:
  explicit mute_server(std::uint32_t index) : index_(index) {}
  void on_message(netout&, const process_id&, const message&) override {}
  [[nodiscard]] std::unique_ptr<automaton> clone() const override {
    return std::make_unique<mute_server>(*this);
  }
  [[nodiscard]] process_id self() const override { return server_id(index_); }

 private:
  std::uint32_t index_;
};

/// Always answers with the initial state (ts = 0, bottom, empty-but-self
/// seen set): a malicious attempt to hide every write.
class stale_server final : public automaton {
 public:
  explicit stale_server(std::uint32_t index) : index_(index) {}
  void on_message(netout& net, const process_id& from,
                  const message& m) override;
  [[nodiscard]] std::unique_ptr<automaton> clone() const override {
    return std::make_unique<stale_server>(*this);
  }
  [[nodiscard]] process_id self() const override { return server_id(index_); }

 private:
  std::uint32_t index_;
};

/// Claims an enormous timestamp with a garbage signature: the basic
/// forgery attack that Figure 5's receivevalid must reject.
class forging_server final : public automaton {
 public:
  explicit forging_server(std::uint32_t index) : index_(index) {}
  void on_message(netout& net, const process_id& from,
                  const message& m) override;
  [[nodiscard]] std::unique_ptr<automaton> clone() const override {
    return std::make_unique<forging_server>(*this);
  }
  [[nodiscard]] process_id self() const override { return server_id(index_); }

 private:
  std::uint32_t index_;
};

/// Wraps a correct server but reports `seen` as the full client universe:
/// tries to trick the fast-read predicate into firing early. The stored
/// timestamp and signature remain genuine.
class seen_liar_server final : public automaton {
 public:
  seen_liar_server(std::unique_ptr<automaton> inner, std::uint32_t clients);
  seen_liar_server(const seen_liar_server& o);
  void on_message(netout& net, const process_id& from,
                  const message& m) override;
  [[nodiscard]] std::unique_ptr<automaton> clone() const override {
    return std::make_unique<seen_liar_server>(*this);
  }
  [[nodiscard]] process_id self() const override { return inner_->self(); }

 private:
  std::unique_ptr<automaton> inner_;
  std::uint32_t clients_;
};

/// Behaves correctly toward most processes but answers a chosen set of
/// readers from a *shadow* copy of itself that never sees writes: the
/// Section 6.2 "fails and loses its memory / two-faced" behaviour.
class two_faced_server final : public automaton {
 public:
  /// `inner` must be the server's current state; the shadow starts as a
  /// clone of it (so "from that point on" semantics are exact).
  two_faced_server(std::unique_ptr<automaton> inner,
                   std::unordered_set<process_id> shadow_targets);
  two_faced_server(const two_faced_server& o);

  void on_message(netout& net, const process_id& from,
                  const message& m) override;
  [[nodiscard]] std::unique_ptr<automaton> clone() const override {
    return std::make_unique<two_faced_server>(*this);
  }
  [[nodiscard]] process_id self() const override { return real_->self(); }

 private:
  std::unique_ptr<automaton> real_;
  std::unique_ptr<automaton> shadow_;
  std::unordered_set<process_id> shadow_targets_;
};

/// Replies correctly to the writer but with stale state to every reader
/// whose index is even: an equivocation pattern.
class equivocating_server final : public automaton {
 public:
  equivocating_server(std::unique_ptr<automaton> inner, std::uint32_t index);
  equivocating_server(const equivocating_server& o);
  void on_message(netout& net, const process_id& from,
                  const message& m) override;
  [[nodiscard]] std::unique_ptr<automaton> clone() const override {
    return std::make_unique<equivocating_server>(*this);
  }
  [[nodiscard]] process_id self() const override { return server_id(index_); }

 private:
  std::unique_ptr<automaton> inner_;
  std::uint32_t index_;
};

}  // namespace fastreg::adversary
