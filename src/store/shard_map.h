// Key -> object -> shard -> protocol routing for the multi-object store.
//
// The store multiplexes many independent register objects over one shared
// set of server processes. Every participant derives the same routing from
// the store_config alone, with no coordination:
//
//   object id  = fnv1a64(key)           (what messages carry on the wire)
//   shard      = object id % num_shards
//   protocol   = shard_protocols[shard % shard_protocols.size()]
//
// Per-shard protocol selection lets hot read-mostly shards run fast_swmr
// while contended shards run abd/mwmr, inside one deployment.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "persist/options.h"
#include "registers/automaton.h"

namespace fastreg::store {

struct store_config {
  /// Per-object protocol instantiation parameters (S, t, b, R, W). Every
  /// object shares the same server fleet and client population.
  system_config base{};
  std::uint32_t num_shards{1};
  /// Registry names, assigned to shards round-robin. Single-writer shard
  /// protocols require base.W() == 1 (one writer client owns every key).
  std::vector<std::string> shard_protocols{{"abd"}};
  /// Per-server durability (src/persist): op log + periodic snapshots
  /// under persist.dir, replayed when a server is reconstructed. Off by
  /// default (empty dir) -- the in-memory-only historical behavior.
  persist::options persist{};

  [[nodiscard]] std::string describe() const;
};

[[nodiscard]] inline object_id key_object_id(const std::string& key) {
  return fnv1a64(key);
}

/// Resolved routing table: owns one protocol instance per shard. Immutable
/// after construction and safe to share (const) across node threads. Live
/// reconfiguration (src/reconfig) never mutates a map: it builds a NEW
/// shard_map at epoch+1 and swaps the shared pointer everywhere.
class shard_map {
 public:
  explicit shard_map(store_config cfg, epoch_t epoch = k_initial_epoch);

  [[nodiscard]] const store_config& config() const { return cfg_; }
  [[nodiscard]] epoch_t epoch() const { return epoch_; }
  [[nodiscard]] std::uint32_t num_shards() const { return cfg_.num_shards; }

  [[nodiscard]] std::uint32_t shard_of_object(object_id obj) const {
    return static_cast<std::uint32_t>(obj % cfg_.num_shards);
  }
  [[nodiscard]] std::uint32_t shard_of_key(const std::string& key) const {
    return shard_of_object(key_object_id(key));
  }

  [[nodiscard]] const protocol& protocol_for_shard(std::uint32_t shard) const;
  [[nodiscard]] const protocol& protocol_for_object(object_id obj) const {
    return protocol_for_shard(shard_of_object(obj));
  }

  /// True when every shard protocol is multi-writer capable; single-writer
  /// protocols silently collapse all writers onto writer 0, so the store
  /// rejects W > 1 unless this holds.
  [[nodiscard]] bool all_multi_writer() const;

 private:
  store_config cfg_;
  epoch_t epoch_{k_initial_epoch};
  std::vector<std::unique_ptr<protocol>> protos_;  // one per shard
};

/// Source of the latest installed shard map: how a client refetches the
/// routing table after a server tells it its epoch is stale. Backed by
/// reconfig::versioned_map in live deployments; must be safe to call from
/// any node thread.
using map_source = std::function<std::shared_ptr<const shard_map>()>;

/// True when `obj` is governed by a different protocol under `to` than
/// under `from` -- the objects whose register state must be handed off
/// when `to` replaces `from`. Placement never changes (every server hosts
/// every shard), so a protocol switch is the only thing that moves state.
[[nodiscard]] inline bool object_moves(const shard_map& from,
                                       const shard_map& to, object_id obj) {
  return from.protocol_for_object(obj).name() !=
         to.protocol_for_object(obj).name();
}

}  // namespace fastreg::store
