#include "reconfig/coordinator.h"

#include "common/check.h"

namespace fastreg::reconfig {

coordinator::coordinator(control_plane& ctl, std::vector<std::string> keys)
    : ctl_(ctl), keys_(std::move(keys)) {}

bool coordinator::start(std::shared_ptr<const store::shard_map> cur,
                        const reconfig_plan& plan) {
  FASTREG_EXPECTS(phase_ == phase::idle);
  FASTREG_EXPECTS(cur != nullptr);
  error_ = validate_plan(*cur, plan);
  if (!error_.empty()) return false;
  old_map_ = std::move(cur);
  new_map_ = build_next_map(*old_map_, plan);
  stats_.new_epoch = new_map_->epoch();
  // Every server fences moved objects from this point on; only then may
  // clients learn of the epoch (they learn via server replies or via the
  // published map, both of which happen after the install below), so no
  // new-epoch message can reach a server still at the old epoch.
  ctl_.for_each_server(
      [this](store::server& s) { s.install_map(new_map_); });
  ctl_.publish(new_map_);
  advance_key();
  return true;
}

void coordinator::advance_key() {
  while (next_key_ < keys_.size()) {
    const auto& key = keys_[next_key_];
    ++next_key_;
    ++stats_.keys_considered;
    const auto obj = store::key_object_id(key);
    if (!store::object_moves(*old_map_, *new_map_, obj)) {
      continue;  // same protocol either side: instances carried over
    }
    // One handoff per OBJECT: object_moves stays true for the whole
    // reconfiguration, so a duplicated key (or a distinct key colliding
    // to the same object id) would otherwise re-run the handoff against
    // the stale previous-generation snapshot -- re-flooring the writer
    // below live state and parking a put that then completes
    // acknowledged-but-unstored.
    if (!handled_.insert(obj).second) continue;
    ++stats_.keys_moved;
    cur_key_ = key;
    const epoch_t old_epoch = old_map_->epoch();
    ctl_.with_migrator([&](store::client& c, netout& net) {
      c.begin_state_read(key, old_epoch);
      c.flush(net);
    });
    phase_ = phase::reading;
    return;
  }
  phase_ = phase::done;
}

void coordinator::step() {
  switch (phase_) {
    case phase::idle:
    case phase::done:
      return;
    case phase::reading: {
      if (!ctl_.migrator_done()) return;
      const auto snap = ctl_.migrator_snapshot();
      // Writer floors must be in place BEFORE any server stops nacking
      // the key: otherwise a retried put could race the drain with a
      // timestamp below the seeded state and stall.
      ctl_.for_each_client([&](store::client& c, netout& net) {
        if (c.self().is_writer()) c.seed_writer_floor(cur_key_, snap);
        c.flush(net);
      });
      ctl_.with_migrator([&](store::client& c, netout& net) {
        c.begin_seed(cur_key_, snap);
        c.flush(net);
      });
      phase_ = phase::seeding;
      return;
    }
    case phase::seeding: {
      if (!ctl_.migrator_done()) return;
      // Drain over on every server: wake whatever the fence parked.
      ctl_.for_each_client([&](store::client& c, netout& net) {
        c.resume_parked(cur_key_);
        c.flush(net);
      });
      advance_key();
      return;
    }
  }
}

}  // namespace fastreg::reconfig
