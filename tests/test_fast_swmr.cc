// The Figure 2 protocol: unit tests of each automaton's transitions plus
// sequential end-to-end behaviour on the simulator.
#include <gtest/gtest.h>

#include "checker/atomicity.h"
#include "registers/fast_swmr.h"
#include "sim/world.h"
#include "sim_test_util.h"

namespace fastreg {
namespace {

using test::make_cfg;

/// netout that stores sends for inspection.
class capture final : public netout {
 public:
  void send(const process_id& to, message m) override {
    out.emplace_back(to, std::move(m));
  }
  std::vector<std::pair<process_id, message>> out;
};

// ----------------------------------------------------------------- server

TEST(FastSwmrServer, AdoptsHigherTimestampAndResetsSeen) {
  fast_swmr_server srv(make_cfg(4, 1, 1), 0);
  capture net;

  message w1;
  w1.type = msg_type::write_req;
  w1.ts = 1;
  w1.val = "a";
  srv.on_message(net, writer_id(0), w1);
  EXPECT_EQ(srv.stored().ts, 1);
  EXPECT_EQ(srv.stored().val, "a");
  EXPECT_TRUE(srv.seen().contains(writer_id(0)));
  EXPECT_EQ(srv.seen().size(), 1u);

  // A reader's read at the same ts joins seen without resetting it.
  message rd;
  rd.type = msg_type::read_req;
  rd.ts = 1;
  rd.val = "a";
  rd.rcounter = 1;
  srv.on_message(net, reader_id(0), rd);
  EXPECT_EQ(srv.seen().size(), 2u);
  EXPECT_TRUE(srv.seen().contains(reader_id(0)));

  // Higher ts resets seen to just the updater (Figure 2 line 28).
  message w2;
  w2.type = msg_type::write_req;
  w2.ts = 2;
  w2.val = "b";
  w2.prev = "a";
  srv.on_message(net, writer_id(0), w2);
  EXPECT_EQ(srv.stored().ts, 2);
  EXPECT_EQ(srv.seen().size(), 1u);
  EXPECT_TRUE(srv.seen().contains(writer_id(0)));
}

TEST(FastSwmrServer, NeverLowersTimestamp) {
  fast_swmr_server srv(make_cfg(4, 1, 1), 0);
  capture net;
  message w2;
  w2.type = msg_type::write_req;
  w2.ts = 5;
  w2.val = "e";
  srv.on_message(net, writer_id(0), w2);
  message rd;
  rd.type = msg_type::read_req;
  rd.ts = 3;  // stale write-back
  rd.rcounter = 1;
  srv.on_message(net, reader_id(0), rd);
  EXPECT_EQ(srv.stored().ts, 5);  // Lemma 1
  // But the reply carries the stored (higher) timestamp.
  ASSERT_EQ(net.out.size(), 2u);
  EXPECT_EQ(net.out[1].second.ts, 5);
}

TEST(FastSwmrServer, StaleRCounterIgnoredNoReply) {
  fast_swmr_server srv(make_cfg(4, 1, 2), 0);
  capture net;
  message rd;
  rd.type = msg_type::read_req;
  rd.rcounter = 5;
  srv.on_message(net, reader_id(0), rd);
  ASSERT_EQ(net.out.size(), 1u);
  // An older rcounter from the same reader is dropped (line 26 guard).
  message old_rd;
  old_rd.type = msg_type::read_req;
  old_rd.rcounter = 4;
  srv.on_message(net, reader_id(0), old_rd);
  EXPECT_EQ(net.out.size(), 1u);
}

TEST(FastSwmrServer, RepliesEchoRequestCounter) {
  fast_swmr_server srv(make_cfg(4, 1, 1), 0);
  capture net;
  message rd;
  rd.type = msg_type::read_req;
  rd.rcounter = 9;
  srv.on_message(net, reader_id(0), rd);
  ASSERT_EQ(net.out.size(), 1u);
  EXPECT_EQ(net.out[0].second.type, msg_type::read_ack);
  EXPECT_EQ(net.out[0].second.rcounter, 9u);
  EXPECT_EQ(net.out[0].first, reader_id(0));
}

TEST(FastSwmrServer, IgnoresServerMessagesAndAcks) {
  fast_swmr_server srv(make_cfg(4, 1, 1), 0);
  capture net;
  message m;
  m.type = msg_type::read_ack;
  srv.on_message(net, reader_id(0), m);
  m.type = msg_type::read_req;
  srv.on_message(net, server_id(1), m);
  EXPECT_TRUE(net.out.empty());
}

// ----------------------------------------------------------------- writer

TEST(FastSwmrWriter, WritesCarryValueAndPrev) {
  const auto cfg = make_cfg(4, 1, 1);
  fast_swmr_writer w(cfg);
  capture net;
  w.invoke_write(net, "first");
  ASSERT_EQ(net.out.size(), 4u);  // to all servers
  EXPECT_EQ(net.out[0].second.ts, 1);
  EXPECT_EQ(net.out[0].second.val, "first");
  EXPECT_EQ(net.out[0].second.prev, "");  // bottom

  // Complete with S - t = 3 acks.
  message ack;
  ack.type = msg_type::write_ack;
  ack.ts = 1;
  for (std::uint32_t i = 0; i < 3; ++i) w.on_message(net, server_id(i), ack);
  EXPECT_FALSE(w.write_in_progress());
  EXPECT_EQ(w.next_ts(), 2);

  net.out.clear();
  w.invoke_write(net, "second");
  EXPECT_EQ(net.out[0].second.ts, 2);
  EXPECT_EQ(net.out[0].second.prev, "first");
}

TEST(FastSwmrWriter, DuplicateAcksFromSameServerDontComplete) {
  fast_swmr_writer w(make_cfg(4, 1, 1));
  capture net;
  w.invoke_write(net, "x");
  message ack;
  ack.type = msg_type::write_ack;
  ack.ts = 1;
  for (int i = 0; i < 5; ++i) w.on_message(net, server_id(0), ack);
  EXPECT_TRUE(w.write_in_progress());
}

TEST(FastSwmrWriter, StaleAcksIgnored) {
  fast_swmr_writer w(make_cfg(4, 1, 1));
  capture net;
  w.invoke_write(net, "x");
  message ack;
  ack.type = msg_type::write_ack;
  ack.ts = 7;  // not the current write's timestamp
  for (std::uint32_t i = 0; i < 4; ++i) w.on_message(net, server_id(i), ack);
  EXPECT_TRUE(w.write_in_progress());
}

// -------------------------------------------------------------- end-to-end

TEST(FastSwmr, SequentialWriteThenReadReturnsValue) {
  const auto cfg = make_cfg(8, 1, 2);  // S/t - 2 = 6 > R = 2: feasible
  ASSERT_TRUE(fast_swmr_feasible(cfg.S(), cfg.t(), cfg.R()));
  sim::world w(cfg);
  w.install(fast_swmr_protocol{});
  rng r(1);

  w.invoke_write("hello");
  w.run_random(r);
  EXPECT_FALSE(w.writer(0)->write_in_progress());

  w.invoke_read(0);
  w.run_random(r);
  const auto res = w.last_read(0);
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->val, "hello");
  EXPECT_EQ(res->ts, 1);
  EXPECT_EQ(res->rounds, 1);
}

TEST(FastSwmr, ReadBeforeAnyWriteReturnsBottom) {
  const auto cfg = make_cfg(8, 1, 2);
  sim::world w(cfg);
  w.install(fast_swmr_protocol{});
  rng r(2);
  w.invoke_read(1);
  w.run_random(r);
  const auto res = w.last_read(1);
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->ts, 0);
  EXPECT_EQ(res->val, k_bottom_value);
}

TEST(FastSwmr, TwoReadersAlternatingStaysAtomic) {
  const auto cfg = make_cfg(9, 1, 2);
  sim::world w(cfg);
  w.install(fast_swmr_protocol{});
  rng r(3);
  for (int round = 1; round <= 5; ++round) {
    w.invoke_write("v" + std::to_string(round));
    w.run_random(r);
    for (std::uint32_t i = 0; i < 2; ++i) {
      w.invoke_read(i);
      w.run_random(r);
      EXPECT_EQ(w.last_read(i)->val, "v" + std::to_string(round));
    }
  }
  EXPECT_TRUE(checker::check_swmr_atomicity(w.hist()).ok);
  EXPECT_TRUE(checker::check_fastness(w.hist(), 1, 1).ok);
}

TEST(FastSwmr, IncompleteWriteSeenBySomeReader) {
  // A write that reaches only one server: a reader that sees it may return
  // it (concurrent), but atomicity of the overall history must hold.
  const auto cfg = make_cfg(8, 1, 2);
  sim::world w(cfg);
  w.install(fast_swmr_protocol{});
  rng r(4);

  w.invoke_write("incomplete");
  // Deliver the write to exactly one server, then stall the writer.
  w.deliver_matching([&](const sim::envelope& e) {
    return e.msg.type == msg_type::write_req && e.to == server_id(0);
  });
  w.invoke_read(0);
  w.run_random_until(r, [&] { return !w.reader(0)->read_in_progress(); });
  const auto res = w.last_read(0);
  ASSERT_TRUE(res.has_value());
  // Either the old value (bottom) or the new one is legal here.
  EXPECT_TRUE(res->val == k_bottom_value || res->val == "incomplete");
  EXPECT_TRUE(checker::check_swmr_atomicity(w.hist()).ok);
}

TEST(FastSwmr, WaitFreeUnderMaxCrashes) {
  // t servers crash outright; every op must still complete.
  const auto cfg = make_cfg(12, 2, 2);
  sim::world w(cfg);
  w.install(fast_swmr_protocol{});
  rng r(5);
  w.crash(server_id(0));
  w.crash(server_id(7));
  for (int k = 1; k <= 3; ++k) {
    w.invoke_write("v" + std::to_string(k));
    w.run_random(r);
    EXPECT_FALSE(w.writer(0)->write_in_progress());
    w.invoke_read(0);
    w.run_random(r);
    EXPECT_EQ(w.last_read(0)->val, "v" + std::to_string(k));
  }
  EXPECT_TRUE(checker::check_swmr_atomicity(w.hist()).ok);
}

TEST(FastSwmr, WriterCrashMidBroadcastReadersStillAgree) {
  const auto cfg = make_cfg(8, 1, 2);
  sim::world w(cfg);
  w.install(fast_swmr_protocol{});
  rng r(6);
  // First a complete write.
  w.invoke_write("stable");
  w.run_random(r);
  // Then the writer crashes after sending to only 3 of 8 servers.
  w.crash_after_sends(writer_id(0), 3);
  w.invoke_write("torn");
  w.run_random(r);
  // Reads still terminate and the history is atomic.
  w.invoke_read(0);
  w.run_random(r);
  w.invoke_read(1);
  w.run_random(r);
  EXPECT_FALSE(w.reader(0)->read_in_progress());
  EXPECT_FALSE(w.reader(1)->read_in_progress());
  EXPECT_TRUE(checker::check_swmr_atomicity(w.hist()).ok)
      << w.hist().dump();
}

TEST(FastSwmr, PredicateWitnessVisibleAfterCompleteWrite) {
  const auto cfg = make_cfg(8, 1, 1);
  sim::world w(cfg);
  w.install(fast_swmr_protocol{});
  rng r(7);
  w.invoke_write("x");
  w.run_random(r);
  w.invoke_read(0);
  w.run_random(r);
  auto* rd = dynamic_cast<fast_swmr_reader*>(w.get(reader_id(0)));
  ASSERT_NE(rd, nullptr);
  // After a complete write every ack carries ts=1; the witness is >= 1.
  EXPECT_GE(rd->last_witness(), 1u);
}

}  // namespace
}  // namespace fastreg
