#include "store/server.h"

#include "common/check.h"

namespace fastreg::store {

server::server(std::shared_ptr<const shard_map> shards, std::uint32_t index)
    : shards_(std::move(shards)), index_(index) {}

server::server(const server& o) : shards_(o.shards_), index_(o.index_) {
  FASTREG_EXPECTS(o.outbox_.empty());
  for (const auto& [obj, a] : o.objects_) {
    objects_.emplace(obj, a->clone());
  }
}

automaton& server::inner_for(object_id obj) {
  auto it = objects_.find(obj);
  if (it == objects_.end()) {
    const auto& proto = shards_->protocol_for_object(obj);
    it = objects_
             .emplace(obj,
                      proto.make_server(shards_->config().base, index_))
             .first;
  }
  return *it->second;
}

void server::on_message(netout& net, const process_id& from,
                        const message& m) {
  tagging_netout tagged(outbox_, m.obj);
  inner_for(m.obj).on_message(tagged, from, m);
  outbox_.flush(net);
}

void server::on_batch(netout& net, const process_id& from,
                      std::span<const message> msgs) {
  for (const auto& m : msgs) {
    tagging_netout tagged(outbox_, m.obj);
    inner_for(m.obj).on_message(tagged, from, m);
  }
  outbox_.flush(net);
}

std::unique_ptr<automaton> server::clone() const {
  return std::unique_ptr<automaton>(new server(*this));
}

}  // namespace fastreg::store
