// The Figure 5 protocol under Byzantine servers: signature validation
// paths, the b-weakened predicate, and the attack library of E10.
#include <gtest/gtest.h>

#include <tuple>

#include "adversary/byzantine.h"
#include "checker/atomicity.h"
#include "registers/fast_bft.h"
#include "registers/registry.h"
#include "sim/world.h"
#include "sim_test_util.h"

namespace fastreg {
namespace {

using adversary::equivocating_server;
using adversary::forging_server;
using adversary::mute_server;
using adversary::seen_liar_server;
using adversary::stale_server;
using test::make_cfg;
using test::run_random_workload;

system_config bft_cfg(std::uint32_t S, std::uint32_t t, std::uint32_t b,
                      std::uint32_t R) {
  return make_cfg(S, t, R, b, 1, "oracle");
}

TEST(FastBft, FeasibilityPredicateMatchesPaper) {
  // S > (R+2)t + (R+1)b.
  EXPECT_TRUE(fast_bft_feasible(10, 2, 1, 1));   // 10 > 6+2=8
  EXPECT_FALSE(fast_bft_feasible(8, 2, 1, 1));   // 8 > 8 fails
  EXPECT_TRUE(fast_bft_feasible(4, 1, 0, 1));    // crash case boundary
  EXPECT_FALSE(fast_bft_feasible(4, 1, 1, 1));
  EXPECT_FALSE(fast_bft_feasible(10, 0, 0, 1));  // t >= 1 required
  EXPECT_FALSE(fast_bft_feasible(10, 1, 2, 1));  // b <= t required
}

TEST(FastBft, SignedWritesRoundTrip) {
  const auto cfg = bft_cfg(10, 2, 1, 1);
  sim::world w(cfg);
  w.install(fast_bft_protocol{});
  rng r(1);
  w.invoke_write("signed-hello");
  w.run_random(r);
  EXPECT_FALSE(w.writer(0)->write_in_progress());
  w.invoke_read(0);
  w.run_random(r);
  EXPECT_EQ(w.last_read(0)->val, "signed-hello");
  EXPECT_EQ(w.last_read(0)->rounds, 1);
}

TEST(FastBft, ValidSignedTsAcceptsGenuineRejectsForged) {
  const auto cfg = bft_cfg(10, 2, 1, 1);
  message m;
  m.ts = 3;
  m.val = "v";
  m.prev = "p";
  const auto payload = signed_payload(m);
  m.sig = cfg.sigs->sign(
      writer_id(0),
      std::span<const std::uint8_t>(payload.data(), payload.size()));
  EXPECT_TRUE(valid_signed_ts(cfg, m));
  // Byzantine edit of the value invalidates the signature.
  message tampered = m;
  tampered.val = "evil";
  EXPECT_FALSE(valid_signed_ts(cfg, tampered));
  // ts = 0 is valid exactly when unsigned and bottom-valued.
  message initial;
  EXPECT_TRUE(valid_signed_ts(cfg, initial));
  initial.val = "junk";
  EXPECT_FALSE(valid_signed_ts(cfg, initial));
  // Negative timestamps are never valid.
  message negative;
  negative.ts = -3;
  EXPECT_FALSE(valid_signed_ts(cfg, negative));
}

TEST(FastBft, SignatureBindsObjectId) {
  // The signed payload covers the object id, so a correctly signed
  // timestamp of one object is NOT valid on another object's stream.
  const auto cfg = bft_cfg(10, 2, 1, 1);
  message m;
  m.obj = fnv1a64("account:alice");
  m.ts = 5;
  m.val = "rich";
  m.prev = "poor";
  const auto payload = signed_payload(m);
  m.sig = cfg.sigs->sign(
      writer_id(0),
      std::span<const std::uint8_t>(payload.data(), payload.size()));
  ASSERT_TRUE(valid_signed_ts(cfg, m));
  message replayed = m;
  replayed.obj = fnv1a64("account:mallory");
  EXPECT_FALSE(valid_signed_ts(cfg, replayed));
}

TEST(FastBft, CrossObjectReplayAdversaryIsRejected) {
  // A malicious server relays object A's genuine signed state into object
  // B's message stream: servers must drop the write, and a reader must
  // discard the ack, so B stays at its own (older) state.
  const auto cfg = bft_cfg(10, 2, 1, 1);
  const object_id obj_a = fnv1a64("A");
  const object_id obj_b = fnv1a64("B");

  // Writer of A produces a genuine signed write at ts=1.
  fast_bft_writer writer_a(cfg, obj_a);
  class cap final : public netout {
   public:
    void send(const process_id& to, message m) override {
      if (to == server_id(0)) last = std::move(m);
    }
    message last{};
  } net;
  writer_a.invoke_write(net, "a-value");
  ASSERT_EQ(net.last.obj, obj_a);
  ASSERT_TRUE(valid_signed_ts(cfg, net.last));

  // Replay A's signed write into B's stream at a server: dropped, no
  // reply, state untouched (receivevalid on the bound object id).
  fast_bft_server server_b(cfg, 0);
  class count_net final : public netout {
   public:
    void send(const process_id&, message) override { ++count; }
    int count{0};
  } silent;
  message replay = net.last;
  replay.obj = obj_b;
  server_b.on_message(silent, writer_id(0), replay);
  EXPECT_EQ(silent.count, 0);
  EXPECT_EQ(server_b.stored().tv.ts, 0);

  // Replay it as a READACK to B's reader mid-read: discarded as provably
  // malicious, not counted toward the quorum.
  fast_bft_reader reader_b(cfg, 0);
  reader_b.invoke_read(silent);
  message ack = net.last;
  ack.obj = obj_b;
  ack.type = msg_type::read_ack;
  ack.rcounter = 1;
  ack.seen = seen_universe();
  reader_b.on_message(silent, server_id(3), ack);
  EXPECT_TRUE(reader_b.read_in_progress());
  EXPECT_EQ(reader_b.discarded_acks(), 1u);
}

TEST(FastBft, ServerIgnoresForgedWriteback) {
  const auto cfg = bft_cfg(10, 2, 1, 1);
  fast_bft_server srv(cfg, 0);
  // A "reader" writes back ts=9 with a junk signature: must be dropped.
  class cap final : public netout {
   public:
    void send(const process_id&, message) override { ++count; }
    int count{0};
  } net;
  message rd;
  rd.type = msg_type::read_req;
  rd.ts = 9;
  rd.val = "x";
  rd.sig = {1, 2, 3};
  rd.rcounter = 1;
  srv.on_message(net, reader_id(0), rd);
  EXPECT_EQ(net.count, 0);  // receivevalid: no reply at all
  EXPECT_EQ(srv.stored().tv.ts, 0);
}

struct attack_case {
  const char* name;
  int kind;  // 0=stale 1=forge 2=mute 3=seen_liar 4=equivocate
};

class BftAttackTest
    : public ::testing::TestWithParam<std::tuple<attack_case, std::uint64_t>> {
};

TEST_P(BftAttackTest, AtomicityAndLivenessUnderMaxByzantine) {
  const auto [attack, seed] = GetParam();
  // S=16, t=3, b=2, R=2: 16 > (4)*3 + 3*2 = 18? No -- pick feasible:
  // S=19 > 12 + 6 = 18.
  const auto cfg = bft_cfg(19, 3, 2, 2);
  ASSERT_TRUE(fast_bft_feasible(cfg.S(), cfg.t(), cfg.b(), cfg.R()));
  sim::world w(cfg);
  w.install(fast_bft_protocol{});
  rng r(seed);

  // Corrupt exactly b servers with the chosen behaviour.
  for (std::uint32_t i = 0; i < cfg.b(); ++i) {
    const process_id victim = server_id(5 + 7 * i);
    auto* cur = w.get(victim);
    std::unique_ptr<automaton> evil;
    switch (attack.kind) {
      case 0:
        evil = std::make_unique<stale_server>(victim.index);
        break;
      case 1:
        evil = std::make_unique<forging_server>(victim.index);
        break;
      case 2:
        evil = std::make_unique<mute_server>(victim.index);
        break;
      case 3:
        evil = std::make_unique<seen_liar_server>(cur->clone(), cfg.R());
        break;
      default:
        evil = std::make_unique<equivocating_server>(cur->clone(),
                                                     victim.index);
        break;
    }
    w.replace_automaton(victim, std::move(evil));
  }

  run_random_workload(w, r, 6, 6);
  // Liveness: every op completed despite the attack.
  for (const auto& op : w.hist().ops()) {
    EXPECT_TRUE(op.response_time.has_value()) << attack.name;
  }
  const auto res = checker::check_swmr_atomicity(w.hist());
  EXPECT_TRUE(res.ok) << attack.name << ": " << res.error << "\n"
                      << w.hist().dump();
  EXPECT_TRUE(checker::check_fastness(w.hist(), 1, 1).ok);
}

INSTANTIATE_TEST_SUITE_P(
    Attacks, BftAttackTest,
    ::testing::Combine(::testing::Values(attack_case{"stale", 0},
                                         attack_case{"forge", 1},
                                         attack_case{"mute", 2},
                                         attack_case{"seen_liar", 3},
                                         attack_case{"equivocate", 4}),
                       ::testing::Range<std::uint64_t>(1, 6)));

class BftCleanStress
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BftCleanStress, NoFaultsRandomSchedule) {
  const auto cfg = bft_cfg(13, 2, 1, 1);  // 13 > 8 + 4 = 12
  sim::world w(cfg);
  w.install(fast_bft_protocol{});
  rng r(GetParam());
  run_random_workload(w, r, 8, 8);
  const auto res = checker::check_swmr_atomicity(w.hist());
  EXPECT_TRUE(res.ok) << res.error << "\n" << w.hist().dump();
  EXPECT_TRUE(checker::check_fastness(w.hist(), 1, 1).ok);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BftCleanStress,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(FastBft, CrashPlusByzantineMix) {
  // t=3 faulty total: b=1 malicious + 2 crashed.
  const auto cfg = bft_cfg(16, 3, 1, 1);  // 16 > 9 + 2*1... (1+2)*3+(2)*1=11
  ASSERT_TRUE(fast_bft_feasible(16, 3, 1, 1));
  sim::world w(cfg);
  w.install(fast_bft_protocol{});
  rng r(77);
  w.crash(server_id(1));
  w.crash(server_id(2));
  w.replace_automaton(server_id(3),
                      std::make_unique<stale_server>(3));
  run_random_workload(w, r, 5, 5);
  for (const auto& op : w.hist().ops()) {
    EXPECT_TRUE(op.response_time.has_value());
  }
  EXPECT_TRUE(checker::check_swmr_atomicity(w.hist()).ok);
}

TEST(FastBft, DiscardsProvablyMaliciousAcks) {
  const auto cfg = bft_cfg(10, 2, 1, 1);
  sim::world w(cfg);
  w.install(fast_bft_protocol{});
  w.replace_automaton(server_id(0), std::make_unique<forging_server>(0));
  rng r(3);
  w.invoke_write("x");
  w.run_random(r);
  w.invoke_read(0);
  // Force the forged ack to arrive while the read is still pending.
  w.deliver_matching([](const sim::envelope& e) {
    return e.to == server_id(0) && e.from == reader_id(0);
  });
  w.deliver_matching([](const sim::envelope& e) {
    return e.to == reader_id(0) && e.from == server_id(0);
  });
  auto* rd = dynamic_cast<fast_bft_reader*>(w.get(reader_id(0)));
  ASSERT_NE(rd, nullptr);
  EXPECT_GE(rd->discarded_acks(), 1u);
  w.run_random(r);
  EXPECT_EQ(w.last_read(0)->val, "x");
}

TEST(FastBft, RsaSchemeEndToEnd) {
  // Same protocol over real RSA signatures (slower; one pass).
  auto cfg = make_cfg(10, 2, 1, 1, 1, "rsa");
  sim::world w(cfg);
  w.install(fast_bft_protocol{});
  rng r(4);
  w.invoke_write("rsa-payload");
  w.run_random(r);
  w.invoke_read(0);
  w.run_random(r);
  EXPECT_EQ(w.last_read(0)->val, "rsa-payload");
  EXPECT_TRUE(checker::check_swmr_atomicity(w.hist()).ok);
}

}  // namespace
}  // namespace fastreg
