// Process-wide metrics registry: counters, gauges and log-scale
// histograms cheap enough for the reactor hot path.
//
// Design goals, in order:
//  * An increment on a cached handle is one relaxed fetch_add on a
//    cache-line-padded shard (no locks, no branches beyond the add), so
//    instrumentation compiled into the wire path costs nothing
//    measurable when nobody is scraping.
//  * Handles are STABLE for the life of the process: the registry hands
//    out references into node-based storage and never removes a metric
//    (reset() zeroes values but keeps registrations), so callers fetch
//    once at construction time and cache the pointer.
//  * One text exposition format everywhere: `name{labels} value`, one
//    line per sample, rendered identically by the in-process snapshot,
//    the benches and the stats_req/stats_ack admin frame — and parsed
//    by the same validate_dump used in tests and tools/obs_check.
//
// Histograms are fixed-bucket log-scale: 8 sub-buckets per power of two
// (worst-case relative quantization error ~9%), exact count/sum/min/max
// on the side. That makes percentile() a cumulative bucket walk — no
// sample retention — which benchutil::stream_hist reuses to drop the
// sort-the-whole-vector percentile path for million-sample runs.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace fastreg::obs {

/// Monotonic counter, sharded to keep concurrent writers off one line.
class counter {
 public:
  static constexpr std::size_t k_shards = 8;

  void inc(std::uint64_t n = 1) {
    cell_for_thread().fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const auto& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }
  void reset() {
    for (auto& c : cells_) c.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) cell {
    std::atomic<std::uint64_t> v{0};
  };
  std::atomic<std::uint64_t>& cell_for_thread();
  cell cells_[k_shards];
};

/// Last-write-wins signed gauge (set) with add/sub for level tracking.
class gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket log-scale histogram of non-negative integer samples
/// (typically nanoseconds). Bucket 0 holds zeros; bucket 1+k covers the
/// k-th log segment: 8 sub-buckets per octave, so any sample lands in a
/// bucket whose bounds are within ~9% of its value.
class histogram {
 public:
  static constexpr std::size_t k_sub_bits = 3;  // 8 sub-buckets/octave
  // 64 octaves x 8 sub-buckets, plus the dedicated zero bucket.
  static constexpr std::size_t k_buckets = 1 + (64u << k_sub_bits);

  /// Index of the bucket `v` falls in (stable across processes; used by
  /// benchutil::stream_hist too).
  [[nodiscard]] static std::size_t bucket_index(std::uint64_t v);
  /// Representative value (geometric-ish midpoint) of bucket `idx`.
  [[nodiscard]] static std::uint64_t bucket_value(std::size_t idx);

  void observe(std::uint64_t v);

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t min() const;
  [[nodiscard]] std::uint64_t max() const {
    return max_.load(std::memory_order_relaxed);
  }
  /// p in [0,100]. Bucket-walk estimate clamped to the exact observed
  /// [min, max]; 0 when empty.
  [[nodiscard]] std::uint64_t percentile(double p) const;

  void reset();

 private:
  std::atomic<std::uint64_t> buckets_[k_buckets]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~0ull};
  std::atomic<std::uint64_t> max_{0};
};

enum class metric_kind : std::uint8_t { counter, gauge, histogram };

/// One rendered sample: `name{labels}` (labels may be empty) and the
/// numeric value. Histograms expand to several rows (_count, _sum,
/// _p50, _p99, _max). `cumulative` marks rows that accumulate over the
/// process lifetime (counters, histogram _count/_sum) and therefore
/// subtract meaningfully in diff_snapshot; level rows (gauges,
/// percentile estimates) pass through as-is.
struct sample {
  std::string name{};  // full series name, labels included
  double value{0};
  metric_kind kind{metric_kind::gauge};
  bool cumulative{false};
};

class registry {
 public:
  /// The process-wide instance every instrumented layer reports into.
  [[nodiscard]] static registry& instance();

  /// Fetch-or-create. `labels` is the rendered label body, e.g.
  /// `node="server:0"` (no braces); empty for an unlabeled series.
  /// Returned references stay valid for the life of the process.
  ///
  /// The CREATE branch takes the registry mutex and allocates; it is a
  /// startup-time path, not a hot-loop one. Threads that declare
  /// themselves hot loops (reactor threads, via mark_hot_loop_thread)
  /// trip a FASTREG_CHECK if a get_* call on them would register a new
  /// series -- handles must be pre-created before the loop starts.
  [[nodiscard]] counter& get_counter(std::string_view name,
                                     std::string_view labels = {});
  [[nodiscard]] gauge& get_gauge(std::string_view name,
                                 std::string_view labels = {});
  [[nodiscard]] histogram& get_histogram(std::string_view name,
                                         std::string_view labels = {});

  /// Declares (or undeclares) the calling thread a hot loop: any
  /// subsequent series CREATION from it is a contract violation unless
  /// wrapped in allow_hot_registration. Fetches of existing series stay
  /// legal (they still lock, so hot paths should cache handles anyway).
  static void mark_hot_loop_thread(bool hot);

  /// All current samples, name-sorted (histograms expanded).
  [[nodiscard]] std::vector<sample> snapshot() const;
  /// The text dump: one `name{labels} value` line per sample.
  [[nodiscard]] std::string render_text() const;
  /// Zeroes every value; registrations (and handles) survive.
  void reset();

 private:
  registry() = default;
  struct impl;
  [[nodiscard]] impl& self() const;
};

/// Scoped exemption from the hot-loop registration check, for control-
/// plane work that legitimately runs on a reactor thread (e.g. a
/// reconfiguration installing a new shard map creates that map's
/// counters from a posted task). Construction is cheap (one
/// thread_local increment); nests.
class allow_hot_registration {
 public:
  allow_hot_registration();
  ~allow_hot_registration();
  allow_hot_registration(const allow_hot_registration&) = delete;
  allow_hot_registration& operator=(const allow_hot_registration&) = delete;
};

/// Conveniences over registry::instance().
[[nodiscard]] std::vector<sample> snapshot();
[[nodiscard]] std::string render_text();
void reset_metrics();

/// Per-interval view without resetting anybody's counters: cumulative
/// rows become cur - prev (0 when absent from prev, i.e. newly
/// registered); level rows (gauges, percentiles) keep their current
/// value. Inputs are name-sorted snapshots; so is the result.
[[nodiscard]] std::vector<sample> diff_snapshot(
    const std::vector<sample>& cur, const std::vector<sample>& prev);

/// The text rendering of an arbitrary sample list (same line format as
/// render_text), for interval dumps.
[[nodiscard]] std::string render_samples(const std::vector<sample>& rows);

/// Phase-loop scrape helper: take() returns the delta since the last
/// take (or construction) and rolls the baseline forward. Lets bench
/// matrices report per-row counters without a registry reset between
/// rows (which would corrupt concurrent readers' cumulative series).
class interval_scrape {
 public:
  interval_scrape() : prev_(snapshot()) {}
  [[nodiscard]] std::vector<sample> take() {
    auto cur = snapshot();
    auto delta = diff_snapshot(cur, prev_);
    prev_ = std::move(cur);
    return delta;
  }

 private:
  std::vector<sample> prev_;
};

/// render_text with a node identity stamped onto every row that does
/// not already carry one: rows whose label set lacks `node=` gain
/// `node="<node>"`. The stats_ack scrape path uses it so rows from a
/// merged in-process registry are attributable in multi-node-per-
/// process runs (the same context LOG_* lines prefix from).
[[nodiscard]] std::string render_text_annotated(std::string_view node);

/// Validates a text dump against the exposition grammar (one
/// `name{key="value",...} number` per non-empty line). Returns an empty
/// string when valid, else a description of the first offending line.
/// Shared by tests and tools/obs_check.
[[nodiscard]] std::string validate_dump(std::string_view text);

}  // namespace fastreg::obs
