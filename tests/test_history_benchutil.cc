// history bookkeeping, the stats/table helpers, and the measured-workload
// driver that powers every experiment binary.
#include <gtest/gtest.h>

#include "benchutil/stats.h"
#include "benchutil/table.h"
#include "benchutil/workload.h"
#include "checker/atomicity.h"
#include "checker/history.h"
#include "registers/registry.h"
#include "sim_test_util.h"

namespace fastreg {
namespace {

using checker::history;
using test::make_cfg;

TEST(History, RecordsAndCompletesOps) {
  history h;
  const auto w = h.begin_op(writer_id(0), true, 10, "val");
  EXPECT_EQ(h.size(), 1u);
  EXPECT_FALSE(h.op(w).response_time.has_value());
  h.complete_write(w, 20, 1);
  EXPECT_EQ(*h.op(w).response_time, 20u);

  const auto r = h.begin_op(reader_id(0), false, 30);
  h.complete_read(r, 40, 1, 0, "val", 1);
  EXPECT_EQ(h.op(r).val, "val");
  EXPECT_EQ(h.op(r).ts, 1);
}

TEST(History, FiltersByKind) {
  history h;
  const auto w1 = h.begin_op(writer_id(0), true, 1, "a");
  h.complete_write(w1, 2, 1);
  h.begin_op(writer_id(0), true, 3, "b");  // incomplete
  const auto r1 = h.begin_op(reader_id(0), false, 4);
  h.complete_read(r1, 5, 1, 0, "a", 1);
  h.begin_op(reader_id(1), false, 6);  // incomplete read

  EXPECT_EQ(h.all_writes().size(), 2u);
  EXPECT_EQ(h.writes_by(writer_id(0)).size(), 1u);  // only completed
  EXPECT_EQ(h.completed_reads().size(), 1u);
}

TEST(History, DumpMentionsEveryOp) {
  history h;
  const auto w1 = h.begin_op(writer_id(0), true, 1, "a");
  h.complete_write(w1, 2, 1);
  const auto dump = h.dump();
  EXPECT_NE(dump.find("write"), std::string::npos);
  EXPECT_NE(dump.find("\"a\""), std::string::npos);
}

TEST(HistoryDeath, DoubleInvokeSameClientAborts) {
  history h;
  h.begin_op(reader_id(0), false, 1);
  EXPECT_DEATH(h.begin_op(reader_id(0), false, 2), "precondition");
}

// ------------------------------------------------------------------ stats

TEST(Stats, MeanMinMax) {
  benchutil::stats s;
  for (double v : {3.0, 1.0, 2.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  EXPECT_EQ(s.count(), 3u);
}

TEST(Stats, PercentilesInterpolate) {
  benchutil::stats s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_NEAR(s.p50(), 50.5, 0.01);
  EXPECT_NEAR(s.percentile(0), 1.0, 0.01);
  EXPECT_NEAR(s.percentile(100), 100.0, 0.01);
  EXPECT_GT(s.p99(), 98.0);
}

TEST(Stats, EmptyIsZeroNotCrash) {
  benchutil::stats s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.p50(), 0.0);
}

TEST(Stats, AddAfterQueryStillSorted) {
  benchutil::stats s;
  s.add(5);
  EXPECT_DOUBLE_EQ(s.p50(), 5.0);
  s.add(1);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
}

TEST(Fmt, Precision) {
  EXPECT_EQ(benchutil::fmt(1.2345, 2), "1.23");
  EXPECT_EQ(benchutil::fmt(7.0, 0), "7");
}

TEST(StatsDeath, PercentileOutsideDomainAborts) {
  benchutil::stats s;
  s.add(1.0);
  EXPECT_DEATH((void)s.percentile(-1), "precondition");
  EXPECT_DEATH((void)s.percentile(100.5), "precondition");
}

TEST(Stats, SingleSampleDegeneratePercentiles) {
  benchutil::stats s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 42.0);
  EXPECT_DOUBLE_EQ(s.p50(), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 42.0);
}

// -------------------------------------------------------------- delays

TEST(UniformDelay, ConstantWhenLoEqualsHi) {
  sim::uniform_delay d(100, 100);
  rng r(1);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(d.sample(r, writer_id(0), server_id(0)), 100u);
  }
}

TEST(UniformDelayDeath, InvertedRangeAborts) {
  // lo > hi would wrap hi - lo + 1 and sample near-uint64 delays.
  EXPECT_DEATH(sim::uniform_delay(5, 2), "precondition");
}

// ------------------------------------------------------------------ table

TEST(Table, AlignsColumns) {
  benchutil::table t({"a", "long_header"});
  t.add_row({"xxxxx", "1"});
  const auto s = t.render();
  // Header line and rule line have equal length; the row is padded.
  const auto nl1 = s.find('\n');
  const auto nl2 = s.find('\n', nl1 + 1);
  EXPECT_EQ(nl1, nl2 - nl1 - 1);
  EXPECT_NE(s.find("xxxxx"), std::string::npos);
}

TEST(Table, ShortRowsPadded) {
  benchutil::table t({"a", "b", "c"});
  t.add_row({"1"});
  EXPECT_NO_THROW(t.render());
}

// --------------------------------------------------------------- workload

TEST(Workload, SequentialLatencyMatchesDelayModel) {
  system_config cfg = make_cfg(5, 1, 1);
  benchutil::workload_options opt;
  opt.num_writes = 10;
  opt.reads_per_reader = 10;
  opt.delay_lo = 100;
  opt.delay_hi = 100;  // constant
  const auto rep =
      benchutil::run_measured(*make_protocol("fast_swmr"), cfg, opt);
  EXPECT_TRUE(rep.all_complete);
  // One RTT at constant 100 per hop = 200 ticks (+1 bookkeeping step max).
  EXPECT_NEAR(rep.read_latency.p50(), 200.0, 8.0);
  EXPECT_NEAR(rep.write_latency.p50(), 200.0, 8.0);
  EXPECT_DOUBLE_EQ(rep.read_rounds.mean(), 1.0);
}

TEST(Workload, AbdReadsTakeTwoRtt) {
  system_config cfg = make_cfg(5, 2, 1);
  benchutil::workload_options opt;
  opt.num_writes = 5;
  opt.reads_per_reader = 5;
  opt.delay_lo = 100;
  opt.delay_hi = 100;
  const auto rep = benchutil::run_measured(*make_protocol("abd"), cfg, opt);
  EXPECT_NEAR(rep.read_latency.p50(), 400.0, 12.0);
  EXPECT_DOUBLE_EQ(rep.read_rounds.mean(), 2.0);
}

TEST(Workload, ConcurrentModeCompletesEverything) {
  system_config cfg = make_cfg(9, 2, 3);
  benchutil::workload_options opt;
  opt.num_writes = 10;
  opt.reads_per_reader = 10;
  opt.concurrent = true;
  const auto rep =
      benchutil::run_measured(*make_protocol("fast_swmr"), cfg, opt);
  EXPECT_TRUE(rep.all_complete);
  EXPECT_EQ(rep.hist.size(), 10u + 3u * 10u);
  EXPECT_TRUE(checker::check_swmr_atomicity(rep.hist).ok);
}

TEST(Workload, CrashServersStillCompletes) {
  system_config cfg = make_cfg(9, 2, 2);
  benchutil::workload_options opt;
  opt.num_writes = 8;
  opt.reads_per_reader = 8;
  opt.concurrent = true;
  opt.crash_servers = 2;
  const auto rep =
      benchutil::run_measured(*make_protocol("fast_swmr"), cfg, opt);
  EXPECT_TRUE(rep.all_complete);
  EXPECT_TRUE(checker::check_swmr_atomicity(rep.hist).ok);
}

TEST(Workload, MidwayTornCrashStaysAtomic) {
  system_config cfg = make_cfg(9, 2, 2);
  benchutil::workload_options opt;
  opt.num_writes = 8;
  opt.reads_per_reader = 8;
  opt.concurrent = true;
  opt.crash_servers = 2;
  opt.crash_midway = true;
  const auto rep =
      benchutil::run_measured(*make_protocol("fast_swmr"), cfg, opt);
  EXPECT_TRUE(rep.all_complete);
  EXPECT_TRUE(checker::check_swmr_atomicity(rep.hist).ok);
}

TEST(Workload, MessageComplexityScalesWithS) {
  benchutil::workload_options opt;
  opt.num_writes = 5;
  opt.reads_per_reader = 5;
  const auto small =
      benchutil::run_measured(*make_protocol("fast_swmr"),
                              make_cfg(4, 1, 1), opt);
  const auto large =
      benchutil::run_measured(*make_protocol("fast_swmr"),
                              make_cfg(16, 1, 1), opt);
  // 2S messages per op (S requests + S replies when none crash).
  EXPECT_NEAR(small.msgs_per_op, 8.0, 0.5);
  EXPECT_NEAR(large.msgs_per_op, 32.0, 0.5);
}

// ------------------------------------------------------------- zipf --

TEST(Zipf, ExactDistributionMatchesPowerLaw) {
  const benchutil::zipf_sampler z(100, 1.0);
  double total = 0;
  for (std::uint32_t k = 0; k < 100; ++k) total += z.probability(k);
  EXPECT_NEAR(total, 1.0, 1e-9);
  // P(rank 0) / P(rank 9) = 10^s for s = 1.
  EXPECT_NEAR(z.probability(0) / z.probability(9), 10.0, 1e-6);
  // P(rank 0) = 1 / H_100 ~= 0.1928.
  EXPECT_NEAR(z.probability(0), 0.1928, 1e-3);
}

TEST(Zipf, EmpiricalSkewTracksExactDistribution) {
  const std::uint32_t n = 64;
  const benchutil::zipf_sampler z(n, 0.99);
  rng r(77);
  std::vector<std::uint64_t> counts(n, 0);
  const std::uint64_t samples = 200'000;
  for (std::uint64_t i = 0; i < samples; ++i) counts[z.sample(r)]++;
  // Hot head: each of the top ranks lands within 5% of its exact mass.
  for (std::uint32_t k = 0; k < 8; ++k) {
    const double expected = z.probability(k) * static_cast<double>(samples);
    EXPECT_NEAR(static_cast<double>(counts[k]), expected, expected * 0.05)
        << "rank " << k;
  }
  // And the skew is real: rank 0 draws an order of magnitude more than
  // the median rank.
  EXPECT_GT(counts[0], 10 * counts[n / 2]);
}

TEST(Zipf, DistinctSamplesStayInRangeAndHotKeyHeavy) {
  const std::uint32_t n = 16;
  const benchutil::zipf_sampler z(n, 1.2);
  rng r(5);
  std::uint32_t key0_hits = 0;
  const int draws = 400;
  for (int i = 0; i < draws; ++i) {
    const auto keys = benchutil::sample_distinct_keys_zipf(r, z, 4);
    ASSERT_EQ(keys.size(), 4u);
    std::set<std::string> uniq(keys.begin(), keys.end());
    EXPECT_EQ(uniq.size(), 4u);  // distinct within a batch
    for (const auto& k : keys) {
      ASSERT_EQ(k.substr(0, 3), "key");
      const int rank = std::stoi(k.substr(3));
      ASSERT_GE(rank, 0);
      ASSERT_LT(rank, static_cast<int>(n));
      key0_hits += k == "key0" ? 1 : 0;
    }
  }
  // With s=1.2 over 16 keys, key0 carries ~37% of single-draw mass, so a
  // 4-distinct batch nearly always contains it.
  EXPECT_GT(key0_hits, draws * 3 / 4);
}

TEST(StoreWorkload, ZipfClosedLoopCompletesAndLinearizes) {
  store::store_config cfg;
  cfg.base.servers = 7;
  cfg.base.t_failures = 1;
  cfg.base.readers = 2;
  cfg.base.writers = 1;
  cfg.num_shards = 4;
  cfg.shard_protocols = {"fast_swmr", "abd"};
  benchutil::store_workload_options opt;
  opt.num_keys = 16;
  opt.gets_per_reader = 32;
  opt.puts_per_writer = 16;
  opt.batch = 4;
  opt.dist = benchutil::key_dist::zipf;
  opt.zipf_s = 1.1;
  const auto rep = benchutil::run_store_measured(cfg, opt);
  EXPECT_TRUE(rep.all_complete);
  EXPECT_TRUE(rep.hist.verify().ok);
  // The skew concentrates traffic: the hottest key sees far more ops
  // than the coldest (uniform would spread 80 ops over 16 keys evenly).
  std::size_t hottest = 0, total = 0;
  for (const auto& [key, h] : rep.hist.all()) {
    hottest = std::max(hottest, h.size());
    total += h.size();
  }
  EXPECT_EQ(total, 2u * 32u + 16u);
  EXPECT_GT(hottest, total / 8);
}

}  // namespace
}  // namespace fastreg
