// Unit tests of the Byzantine behaviour wrappers themselves (the attack
// library the E10/E4 experiments rely on).
#include <gtest/gtest.h>

#include "adversary/byzantine.h"
#include "registers/fast_bft.h"
#include "registers/fast_swmr.h"
#include "sim_test_util.h"

namespace fastreg::adversary {
namespace {

using test::make_cfg;

class capture final : public netout {
 public:
  void send(const process_id& to, message m) override {
    out.emplace_back(to, std::move(m));
  }
  std::vector<std::pair<process_id, message>> out;
};

message read_req(std::uint64_t rcounter) {
  message m;
  m.type = msg_type::read_req;
  m.rcounter = rcounter;
  return m;
}

message write_req(ts_t ts, const value_t& v) {
  message m;
  m.type = msg_type::write_req;
  m.ts = ts;
  m.val = v;
  return m;
}

TEST(MuteServer, NeverSendsAnything) {
  mute_server srv(0);
  capture net;
  srv.on_message(net, writer_id(0), write_req(1, "x"));
  srv.on_message(net, reader_id(0), read_req(1));
  EXPECT_TRUE(net.out.empty());
  EXPECT_EQ(srv.clone()->self(), server_id(0));
}

TEST(StaleServer, AlwaysAnswersInitialState) {
  stale_server srv(2);
  capture net;
  srv.on_message(net, writer_id(0), write_req(5, "x"));
  srv.on_message(net, reader_id(0), read_req(3));
  ASSERT_EQ(net.out.size(), 2u);
  EXPECT_EQ(net.out[1].second.ts, 0);
  EXPECT_EQ(net.out[1].second.rcounter, 3u);
}

TEST(ForgingServer, EmitsInvalidSignatures) {
  const auto cfg = make_cfg(4, 1, 1, 1, 1, "oracle");
  forging_server srv(1);
  capture net;
  srv.on_message(net, reader_id(0), read_req(1));
  ASSERT_EQ(net.out.size(), 1u);
  // The forged ack must NOT pass receivevalid.
  EXPECT_FALSE(valid_signed_ts(cfg, net.out[0].second));
}

TEST(SeenLiar, PreservesTimestampButInflatesSeen) {
  const auto cfg = make_cfg(4, 1, 3);
  seen_liar_server liar(std::make_unique<fast_swmr_server>(cfg, 0), 3);
  capture net;
  liar.on_message(net, writer_id(0), write_req(1, "x"));
  ASSERT_EQ(net.out.size(), 1u);
  const auto& ack = net.out[0].second;
  EXPECT_EQ(ack.ts, 1);
  EXPECT_EQ(ack.val, "x");
  // Claims all R+1 clients saw it, though only the writer did.
  EXPECT_EQ(ack.seen.size(), 4u);
  // clone() keeps the wrapped behaviour.
  auto copy = liar.clone();
  capture net2;
  copy->on_message(net2, reader_id(0), read_req(1));
  EXPECT_EQ(net2.out[0].second.seen.size(), 4u);
}

TEST(TwoFaced, ShadowHidesWritesFromTargetOnly) {
  const auto cfg = make_cfg(4, 1, 2);
  two_faced_server tf(std::make_unique<fast_swmr_server>(cfg, 0),
                      {reader_id(0)});
  capture net;
  // Write reaches the real copy only.
  tf.on_message(net, writer_id(0), write_req(7, "secret"));
  ASSERT_EQ(net.out.size(), 1u);  // ack to the writer, from the real copy
  EXPECT_EQ(net.out[0].second.ts, 7);
  net.out.clear();

  // r1 (the shadow target) sees a pre-write world.
  tf.on_message(net, reader_id(0), read_req(1));
  ASSERT_EQ(net.out.size(), 1u);
  EXPECT_EQ(net.out[0].first, reader_id(0));
  EXPECT_EQ(net.out[0].second.ts, 0);
  net.out.clear();

  // r2 sees the truth.
  tf.on_message(net, reader_id(1), read_req(1));
  ASSERT_EQ(net.out.size(), 1u);
  EXPECT_EQ(net.out[0].first, reader_id(1));
  EXPECT_EQ(net.out[0].second.ts, 7);
  EXPECT_EQ(net.out[0].second.val, "secret");
}

TEST(TwoFaced, CloneIsDeepForBothFaces) {
  const auto cfg = make_cfg(4, 1, 2);
  two_faced_server tf(std::make_unique<fast_swmr_server>(cfg, 0),
                      {reader_id(0)});
  capture net;
  tf.on_message(net, writer_id(0), write_req(1, "a"));
  auto copy = tf.clone();
  // Advance the original; the clone must not see it.
  tf.on_message(net, writer_id(0), write_req(2, "b"));
  net.out.clear();
  copy->on_message(net, reader_id(1), read_req(1));
  EXPECT_EQ(net.out[0].second.ts, 1);
}

TEST(Equivocator, LiesOnlyToEvenReaders) {
  const auto cfg = make_cfg(4, 1, 2);
  equivocating_server eq(std::make_unique<fast_swmr_server>(cfg, 1), 1);
  capture net;
  eq.on_message(net, writer_id(0), write_req(3, "v"));
  net.out.clear();
  eq.on_message(net, reader_id(0), read_req(1));  // even index: stale lie
  eq.on_message(net, reader_id(1), read_req(1));  // odd index: truth
  ASSERT_EQ(net.out.size(), 2u);
  EXPECT_EQ(net.out[0].second.ts, 0);
  EXPECT_EQ(net.out[1].second.ts, 3);
}

}  // namespace
}  // namespace fastreg::adversary
