// Contract checks in the spirit of the C++ Core Guidelines I.6/I.8
// (Expects/Ensures). Violations abort with a message: these guard internal
// invariants, not recoverable user input.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace fastreg::detail {
[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "fastreg %s failed: %s at %s:%d\n", kind, expr, file,
               line);
  std::abort();
}
}  // namespace fastreg::detail

#define FASTREG_EXPECTS(cond)                                               \
  do {                                                                      \
    if (!(cond))                                                            \
      ::fastreg::detail::contract_failure("precondition", #cond, __FILE__,  \
                                          __LINE__);                        \
  } while (0)

#define FASTREG_ENSURES(cond)                                               \
  do {                                                                      \
    if (!(cond))                                                            \
      ::fastreg::detail::contract_failure("postcondition", #cond, __FILE__, \
                                          __LINE__);                        \
  } while (0)

#define FASTREG_CHECK(cond)                                                 \
  do {                                                                      \
    if (!(cond))                                                            \
      ::fastreg::detail::contract_failure("invariant", #cond, __FILE__,     \
                                          __LINE__);                        \
  } while (0)
