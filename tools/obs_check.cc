// obs_check -- validates a metrics text dump against the exposition
// grammar (`name{key="value",...} number`, one sample per line). Reads
// the file named on the command line, or stdin with no argument. Exit 0
// on a valid dump, 1 with a diagnostic on the first offending line. CI
// runs it on the dump E12 --obs-check scrapes over the stats_req frame,
// so a format drift between the renderer and external scrapers fails
// the build instead of a dashboard.
#include <cstdio>
#include <string>

#include "obs/metrics.h"

int main(int argc, char** argv) {
  std::string text;
  if (argc > 1) {
    std::FILE* f = std::fopen(argv[1], "r");
    if (f == nullptr) {
      std::fprintf(stderr, "obs_check: cannot open %s\n", argv[1]);
      return 1;
    }
    char buf[64 * 1024];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
      text.append(buf, n);
    }
    std::fclose(f);
  } else {
    char buf[64 * 1024];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, stdin)) > 0) {
      text.append(buf, n);
    }
  }
  if (text.empty()) {
    std::fprintf(stderr, "obs_check: empty dump\n");
    return 1;
  }
  const auto err = fastreg::obs::validate_dump(text);
  if (!err.empty()) {
    std::fprintf(stderr, "obs_check: %s\n", err.c_str());
    return 1;
  }
  std::size_t lines = 0;
  for (const char ch : text) {
    if (ch == '\n') ++lines;
  }
  std::printf("obs_check: %zu lines ok\n", lines);
  return 0;
}
