// Verifiers for the correctness conditions of Section 3.
//
// Single-writer checks (exact for SWMR histories with unique values):
//
//  * check_swmr_atomicity -- the four conditions of Section 3.1, verbatim:
//      (1) every read returns some written value (bottom counts as val_0);
//      (2) a read that succeeds write_k returns val_l with l >= k;
//      (3) a read returning val_k (k >= 1) is preceded by or concurrent
//          with write_k;
//      (4) if rd2 succeeds rd1 then rd2 returns a value at least as new.
//    O(n log n).
//
//  * check_swmr_regular -- conditions (1)-(3) only: a regular register
//    admits new/old inversions between reads (Section 8), so condition (4)
//    is dropped.
//
// Multi-writer linearizability (Section 7's generalized model) comes in
// two flavors that must agree -- the fast one is the default everywhere,
// the slow one is kept as a differential-testing oracle:
//
//  * check_mwmr_linearizable -- polynomial-time register linearizability
//    in the Gibbons & Korach style: because written values are unique,
//    every read names its dictating write, so linearizability reduces to
//    the acyclicity of a precedence relation over per-value clusters
//    (the write of v plus every read returning v). Any cycle in that
//    relation contains a 2-cycle, which an O(n log n) sweep finds.
//    Input assumptions, rejected (not mis-verified) when violated:
//      - written values are unique across ALL writes, complete or not;
//      - no write writes bottom (the empty value is reserved for the
//        initial state).
//    Incomplete reads are ignored (they never have to take effect);
//    incomplete writes take effect iff some completed read returned
//    their value. This matches check_linearizable's semantics exactly.
//    O(n log n) per history -- the checker that lets MWMR stress runs
//    scale to millions of operations.
//
//  * check_linearizable -- the same property via a Wing&Gong-style
//    exhaustive search with memoization. Exponential worst case; capped
//    at 63 operations. Kept ONLY as the oracle the polynomial checker is
//    differentially tested against (test_checker_differential.cc) and
//    for the small adversarial histories of Section 7.
//
//  * check_fastness -- every completed operation used at most the stated
//    number of round-trips (Section 3.2's fast-implementation property,
//    measured rather than assumed).
#pragma once

#include <string>

#include "checker/history.h"

namespace fastreg::checker {

struct check_result {
  bool ok{true};
  std::string error{};

  explicit operator bool() const { return ok; }
};

[[nodiscard]] check_result check_swmr_atomicity(const history& h);
[[nodiscard]] check_result check_swmr_regular(const history& h);
[[nodiscard]] check_result check_mwmr_linearizable(const history& h);
[[nodiscard]] check_result check_linearizable(const history& h);
[[nodiscard]] check_result check_fastness(const history& h,
                                          int max_read_rounds,
                                          int max_write_rounds);

}  // namespace fastreg::checker
