// The store's server automaton: one process hosting per-object server
// automata, created lazily on first traffic for an object. Replies
// triggered by one delivered batch coalesce into batched envelopes (one
// per destination), so a client that pipelined k ops gets its k acks back
// in a single transport unit.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "store/batching.h"
#include "store/shard_map.h"

namespace fastreg::store {

class server final : public automaton {
 public:
  server(std::shared_ptr<const shard_map> shards, std::uint32_t index);
  server(const server& o);
  server& operator=(const server&) = delete;

  void on_message(netout& net, const process_id& from,
                  const message& m) override;
  void on_batch(netout& net, const process_id& from,
                std::span<const message> msgs) override;
  [[nodiscard]] std::unique_ptr<automaton> clone() const override;
  [[nodiscard]] process_id self() const override { return server_id(index_); }

  /// Distinct objects this server hosts (diagnostic).
  [[nodiscard]] std::size_t objects_hosted() const { return objects_.size(); }

 private:
  automaton& inner_for(object_id obj);

  std::shared_ptr<const shard_map> shards_;
  std::uint32_t index_;
  std::unordered_map<object_id, std::unique_ptr<automaton>> objects_;
  batch_collector outbox_;
};

}  // namespace fastreg::store
