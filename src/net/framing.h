// Length-prefixed framing for protocol messages over TCP.
//
// Frame layout: u32 length (LE) | u8 kind | payload.
//   kind 0 (hello): payload = sender process_id. Sent once per connection
//                   so the acceptor learns who is on the other end.
//   kind 1 (msg):   payload = sender process_id + encoded message.
//   kind 2 (batch): payload = sender process_id + u32 count + count
//                   encoded messages. One frame per send_batch call, so a
//                   burst of store traffic to one destination pays the
//                   frame and syscall overhead once.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <vector>

#include "registers/message.h"

namespace fastreg::net {

enum class frame_kind : std::uint8_t { hello = 0, msg = 1, batch = 2 };

/// Forces creation of framing's lazily-registered process-global
/// counters (malformed frames, corrupt streams). Reactor threads run
/// under the registry's hot-loop creation check, so any thread that
/// will parse frames must have these preheated first -- net::node calls
/// this from its constructor (a cold, off-reactor context).
void preheat_framing_metrics();

struct frame {
  frame_kind kind{frame_kind::msg};
  process_id from{};
  std::optional<message> msg{};  // present for kind::msg
  std::vector<message> batch{};  // non-empty for kind::batch
};

// Zero-copy frame encoders: append one complete frame to `out` -- the
// exact frame size is computed first and reserved in one step (a no-op
// once the buffer's capacity is warmed, so the steady state performs no
// per-frame heap allocation), then the codec writes in place. `out` is
// typically a buffer_chain tail block reused across many frames. Each
// returns the bytes appended.
std::size_t append_hello_frame(std::vector<std::uint8_t>& out,
                               const process_id& from);
std::size_t append_msg_frame(std::vector<std::uint8_t>& out,
                             const process_id& from, const message& m);
std::size_t append_batch_frame(std::vector<std::uint8_t>& out,
                               const process_id& from,
                               std::span<const message> msgs);

/// Exact on-wire size of the frame append_*_frame would emit (header
/// included); what transports pass to buffer_chain::tail_for.
[[nodiscard]] std::size_t msg_frame_wire_size(const message& m);
[[nodiscard]] std::size_t batch_frame_wire_size(std::span<const message> msgs);

// Owned-buffer conveniences (tests, one-shot sends).
[[nodiscard]] std::vector<std::uint8_t> encode_hello(const process_id& from);
[[nodiscard]] std::vector<std::uint8_t> encode_msg_frame(
    const process_id& from, const message& m);
[[nodiscard]] std::vector<std::uint8_t> encode_batch_frame(
    const process_id& from, std::span<const message> msgs);

/// Incremental frame decoder: feed raw bytes, pop complete frames.
/// Malformed frames (bad decode) are dropped with a count, never fatal --
/// a Byzantine peer must not be able to crash a correct process.
///
/// Two failure severities:
///  * A frame with a PLAUSIBLE length prefix but an undecodable payload
///    is skipped by exactly its declared extent; later frames on the
///    stream still parse (malformed_count grows).
///  * An IMPLAUSIBLE length prefix (zero, or beyond max_frame_bytes)
///    means framing itself is lost: every byte after it is unattributable
///    garbage, and scanning for the "next" frame could resynchronize on
///    attacker-chosen bytes. The buffer latches corrupt(): no further
///    frames are produced and fed bytes are discarded. The connection
///    MUST be reset -- net::node closes it (the peer reconnects with
///    fresh framing state and retransmits per protocol retry rules);
///    intact frames popped before the corruption are unaffected.
class frame_buffer {
 public:
  void feed(const std::uint8_t* data, std::size_t n);
  [[nodiscard]] std::optional<frame> next();

  /// Zero-copy inbound path: parses every complete frame DIRECTLY from
  /// the caller's read buffer (no copy into the internal buffer) and
  /// invokes `cb(frame&&)` for each; only a trailing partial frame is
  /// buffered for the next read. While a previous read left a partial
  /// frame pending, falls back to the buffered feed()+next() path (the
  /// straddling frame is reassembled there). Identical frame sequence
  /// and corrupt() semantics to feed()+next().
  template <class F>
  void drain(const std::uint8_t* data, std::size_t n, F&& cb) {
    if (corrupt_) return;
    if (buf_.size() != consumed_) {  // partial frame pending: buffered path
      feed(data, n);
      while (auto f = next()) cb(std::move(*f));
      return;
    }
    if (consumed_ > 0) {  // internal buffer fully drained: discard it
      buf_.clear();
      consumed_ = 0;
    }
    std::size_t pos = 0;
    while (pos < n) {
      frame f;
      std::size_t used = 0;
      const auto r = parse_one(data + pos, n - pos, used, f);
      if (r == parse_result::need_more) break;
      if (r == parse_result::corrupt) return;  // latched by parse_one
      pos += used;
      if (r == parse_result::ok) cb(std::move(f));
      // parse_result::skip: malformed payload counted, frame skipped.
    }
    if (pos < n) buf_.insert(buf_.end(), data + pos, data + n);
  }

  [[nodiscard]] std::uint64_t malformed_count() const { return malformed_; }
  /// Framing lost (hopeless length prefix): reset the connection.
  [[nodiscard]] bool corrupt() const { return corrupt_; }

  /// Upper bound on accepted frame payloads; larger frames mark the
  /// stream corrupt.
  static constexpr std::uint32_t max_frame_bytes = 16 * 1024 * 1024;

 private:
  enum class parse_result : std::uint8_t { ok, need_more, skip, corrupt };

  /// Attempts to parse one frame from `data`; on ok/skip sets `used` to
  /// the frame's full extent. On corrupt, latches corrupt_ and discards
  /// the internal buffer (the stream has no trustworthy boundary left).
  parse_result parse_one(const std::uint8_t* data, std::size_t avail,
                         std::size_t& used, frame& out);

  std::vector<std::uint8_t> buf_;
  std::size_t consumed_{0};
  std::uint64_t malformed_{0};
  bool corrupt_{false};
};

}  // namespace fastreg::net
