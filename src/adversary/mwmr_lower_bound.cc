#include "adversary/mwmr_lower_bound.h"

#include "common/check.h"
#include "sim/world.h"

namespace fastreg::adversary {
namespace {

using sim::envelope;
using sim::world;

/// Builds run^i: two writes (w2 writes "2", w1 writes "1") where 0-based
/// servers j < i-1 process w1's message before w2's and the rest process
/// w2's first; then r1 performs a skip-free read. Returns the world (for
/// extension) and r1's value.
struct run_state {
  world w;
  value_t r1_value;
};

run_state make_run(const protocol& proto, const system_config& cfg,
                   std::uint32_t i) {
  const std::uint32_t S = cfg.S();
  world w(cfg);
  w.install(proto);

  const process_id w1 = writer_id(0);
  const process_id w2 = writer_id(1);

  auto deliver_write_to = [&](const process_id& writer, std::uint32_t srv) {
    w.deliver_matching([&](const envelope& e) {
      return e.from == writer && e.to == server_id(srv) &&
             e.msg.type == msg_type::write_req;
    });
  };
  auto deliver_client_acks = [&](const process_id& client) {
    w.deliver_matching([&](const envelope& e) { return e.to == client; });
  };

  if (i == 1) {
    // Sequential: write(2) by w2 completes, then write(1) by w1 completes.
    w.invoke_write(1, "2");
    for (std::uint32_t j = 0; j < S; ++j) deliver_write_to(w2, j);
    deliver_client_acks(w2);
    FASTREG_CHECK(!w.writer(1)->write_in_progress());
    w.invoke_write(0, "1");
    for (std::uint32_t j = 0; j < S; ++j) deliver_write_to(w1, j);
    deliver_client_acks(w1);
    FASTREG_CHECK(!w.writer(0)->write_in_progress());
  } else {
    // Concurrent writes; per-server arrival order encodes the run index.
    w.invoke_write(1, "2");
    w.invoke_write(0, "1");
    for (std::uint32_t j = 0; j < S; ++j) {
      if (j < i - 1) {
        deliver_write_to(w1, j);
        deliver_write_to(w2, j);
      } else {
        deliver_write_to(w2, j);
        deliver_write_to(w1, j);
      }
    }
    deliver_client_acks(w2);
    deliver_client_acks(w1);
    FASTREG_CHECK(!w.writer(0)->write_in_progress());
    FASTREG_CHECK(!w.writer(1)->write_in_progress());
  }

  // Skip-free read by r1.
  w.invoke_read(0);
  w.deliver_matching([&](const envelope& e) {
    return e.from == reader_id(0) && e.to.is_server();
  });
  deliver_client_acks(reader_id(0));
  const auto res = w.last_read(0);
  FASTREG_CHECK(res.has_value());
  return run_state{std::move(w), res->val};
}

/// Extends a finished run with a read by r2 that skips server `skip`
/// (0-based) and returns its value.
value_t extend_with_r2(world& w, std::uint32_t skip) {
  w.invoke_read(1);
  w.deliver_matching([&](const envelope& e) {
    return e.from == reader_id(1) && e.to.is_server() &&
           e.to.index != skip;
  });
  w.deliver_matching(
      [&](const envelope& e) { return e.to == reader_id(1); });
  const auto res = w.last_read(1);
  FASTREG_CHECK(res.has_value());
  return res->val;
}

}  // namespace

std::string mwmr_report::summary() const {
  std::string out = "series=[";
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (i != 0) out += ",";
    out += series[i];
  }
  out += "] P1(run^1)=" + std::string(p1_ok_run1 ? "ok" : "VIOLATED");
  out += " P1(run^{S+1})=" + std::string(p1_ok_runlast ? "ok" : "VIOLATED");
  if (flip_index) {
    out += " flip@i1=" + std::to_string(*flip_index);
    out += " r2(run')=" + (r2_run_prime ? *r2_run_prime : "?");
    out += " r2(run'')=" + (r2_run_doubleprime ? *r2_run_doubleprime : "?");
    out += p2_violation ? " P2 VIOLATED" : " P2 ok";
  }
  out += violation ? " => NOT ATOMIC" : " => no violation found";
  return out;
}

mwmr_report run_mwmr_lower_bound(const protocol& proto, std::uint32_t S) {
  FASTREG_EXPECTS(proto.read_rounds() == 1 && proto.write_rounds() == 1);
  FASTREG_EXPECTS(S >= 2);

  system_config cfg;
  cfg.servers = S;
  cfg.t_failures = 1;
  cfg.readers = 2;
  cfg.writers = 2;

  mwmr_report rep;
  rep.w1_value = "1";
  rep.w2_value = "2";

  for (std::uint32_t i = 1; i <= S + 1; ++i) {
    auto run = make_run(proto, cfg, i);
    rep.series.push_back(run.r1_value);
    rep.trace.push_back("run^" + std::to_string(i) + ": r1 read \"" +
                        run.r1_value + "\"");
  }

  // P1 at the endpoints: run^1 is w2;w1;read (expect "1"), run^{S+1} is
  // indistinguishable from w1;w2;read (expect "2").
  rep.p1_ok_run1 = rep.series.front() == rep.w1_value;
  rep.p1_ok_runlast = rep.series.back() == rep.w2_value;

  // Flip point: consecutive runs where the answer changes.
  for (std::uint32_t i = 1; i <= S; ++i) {
    if (rep.series[i - 1] == rep.w1_value && rep.series[i] == rep.w2_value) {
      rep.flip_index = i;
      break;
    }
  }

  if (rep.flip_index) {
    const std::uint32_t i1 = *rep.flip_index;
    auto run_p = make_run(proto, cfg, i1);
    rep.r2_run_prime = extend_with_r2(run_p.w, i1 - 1);
    auto run_pp = make_run(proto, cfg, i1 + 1);
    rep.r2_run_doubleprime = extend_with_r2(run_pp.w, i1 - 1);
    rep.trace.push_back("run' : r2 (skipping s" + std::to_string(i1) +
                        ") read \"" + *rep.r2_run_prime + "\"");
    rep.trace.push_back("run'': r2 (skipping s" + std::to_string(i1) +
                        ") read \"" + *rep.r2_run_doubleprime + "\"");
    // In run', P2 demands r2 == r1 == w1_value; in run'', r2 == w2_value.
    // Since r2 cannot distinguish the runs, one of the two must fail.
    rep.p2_violation = *rep.r2_run_prime != rep.series[i1 - 1] ||
                       *rep.r2_run_doubleprime != rep.series[i1];
  }

  rep.violation = !rep.p1_ok_run1 || !rep.p1_ok_runlast || rep.p2_violation;
  return rep;
}

}  // namespace fastreg::adversary
