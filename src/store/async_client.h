// The store's ONE pipelined async front-end, transport-agnostic: a
// sliding-window session per client that keeps up to `depth` operations
// in flight, backed by either the deterministic simulator (sim_store /
// sim::world) or the real-socket deployment (net::cluster / net::node).
//
// This collapses what used to be two parallel drivers -- the TCP-only
// `tcp_store::pipeline` and the simulator's `invoke_*_batch` loops --
// into one surface, so stress harnesses, benches and tests submit ops
// the same way on both transports and their histories are gathered by
// the same logging code.
//
// Surface:
//  * try_get/try_put -- one admission attempt, never blocks: `submitted`
//    once the op is accepted into the window, `window_full` when `depth`
//    ops are already in flight, `key_busy` when the same (client, key)
//    already has an op in flight (per-object well-formedness).
//  * get/put -- blocking submit: waits for admission (window slot + key
//    free), returns once the op is on the wire. False on timeout.
//  * pump() -- makes progress without submitting: issues anything
//    buffered and harvests completions into the results stash.
//  * drain() -- waits until nothing submitted remains in flight.
//  * take_results() -- completion-ordered results since the last call.
//
// Threading: one session per client index at a time, driven from one
// thread (the same exclusivity rule as the blocking store calls, which
// must not be mixed with an active session on that index). Different
// sessions may live on different threads; on TCP they may share a hub
// node whose reactor pool multiplexes all their connections.
//
// Admission outcomes are counted in the process registry
// (fastreg_store_admission_total{result=...}) so a scrape shows how
// often the window or a busy key pushed back.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "obs/metrics.h"
#include "store/client.h"
#include "store/histories.h"

namespace fastreg::net {
class cluster;
class node;
}  // namespace fastreg::net

namespace fastreg::store {

class sim_store;

/// Outcome of one non-blocking admission attempt.
enum class submit_status : std::uint8_t {
  submitted = 0,
  /// `depth` ops already in flight on this session.
  window_full = 1,
  /// The same (client, key) already has an op in flight.
  key_busy = 2,
  /// Transport failure (e.g. the node is stopped).
  failed = 3,
};

/// Invocation/completion log shared by every TCP session and blocking
/// call of a deployment, written once and rebuilt into per-key histories
/// on demand. Timestamps are steady-clock nanoseconds taken by the
/// caller (ON the reactor for pipelined submits, so same-key precedence
/// is preserved -- see tcp session internals). Thread-safe.
class op_log {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// Appends an incomplete entry for a just-invoked op and registers it
  /// as the open op for (client, key). Returns its log index.
  std::size_t open(const process_id& client, const std::string& key,
                   bool is_put, const value_t& v, std::uint64_t t0);

  /// Closes the EARLIEST incomplete entry for each result's (client,
  /// key): a stale completion closes the abandoned older entry, a fresh
  /// one closes its own call's. Returns the closed log indices
  /// (parallel to `results`; npos for results with no open entry).
  std::vector<std::size_t> close(const process_id& client,
                                 const std::vector<store_result>& results,
                                 std::uint64_t t1);

  /// Per-key histories of everything logged so far, rebuilt in
  /// invocation-time order.
  [[nodiscard]] store_histories gather() const;

 private:
  struct raw_op {
    std::string key{};
    process_id client{};
    bool is_put{false};
    std::uint64_t t0{0};
    std::optional<std::uint64_t> t1{};
    ts_t ts{k_initial_ts};
    std::int32_t wid{0};
    value_t val{};
    int rounds{0};
  };

  mutable std::mutex mu_;
  std::vector<raw_op> log_;
  /// Indices of incomplete log_ entries per (client, key), oldest first,
  /// so completions match their op in O(log n) instead of rescanning the
  /// whole append-only log.
  std::map<std::pair<process_id, std::string>, std::deque<std::size_t>>
      open_;
};

/// One client's pipelined session (see file comment for the surface and
/// threading contract). Obtained from a store_frontend.
class async_session {
 public:
  virtual ~async_session() = default;

  async_session(const async_session&) = delete;
  async_session& operator=(const async_session&) = delete;

  /// Blocking submits: wait for admission, return once the op is on the
  /// wire. False on timeout (the op was NOT submitted).
  [[nodiscard]] bool get(
      const std::string& key,
      std::chrono::milliseconds timeout = std::chrono::seconds(10));
  [[nodiscard]] bool put(
      const std::string& key, value_t v,
      std::chrono::milliseconds timeout = std::chrono::seconds(10));

  /// Non-blocking admission attempts. A sim session buffers accepted ops
  /// until the next pump() so they leave in ONE invocation step (batched
  /// envelopes); a TCP session puts them on the wire immediately.
  [[nodiscard]] submit_status try_get(const std::string& key);
  [[nodiscard]] submit_status try_put(const std::string& key, value_t v);

  /// Issues anything buffered and harvests completions into the results
  /// stash. Never blocks (on the sim it does not step the world; the
  /// driver owns the schedule).
  virtual void pump() = 0;

  /// Waits until nothing submitted remains in flight and harvests the
  /// final completions. False on timeout (ops may still be in flight).
  [[nodiscard]] virtual bool drain(
      std::chrono::milliseconds timeout = std::chrono::seconds(10)) = 0;

  /// Harvested completions since the last call, completion-ordered (may
  /// include late completions of ops an earlier timed-out blocking store
  /// call abandoned on this client).
  [[nodiscard]] std::vector<store_result> take_results() {
    return std::exchange(results_, {});
  }

  [[nodiscard]] std::uint64_t submitted() const { return submitted_; }
  /// Ops submitted through this session and not yet harvested (buffered
  /// ones included).
  [[nodiscard]] std::uint64_t in_flight() const {
    return submitted_ >= harvested_ ? submitted_ - harvested_ : 0;
  }
  [[nodiscard]] const process_id& client_id() const { return client_; }
  [[nodiscard]] std::uint32_t depth() const { return depth_; }

 protected:
  async_session(process_id client, std::uint32_t depth);

  /// One admission attempt (never blocks).
  [[nodiscard]] virtual submit_status try_submit(const std::string& key,
                                                 bool is_put, value_t v) = 0;
  /// Blocking admission (waits for a slot / key, then submits).
  [[nodiscard]] virtual bool blocking_submit(
      const std::string& key, bool is_put, value_t v,
      std::chrono::milliseconds timeout) = 0;

  /// Appends harvested completions to the results stash and advances the
  /// in-flight accounting.
  void stash(std::vector<store_result> done);

  process_id client_;
  std::uint32_t depth_;
  std::uint64_t submitted_{0};
  std::uint64_t harvested_{0};
  std::vector<store_result> results_;

 private:
  void count(submit_status st);

  /// Admission counters, one per outcome (registry handles, fetched at
  /// construction on the driver thread).
  obs::counter* adm_[4] = {nullptr, nullptr, nullptr, nullptr};
};

/// A deployment that can hand out pipelined sessions and gather the
/// per-key histories of everything they (and the blocking calls) did.
class store_frontend {
 public:
  virtual ~store_frontend() = default;

  /// Opens the pipelined session for client `client` with a window of
  /// `depth` ops. One live session per client index (see the threading
  /// contract above).
  [[nodiscard]] virtual std::unique_ptr<async_session> open_session(
      const process_id& client, std::uint32_t depth) = 0;

  [[nodiscard]] virtual store_histories gather() const = 0;
};

/// TCP backend: sessions submit through the client's node (per-node or
/// hub topology -- cluster::client_node/client_actor hide the
/// difference) and log into the deployment's shared op_log.
class tcp_frontend final : public store_frontend {
 public:
  tcp_frontend(net::cluster& cluster, op_log& log)
      : cluster_(cluster), log_(log) {}

  [[nodiscard]] std::unique_ptr<async_session> open_session(
      const process_id& client, std::uint32_t depth) override;
  [[nodiscard]] store_histories gather() const override;

 private:
  net::cluster& cluster_;
  op_log& log_;
};

/// Simulator backend: sessions buffer admissions and issue them in ONE
/// world::invoke_step per pump() (batched envelopes, the sim equivalent
/// of a wire flush). Histories stay on the sim_store's virtual-time
/// recording path. The driver still owns the schedule: sessions never
/// step the world except inside blocking_submit/drain, which use the
/// frontend's rng to run the world until admission/completion.
class sim_frontend final : public store_frontend {
 public:
  /// `r` drives world steps for the blocking calls; it aliases the
  /// driver's rng so blocking and scripted schedules interleave
  /// deterministically.
  sim_frontend(sim_store& s, rng& r) : s_(s), r_(r) {}

  [[nodiscard]] std::unique_ptr<async_session> open_session(
      const process_id& client, std::uint32_t depth) override;
  [[nodiscard]] store_histories gather() const override;

 private:
  sim_store& s_;
  rng& r_;
};

}  // namespace fastreg::store
