#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cctype>
#include <cstdio>
#include <deque>
#include <map>
#include <mutex>

#include "common/check.h"

namespace fastreg::obs {

namespace {

// Hot-loop registration contract (see registry::mark_hot_loop_thread):
// reactor threads set `hot_loop_thread`; series creation on them is a
// bug unless an allow_hot_registration scope is live.
thread_local bool hot_loop_thread = false;
thread_local int hot_registration_exemptions = 0;

void check_creation_allowed() {
  FASTREG_CHECK(!hot_loop_thread || hot_registration_exemptions > 0);
}

}  // namespace

void registry::mark_hot_loop_thread(bool hot) { hot_loop_thread = hot; }

allow_hot_registration::allow_hot_registration() {
  ++hot_registration_exemptions;
}
allow_hot_registration::~allow_hot_registration() {
  --hot_registration_exemptions;
}

// ---------------------------------------------------------------- counter --

std::atomic<std::uint64_t>& counter::cell_for_thread() {
  // A per-thread stable shard index: hashing the address of a
  // thread_local spreads threads across cells without any registration.
  static thread_local const std::uint8_t slot_anchor = 0;
  const auto h = reinterpret_cast<std::uintptr_t>(&slot_anchor);
  return cells_[(h >> 6) % k_shards].v;
}

// -------------------------------------------------------------- histogram --

std::size_t histogram::bucket_index(std::uint64_t v) {
  if (v == 0) return 0;
  const auto octave =
      static_cast<std::size_t>(std::bit_width(v)) - 1;  // floor(log2 v)
  const std::size_t sub =
      octave >= k_sub_bits
          ? (v >> (octave - k_sub_bits)) & ((1u << k_sub_bits) - 1)
          : (v << (k_sub_bits - octave)) & ((1u << k_sub_bits) - 1);
  return 1 + (octave << k_sub_bits) + sub;
}

std::uint64_t histogram::bucket_value(std::size_t idx) {
  if (idx == 0) return 0;
  const std::size_t octave = (idx - 1) >> k_sub_bits;
  const std::size_t sub = (idx - 1) & ((1u << k_sub_bits) - 1);
  if (octave < k_sub_bits) {
    // Tiny octaves have fewer than 8 representable values; undo the
    // left shift bucket_index applied.
    return (1ull << octave) | (sub >> (k_sub_bits - octave));
  }
  const std::uint64_t lo =
      (1ull << octave) | (static_cast<std::uint64_t>(sub)
                          << (octave - k_sub_bits));
  const std::uint64_t width = 1ull << (octave - k_sub_bits);
  return lo + width / 2;
}

void histogram::observe(std::uint64_t v) {
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  // Racy min/max CAS loops: losing a race to an equal-or-better bound
  // is fine.
  std::uint64_t cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::uint64_t histogram::min() const {
  const auto m = min_.load(std::memory_order_relaxed);
  return m == ~0ull ? 0 : m;
}

std::uint64_t histogram::percentile(double p) const {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  // Rank of the target sample (1-based, nearest-rank).
  const auto rank = static_cast<std::uint64_t>(
      p / 100.0 * static_cast<double>(n - 1) + 1);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < k_buckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) {
      const std::uint64_t v = bucket_value(i);
      return std::clamp(v, min(), max());
    }
  }
  return max();
}

void histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~0ull, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

// --------------------------------------------------------------- registry --

namespace {

std::string series_key(std::string_view name, std::string_view labels) {
  std::string key(name);
  if (!labels.empty()) {
    key += '{';
    key += labels;
    key += '}';
  }
  return key;
}

/// `name_suffix{labels}` for histogram expansion rows.
std::string suffixed(const std::string& key, std::string_view suffix) {
  const auto brace = key.find('{');
  if (brace == std::string::npos) return key + std::string(suffix);
  std::string out = key.substr(0, brace);
  out += suffix;
  out += key.substr(brace);
  return out;
}

std::string format_value(double v) {
  // Integral values (the overwhelming majority) print without a
  // fractional part so dumps stay diff-friendly.
  if (v == static_cast<double>(static_cast<std::int64_t>(v))) {
    return std::to_string(static_cast<std::int64_t>(v));
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

struct registry::impl {
  mutable std::mutex mu;
  // Node-based storage (deque) keeps handles stable; the maps only hold
  // indices. Lookup cost is irrelevant -- callers cache the handle.
  std::map<std::string, std::size_t> counter_idx;
  std::map<std::string, std::size_t> gauge_idx;
  std::map<std::string, std::size_t> hist_idx;
  std::deque<counter> counters;
  std::deque<gauge> gauges;
  std::deque<histogram> hists;
};

registry::impl& registry::self() const {
  static impl i;
  return i;
}

registry& registry::instance() {
  static registry r;
  return r;
}

counter& registry::get_counter(std::string_view name,
                               std::string_view labels) {
  auto& s = self();
  std::lock_guard<std::mutex> lk(s.mu);
  const auto key = series_key(name, labels);
  const auto it = s.counter_idx.find(key);
  if (it != s.counter_idx.end()) return s.counters[it->second];
  check_creation_allowed();
  s.counters.emplace_back();
  s.counter_idx.emplace(key, s.counters.size() - 1);
  return s.counters.back();
}

gauge& registry::get_gauge(std::string_view name, std::string_view labels) {
  auto& s = self();
  std::lock_guard<std::mutex> lk(s.mu);
  const auto key = series_key(name, labels);
  const auto it = s.gauge_idx.find(key);
  if (it != s.gauge_idx.end()) return s.gauges[it->second];
  check_creation_allowed();
  s.gauges.emplace_back();
  s.gauge_idx.emplace(key, s.gauges.size() - 1);
  return s.gauges.back();
}

histogram& registry::get_histogram(std::string_view name,
                                   std::string_view labels) {
  auto& s = self();
  std::lock_guard<std::mutex> lk(s.mu);
  const auto key = series_key(name, labels);
  const auto it = s.hist_idx.find(key);
  if (it != s.hist_idx.end()) return s.hists[it->second];
  check_creation_allowed();
  s.hists.emplace_back();
  s.hist_idx.emplace(key, s.hists.size() - 1);
  return s.hists.back();
}

std::vector<sample> registry::snapshot() const {
  auto& s = self();
  std::lock_guard<std::mutex> lk(s.mu);
  std::vector<sample> out;
  out.reserve(s.counter_idx.size() + s.gauge_idx.size() +
              s.hist_idx.size() * 5);
  for (const auto& [key, idx] : s.counter_idx) {
    out.push_back({key, static_cast<double>(s.counters[idx].value()),
                   metric_kind::counter, true});
  }
  for (const auto& [key, idx] : s.gauge_idx) {
    out.push_back({key, static_cast<double>(s.gauges[idx].value()),
                   metric_kind::gauge, false});
  }
  for (const auto& [key, idx] : s.hist_idx) {
    const auto& h = s.hists[idx];
    out.push_back({suffixed(key, "_count"), static_cast<double>(h.count()),
                   metric_kind::histogram, true});
    out.push_back({suffixed(key, "_sum"), static_cast<double>(h.sum()),
                   metric_kind::histogram, true});
    out.push_back({suffixed(key, "_p50"),
                   static_cast<double>(h.percentile(50)),
                   metric_kind::histogram, false});
    out.push_back({suffixed(key, "_p99"),
                   static_cast<double>(h.percentile(99)),
                   metric_kind::histogram, false});
    out.push_back({suffixed(key, "_max"), static_cast<double>(h.max()),
                   metric_kind::histogram, false});
  }
  std::sort(out.begin(), out.end(),
            [](const sample& a, const sample& b) { return a.name < b.name; });
  return out;
}

std::string registry::render_text() const {
  std::string out;
  for (const auto& row : snapshot()) {
    out += row.name;
    out += ' ';
    out += format_value(row.value);
    out += '\n';
  }
  return out;
}

void registry::reset() {
  auto& s = self();
  std::lock_guard<std::mutex> lk(s.mu);
  for (auto& c : s.counters) c.reset();
  for (auto& g : s.gauges) g.reset();
  for (auto& h : s.hists) h.reset();
}

std::vector<sample> snapshot() { return registry::instance().snapshot(); }
std::string render_text() { return registry::instance().render_text(); }
void reset_metrics() { registry::instance().reset(); }

std::vector<sample> diff_snapshot(const std::vector<sample>& cur,
                                  const std::vector<sample>& prev) {
  // Merge-walk two name-sorted snapshots. Series present only in prev
  // were reset away (the registry never unregisters) -- skip them.
  std::vector<sample> out;
  out.reserve(cur.size());
  std::size_t j = 0;
  for (const auto& c : cur) {
    while (j < prev.size() && prev[j].name < c.name) ++j;
    sample row = c;
    if (c.cumulative && j < prev.size() && prev[j].name == c.name) {
      row.value = c.value - prev[j].value;
    }
    out.push_back(std::move(row));
  }
  return out;
}

std::string render_samples(const std::vector<sample>& rows) {
  std::string out;
  for (const auto& row : rows) {
    out += row.name;
    out += ' ';
    out += format_value(row.value);
    out += '\n';
  }
  return out;
}

std::string render_text_annotated(std::string_view node) {
  const std::string inject = "node=\"" + std::string(node) + "\"";
  std::string out;
  for (const auto& row : snapshot()) {
    const auto brace = row.name.find('{');
    if (brace == std::string::npos) {
      out += row.name + "{" + inject + "}";
    } else if (row.name.find("node=\"", brace) == std::string::npos) {
      out += row.name.substr(0, brace + 1) + inject + "," +
             row.name.substr(brace + 1);
    } else {
      out += row.name;
    }
    out += ' ';
    out += format_value(row.value);
    out += '\n';
  }
  return out;
}

// ---------------------------------------------------------- dump grammar --

namespace {

bool ident_start(char c) {
  return (std::isalpha(static_cast<unsigned char>(c)) != 0) || c == '_';
}
bool ident_char(char c) {
  return ident_start(c) ||
         (std::isdigit(static_cast<unsigned char>(c)) != 0) || c == ':';
}

/// Parses one `name{key="value",...} number` line; empty string on
/// success, error description otherwise.
std::string check_line(std::string_view line) {
  std::size_t i = 0;
  if (line.empty() || !ident_start(line[0])) return "expected metric name";
  while (i < line.size() && ident_char(line[i])) ++i;
  if (i < line.size() && line[i] == '{') {
    ++i;
    bool first = true;
    while (true) {
      if (i >= line.size()) return "unterminated label set";
      if (line[i] == '}') {
        if (first) return "empty label set";
        ++i;
        break;
      }
      if (!first) {
        if (line[i] != ',') return "expected ',' between labels";
        ++i;
      }
      if (i >= line.size() || !ident_start(line[i])) {
        return "expected label name";
      }
      while (i < line.size() && ident_char(line[i])) ++i;
      if (i >= line.size() || line[i] != '=') return "expected '='";
      ++i;
      if (i >= line.size() || line[i] != '"') return "expected '\"'";
      ++i;
      while (i < line.size() && line[i] != '"') {
        if (line[i] == '\\') ++i;  // escaped char
        ++i;
      }
      if (i >= line.size()) return "unterminated label value";
      ++i;  // closing quote
      first = false;
    }
  }
  if (i >= line.size() || line[i] != ' ') {
    return "expected ' ' before value";
  }
  ++i;
  if (i >= line.size()) return "missing value";
  std::size_t digits = 0;
  if (line[i] == '-') ++i;
  while (i < line.size() &&
         std::isdigit(static_cast<unsigned char>(line[i])) != 0) {
    ++i;
    ++digits;
  }
  if (i < line.size() && line[i] == '.') {
    ++i;
    while (i < line.size() &&
           std::isdigit(static_cast<unsigned char>(line[i])) != 0) {
      ++i;
      ++digits;
    }
  }
  // Scientific notation from %.6g on very large values.
  if (digits > 0 && i < line.size() && (line[i] == 'e' || line[i] == 'E')) {
    ++i;
    if (i < line.size() && (line[i] == '+' || line[i] == '-')) ++i;
    std::size_t exp_digits = 0;
    while (i < line.size() &&
           std::isdigit(static_cast<unsigned char>(line[i])) != 0) {
      ++i;
      ++exp_digits;
    }
    if (exp_digits == 0) return "malformed exponent";
  }
  if (digits == 0) return "malformed value";
  if (i != line.size()) return "trailing garbage after value";
  return {};
}

}  // namespace

std::string validate_dump(std::string_view text) {
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const auto nl = text.find('\n', pos);
    const auto line = text.substr(
        pos, nl == std::string_view::npos ? text.size() - pos : nl - pos);
    ++line_no;
    if (!line.empty()) {
      const auto err = check_line(line);
      if (!err.empty()) {
        return "line " + std::to_string(line_no) + ": " + err + ": '" +
               std::string(line) + "'";
      }
    }
    if (nl == std::string_view::npos) break;
    pos = nl + 1;
  }
  return {};
}

}  // namespace fastreg::obs
