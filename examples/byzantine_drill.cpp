// byzantine_drill: the Figure 5 register under a live attack drill.
//
// A bank of S = 19 servers tolerates t = 3 failures of which b = 2 may be
// malicious (feasible: 19 > (R+2)t + (R+1)b = 12 + 6 for R = 2). We run
// each attack from the library while a writer and two readers operate,
// and watch the protocol's receivevalid + predicate machinery absorb it.
//
// Build & run:  ./build/examples/byzantine_drill
#include <cstdio>

#include "adversary/byzantine.h"
#include "checker/atomicity.h"
#include "crypto/sig.h"
#include "registers/fast_bft.h"
#include "registers/registry.h"
#include "sim/world.h"

using namespace fastreg;
using namespace fastreg::adversary;

namespace {

void drill(const char* attack_name,
           const std::function<std::unique_ptr<automaton>(
               sim::world&, const system_config&, std::uint32_t)>& corrupt) {
  system_config cfg;
  cfg.servers = 19;
  cfg.t_failures = 3;
  cfg.b_malicious = 2;
  cfg.readers = 2;
  cfg.sigs = crypto::make_signature_scheme("oracle");

  sim::world w(cfg);
  w.install(*make_protocol("fast_bft"));
  const std::uint32_t victims[2] = {3, 11};
  for (const auto v : victims) {
    w.replace_automaton(server_id(v), corrupt(w, cfg, v));
  }

  rng r(7);
  for (int round = 1; round <= 4; ++round) {
    w.invoke_write("reading-" + std::to_string(round));
    w.run_random(r);
    w.invoke_read(0);
    w.run_random(r);
    w.invoke_read(1);
    w.run_random(r);
  }
  std::uint64_t discarded = 0;
  for (std::uint32_t i = 0; i < cfg.R(); ++i) {
    discarded += dynamic_cast<fast_bft_reader*>(w.get(reader_id(i)))
                     ->discarded_acks();
  }
  const bool atomic = checker::check_swmr_atomicity(w.hist()).ok;
  const auto last = w.last_read(1);
  std::printf("  %-12s final read=\"%s\"  atomic=%s  discarded acks=%llu\n",
              attack_name, last->val.c_str(), atomic ? "yes" : "NO",
              static_cast<unsigned long long>(discarded));
}

}  // namespace

int main() {
  std::printf("byzantine_drill: S=19, t=3, b=2, R=2 "
              "(19 > (R+2)t + (R+1)b = 18)\n");
  std::printf("two servers (s4, s12) run each attack while clients "
              "operate:\n\n");
  drill("stale", [](sim::world&, const system_config&, std::uint32_t v) {
    return std::make_unique<stale_server>(v);
  });
  drill("forge", [](sim::world&, const system_config&, std::uint32_t v) {
    return std::make_unique<forging_server>(v);
  });
  drill("mute", [](sim::world&, const system_config&, std::uint32_t v) {
    return std::make_unique<mute_server>(v);
  });
  drill("seen_liar",
        [](sim::world& w, const system_config& cfg, std::uint32_t v) {
          return std::make_unique<seen_liar_server>(
              w.get(server_id(v))->clone(), cfg.R());
        });
  drill("two_faced",
        [](sim::world& w, const system_config&, std::uint32_t v) {
          return std::make_unique<two_faced_server>(
              w.get(server_id(v))->clone(),
              std::unordered_set<process_id>{reader_id(0)});
        });
  std::printf(
      "\nwhy b matters: none of these can forge the writer's signature "
      "(Property 2), but withholding or replaying signed values is always "
      "possible -- that is why the bound pays (R+1) extra servers per "
      "malicious failure: S > (R+2)t + (R+1)b.\n");
  return 0;
}
