// Executable version of the Section 6.2 lower bound (Proposition 10): if
// (R+2)t + (R+1)b >= S there is no fast atomic SWMR register, even with
// writer signatures, when up to b of the t faulty servers are malicious.
//
// The schedule mirrors Section 5 but splits servers into T-blocks (crash
// budget, size <= t) and B-blocks (malicious budget, size <= b). The
// malicious blocks' only deviation is the paper's "loses its memory /
// two-faced" behaviour: B_{R+1} answers r_1 from a shadow state that never
// saw the write while answering everyone else honestly -- a deviation that
// signatures cannot detect, because withholding a signed value is not
// forgery. That is exactly why b weakens the bound from S > (R+2)t to
// S > (R+2)t + (R+1)b.
#pragma once

#include "adversary/report.h"
#include "registers/automaton.h"

namespace fastreg::adversary {

/// Runs the construction against `proto` under `cfg` (uses S, t, b, R).
/// The protocol must have 1-round reads and writes. cfg.sigs must be set
/// if the protocol needs signatures.
[[nodiscard]] construction_report run_bft_lower_bound(
    const protocol& proto, const system_config& cfg);

}  // namespace fastreg::adversary
