#include "obs/recorder.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>

#include "obs/trace.h"

namespace fastreg::obs {

namespace detail {
std::atomic<bool> recording_on{[] {
  const char* v = std::getenv("FASTREG_OBS");
  return v != nullptr && std::strcmp(v, "record") == 0;
}()};
}  // namespace detail

bool recording_enabled() { return recording_active(); }
void set_recording(bool on) {
  detail::recording_on.store(on, std::memory_order_relaxed);
}

// -------------------------------------------------------------- trace ids --

namespace {
std::atomic<std::uint64_t> g_next_trace{1};
thread_local trace_ctx t_ctx{};
}  // namespace

std::uint64_t next_trace_id() {
  return g_next_trace.fetch_add(1, std::memory_order_relaxed);
}

trace_ctx current_trace_ctx() { return t_ctx; }

scoped_trace_ctx::scoped_trace_ctx(std::uint64_t trace, std::uint16_t span)
    : prev_(t_ctx) {
  t_ctx = {trace, span};
}
scoped_trace_ctx::~scoped_trace_ctx() { t_ctx = prev_; }

// ----------------------------------------------------------------- events --

const char* to_string(rec_event e) {
  switch (e) {
    case rec_event::send:
      return "send";
    case rec_event::recv:
      return "recv";
    case rec_event::serve:
      return "serve";
    case rec_event::nack:
      return "nack";
    case rec_event::park:
      return "park";
    case rec_event::resume:
      return "resume";
    case rec_event::fence:
      return "fence";
  }
  return "?";
}

const char* rec_msg_type_name(std::uint8_t code) {
  // Mirrors registers/message.cc's to_string by numeric code; the
  // MsgTypeNameTableMatchesRegisters test keeps the two in lockstep.
  static const char* const names[] = {
      "-",         "WRITE",    "WRITEACK", "READ",     "READACK",
      "WB",        "WBACK",    "QUERY",    "QUERYACK", "GOSSIP",
      "EPOCHNACK", "STATE",    "STATEACK", "SEED",     "SEEDACK",
      "FETCH",     "FETCHACK", "STATS",    "STATSACK"};
  if (code >= sizeof(names) / sizeof(names[0])) return "-";
  return names[code];
}

// ------------------------------------------------------------------- ring --

// Seqlock slot: `stamp` holds the 1-based claim sequence (0 = never
// written; a changed stamp across a reader's copy = torn). All payload
// words are relaxed atomics so concurrent record/dump never races.
struct alignas(64) recorder::slot {
  std::atomic<std::uint64_t> stamp{0};
  std::atomic<std::uint64_t> t{0};
  std::atomic<std::uint64_t> trace{0};
  std::atomic<std::uint64_t> obj{0};
  std::atomic<std::uint64_t> epoch{0};
  std::atomic<std::uint64_t> ts{0};
  // span(16) << 24 | ev(8) << 16 | mtype(8) << 8 | dom(1)
  std::atomic<std::uint64_t> meta{0};
  // role(8) << 32 | index(32)
  std::atomic<std::uint64_t> peer{0};
};

namespace {

std::size_t ring_capacity_from_env() {
  std::size_t cap = 4096;
  if (const char* v = std::getenv("FASTREG_OBS_RING")) {
    const long parsed = std::atol(v);
    if (parsed > 0) cap = static_cast<std::size_t>(parsed);
  }
  return cap;
}

}  // namespace

recorder::recorder(std::size_t capacity)
    : slots_(std::bit_ceil(capacity < 64 ? std::size_t{64} : capacity)),
      mask_(slots_.size() - 1) {}

recorder::~recorder() = default;

std::size_t recorder::capacity() const { return slots_.size(); }

void recorder::record(rec_event ev, std::uint64_t trace, std::uint16_t span,
                      std::uint8_t mtype, const process_id& peer,
                      object_id obj, epoch_t epoch, ts_t ts) {
  const std::uint64_t seq =
      head_.fetch_add(1, std::memory_order_relaxed) + 1;
  slot& s = slots_[(seq - 1) & mask_];
  // Invalidate, fill relaxed, then publish: a reader that observes the
  // final stamp and re-reads it unchanged saw a consistent payload.
  s.stamp.store(0, std::memory_order_release);
  s.t.store(trace_now(), std::memory_order_relaxed);
  s.trace.store(trace, std::memory_order_relaxed);
  s.obj.store(obj, std::memory_order_relaxed);
  s.epoch.store(epoch, std::memory_order_relaxed);
  s.ts.store(static_cast<std::uint64_t>(ts), std::memory_order_relaxed);
  const std::uint64_t dom = trace_time_overridden() ? 1 : 0;
  s.meta.store((static_cast<std::uint64_t>(span) << 24) |
                   (static_cast<std::uint64_t>(ev) << 16) |
                   (static_cast<std::uint64_t>(mtype) << 8) | dom,
               std::memory_order_relaxed);
  s.peer.store((static_cast<std::uint64_t>(peer.r) << 32) | peer.index,
               std::memory_order_relaxed);
  s.stamp.store(seq, std::memory_order_release);
}

std::vector<rec_entry> recorder::entries(
    std::optional<object_id> only_obj) const {
  struct snap {
    std::uint64_t seq;
    rec_entry e;
  };
  std::vector<snap> snaps;
  snaps.reserve(slots_.size());
  for (const slot& s : slots_) {
    const std::uint64_t before = s.stamp.load(std::memory_order_acquire);
    if (before == 0) continue;
    rec_entry e;
    e.t = s.t.load(std::memory_order_relaxed);
    e.trace = s.trace.load(std::memory_order_relaxed);
    e.obj = s.obj.load(std::memory_order_relaxed);
    e.epoch = s.epoch.load(std::memory_order_relaxed);
    e.ts = static_cast<ts_t>(s.ts.load(std::memory_order_relaxed));
    const std::uint64_t meta = s.meta.load(std::memory_order_relaxed);
    const std::uint64_t peer = s.peer.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (s.stamp.load(std::memory_order_relaxed) != before) continue;
    e.span = static_cast<std::uint16_t>((meta >> 24) & 0xffff);
    e.ev = static_cast<rec_event>((meta >> 16) & 0xff);
    e.mtype = static_cast<std::uint8_t>((meta >> 8) & 0xff);
    e.sim_clock = (meta & 1) != 0;
    e.peer = process_id{static_cast<role>((peer >> 32) & 0xff),
                       static_cast<std::uint32_t>(peer & 0xffffffffull)};
    if (only_obj && e.obj != *only_obj) continue;
    snaps.push_back({before, std::move(e)});
  }
  std::sort(snaps.begin(), snaps.end(),
            [](const snap& a, const snap& b) { return a.seq < b.seq; });
  std::vector<rec_entry> out;
  out.reserve(snaps.size());
  for (auto& s : snaps) out.push_back(std::move(s.e));
  return out;
}

std::string recorder::dump(const std::string& node,
                           std::optional<object_id> only_obj) const {
  std::string out;
  char buf[256];
  for (const auto& e : entries(only_obj)) {
    std::snprintf(buf, sizeof buf,
                  "rec node=\"%s\" dom=%s t=%llu trace=0x%llx span=%u "
                  "ev=%s type=%s peer=\"%s\" obj=%llu epoch=%llu ts=%lld\n",
                  node.c_str(), e.sim_clock ? "sim" : "ns",
                  static_cast<unsigned long long>(e.t),
                  static_cast<unsigned long long>(e.trace),
                  static_cast<unsigned>(e.span), to_string(e.ev),
                  rec_msg_type_name(e.mtype),
                  fastreg::to_string(e.peer).c_str(),
                  static_cast<unsigned long long>(e.obj),
                  static_cast<unsigned long long>(e.epoch),
                  static_cast<long long>(e.ts));
    out += buf;
  }
  return out;
}

void recorder::reset() {
  for (slot& s : slots_) s.stamp.store(0, std::memory_order_release);
  head_.store(0, std::memory_order_relaxed);
}

// --------------------------------------------------------------- registry --

namespace {

struct recorder_registry {
  std::mutex mu;
  // Ordered by process_id so dump_all is deterministic.
  std::map<process_id, std::unique_ptr<recorder>> rings;
};

recorder_registry& rec_registry() {
  static recorder_registry r;
  return r;
}

}  // namespace

recorder& recorder_for(const process_id& node) {
  auto& reg = rec_registry();
  std::lock_guard<std::mutex> lk(reg.mu);
  auto& slot = reg.rings[node];
  if (!slot) slot = std::make_unique<recorder>(ring_capacity_from_env());
  return *slot;
}

std::vector<std::pair<std::string, std::string>> recorder_dump_all(
    std::optional<object_id> only_obj) {
  auto& reg = rec_registry();
  std::lock_guard<std::mutex> lk(reg.mu);
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& [node, ring] : reg.rings) {
    auto text = ring->dump(fastreg::to_string(node), only_obj);
    if (!text.empty()) out.emplace_back(fastreg::to_string(node),
                                        std::move(text));
  }
  return out;
}

void recorder_reset_all() {
  auto& reg = rec_registry();
  std::lock_guard<std::mutex> lk(reg.mu);
  for (auto& [node, ring] : reg.rings) ring->reset();
}

}  // namespace fastreg::obs
