// Server block partitions for the lower-bound constructions.
//
// Section 5 partitions the S servers into R+2 blocks B_1..B_{R+2} of size
// at most t (possible iff (R+2)t >= S, i.e. exactly when the fast SWMR
// bound fails). Section 6.2 uses T_1..T_{R+2} of size at most t plus
// B_1..B_{R+1} of size at most b (possible iff (R+2)t + (R+1)b >= S).
//
// When more readers exist than the construction needs, it uses the minimal
// number R' >= 2 for which the partition exists (the paper's footnote 5
// plays the same trick in the other direction). Blocks whose occupancy
// drives the violation -- the block that alone receives the write -- are
// filled first so they are never empty.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"

namespace fastreg::adversary {

/// A partition of server indices into named blocks.
class block_partition {
 public:
  /// `sizes[i]` servers go to block i; assignment order is by `fill_order`.
  static block_partition from_sizes(const std::vector<std::uint32_t>& sizes);

  [[nodiscard]] std::size_t block_count() const { return blocks_.size(); }
  [[nodiscard]] const std::vector<std::uint32_t>& block(std::size_t i) const {
    return blocks_[i];
  }
  [[nodiscard]] bool contains(std::size_t block_index,
                              std::uint32_t server) const;
  /// Union of the given blocks, as a server-index set membership test.
  [[nodiscard]] std::vector<bool> membership(
      const std::vector<std::size_t>& block_indices,
      std::uint32_t num_servers) const;

  [[nodiscard]] std::string describe(const std::vector<std::string>& names)
      const;

 private:
  std::vector<std::vector<std::uint32_t>> blocks_;
};

/// Crash-model partition (Section 5): R'+2 blocks, |B_i| <= t, covering S.
/// Fill order: B_{R'+1} (receives the write) first, then B_1..B_{R'},
/// then B_{R'+2}. Returns nullopt when S > (R'+2)*t for every R' <= R,
/// i.e. inside the feasible region.
struct swmr_partition {
  std::uint32_t readers_used{0};  // R'
  block_partition part;           // blocks [0..R'+1] are B_1..B_{R'+2}
};
[[nodiscard]] std::optional<swmr_partition> make_swmr_partition(
    std::uint32_t S, std::uint32_t t, std::uint32_t R);

/// Arbitrary-failure partition (Section 6.2): T_1..T_{R'+2} (cap t) and
/// B_1..B_{R'+1} (cap b). Fill order: T_{R'+1}, B_{R'+1} first (they
/// receive the write), then the rest.
struct bft_partition {
  std::uint32_t readers_used{0};
  block_partition part;  // blocks [0..R'+1] = T_1..T_{R'+2},
                         // blocks [R'+2 .. 2R'+2] = B_1..B_{R'+1}
  [[nodiscard]] std::size_t T(std::size_t j) const { return j - 1; }
  [[nodiscard]] std::size_t B(std::size_t j) const {
    return readers_used + 2 + (j - 1);
  }
};
[[nodiscard]] std::optional<bft_partition> make_bft_partition(std::uint32_t S,
                                                              std::uint32_t t,
                                                              std::uint32_t b,
                                                              std::uint32_t R);

}  // namespace fastreg::adversary
